// Package pmemgraph is the public facade of this repository: a Go
// reproduction of "Single Machine Graph Analytics on Massive Datasets
// Using Intel Optane DC Persistent Memory" (Gill, Dathathri, Hoang, Peri,
// Pingali — VLDB 2020).
//
// Because Optane DC Persistent Memory hardware is no longer available, the
// library pairs a deterministic memory-hierarchy simulator (NUMA,
// DRAM-as-cache "near-memory", TLBs, page migration — internal/memsim)
// with a Galois-style analytics runtime (internal/core), the paper's seven
// benchmarks in their §5 algorithmic variants (internal/analytics), the
// four framework profiles of §6.1 (internal/frameworks), a D-Galois
// cluster simulator (internal/distsim) and a GridGraph out-of-core
// simulator (internal/oocsim). See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	g := pmemgraph.GenerateInput("clueweb12", pmemgraph.ScaleSmall)
//	sys := pmemgraph.NewSystem(pmemgraph.OptanePMM, pmemgraph.ScaleSmall)
//	res, err := sys.Run(g, "bfs", 96)
//	fmt.Printf("bfs took %.4f simulated seconds over %d rounds\n", res.Seconds, res.Rounds)
package pmemgraph

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/bench"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Re-exported core types.
type (
	// Graph is the CSR graph shared by all engines.
	Graph = graph.Graph
	// Node is a vertex identifier.
	Node = graph.Node
	// Result reports one kernel execution (simulated seconds, rounds,
	// hardware counters, and the app's output).
	Result = analytics.Result
	// Scale selects the reproduction scale (ScaleFull for the paper
	// harness, ScaleSmall for quick runs).
	Scale = gen.Scale
)

// Reproduction scales.
const (
	ScaleFull  = gen.ScaleFull
	ScaleSmall = gen.ScaleSmall
)

// MachineKind selects a simulated platform from §3 of the paper.
type MachineKind int

const (
	// OptanePMM is the 2-socket, 6 TB Optane machine in memory mode.
	OptanePMM MachineKind = iota
	// DDR4DRAM is the same machine with PMM parked (DRAM main memory).
	DDR4DRAM
	// Entropy is the 4-socket 1.5 TB DRAM control machine.
	Entropy
)

// System is a simulated machine ready to run benchmarks under the Galois
// profile (the paper's recommended configuration).
type System struct {
	cfg   memsim.MachineConfig
	scale Scale
}

// NewSystem builds a simulated platform at the given scale.
func NewSystem(kind MachineKind, scale Scale) *System {
	var cfg memsim.MachineConfig
	switch kind {
	case DDR4DRAM:
		cfg = memsim.DRAMMachine()
	case Entropy:
		cfg = memsim.EntropyMachine()
	default:
		cfg = memsim.OptaneMachine()
	}
	return &System{cfg: memsim.Scaled(cfg, scale.Div()), scale: scale}
}

// Apps returns the benchmark names: bc, bfs, cc, kcore, pr, sssp, tc.
func Apps() []string { return frameworks.Apps() }

// Run executes one benchmark on g with the paper's best (Galois)
// configuration and algorithms, returning the simulated result.
func (s *System) Run(g *Graph, app string, threads int) (*Result, error) {
	m := memsim.NewMachine(s.cfg)
	params := frameworks.DefaultParams(g)
	res, err := frameworks.Galois.RunOn(m, g, app, threads, params)
	if err != nil {
		return nil, fmt.Errorf("pmemgraph: %w", err)
	}
	return res, nil
}

// RunAs executes a benchmark under one of the paper's framework profiles:
// "Galois", "GAP", "GBBS" or "GraphIt".
func (s *System) RunAs(framework string, g *Graph, app string, threads int) (*Result, error) {
	for _, p := range frameworks.All() {
		if p.Name == framework {
			m := memsim.NewMachine(s.cfg)
			return p.RunOn(m, g, app, threads, frameworks.DefaultParams(g))
		}
	}
	return nil, fmt.Errorf("pmemgraph: unknown framework %q", framework)
}

// GenerateInput builds the scaled stand-in for one of the paper's Table 3
// inputs: kron30, clueweb12, uk14, iso_m100, rmat32 or wdc12.
func GenerateInput(name string, scale Scale) (*Graph, error) {
	g, _, err := gen.Input(name, scale)
	return g, err
}

// InputNames lists the Table 3 inputs.
func InputNames() []string { return gen.InputNames() }

// Experiments lists the regenerable tables and figures.
func Experiments() []string { return bench.Experiments() }
