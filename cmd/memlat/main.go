// Command memlat prints the simulated machine's latency and bandwidth
// characterization (the paper's Tables 1 and 2).
package main

import (
	"fmt"
	"os"

	"pmemgraph/internal/bench"
	"pmemgraph/internal/gen"
)

func main() {
	opts := bench.Options{Scale: gen.ScaleSmall, Out: os.Stdout}
	for _, exp := range []string{"table1", "table2"} {
		if err := bench.Run(exp, opts); err != nil {
			fmt.Fprintln(os.Stderr, "memlat:", err)
			os.Exit(1)
		}
	}
}
