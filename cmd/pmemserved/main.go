// Command pmemserved is the long-lived analytics serving daemon: it keeps
// Table 3 inputs and serialized CSR graphs resident in a shared registry
// and serves concurrent kernel executions over HTTP/JSON, with a bounded
// job scheduler and an exact result cache built on the engine's
// byte-identical determinism. Graphs are mutable through batched edge
// updates (POST /v1/graphs/{name}/updates — graphgen -updates emits
// replayable streams): each batch becomes a new sealed epoch, the graph's
// cached results are invalidated, and jobs submitted with
// "incremental": true recompute cc/pr from the prior epoch's retained
// seed. With -data-dir every loaded graph is durable: batches append to a
// per-graph checksummed WAL before their epoch becomes visible, POST
// /v1/graphs/{name}/checkpoint (and the automatic overlay compaction)
// seals a .csrz snapshot and truncates the log, and a restart replays
// snapshot + surviving log records to reconstruct the latest epoch —
// torn or truncated tails are detected and dropped. Admission is
// class-based (-classes): each job class gets its own bounded queue and
// weighted share of the workers, requests may carry "class" and
// "deadline_ms", and jobs whose deadline expires while queued are shed
// with a structured 503 instead of executed. See the README's
// "pmemserved HTTP API" reference and DESIGN.md "Serving layer" /
// "Streaming updates & incremental kernels" / "Durability & epoch
// compaction" / "Serving under load".
//
// Usage:
//
//	pmemserved [-addr :8097] [-machine optane|dram|entropy]
//	           [-scale small|full] [-workers 4] [-queue 256]
//	           [-classes interactive:4:256,batch:1:512]
//	           [-cache 1024] [-seed-mb 256] [-preload clueweb12,kron30]
//	           [-data-dir /var/lib/pmemserved] [-compact-div 20]
//	           [-shards 16]
//
// Jobs submitted with "shards": N run as scatter/gather BSP supersteps
// over N in-process shard workers (bitwise-identical outputs to an
// unsharded run of the same round-based kernel); -shards caps the
// accepted width.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":8097", "listen address")
	machine := flag.String("machine", "optane", "simulated platform: optane, dram or entropy")
	scaleFlag := flag.String("scale", "small", "input/machine scale: full or small")
	workers := flag.Int("workers", server.DefaultWorkers, "max concurrent kernel executions")
	queue := flag.Int("queue", 0, "override every class's queue cap (0 = per-class defaults)")
	classesFlag := flag.String("classes", "",
		"admission classes as name[:weight[:queuecap]],... (default interactive:4:256,batch:1:512)")
	cacheEntries := flag.Int("cache", server.DefaultCacheEntries, "max cached results")
	seedMB := flag.Int64("seed-mb", server.DefaultSeedBytes>>20, "max megabytes of retained incremental seeds")
	preload := flag.String("preload", "", "comma-separated Table 3 inputs to load at startup")
	dataDir := flag.String("data-dir", "", "directory for durable graph state (WAL + snapshots); empty = in-memory only")
	compactDiv := flag.Int64("compact-div", server.DefaultCompactDiv,
		"compact an overlay epoch once it holds more than |E|/div entries; negative disables")
	maxShards := flag.Int("shards", server.DefaultMaxShards,
		"max shard workers a job may request via \"shards\" (each is a full simulated machine)")
	flag.Parse()

	var scale gen.Scale
	switch *scaleFlag {
	case "small":
		scale = gen.ScaleSmall
	case "full":
		scale = gen.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "pmemserved: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}
	var cfg memsim.MachineConfig
	switch *machine {
	case "optane":
		cfg = memsim.OptaneMachine()
	case "dram":
		cfg = memsim.DRAMMachine()
	case "entropy":
		cfg = memsim.EntropyMachine()
	default:
		fmt.Fprintf(os.Stderr, "pmemserved: unknown machine %q (want optane, dram or entropy)\n", *machine)
		os.Exit(2)
	}
	cfg = memsim.Scaled(cfg, scale.Div())

	var classes []server.ClassConfig
	if *classesFlag != "" {
		var err error
		if classes, err = server.ParseClasses(*classesFlag); err != nil {
			fmt.Fprintf(os.Stderr, "pmemserved: %v\n", err)
			os.Exit(2)
		}
	}

	srv := server.New(server.Config{
		Machine:      cfg,
		Workers:      *workers,
		QueueCap:     *queue,
		Classes:      classes,
		CacheEntries: *cacheEntries,
		SeedBytes:    *seedMB << 20,
		DataDir:      *dataDir,
		CompactDiv:   *compactDiv,
		MaxShards:    *maxShards,
	})
	defer srv.Close()

	if *dataDir != "" {
		recovered, err := srv.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmemserved: recovering %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		for _, info := range recovered {
			fmt.Printf("recovered %s: %d nodes, %d edges, %d replayed batches\n",
				info.Name, info.Nodes, info.Edges, info.Updates)
		}
	}

	if *preload != "" {
		for _, input := range strings.Split(*preload, ",") {
			input = strings.TrimSpace(input)
			if input == "" {
				continue
			}
			info, err := srv.Registry().LoadInput(input, input, scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmemserved: preloading %s: %v\n", input, err)
				os.Exit(1)
			}
			fmt.Printf("loaded %s: %d nodes, %d edges, %.1f MB CSR\n",
				info.Name, info.Nodes, info.Edges, float64(info.CSRBytes)/(1<<20))
		}
	}

	fmt.Printf("pmemserved: serving %s (scale %s) on %s with %d workers\n",
		cfg.Name, *scaleFlag, *addr, *workers)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "pmemserved: %v\n", err)
		os.Exit(1)
	}
}
