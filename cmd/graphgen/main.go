// Command graphgen generates one of the paper's scaled input graphs and
// writes it as a binary CSR file — raw by default, or delta+varint
// compressed (.csrz, loadable by pmemserved's registry and run by the
// compressed storage backend) with -csrz. With -updates it additionally
// emits a deterministic stream of edge-update batches for the graph as
// JSON: each element of the array is a `{"updates": [...]}` object that
// can be POSTed verbatim to pmemserved's
// POST /v1/graphs/{name}/updates endpoint, in order.
//
// Usage:
//
//	graphgen -input clueweb12 -scale small -o clueweb12.csr
//	graphgen -input clueweb12 -csrz -o clueweb12.csrz
//	graphgen -input clueweb12 -updates 10 -update-batch 256 \
//	         -updates-out clueweb12.updates.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

func main() {
	name := flag.String("input", "clueweb12", "paper input: "+strings.Join(gen.InputNames(), ","))
	scaleFlag := flag.String("scale", "small", "full or small")
	out := flag.String("o", "", "output file (default <input>.csr, or <input>.csrz with -csrz)")
	weights := flag.Uint("weights", 0, "attach random edge weights in [1,N] (0 = unweighted)")
	csrz := flag.Bool("csrz", false, "write the delta+varint compressed format (.csrz)")
	updates := flag.Int("updates", 0, "also emit N edge-update batches for the streaming workload (0 = none)")
	updateBatch := flag.Int("update-batch", 256, "operations per update batch")
	updateSeed := flag.Uint64("update-seed", 1, "update-stream seed (streams are deterministic per seed)")
	updateDeletes := flag.Bool("update-deletes", false, "mix deletions into the update stream (~1/4 of ops); insert-only streams keep incremental cc on its fast path")
	updatesOut := flag.String("updates-out", "", "update-stream output file (default <input>.updates.json)")
	flag.Parse()

	scale := gen.ScaleSmall
	if *scaleFlag == "full" {
		scale = gen.ScaleFull
	}
	g, _, err := gen.Input(*name, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *weights > 0 {
		g.AddRandomWeights(uint32(*weights), 1)
	}
	path := *out
	if path == "" {
		path = *name + ".csr"
		if *csrz {
			path += "z"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	write := graph.WriteCSR
	if *csrz {
		write = graph.WriteCSRZ
	}
	if err := write(f, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", path, g.NumNodes(), g.NumEdges())

	if *updates > 0 {
		if err := writeUpdateStream(g, *name, *updates, *updateBatch, *updateSeed, *updateDeletes, *updatesOut); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
	}
}

// updateBatchBody mirrors the POST /v1/graphs/{name}/updates request shape
// so stream elements can be sent verbatim.
type updateBatchBody struct {
	Updates []graph.EdgeUpdate `json:"updates"`
}

func writeUpdateStream(g *graph.Graph, input string, batches, perBatch int, seed uint64, deletes bool, path string) error {
	stream, err := gen.UpdateStream(g, batches, perBatch, seed, deletes)
	if err != nil {
		return err
	}
	if path == "" {
		path = input + ".updates.json"
	}
	bodies := make([]updateBatchBody, len(stream))
	ops := 0
	for i, batch := range stream {
		bodies[i] = updateBatchBody{Updates: batch}
		ops += len(batch)
	}
	data, err := json.MarshalIndent(bodies, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d batches, %d operations\n", path, len(stream), ops)
	return nil
}
