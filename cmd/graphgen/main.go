// Command graphgen generates one of the paper's scaled input graphs and
// writes it as a binary CSR file — raw by default, or delta+varint
// compressed (.csrz, loadable by pmemserved's registry and run by the
// compressed storage backend) with -csrz.
//
// Usage:
//
//	graphgen -input clueweb12 -scale small -o clueweb12.csr
//	graphgen -input clueweb12 -csrz -o clueweb12.csrz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

func main() {
	name := flag.String("input", "clueweb12", "paper input: "+strings.Join(gen.InputNames(), ","))
	scaleFlag := flag.String("scale", "small", "full or small")
	out := flag.String("o", "", "output file (default <input>.csr, or <input>.csrz with -csrz)")
	weights := flag.Uint("weights", 0, "attach random edge weights in [1,N] (0 = unweighted)")
	csrz := flag.Bool("csrz", false, "write the delta+varint compressed format (.csrz)")
	flag.Parse()

	scale := gen.ScaleSmall
	if *scaleFlag == "full" {
		scale = gen.ScaleFull
	}
	g, _, err := gen.Input(*name, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *weights > 0 {
		g.AddRandomWeights(uint32(*weights), 1)
	}
	path := *out
	if path == "" {
		path = *name + ".csr"
		if *csrz {
			path += "z"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	write := graph.WriteCSR
	if *csrz {
		write = graph.WriteCSRZ
	}
	if err := write(f, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", path, g.NumNodes(), g.NumEdges())
}
