// Command pmembench regenerates the paper's tables and figures on the
// simulated machines. With no -exp flag it runs every experiment in paper
// order.
//
// Usage:
//
//	pmembench [-exp table4] [-scale full|small] [-quick]
//	          [-serve-trace trace.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmemgraph/internal/bench"
	"pmemgraph/internal/gen"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all); one of "+strings.Join(bench.Experiments(), ","))
	scaleFlag := flag.String("scale", "small", "input/machine scale: full or small")
	quick := flag.Bool("quick", false, "trim sweeps for a fast run")
	jsonPath := flag.String("json", "BENCH_figures.json", "write machine-readable results (experiment -> simulated + wall time) to this file; empty disables")
	serveTrace := flag.String("serve-trace", "", "write figServe's generated workload trace (replayable loadgen JSON) to this file")
	flag.Parse()

	scale := gen.ScaleSmall
	if *scaleFlag == "full" {
		scale = gen.ScaleFull
	}
	opts := bench.Options{Scale: scale, Quick: *quick, Out: os.Stdout, TraceOut: *serveTrace}
	if *jsonPath != "" {
		opts.Sink = &bench.Sink{}
	}

	names := bench.Experiments()
	if *exp != "" {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		start := time.Now()
		if err := bench.Run(name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pmembench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if opts.Sink != nil {
		if err := opts.Sink.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "pmembench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
