// Command graphprops prints the Table 3 property row for a binary CSR
// graph file or for a named generated input.
//
// Usage:
//
//	graphprops graph.csr
//	graphprops -input wdc12 -scale small
package main

import (
	"flag"
	"fmt"
	"os"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/stats"
)

func main() {
	name := flag.String("input", "", "generate a paper input instead of reading a file")
	scaleFlag := flag.String("scale", "small", "full or small")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *name != "":
		scale := gen.ScaleSmall
		if *scaleFlag == "full" {
			scale = gen.ScaleFull
		}
		var err error
		g, _, err = gen.Input(*name, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphprops:", err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphprops:", err)
			os.Exit(1)
		}
		defer f.Close()
		g, err = graph.ReadCSR(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphprops:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: graphprops <file.csr> | graphprops -input <name>")
		os.Exit(2)
	}
	p := g.Props()
	fmt.Printf("|V|          %d\n|E|          %d\n|E|/|V|      %.1f\nmax Dout     %d\nmax Din      %d\nest diameter %d\nCSR size     %s\n",
		p.Nodes, p.Edges, p.AvgDegree, p.MaxOutDegree, p.MaxInDegree, p.EstDiameter, stats.HumanBytes(p.CSRBytes))
}
