package engine

import (
	"sync/atomic"
	"testing"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// chain returns 0->1->...->n-1 plus a hub 0->v for every v, giving a mix
// of degrees.
func testGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node(i + 1)})
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.Node(i + 1)})
	}
	return graph.MustFromEdges(n, edges, false, true)
}

func testEngine(t *testing.T, g *graph.Graph, cfg Config, bothDirs bool) *Engine {
	t.Helper()
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	opts := core.GaloisDefaults(4)
	opts.BothDirections = bothDirs
	r, err := core.New(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return New(r, cfg)
}

func TestFrontierRepresentationPolicy(t *testing.T) {
	g := testGraph(200)
	sparse := testEngine(t, g, Config{Rep: RepSparse}, false)
	if f := sparse.FullFrontier(); f.IsDense() {
		t.Error("RepSparse produced a dense full frontier")
	}
	dense := testEngine(t, g, Config{Rep: RepDense}, false)
	if f := dense.NewFrontier(3); !f.IsDense() {
		t.Error("RepDense produced a sparse frontier")
	}
	auto := testEngine(t, g, Config{Rep: RepAuto}, false)
	if f := auto.NewFrontier(5); f.IsDense() {
		t.Error("RepAuto made a single light vertex dense")
	}
	if f := auto.FullFrontier(); !f.IsDense() {
		t.Error("RepAuto kept the full frontier sparse")
	}
}

func TestFrontierHasAndVertices(t *testing.T) {
	g := testGraph(100)
	e := testEngine(t, g, Config{Rep: RepDense}, false)
	f := e.NewFrontier(2, 50, 97)
	for _, v := range []graph.Node{2, 50, 97} {
		if !f.Has(v) {
			t.Errorf("missing vertex %d", v)
		}
	}
	if f.Has(3) {
		t.Error("vertex 3 should be inactive")
	}
	vs := f.Vertices()
	if len(vs) != 3 || vs[0] != 2 || vs[1] != 50 || vs[2] != 97 {
		t.Errorf("Vertices() = %v, want [2 50 97]", vs)
	}
	if f.Count() != 3 {
		t.Errorf("Count = %d", f.Count())
	}
	wantOut := g.OutDegree(2) + g.OutDegree(50) + g.OutDegree(97)
	if f.OutEdges() != wantOut {
		t.Errorf("OutEdges = %d, want %d", f.OutEdges(), wantOut)
	}
}

// bfsWith runs a BFS over the engine with the given config and returns the
// levels.
func bfsWith(t *testing.T, g *graph.Graph, cfg Config, bothDirs bool) []uint32 {
	e := testEngine(t, g, cfg, bothDirs)
	n := g.NumNodes()
	dist := make([]atomic.Uint32, n)
	for i := 1; i < n; i++ {
		dist[i].Store(^uint32(0))
	}
	f := e.NewFrontier(0)
	level := uint32(0)
	for !f.Empty() {
		level++
		lvl := level
		cur := f
		f = e.EdgeMap(f, EdgeMapArgs{
			Push: func(u, d graph.Node, ei int64) bool {
				return dist[d].CompareAndSwap(^uint32(0), lvl)
			},
			Pull: func(v, u graph.Node, ei int64) (bool, bool) {
				if cur.Has(u) {
					dist[v].Store(lvl)
					return true, true
				}
				return false, false
			},
			PullCond: func(v graph.Node) bool { return dist[v].Load() == ^uint32(0) },
		})
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return out
}

func TestEdgeMapDirectionsAgree(t *testing.T) {
	g := testGraph(300)
	ref := bfsWith(t, g, Config{Rep: RepSparse, Dir: DirPush}, false)
	for name, cfg := range map[string]Config{
		"dense-push": {Rep: RepDense, Dir: DirPush},
		"dir-opt":    {Rep: RepDense, Dir: DirAuto},
		"pull-only":  {Rep: RepDense, Dir: DirPull},
		"hybrid":     {Rep: RepAuto, Dir: DirAuto},
	} {
		got := bfsWith(t, g, cfg, true)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], ref[v])
			}
		}
	}
}

func TestEdgeMapAutoConvertsRepresentation(t *testing.T) {
	// The hub graph floods from vertex 0: round 1 activates everything,
	// so an auto frontier must convert sparse -> dense, then back as the
	// frontier dies out.
	g := testGraph(500)
	e := testEngine(t, g, Config{Rep: RepAuto, Dir: DirPush}, false)
	visited := make([]atomic.Bool, g.NumNodes())
	visited[0].Store(true)
	f := e.NewFrontier(0)
	sawDense := false
	for !f.Empty() {
		f = e.EdgeMap(f, EdgeMapArgs{
			Push: func(u, d graph.Node, ei int64) bool {
				return !visited[d].Swap(true)
			},
		})
		sawDense = sawDense || f.IsDense()
	}
	if !sawDense {
		t.Error("auto frontier never converted to dense on a flood")
	}
	for v := range visited {
		if !visited[v].Load() {
			t.Errorf("vertex %d unreached", v)
		}
	}
	if len(e.Trace()) != e.Rounds() {
		t.Errorf("trace has %d entries for %d rounds", len(e.Trace()), e.Rounds())
	}
	for i, rs := range e.Trace() {
		if rs.Round != i+1 {
			t.Errorf("trace[%d].Round = %d", i, rs.Round)
		}
		if rs.Stats.ElapsedNs <= 0 {
			t.Errorf("round %d has no simulated time", rs.Round)
		}
	}
}

func TestEdgeMapSymmetricReachesPredecessors(t *testing.T) {
	// Directed path 0->1->2: a symmetric push from {1} must activate
	// both 0 and 2.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false, false)
	e := testEngine(t, g, Config{Rep: RepSparse, Dir: DirPush}, true)
	var hit [3]atomic.Bool
	f := e.NewFrontier(1)
	f = e.EdgeMap(f, EdgeMapArgs{
		Symmetric: true,
		Push: func(u, d graph.Node, ei int64) bool {
			return !hit[d].Swap(true)
		},
	})
	if !hit[0].Load() || !hit[2].Load() {
		t.Errorf("symmetric push missed a neighbor: hit=[%v %v %v]",
			hit[0].Load(), hit[1].Load(), hit[2].Load())
	}
	if f.Count() != 2 {
		t.Errorf("next frontier = %d vertices, want 2", f.Count())
	}
}

func TestVertexFilterAndMap(t *testing.T) {
	g := testGraph(128)
	e := testEngine(t, g, Config{Rep: RepSparse}, false)
	vals := make([]int64, g.NumNodes())
	e.VertexMap(VertexMapArgs{
		Fn:  func(v graph.Node) { vals[v] = int64(v) * 2 },
		Ops: true,
	})
	f := e.VertexFilter(VertexMapArgs{}, func(v graph.Node) bool { return vals[v]%4 == 0 })
	if f.Count() != 64 {
		t.Errorf("filter kept %d vertices, want 64", f.Count())
	}
	if !f.Has(0) || !f.Has(2) || f.Has(1) {
		t.Error("filter membership wrong")
	}
}

func TestTraversalName(t *testing.T) {
	g := testGraph(10)
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	r := core.MustNew(m, g, core.GaloisDefaults(2))
	defer r.Close()
	if n := TraversalName(r, Config{Rep: RepSparse, Dir: DirPush}); n != "sparse-wl" {
		t.Errorf("sparse = %q", n)
	}
	if n := TraversalName(r, Config{Rep: RepDense, Dir: DirPush}); n != "dense-wl" {
		t.Errorf("dense = %q", n)
	}
	// DirAuto without a transpose degrades to push.
	if n := TraversalName(r, Config{Rep: RepAuto, Dir: DirAuto}); n != "hybrid-wl" {
		t.Errorf("hybrid = %q", n)
	}
	both := core.GaloisDefaults(2)
	both.BothDirections = true
	r2 := core.MustNew(memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32)), g, both)
	defer r2.Close()
	if n := TraversalName(r2, Config{Rep: RepDense, Dir: DirAuto}); n != "dir-opt" {
		t.Errorf("dir-opt = %q", n)
	}
}
