// Package engine is the unified Ligra/GBBS-style operator engine the
// round-based analytics kernels are built on — the layer between the
// kernels (internal/analytics) above and the runtime/storage seam
// (internal/core, internal/graph, internal/memsim) below. The paper's
// §5/§6 message is that one runtime with the right worklist and direction
// choices subsumes the per-framework kernel zoo; this package embodies
// that claim as three primitives:
//
//   - EdgeMap: apply a per-edge operator to the out- (push), in- (pull) or
//     engine-chosen (direction-optimizing) neighborhoods of a frontier,
//     returning the next frontier. Pull rounds support early exit, charged
//     via prefix scans.
//   - VertexMap / VertexFilter: streaming per-vertex passes (initializers,
//     snapshot publishes, pointer jumps, peel-set selection).
//   - Frontier: the active-vertex set, auto-converting between sparse
//     (vertex slice) and dense (bit-vector) representations at a
//     configurable |frontier|+out-edges threshold.
//
// # Charging contract
//
// The engine owns all memsim charging for frontier management and
// neighborhood iteration: worklist and bit-vector traffic, offsets and
// edge scans (through core.AdjView, so raw and compressed storage
// backends charge their own shapes behind one traversal), and the
// per-edge label gathers kernels declare via Access lists. Charges are
// batched per scheduler chunk (one RandomN/ReadRange per chunk instead of
// one call per vertex), which is cost-identical under the linear memsim
// model but measurably faster to simulate. It also aggregates per-round
// RegionStats into a trace kernels surface through their Result. Kernels
// must not charge traversal traffic themselves; they declare accesses and
// the engine issues them.
//
// # Determinism guarantees
//
// Every simulated number the engine produces — frontier contents, round
// trajectories, charges, and therefore Result bytes — is byte-identical
// at any GOMAXPROCS. Push rounds are two-phase to uphold this (see
// DESIGN.md "Concurrency model"): during the parallel scan, threads
// record activation claims into private per-thread buffers — the scan
// region's charges depend only on the frontier, never on claim outcomes —
// then the engine merges the buffers at the barrier into a deduplicated,
// ID-sorted next frontier and charges its writes in a follow-up parallel
// region. Operators must make claims that are deterministic as a set
// (e.g. judged against round-start snapshots, or unique-claimant
// transitions of commutative updates); the merge then erases any
// nondeterminism in claim attribution or ordering.
package engine
