package engine

import (
	"testing"
	"testing/quick"

	"pmemgraph/internal/graph"
)

func TestDenseSetTestClear(t *testing.T) {
	d := NewDense(200)
	if d.Len() != 200 {
		t.Fatalf("len = %d", d.Len())
	}
	if !d.Set(5) {
		t.Fatal("first set returned false")
	}
	if d.Set(5) {
		t.Fatal("second set returned true")
	}
	if !d.Test(5) || d.Test(6) {
		t.Fatal("test wrong")
	}
	if d.Count() != 1 {
		t.Fatalf("count = %d", d.Count())
	}
	d.Clear()
	if d.Count() != 0 || d.Test(5) {
		t.Fatal("clear failed")
	}
}

func TestDenseForEachInRange(t *testing.T) {
	d := NewDense(300)
	want := []graph.Node{0, 63, 64, 65, 127, 128, 255, 299}
	for _, v := range want {
		d.Set(v)
	}
	var got []graph.Node
	d.ForEachInRange(0, 300, func(v graph.Node) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Sub-range iteration respects bounds.
	var sub []graph.Node
	d.ForEachInRange(64, 128, func(v graph.Node) { sub = append(sub, v) })
	for _, v := range sub {
		if v < 64 || v >= 128 {
			t.Fatalf("out-of-range vertex %d", v)
		}
	}
	if len(sub) != 3 { // 64, 65, 127
		t.Fatalf("sub-range found %v", sub)
	}
}

func TestDensePropertySetImpliesTest(t *testing.T) {
	check := func(vals []uint16) bool {
		d := NewDense(1 << 16)
		for _, v := range vals {
			d.Set(graph.Node(v))
		}
		for _, v := range vals {
			if !d.Test(graph.Node(v)) {
				return false
			}
		}
		uniq := map[uint16]bool{}
		for _, v := range vals {
			uniq[v] = true
		}
		return d.Count() == len(uniq)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFullDenseActivatesEveryVertex(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		d := FullDense(n)
		if d.Count() != n {
			t.Errorf("FullDense(%d).Count() = %d", n, d.Count())
		}
		for v := 0; v < n; v++ {
			if !d.Test(graph.Node(v)) {
				t.Errorf("FullDense(%d): vertex %d inactive", n, v)
			}
		}
		// No phantom bits beyond n.
		got := 0
		d.ForEachInRange(0, graph.Node(n), func(graph.Node) { got++ })
		if got != n {
			t.Errorf("FullDense(%d) iterates %d vertices", n, got)
		}
	}
}

func TestDenseSparseConversionRoundTrip(t *testing.T) {
	vs := []graph.Node{0, 5, 63, 64, 99}
	d := DenseFromVertices(100, vs)
	if d.Count() != len(vs) {
		t.Fatalf("count = %d", d.Count())
	}
	out := d.Vertices(nil)
	if len(out) != len(vs) {
		t.Fatalf("vertices = %v", out)
	}
	for i := range vs {
		if out[i] != vs[i] {
			t.Errorf("out[%d] = %d, want %d (ascending order)", i, out[i], vs[i])
		}
	}
}

func TestVerticesAppendsToBuffer(t *testing.T) {
	d := DenseFromVertices(64, []graph.Node{7})
	buf := []graph.Node{1, 2}
	out := d.Vertices(buf)
	if len(out) != 3 || out[2] != 7 {
		t.Errorf("Vertices append = %v", out)
	}
}

func TestUnsetClearsOnlyTargetBit(t *testing.T) {
	d := DenseFromVertices(128, []graph.Node{3, 64, 100})
	d.Unset(64)
	if d.Test(64) {
		t.Error("unset vertex still active")
	}
	if !d.Test(3) || !d.Test(100) {
		t.Error("Unset cleared unrelated bits")
	}
	if d.Count() != 2 {
		t.Errorf("count = %d, want 2", d.Count())
	}
}

func TestMergeFragments(t *testing.T) {
	got := MergeFragments([][]graph.Node{
		{2, 5, 9},
		{1, 5, 7},
		nil,
		{2, 9, 11},
	})
	want := []graph.Node{1, 2, 5, 7, 9, 11}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if MergeFragments(nil) != nil {
		t.Error("empty merge should be nil")
	}
	// Shard order must not matter once fragments are sorted and deduped.
	swapped := MergeFragments([][]graph.Node{{2, 9, 11}, {1, 5, 7}, {2, 5, 9}})
	for i := range want {
		if swapped[i] != want[i] {
			t.Fatalf("order-dependent merge: %v", swapped)
		}
	}
}
