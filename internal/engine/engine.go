package engine

import (
	"sort"
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Rep selects the frontier representation policy.
type Rep int

const (
	// RepAuto converts between sparse and dense at the DenseFrac
	// threshold (the Ligra hybrid).
	RepAuto Rep = iota
	// RepSparse keeps every frontier an explicit vertex list (Galois).
	RepSparse
	// RepDense keeps every frontier a |V| bit-vector (GAP/GBBS/GraphIt).
	RepDense
)

// Dir selects the traversal direction policy.
type Dir int

const (
	// DirAuto is direction-optimizing: pull when the frontier's edge
	// count crosses the PullFrac threshold and the operator provides a
	// pull form, push otherwise (Beamer-style).
	DirAuto Dir = iota
	// DirPush always scatters along out-edges.
	DirPush
	// DirPull always gathers along in-edges.
	DirPull
)

// defaultFrac is the Ligra |E|/20 threshold shared by the representation
// and direction switches.
const defaultFrac = 20

// Config parameterizes the engine for one kernel execution. Framework
// profiles are expressed as Configs (dense-only, push-only, thresholds)
// rather than as hand-picked kernel variants.
type Config struct {
	Rep Rep
	Dir Dir
	// DenseFrac: a frontier converts to dense when |frontier| plus its
	// out-edge count exceeds |E|/DenseFrac, and back below it. 0 means
	// the Ligra default of 20.
	DenseFrac int64
	// PullFrac is the same threshold for the push→pull direction switch.
	// 0 means 20.
	PullFrac int64
}

// Access names one array a kernel's operator touches at random, so the
// engine can charge it in per-chunk batches.
type Access struct {
	Arr   *memsim.Array
	Write bool
}

// RoundStat records one EdgeMap round for the kernel's Result trace. The
// json tags define the stable wire format of serialized traces (see
// analytics.MarshalResult); do not rename them without a version bump.
type RoundStat struct {
	Round    int                `json:"round"`
	Frontier int64              `json:"frontier"` // active vertices entering the round
	Edges    int64              `json:"edges"`    // their total out-degree
	Dense    bool               `json:"dense"`    // representation iterated this round
	Pull     bool               `json:"pull"`     // direction used
	Stats    memsim.RegionStats `json:"stats"`
}

// Engine binds a runtime to a Config and owns the simulated frontier
// storage (bit-vectors and worklist array) shared by every round.
type Engine struct {
	R   *core.Runtime
	cfg Config

	// out/in are the runtime's adjacency views: all neighborhood
	// iteration goes through their graph.Adjacency (raw slices or
	// compressed blocks decoded by a zero-allocation Cursor) and all
	// edge-traffic charging through their arrays, so the engine is
	// storage-backend agnostic.
	out, in core.AdjView

	bits     *memsim.Array // current dense frontier bits
	nextBits *memsim.Array // next-frontier activation scatter target
	wl       *memsim.Array // sparse worklist storage

	// dedup is the reusable activation set the sequential claim merge
	// deduplicates against. It is cleared in O(|activated|) after each
	// round (Unset per activated vertex) so thousands of tiny-frontier
	// rounds on a high-diameter graph never pay an O(|V|) zeroing.
	dedup *Dense

	// claims holds one activation buffer per virtual thread, indexed by
	// Thread.ID. Threads append claims race-free during a push round; the
	// engine drains the buffers (retaining capacity) at the merge.
	claims [][]graph.Node

	rounds int
	trace  []RoundStat
}

// addStats folds a conversion pass's region into a round's stats.
func addStats(dst *memsim.RegionStats, src memsim.RegionStats) {
	dst.ElapsedNs += src.ElapsedNs
	dst.Counters.Add(src.Counters)
}

// New builds an engine over r. The frontier scratch arrays are allocated
// through the runtime and freed by its Close.
func New(r *core.Runtime, cfg Config) *Engine {
	if cfg.DenseFrac <= 0 {
		cfg.DenseFrac = defaultFrac
	}
	if cfg.PullFrac <= 0 {
		cfg.PullFrac = defaultFrac
	}
	n := int64(r.G.NumNodes())
	words := (n + 63) / 64
	if words < 1 {
		words = 1
	}
	if n < 1 {
		n = 1
	}
	return &Engine{
		R:        r,
		cfg:      cfg,
		out:      r.OutView(),
		in:       r.InView(),
		bits:     r.ScratchArray("engine.frontier.bits", words, 8),
		nextBits: r.ScratchArray("engine.next.bits", words, 8),
		wl:       r.ScratchArray("engine.wl", n, 4),
		claims:   make([][]graph.Node, r.RegionThreads()),
	}
}

// Config returns the engine's configuration (with defaults filled in).
func (e *Engine) Config() Config { return e.cfg }

// Rounds returns the number of EdgeMap rounds executed so far.
func (e *Engine) Rounds() int { return e.rounds }

// Trace returns the per-round frontier/direction/RegionStats record.
func (e *Engine) Trace() []RoundStat { return e.trace }

// CanPull reports whether pull traversal is possible (transpose present).
func (e *Engine) CanPull() bool { return e.in.Valid() }

func (e *Engine) wantDense(count, outEdges int64) bool {
	switch e.cfg.Rep {
	case RepSparse:
		return false
	case RepDense:
		return true
	default:
		return count+outEdges > e.R.NumEdges()/e.cfg.DenseFrac
	}
}

// NewFrontier builds a frontier from explicit seed vertices, in the
// representation the config prescribes. Seeding is not charged (it models
// kernel setup outside the traversal).
func (e *Engine) NewFrontier(vs ...graph.Node) *Frontier {
	n := e.R.G.NumNodes()
	f := &Frontier{
		n:        n,
		count:    int64(len(vs)),
		outEdges: sumOutDegrees(e.R, vs),
	}
	if e.wantDense(f.count, f.outEdges) {
		f.isDense = true
		f.dense = DenseFromVertices(n, vs)
	} else {
		f.sparse = append([]graph.Node(nil), vs...)
	}
	return f
}

// SparseFrontier wraps an existing vertex list as an explicitly sparse
// frontier regardless of policy (e.g. the per-level lists of Brandes'
// backward sweep, which are replayed exactly as recorded).
func (e *Engine) SparseFrontier(vs []graph.Node) *Frontier {
	return &Frontier{
		n:        e.R.G.NumNodes(),
		sparse:   vs,
		count:    int64(len(vs)),
		outEdges: sumOutDegrees(e.R, vs),
	}
}

// FullFrontier activates every vertex (the initial frontier of
// topology-driven kernels).
func (e *Engine) FullFrontier() *Frontier {
	n := e.R.G.NumNodes()
	f := &Frontier{n: n, count: int64(n), outEdges: e.R.NumEdges()}
	if e.wantDense(f.count, f.outEdges) {
		f.isDense = true
		f.dense = FullDense(n)
	} else {
		vs := make([]graph.Node, n)
		for i := range vs {
			vs[i] = graph.Node(i)
		}
		f.sparse = vs
	}
	return f
}

// EdgeMapArgs declares one edge-operator application.
type EdgeMapArgs struct {
	// Push is invoked for every edge (u, d) leaving an active vertex u
	// when traversing in the push direction; ei indexes the edge arrays
	// of the direction being scanned. It returns whether d's value
	// improved (the engine activates d in the next frontier, deduped and
	// ID-sorted at the round barrier). For deterministic simulation the
	// SET of activated vertices must not depend on thread interleaving —
	// which thread claims, how often, and in what order all wash out in
	// the merge. CAS transitions (one winner per vertex) and min-CAS
	// improvements over round-start snapshots both qualify; reading
	// mutable shared state into the claim decision does not. Shared
	// writes inside Push must themselves be commutative and idempotent
	// (CAS min-reductions, atomic adds).
	Push func(u, d graph.Node, ei int64) bool
	// Pull is invoked for every in-edge (u, v) of a candidate vertex v
	// when traversing in the pull direction. It returns whether v became
	// active and whether v's scan can stop early (charged as a prefix
	// scan via the runtime's in-direction arrays).
	Pull func(v, u graph.Node, ei int64) (active, stop bool)
	// PullCond gates which vertices scan in pull rounds (nil = all).
	// When nil the engine assumes whole-neighborhood scans and charges
	// edge reads in contiguous per-chunk blocks.
	PullCond func(v graph.Node) bool
	// OnPullDone runs after a vertex's pull scan completes (same thread),
	// for per-vertex reductions such as pagerank's sum finalization.
	OnPullDone func(v graph.Node)
	// OnPullChunk runs once per scheduler chunk after its vertices are
	// processed, on the owning thread, for contention-free chunk
	// reductions: accumulate locally over [lo, hi), then publish into a
	// t.ID-indexed shard so the kernel can fold the shards in thread
	// order after the round (order-sensitive reductions such as
	// pagerank's float residual stay deterministic that way).
	OnPullChunk func(t *memsim.Thread, lo, hi graph.Node)
	// Symmetric also traverses the transpose in push mode and the
	// out-direction in pull mode: undirected propagation (cc, kcore).
	Symmetric bool
	// Weighted charges edge-weight reads alongside edge scans.
	Weighted bool
	// PerEdge are arrays randomly accessed once per visited edge (label
	// gathers and scatters), charged per chunk.
	PerEdge []Access
	// PullPerEdge overrides PerEdge for pull rounds, whose per-edge
	// access pattern usually differs from push (a gather of the
	// neighbor's current value instead of a scatter to the target's).
	// nil means pull rounds charge PerEdge; an empty non-nil slice
	// means pull rounds have no per-edge operator accesses (e.g. bfs,
	// whose pull only tests frontier bits already charged per shard).
	PullPerEdge []Access
	// PerVertex are arrays randomly accessed once per processed vertex.
	PerVertex []Access
	// PullSeqRead/PullSeqWrite are node arrays streamed across each
	// vertex shard of a pull round (e.g. the dist array the pull
	// condition consults).
	PullSeqRead  []*memsim.Array
	PullSeqWrite []*memsim.Array
}

// EdgeMap runs one round: it applies the operator to f's neighborhoods in
// the direction and representation the config selects, charges all
// traversal traffic, records a RoundStat, and returns the next frontier
// (auto-converted to the policy's representation).
func (e *Engine) EdgeMap(f *Frontier, args EdgeMapArgs) *Frontier {
	pull := false
	switch {
	case args.Pull == nil || !e.CanPull():
		// push only
	case args.Push == nil, e.cfg.Dir == DirPull:
		pull = true
	case e.cfg.Dir == DirPush:
		// push only
	default:
		pull = f.count+f.outEdges > e.R.NumEdges()/e.cfg.PullFrac
	}

	e.rounds++
	rs := RoundStat{Round: e.rounds, Frontier: f.count, Edges: f.outEdges, Pull: pull}

	var next *Frontier
	switch {
	case pull:
		conv := e.toDense(f)
		rs.Dense = true
		next = e.pullRound(f, &args, &rs)
		addStats(&rs.Stats, conv)
		// Representation maintenance: pull rounds produce a dense
		// frontier natively; convert if policy wants sparse.
		if next.count > 0 && e.wantDense(next.count, next.outEdges) != next.isDense {
			e.convert(next, &rs)
		}
	case f.isDense:
		rs.Dense = true
		next = e.pushDense(f, &args, &rs)
	default:
		next = e.pushSparse(f, &args, &rs)
	}
	e.trace = append(e.trace, rs)
	return next
}

// mergeClaims is the sequential barrier phase of a push round: it drains
// the per-thread claim buffers in thread-index order, deduplicates against
// the reusable dedup set, and sorts the result by vertex ID. Sorting makes
// the next frontier independent of claim attribution, so operators whose
// claims race to a unique winner (kcore's degree crossings) are as
// deterministic as snapshot-judged ones. The dedup set is cleared in
// O(|activated|).
func (e *Engine) mergeClaims(n int) *Frontier {
	if e.dedup == nil {
		e.dedup = NewDense(n)
	}
	var vs []graph.Node
	for i := range e.claims {
		for _, d := range e.claims[i] {
			if e.dedup.Set(d) {
				vs = append(vs, d)
			}
		}
		e.claims[i] = e.claims[i][:0]
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var outEdges int64
	for _, v := range vs {
		e.dedup.Unset(v)
		outEdges += e.R.OutDegree(v)
	}
	return &Frontier{n: n, sparse: vs, count: int64(len(vs)), outEdges: outEdges}
}

// finishPush converts the merged claim frontier to the representation the
// policy prescribes and charges the frontier writes in a follow-up parallel
// region: worklist appends for a sparse next frontier, bit-vector scatters
// for a dense one (the charges the scan region no longer issues, since
// activation counts there would depend on claim attribution).
func (e *Engine) finishPush(next *Frontier, rs *RoundStat) *Frontier {
	if next.count == 0 {
		return next
	}
	if e.wantDense(next.count, next.outEdges) {
		next.dense = DenseFromVertices(next.n, next.sparse)
		next.isDense = true
		next.sparse = nil
		addStats(&rs.Stats, e.R.ParallelItems(next.count, func(t *memsim.Thread, lo, hi int64) {
			e.nextBits.RandomN(t, hi-lo, true)
		}))
	} else {
		addStats(&rs.Stats, e.R.ParallelItems(next.count, func(t *memsim.Thread, lo, hi int64) {
			e.wl.WriteRange(t, lo, hi)
		}))
	}
	return next
}

// pushSparse scatters from an explicit vertex list: the Galois sparse
// worklist round. Only the frontier's own vertices and edges are charged.
func (e *Engine) pushSparse(f *Frontier, args *EdgeMapArgs, rs *RoundStat) *Frontier {
	stats := e.R.ParallelItems(int64(len(f.sparse)), func(t *memsim.Thread, lo, hi int64) {
		e.wl.ReadRange(t, lo, hi)
		var chunkVerts, chunkEdges int64
		buf := e.claims[t.ID]
		claim := func(d graph.Node) { buf = append(buf, d) }
		for _, u := range f.sparse[lo:hi] {
			chunkVerts++
			chunkEdges += e.scanPush(t, u, args, claim)
		}
		e.claims[t.ID] = buf
		e.chargePushChunk(t, args, chunkVerts, chunkEdges, true)
	})
	rs.Stats = stats
	return e.finishPush(e.mergeClaims(f.n), rs)
}

// pushDense scatters from the bit-vector representation: every round scans
// the whole frontier bit-vector and offsets array (the §5.2 dense-worklist
// penalty), visiting edges only for active vertices.
func (e *Engine) pushDense(f *Frontier, args *EdgeMapArgs, rs *RoundStat) *Frontier {
	n := int64(f.n)
	stats := e.R.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		if f.count < n {
			e.bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
		}
		if f.count == n {
			// Full frontier: every edge in the shard is scanned, so
			// charge offsets and edges as contiguous blocks.
			e.out.ChargeBlock(t, lo, hi, args.Weighted)
			if args.Symmetric {
				e.in.ChargeBlock(t, lo, hi, args.Weighted)
			}
		} else {
			e.out.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			if args.Symmetric {
				e.in.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			}
		}
		var chunkVerts, chunkEdges int64
		buf := e.claims[t.ID]
		claim := func(d graph.Node) { buf = append(buf, d) }
		perVertexEdges := f.count < n
		f.dense.ForEachInRange(lo, hi, func(u graph.Node) {
			chunkVerts++
			chunkEdges += e.scanPushCharged(t, u, args, claim, perVertexEdges)
		})
		e.claims[t.ID] = buf
		e.chargePushChunk(t, args, chunkVerts, chunkEdges, false)
	})
	rs.Stats = stats
	return e.finishPush(e.mergeClaims(f.n), rs)
}

// scanPush visits u's out- (and with Symmetric, in-) neighborhood, charging
// edge reads per vertex, and returns the number of edges visited.
func (e *Engine) scanPush(t *memsim.Thread, u graph.Node, args *EdgeMapArgs, activate func(graph.Node)) int64 {
	return e.scanPushCharged(t, u, args, activate, true)
}

func (e *Engine) scanPushCharged(t *memsim.Thread, u graph.Node, args *EdgeMapArgs, activate func(graph.Node), chargeEdges bool) int64 {
	if chargeEdges {
		e.out.ChargeScan(t, u, args.Weighted)
	}
	cur := e.out.Adj.Cursor(u)
	edges := int64(0)
	for {
		d, ok := cur.Next()
		if !ok {
			break
		}
		if args.Push(u, d, cur.EI()) {
			activate(d)
		}
		edges++
	}
	if args.Symmetric {
		if chargeEdges {
			e.in.ChargeScan(t, u, false)
		}
		icur := e.in.Adj.Cursor(u)
		k := int64(0)
		for {
			d, ok := icur.Next()
			if !ok {
				break
			}
			if args.Push(u, d, icur.EI()) {
				activate(d)
			}
			k++
		}
		edges += k
	}
	return edges
}

// chargePushChunk issues the batched per-chunk charges of a push round:
// one random offsets gather per frontier vertex (sparse rounds only; dense
// rounds stream the offsets array instead) and the declared per-edge and
// per-vertex operator accesses.
func (e *Engine) chargePushChunk(t *memsim.Thread, args *EdgeMapArgs, verts, edges int64, offsetGather bool) {
	if offsetGather {
		e.out.Offsets.RandomN(t, verts, false)
		if args.Symmetric {
			e.in.Offsets.RandomN(t, verts, false)
		}
	}
	for _, a := range args.PerEdge {
		a.Arr.RandomN(t, edges, a.Write)
	}
	for _, a := range args.PerVertex {
		a.Arr.RandomN(t, verts, a.Write)
	}
	t.Op(int(edges))
}

// pullRound gathers along in-edges: every vertex passing PullCond scans
// its in-neighborhood, stopping early if the operator says so. Whole
// scans (PullCond == nil) are charged as contiguous blocks; early-exit
// scans as per-vertex prefixes.
func (e *Engine) pullRound(f *Frontier, args *EdgeMapArgs, rs *RoundStat) *Frontier {
	n := int64(f.n)
	nextSet := NewDense(f.n)
	whole := args.PullCond == nil
	var cnt, outEdges atomic.Int64
	stats := e.R.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		if f.count < n {
			e.bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
		}
		for _, arr := range args.PullSeqRead {
			arr.ReadRange(t, int64(lo), int64(hi))
		}
		for _, arr := range args.PullSeqWrite {
			arr.WriteRange(t, int64(lo), int64(hi))
		}
		if whole {
			e.in.ChargeBlock(t, lo, hi, args.Weighted)
			if args.Symmetric {
				e.out.ChargeBlock(t, lo, hi, args.Weighted)
			}
		} else {
			e.in.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			if args.Symmetric {
				e.out.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			}
		}
		var chunkVerts, chunkScanned, activated, nextOut int64
		for v := lo; v < hi; v++ {
			if !whole && !args.PullCond(v) {
				continue
			}
			chunkVerts++
			active := false
			stopped := false
			icur := e.in.Adj.Cursor(v)
			scanned := int64(0)
			for {
				u, ok := icur.Next()
				if !ok {
					break
				}
				a, stop := args.Pull(v, u, icur.EI())
				scanned++
				active = active || a
				if stop {
					stopped = true
					break
				}
			}
			if !whole {
				e.in.ChargePrefix(t, v, icur.Consumed(), icur.DeltaConsumed(), scanned)
			}
			chunkScanned += scanned
			if args.Symmetric && !stopped {
				ocur := e.out.Adj.Cursor(v)
				oscanned := int64(0)
				for {
					u, ok := ocur.Next()
					if !ok {
						break
					}
					a, stop := args.Pull(v, u, ocur.EI())
					oscanned++
					active = active || a
					if stop {
						break
					}
				}
				if !whole {
					e.out.ChargePrefix(t, v, ocur.Consumed(), ocur.DeltaConsumed(), oscanned)
				}
				chunkScanned += oscanned
			}
			if active && nextSet.Set(v) {
				activated++
				nextOut += e.R.OutDegree(v)
			}
			if args.OnPullDone != nil {
				args.OnPullDone(v)
			}
		}
		perEdge := args.PerEdge
		if args.PullPerEdge != nil {
			perEdge = args.PullPerEdge
		}
		for _, a := range perEdge {
			a.Arr.RandomN(t, chunkScanned, a.Write)
		}
		for _, a := range args.PerVertex {
			a.Arr.RandomN(t, chunkVerts, a.Write)
		}
		ops := chunkScanned
		if args.OnPullDone != nil {
			ops += chunkVerts
		}
		t.Op(int(ops))
		e.nextBits.RandomN(t, activated, true)
		if args.OnPullChunk != nil {
			args.OnPullChunk(t, lo, hi)
		}
		cnt.Add(activated)
		outEdges.Add(nextOut)
	})
	rs.Stats = stats
	return &Frontier{n: f.n, dense: nextSet, isDense: true, count: cnt.Load(), outEdges: outEdges.Load()}
}

// toDense converts f to the dense representation in place (pull rounds
// need O(1) membership), charging the worklist read and bit scatter, and
// returns the conversion pass's stats.
func (e *Engine) toDense(f *Frontier) memsim.RegionStats {
	if f.isDense {
		return memsim.RegionStats{}
	}
	vs := f.sparse
	stats := e.R.ParallelItems(int64(len(vs)), func(t *memsim.Thread, lo, hi int64) {
		e.wl.ReadRange(t, lo, hi)
		e.bits.RandomN(t, hi-lo, true)
	})
	f.dense = DenseFromVertices(f.n, vs)
	f.isDense = true
	f.sparse = nil
	return stats
}

// convert flips f's representation to match the policy threshold, charging
// the conversion passes, and folds their cost into the round's stats.
func (e *Engine) convert(f *Frontier, rs *RoundStat) {
	if f.isDense {
		words := int64(f.dense.WordCount())
		scan := e.R.ParallelItems(words, func(t *memsim.Thread, lo, hi int64) {
			e.bits.ReadRange(t, lo, hi)
		})
		vs := f.dense.Vertices(make([]graph.Node, 0, f.count))
		write := e.R.ParallelItems(f.count, func(t *memsim.Thread, lo, hi int64) {
			e.wl.WriteRange(t, lo, hi)
		})
		f.sparse = vs
		f.dense = nil
		f.isDense = false
		addStats(&rs.Stats, scan)
		addStats(&rs.Stats, write)
	} else {
		addStats(&rs.Stats, e.toDense(f))
	}
}

// VertexMapArgs declares one streaming per-vertex pass.
type VertexMapArgs struct {
	// Fn runs once per vertex on the owning thread.
	Fn func(v graph.Node)
	// SeqRead/SeqWrite are node arrays streamed per chunk.
	SeqRead  []*memsim.Array
	SeqWrite []*memsim.Array
	// PerVertex are arrays randomly accessed once per vertex (e.g. the
	// label chain of a shortcut/pointer-jump pass).
	PerVertex []Access
	// Ops charges one operator application per vertex.
	Ops bool
}

// VertexMap applies the pass to every vertex, charging sequential accesses
// per chunk.
func (e *Engine) VertexMap(a VertexMapArgs) memsim.RegionStats {
	return e.R.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		e.chargeVertexChunk(t, &a, lo, hi)
		if a.Fn != nil {
			for v := lo; v < hi; v++ {
				a.Fn(v)
			}
		}
	})
}

// VertexFilter is VertexMap plus a predicate: it returns the frontier of
// vertices for which keep is true, charging the worklist writes. Each
// thread buffers the vertices it keeps (every vertex has one owner, so the
// kept set is deterministic); the merge concatenates the buffers in thread
// order and sorts by ID.
func (e *Engine) VertexFilter(a VertexMapArgs, keep func(v graph.Node) bool) *Frontier {
	e.R.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		e.chargeVertexChunk(t, &a, lo, hi)
		buf := e.claims[t.ID]
		var kept int64
		for v := lo; v < hi; v++ {
			if a.Fn != nil {
				a.Fn(v)
			}
			if keep(v) {
				buf = append(buf, v)
				kept++
			}
		}
		e.claims[t.ID] = buf
		e.wl.WriteRange(t, 0, kept)
	})
	var vs []graph.Node
	for i := range e.claims {
		vs = append(vs, e.claims[i]...)
		e.claims[i] = e.claims[i][:0]
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var outEdges int64
	for _, v := range vs {
		outEdges += e.R.OutDegree(v)
	}
	f := &Frontier{n: e.R.NumNodes(), sparse: vs, count: int64(len(vs)), outEdges: outEdges}
	if f.count > 0 && e.wantDense(f.count, f.outEdges) {
		f.dense = DenseFromVertices(f.n, f.sparse)
		f.isDense = true
		f.sparse = nil
	}
	return f
}

func (e *Engine) chargeVertexChunk(t *memsim.Thread, a *VertexMapArgs, lo, hi graph.Node) {
	for _, arr := range a.SeqRead {
		arr.ReadRange(t, int64(lo), int64(hi))
	}
	for _, arr := range a.SeqWrite {
		arr.WriteRange(t, int64(lo), int64(hi))
	}
	for _, acc := range a.PerVertex {
		acc.Arr.RandomN(t, int64(hi-lo), acc.Write)
	}
	if a.Ops {
		t.Op(int(hi - lo))
	}
}

// TraversalName names the traversal a config produces on r, matching the
// paper's algorithm labels: sparse-wl, dense-wl, hybrid-wl, or dir-opt
// when pull rounds are reachable.
func TraversalName(r *core.Runtime, cfg Config) string {
	if cfg.Dir != DirPush && r.InOffsets != nil {
		return "dir-opt"
	}
	switch cfg.Rep {
	case RepSparse:
		return "sparse-wl"
	case RepDense:
		return "dense-wl"
	default:
		return "hybrid-wl"
	}
}
