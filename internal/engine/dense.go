package engine

import (
	"sort"
	"sync/atomic"

	"pmemgraph/internal/graph"
)

// Dense is a bit-vector worklist over |V| vertices with atomic activation —
// the frontier structure of §5.1 of the paper, and the dedup/membership
// structure behind the engine's sparse worklists. It is safe for concurrent
// use by the virtual threads of one memsim parallel region (and by the
// shard workers of one superstep, which only read it). It is a pure data
// structure; the simulated cost of reading and writing it is charged by the
// kernels through their memsim arrays.
type Dense struct {
	words []atomic.Uint64
	n     int
}

// NewDense returns an empty dense worklist for n vertices.
func NewDense(n int) *Dense {
	return &Dense{words: make([]atomic.Uint64, (n+63)/64), n: n}
}

// FullDense returns a dense worklist with every vertex active (the initial
// frontier of topology-driven rounds).
func FullDense(n int) *Dense {
	d := NewDense(n)
	for i := range d.words {
		d.words[i].Store(^uint64(0))
	}
	if rem := n & 63; rem != 0 && len(d.words) > 0 {
		d.words[len(d.words)-1].Store((uint64(1) << rem) - 1)
	}
	return d
}

// DenseFromVertices returns a dense worklist with exactly vs active (the
// sparse-to-dense frontier conversion).
func DenseFromVertices(n int, vs []graph.Node) *Dense {
	d := NewDense(n)
	for _, v := range vs {
		d.Set(v)
	}
	return d
}

// Vertices appends every active vertex in ascending ID order to buf and
// returns the extended slice (the dense-to-sparse frontier conversion).
func (d *Dense) Vertices(buf []graph.Node) []graph.Node {
	for w := range d.words {
		bits := d.words[w].Load()
		for bits != 0 {
			b := bits & (-bits)
			buf = append(buf, graph.Node(w)<<6+graph.Node(trailingZeros(bits)))
			bits ^= b
		}
	}
	return buf
}

// Len returns the vertex capacity |V|.
func (d *Dense) Len() int { return d.n }

// WordCount returns the number of 64-bit words backing the bit-vector
// (the unit kernels charge when scanning the frontier).
func (d *Dense) WordCount() int { return len(d.words) }

// Set activates v, reporting whether it was newly activated.
func (d *Dense) Set(v graph.Node) bool {
	w := &d.words[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// Test reports whether v is active.
func (d *Dense) Test(v graph.Node) bool {
	return d.words[v>>6].Load()&(1<<(v&63)) != 0
}

// Unset deactivates v (used to clear a reused dedup set in O(|cleared|)
// instead of O(|V|)).
func (d *Dense) Unset(v graph.Node) {
	d.words[v>>6].And(^(uint64(1) << (v & 63)))
}

// Clear deactivates all vertices.
func (d *Dense) Clear() {
	for i := range d.words {
		d.words[i].Store(0)
	}
}

// Count returns the number of active vertices.
func (d *Dense) Count() int {
	total := 0
	for i := range d.words {
		total += popcount(d.words[i].Load())
	}
	return total
}

// ForEachInRange calls fn for every active vertex in [lo, hi); used by
// kernels to iterate a thread's share of the frontier.
func (d *Dense) ForEachInRange(lo, hi graph.Node, fn func(v graph.Node)) {
	for w := lo >> 6; w <= (hi-1)>>6 && int(w) < len(d.words); w++ {
		bits := d.words[w].Load()
		for bits != 0 {
			b := bits & (-bits)
			v := w<<6 + graph.Node(trailingZeros(bits))
			bits ^= b
			if v >= lo && v < hi {
				fn(v)
			}
		}
	}
}

// MergeFragments merges per-shard claim fragments (each already sorted and
// deduplicated, exactly as a superstep exchange ships them) into one
// ID-sorted, deduplicated next frontier. Fragments are concatenated in
// shard-index order before the final sort, so the result is a pure
// function of the fragment contents — the cross-shard analogue of the
// per-thread claim-buffer merge the engine performs at push-round
// barriers.
func MergeFragments(frags [][]graph.Node) []graph.Node {
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	if total == 0 {
		return nil
	}
	out := make([]graph.Node, 0, total)
	for _, f := range frags {
		out = append(out, f...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
