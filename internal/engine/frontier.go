package engine

import (
	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
)

// Frontier is the set of active vertices flowing between rounds of an
// EdgeMap-based kernel. It is held either sparsely (an explicit vertex
// slice, the Galois-style worklist) or densely (a |V| bit-vector, the
// Ligra/GBBS/GraphIt representation) and auto-converts between the two at
// the engine's |frontier| + out-edges(frontier) threshold. Alongside the
// membership set it tracks the number of out-edges leaving the frontier,
// the quantity both the representation switch and the push/pull direction
// choice are driven by.
type Frontier struct {
	n        int
	sparse   []graph.Node
	dense    *Dense
	isDense  bool
	count    int64
	outEdges int64
}

// Count returns the number of active vertices.
func (f *Frontier) Count() int64 { return f.count }

// OutEdges returns the total out-degree of the active vertices.
func (f *Frontier) OutEdges() int64 { return f.outEdges }

// Empty reports whether no vertex is active.
func (f *Frontier) Empty() bool { return f.count == 0 }

// IsDense reports the current representation.
func (f *Frontier) IsDense() bool { return f.isDense }

// Has reports whether v is active, in either representation.
func (f *Frontier) Has(v graph.Node) bool {
	if f.isDense {
		return f.dense.Test(v)
	}
	for _, u := range f.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Vertices materializes the active set as a vertex slice (in ascending ID
// order for dense frontiers, activation order for sparse ones). The host-
// side copy is not charged to the simulator; kernels that iterate the
// result do so through EdgeMap, which charges the worklist reads.
func (f *Frontier) Vertices() []graph.Node {
	if f.isDense {
		return f.dense.Vertices(make([]graph.Node, 0, f.count))
	}
	return f.sparse
}

// sumOutDegrees computes the out-edge total of a vertex set on the epoch
// the runtime serves (merged degrees on overlay epochs).
func sumOutDegrees(r *core.Runtime, vs []graph.Node) int64 {
	var total int64
	for _, v := range vs {
		total += r.OutDegree(v)
	}
	return total
}
