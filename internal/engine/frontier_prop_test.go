package engine

import (
	"math/rand"
	"testing"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// Property-based coverage for Frontier: random vertex sets driven through
// sparse<->dense conversions and the engine's set operations must preserve
// membership exactly, keep Count/OutEdges consistent with the set, and
// honor the |frontier|+outEdges > |E|/DenseFrac conversion threshold. The
// generators are seeded, so every failure reproduces.

// randomVertexSet draws a unique vertex subset in random order.
func randomVertexSet(rng *rand.Rand, n int) []graph.Node {
	size := rng.Intn(n)
	perm := rng.Perm(n)
	vs := make([]graph.Node, size)
	for i := 0; i < size; i++ {
		vs[i] = graph.Node(perm[i])
	}
	return vs
}

// setOf indexes a vertex list for membership checks.
func setOf(vs []graph.Node) map[graph.Node]bool {
	m := make(map[graph.Node]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

// checkFrontierMatchesSet asserts f represents exactly want over n
// vertices: membership (Has), materialization (Vertices), cardinality and
// the out-edge aggregate used by the conversion and direction thresholds.
func checkFrontierMatchesSet(t *testing.T, g *graph.Graph, f *Frontier, want map[graph.Node]bool, context string) {
	t.Helper()
	if f.Count() != int64(len(want)) {
		t.Fatalf("%s: Count = %d, want %d", context, f.Count(), len(want))
	}
	var wantEdges int64
	for v := range want {
		wantEdges += g.OutDegree(v)
	}
	if f.OutEdges() != wantEdges {
		t.Fatalf("%s: OutEdges = %d, want %d", context, f.OutEdges(), wantEdges)
	}
	got := f.Vertices()
	if len(got) != len(want) {
		t.Fatalf("%s: Vertices len = %d, want %d", context, len(got), len(want))
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("%s: Vertices contains non-member %d", context, v)
		}
	}
	// Probe Has on members and a sample of non-members.
	for v := range want {
		if !f.Has(v) {
			t.Fatalf("%s: member %d not found by Has", context, v)
		}
	}
	for v := 0; v < g.NumNodes(); v += 7 {
		if !want[graph.Node(v)] && f.Has(graph.Node(v)) {
			t.Fatalf("%s: non-member %d reported by Has", context, v)
		}
	}
}

func TestFrontierPropertyRandomSetsAndConversions(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(257, 2100, 3), // odd size exercises the last bit-vector word
		gen.WebCrawl(400, 6, 30, 5),  // degree-skewed
		gen.Star(129),                // one heavy hub
		gen.Path(64),                 // uniform degree 1
	}
	for gi, g := range graphs {
		rng := rand.New(rand.NewSource(int64(1000 + gi)))
		e := testEngine(t, g, Config{Rep: RepAuto}, false)
		threshold := g.NumEdges() / e.Config().DenseFrac
		for iter := 0; iter < 60; iter++ {
			vs := randomVertexSet(rng, g.NumNodes())
			want := setOf(vs)
			f := e.NewFrontier(vs...)

			// Representation must follow the documented threshold.
			wantDense := f.Count()+f.OutEdges() > threshold
			if f.IsDense() != wantDense {
				t.Fatalf("graph %d iter %d: |f|=%d outEdges=%d threshold=%d: dense=%v, want %v",
					gi, iter, f.Count(), f.OutEdges(), threshold, f.IsDense(), wantDense)
			}
			checkFrontierMatchesSet(t, g, f, want, "fresh frontier")

			// Sparse -> dense -> sparse round trip preserves the set and
			// the aggregates the thresholds consume.
			e.toDense(f)
			if !f.IsDense() {
				t.Fatal("toDense left the frontier sparse")
			}
			checkFrontierMatchesSet(t, g, f, want, "after toDense")
			var rs RoundStat
			e.convert(f, &rs) // dense -> sparse (explicit flip)
			if f.IsDense() {
				t.Fatal("convert kept the frontier dense")
			}
			checkFrontierMatchesSet(t, g, f, want, "after dense->sparse convert")
		}
	}
}

// TestFrontierPropertyThresholdBoundary pins the conversion threshold
// exactly: a frontier whose |f|+outEdges equals |E|/DenseFrac stays
// sparse (the switch is a strict >); one vertex past it converts. Star
// graphs make the arithmetic exact — every leaf has out-degree 1 (its
// edge back to the hub), so k leaves weigh exactly 2k.
func TestFrontierPropertyThresholdBoundary(t *testing.T) {
	g := gen.Star(1001) // 2000 edges: hub<->leaf both ways
	e := testEngine(t, g, Config{Rep: RepAuto}, false)
	threshold := g.NumEdges() / e.Config().DenseFrac // 2000/20 = 100
	if threshold != 100 {
		t.Fatalf("star threshold = %d, want 100", threshold)
	}
	leaves := func(k int) []graph.Node {
		vs := make([]graph.Node, k)
		for i := range vs {
			vs[i] = graph.Node(i + 1)
		}
		return vs
	}
	for _, leaf := range leaves(50) {
		if g.OutDegree(leaf) != 1 {
			t.Fatalf("leaf %d has out-degree %d, want 1", leaf, g.OutDegree(leaf))
		}
	}
	if f := e.NewFrontier(leaves(50)...); f.IsDense() {
		t.Errorf("at the threshold (2*50 == %d): converted to dense, want sparse (strict >)", threshold)
	}
	if f := e.NewFrontier(leaves(51)...); !f.IsDense() {
		t.Errorf("past the threshold (2*51 > %d): stayed sparse", threshold)
	}
	// The hub alone carries all 1000 out-edges: heavily past the threshold.
	if f := e.NewFrontier(0); !f.IsDense() {
		t.Error("hub frontier (outEdges=1000) stayed sparse")
	}
	// Forced representations ignore the threshold entirely.
	sparse := testEngine(t, g, Config{Rep: RepSparse}, false)
	if f := sparse.NewFrontier(0); f.IsDense() {
		t.Error("RepSparse converted the hub frontier")
	}
	dense := testEngine(t, g, Config{Rep: RepDense}, false)
	if f := dense.NewFrontier(leaves(1)...); !f.IsDense() {
		t.Error("RepDense kept a one-leaf frontier sparse")
	}
}

// TestFrontierPropertyMergeClaims feeds randomized multisets of activation
// claims through the push-round merge and asserts the outcome is the
// deduplicated set in ascending ID order regardless of how claims are
// distributed across thread buffers or how often they repeat — the
// property that makes claim attribution (a race outcome) unobservable.
func TestFrontierPropertyMergeClaims(t *testing.T) {
	g := gen.ErdosRenyi(300, 2400, 9)
	e := testEngine(t, g, Config{Rep: RepSparse}, false)
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 80; iter++ {
		vs := randomVertexSet(rng, g.NumNodes())
		want := setOf(vs)

		// Scatter each claim (possibly several times) into random buffers.
		for _, v := range vs {
			for c := 0; c < 1+rng.Intn(3); c++ {
				tid := rng.Intn(len(e.claims))
				e.claims[tid] = append(e.claims[tid], v)
			}
		}
		f := e.mergeClaims(g.NumNodes())
		checkFrontierMatchesSet(t, g, f, want, "merged claims")
		for i := 1; i < len(f.sparse); i++ {
			if f.sparse[i-1] >= f.sparse[i] {
				t.Fatalf("iter %d: merged frontier not strictly ascending at %d", iter, i)
			}
		}
		for i := range e.claims {
			if len(e.claims[i]) != 0 {
				t.Fatalf("iter %d: claim buffer %d not drained", iter, i)
			}
		}
	}
}
