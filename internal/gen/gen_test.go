package gen

import (
	"testing"

	"pmemgraph/internal/graph"
)

func TestUtilityGraphShapes(t *testing.T) {
	p := Path(10)
	if p.NumNodes() != 10 || p.NumEdges() != 9 {
		t.Errorf("path: V=%d E=%d", p.NumNodes(), p.NumEdges())
	}
	c := Cycle(8)
	if c.NumEdges() != 8 {
		t.Errorf("cycle edges = %d", c.NumEdges())
	}
	s := Star(5)
	if s.OutDegree(0) != 4 {
		t.Errorf("star center degree = %d", s.OutDegree(0))
	}
	k := Complete(6)
	if k.NumEdges() != 30 {
		t.Errorf("K6 edges = %d", k.NumEdges())
	}
	gr := Grid(4, 5)
	if gr.NumNodes() != 20 {
		t.Errorf("grid nodes = %d", gr.NumNodes())
	}
	// Interior grid node has degree 4 in each direction.
	if gr.OutDegree(graph.Node(1*5+2)) != 4 {
		t.Errorf("grid interior degree = %d", gr.OutDegree(7))
	}
	for _, g := range []*graph.Graph{p, c, s, k, gr} {
		if err := g.Validate(); err != nil {
			t.Errorf("validate: %v", err)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, 7)
	if g.NumEdges() != 500 {
		t.Errorf("ER edges = %d, want 500", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Determinism.
	h := ErdosRenyi(100, 500, 7)
	for v := 0; v < 100; v++ {
		a, b := g.OutNeighbors(graph.Node(v)), h.OutNeighbors(graph.Node(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs between identical seeds", v)
		}
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 1, false)
	if g.NumNodes() != 4096 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4096*8 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Power-law skew: max out-degree far above average.
	_, maxDeg := g.MaxOutDegreeNode()
	if maxDeg < 8*8 {
		t.Errorf("max degree %d not skewed (avg 8)", maxDeg)
	}
}

func TestKronSymmetric(t *testing.T) {
	g := Kron(10, 8, 5)
	g.BuildIn()
	// Symmetrized: in-degree distribution matches out-degree distribution.
	for v := 0; v < g.NumNodes(); v += 97 {
		if g.OutDegree(graph.Node(v)) != g.InDegree(graph.Node(v)) {
			t.Fatalf("node %d: out %d != in %d (should be symmetric)", v, g.OutDegree(graph.Node(v)), g.InDegree(graph.Node(v)))
		}
	}
}

func TestDiameterClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("diameter estimation on generated graphs is slow")
	}
	// kron/rmat: low diameter. web crawls: high diameter.
	kron := Kron(14, 16, 30)
	if d := kron.EstimateDiameter(); d > 20 {
		t.Errorf("kron diameter = %d, want low (<20)", d)
	}
	web := WebCrawl(40_000, 20, 300, 12)
	if d := web.EstimateDiameter(); d < 80 {
		t.Errorf("web crawl diameter = %d, want high (>=80)", d)
	}
	prot := Protein(8_000, 40, 60, 100)
	if d := prot.EstimateDiameter(); d < 10 || d > 200 {
		t.Errorf("protein diameter = %d, want moderate (10-200)", d)
	}
}

func TestWebCrawlHubSkew(t *testing.T) {
	g := WebCrawl(20_000, 20, 100, 12)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	maxIn := g.MaxInDegree()
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(maxIn) < 40*avg {
		t.Errorf("max in-degree %d not hub-skewed (avg %.1f)", maxIn, avg)
	}
}

func TestPaperInputsTable(t *testing.T) {
	rows := PaperInputs()
	if len(rows) != 6 {
		t.Fatalf("inputs = %d, want 6", len(rows))
	}
	if rows[0].Name != "kron30" || rows[5].Name != "wdc12" {
		t.Error("Table 3 order broken")
	}
	hi := 0
	for _, r := range rows {
		if r.HighDiameter {
			hi++
		}
	}
	if hi != 3 {
		t.Errorf("high-diameter inputs = %d, want 3 (web crawls)", hi)
	}
	if _, err := PaperInput("nope"); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestScaledInputsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generating all inputs is slow")
	}
	densest, densestAvg := "", 0.0
	for _, name := range InputNames() {
		g, _, err := Input(name, ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		avg := float64(g.NumEdges()) / float64(g.NumNodes())
		// Generation targets (shapes()), not the paper's absolute
		// densities; iso_m100's density is deliberately reduced
		// (DESIGN.md scaling rule).
		if target := float64(shapes()[name].avgDeg); avg < target/4 {
			t.Errorf("%s: avg degree %.1f too far below generation target %.0f", name, avg, target)
		}
		if avg > densestAvg {
			densest, densestAvg = name, avg
		}
	}
	if densest != "iso_m100" {
		t.Errorf("densest input = %s, want iso_m100 (protein network)", densest)
	}
}

func TestSortNodesByDegreeDesc(t *testing.T) {
	g := Star(10)
	order := SortNodesByDegreeDesc(g)
	if order[0] != 0 {
		t.Errorf("highest-degree node = %d, want 0 (star center)", order[0])
	}
	for i := 1; i < len(order); i++ {
		if g.OutDegree(order[i-1]) < g.OutDegree(order[i]) {
			t.Fatal("order not descending")
		}
	}
}
