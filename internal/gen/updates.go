package gen

import (
	"fmt"
	"sort"

	"pmemgraph/internal/graph"
)

// defaultUpdateWeightMax bounds insert weights when a weighted graph has
// no edges to infer a range from; it matches frameworks.DefaultWeightMax.
const defaultUpdateWeightMax = 64

// weightCeiling infers the weight range of a weighted graph so inserted
// edges stay on the same scale as the existing ones (a graphgen
// -weights 8 graph must not gain [1,64] inserts).
func weightCeiling(g *graph.Graph) int {
	max := uint32(0)
	for _, w := range g.OutWeights {
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return defaultUpdateWeightMax
	}
	return int(max)
}

// UpdateStream generates a deterministic stream of edge-update batches
// against g for the streaming-update workload: each batch is valid for the
// graph state produced by applying all earlier batches (the generator
// evolves a working copy), so the stream can be POSTed to
// /v1/graphs/{name}/updates batch by batch, or replayed through
// graph.ApplyUpdates, without validation errors. Batches mix ~3/4
// insertions of fresh random pairs with ~1/4 deletions of existing edges
// when withDeletes is set, and are insert-only otherwise (insert-only
// streams keep incremental cc on its fast path). The stream is a pure
// function of (g, batches, perBatch, seed).
func UpdateStream(g *graph.Graph, batches, perBatch int, seed uint64, withDeletes bool) ([][]graph.EdgeUpdate, error) {
	if batches <= 0 || perBatch <= 0 {
		return nil, fmt.Errorf("gen: update stream needs positive batches (%d) and batch size (%d)", batches, perBatch)
	}
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("gen: update stream needs at least 2 nodes, graph has %d", n)
	}
	r := newRNG(seed ^ 0x57EA3B17)
	cur := g
	weighted := g.HasWeights()
	weightMax := 0
	if weighted {
		weightMax = weightCeiling(g)
	}
	stream := make([][]graph.EdgeUpdate, 0, batches)
	for b := 0; b < batches; b++ {
		ups := make([]graph.EdgeUpdate, 0, perBatch)
		inserted := make(map[uint64]struct{})
		deleted := make(map[uint64]struct{})
		key := func(s, d graph.Node) uint64 { return uint64(s)<<32 | uint64(d) }
		// redraws bounds consecutive failed draws so a pathological batch
		// (e.g. a tiny graph whose every ordered pair is already deleted
		// in this batch) errors out instead of spinning forever.
		redraws := 0
		for len(ups) < perBatch {
			if redraws > 64 {
				return nil, fmt.Errorf("gen: batch %d stuck after %d operations (graph too small for batch size %d?)", b, len(ups), perBatch)
			}
			if withDeletes && cur.NumEdges() > 0 && r.intn(4) == 0 {
				// Delete a uniformly random existing edge; redraw if the
				// pair already appears in this batch (one batch may not
				// delete a pair twice or both insert and delete it).
				ok := false
				for attempt := 0; attempt < 16; attempt++ {
					ei := int64(r.next() % uint64(cur.NumEdges()))
					src := graph.Node(sort.Search(cur.NumNodes(), func(v int) bool {
						return cur.OutOffsets[v+1] > ei
					}))
					dst := cur.OutEdges[ei]
					k := key(src, dst)
					if _, dup := deleted[k]; dup {
						continue
					}
					if _, dup := inserted[k]; dup {
						continue
					}
					deleted[k] = struct{}{}
					ups = append(ups, graph.EdgeUpdate{Op: graph.OpDelete, Src: src, Dst: dst})
					ok = true
					break
				}
				if ok {
					continue
				}
				// Dense batch over a tiny graph: fall through to an insert.
			}
			src := graph.Node(r.intn(n))
			dst := graph.Node(r.intn(n))
			k := key(src, dst)
			if _, dup := deleted[k]; dup {
				redraws++
				continue // inserting a pair deleted in this batch is invalid
			}
			redraws = 0
			inserted[k] = struct{}{}
			u := graph.EdgeUpdate{Op: graph.OpInsert, Src: src, Dst: dst}
			if weighted {
				u.Weight = uint32(1 + r.intn(weightMax))
			}
			ups = append(ups, u)
		}
		next, _, err := graph.ApplyUpdates(cur, ups)
		if err != nil {
			return nil, fmt.Errorf("gen: generated batch %d does not apply: %w", b, err)
		}
		stream = append(stream, ups)
		cur = next
	}
	return stream, nil
}
