package gen

import (
	"fmt"
	"math"

	"pmemgraph/internal/graph"
)

func mathPow(x, y float64) float64 { return math.Pow(x, y) }

func mathLog(x float64) float64 { return math.Log(x) }

// PaperRow records the Table 3 row for one of the paper's inputs, used by
// the harness to print paper-vs-reproduction property tables.
type PaperRow struct {
	Name        string
	Nodes       int64 // |V|, paper
	Edges       int64 // |E|, paper
	AvgDegree   int
	EstDiameter int
	SizeGB      float64
	// FitsInDRAM mirrors §3: kron30 and clueweb12 fit in the 384 GB of
	// DRAM; uk14, rmat32, iso_m100 and wdc12 do not.
	FitsInDRAM bool
	// Diameter class drives the §5 algorithm findings.
	HighDiameter bool
}

// PaperInputs lists the paper's six inputs in Table 3 order.
func PaperInputs() []PaperRow {
	return []PaperRow{
		{Name: "kron30", Nodes: 1073e6, Edges: 10791e6, AvgDegree: 16, EstDiameter: 6, SizeGB: 136, FitsInDRAM: true},
		{Name: "clueweb12", Nodes: 978e6, Edges: 42574e6, AvgDegree: 44, EstDiameter: 498, SizeGB: 325, FitsInDRAM: true, HighDiameter: true},
		{Name: "uk14", Nodes: 788e6, Edges: 47615e6, AvgDegree: 60, EstDiameter: 2498, SizeGB: 361, HighDiameter: true},
		{Name: "iso_m100", Nodes: 76e6, Edges: 68211e6, AvgDegree: 896, EstDiameter: 83, SizeGB: 509},
		{Name: "rmat32", Nodes: 4295e6, Edges: 68719e6, AvgDegree: 16, EstDiameter: 7, SizeGB: 544},
		{Name: "wdc12", Nodes: 3563e6, Edges: 128736e6, AvgDegree: 36, EstDiameter: 5274, SizeGB: 986, HighDiameter: true},
	}
}

// PaperInput returns the row for name.
func PaperInput(name string) (PaperRow, error) {
	for _, r := range PaperInputs() {
		if r.Name == name {
			return r, nil
		}
	}
	return PaperRow{}, fmt.Errorf("gen: unknown paper input %q", name)
}

// Scale selects how aggressively inputs (and the matching memsim machine
// capacities) are shrunk relative to the paper. ScaleFull is used by the
// experiment harness (cmd/pmembench); ScaleSmall keeps `go test -bench`
// runs quick. The divisor composes with the global GB->MB machine scaling
// (memsim.ScaledBytes): footprint ratios against near-memory are preserved
// at either scale.
type Scale int

const (
	// ScaleFull sizes graphs so each one's CSR footprint stands in the
	// same ratio to the scaled machine's near-memory as in the paper.
	ScaleFull Scale = 8
	// ScaleSmall is 4x smaller for quick benchmarks and CI.
	ScaleSmall Scale = 32
)

// Div returns the capacity divisor applied to memsim.ScaledBytes sizes.
func (s Scale) Div() int64 { return int64(s) }

// inputShape holds the generation parameters for one input at ScaleFull;
// ScaleSmall divides node counts by 4.
type inputShape struct {
	nodes  int
	avgDeg int
	build  func(nodes, avgDeg int) *graph.Graph
}

// shapes are sized so CSR bytes (8 per node + 4 per edge) occupy the same
// fraction of the scaled machine's 48 MB near-memory (ScaleFull) as the
// paper input does of 384 GB:
//
//	kron30 ~35%, clueweb12 ~95%, uk14 ~120%, iso_m100 ~133%,
//	rmat32 ~140%, wdc12 ~260%.
func shapes() map[string]inputShape {
	return map[string]inputShape{
		"kron30": {nodes: 1 << 18, avgDeg: 16, build: func(n, d int) *graph.Graph {
			scale := log2(n)
			return Kron(scale, d, 30)
		}},
		"clueweb12": {nodes: 248_000, avgDeg: 44, build: func(n, d int) *graph.Graph {
			return WebCrawl(n, d, 260, 12)
		}},
		"uk14": {nodes: 232_000, avgDeg: 60, build: func(n, d int) *graph.Graph {
			return WebCrawl(n, d, 1200, 14)
		}},
		"iso_m100": {nodes: 79_000, avgDeg: 200, build: func(n, d int) *graph.Graph {
			return Protein(n, d/2, 80, 100)
		}},
		"rmat32": {nodes: 1 << 20, avgDeg: 16, build: func(n, d int) *graph.Graph {
			scale := log2(n)
			return RMAT(scale, d, 0.57, 0.19, 0.19, 32, false)
		}},
		"wdc12": {nodes: 820_000, avgDeg: 36, build: func(n, d int) *graph.Graph {
			return WebCrawl(n, d, 2600, 121)
		}},
	}
}

func log2(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// Input generates the scaled stand-in for the named paper input. The result
// is deterministic per (name, scale).
func Input(name string, scale Scale) (*graph.Graph, PaperRow, error) {
	row, err := PaperInput(name)
	if err != nil {
		return nil, PaperRow{}, err
	}
	sh, ok := shapes()[name]
	if !ok {
		return nil, PaperRow{}, fmt.Errorf("gen: no shape for input %q", name)
	}
	nodes := sh.nodes
	if scale != ScaleFull {
		nodes = nodes * int(ScaleFull) / int(scale)
	}
	g := sh.build(nodes, sh.avgDeg)
	return g, row, nil
}

// MustInput is Input that panics on error (unknown name is a programming
// error in the harness).
func MustInput(name string, scale Scale) (*graph.Graph, PaperRow) {
	g, row, err := Input(name, scale)
	if err != nil {
		panic(err)
	}
	return g, row
}

// InputNames returns the Table 3 input names in order.
func InputNames() []string {
	rows := PaperInputs()
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Name
	}
	return names
}
