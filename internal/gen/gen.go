// Package gen generates the synthetic stand-ins for the paper's input
// graphs (Table 3) plus utility graphs for tests.
//
// The paper's inputs are 136 GB - 1 TB on disk and are not redistributable
// here, so each is regenerated at reduced scale preserving the properties
// the paper's findings depend on (DESIGN.md §2):
//
//   - |E|/|V| ratio and degree skew (power-law hubs for web crawls and
//     kron/rmat, dense clusters for the protein network)
//   - diameter class: kron/rmat stay below ~10 hops while the web-crawl
//     stand-ins have estimated diameters in the hundreds to thousands,
//     which is what makes sparse worklists and asynchronous algorithms win
//     in §5
//   - footprint relative to near-memory, via the scale divisor shared with
//     the memsim machine configurations
//
// Generation is host-side work below the charging seam (loading is
// excluded from all reported numbers, so nothing here touches memsim),
// and every generator — graphs and edge-update streams (updates.go) alike
// — is a pure function of its parameters and seed, which is what lets
// harness runs, goldens, and the serving conformance suite share inputs
// byte-for-byte.
package gen

import (
	"fmt"
	"sort"

	"pmemgraph/internal/graph"
)

// rng is a splitmix64 generator; all generators are deterministic in their
// seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// RMAT generates a directed R-MAT graph with 2^scale nodes and
// edgeFactor*2^scale edges using recursive quadrant selection with the
// given probabilities (the paper uses the graph500 weights 0.57, 0.19,
// 0.19, 0.05 for both rmat and kron inputs).
func RMAT(scale int, edgeFactor int, a, b, c float64, seed uint64, symmetrize bool) *graph.Graph {
	n := 1 << scale
	m := n * edgeFactor
	if symmetrize {
		m /= 2
	}
	r := newRNG(seed)
	edges := make([]graph.Edge, 0, m*2)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float()
			switch {
			case p < a:
				// upper-left: nothing set
			case p < a+b:
				dst |= 1 << bit
			case p < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges = append(edges, graph.Edge{Src: graph.Node(src), Dst: graph.Node(dst)})
		if symmetrize {
			edges = append(edges, graph.Edge{Src: graph.Node(dst), Dst: graph.Node(src)})
		}
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// Kron generates a Kronecker-style scale-free graph: RMAT recursion with
// graph500 weights, symmetrized (kron graphs have matching max in/out
// degrees in Table 3).
func Kron(scale, edgeFactor int, seed uint64) *graph.Graph {
	return RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed, true)
}

// WebCrawl generates a synthetic web-crawl-like graph: a scale-free "core"
// with large in-degree hubs plus long tail chains of depth up to maxDepth
// (deep dynamic pages reachable only by following long link chains). The
// tail chains give the graph the high estimated diameter that
// distinguishes real web crawls (clueweb12 ~498, uk14 ~2498, wdc12 ~5274)
// from synthetic kron/rmat inputs, while the hubs reproduce the extreme
// max-in-degree skew (75M for clueweb12).
func WebCrawl(n int, avgDeg int, maxDepth int, seed uint64) *graph.Graph {
	if maxDepth < 2 {
		maxDepth = 2
	}
	r := newRNG(seed)

	// 70% of nodes form the core, 30% form tail chains.
	core := n * 7 / 10
	if core < 1 {
		core = 1
	}
	// Hubs: the top sqrt(core) nodes receive Zipf-weighted in-links.
	hubs := isqrt(core)
	if hubs < 1 {
		hubs = 1
	}

	edges := make([]graph.Edge, 0, n*avgDeg)
	// Core: power-law out-degrees, targets biased to hubs and to nearby
	// nodes (site-locality).
	for v := 0; v < core; v++ {
		deg := powerLawDegree(r, avgDeg)
		for k := 0; k < deg; k++ {
			var dst int
			switch p := r.float(); {
			case p < 0.35:
				// Skewed hub choice with geometric decay. The decay
				// rate keeps the top hub near 0.2% of all edges,
				// matching clueweb12's max-in-degree-to-|E| ratio
				// (75M / 42.6B); a plain Zipf head would concentrate
				// several percent of edges on one vertex, which no
				// real crawl does.
				dst = hubPick(r, hubs)
			case p < 0.85:
				// Nearby node (same "site").
				dst = v + r.intn(201) - 100
				if dst < 0 || dst >= core {
					dst = r.intn(core)
				}
			default:
				dst = r.intn(core)
			}
			if dst != v {
				edges = append(edges, graph.Edge{Src: graph.Node(v), Dst: graph.Node(dst)})
			}
		}
	}

	// Tails: chains of length up to maxDepth anchored in the core. Each
	// chain node links forward to the next chain node (plus a rare link
	// back to the core so the chain is not a strict line).
	tail := n - core
	v := core
	for v < n {
		chainLen := 2 + r.intn(maxDepth-1)
		if v+chainLen > n {
			chainLen = n - v
		}
		anchor := r.intn(core)
		edges = append(edges, graph.Edge{Src: graph.Node(anchor), Dst: graph.Node(v)})
		for j := 0; j < chainLen-1; j++ {
			edges = append(edges, graph.Edge{Src: graph.Node(v + j), Dst: graph.Node(v + j + 1)})
			if r.float() < 0.05 {
				edges = append(edges, graph.Edge{Src: graph.Node(v + j), Dst: graph.Node(r.intn(core))})
			}
		}
		v += chainLen
	}
	_ = tail

	// Pad remaining edge budget with core-to-core power-law edges so the
	// average degree target is met.
	for len(edges) < n*avgDeg {
		src := r.intn(core)
		dst := zipfPick(r, core)
		if src != dst {
			edges = append(edges, graph.Edge{Src: graph.Node(src), Dst: graph.Node(dst)})
		}
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// Protein generates a protein-similarity-network stand-in (iso_m100): very
// dense clusters (protein families) arranged along a chain of cluster
// neighbourhoods, giving high average degree and a moderate diameter
// (Table 3 reports |E|/|V| = 896 and estimated diameter 83).
func Protein(n int, avgDeg int, clusters int, seed uint64) *graph.Graph {
	if clusters < 1 {
		clusters = 1
	}
	r := newRNG(seed)
	per := n / clusters
	if per < 2 {
		per = 2
		clusters = n / per
		if clusters < 1 {
			clusters = 1
		}
	}
	edges := make([]graph.Edge, 0, n*avgDeg)
	for v := 0; v < n; v++ {
		cl := v / per
		if cl >= clusters {
			cl = clusters - 1
		}
		lo := cl * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		deg := avgDeg/2 + r.intn(avgDeg+1)
		for k := 0; k < deg; k++ {
			var dst int
			if r.float() < 0.92 || clusters == 1 {
				dst = lo + r.intn(hi-lo) // within family
			} else {
				// Adjacent family (similar folds).
				ncl := cl + 1 - 2*r.intn(2)
				if ncl < 0 || ncl >= clusters {
					ncl = cl
				}
				nlo := ncl * per
				nhi := nlo + per
				if nhi > n {
					nhi = n
				}
				dst = nlo + r.intn(nhi-nlo)
			}
			if dst != v {
				edges = append(edges, graph.Edge{Src: graph.Node(v), Dst: graph.Node(dst)})
				edges = append(edges, graph.Edge{Src: graph.Node(dst), Dst: graph.Node(v)})
			}
		}
	}
	return graph.MustFromEdges(n, edges, false, true)
}

// powerLawDegree draws an out-degree with mean roughly avg and a heavy
// tail (Pareto-like with exponent ~2.1).
func powerLawDegree(r *rng, avg int) int {
	u := r.float()
	if u < 1e-9 {
		u = 1e-9
	}
	// Pareto with alpha=2.1, xm chosen so mean = avg: mean = xm*a/(a-1).
	xm := float64(avg) * 1.1 / 2.1
	d := int(xm / pow(u, 1/2.1))
	if d < 1 {
		d = 1
	}
	if d > avg*400 {
		d = avg * 400
	}
	return d
}

// hubPick picks a hub index with geometrically decaying probability
// (mean rank n/3), bounding the heaviest hub at a realistic share of the
// edge budget.
func hubPick(r *rng, n int) int {
	if n <= 1 {
		return 0
	}
	u := r.float()
	if u < 1e-12 {
		u = 1e-12
	}
	i := int(-logf(u) * float64(n) / 6)
	if i >= n {
		i = n - 1
	}
	return i
}

func logf(x float64) float64 { return mathLog(x) }

// zipfPick picks an index in [0,n) with probability ~ 1/(i+1).
func zipfPick(r *rng, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation for Zipf(1): i ~ n^u - 1.
	u := r.float()
	i := int(pow(float64(n), u)) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func pow(x, y float64) float64 {
	// math.Pow wrapper kept local so generator files import no math in
	// hot loops elsewhere.
	return mathPow(x, y)
}

func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}

// --- utility graphs for tests ---

// Path returns a directed path 0 -> 1 -> ... -> n-1.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node(i + 1)})
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// Cycle returns a directed cycle on n nodes.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node((i + 1) % n)})
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// Star returns a star with node 0 at the center and spokes in both
// directions.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: graph.Node(i)},
			graph.Edge{Src: graph.Node(i), Dst: 0})
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// Complete returns the complete directed graph on n nodes (no self loops).
func Complete(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node(j)})
			}
		}
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// Grid returns a rows x cols grid with bidirectional edges between
// 4-neighbours; node (r,c) has ID r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	var edges []graph.Edge
	id := func(r, c int) graph.Node { return graph.Node(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r, c+1)}, graph.Edge{Src: id(r, c+1), Dst: id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r+1, c)}, graph.Edge{Src: id(r+1, c), Dst: id(r, c)})
			}
		}
	}
	return graph.MustFromEdges(rows*cols, edges, false, false)
}

// ErdosRenyi returns a uniform random directed graph with n nodes and m
// edges (duplicates removed).
func ErdosRenyi(n int, m int, seed uint64) *graph.Graph {
	r := newRNG(seed)
	// A simple directed graph on n nodes has at most n*(n-1) edges;
	// clamp so impossible requests terminate.
	if max := n * (n - 1); m > max {
		m = max
	}
	seen := make(map[uint64]bool, m)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		s := r.intn(n)
		d := r.intn(n)
		if s == d {
			continue
		}
		key := uint64(s)<<32 | uint64(d)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, graph.Edge{Src: graph.Node(s), Dst: graph.Node(d)})
	}
	return graph.MustFromEdges(n, edges, false, false)
}

// SortNodesByDegreeDesc returns node IDs sorted by descending out-degree
// (used by triangle counting's preprocessing).
func SortNodesByDegreeDesc(g *graph.Graph) []graph.Node {
	nodes := make([]graph.Node, g.NumNodes())
	for i := range nodes {
		nodes[i] = graph.Node(i)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := g.OutDegree(nodes[i]), g.OutDegree(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}

// ensure fmt is linked for error paths in future extensions.
var _ = fmt.Sprintf
