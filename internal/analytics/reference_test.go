package analytics

import (
	"container/heap"

	"pmemgraph/internal/graph"
)

// Reference implementations used to validate the parallel kernels.

// refBFS is a sequential BFS over out-edges.
func refBFS(g *graph.Graph, src graph.Node) []uint32 {
	n := g.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	queue := []graph.Node{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.OutNeighbors(v) {
			if dist[d] == Infinity {
				dist[d] = dist[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return dist
}

// refSSSP is sequential Dijkstra over out-edges.
func refSSSP(g *graph.Graph, src graph.Node) []uint32 {
	n := g.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	pq := &nodeHeap{{src, 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeDist)
		if item.d > dist[item.v] {
			continue
		}
		ws := g.OutWeightsOf(item.v)
		for i, d := range g.OutNeighbors(item.v) {
			nd := item.d + ws[i]
			if nd < dist[d] {
				dist[d] = nd
				heap.Push(pq, nodeDist{d, nd})
			}
		}
	}
	return dist
}

type nodeDist struct {
	v graph.Node
	d uint32
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refComponents returns a canonical component ID per node (min node ID in
// the weakly connected component).
func refComponents(g *graph.Graph) []uint32 {
	n := g.NumNodes()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra < rb {
			parent[rb] = ra
		} else if rb < ra {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, d := range g.OutNeighbors(graph.Node(v)) {
			union(v, int(d))
		}
	}
	out := make([]uint32, n)
	for v := range out {
		out[v] = uint32(find(v))
	}
	return out
}

// refTriangles counts undirected triangles by brute-force rank-ordered
// enumeration over a deduplicated adjacency set.
func refTriangles(g *graph.Graph) uint64 {
	n := g.NumNodes()
	adj := make([]map[graph.Node]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[graph.Node]bool)
	}
	for v := 0; v < n; v++ {
		for _, d := range g.OutNeighbors(graph.Node(v)) {
			if graph.Node(v) != d {
				adj[v][d] = true
			}
		}
	}
	var count uint64
	for u := 0; u < n; u++ {
		for v := range adj[u] {
			if int(v) <= u {
				continue
			}
			for w := range adj[int(v)] {
				if graph.Node(u) < v && v < w && adj[u][w] {
					count++
				}
			}
		}
	}
	return count
}

// refKCore peels sequentially: returns membership of the k-core using
// undirected (out+in) degrees.
func refKCore(g *graph.Graph, k int64) []bool {
	g.BuildIn()
	n := g.NumNodes()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.Node(v)) + g.InDegree(graph.Node(v))
	}
	removed := make([]bool, n)
	queue := []graph.Node{}
	for v := 0; v < n; v++ {
		if deg[v] < k {
			queue = append(queue, graph.Node(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if removed[v] {
			continue
		}
		removed[v] = true
		dec := func(d graph.Node) {
			deg[d]--
			if deg[d] == k-1 {
				queue = append(queue, d)
			}
		}
		for _, d := range g.OutNeighbors(v) {
			dec(d)
		}
		for _, d := range g.InNeighbors(v) {
			dec(d)
		}
	}
	in := make([]bool, n)
	for v := range in {
		in[v] = deg[v] >= k
	}
	return in
}

// refPageRank runs the same pull iteration sequentially.
func refPageRank(g *graph.Graph, tol float64, maxRounds int) []float64 {
	g.BuildIn()
	n := g.NumNodes()
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	base := (1 - prDamping) / float64(n)
	for round := 0; round < maxRounds; round++ {
		for v := 0; v < n; v++ {
			if d := g.OutDegree(graph.Node(v)); d > 0 {
				contrib[v] = rank[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		res := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.Node(v)) {
				sum += contrib[u]
			}
			nv := base + prDamping*sum
			res += abs(nv - rank[v])
			next[v] = nv
		}
		rank, next = next, rank
		if res < tol {
			break
		}
	}
	return rank
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// refBC computes single-source Brandes dependencies sequentially.
func refBC(g *graph.Graph, src graph.Node) []float64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	sigma[src] = 1
	order := []graph.Node{src}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, d := range g.OutNeighbors(v) {
			if dist[d] < 0 {
				dist[d] = dist[v] + 1
				order = append(order, d)
			}
			if dist[d] == dist[v]+1 {
				sigma[d] += sigma[v]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, d := range g.OutNeighbors(v) {
			if dist[d] == dist[v]+1 && sigma[d] > 0 {
				delta[v] += sigma[v] / sigma[d] * (1 + delta[d])
			}
		}
	}
	return delta
}
