package analytics

import (
	"reflect"
	"runtime"
	"testing"

	"pmemgraph/internal/gen"
)

// Kernel-level determinism: a kernel run on a freshly generated graph and
// machine must produce a byte-identical Result — simulated seconds, per-
// round Trace (frontier sizes, directions, RegionStats), and outputs — at
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU. This is the invariant the shard-and-
// merge charging, static chunk ownership, and snapshot-deterministic
// operators exist to uphold.

// kernelRuns builds each kernel run on its own fresh graph and runtime so
// no state leaks between executions.
func kernelRuns(t *testing.T) map[string]func() *Result {
	t.Helper()
	return map[string]func() *Result{
		"bfs-diropt": func() *Result {
			g := gen.WebCrawl(20000, 8, 200, 23)
			src, _ := g.MaxOutDegreeNode()
			return BFSDirOpt(testRuntime(t, g, bothDirOpts()), src)
		},
		"bfs-sparse": func() *Result {
			g := gen.WebCrawl(20000, 8, 200, 23)
			src, _ := g.MaxOutDegreeNode()
			return BFSSparse(testRuntime(t, g, galoisOpts()), src)
		},
		"cc-shortcut": func() *Result {
			g := gen.WebCrawl(12000, 6, 120, 29)
			return CCLabelPropSC(testRuntime(t, g, bothDirOpts()))
		},
		"sssp-delta": func() *Result {
			g := gen.WebCrawl(12000, 6, 120, 31)
			g.AddRandomWeights(64, 7)
			src, _ := g.MaxOutDegreeNode()
			return SSSPDeltaStep(testRuntime(t, g, weightedOpts()), src, 64)
		},
		"kcore-sparse": func() *Result {
			g := gen.Kron(13, 12, 5)
			return KCoreSparse(testRuntime(t, g, bothDirOpts()), 8)
		},
		"pr": func() *Result {
			g := gen.Kron(13, 12, 5)
			return PageRank(testRuntime(t, g, bothDirOpts()), 1e-9, 30)
		},
	}
}

func TestResultsByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	for name, run := range kernelRuns(t) {
		t.Run(name, func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			seq := run()
			seqAgain := run()
			runtime.GOMAXPROCS(runtime.NumCPU())
			par := run()

			for _, cmp := range []struct {
				label string
				other *Result
			}{
				{"repeat at GOMAXPROCS=1", seqAgain},
				{"GOMAXPROCS=NumCPU", par},
			} {
				if seq.Seconds != cmp.other.Seconds {
					t.Errorf("%s: simulated seconds %v != %v", cmp.label, seq.Seconds, cmp.other.Seconds)
				}
				if seq.Rounds != cmp.other.Rounds {
					t.Errorf("%s: rounds %d != %d", cmp.label, seq.Rounds, cmp.other.Rounds)
				}
				if !reflect.DeepEqual(seq.Trace, cmp.other.Trace) {
					t.Errorf("%s: Result.Trace differs", cmp.label)
				}
				if !reflect.DeepEqual(seq.Counters, cmp.other.Counters) {
					t.Errorf("%s: counters differ", cmp.label)
				}
				if !reflect.DeepEqual(seq.Dist, cmp.other.Dist) ||
					!reflect.DeepEqual(seq.Labels, cmp.other.Labels) ||
					!reflect.DeepEqual(seq.Rank, cmp.other.Rank) ||
					!reflect.DeepEqual(seq.InCore, cmp.other.InCore) {
					t.Errorf("%s: kernel outputs differ", cmp.label)
				}
			}
		})
	}
}
