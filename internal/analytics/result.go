// Package analytics implements the paper's seven benchmarks — betweenness
// centrality (bc), breadth-first search (bfs), connected components (cc),
// k-core decomposition (kcore), pagerank (pr), single-source shortest paths
// (sssp) and triangle counting (tc) — in the algorithmic variants §5
// compares:
//
//	bfs:  dense-worklist BSP, direction-optimizing, sparse-worklist push
//	cc:   dense label propagation (vertex program), label propagation with
//	      shortcutting (non-vertex, Galois), union-find pointer jumping
//	sssp: data-driven Bellman-Ford with dense worklists, delta-stepping
//	      over sparse priority buckets
//
// The round-based kernels (bfs, cc label propagation, bc, kcore, Bellman-
// Ford, pr) are all points in the configuration space of one operator
// engine (internal/engine): the §5 variants above are engine.Configs, not
// separate implementations. Only delta-stepping (which schedules over
// priority buckets, outside graph-wide rounds) and tc (a one-shot DAG
// intersection) run outside it.
//
// Every kernel computes its answer natively (validated against reference
// implementations in tests) while charging its memory-access stream to the
// runtime's simulated machine; reported times are simulated seconds.
// Traversal traffic is charged by the engine (or, for the asynchronous
// kernels, through core.Runtime's scan helpers); kernels charge only the
// label-array accesses they declare. Kernel Results — outputs, round
// trajectories, simulated times and counters — are byte-identical at any
// GOMAXPROCS (TestResultsByteIdenticalAcrossGOMAXPROCS) and across the
// raw and compressed storage backends for everything but the charging.
//
// The streaming-update path adds incremental variants (incremental.go):
// CCIncremental and PageRankIncremental resume from a prior epoch's
// artifacts and produce outputs bitwise identical to a from-scratch run
// on the post-update graph, charging only the delta-forced work.
package analytics

import (
	"math"

	"pmemgraph/internal/engine"
	"pmemgraph/internal/memsim"
)

// Infinity is the unreached distance marker.
const Infinity = math.MaxUint32

// Result reports one kernel execution. The json tags define the stable
// wire format MarshalResult emits (the serving layer's result bytes and
// cache values); do not rename them without a format version bump.
type Result struct {
	// App is the benchmark name (bc, bfs, ...); Algorithm the variant
	// (sparse-wl, dense-wl, dir-opt, delta-step, labelprop-sc, ...).
	App       string `json:"app"`
	Algorithm string `json:"algorithm"`

	// Seconds is the simulated wall-clock duration of the kernel.
	Seconds float64 `json:"seconds"`
	// Rounds is the number of bulk-synchronous rounds (or scheduler
	// epochs for asynchronous kernels).
	Rounds int `json:"rounds"`
	// Counters are the simulated hardware events attributed to the run.
	Counters memsim.Counters `json:"counters"`

	// TimedOut marks a run that exceeded its execution budget (the
	// paper's 2-hour limit for the out-of-core experiments, Table 5).
	TimedOut bool `json:"timed_out,omitempty"`

	// Trace is the engine's per-round record (frontier size, edge count,
	// representation, direction, region stats) for kernels built on the
	// operator engine; nil for asynchronous kernels (delta-stepping) and
	// tc. It backs frontier-threshold sweeps and the §5 round accounting.
	Trace []engine.RoundStat `json:"trace,omitempty"`

	// Outputs (only the fields relevant to the app are set).
	Dist       []uint32  `json:"dist,omitempty"`       // bfs levels / sssp distances
	Labels     []uint32  `json:"labels,omitempty"`     // cc component labels
	Rank       []float64 `json:"rank,omitempty"`       // pr
	Centrality []float64 `json:"centrality,omitempty"` // bc dependency scores
	InCore     []bool    `json:"in_core,omitempty"`    // kcore membership
	Triangles  uint64    `json:"triangles,omitempty"`  // tc
}

// window captures simulated time and counters around a kernel execution.
type window struct {
	m     *memsim.Machine
	ns    float64
	start memsim.Counters
}

func startWindow(m *memsim.Machine) window {
	return window{m: m, ns: m.WallNs(), start: m.Counters()}
}

func (w window) finish(res *Result) *Result {
	res.Seconds = (w.m.WallNs() - w.ns) / 1e9
	res.Counters = w.m.Counters().Sub(w.start)
	return res
}
