package analytics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/memsim"
)

func jsonTestRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	g := gen.WebCrawl(600, 5, 40, 7)
	g.BuildIn()
	return core.MustNew(m, g, core.GaloisDefaults(4))
}

func TestMarshalResultRoundTrip(t *testing.T) {
	r := jsonTestRuntime(t)
	defer r.Close()
	res := BFS(r, engine.Config{}, 0)
	data, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Error("round trip changed the result")
	}
}

func TestMarshalResultDeterministicBytes(t *testing.T) {
	r1 := jsonTestRuntime(t)
	defer r1.Close()
	r2 := jsonTestRuntime(t)
	defer r2.Close()
	a, err := MarshalResult(BFS(r1, engine.Config{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalResult(BFS(r2, engine.Config{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical executions serialized to different bytes")
	}
}

// TestResultWireFormatFields locks the JSON field names the serving layer
// and its clients depend on: renaming a tag silently changes the wire
// format and invalidates every cached result, so it must fail loudly here.
func TestResultWireFormatFields(t *testing.T) {
	r := jsonTestRuntime(t)
	defer r.Close()
	res := BFS(r, engine.Config{}, 0)
	data, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"app", "algorithm", "seconds", "rounds", "counters", "trace", "dist"} {
		if _, ok := top[key]; !ok {
			t.Errorf("wire format missing field %q", key)
		}
	}
	var trace []map[string]json.RawMessage
	if err := json.Unmarshal(top["trace"], &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("bfs trace empty")
	}
	for _, key := range []string{"round", "frontier", "edges", "dense", "pull", "stats"} {
		if _, ok := trace[0][key]; !ok {
			t.Errorf("trace wire format missing field %q", key)
		}
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(trace[0]["stats"], &stats); err != nil {
		t.Fatal(err)
	}
	var counters map[string]json.RawMessage
	if err := json.Unmarshal(stats["counters"], &counters); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"reads", "writes", "tlb_hits", "near_mem_hits", "user_ns", "kernel_ns"} {
		if _, ok := counters[key]; !ok {
			t.Errorf("counters wire format missing field %q", key)
		}
	}
	if _, err := MarshalResult(nil); err == nil {
		t.Error("nil result accepted")
	}
}
