package analytics

import (
	"math"
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// PageRank defaults, matching §3: tolerance 1e-6, at most 100 rounds,
// damping 0.85.
const (
	PRDefaultTolerance = 1e-6
	PRDefaultMaxRounds = 100
	prDamping          = 0.85
)

// PageRank is the topology-driven pull pagerank every framework in the
// paper shares ("all systems use the same algorithm for pr"): each round,
// every vertex pulls its in-neighbors' contributions; the run stops when
// the L1 residual falls below tol or after maxRounds rounds. Requires
// in-edges.
func PageRank(r *core.Runtime, tol float64, maxRounds int) *Result {
	if r.InOffsets == nil {
		panic("analytics: PageRank requires a runtime with in-edges (pull operator)")
	}
	if tol <= 0 {
		tol = PRDefaultTolerance
	}
	if maxRounds <= 0 {
		maxRounds = PRDefaultMaxRounds
	}
	w := startWindow(r.M)
	n := r.G.NumNodes()

	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n) // rank[v] / outDegree(v), published per round
	rankArr := r.NodeArray("pr.rank", 8)
	nextArr := r.NodeArray("pr.next", 8)
	contribArr := r.NodeArray("pr.contrib", 8)

	init := 1.0 / float64(n)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		for i := lo; i < hi; i++ {
			rank[i] = init
		}
		rankArr.WriteRange(t, lo, hi)
	})

	base := (1 - prDamping) / float64(n)
	rounds := 0
	for rounds < maxRounds {
		rounds++
		// Publish contributions (streaming pass).
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			rankArr.ReadRange(t, int64(lo), int64(hi))
			r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			contribArr.WriteRange(t, int64(lo), int64(hi))
			t.Op(int(hi - lo))
			for v := lo; v < hi; v++ {
				if d := r.G.OutDegree(v); d > 0 {
					contrib[v] = rank[v] / float64(d)
				} else {
					contrib[v] = 0
				}
			}
		})
		// Pull phase: gather in-neighbor contributions.
		var residual atomicFloat
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			localRes := 0.0
			r.InOffsets.ReadRange(t, int64(lo), int64(hi)+1)
			nextArr.WriteRange(t, int64(lo), int64(hi))
			for v := lo; v < hi; v++ {
				ins := r.G.InNeighbors(v)
				r.InEdges.ReadRange(t, r.G.InOffsets[v], r.G.InOffsets[v+1])
				contribArr.RandomN(t, int64(len(ins)), false)
				t.Op(len(ins) + 1)
				sum := 0.0
				for _, u := range ins {
					sum += contrib[u]
				}
				nv := base + prDamping*sum
				localRes += math.Abs(nv - rank[v])
				next[v] = nv
			}
			residual.add(localRes)
		})
		rank, next = next, rank
		rankArr, nextArr = nextArr, rankArr
		if residual.load() < tol {
			break
		}
	}
	return w.finish(&Result{App: "pr", Algorithm: "topo-pull", Rounds: rounds, Rank: append([]float64(nil), rank...)})
}

// atomicFloat accumulates float64 values concurrently via CAS on bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(x float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64frombits(old) + x
		if f.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
