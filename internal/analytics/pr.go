package analytics

import (
	"math"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// PageRank defaults, matching §3: tolerance 1e-6, at most 100 rounds,
// damping 0.85.
const (
	PRDefaultTolerance = 1e-6
	PRDefaultMaxRounds = 100
	prDamping          = 0.85
)

// PageRank is the topology-driven pull pagerank every framework in the
// paper shares ("all systems use the same algorithm for pr"): each round a
// VertexMap publishes contributions (rank[v] / outDegree(v)), then a
// full-frontier pull EdgeMap gathers in-neighbor contributions; the run
// stops when the L1 residual falls below tol or after maxRounds rounds.
// Requires in-edges.
func PageRank(r *core.Runtime, tol float64, maxRounds int) *Result {
	if r.InOffsets == nil {
		panic("analytics: PageRank requires a runtime with in-edges (pull operator)")
	}
	if tol <= 0 {
		tol = PRDefaultTolerance
	}
	if maxRounds <= 0 {
		maxRounds = PRDefaultMaxRounds
	}
	w := startWindow(r.M)
	e := engine.New(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPull})
	n := r.G.NumNodes()

	rank := make([]float64, n)
	next := make([]float64, n)
	sum := make([]float64, n)     // per-round in-neighbor gather
	contrib := make([]float64, n) // rank[v] / outDegree(v), published per round
	rankArr := r.NodeArray("pr.rank", 8)
	nextArr := r.NodeArray("pr.next", 8)
	contribArr := r.NodeArray("pr.contrib", 8)

	init := 1.0 / float64(n)
	e.VertexMap(engine.VertexMapArgs{
		Fn:       func(v graph.Node) { rank[v] = init },
		SeqWrite: []*memsim.Array{rankArr},
	})

	base := (1 - prDamping) / float64(n)
	full := e.FullFrontier()
	// resid shards the per-chunk residual contributions by thread; the
	// fold below sums them in thread-index order, so the float total (and
	// with it the tolerance-crossing round) is deterministic — an atomic
	// accumulator would add in arrival order and make the last round a
	// race.
	resid := make([]float64, r.RegionThreads())
	rounds := 0
	for rounds < maxRounds {
		rounds++
		// Publish contributions (streaming pass).
		e.VertexMap(engine.VertexMapArgs{
			Fn: func(v graph.Node) {
				if d := r.G.OutDegree(v); d > 0 {
					contrib[v] = rank[v] / float64(d)
				} else {
					contrib[v] = 0
				}
			},
			SeqRead:  []*memsim.Array{rankArr, r.Offsets},
			SeqWrite: []*memsim.Array{contribArr},
			Ops:      true,
		})
		// Pull phase: gather in-neighbor contributions. The residual is
		// reduced per scheduler chunk into the owning thread's shard.
		for i := range resid {
			resid[i] = 0
		}
		e.EdgeMap(full, engine.EdgeMapArgs{
			Pull: func(v, u graph.Node, ei int64) (bool, bool) {
				sum[v] += contrib[u]
				return false, false
			},
			OnPullDone: func(v graph.Node) {
				next[v] = base + prDamping*sum[v]
				sum[v] = 0
			},
			OnPullChunk: func(t *memsim.Thread, lo, hi graph.Node) {
				local := 0.0
				for v := lo; v < hi; v++ {
					local += math.Abs(next[v] - rank[v])
				}
				resid[t.ID] += local
			},
			PerEdge:      []engine.Access{{Arr: contribArr, Write: false}},
			PullSeqWrite: []*memsim.Array{nextArr},
		})
		rank, next = next, rank
		rankArr, nextArr = nextArr, rankArr
		residual := 0.0
		for _, x := range resid {
			residual += x
		}
		if residual < tol {
			break
		}
	}
	return w.finish(&Result{
		App:       "pr",
		Algorithm: "topo-pull",
		Rounds:    rounds,
		Rank:      append([]float64(nil), rank...),
		Trace:     e.Trace(),
	})
}

