package analytics

import (
	"math"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// PageRank defaults, matching §3: tolerance 1e-6, at most 100 rounds,
// damping 0.85.
const (
	PRDefaultTolerance = 1e-6
	PRDefaultMaxRounds = 100
	prDamping          = 0.85
)

// prState bundles everything one pagerank power-iteration round touches.
// PageRank drives it for every round; the incremental variant
// (PageRankIncremental) reuses publishContrib and fullPullRound verbatim so
// its full-mode rounds charge and compute exactly what the from-scratch
// kernel would, which is what keeps its rank trajectory bitwise identical.
type prState struct {
	r *core.Runtime
	e *engine.Engine

	rank, next, sum, contrib     []float64
	rankArr, nextArr, contribArr *memsim.Array
	base                         float64
	full                         *engine.Frontier
	// resid shards the per-chunk residual contributions by thread; the
	// fold sums them in thread-index order, so the float total (and with
	// it the tolerance-crossing round) is deterministic — an atomic
	// accumulator would add in arrival order and make the last round a
	// race.
	resid []float64
}

// newPRState allocates the iteration state. The allocation order (engine
// scratch, then rank/next/contrib node arrays) is part of the charged
// footprint and must not change under the goldens.
func newPRState(r *core.Runtime) *prState {
	e := engine.New(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPull})
	n := r.G.NumNodes()
	s := &prState{
		r:          r,
		e:          e,
		rank:       make([]float64, n),
		next:       make([]float64, n),
		sum:        make([]float64, n), // per-round in-neighbor gather
		contrib:    make([]float64, n), // rank[v] / outDegree(v), published per round
		rankArr:    r.NodeArray("pr.rank", 8),
		nextArr:    r.NodeArray("pr.next", 8),
		contribArr: r.NodeArray("pr.contrib", 8),
		base:       (1 - prDamping) / float64(n),
		resid:      make([]float64, r.RegionThreads()),
	}
	init := 1.0 / float64(n)
	e.VertexMap(engine.VertexMapArgs{
		Fn:       func(v graph.Node) { s.rank[v] = init },
		SeqWrite: []*memsim.Array{s.rankArr},
	})
	s.full = e.FullFrontier()
	return s
}

// publishContrib streams contributions (rank[v] / outDegree(v)) for the
// coming gather round.
func (s *prState) publishContrib() {
	s.e.VertexMap(engine.VertexMapArgs{
		Fn: func(v graph.Node) {
			if d := s.r.OutDegree(v); d > 0 {
				s.contrib[v] = s.rank[v] / float64(d)
			} else {
				s.contrib[v] = 0
			}
		},
		SeqRead:  []*memsim.Array{s.rankArr, s.r.Offsets},
		SeqWrite: []*memsim.Array{s.contribArr},
		Ops:      true,
	})
}

// fullPullRound gathers in-neighbor contributions for every vertex and
// accumulates the residual per chunk into the owning thread's shard.
func (s *prState) fullPullRound() {
	for i := range s.resid {
		s.resid[i] = 0
	}
	s.e.EdgeMap(s.full, engine.EdgeMapArgs{
		Pull: func(v, u graph.Node, ei int64) (bool, bool) {
			s.sum[v] += s.contrib[u]
			return false, false
		},
		OnPullDone: func(v graph.Node) {
			s.next[v] = s.base + prDamping*s.sum[v]
			s.sum[v] = 0
		},
		OnPullChunk: func(t *memsim.Thread, lo, hi graph.Node) {
			local := 0.0
			for v := lo; v < hi; v++ {
				local += math.Abs(s.next[v] - s.rank[v])
			}
			s.resid[t.ID] += local
		},
		PerEdge:      []engine.Access{{Arr: s.contribArr, Write: false}},
		PullSeqWrite: []*memsim.Array{s.nextArr},
	})
}

// swap publishes the round: next becomes rank (values and simulated
// arrays).
func (s *prState) swap() {
	s.rank, s.next = s.next, s.rank
	s.rankArr, s.nextArr = s.nextArr, s.rankArr
}

// residual folds the per-thread shards in thread-index order.
func (s *prState) residual() float64 {
	total := 0.0
	for _, x := range s.resid {
		total += x
	}
	return total
}

// prDefaults normalizes the tolerance and round-cap parameters.
func prDefaults(tol float64, maxRounds int) (float64, int) {
	if tol <= 0 {
		tol = PRDefaultTolerance
	}
	if maxRounds <= 0 {
		maxRounds = PRDefaultMaxRounds
	}
	return tol, maxRounds
}

// PageRank is the topology-driven pull pagerank every framework in the
// paper shares ("all systems use the same algorithm for pr"): each round a
// VertexMap publishes contributions (rank[v] / outDegree(v)), then a
// full-frontier pull EdgeMap gathers in-neighbor contributions; the run
// stops when the L1 residual falls below tol or after maxRounds rounds.
// Requires in-edges.
func PageRank(r *core.Runtime, tol float64, maxRounds int) *Result {
	return pageRank(r, tol, maxRounds, nil)
}

// pageRank runs the power iteration, invoking record (when non-nil) with
// the published rank vector after every round. Recording is host-side
// bookkeeping for the streaming-update seed (PRSeed) and is never charged:
// like result marshaling, it models retaining outputs outside the measured
// kernel window, so a recorded run's simulated numbers are byte-identical
// to an unrecorded one.
func pageRank(r *core.Runtime, tol float64, maxRounds int, record func(round int, rank []float64)) *Result {
	if r.InOffsets == nil {
		panic("analytics: PageRank requires a runtime with in-edges (pull operator)")
	}
	tol, maxRounds = prDefaults(tol, maxRounds)
	w := startWindow(r.M)
	s := newPRState(r)
	rounds := 0
	for rounds < maxRounds {
		rounds++
		s.publishContrib()
		s.fullPullRound()
		s.swap()
		if record != nil {
			record(rounds, s.rank)
		}
		if s.residual() < tol {
			break
		}
	}
	return w.finish(&Result{
		App:       "pr",
		Algorithm: "topo-pull",
		Rounds:    rounds,
		Rank:      append([]float64(nil), s.rank...),
		Trace:     s.e.Trace(),
	})
}
