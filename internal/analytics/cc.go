package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/worklist"
)

// Connected components treats edges as undirected, as all the frameworks in
// the paper do. The label-propagation kernels therefore require the
// transpose (in-edges) so labels flow against edge direction too; the
// pointer-jumping kernel hooks roots and is direction-agnostic.

// newLabelArray initializes labels[v] = v.
func newLabelArray(r *core.Runtime, name string) ([]atomic.Uint32, *memsim.Array) {
	n := r.G.NumNodes()
	labels := make([]atomic.Uint32, n)
	arr := r.NodeArray(name, 4)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		for i := lo; i < hi; i++ {
			labels[i].Store(uint32(i))
		}
		arr.WriteRange(t, lo, hi)
	})
	return labels, arr
}

// ccPushOnce pushes v's label to its out- (and in-) neighbors, activating
// improved vertices via activate.
func ccPushOnce(r *core.Runtime, t *memsim.Thread, labels []atomic.Uint32, labArr *memsim.Array, v graph.Node, activate func(graph.Node)) {
	lv := labels[v].Load()
	nbrs := r.OutScan(t, v, false)
	labArr.RandomN(t, int64(len(nbrs)), true)
	t.Op(len(nbrs))
	for _, d := range nbrs {
		if relaxMin(labels, d, lv) {
			activate(d)
		}
	}
	if r.InOffsets != nil {
		ins := r.InScan(t, v, false)
		labArr.RandomN(t, int64(len(ins)), true)
		t.Op(len(ins))
		for _, d := range ins {
			if relaxMin(labels, d, lv) {
				activate(d)
			}
		}
	}
}

// CCLabelPropDense is plain label propagation as a vertex program over
// dense worklists: the only cc expressible in GraphIt (§6.1). Rounds have
// snapshot (bulk-synchronous) semantics — labels written in round i are
// read in round i+1 — so a component of diameter D needs ~D rounds, each
// scanning the dense frontier and offsets arrays. That round count is
// exactly why this variant loses on high-diameter web crawls (§5.2).
func CCLabelPropDense(r *core.Runtime) *Result {
	if r.InOffsets == nil {
		panic("analytics: CCLabelPropDense requires a runtime with in-edges (weak components need both directions)")
	}
	w := startWindow(r.M)
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	labArr := r.NodeArray("cc.labels", 4)
	nextArr := r.NodeArray("cc.labels.next", 4)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		for i := lo; i < hi; i++ {
			cur[i] = uint32(i)
			next[i].Store(uint32(i))
		}
		labArr.WriteRange(t, lo, hi)
		nextArr.WriteRange(t, lo, hi)
	})
	bits := r.ScratchArray("cc.frontier.bits", int64(n+63)/64, 8)

	fr := worklist.NewDouble(n)
	for v := 0; v < n; v++ {
		fr.Cur.Set(graph.Node(v))
	}
	active := n
	rounds := 0
	for active > 0 {
		rounds++
		var nextActive atomic.Int64
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
			r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			cnt := int64(0)
			fr.Cur.ForEachInRange(lo, hi, func(v graph.Node) {
				lv := cur[v]
				push := func(d graph.Node) {
					if relaxMin(next, d, lv) {
						if fr.Next.Set(d) {
							cnt++
						}
					}
				}
				nbrs := r.OutScan(t, v, false)
				nextArr.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					push(d)
				}
				ins := r.InScan(t, v, false)
				nextArr.RandomN(t, int64(len(ins)), true)
				t.Op(len(ins))
				for _, d := range ins {
					push(d)
				}
			})
			nextActive.Add(cnt)
		})
		// Publish the round: snapshot next into cur.
		r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
			nextArr.ReadRange(t, lo, hi)
			labArr.WriteRange(t, lo, hi)
			for i := lo; i < hi; i++ {
				cur[i] = next[i].Load()
			}
		})
		fr.Swap()
		active = int(nextActive.Load())
	}
	return w.finish(&Result{App: "cc", Algorithm: "dense-wl", Rounds: rounds, Labels: append([]uint32(nil), cur...)})
}

// CCLabelPropSC is the Galois variant: label propagation with shortcutting
// (Stergiou et al.), a non-vertex program — after each propagation round
// every vertex jumps one level up its label chain (label[v] =
// label[label[v]]), collapsing long chains exponentially faster. Active
// vertices are kept in a sparse worklist.
func CCLabelPropSC(r *core.Runtime) *Result {
	if r.InOffsets == nil {
		panic("analytics: CCLabelPropSC requires a runtime with in-edges (weak components need both directions)")
	}
	w := startWindow(r.M)
	n := r.G.NumNodes()
	labels, labArr := newLabelArray(r, "cc.labels")
	wlArr := r.ScratchArray("cc.wl", int64(n), 4)

	frontier := make([]graph.Node, n)
	for v := range frontier {
		frontier[v] = graph.Node(v)
	}
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		next := worklist.NewBag()
		r.ParallelItems(int64(len(frontier)), func(t *memsim.Thread, lo, hi int64) {
			h := next.NewHandle()
			wlArr.ReadRange(t, lo, hi)
			pushed := int64(0)
			for _, v := range frontier[lo:hi] {
				ccPushOnce(r, t, labels, labArr, v, func(d graph.Node) {
					h.Push(d)
					pushed++
				})
			}
			h.Flush()
			wlArr.WriteRange(t, 0, pushed)
		})
		// Shortcut pass (non-vertex operator): the neighborhood is the
		// label chain, not the graph edges.
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			labArr.ReadRange(t, int64(lo), int64(hi))
			labArr.RandomN(t, int64(hi-lo), true)
			t.Op(int(hi - lo))
			for v := lo; v < hi; v++ {
				l := labels[v].Load()
				ll := labels[l].Load()
				if ll < l {
					relaxMin(labels, v, ll)
				}
			}
		})
		frontier = dedupe(next.Drain())
	}
	return w.finish(&Result{App: "cc", Algorithm: "labelprop-sc", Rounds: rounds, Labels: snapshot(labels)})
}

// CCPointerJump is the union-find / pointer-jumping cc used by GAP and
// GBBS (Shiloach-Vishkin family): hook every edge, then jump pointers to
// full compression. Topology-driven; a vertex program over edges plus a
// pointer-jumping phase.
func CCPointerJump(r *core.Runtime) *Result {
	w := startWindow(r.M)
	labels, labArr := newLabelArray(r, "cc.parent")

	rounds := 0
	for {
		rounds++
		var changed atomic.Int64
		// Hook: for every edge (u,v), point the larger root at the
		// smaller label.
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			for v := lo; v < hi; v++ {
				nbrs := r.G.OutNeighbors(v)
				r.Edges.ReadRange(t, r.G.OutOffsets[v], r.G.OutOffsets[v+1])
				labArr.RandomN(t, 2*int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					lv := labels[v].Load()
					ld := labels[d].Load()
					switch {
					case lv < ld:
						if relaxMin(labels, graph.Node(ld), lv) {
							changed.Add(1)
						}
					case ld < lv:
						if relaxMin(labels, graph.Node(lv), ld) {
							changed.Add(1)
						}
					}
				}
			}
		})
		// Jump: compress pointer chains until every label is a root.
		for {
			var jumped atomic.Int64
			r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
				labArr.ReadRange(t, int64(lo), int64(hi))
				labArr.RandomN(t, int64(hi-lo), true)
				t.Op(int(hi - lo))
				for v := lo; v < hi; v++ {
					l := labels[v].Load()
					ll := labels[l].Load()
					if ll < l {
						relaxMin(labels, v, ll)
						jumped.Add(1)
					}
				}
			})
			if jumped.Load() == 0 {
				break
			}
		}
		if changed.Load() == 0 {
			break
		}
	}
	return w.finish(&Result{App: "cc", Algorithm: "pointer-jump", Rounds: rounds, Labels: snapshot(labels)})
}

// dedupe removes duplicate vertices from a drained frontier (a vertex may
// be activated by several neighbors in one round).
func dedupe(vs []graph.Node) []graph.Node {
	if len(vs) < 2 {
		return vs
	}
	seen := make(map[graph.Node]struct{}, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
