package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Connected components treats edges as undirected, as all the frameworks in
// the paper do. The label-propagation kernels therefore require the
// transpose (in-edges) so labels flow against edge direction too; the
// pointer-jumping kernel hooks roots and is direction-agnostic.

// CCLabelProp is connected components by label propagation over the
// operator engine, traversing the graph symmetrically (out- and in-edges)
// so labels flow against edge direction too. cfg selects the frontier
// representation and direction policy; shortcut additionally applies the
// Stergiou-style pointer-jumping pass after every round (label[v] =
// label[label[v]]), a non-vertex operator that collapses label chains
// exponentially faster.
//
// Without shortcutting the kernel uses snapshot (bulk-synchronous)
// semantics — labels written in round i are read in round i+1 — so a
// component of diameter D needs ~D rounds; that round count is exactly why
// the plain variant loses on high-diameter web crawls (§5.2). With
// shortcutting labels are relaxed in place (asynchronous reads within a
// round are harmless for a min-reduction).
func CCLabelProp(r *core.Runtime, cfg engine.Config, shortcut bool) *Result {
	if r.InOffsets == nil {
		panic("analytics: CCLabelProp requires a runtime with in-edges (weak components need both directions)")
	}
	w := startWindow(r.M)
	e := engine.New(r, cfg)
	if shortcut {
		res := ccShortcut(r, e)
		return w.finish(res)
	}
	res := ccSnapshot(r, e)
	return w.finish(res)
}

// ccSnapshot is plain label propagation as a vertex program: the only cc
// expressible in GraphIt (§6.1).
func ccSnapshot(r *core.Runtime, e *engine.Engine) *Result {
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	labArr := r.NodeArray("cc.labels", 4)
	nextArr := r.NodeArray("cc.labels.next", 4)
	e.VertexMap(engine.VertexMapArgs{
		Fn: func(v graph.Node) {
			cur[v] = uint32(v)
			next[v].Store(uint32(v))
		},
		SeqWrite: []*memsim.Array{labArr, nextArr},
	})

	f := e.FullFrontier()
	rounds := 0
	for !f.Empty() {
		rounds++
		cf := f
		f = e.EdgeMap(f, engine.EdgeMapArgs{
			Symmetric: true,
			// Push: scatter v's snapshot label to its neighbors. The
			// SET of vertices whose next label drops is the same under
			// every interleaving (relaxMin is a commutative min over
			// snapshot labels, and some call returns true for each
			// dropped vertex); the sorted merge erases which thread's
			// call it was.
			Push: func(u, d graph.Node, ei int64) bool {
				return relaxMin(next, d, cur[u])
			},
			// Pull: gather the minimum snapshot label of v's active
			// neighbors (the direction-optimized form; no early exit —
			// a min-reduction must see the whole neighborhood).
			Pull: func(v, u graph.Node, ei int64) (bool, bool) {
				if cf.Has(u) {
					return relaxMin(next, v, cur[u]), false
				}
				return false, false
			},
			PerEdge: []engine.Access{{Arr: nextArr, Write: true}},
			// Pull gathers the neighbor's snapshot label per edge and
			// scatters into next.
			PullPerEdge: []engine.Access{{Arr: labArr, Write: false}, {Arr: nextArr, Write: true}},
		})
		// Publish the round: snapshot next into cur.
		e.VertexMap(engine.VertexMapArgs{
			Fn:       func(v graph.Node) { cur[v] = next[v].Load() },
			SeqRead:  []*memsim.Array{nextArr},
			SeqWrite: []*memsim.Array{labArr},
		})
	}
	return &Result{
		App:       "cc",
		Algorithm: engine.TraversalName(r, e.Config()),
		Rounds:    rounds,
		Labels:    append([]uint32(nil), cur...),
		Trace:     e.Trace(),
	}
}

// ccShortcut is the Galois variant: label propagation with shortcutting
// (Stergiou-style pointer jumping after every propagation round), a
// non-vertex program over (typically sparse) worklists. Rounds are bulk-
// synchronous — labels propagate from the round-start snapshot cur into
// next, and the shortcut jump reads only the frozen next — so the round
// trajectory is deterministic under real parallelism; the jump still
// collapses label chains exponentially, keeping the round count far below
// plain propagation's diameter bound.
func ccShortcut(r *core.Runtime, e *engine.Engine) *Result {
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	labArr := r.NodeArray("cc.labels", 4)
	nextArr := r.NodeArray("cc.labels.next", 4)
	e.VertexMap(engine.VertexMapArgs{
		Fn: func(v graph.Node) {
			cur[v] = uint32(v)
			next[v].Store(uint32(v))
		},
		SeqWrite: []*memsim.Array{labArr, nextArr},
	})

	f := e.FullFrontier()
	rounds := 0
	for !f.Empty() {
		rounds++
		cf := f
		// Claims are suppressed (return false): the VertexFilter below
		// computes the true next frontier — every vertex changed by
		// propagation or jump — so claiming here would only build a
		// frontier that gets discarded.
		e.EdgeMap(f, engine.EdgeMapArgs{
			Symmetric: true,
			Push: func(u, d graph.Node, ei int64) bool {
				if l := cur[u]; l < cur[d] {
					relaxMin(next, d, l)
				}
				return false
			},
			Pull: func(v, u graph.Node, ei int64) (bool, bool) {
				if cf.Has(u) {
					relaxMin(next, v, cur[u])
				}
				return false, false
			},
			PerEdge: []engine.Access{{Arr: labArr, Write: false}, {Arr: nextArr, Write: true}},
			// Pull gathers the neighbor's snapshot label per edge and
			// relaxes into next.
			PullPerEdge: []engine.Access{{Arr: labArr, Write: false}, {Arr: nextArr, Write: true}},
		})
		// Shortcut pass (non-vertex operator): the neighborhood is the
		// label chain, not the graph edges. Jump through the frozen
		// next labels (which already hold this round's propagation) and
		// publish into cur. The filter activates every vertex whose
		// label changed this round — by propagation or by jump (a
		// superset of what the EdgeMap could have claimed) — keeping
		// jump-lowered vertices flowing so no stale label can strand
		// behind an inactive vertex.
		f = e.VertexFilter(engine.VertexMapArgs{
			SeqRead:   []*memsim.Array{nextArr},
			SeqWrite:  []*memsim.Array{labArr},
			PerVertex: []engine.Access{{Arr: nextArr, Write: false}},
			Ops:       true,
		}, func(v graph.Node) bool {
			l := next[v].Load()
			if ll := next[l].Load(); ll < l {
				l = ll
			}
			changed := l != cur[v]
			cur[v] = l
			return changed
		})
		// Resync next with the shortcutted labels for the coming round.
		e.VertexMap(engine.VertexMapArgs{
			Fn:       func(v graph.Node) { next[v].Store(cur[v]) },
			SeqRead:  []*memsim.Array{labArr},
			SeqWrite: []*memsim.Array{nextArr},
		})
	}
	return &Result{
		App:       "cc",
		Algorithm: "labelprop-sc",
		Rounds:    rounds,
		Labels:    append([]uint32(nil), cur...),
		Trace:     e.Trace(),
	}
}

// CCLabelPropDense is plain label propagation over dense worklists: the
// only cc expressible in GraphIt (§6.1).
func CCLabelPropDense(r *core.Runtime) *Result {
	return CCLabelProp(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, false)
}

// CCLabelPropSC is the Galois variant: label propagation with shortcutting
// (Stergiou et al.) over sparse worklists.
func CCLabelPropSC(r *core.Runtime) *Result {
	return CCLabelProp(r, engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush}, true)
}

// CCPointerJump is the union-find / pointer-jumping cc used by GAP and
// GBBS (Shiloach-Vishkin family): hook every edge, then jump pointers to
// full compression. Topology-driven (no frontier); the hook phase is an
// edge iteration and the jump phase a VertexMap over label chains. Both
// phases read the round-start snapshot cur and min-reduce into next, so
// the per-round label trajectory (and the hook/jump change counts driving
// termination) are deterministic under real parallelism.
func CCPointerJump(r *core.Runtime) *Result {
	w := startWindow(r.M)
	e := engine.New(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPush})
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	labArr := r.NodeArray("cc.parent", 4)
	nextArr := r.NodeArray("cc.parent.next", 4)
	e.VertexMap(engine.VertexMapArgs{
		Fn: func(v graph.Node) {
			cur[v] = uint32(v)
			next[v].Store(uint32(v))
		},
		SeqWrite: []*memsim.Array{labArr, nextArr},
	})
	// publish snapshots next into cur after a hook or jump pass.
	publish := func() {
		e.VertexMap(engine.VertexMapArgs{
			Fn:       func(v graph.Node) { cur[v] = next[v].Load() },
			SeqRead:  []*memsim.Array{nextArr},
			SeqWrite: []*memsim.Array{labArr},
		})
	}

	rounds := 0
	for {
		rounds++
		var changed atomic.Int64
		// Hook: for every edge (u,v), point the larger snapshot root at
		// the smaller snapshot label. The change count claims against
		// the snapshot (each edge is visited by exactly one owner), so
		// it is interleaving-independent.
		full := e.FullFrontier()
		e.EdgeMap(full, engine.EdgeMapArgs{
			Push: func(u, d graph.Node, ei int64) bool {
				lu, ld := cur[u], cur[d]
				switch {
				case lu < ld:
					relaxMin(next, graph.Node(ld), lu)
					changed.Add(1)
				case ld < lu:
					relaxMin(next, graph.Node(lu), ld)
					changed.Add(1)
				}
				return false // hooking relinks roots, not the frontier
			},
			PerEdge: []engine.Access{{Arr: labArr, Write: false}, {Arr: nextArr, Write: true}},
		})
		if changed.Load() == 0 {
			break
		}
		publish()
		// Jump: compress pointer chains until every label is a root.
		for {
			var jumped atomic.Int64
			e.VertexMap(engine.VertexMapArgs{
				Fn: func(v graph.Node) {
					l := cur[v]
					if ll := cur[l]; ll < l {
						l = ll
						jumped.Add(1)
					}
					next[v].Store(l)
				},
				SeqRead:   []*memsim.Array{labArr},
				SeqWrite:  []*memsim.Array{nextArr},
				PerVertex: []engine.Access{{Arr: labArr, Write: false}},
				Ops:       true,
			})
			if jumped.Load() == 0 {
				break
			}
			publish()
		}
	}
	return w.finish(&Result{App: "cc", Algorithm: "pointer-jump", Rounds: rounds, Labels: append([]uint32(nil), cur...)})
}
