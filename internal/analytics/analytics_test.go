package analytics

import (
	"math"
	"testing"

	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// testRuntime builds a small Optane-machine runtime over g.
func testRuntime(t *testing.T, g *graph.Graph, opts core.Options) *core.Runtime {
	t.Helper()
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	if opts.Threads == 0 {
		opts.Threads = 8
	}
	r, err := core.New(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func galoisOpts() core.Options {
	o := core.GaloisDefaults(8)
	return o
}

func bothDirOpts() core.Options {
	o := core.GaloisDefaults(8)
	o.BothDirections = true
	return o
}

func weightedOpts() core.Options {
	o := core.GaloisDefaults(8)
	o.Weighted = true
	return o
}

// testGraphs returns a diverse set of graphs with a source for traversal
// kernels.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":  gen.Path(64),
		"cycle": gen.Cycle(50),
		"star":  gen.Star(40),
		"grid":  gen.Grid(8, 9),
		"er":    gen.ErdosRenyi(300, 1800, 11),
		"rmat":  gen.RMAT(9, 8, 0.57, 0.19, 0.19, 3, false),
		"web":   gen.WebCrawl(2000, 6, 40, 5),
	}
}

func distsEqual(a, b []uint32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return -1, true
}

func TestBFSVariantsMatchReference(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			src, _ := g.MaxOutDegreeNode()
			want := refBFS(g, src)
			variants := map[string]func() *Result{
				"sparse": func() *Result { return BFSSparse(testRuntime(t, g, galoisOpts()), src) },
				"dense":  func() *Result { return BFSDense(testRuntime(t, g, galoisOpts()), src) },
				"diropt": func() *Result { return BFSDirOpt(testRuntime(t, g, bothDirOpts()), src) },
			}
			for vn, run := range variants {
				res := run()
				if i, ok := distsEqual(want, res.Dist); !ok {
					t.Errorf("%s: dist[%d] = %d, want %d", vn, i, res.Dist[i], want[i])
				}
				if res.Seconds <= 0 {
					t.Errorf("%s: no simulated time", vn)
				}
				if res.App != "bfs" {
					t.Errorf("%s: app = %q", vn, res.App)
				}
			}
		})
	}
}

func TestSSSPVariantsMatchDijkstra(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			g.AddRandomWeights(64, 77)
			src, _ := g.MaxOutDegreeNode()
			want := refSSSP(g, src)
			for vn, run := range map[string]func() *Result{
				"delta": func() *Result { return SSSPDeltaStep(testRuntime(t, g, weightedOpts()), src, 16) },
				"bf":    func() *Result { return SSSPBellmanFordDense(testRuntime(t, g, weightedOpts()), src) },
			} {
				res := run()
				if i, ok := distsEqual(want, res.Dist); !ok {
					t.Errorf("%s: dist[%d] = %d, want %d", vn, i, res.Dist[i], want[i])
				}
			}
		})
	}
}

func TestSSSPDeltaValues(t *testing.T) {
	g := gen.Grid(10, 10)
	g.AddRandomWeights(100, 5)
	src := graph.Node(0)
	want := refSSSP(g, src)
	for _, delta := range []uint32{1, 4, 64, 1024} {
		res := SSSPDeltaStep(testRuntime(t, g, weightedOpts()), src, delta)
		if i, ok := distsEqual(want, res.Dist); !ok {
			t.Errorf("delta=%d: dist[%d] = %d, want %d", delta, i, res.Dist[i], want[i])
		}
	}
}

// componentsAgree checks that two labelings induce the same partition.
func componentsAgree(a, b []uint32) bool {
	rep := map[uint32]uint32{}
	for i := range a {
		if r, ok := rep[a[i]]; ok {
			if r != b[i] {
				return false
			}
		} else {
			rep[a[i]] = b[i]
		}
	}
	inv := map[uint32]uint32{}
	for i := range b {
		if r, ok := inv[b[i]]; ok {
			if r != a[i] {
				return false
			}
		} else {
			inv[b[i]] = a[i]
		}
	}
	return true
}

func TestCCVariantsMatchReference(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			want := refComponents(g)
			for vn, run := range map[string]func() *Result{
				"dense": func() *Result { return CCLabelPropDense(testRuntime(t, g, bothDirOpts())) },
				"sc":    func() *Result { return CCLabelPropSC(testRuntime(t, g, bothDirOpts())) },
				"pj":    func() *Result { return CCPointerJump(testRuntime(t, g, galoisOpts())) },
			} {
				res := run()
				if !componentsAgree(want, res.Labels) {
					t.Errorf("%s: component partition differs from union-find reference", vn)
				}
			}
		})
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	for _, name := range []string{"er", "star", "grid"} {
		g := testGraphs()[name]
		t.Run(name, func(t *testing.T) {
			want := refPageRank(g, 1e-9, 50)
			res := PageRank(testRuntime(t, g, bothDirOpts()), 1e-9, 50)
			for v := range want {
				if math.Abs(want[v]-res.Rank[v]) > 1e-9 {
					t.Fatalf("rank[%d] = %g, want %g", v, res.Rank[v], want[v])
				}
			}
			if res.Rounds < 2 {
				t.Errorf("suspiciously few rounds: %d", res.Rounds)
			}
		})
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := gen.ErdosRenyi(500, 4000, 9)
	res := PageRank(testRuntime(t, g, bothDirOpts()), 1e-10, 100)
	sum := 0.0
	for _, x := range res.Rank {
		sum += x
	}
	// With dangling nodes mass leaks; for this generator most nodes have
	// out-edges so the sum should be near 1.
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("rank mass = %v, want in (0.5, 1.01]", sum)
	}
}

func TestBCMatchesReference(t *testing.T) {
	for _, name := range []string{"path", "star", "grid", "er"} {
		g := testGraphs()[name]
		t.Run(name, func(t *testing.T) {
			src, _ := g.MaxOutDegreeNode()
			want := refBC(g, src)
			for _, dense := range []bool{false, true} {
				res := BC(testRuntime(t, g, galoisOpts()), src, BCOptions{DenseFrontier: dense})
				for v := range want {
					if math.Abs(want[v]-res.Centrality[v]) > 1e-6 {
						t.Fatalf("dense=%v: bc[%d] = %g, want %g", dense, v, res.Centrality[v], want[v])
					}
				}
			}
		})
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	cases := map[string]int64{"er": 10, "grid": 3, "star": 2, "web": 4}
	for name, k := range cases {
		g := testGraphs()[name]
		t.Run(name, func(t *testing.T) {
			want := refKCore(g, k)
			for vn, run := range map[string]func() *Result{
				"sparse": func() *Result { return KCoreSparse(testRuntime(t, g, bothDirOpts()), k) },
				"dense":  func() *Result { return KCoreDense(testRuntime(t, g, bothDirOpts()), k) },
			} {
				res := run()
				for v := range want {
					if want[v] != res.InCore[v] {
						t.Fatalf("%s: node %d in-core = %v, want %v", vn, v, res.InCore[v], want[v])
					}
				}
			}
		})
	}
}

func TestTCMatchesReference(t *testing.T) {
	// tc requires deduplicated symmetric input.
	tri := func(edges []graph.Edge, n int) *graph.Graph {
		var sym []graph.Edge
		for _, e := range edges {
			sym = append(sym, e, graph.Edge{Src: e.Dst, Dst: e.Src})
		}
		return graph.MustFromEdges(n, sym, false, true)
	}
	cases := map[string]struct {
		g    *graph.Graph
		want uint64
	}{
		"triangle":   {tri([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}, 3), 1},
		"k4":         {tri([]graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}, 4), 4},
		"path":       {tri([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, 4), 0},
		"two-shared": {tri([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 1, Dst: 3}, {Src: 3, Dst: 2}}, 4), 2},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			res := TC(testRuntime(t, tc.g, galoisOpts()))
			if res.Triangles != tc.want {
				t.Errorf("triangles = %d, want %d", res.Triangles, tc.want)
			}
		})
	}
}

func TestTCMatchesBruteForceOnRandom(t *testing.T) {
	base := gen.ErdosRenyi(120, 900, 17)
	var sym []graph.Edge
	for v := 0; v < base.NumNodes(); v++ {
		for _, d := range base.OutNeighbors(graph.Node(v)) {
			sym = append(sym, graph.Edge{Src: graph.Node(v), Dst: d}, graph.Edge{Src: d, Dst: graph.Node(v)})
		}
	}
	g := graph.MustFromEdges(base.NumNodes(), sym, false, true)
	want := refTriangles(g)
	res := TC(testRuntime(t, g, galoisOpts()))
	if res.Triangles != want {
		t.Errorf("triangles = %d, want %d", res.Triangles, want)
	}
}

func TestSparseBeatsDenseOnHighDiameter(t *testing.T) {
	// The §5 headline: on a high-diameter graph, sparse-worklist bfs
	// beats the dense-worklist vertex program.
	g := gen.WebCrawl(60000, 8, 500, 23)
	src, _ := g.MaxOutDegreeNode()
	sparse := BFSSparse(testRuntime(t, g, galoisOpts()), src)
	dense := BFSDense(testRuntime(t, g, galoisOpts()), src)
	if sparse.Seconds >= dense.Seconds {
		t.Errorf("sparse (%.4fs) should beat dense (%.4fs) on high-diameter input", sparse.Seconds, dense.Seconds)
	}
	if dense.Rounds != sparse.Rounds {
		t.Errorf("round counts differ: dense %d sparse %d", dense.Rounds, sparse.Rounds)
	}
}

func TestLabelPropSCBeatsPlainOnHighDiameter(t *testing.T) {
	g := gen.WebCrawl(12000, 6, 300, 29)
	sc := CCLabelPropSC(testRuntime(t, g, bothDirOpts()))
	dense := CCLabelPropDense(testRuntime(t, g, bothDirOpts()))
	if sc.Rounds >= dense.Rounds {
		t.Errorf("shortcutting rounds (%d) should be below plain label prop (%d)", sc.Rounds, dense.Rounds)
	}
	if sc.Seconds >= dense.Seconds {
		t.Errorf("labelprop-sc (%.4fs) should beat dense labelprop (%.4fs)", sc.Seconds, dense.Seconds)
	}
}

func TestResultCountersPopulated(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 3)
	src, _ := g.MaxOutDegreeNode()
	res := BFSSparse(testRuntime(t, g, galoisOpts()), src)
	if res.Counters.Reads == 0 || res.Counters.Writes == 0 {
		t.Error("counters empty")
	}
	if res.Counters.UserNs <= 0 {
		t.Error("no user time attributed")
	}
}
