package analytics

import (
	"reflect"
	"runtime"
	"testing"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
)

// Compressed-backend conformance: on the fig7 inputs, every kernel run on
// the byte-compressed CSR backend must produce results byte-identical to
// the raw backend — same outputs, same round count, same per-round
// frontier trajectory (sizes, representation, direction) — with only the
// charging (byte counters, simulated time) allowed to differ. On top of
// that, the compressed runs themselves must be fully byte-identical
// (charging included) across GOMAXPROCS 1, 3 and 8, extending PR 2's
// determinism contract to the new backend.

// compressedKernels lists the kernel executions compared, mirroring the
// fig7 algorithm set plus pr. Each closure builds a fresh runtime on g.
func compressedKernels(t *testing.T, g *graph.Graph) map[string]func(core.Backend) *Result {
	t.Helper()
	src, _ := g.MaxOutDegreeNode()
	build := func(opts core.Options, b core.Backend) *core.Runtime {
		opts.Backend = b
		return testRuntime(t, g, opts)
	}
	return map[string]func(core.Backend) *Result{
		"bfs-diropt": func(b core.Backend) *Result {
			return BFSDirOpt(build(bothDirOpts(), b), src)
		},
		"bfs-sparse": func(b core.Backend) *Result {
			return BFSSparse(build(galoisOpts(), b), src)
		},
		"cc-shortcut": func(b core.Backend) *Result {
			return CCLabelPropSC(build(bothDirOpts(), b))
		},
		"sssp-delta": func(b core.Backend) *Result {
			return SSSPDeltaStep(build(weightedOpts(), b), src, 64)
		},
		"sssp-bf-dense": func(b core.Backend) *Result {
			return SSSPBellmanFordDense(build(weightedOpts(), b), src)
		},
		"pr": func(b core.Backend) *Result {
			o := bothDirOpts()
			return PageRank(build(o, b), 1e-9, 20)
		},
	}
}

// sameOutputs asserts every kernel output and the frontier trajectory
// match; Stats (charging) is explicitly excluded.
func sameOutputs(t *testing.T, label string, raw, z *Result) {
	t.Helper()
	if raw.Rounds != z.Rounds {
		t.Errorf("%s: rounds %d != %d", label, raw.Rounds, z.Rounds)
	}
	if !reflect.DeepEqual(raw.Dist, z.Dist) ||
		!reflect.DeepEqual(raw.Labels, z.Labels) ||
		!reflect.DeepEqual(raw.Rank, z.Rank) ||
		!reflect.DeepEqual(raw.InCore, z.InCore) ||
		raw.Triangles != z.Triangles {
		t.Errorf("%s: kernel outputs differ between backends", label)
	}
	if len(raw.Trace) != len(z.Trace) {
		t.Fatalf("%s: trace length %d != %d", label, len(raw.Trace), len(z.Trace))
	}
	for i := range raw.Trace {
		a, b := raw.Trace[i], z.Trace[i]
		if a.Round != b.Round || a.Frontier != b.Frontier || a.Edges != b.Edges ||
			a.Dense != b.Dense || a.Pull != b.Pull {
			t.Errorf("%s: round %d trajectory differs: %+v vs %+v", label, i, a, b)
		}
	}
}

func compressedInputs(t *testing.T) []string {
	if testing.Short() || raceEnabled {
		return []string{"rmat32", "clueweb12"}
	}
	// The fig7 input set.
	return []string{"rmat32", "clueweb12", "wdc12"}
}

func TestCompressedBackendByteIdenticalToRaw(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	for _, name := range compressedInputs(t) {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			if !g.HasWeights() {
				// Weight once up front; lazy weighting mid-test would
				// re-encode the compressed blocks between runs.
				g.AddRandomWeights(64, 99)
			}
			g.BuildIn()
			for label, run := range compressedKernels(t, g) {
				t.Run(label, func(t *testing.T) {
					raw := run(core.BackendRaw)
					runtime.GOMAXPROCS(1)
					z1 := run(core.BackendCompressed)
					runtime.GOMAXPROCS(3)
					z3 := run(core.BackendCompressed)
					runtime.GOMAXPROCS(8)
					z8 := run(core.BackendCompressed)
					runtime.GOMAXPROCS(orig)

					sameOutputs(t, label+" raw-vs-compressed", raw, z1)
					// The compressed runs must be byte-identical to each
					// other, charging included, at any GOMAXPROCS.
					for gmp, other := range map[string]*Result{"GOMAXPROCS=3": z3, "GOMAXPROCS=8": z8} {
						if z1.Seconds != other.Seconds {
							t.Errorf("%s: simulated seconds %v != %v", gmp, z1.Seconds, other.Seconds)
						}
						if !reflect.DeepEqual(z1.Counters, other.Counters) {
							t.Errorf("%s: counters differ", gmp)
						}
						if !reflect.DeepEqual(z1.Trace, other.Trace) {
							t.Errorf("%s: traces differ", gmp)
						}
						sameOutputs(t, label+" "+gmp, z1, other)
					}
				})
			}
		})
	}
}

// TestCompressedBackendChargesFewerEdgeBytes pins the backend's point:
// a whole-graph streaming kernel (pr) must read measurably fewer
// adjacency bytes compressed than raw.
func TestCompressedBackendChargesFewerEdgeBytes(t *testing.T) {
	g := scaleSmallInput(t, "clueweb12")
	g.BuildIn()
	read := func(b core.Backend) uint64 {
		o := bothDirOpts()
		o.Backend = b
		r := testRuntime(t, g, o)
		PageRank(r, 1e-9, 10)
		return r.TopologyReadBytes()
	}
	raw, z := read(core.BackendRaw), read(core.BackendCompressed)
	if z >= raw {
		t.Fatalf("compressed backend read %d adjacency bytes, raw %d — compression saved nothing", z, raw)
	}
	t.Logf("adjacency reads: raw %d, compressed %d (%.1f%%)", raw, z, 100*float64(z)/float64(raw))
}

// TestEngineCompressedConfigsMatchReference drives the compressed backend
// through the whole engine configuration space of bfs (sparse, dense,
// dir-opt, hybrid) against the sequential reference, so representation
// conversions and pull early exits are exercised under the block decoder.
func TestEngineCompressedConfigsMatchReference(t *testing.T) {
	for _, name := range compressedInputs(t) {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			src, _ := g.MaxOutDegreeNode()
			want := refBFS(g, src)
			for _, c := range bfsConfigs {
				opts := galoisOpts()
				opts.BothDirections = c.bothDirs
				opts.Backend = core.BackendCompressed
				res := BFS(testRuntime(t, g, opts), c.cfg, src)
				if i, ok := distsEqual(want, res.Dist); !ok {
					t.Fatalf("%s: dist[%d] = %d, want %d", c.name, i, res.Dist[i], want[i])
				}
			}
		})
	}
}
