package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/worklist"
)

// newDistArray builds the native atomic distance array plus its simulated
// twin, initialized to Infinity (charged as a parallel streaming fill).
func newDistArray(r *core.Runtime, name string) ([]atomic.Uint32, *memsim.Array) {
	n := r.G.NumNodes()
	dist := make([]atomic.Uint32, n)
	arr := r.NodeArray(name, 4)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		for i := lo; i < hi; i++ {
			dist[i].Store(Infinity)
		}
		arr.WriteRange(t, lo, hi)
	})
	return dist, arr
}

// BFSSparse is the Galois-style breadth-first search: bulk-synchronous
// rounds over an explicit sparse worklist with a push-style operator. On
// high-diameter graphs this variant has the lowest memory footprint and
// traffic (Figure 7a).
func BFSSparse(r *core.Runtime, src graph.Node) *Result {
	w := startWindow(r.M)
	dist, distArr := newDistArray(r, "bfs.dist")
	wlArr := r.ScratchArray("bfs.wl", int64(r.G.NumNodes()), 4)

	dist[src].Store(0)
	frontier := []graph.Node{src}
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		level := uint32(rounds)
		next := worklist.NewBag()
		r.ParallelItems(int64(len(frontier)), func(t *memsim.Thread, lo, hi int64) {
			h := next.NewHandle()
			wlArr.ReadRange(t, lo, hi)
			pushed := int64(0)
			for _, v := range frontier[lo:hi] {
				nbrs := r.OutScan(t, v, false)
				distArr.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					if dist[d].CompareAndSwap(Infinity, level) {
						h.Push(d)
						pushed++
					}
				}
			}
			h.Flush()
			wlArr.WriteRange(t, 0, pushed)
		})
		frontier = next.Drain()
	}
	return w.finish(&Result{App: "bfs", Algorithm: "sparse-wl", Rounds: rounds, Dist: snapshot(dist)})
}

// BFSDense is the Ligra/GBBS/GraphIt-style breadth-first search: bulk-
// synchronous rounds over a dense bit-vector frontier. Every round scans
// the whole frontier bit-vector and the offsets array, which is what makes
// this variant lose on high-diameter graphs (§5.2).
func BFSDense(r *core.Runtime, src graph.Node) *Result {
	w := startWindow(r.M)
	n := r.G.NumNodes()
	dist, distArr := newDistArray(r, "bfs.dist")
	bits := r.ScratchArray("bfs.frontier.bits", int64(n+63)/64, 8)
	nextBits := r.ScratchArray("bfs.next.bits", int64(n+63)/64, 8)

	fr := worklist.NewDouble(n)
	fr.Cur.Set(src)
	dist[src].Store(0)
	active := 1
	rounds := 0
	for active > 0 {
		rounds++
		level := uint32(rounds)
		var nextActive atomic.Int64
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			// Dense iteration: scan this shard's frontier bits and
			// degree offsets for every vertex, active or not.
			bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
			r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			cnt := int64(0)
			fr.Cur.ForEachInRange(lo, hi, func(v graph.Node) {
				nbrs := r.G.OutNeighbors(v)
				r.Edges.ReadRange(t, r.G.OutOffsets[v], r.G.OutOffsets[v+1])
				distArr.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					if dist[d].CompareAndSwap(Infinity, level) {
						fr.Next.Set(d)
						cnt++
					}
				}
			})
			nextBits.RandomN(t, cnt, true)
			nextActive.Add(cnt)
		})
		fr.Swap()
		active = int(nextActive.Load())
	}
	return w.finish(&Result{App: "bfs", Algorithm: "dense-wl", Rounds: rounds, Dist: snapshot(dist)})
}

// BFSDirOpt is Beamer-style direction-optimizing BFS: push rounds while
// the frontier is small, pull (bottom-up) rounds while it is large. It
// requires in-edges for the pull direction, doubling the graph footprint
// (§5.1), and wins on low-diameter power-law graphs like rmat/kron where
// the frontier quickly covers most of the graph.
func BFSDirOpt(r *core.Runtime, src graph.Node) *Result {
	if r.InOffsets == nil {
		panic("analytics: BFSDirOpt requires a runtime with in-edges (BothDirections)")
	}
	w := startWindow(r.M)
	n := r.G.NumNodes()
	dist, distArr := newDistArray(r, "bfs.dist")
	bits := r.ScratchArray("bfs.frontier.bits", int64(n+63)/64, 8)

	fr := worklist.NewDouble(n)
	fr.Cur.Set(src)
	dist[src].Store(0)
	frontierEdges := r.G.OutDegree(src)
	active := 1
	rounds := 0
	pullThreshold := r.G.NumEdges() / 20

	for active > 0 {
		rounds++
		level := uint32(rounds)
		var nextActive, nextEdges atomic.Int64
		if frontierEdges > pullThreshold {
			// Pull round: every unvisited vertex scans its
			// in-neighbors until it finds one in the frontier.
			r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
				bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
				distArr.ReadRange(t, int64(lo), int64(hi))
				for v := lo; v < hi; v++ {
					if dist[v].Load() != Infinity {
						continue
					}
					ins := r.G.InNeighbors(v)
					scanned := int64(0)
					for _, u := range ins {
						scanned++
						if fr.Cur.Test(u) {
							dist[v].Store(level)
							fr.Next.Set(v)
							nextActive.Add(1)
							nextEdges.Add(r.G.OutDegree(v))
							break
						}
					}
					r.InScanPrefix(t, v, scanned)
					t.Op(int(scanned))
				}
			})
		} else {
			// Push round over the dense frontier.
			r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
				bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
				fr.Cur.ForEachInRange(lo, hi, func(v graph.Node) {
					nbrs := r.OutScan(t, v, false)
					distArr.RandomN(t, int64(len(nbrs)), true)
					t.Op(len(nbrs))
					for _, d := range nbrs {
						if dist[d].CompareAndSwap(Infinity, level) {
							fr.Next.Set(d)
							nextActive.Add(1)
							nextEdges.Add(r.G.OutDegree(d))
						}
					}
				})
			})
		}
		fr.Swap()
		active = int(nextActive.Load())
		frontierEdges = nextEdges.Load()
	}
	return w.finish(&Result{App: "bfs", Algorithm: "dir-opt", Rounds: rounds, Dist: snapshot(dist)})
}

func snapshot(a []atomic.Uint32) []uint32 {
	out := make([]uint32, len(a))
	for i := range a {
		out[i] = a[i].Load()
	}
	return out
}
