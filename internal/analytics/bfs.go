package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// newDistArray builds the native atomic distance array plus its simulated
// twin, initialized to Infinity (charged as a parallel streaming fill). It
// deliberately takes the bare runtime, not the engine, so asynchronous
// kernels (delta-stepping) can use it without allocating engine frontier
// storage they never touch.
func newDistArray(r *core.Runtime, name string) ([]atomic.Uint32, *memsim.Array) {
	n := r.G.NumNodes()
	dist := make([]atomic.Uint32, n)
	arr := r.NodeArray(name, 4)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		for i := lo; i < hi; i++ {
			dist[i].Store(Infinity)
		}
		arr.WriteRange(t, lo, hi)
	})
	return dist, arr
}

// BFS is breadth-first search over the operator engine: bulk-synchronous
// rounds whose frontier representation (sparse worklist, dense bit-vector,
// or auto-converting) and traversal direction (push, pull with early exit,
// or Beamer-style direction-optimizing) are selected by cfg. All §5
// variants of the paper are points in this configuration space.
func BFS(r *core.Runtime, cfg engine.Config, src graph.Node) *Result {
	w := startWindow(r.M)
	e := engine.New(r, cfg)
	dist, distArr := newDistArray(r, "bfs.dist")

	dist[src].Store(0)
	f := e.NewFrontier(src)
	rounds := 0
	for !f.Empty() {
		rounds++
		level := uint32(rounds)
		args := engine.EdgeMapArgs{
			// The CAS has exactly one winner per newly reached d, so
			// the claimed SET is the same under every interleaving;
			// which thread claims varies, but the engine's sorted merge
			// erases attribution.
			Push: func(u, d graph.Node, ei int64) bool {
				return dist[d].CompareAndSwap(Infinity, level)
			},
			PerEdge: []engine.Access{{Arr: distArr, Write: true}},
		}
		if e.CanPull() {
			cur := f
			args.Pull = func(v, u graph.Node, ei int64) (bool, bool) {
				if cur.Has(u) {
					dist[v].Store(level)
					return true, true
				}
				return false, false
			}
			args.PullCond = func(v graph.Node) bool { return dist[v].Load() == Infinity }
			args.PullSeqRead = []*memsim.Array{distArr}
			// Pull tests only frontier bits (charged per shard); it has
			// no per-edge label gather.
			args.PullPerEdge = []engine.Access{}
		}
		f = e.EdgeMap(f, args)
	}
	return w.finish(&Result{
		App:       "bfs",
		Algorithm: engine.TraversalName(r, e.Config()),
		Rounds:    rounds,
		Dist:      snapshot(dist),
		Trace:     e.Trace(),
	})
}

// BFSSparse is the Galois-style breadth-first search: bulk-synchronous
// rounds over an explicit sparse worklist with a push-style operator. On
// high-diameter graphs this variant has the lowest memory footprint and
// traffic (Figure 7a).
func BFSSparse(r *core.Runtime, src graph.Node) *Result {
	return BFS(r, engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush}, src)
}

// BFSDense is the Ligra/GBBS/GraphIt-style breadth-first search: bulk-
// synchronous rounds over a dense bit-vector frontier. Every round scans
// the whole frontier bit-vector and the offsets array, which is what makes
// this variant lose on high-diameter graphs (§5.2).
func BFSDense(r *core.Runtime, src graph.Node) *Result {
	return BFS(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, src)
}

// BFSDirOpt is Beamer-style direction-optimizing BFS: push rounds while
// the frontier is small, pull (bottom-up) rounds while it is large. It
// requires in-edges for the pull direction, doubling the graph footprint
// (§5.1), and wins on low-diameter power-law graphs like rmat/kron where
// the frontier quickly covers most of the graph.
func BFSDirOpt(r *core.Runtime, src graph.Node) *Result {
	if r.InOffsets == nil {
		panic("analytics: BFSDirOpt requires a runtime with in-edges (BothDirections)")
	}
	return BFS(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirAuto}, src)
}

func snapshot(a []atomic.Uint32) []uint32 {
	out := make([]uint32, len(a))
	for i := range a {
		out[i] = a[i].Load()
	}
	return out
}
