package analytics

import (
	"runtime"
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/worklist"
)

// KCoreDefaultK is the paper's k (§3: "The k in kcore is 100"). Scaled
// inputs have proportionally lower degrees, so the harness passes a scaled
// k; the kernel takes it as a parameter.
const KCoreDefaultK = 100

// kcoreDegrees computes the undirected degree (out + in) of every vertex.
// kcore views the graph as undirected, so the transpose is required.
func kcoreDegrees(r *core.Runtime) ([]atomic.Int64, *memsim.Array) {
	if r.InOffsets == nil {
		panic("analytics: kcore requires a runtime with in-edges (undirected degrees)")
	}
	n := r.G.NumNodes()
	deg := make([]atomic.Int64, n)
	arr := r.NodeArray("kcore.deg", 8)
	r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
		r.InOffsets.ReadRange(t, int64(lo), int64(hi)+1)
		arr.WriteRange(t, int64(lo), int64(hi))
		t.Op(int(hi - lo))
		for v := lo; v < hi; v++ {
			deg[v].Store(r.G.OutDegree(v) + r.G.InDegree(v))
		}
	})
	return deg, arr
}

// kcoreResult converts surviving degrees into core membership.
func kcoreResult(deg []atomic.Int64, k int64) []bool {
	in := make([]bool, len(deg))
	for v := range deg {
		in[v] = deg[v].Load() >= k
	}
	return in
}

// KCoreSparse is the Galois-style asynchronous peeling k-core: vertices
// whose degree drops below k enter a sparse worklist; threads drain it
// concurrently, decrementing neighbor degrees and cascading removals with
// no graph-wide rounds.
func KCoreSparse(r *core.Runtime, k int64) *Result {
	w := startWindow(r.M)
	deg, degArr := kcoreDegrees(r)
	wlArr := r.ScratchArray("kcore.wl", int64(r.G.NumNodes()), 4)

	// Seed: all vertices already below k.
	seed := worklist.NewBag()
	r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		h := seed.NewHandle()
		degArr.ReadRange(t, int64(lo), int64(hi))
		pushed := int64(0)
		for v := lo; v < hi; v++ {
			if deg[v].Load() < k {
				h.Push(v)
				pushed++
			}
		}
		h.Flush()
		wlArr.WriteRange(t, 0, pushed)
	})

	removed := make([]atomic.Bool, r.G.NumNodes())
	epochs := 0
	bag := seed
	var working atomic.Int64
	for !bag.Empty() {
		epochs++
		r.Parallel(func(t *memsim.Thread) {
			h := bag.NewHandle()
			for {
				chunk := bag.PopChunk()
				if chunk == nil {
					if working.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				working.Add(1)
				wlArr.ReadRange(t, 0, int64(len(chunk)))
				for _, v := range chunk {
					if removed[v].Swap(true) {
						continue
					}
					// Peel v: decrement every neighbor (both
					// directions; non-vertex cascade happens via
					// the worklist).
					nbrs := r.OutScan(t, v, false)
					degArr.RandomN(t, int64(len(nbrs)), true)
					t.Op(len(nbrs))
					for _, d := range nbrs {
						if deg[d].Add(-1) == k-1 {
							h.Push(d)
						}
					}
					ins := r.InScan(t, v, false)
					degArr.RandomN(t, int64(len(ins)), true)
					t.Op(len(ins))
					for _, d := range ins {
						if deg[d].Add(-1) == k-1 {
							h.Push(d)
						}
					}
				}
				h.Flush() // publish cascaded work promptly
				working.Add(-1)
			}
		})
	}
	return w.finish(&Result{App: "kcore", Algorithm: "peel-sparse", Rounds: epochs, InCore: kcoreResult(deg, k)})
}

// KCoreDense is the round-based peeling used by dense-worklist frameworks:
// each round scans every vertex, removes those whose degree at round start
// is below k (snapshot semantics), then applies the decrements — so
// removals cascade only across rounds, giving the peeling-depth round
// count a bulk-synchronous system pays.
func KCoreDense(r *core.Runtime, k int64) *Result {
	w := startWindow(r.M)
	deg, degArr := kcoreDegrees(r)
	n := r.G.NumNodes()
	removed := make([]atomic.Bool, n)

	rounds := 0
	for {
		rounds++
		// Phase 1: decide this round's peel set from the snapshot.
		peelThisRound := make([]atomic.Bool, n)
		var peeled atomic.Int64
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			degArr.ReadRange(t, int64(lo), int64(hi))
			t.Op(int(hi - lo))
			for v := lo; v < hi; v++ {
				if removed[v].Load() || deg[v].Load() >= k {
					continue
				}
				removed[v].Store(true)
				peelThisRound[v].Store(true)
				peeled.Add(1)
			}
		})
		if peeled.Load() == 0 {
			break
		}
		// Phase 2: apply the decrements.
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			for v := lo; v < hi; v++ {
				if !peelThisRound[v].Load() {
					continue
				}
				nbrs := r.OutScan(t, v, false)
				degArr.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					deg[d].Add(-1)
				}
				ins := r.InScan(t, v, false)
				degArr.RandomN(t, int64(len(ins)), true)
				t.Op(len(ins))
				for _, d := range ins {
					deg[d].Add(-1)
				}
			}
		})
	}
	return w.finish(&Result{App: "kcore", Algorithm: "peel-dense", Rounds: rounds, InCore: kcoreResult(deg, k)})
}
