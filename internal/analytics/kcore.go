package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// KCoreDefaultK is the paper's k (§3: "The k in kcore is 100"). Scaled
// inputs have proportionally lower degrees, so the harness passes a scaled
// k; the kernel takes it as a parameter.
const KCoreDefaultK = 100

// kcoreDegrees computes the undirected degree (out + in) of every vertex.
// kcore views the graph as undirected, so the transpose is required.
func kcoreDegrees(r *core.Runtime, e *engine.Engine) ([]atomic.Int64, *memsim.Array) {
	if r.InOffsets == nil {
		panic("analytics: kcore requires a runtime with in-edges (undirected degrees)")
	}
	deg := make([]atomic.Int64, r.G.NumNodes())
	arr := r.NodeArray("kcore.deg", 8)
	e.VertexMap(engine.VertexMapArgs{
		Fn:       func(v graph.Node) { deg[v].Store(r.OutDegree(v) + r.InDegree(v)) },
		SeqRead:  []*memsim.Array{r.Offsets, r.InOffsets},
		SeqWrite: []*memsim.Array{arr},
		Ops:      true,
	})
	return deg, arr
}

// kcoreResult converts surviving degrees into core membership.
func kcoreResult(deg []atomic.Int64, k int64) []bool {
	in := make([]bool, len(deg))
	for v := range deg {
		in[v] = deg[v].Load() >= k
	}
	return in
}

// KCore is k-core decomposition by cascading peeling over the operator
// engine: a VertexFilter seeds the frontier with every vertex already
// below k, then each round peels the frontier, decrementing undirected
// neighbor degrees through a symmetric push; a vertex whose degree drops
// below k is activated for the next round. cfg selects whether the
// cascade's frontiers are sparse worklists (Galois-style peeling, touching
// only the peeled vertices) or dense bit-vectors (the GBBS-style rounds
// that rescan the frontier bit-vector every peel level).
func KCore(r *core.Runtime, cfg engine.Config, k int64) *Result {
	w := startWindow(r.M)
	e := engine.New(r, cfg)
	deg, degArr := kcoreDegrees(r, e)
	removed := make([]atomic.Bool, r.G.NumNodes())

	// Seed: all vertices already below k.
	f := e.VertexFilter(engine.VertexMapArgs{
		SeqRead: []*memsim.Array{degArr},
	}, func(v graph.Node) bool {
		return deg[v].Load() < k && !removed[v].Swap(true)
	})

	rounds := 0
	for !f.Empty() {
		rounds++
		f = e.EdgeMap(f, engine.EdgeMapArgs{
			Symmetric: true,
			// Peel u: decrement every undirected neighbor; the single
			// decrement that crosses k-1 activates (and removes) it.
			Push: func(u, d graph.Node, ei int64) bool {
				if deg[d].Add(-1) == k-1 {
					return !removed[d].Swap(true)
				}
				return false
			},
			PerEdge: []engine.Access{{Arr: degArr, Write: true}},
		})
	}
	return w.finish(&Result{
		App:       "kcore",
		Algorithm: "peel-" + repName(e.Config().Rep),
		Rounds:    rounds,
		InCore:    kcoreResult(deg, k),
		Trace:     e.Trace(),
	})
}

// KCoreSparse is the Galois-style peeling k-core over sparse worklists:
// each cascade level touches only the vertices being peeled.
func KCoreSparse(r *core.Runtime, k int64) *Result {
	return KCore(r, engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush}, k)
}

// KCoreDense is the peeling used by dense-worklist frameworks: the same
// cascade over bit-vector frontiers, rescanning the frontier bits and
// offsets arrays at every peel level.
func KCoreDense(r *core.Runtime, k int64) *Result {
	return KCore(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, k)
}

func repName(rep engine.Rep) string {
	switch rep {
	case engine.RepSparse:
		return "sparse"
	case engine.RepDense:
		return "dense"
	default:
		return "hybrid"
	}
}
