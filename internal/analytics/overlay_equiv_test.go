package analytics

import (
	"reflect"
	"runtime"
	"testing"

	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Overlay-epoch conformance: every kernel run over a delta-overlay epoch
// must produce results byte-identical to the same epoch rebuilt from
// scratch — same outputs, same round count, same frontier trajectory —
// across both storage backends, with only the charging allowed to differ
// (the overlay charges base arrays plus its own small delta arrays). And
// the overlay runs themselves must be byte-identical, charging included,
// across GOMAXPROCS 1, 3 and 8 — the determinism contract extends to the
// new adjacency form.

// testRuntimeOverlay builds a runtime over an overlay epoch on the same
// scaled Optane machine testRuntime uses.
func testRuntimeOverlay(t *testing.T, ov *graph.Overlay, opts core.Options) *core.Runtime {
	t.Helper()
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	if opts.Threads == 0 {
		opts.Threads = 8
	}
	r, err := core.NewOverlay(m, ov, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// overlayEpoch builds the compared pair: a base sealed the way the serving
// layer seals epochs, a chain of update batches folded into one overlay,
// and the same chain applied as merge rebuilds.
func overlayEpoch(t *testing.T, name string, batches int) (*graph.Overlay, *graph.Graph) {
	t.Helper()
	base := scaleSmallInput(t, name)
	if !base.HasWeights() {
		base.AddRandomWeights(64, 99)
	}
	base.BuildIn()

	ups, err := gen.UpdateStream(base, batches, 40, 0xBEEF, true)
	if err != nil {
		t.Fatal(err)
	}
	// UpdateStream evolves a working copy internally, so each batch is
	// valid for the state all earlier batches produce — exactly the chain
	// both forms replay here.
	ov := graph.NewOverlay(base)
	cur := base
	for i, batch := range ups {
		ov, _, err = ov.Apply(batch)
		if err != nil {
			t.Fatalf("batch %d overlay: %v", i, err)
		}
		cur, _, err = graph.ApplyUpdates(cur, batch)
		if err != nil {
			t.Fatalf("batch %d rebuild: %v", i, err)
		}
	}
	cur.BuildIn()
	if err := ov.Validate(); err != nil {
		t.Fatal(err)
	}
	return ov, cur
}

// overlayKernels mirrors compressedKernels plus the degree-dispatching
// kernels (kcore, tc): each closure runs one kernel over either the
// overlay epoch or its rebuild, on the chosen backend.
func overlayKernels(t *testing.T, ov *graph.Overlay, cur *graph.Graph) map[string]func(overlay bool, b core.Backend) *Result {
	t.Helper()
	ovSrc, _ := ov.MaxOutDegreeNode()
	src, _ := cur.MaxOutDegreeNode()
	if ovSrc != src {
		t.Fatalf("source pick differs: overlay %d, rebuild %d", ovSrc, src)
	}
	build := func(overlay bool, opts core.Options, b core.Backend) *core.Runtime {
		opts.Backend = b
		if overlay {
			return testRuntimeOverlay(t, ov, opts)
		}
		return testRuntime(t, cur, opts)
	}
	return map[string]func(overlay bool, b core.Backend) *Result{
		"bfs-diropt": func(o bool, b core.Backend) *Result {
			return BFSDirOpt(build(o, bothDirOpts(), b), src)
		},
		"bfs-sparse": func(o bool, b core.Backend) *Result {
			return BFSSparse(build(o, galoisOpts(), b), src)
		},
		"cc-shortcut": func(o bool, b core.Backend) *Result {
			return CCLabelPropSC(build(o, bothDirOpts(), b))
		},
		"sssp-delta": func(o bool, b core.Backend) *Result {
			return SSSPDeltaStep(build(o, weightedOpts(), b), src, 64)
		},
		"sssp-bf-dense": func(o bool, b core.Backend) *Result {
			return SSSPBellmanFordDense(build(o, weightedOpts(), b), src)
		},
		"pr": func(o bool, b core.Backend) *Result {
			return PageRank(build(o, bothDirOpts(), b), 1e-9, 20)
		},
		"kcore": func(o bool, b core.Backend) *Result {
			return KCoreSparse(build(o, bothDirOpts(), b), 4)
		},
		"tc": func(o bool, b core.Backend) *Result {
			return TC(build(o, galoisOpts(), b))
		},
	}
}

func TestOverlayEpochByteIdenticalToRebuild(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	inputs := []string{"rmat32", "clueweb12"}
	if testing.Short() || raceEnabled {
		inputs = []string{"rmat32"}
	}
	for _, name := range inputs {
		t.Run(name, func(t *testing.T) {
			ov, cur := overlayEpoch(t, name, 3)
			for label, run := range overlayKernels(t, ov, cur) {
				t.Run(label, func(t *testing.T) {
					rebuilt := run(false, core.BackendRaw)
					for _, backend := range []core.Backend{core.BackendRaw, core.BackendCompressed} {
						runtime.GOMAXPROCS(1)
						o1 := run(true, backend)
						runtime.GOMAXPROCS(3)
						o3 := run(true, backend)
						runtime.GOMAXPROCS(8)
						o8 := run(true, backend)
						runtime.GOMAXPROCS(orig)

						sameOutputs(t, label+" overlay-vs-rebuild "+backend.String(), rebuilt, o1)
						for gmp, other := range map[string]*Result{"GOMAXPROCS=3": o3, "GOMAXPROCS=8": o8} {
							if o1.Seconds != other.Seconds {
								t.Errorf("%s %s: simulated seconds %v != %v", backend, gmp, o1.Seconds, other.Seconds)
							}
							if !reflect.DeepEqual(o1.Counters, other.Counters) {
								t.Errorf("%s %s: counters differ", backend, gmp)
							}
							sameOutputs(t, label+" "+gmp, o1, other)
						}
					}
				})
			}
		})
	}
}

// TestOverlayChargesDeltaSeparately pins the honest-charging split: an
// overlay run reads base adjacency bytes PLUS a small delta-array stream,
// so its topology traffic exceeds a run over the bare base but by no more
// than the delta's share.
func TestOverlayChargesDeltaSeparately(t *testing.T) {
	ov, _ := overlayEpoch(t, "rmat32", 2)
	o := bothDirOpts()
	rOv := testRuntimeOverlay(t, ov, o)
	PageRank(rOv, 1e-9, 10)
	ovBytes := rOv.TopologyReadBytes()

	rBase := testRuntime(t, ov.Base(), o)
	PageRank(rBase, 1e-9, 10)
	baseBytes := rBase.TopologyReadBytes()

	if ovBytes <= baseBytes {
		t.Fatalf("overlay run read %d topology bytes, base-only run %d — delta entries were not charged", ovBytes, baseBytes)
	}
	if ratio := float64(ovBytes) / float64(baseBytes); ratio > 1.5 {
		t.Fatalf("overlay charging overhead %.2fx — delta must be a small separate stream, not a rebuilt graph", ratio)
	}
}
