package analytics

import (
	"sort"
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// TC counts triangles with the node-iterator algorithm over a degree-
// ordered DAG: edges are oriented from lower-rank (higher-degree) to
// higher-rank endpoints, and each directed wedge is closed by an ordered
// adjacency intersection. The graph is treated as undirected and must be
// free of duplicate edges for exact counts (generators dedupe when asked).
//
// The DAG construction is charged to the simulator as part of the run, as
// the frameworks in the paper preprocess inside the timed region for tc.
func TC(r *core.Runtime) *Result {
	w := startWindow(r.M)
	n := r.G.NumNodes()

	// Rank nodes by descending degree (ties by ID).
	rank := make([]uint32, n)
	order := make([]graph.Node, n)
	for i := range order {
		order[i] = graph.Node(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := r.OutDegree(order[i]), r.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	for pos, v := range order {
		rank[v] = uint32(pos)
	}
	rankArr := r.NodeArray("tc.rank", 4)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		rankArr.WriteRange(t, lo, hi)
		t.Op(int(hi - lo))
	})

	// Build the oriented adjacency: for each v keep neighbors with
	// higher rank, sorted by rank.
	dagOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		cnt := int64(0)
		for _, d := range r.OutNeighbors(graph.Node(v)) {
			if rank[d] > rank[v] {
				cnt++
			}
		}
		dagOff[v+1] = dagOff[v] + cnt
	}
	dagEdges := make([]graph.Node, dagOff[n])
	dagOffArr := r.ScratchArray("tc.dag.offsets", int64(n+1), 8)
	dagEdgesArr := r.ScratchArray("tc.dag.edges", max64(dagOff[n], 1), 4)
	outView := r.OutView()
	r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
		dagOffArr.WriteRange(t, int64(lo), int64(hi))
		for v := lo; v < hi; v++ {
			outView.ChargeScan(t, v, false)
			rankArr.RandomN(t, r.OutDegree(v), false)
			t.Op(int(r.OutDegree(v)))
			c := dagOff[v]
			for _, d := range r.OutNeighbors(v) {
				if rank[d] > rank[v] {
					dagEdges[c] = d
					c++
				}
			}
			lo2, hi2 := dagOff[v], c
			seg := dagEdges[lo2:hi2]
			sort.Slice(seg, func(i, j int) bool { return rank[seg[i]] < rank[seg[j]] })
			dagEdgesArr.WriteRange(t, lo2, hi2)
		}
	})

	// Count: for each DAG edge (u, v), intersect dag(u) and dag(v).
	var total atomic.Uint64
	r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		dagOffArr.ReadRange(t, int64(lo), int64(hi)+1)
		local := uint64(0)
		for u := lo; u < hi; u++ {
			au := dagEdges[dagOff[u]:dagOff[u+1]]
			if len(au) == 0 {
				continue
			}
			dagEdgesArr.ReadRange(t, dagOff[u], dagOff[u+1])
			for _, v := range au {
				av := dagEdges[dagOff[v]:dagOff[v+1]]
				steps := intersectCount(rank, au, av, &local)
				dagEdgesArr.ReadRange(t, dagOff[v], dagOff[v]+steps)
				t.Op(int(steps))
			}
		}
		total.Add(local)
	})

	return w.finish(&Result{App: "tc", Algorithm: "node-iterator", Rounds: 1, Triangles: total.Load()})
}

// intersectCount merges two rank-sorted adjacency lists, adding the number
// of common elements to total and returning the number of merge steps (the
// simulated read span on the second list).
func intersectCount(rank []uint32, a, b []graph.Node, total *uint64) int64 {
	i, j := 0, 0
	steps := int64(0)
	for i < len(a) && j < len(b) {
		steps++
		ra, rb := rank[a[i]], rank[b[j]]
		switch {
		case ra == rb:
			*total++
			i++
			j++
		case ra < rb:
			i++
		default:
			j++
		}
	}
	return steps
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
