package analytics

import (
	"testing"
	"testing/quick"

	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Property-based invariant tests: for arbitrary random graphs, kernel
// outputs must satisfy the defining inequalities of their problems.

// quickRuntime builds a runtime without test-scoped cleanup (machines are
// garbage collected with the run).
func quickRuntime(g *graph.Graph, opts core.Options) *core.Runtime {
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	if opts.Threads == 0 {
		opts.Threads = 8
	}
	return core.MustNew(m, g, opts)
}

// randomGraph builds a small arbitrary graph from fuzz inputs.
func randomGraph(seed uint32, weighted bool) *graph.Graph {
	n := int(seed%200) + 10
	m := int(seed%1500) + 20
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	g := gen.ErdosRenyi(n, m, uint64(seed)+1)
	if weighted {
		g.AddRandomWeights(50, uint64(seed)+7)
	}
	return g
}

func TestBFSTriangleInequality(t *testing.T) {
	// For every edge (v,d): dist[d] <= dist[v] + 1, and every reached
	// vertex other than the source has a predecessor at dist-1.
	check := func(seed uint32) bool {
		g := randomGraph(seed, false)
		src, _ := g.MaxOutDegreeNode()
		res := BFSSparse(quickRuntime(g, galoisOpts()), src)
		d := res.Dist
		for v := 0; v < g.NumNodes(); v++ {
			if d[v] == Infinity {
				continue
			}
			for _, w := range g.OutNeighbors(graph.Node(v)) {
				if d[w] > d[v]+1 {
					return false
				}
			}
		}
		return d[src] == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSSSPRelaxationFixpoint(t *testing.T) {
	// For every edge (v,d,w): dist[d] <= dist[v] + w (no relaxable edge
	// remains), and dist[src] == 0.
	check := func(seed uint32) bool {
		g := randomGraph(seed, true)
		src, _ := g.MaxOutDegreeNode()
		res := SSSPDeltaStep(quickRuntime(g, weightedOpts()), src, 16)
		d := res.Dist
		for v := 0; v < g.NumNodes(); v++ {
			if d[v] == Infinity {
				continue
			}
			ws := g.OutWeightsOf(graph.Node(v))
			for i, w := range g.OutNeighbors(graph.Node(v)) {
				if d[w] > d[v]+ws[i] {
					return false
				}
			}
		}
		return d[src] == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCCLabelsAreFixpoints(t *testing.T) {
	// Endpoints of every edge share a label, and every label is the
	// minimum vertex ID of its component.
	check := func(seed uint32) bool {
		g := randomGraph(seed, false)
		res := CCPointerJump(quickRuntime(g, galoisOpts()))
		l := res.Labels
		for v := 0; v < g.NumNodes(); v++ {
			if l[v] > uint32(v) {
				return false // label must not exceed own ID
			}
			for _, d := range g.OutNeighbors(graph.Node(v)) {
				if l[v] != l[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKCoreIsMaximal(t *testing.T) {
	// Every member of the k-core has >= k undirected neighbors inside
	// the core.
	check := func(seed uint32) bool {
		g := randomGraph(seed, false)
		g.BuildIn()
		k := int64(seed%6) + 2
		res := KCoreSparse(quickRuntime(g, bothDirOpts()), k)
		in := res.InCore
		for v := 0; v < g.NumNodes(); v++ {
			if !in[v] {
				continue
			}
			deg := int64(0)
			for _, d := range g.OutNeighbors(graph.Node(v)) {
				if in[d] {
					deg++
				}
			}
			for _, d := range g.InNeighbors(graph.Node(v)) {
				if in[d] {
					deg++
				}
			}
			if deg < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPageRankMassAndPositivity(t *testing.T) {
	check := func(seed uint32) bool {
		g := randomGraph(seed, false)
		res := PageRank(quickRuntime(g, bothDirOpts()), 1e-8, 60)
		sum := 0.0
		for _, r := range res.Rank {
			if r < 0 || r > 1 {
				return false
			}
			sum += r
		}
		return sum > 0.1 && sum <= 1.000001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBCNonNegative(t *testing.T) {
	check := func(seed uint32) bool {
		g := randomGraph(seed, false)
		src, _ := g.MaxOutDegreeNode()
		res := BC(quickRuntime(g, galoisOpts()), src, BCOptions{})
		for _, c := range res.Centrality {
			if c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestVariantsAgreeAcrossSchedules(t *testing.T) {
	// The §5.1 taxonomy: the same problem solved under different
	// schedules must produce the same answer.
	check := func(seed uint32) bool {
		g := randomGraph(seed, false)
		src, _ := g.MaxOutDegreeNode()
		sparse := BFSSparse(quickRuntime(g, galoisOpts()), src)
		dense := BFSDense(quickRuntime(g, galoisOpts()), src)
		for v := range sparse.Dist {
			if sparse.Dist[v] != dense.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
