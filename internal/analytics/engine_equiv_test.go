package analytics

import (
	"math"
	"sync"
	"testing"

	"pmemgraph/internal/engine"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// Equivalence tests for the operator-engine kernels on the ScaleSmall
// paper inputs: every engine configuration of a kernel must produce the
// same Result output (distances, labels, core membership, ranks within
// float tolerance) as the sequential reference implementation.

var (
	equivMu    sync.Mutex
	equivCache = map[string]*graph.Graph{}
)

// scaleSmallInput generates (and caches) one Table 3 stand-in.
func scaleSmallInput(t *testing.T, name string) *graph.Graph {
	t.Helper()
	equivMu.Lock()
	defer equivMu.Unlock()
	if g, ok := equivCache[name]; ok {
		return g
	}
	g, _, err := gen.Input(name, gen.ScaleSmall)
	if err != nil {
		t.Fatalf("generating %s: %v", name, err)
	}
	equivCache[name] = g
	return g
}

// equivInputs returns the inputs exercised: a fast diverse pair under
// -short, all six Table 3 stand-ins otherwise.
func equivInputs(t *testing.T) []string {
	if testing.Short() {
		return []string{"kron30", "clueweb12"}
	}
	return []string{"kron30", "clueweb12", "uk14", "iso_m100", "rmat32", "wdc12"}
}

// bfsConfigs spans the engine's configuration space: each entry says
// whether the runtime needs the transpose.
var bfsConfigs = []struct {
	name     string
	cfg      engine.Config
	bothDirs bool
}{
	{"sparse-push", engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush}, false},
	{"dense-push", engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, false},
	{"dir-opt", engine.Config{Rep: engine.RepDense, Dir: engine.DirAuto}, true},
	{"hybrid", engine.Config{Rep: engine.RepAuto, Dir: engine.DirAuto}, true},
}

func TestEngineBFSConfigsMatchReferenceOnScaleSmall(t *testing.T) {
	for _, name := range equivInputs(t) {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			src, _ := g.MaxOutDegreeNode()
			want := refBFS(g, src)
			for _, c := range bfsConfigs {
				opts := galoisOpts()
				opts.BothDirections = c.bothDirs
				res := BFS(testRuntime(t, g, opts), c.cfg, src)
				if i, ok := distsEqual(want, res.Dist); !ok {
					t.Fatalf("%s: dist[%d] = %d, want %d", c.name, i, res.Dist[i], want[i])
				}
				if len(res.Trace) != res.Rounds {
					t.Errorf("%s: trace %d entries for %d rounds", c.name, len(res.Trace), res.Rounds)
				}
			}
		})
	}
}

func TestEngineCCConfigsMatchReferenceOnScaleSmall(t *testing.T) {
	inputs := equivInputs(t)
	if len(inputs) > 3 {
		inputs = inputs[:3]
	}
	ccConfigs := []struct {
		name     string
		cfg      engine.Config
		shortcut bool
	}{
		{"sc-sparse", engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush}, true},
		{"plain-dense", engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, false},
		{"plain-dir-opt", engine.Config{Rep: engine.RepDense, Dir: engine.DirAuto}, false},
		{"sc-hybrid", engine.Config{Rep: engine.RepAuto, Dir: engine.DirAuto}, true},
	}
	for _, name := range inputs {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			want := refComponents(g)
			for _, c := range ccConfigs {
				res := CCLabelProp(testRuntime(t, g, bothDirOpts()), c.cfg, c.shortcut)
				if !componentsAgree(want, res.Labels) {
					t.Fatalf("%s: component partition differs from union-find reference", c.name)
				}
			}
		})
	}
}

func TestEngineSSSPBellmanFordConfigsOnScaleSmall(t *testing.T) {
	for _, name := range []string{"kron30", "clueweb12"} {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			g.AddRandomWeights(64, 99)
			src, _ := g.MaxOutDegreeNode()
			want := refSSSP(g, src)
			for _, c := range []struct {
				name     string
				cfg      engine.Config
				bothDirs bool
			}{
				{"dense-push", engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, false},
				{"dir-opt", engine.Config{Rep: engine.RepDense, Dir: engine.DirAuto}, true},
			} {
				opts := weightedOpts()
				opts.BothDirections = c.bothDirs
				res := SSSPBellmanFord(testRuntime(t, g, opts), c.cfg, src)
				if i, ok := distsEqual(want, res.Dist); !ok {
					t.Fatalf("%s: dist[%d] = %d, want %d", c.name, i, res.Dist[i], want[i])
				}
			}
		})
	}
}

func TestEngineKCoreRepsOnScaleSmall(t *testing.T) {
	for _, name := range []string{"kron30", "iso_m100"} {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			k := int64(8)
			want := refKCore(g, k)
			for _, cfg := range []engine.Config{
				{Rep: engine.RepSparse},
				{Rep: engine.RepDense},
				{Rep: engine.RepAuto},
			} {
				res := KCore(testRuntime(t, g, bothDirOpts()), cfg, k)
				for v := range want {
					if want[v] != res.InCore[v] {
						t.Fatalf("rep %v: node %d in-core = %v, want %v", cfg.Rep, v, res.InCore[v], want[v])
					}
				}
			}
		})
	}
}

func TestEngineBrandesRepsOnScaleSmall(t *testing.T) {
	g := scaleSmallInput(t, "kron30")
	src, _ := g.MaxOutDegreeNode()
	want := refBC(g, src)
	for _, cfg := range []engine.Config{
		{Rep: engine.RepSparse},
		{Rep: engine.RepDense},
		{Rep: engine.RepAuto},
	} {
		res := Brandes(testRuntime(t, g, galoisOpts()), cfg, src)
		for v := range want {
			if math.Abs(want[v]-res.Centrality[v]) > 1e-6*(1+math.Abs(want[v])) {
				t.Fatalf("rep %v: bc[%d] = %g, want %g", cfg.Rep, v, res.Centrality[v], want[v])
			}
		}
	}
}

func TestEnginePageRankMatchesReferenceOnScaleSmall(t *testing.T) {
	g := scaleSmallInput(t, "clueweb12")
	const rounds = 12
	want := refPageRank(g, 1e-15, rounds)
	res := PageRank(testRuntime(t, g, bothDirOpts()), 1e-15, rounds)
	if res.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", res.Rounds, rounds)
	}
	for v := range want {
		if math.Abs(want[v]-res.Rank[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %g, want %g", v, res.Rank[v], want[v])
		}
	}
}
