//go:build race

package analytics

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
