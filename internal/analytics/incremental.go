package analytics

import (
	"math"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Incremental recomputation for the streaming-update path (see DESIGN.md
// "Streaming updates & incremental kernels"). Both kernels here take the
// prior epoch's artifacts and the graph.Delta of the applied batch and
// produce outputs BITWISE IDENTICAL to a from-scratch run on the
// post-update graph — not approximately refreshed — while charging only
// the work the delta actually forces. That exactness is what lets the
// serving layer keep its provable result-cache story across updates, and
// it is locked by the conformance suite across GOMAXPROCS 1/3/8 and both
// storage backends.
//
//   - cc: the prior labels are a converged min-ID labeling, so every old
//     component is represented by its root. Insert-only deltas can only
//     merge components: union-by-min over the inserted pairs followed by
//     one streaming relabel reproduces the canonical labeling with no
//     adjacency traversal at all. Deletions can split components, which
//     label reuse cannot express — callers fall back to full recompute.
//   - pr: power iteration from the uniform init is replayed, but a round's
//     gather runs only for "tainted" vertices — those whose inputs can
//     differ from the prior epoch's recorded trajectory (the structurally
//     changed region, grown by one hop per round). Untainted vertices copy
//     the recorded value, which is bitwise what the gather would produce.
//     When the taint region grows past a threshold, or the replay runs out
//     of recorded rounds, the remaining rounds execute as ordinary full
//     pulls (still bitwise exact — the fallback is seamless mid-run).

// PRSeedMaxRounds caps the per-round rank vectors a PRSeed records. Taint
// grows by one hop per round, so on low-diameter graphs the trajectory
// stops paying for itself after a handful of rounds anyway; the cap bounds
// seed memory at PRSeedMaxRounds * 8 bytes per vertex.
const PRSeedMaxRounds = 32

// prIncFullFrac switches an incremental pr round to a full pull once the
// tainted region's edge work (in-gathers plus the out-push that advances
// the taint) exceeds |E|/prIncFullFrac: past that, per-vertex gathers and
// taint maintenance cost more than one streaming full round saves.
const prIncFullFrac = 2

// PRSeed is the prior-epoch pagerank artifact an incremental run resumes
// from: the recorded rank trajectory of the first PRSeedMaxRounds rounds.
// Any run's trajectory is bitwise the from-scratch trajectory on its
// graph (the incremental invariant), so seeds chain across epochs.
type PRSeed struct {
	// Rounds is the total round count of the recorded run (may exceed
	// len(Ranks) when the run outlived the recording cap).
	Rounds int
	// Ranks[k] is the rank vector after round k+1 (round 0 is the uniform
	// init and is never stored).
	Ranks [][]float64
}

// PageRankRecord is PageRank that additionally records the seed the next
// epoch's incremental run resumes from. Recording is host-side and
// uncharged (it models retaining outputs outside the measured window), so
// the Result is byte-identical to a plain PageRank call.
func PageRankRecord(r *core.Runtime, tol float64, maxRounds int) (*Result, *PRSeed) {
	seed := &PRSeed{}
	res := pageRank(r, tol, maxRounds, func(round int, rank []float64) {
		if round <= PRSeedMaxRounds {
			seed.Ranks = append(seed.Ranks, append([]float64(nil), rank...))
		}
		seed.Rounds = round
	})
	return res, seed
}

// PageRankIncremental recomputes pagerank on a post-update runtime, seeded
// by the prior epoch's recorded trajectory and the applied batch's Delta.
// The returned ranks (and round count) are bitwise identical to
// PageRank(r, tol, maxRounds); only the charging differs. The second
// return value is the new epoch's seed.
func PageRankIncremental(r *core.Runtime, seed *PRSeed, delta *graph.Delta, tol float64, maxRounds int) (*Result, *PRSeed) {
	if r.InOffsets == nil {
		panic("analytics: PageRankIncremental requires a runtime with in-edges (pull operator)")
	}
	n := r.G.NumNodes()
	if seed == nil || len(seed.Ranks) == 0 || len(seed.Ranks[0]) != n || delta == nil {
		panic("analytics: PageRankIncremental needs a prior trajectory for this graph and the update delta")
	}
	tol, maxRounds = prDefaults(tol, maxRounds)
	w := startWindow(r.M)
	s := newPRState(r)
	// te owns the taint-propagation pushes with sparse worklists, so taint
	// maintenance is charged proportionally to the tainted region rather
	// than to |V|.
	te := engine.New(r, engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush})
	taintArr := r.NodeArray("pr.taint", 1)
	seedArr := r.NodeArray("pr.seedranks", 8)
	tainted := make([]bool, n)

	// Structural taint S: vertices whose round inputs differ regardless of
	// rank movement — changed in-neighborhoods, plus every out-neighbor of
	// a source whose degree (contribution divisor) moved.
	S := delta.Dsts
	if len(delta.DegChanged) > 0 {
		f := te.EdgeMap(te.SparseFrontier(delta.DegChanged), engine.EdgeMapArgs{
			Push: func(u, d graph.Node, ei int64) bool { return true },
		})
		S = unionSorted(S, f.Vertices())
	}
	T := S
	for _, v := range T {
		tainted[v] = true
	}

	// taintEdges is the edge work an incremental round over T costs: the
	// whole-in-neighborhood gathers plus the out-push advancing the taint.
	// It is a pure function of T, so the full-mode switchover round is
	// deterministic.
	taintEdges := func(T []graph.Node) int64 {
		var total int64
		for _, v := range T {
			total += r.InDegree(v) + r.OutDegree(v)
		}
		return total
	}

	rec := &PRSeed{}
	fullMode := false
	rounds := 0
	for rounds < maxRounds {
		rounds++
		if !fullMode && (rounds > len(seed.Ranks) || taintEdges(T) > r.NumEdges()/prIncFullFrac) {
			fullMode = true
		}
		s.publishContrib()
		if fullMode {
			s.fullPullRound()
		} else {
			old := seed.Ranks[rounds-1]
			// Copy pass: untainted vertices take the recorded value —
			// bitwise the gather result, at streaming cost.
			s.e.VertexMap(engine.VertexMapArgs{
				Fn: func(v graph.Node) {
					if !tainted[v] {
						s.next[v] = old[v]
					}
				},
				SeqRead:  []*memsim.Array{seedArr, taintArr},
				SeqWrite: []*memsim.Array{s.nextArr},
				Ops:      true,
			})
			s.gatherTainted(T)
			s.residualPass()
		}
		s.swap()
		if rounds <= PRSeedMaxRounds {
			rec.Ranks = append(rec.Ranks, append([]float64(nil), s.rank...))
		}
		if s.residual() < tol {
			break
		}
		if !fullMode && rounds < maxRounds && rounds < len(seed.Ranks) {
			// Advance the taint region one hop for the next round:
			// T' = S ∪ out-neighbors(T) on the new graph.
			f := te.EdgeMap(te.SparseFrontier(T), engine.EdgeMapArgs{
				Push: func(u, d graph.Node, ei int64) bool { return true },
			})
			next := unionSorted(S, f.Vertices())
			for _, v := range T {
				tainted[v] = false
			}
			for _, v := range next {
				tainted[v] = true
			}
			T = next
		}
	}
	rec.Rounds = rounds
	return w.finish(&Result{
		App:       "pr",
		Algorithm: "topo-pull-inc",
		Rounds:    rounds,
		Rank:      append([]float64(nil), s.rank...),
	}), rec
}

// gatherTainted re-gathers the whole in-neighborhood of every tainted
// vertex, in the same per-vertex neighbor order as a full pull round, so
// the recomputed values are bitwise what fullPullRound would produce.
func (s *prState) gatherTainted(T []graph.Node) {
	s.r.ParallelItems(int64(len(T)), func(t *memsim.Thread, lo, hi int64) {
		var edges int64
		for _, v := range T[lo:hi] {
			nbrs := s.r.InScan(t, v, false)
			acc := 0.0
			for _, u := range nbrs {
				acc += s.contrib[u]
			}
			s.next[v] = s.base + prDamping*acc
			edges += int64(len(nbrs))
		}
		s.contribArr.RandomN(t, edges, false)
		s.nextArr.RandomN(t, hi-lo, true)
		t.Op(int(edges + (hi - lo)))
	})
}

// residualPass computes the per-chunk L1 residual shards over every vertex
// with the same static chunk ownership (and therefore the same float fold
// order) as fullPullRound's OnPullChunk, so mixed incremental/full runs
// cross the tolerance on exactly the same round as a from-scratch run.
func (s *prState) residualPass() {
	for i := range s.resid {
		s.resid[i] = 0
	}
	s.r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		s.rankArr.ReadRange(t, int64(lo), int64(hi))
		s.nextArr.ReadRange(t, int64(lo), int64(hi))
		local := 0.0
		for v := lo; v < hi; v++ {
			local += math.Abs(s.next[v] - s.rank[v])
		}
		s.resid[t.ID] += local
		t.Op(int(hi - lo))
	})
}

// unionSorted merges two ascending, duplicate-free vertex slices.
func unionSorted(a, b []graph.Node) []graph.Node {
	out := make([]graph.Node, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// CCIncremental recomputes connected components after an insert-only batch
// from the prior epoch's converged labels. Old labels are a min-ID
// labeling, so each old component is represented by its root (the label is
// the root's own ID); inserted edges can only merge those components.
// Union-by-min over the inserted pairs builds the merged root forest —
// touching only batch-sized state, no adjacency traversal — and one
// streaming relabel maps every vertex through the resolved forest. The
// result is the canonical min-ID labeling, bitwise identical to any of the
// full cc variants on the post-update graph. Panics if the delta contains
// deletions (they can split components; callers fall back to full
// recompute — see frameworks.RunIncrementalOnOpts).
func CCIncremental(r *core.Runtime, prior []uint32, delta *graph.Delta) *Result {
	n := r.G.NumNodes()
	if len(prior) != n {
		panic("analytics: CCIncremental prior labels do not match the graph")
	}
	if delta == nil || delta.HasDeletes {
		panic("analytics: CCIncremental requires an insert-only delta")
	}
	w := startWindow(r.M)
	priorArr := r.NodeArray("cc.labels.prior", 4)
	labArr := r.NodeArray("cc.labels", 4)
	rootsLen := int64(2 * len(delta.Inserted))
	if rootsLen < 1 {
		rootsLen = 1
	}
	// rootsArr models the touched-root table union-find reads and writes;
	// it is bounded by twice the batch size.
	rootsArr := r.ScratchArray("cc.roots", rootsLen, 4)

	// parent holds entries only for touched old roots (absent = identity).
	parent := make(map[uint32]uint32, 2*len(delta.Inserted))
	var touched []uint32
	get := func(x uint32) uint32 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			touched = append(touched, x)
			return x
		}
		return p
	}
	// Hook phase: sequential over the sorted batch on one simulated
	// thread. Linking always points the larger root at the smaller, so the
	// final root of a merged set is its minimum vertex ID — the canonical
	// label — regardless of hook order; the fixed order just makes the
	// intermediate chains (and their charges) deterministic too.
	r.M.Parallel(1, func(t *memsim.Thread) {
		var steps int64
		find := func(x uint32) uint32 {
			for {
				p := get(x)
				if p == x {
					return x
				}
				if gp := get(p); gp != p {
					parent[x] = gp // path halving
					steps++
				}
				x = p
				steps++
			}
		}
		for _, e := range delta.Inserted {
			ra, rb := find(prior[e.Src]), find(prior[e.Dst])
			switch {
			case ra < rb:
				parent[rb] = ra
				steps++
			case rb < ra:
				parent[ra] = rb
				steps++
			}
		}
		// Resolve every touched root to its final root so the relabel pass
		// below is a single probe per vertex.
		for _, x := range touched {
			parent[x] = find(x)
			steps++
		}
		priorArr.RandomN(t, int64(2*len(delta.Inserted)), false)
		rootsArr.RandomN(t, steps, true)
		t.Op(len(delta.Inserted))
	})

	// Relabel: stream the prior labels, probe the resolved root table, and
	// publish. Each vertex has one owning chunk, so the pass is
	// deterministic under any interleaving; parent is read-only here.
	cur := make([]uint32, n)
	r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
		priorArr.ReadRange(t, int64(lo), int64(hi))
		rootsArr.RandomN(t, int64(hi-lo), false)
		labArr.WriteRange(t, int64(lo), int64(hi))
		t.Op(int(hi - lo))
		for v := lo; v < hi; v++ {
			l := prior[v]
			if nl, ok := parent[l]; ok {
				l = nl
			}
			cur[v] = l
		}
	})
	return w.finish(&Result{
		App:       "cc",
		Algorithm: "inc-unionfind",
		Rounds:    1,
		Labels:    cur,
	})
}
