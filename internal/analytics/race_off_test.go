//go:build !race

package analytics

// raceEnabled reports whether the race detector is active; the compressed
// conformance trims its input set under -race (the invariant is charge
// determinism, which the detector cannot influence, and the harness runs
// ~15x slower under it).
const raceEnabled = false
