package analytics

import (
	"reflect"
	"runtime"
	"testing"

	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// Incremental conformance: after a batched update, the incremental cc and
// pr kernels must produce outputs BITWISE IDENTICAL to a from-scratch run
// on the post-update graph — same labels, same ranks, same
// tolerance-crossing round — across GOMAXPROCS 1/3/8 and both storage
// backends, with only the charging (seconds, counters) allowed to differ.
// This is the acceptance contract of the streaming-update path.

// incUpdateBatch builds a deterministic insert-heavy batch against g:
// size/2 random new pairs plus, when withDeletes is set, size/4 deletions
// of existing edges (pr only; cc falls back on deletions).
func incUpdateBatch(t *testing.T, g *graph.Graph, size int, seed uint64, withDeletes bool) []graph.EdgeUpdate {
	t.Helper()
	stream, err := gen.UpdateStream(g, 1, size, seed, withDeletes)
	if err != nil {
		t.Fatal(err)
	}
	return stream[0]
}

// applied returns the post-update graph and delta, sealed enough for both
// backends (weights, transpose, compressed encodings).
func applied(t *testing.T, g *graph.Graph, ups []graph.EdgeUpdate) (*graph.Graph, *graph.Delta) {
	t.Helper()
	ng, delta, err := graph.ApplyUpdates(g, ups)
	if err != nil {
		t.Fatal(err)
	}
	ng.BuildIn()
	return ng, &delta
}

// skipSweepUnderRace trims the GOMAXPROCS-sweep conformance tests from the
// blanket -race job: they assert determinism, not memory safety, and the
// incremental kernels' parallel internals already run under -race via the
// server conformance suite (incremental serving) and the charges test
// below.
func skipSweepUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("determinism sweep adds ~15x runtime under race and no race coverage beyond the server suite")
	}
}

func TestIncrementalCCMatchesFullRecompute(t *testing.T) {
	skipSweepUnderRace(t)
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, name := range compressedInputs(t) {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			g.BuildIn()
			prior := CCLabelPropSC(testRuntime(t, g, bothDirOpts())).Labels
			ups := incUpdateBatch(t, g, 64, 0xCC01, false)
			ng, delta := applied(t, g, ups)
			want := CCLabelPropSC(testRuntime(t, ng, bothDirOpts())).Labels
			// The canonical min-ID labeling is shared by every full
			// variant; pointer-jump must agree too.
			if pj := CCPointerJump(testRuntime(t, ng, bothDirOpts())); !reflect.DeepEqual(pj.Labels, want) {
				t.Fatal("full cc variants disagree on the post-update graph")
			}
			run := func(backend core.Backend) *Result {
				o := bothDirOpts()
				o.Backend = backend
				return CCIncremental(testRuntime(t, ng, o), prior, delta)
			}
			runtime.GOMAXPROCS(1)
			inc1 := run(core.BackendRaw)
			runtime.GOMAXPROCS(3)
			inc3 := run(core.BackendRaw)
			incZ := run(core.BackendCompressed)
			runtime.GOMAXPROCS(8)
			inc8 := run(core.BackendRaw)
			runtime.GOMAXPROCS(orig)
			for label, res := range map[string]*Result{
				"GOMAXPROCS=1": inc1, "GOMAXPROCS=3": inc3, "GOMAXPROCS=8": inc8, "compressed": incZ,
			} {
				if !reflect.DeepEqual(res.Labels, want) {
					t.Errorf("%s: incremental labels differ from full recompute", label)
				}
			}
			if inc1.Seconds != inc3.Seconds || inc1.Seconds != inc8.Seconds {
				t.Errorf("incremental cc charging not GOMAXPROCS-deterministic: %v %v %v",
					inc1.Seconds, inc3.Seconds, inc8.Seconds)
			}
		})
	}
}

func TestIncrementalPRMatchesFullRecompute(t *testing.T) {
	skipSweepUnderRace(t)
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	const tol, maxRounds = 1e-9, 20
	for _, name := range compressedInputs(t) {
		t.Run(name, func(t *testing.T) {
			g := scaleSmallInput(t, name)
			g.BuildIn()
			_, seed := PageRankRecord(testRuntime(t, g, bothDirOpts()), tol, maxRounds)
			// Deletions are fine for pr: the taint region covers them.
			ups := incUpdateBatch(t, g, 64, 0x9901, true)
			ng, delta := applied(t, g, ups)
			full := PageRank(testRuntime(t, ng, bothDirOpts()), tol, maxRounds)
			run := func(backend core.Backend) *Result {
				o := bothDirOpts()
				o.Backend = backend
				res, _ := PageRankIncremental(testRuntime(t, ng, o), seed, delta, tol, maxRounds)
				return res
			}
			runtime.GOMAXPROCS(1)
			inc1 := run(core.BackendRaw)
			runtime.GOMAXPROCS(3)
			inc3 := run(core.BackendRaw)
			incZ := run(core.BackendCompressed)
			runtime.GOMAXPROCS(8)
			inc8 := run(core.BackendRaw)
			runtime.GOMAXPROCS(orig)
			for label, res := range map[string]*Result{
				"GOMAXPROCS=1": inc1, "GOMAXPROCS=3": inc3, "GOMAXPROCS=8": inc8, "compressed": incZ,
			} {
				if res.Rounds != full.Rounds {
					t.Errorf("%s: incremental stopped at round %d, full at %d", label, res.Rounds, full.Rounds)
				}
				if !reflect.DeepEqual(res.Rank, full.Rank) {
					t.Errorf("%s: incremental ranks differ bitwise from full recompute", label)
				}
			}
			if inc1.Seconds != inc3.Seconds || inc1.Seconds != inc8.Seconds {
				t.Errorf("incremental pr charging not GOMAXPROCS-deterministic: %v %v %v",
					inc1.Seconds, inc3.Seconds, inc8.Seconds)
			}
		})
	}
}

// TestIncrementalSeedsChainAcrossEpochs applies two successive batches,
// seeding the second incremental run from the first incremental run's own
// recorded trajectory — the serving-layer steady state.
func TestIncrementalSeedsChainAcrossEpochs(t *testing.T) {
	skipSweepUnderRace(t)
	const tol, maxRounds = 1e-9, 20
	g := scaleSmallInput(t, "clueweb12")
	g.BuildIn()
	_, seed0 := PageRankRecord(testRuntime(t, g, bothDirOpts()), tol, maxRounds)

	g1, delta1 := applied(t, g, incUpdateBatch(t, g, 32, 0xAB01, true))
	inc1, seed1 := PageRankIncremental(testRuntime(t, g1, bothDirOpts()), seed0, delta1, tol, maxRounds)
	if full1 := PageRank(testRuntime(t, g1, bothDirOpts()), tol, maxRounds); !reflect.DeepEqual(inc1.Rank, full1.Rank) {
		t.Fatal("epoch 1 incremental ranks differ from full recompute")
	}

	g2, delta2 := applied(t, g1, incUpdateBatch(t, g1, 32, 0xAB02, true))
	inc2, _ := PageRankIncremental(testRuntime(t, g2, bothDirOpts()), seed1, delta2, tol, maxRounds)
	full2 := PageRank(testRuntime(t, g2, bothDirOpts()), tol, maxRounds)
	if inc2.Rounds != full2.Rounds || !reflect.DeepEqual(inc2.Rank, full2.Rank) {
		t.Fatal("epoch 2 incremental ranks (seeded from an incremental run) differ from full recompute")
	}
}

// TestIncrementalPRChargesLessThanFull pins the point of the streaming
// path: a small batch must cost measurably less simulated time than a
// from-scratch run on the same machine.
func TestIncrementalPRChargesLessThanFull(t *testing.T) {
	const tol, maxRounds = 1e-9, 20
	g := scaleSmallInput(t, "clueweb12")
	g.BuildIn()
	_, seed := PageRankRecord(testRuntime(t, g, bothDirOpts()), tol, maxRounds)
	ng, delta := applied(t, g, incUpdateBatch(t, g, 16, 0x5EED, false))
	full := PageRank(testRuntime(t, ng, bothDirOpts()), tol, maxRounds)
	inc, _ := PageRankIncremental(testRuntime(t, ng, bothDirOpts()), seed, delta, tol, maxRounds)
	if inc.Seconds >= full.Seconds {
		t.Fatalf("incremental pr (%.6fs) not cheaper than full recompute (%.6fs)", inc.Seconds, full.Seconds)
	}
	t.Logf("pr batch=16: incremental %.6fs vs full %.6fs (%.1f%%)",
		inc.Seconds, full.Seconds, 100*inc.Seconds/full.Seconds)
}
