package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/worklist"
)

// BCOptions selects the frontier representation of the forward phase,
// mirroring the Galois (sparse) vs other-framework (dense) implementations
// in Figure 9.
type BCOptions struct {
	DenseFrontier bool
}

// BC computes single-source betweenness centrality with Brandes' algorithm:
// a forward BFS accumulating shortest-path counts (sigma), then a backward
// sweep over the BFS DAG accumulating dependencies level by level. The
// backward sweep walks out-edges of each vertex filtered to the next BFS
// level, so only the out-direction is required.
func BC(r *core.Runtime, src graph.Node, opts BCOptions) *Result {
	w := startWindow(r.M)
	n := r.G.NumNodes()

	dist, distArr := newDistArray(r, "bc.dist")
	sigma := make([]atomic.Uint64, n)
	delta := make([]float64, n)
	sigmaArr := r.NodeArray("bc.sigma", 8)
	deltaArr := r.NodeArray("bc.delta", 8)
	wlArr := r.ScratchArray("bc.levels", int64(n), 4)
	var bitsArr *memsim.Array
	if opts.DenseFrontier {
		bitsArr = r.ScratchArray("bc.frontier.bits", int64(n+63)/64, 8)
	}

	dist[src].Store(0)
	sigma[src].Store(1)

	// Forward phase: level-synchronous BFS recording per-level frontiers.
	levels := [][]graph.Node{{src}}
	if opts.DenseFrontier {
		cur := worklist.NewDense(n)
		cur.Set(src)
		active := 1
		for active > 0 {
			lvl := uint32(len(levels))
			next := worklist.NewDense(n)
			bag := worklist.NewBag()
			var cnt atomic.Int64
			r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
				bitsArr.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
				r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
				h := bag.NewHandle()
				local := int64(0)
				cur.ForEachInRange(lo, hi, func(v graph.Node) {
					local += bcExpand(r, t, v, lvl, dist, sigma, distArr, sigmaArr, func(d graph.Node) {
						next.Set(d)
						h.Push(d)
					})
				})
				h.Flush()
				cnt.Add(local)
			})
			active = int(cnt.Load())
			if active > 0 {
				levels = append(levels, bag.Drain())
			}
			cur = next
		}
	} else {
		frontier := []graph.Node{src}
		for len(frontier) > 0 {
			lvl := uint32(len(levels))
			bag := worklist.NewBag()
			r.ParallelItems(int64(len(frontier)), func(t *memsim.Thread, lo, hi int64) {
				h := bag.NewHandle()
				wlArr.ReadRange(t, lo, hi)
				for _, v := range frontier[lo:hi] {
					bcExpand(r, t, v, lvl, dist, sigma, distArr, sigmaArr, func(d graph.Node) { h.Push(d) })
				}
				h.Flush()
			})
			frontier = bag.Drain()
			if len(frontier) > 0 {
				levels = append(levels, frontier)
			}
		}
	}

	// Backward phase: accumulate dependencies level by level, deepest
	// first. Within one level no two vertices share a successor
	// relation, so delta writes race-free per vertex.
	for l := len(levels) - 1; l >= 0; l-- {
		frontier := levels[l]
		r.ParallelItems(int64(len(frontier)), func(t *memsim.Thread, lo, hi int64) {
			wlArr.ReadRange(t, lo, hi)
			for _, v := range frontier[lo:hi] {
				nbrs := r.OutScan(t, v, false)
				distArr.RandomN(t, int64(len(nbrs)), false)
				sigmaArr.RandomN(t, int64(len(nbrs)), false)
				deltaArr.RandomN(t, int64(len(nbrs)), false)
				t.Op(len(nbrs))
				dv := dist[v].Load()
				sv := float64(sigma[v].Load())
				acc := 0.0
				for _, d := range nbrs {
					if dist[d].Load() == dv+1 {
						sd := float64(sigma[d].Load())
						if sd > 0 {
							acc += sv / sd * (1 + delta[d])
						}
					}
				}
				delta[v] = acc
				deltaArr.Write(t, int64(v))
			}
		})
	}

	return w.finish(&Result{
		App:        "bc",
		Algorithm:  algoName("brandes", opts.DenseFrontier),
		Rounds:     len(levels),
		Dist:       snapshot(dist),
		Centrality: append([]float64(nil), delta...),
	})
}

// bcExpand visits v's out-neighbors during the forward phase, setting
// levels, accumulating sigma, and reporting newly discovered vertices. It
// returns the number of discoveries.
func bcExpand(r *core.Runtime, t *memsim.Thread, v graph.Node, lvl uint32, dist []atomic.Uint32, sigma []atomic.Uint64, distArr, sigmaArr *memsim.Array, found func(graph.Node)) int64 {
	nbrs := r.OutScan(t, v, false)
	distArr.RandomN(t, int64(len(nbrs)), true)
	sigmaArr.RandomN(t, int64(len(nbrs)), true)
	t.Op(len(nbrs))
	sv := sigma[v].Load()
	discovered := int64(0)
	for _, d := range nbrs {
		if dist[d].CompareAndSwap(Infinity, lvl) {
			found(d)
			discovered++
		}
		if dist[d].Load() == lvl {
			sigma[d].Add(sv)
		}
	}
	return discovered
}

func algoName(base string, dense bool) string {
	if dense {
		return base + "-dense"
	}
	return base + "-sparse"
}
