package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
)

// BCOptions selects the frontier representation of the forward phase,
// mirroring the Galois (sparse) vs other-framework (dense) implementations
// in Figure 9.
type BCOptions struct {
	DenseFrontier bool
}

// Brandes computes single-source betweenness centrality over the operator
// engine: a forward EdgeMap BFS accumulating shortest-path counts (sigma)
// while recording each level's frontier, then a backward sweep replaying
// the recorded levels deepest-first, accumulating dependencies over the
// BFS DAG. The backward sweep walks out-edges of each vertex filtered to
// the next BFS level, so only the out-direction is required; cfg selects
// the forward frontier representation.
func Brandes(r *core.Runtime, cfg engine.Config, src graph.Node) *Result {
	w := startWindow(r.M)
	e := engine.New(r, cfg)
	n := r.G.NumNodes()

	dist, distArr := newDistArray(r, "bc.dist")
	sigma := make([]atomic.Uint64, n)
	delta := make([]float64, n)
	sigmaArr := r.NodeArray("bc.sigma", 8)
	deltaArr := r.NodeArray("bc.delta", 8)

	dist[src].Store(0)
	sigma[src].Store(1)

	// Forward phase: level-synchronous BFS recording per-level frontiers.
	levels := [][]graph.Node{{src}}
	f := e.NewFrontier(src)
	for !f.Empty() {
		lvl := uint32(len(levels))
		f = e.EdgeMap(f, engine.EdgeMapArgs{
			// The CAS claims each newly reached d exactly once (the
			// sorted merge erases which thread won). sigma accumulates
			// once per DAG edge — each edge has one owning thread, the
			// level test is deterministic (dist[d] only transitions
			// Infinity -> lvl within the round), and u's sigma is
			// frozen (u is one level up).
			Push: func(u, d graph.Node, ei int64) bool {
				found := dist[d].CompareAndSwap(Infinity, lvl)
				if dist[d].Load() == lvl {
					sigma[d].Add(sigma[u].Load())
				}
				return found
			},
			PerEdge: []engine.Access{
				{Arr: distArr, Write: true},
				{Arr: sigmaArr, Write: true},
			},
		})
		if !f.Empty() {
			levels = append(levels, f.Vertices())
		}
	}

	// Backward phase: accumulate dependencies level by level, deepest
	// first, replaying the recorded frontiers as sparse worklists (both
	// the Galois and the dense-framework implementations walk explicit
	// level lists here). Within one level no two vertices share a
	// successor relation, so delta writes race-free per vertex.
	for l := len(levels) - 1; l >= 0; l-- {
		e.EdgeMap(e.SparseFrontier(levels[l]), engine.EdgeMapArgs{
			Push: func(v, d graph.Node, ei int64) bool {
				if dist[d].Load() == dist[v].Load()+1 {
					if sd := float64(sigma[d].Load()); sd > 0 {
						delta[v] += float64(sigma[v].Load()) / sd * (1 + delta[d])
					}
				}
				return false
			},
			PerEdge: []engine.Access{
				{Arr: distArr, Write: false},
				{Arr: sigmaArr, Write: false},
				{Arr: deltaArr, Write: false},
			},
			PerVertex: []engine.Access{{Arr: deltaArr, Write: true}},
		})
	}

	return w.finish(&Result{
		App:        "bc",
		Algorithm:  "brandes-" + repName(e.Config().Rep),
		Rounds:     len(levels),
		Dist:       snapshot(dist),
		Centrality: append([]float64(nil), delta...),
		Trace:      e.Trace(),
	})
}

// BC computes single-source betweenness centrality with Brandes' algorithm
// using the sparse (Galois) or dense (GAP/GBBS) forward frontier.
func BC(r *core.Runtime, src graph.Node, opts BCOptions) *Result {
	cfg := engine.Config{Rep: engine.RepSparse, Dir: engine.DirPush}
	if opts.DenseFrontier {
		cfg.Rep = engine.RepDense
	}
	return Brandes(r, cfg, src)
}
