package analytics

import (
	"runtime"
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/worklist"
)

// relaxMin lowers dist[v] to d with a CAS loop, reporting whether it
// improved the stored value.
func relaxMin(dist []atomic.Uint32, v graph.Node, d uint32) bool {
	for {
		old := dist[v].Load()
		if old <= d {
			return false
		}
		if dist[v].CompareAndSwap(old, d) {
			return true
		}
	}
}

// SSSPDeltaStep is asynchronous delta-stepping over sparse OBIM buckets:
// the Galois variant the paper reports as the best sssp algorithm on every
// input (Figure 7c). Threads drain the lowest-priority bucket concurrently,
// pushing relaxed vertices into later (or the same) buckets; there are no
// graph-wide rounds.
func SSSPDeltaStep(r *core.Runtime, src graph.Node, delta uint32) *Result {
	if r.Weights == nil {
		panic("analytics: SSSPDeltaStep requires a weighted runtime")
	}
	if delta == 0 {
		delta = 1
	}
	w := startWindow(r.M)
	dist, distArr := newDistArray(r, "sssp.dist")
	wlArr := r.ScratchArray("sssp.wl", int64(r.G.NumNodes()), 4)

	obim := worklist.NewOBIM()
	dist[src].Store(0)
	obim.Push(0, []graph.Node{src})
	epochs := 0
	for {
		p := obim.CurrentPriority()
		if p < 0 {
			break
		}
		epochs++
		bucket := obim.Bucket(p)
		var working atomic.Int64
		r.Parallel(func(t *memsim.Thread) {
			pushBufs := make(map[int][]graph.Node)
			for {
				chunk := bucket.PopChunk()
				if chunk == nil {
					// Same-priority pushes may still be in
					// flight from other threads: spin until the
					// bucket is drained for real, so work never
					// serializes onto one thread.
					if working.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				working.Add(1)
				wlArr.ReadRange(t, 0, int64(len(chunk)))
				for _, v := range chunk {
					dv := dist[v].Load()
					if int(dv/delta) < p {
						continue // stale entry, already settled
					}
					nbrs := r.OutScan(t, v, true)
					ws := r.G.OutWeightsOf(v)
					distArr.RandomN(t, int64(len(nbrs)), true)
					t.Op(len(nbrs))
					for i, d := range nbrs {
						nd := dv + ws[i]
						if nd < dv { // overflow guard
							continue
						}
						if relaxMin(dist, d, nd) {
							pr := int(nd / delta)
							pushBufs[pr] = append(pushBufs[pr], d)
							if len(pushBufs[pr]) >= 64 {
								// Publish small chunks promptly so
								// idle threads can steal them.
								obim.Push(pr, pushBufs[pr])
								wlArr.WriteRange(t, 0, int64(len(pushBufs[pr])))
								pushBufs[pr] = nil
							}
						}
					}
				}
				working.Add(-1)
			}
			for pr, buf := range pushBufs {
				obim.Push(pr, buf)
				wlArr.WriteRange(t, 0, int64(len(buf)))
			}
		})
	}
	return w.finish(&Result{App: "sssp", Algorithm: "delta-step", Rounds: epochs, Dist: snapshot(dist)})
}

// SSSPBellmanFordDense is the data-driven Bellman-Ford with dense
// worklists: the vertex-program variant available in frameworks without
// sparse worklists (and the only sssp expressible in GraphIt per §6.1).
// Rounds have snapshot (bulk-synchronous) semantics, so the round count is
// bounded by the hop length of the longest shortest path — the term that
// blows up on high-diameter graphs.
func SSSPBellmanFordDense(r *core.Runtime, src graph.Node) *Result {
	if r.Weights == nil {
		panic("analytics: SSSPBellmanFordDense requires a weighted runtime")
	}
	w := startWindow(r.M)
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	distArr := r.NodeArray("sssp.dist", 4)
	nextArr := r.NodeArray("sssp.dist.next", 4)
	r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
		for i := lo; i < hi; i++ {
			cur[i] = Infinity
			next[i].Store(Infinity)
		}
		distArr.WriteRange(t, lo, hi)
		nextArr.WriteRange(t, lo, hi)
	})
	bits := r.ScratchArray("sssp.frontier.bits", int64(n+63)/64, 8)

	fr := worklist.NewDouble(n)
	cur[src] = 0
	next[src].Store(0)
	fr.Cur.Set(src)
	active := 1
	rounds := 0
	for active > 0 {
		rounds++
		var nextActive atomic.Int64
		r.ParallelVerts(func(t *memsim.Thread, lo, hi graph.Node) {
			bits.ReadRange(t, int64(lo)/64, int64(hi)/64+1)
			r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
			cnt := int64(0)
			fr.Cur.ForEachInRange(lo, hi, func(v graph.Node) {
				dv := cur[v]
				if dv == Infinity {
					return
				}
				r.Edges.ReadRange(t, r.G.OutOffsets[v], r.G.OutOffsets[v+1])
				r.Weights.ReadRange(t, r.G.OutOffsets[v], r.G.OutOffsets[v+1])
				nbrs := r.G.OutNeighbors(v)
				ws := r.G.OutWeightsOf(v)
				nextArr.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for i, d := range nbrs {
					nd := dv + ws[i]
					if nd < dv {
						continue
					}
					if relaxMin(next, d, nd) {
						if fr.Next.Set(d) {
							cnt++
						}
					}
				}
			})
			nextActive.Add(cnt)
		})
		// Publish the round.
		r.ParallelItems(int64(n), func(t *memsim.Thread, lo, hi int64) {
			nextArr.ReadRange(t, lo, hi)
			distArr.WriteRange(t, lo, hi)
			for i := lo; i < hi; i++ {
				cur[i] = next[i].Load()
			}
		})
		fr.Swap()
		active = int(nextActive.Load())
	}
	return w.finish(&Result{App: "sssp", Algorithm: "dense-wl", Rounds: rounds, Dist: append([]uint32(nil), cur...)})
}
