package analytics

import (
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// relaxMin lowers dist[v] to d with a CAS loop, reporting whether it
// improved the stored value.
func relaxMin(dist []atomic.Uint32, v graph.Node, d uint32) bool {
	for {
		old := dist[v].Load()
		if old <= d {
			return false
		}
		if dist[v].CompareAndSwap(old, d) {
			return true
		}
	}
}

// relaxIntent is one recorded relaxation (lower d's distance to nd),
// buffered per thread during a delta-stepping iteration and applied
// sequentially at the barrier.
type relaxIntent struct {
	d  graph.Node
	nd uint32
}

// SSSPDeltaStep is delta-stepping over priority buckets: the Galois variant
// the paper reports as the best sssp algorithm on every input (Figure 7c).
// Buckets are processed in ascending priority; each bucket drains in
// bulk-synchronous inner iterations in which threads scan their statically
// owned share of the bucket against the frozen distance array and record
// relaxations as per-thread intents. The machine applies the intents at the
// barrier in thread-index order — distances min-reduce, improved vertices
// enqueue into their new buckets — so the bucket trajectory, every charge,
// and the final distances are byte-identical under any interleaving, while
// the scan (all the simulated work) still runs on all cores. It schedules
// over priorities and sparse lists, outside the bulk-synchronous operator
// engine (exactly the Galois capabilities §5.1 credits).
func SSSPDeltaStep(r *core.Runtime, src graph.Node, delta uint32) *Result {
	if !r.Weighted() {
		panic("analytics: SSSPDeltaStep requires a weighted runtime")
	}
	if delta == 0 {
		delta = 1
	}
	w := startWindow(r.M)
	dist, distArr := newDistArray(r, "sssp.dist")
	wlArr := r.ScratchArray("sssp.wl", int64(r.G.NumNodes()), 4)

	// chargeWl charges a k-element sequential worklist transfer. Bucket
	// lists can exceed |V| (a vertex re-enqueues once per improvement), so
	// the charge wraps around the scratch array rather than indexing past
	// it.
	n := int64(r.G.NumNodes())
	chargeWl := func(t *memsim.Thread, k int64, write bool) {
		for k > 0 {
			c := k
			if c > n {
				c = n
			}
			if write {
				wlArr.WriteRange(t, 0, c)
			} else {
				wlArr.ReadRange(t, 0, c)
			}
			k -= c
		}
	}

	buckets := map[int][]graph.Node{0: {src}}
	dist[src].Store(0)
	intents := make([][]relaxIntent, r.RegionThreads())
	epochs := 0
	for {
		// Lowest non-empty priority.
		p := -1
		for pr, b := range buckets {
			if len(b) == 0 {
				continue
			}
			if p < 0 || pr < p {
				p = pr
			}
		}
		if p < 0 {
			break
		}
		epochs++
		// Drain bucket p: same-priority relaxations re-open it, so the
		// inner loop runs until no intent lands back in p.
		for len(buckets[p]) > 0 {
			items := buckets[p]
			buckets[p] = nil
			r.ParallelItems(int64(len(items)), func(t *memsim.Thread, lo, hi int64) {
				chargeWl(t, hi-lo, false)
				buf := intents[t.ID]
				var pushed int64
				for _, v := range items[lo:hi] {
					dv := dist[v].Load() // frozen during the region
					if int(dv/delta) < p {
						continue // stale entry, already settled
					}
					nbrs, ws := r.OutScanW(t, v)
					distArr.RandomN(t, int64(len(nbrs)), true)
					t.Op(len(nbrs))
					for i, d := range nbrs {
						nd := dv + ws[i]
						if nd < dv { // overflow guard
							continue
						}
						if nd < dist[d].Load() {
							buf = append(buf, relaxIntent{d: d, nd: nd})
							pushed++
						}
					}
				}
				intents[t.ID] = buf
				chargeWl(t, pushed, true)
			})
			// Barrier: apply intents in thread-index order.
			for i := range intents {
				for _, in := range intents[i] {
					if in.nd < dist[in.d].Load() {
						dist[in.d].Store(in.nd)
						pr := int(in.nd / delta)
						buckets[pr] = append(buckets[pr], in.d)
					}
				}
				intents[i] = intents[i][:0]
			}
		}
		delete(buckets, p)
	}
	return w.finish(&Result{App: "sssp", Algorithm: "delta-step", Rounds: epochs, Dist: snapshot(dist)})
}

// SSSPBellmanFord is data-driven Bellman-Ford over the operator engine:
// bulk-synchronous rounds with snapshot semantics (distances written in
// round i are read in round i+1), so the round count is bounded by the hop
// length of the longest shortest path — the term that blows up on
// high-diameter graphs. cfg selects the frontier representation and
// direction policy; the pull form gathers tentative distances over
// in-edges (requiring in-weights) when the frontier is edge-heavy.
func SSSPBellmanFord(r *core.Runtime, cfg engine.Config, src graph.Node) *Result {
	if !r.Weighted() {
		panic("analytics: SSSPBellmanFord requires a weighted runtime")
	}
	w := startWindow(r.M)
	e := engine.New(r, cfg)
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	distArr := r.NodeArray("sssp.dist", 4)
	nextArr := r.NodeArray("sssp.dist.next", 4)
	e.VertexMap(engine.VertexMapArgs{
		Fn: func(v graph.Node) {
			cur[v] = Infinity
			next[v].Store(Infinity)
		},
		SeqWrite: []*memsim.Array{distArr, nextArr},
	})

	cur[src] = 0
	next[src].Store(0)
	f := e.NewFrontier(src)
	rounds := 0
	for !f.Empty() {
		rounds++
		args := engine.EdgeMapArgs{
			Weighted: true,
			// relaxMin claims the deterministic SET of vertices whose
			// tentative distance drops this round (inputs come from the
			// frozen cur snapshot; the min is commutative; the sorted
			// merge erases claim attribution).
			Push: func(u, d graph.Node, ei int64) bool {
				du := cur[u]
				if du == Infinity {
					return false
				}
				nd := du + r.OutWeightAt(ei)
				if nd < du { // overflow guard
					return false
				}
				return relaxMin(next, d, nd)
			},
			PerEdge: []engine.Access{{Arr: nextArr, Write: true}},
		}
		if e.CanPull() && r.InWeighted() {
			cf := f
			args.Pull = func(v, u graph.Node, ei int64) (bool, bool) {
				if !cf.Has(u) {
					return false, false
				}
				du := cur[u]
				if du == Infinity {
					return false, false
				}
				nd := du + r.InWeightAt(ei)
				if nd < du {
					return false, false
				}
				return relaxMin(next, v, nd), false
			}
			args.PullSeqRead = []*memsim.Array{distArr}
			// Pull gathers the neighbor's tentative distance per edge
			// and relaxes into next.
			args.PullPerEdge = []engine.Access{{Arr: distArr, Write: false}, {Arr: nextArr, Write: true}}
		}
		f = e.EdgeMap(f, args)
		// Publish the round.
		e.VertexMap(engine.VertexMapArgs{
			Fn:       func(v graph.Node) { cur[v] = next[v].Load() },
			SeqRead:  []*memsim.Array{nextArr},
			SeqWrite: []*memsim.Array{distArr},
		})
	}
	return w.finish(&Result{
		App:       "sssp",
		Algorithm: engine.TraversalName(r, e.Config()),
		Rounds:    rounds,
		Dist:      append([]uint32(nil), cur...),
		Trace:     e.Trace(),
	})
}

// SSSPBellmanFordDense is the dense-worklist vertex-program Bellman-Ford:
// the only sssp expressible in frameworks without priority scheduling
// (GraphIt, §6.1).
func SSSPBellmanFordDense(r *core.Runtime, src graph.Node) *Result {
	return SSSPBellmanFord(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, src)
}
