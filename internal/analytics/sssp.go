package analytics

import (
	"runtime"
	"sync/atomic"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/worklist"
)

// relaxMin lowers dist[v] to d with a CAS loop, reporting whether it
// improved the stored value.
func relaxMin(dist []atomic.Uint32, v graph.Node, d uint32) bool {
	for {
		old := dist[v].Load()
		if old <= d {
			return false
		}
		if dist[v].CompareAndSwap(old, d) {
			return true
		}
	}
}

// SSSPDeltaStep is asynchronous delta-stepping over sparse OBIM buckets:
// the Galois variant the paper reports as the best sssp algorithm on every
// input (Figure 7c). Threads drain the lowest-priority bucket concurrently,
// pushing relaxed vertices into later (or the same) buckets; there are no
// graph-wide rounds, so it runs outside the bulk-synchronous operator
// engine (sparse worklists plus non-vertex scheduling are exactly the
// Galois capabilities §5.1 credits).
func SSSPDeltaStep(r *core.Runtime, src graph.Node, delta uint32) *Result {
	if r.Weights == nil {
		panic("analytics: SSSPDeltaStep requires a weighted runtime")
	}
	if delta == 0 {
		delta = 1
	}
	w := startWindow(r.M)
	dist, distArr := newDistArray(r, "sssp.dist")
	wlArr := r.ScratchArray("sssp.wl", int64(r.G.NumNodes()), 4)

	obim := worklist.NewOBIM()
	dist[src].Store(0)
	obim.Push(0, []graph.Node{src})
	epochs := 0
	for {
		p := obim.CurrentPriority()
		if p < 0 {
			break
		}
		epochs++
		bucket := obim.Bucket(p)
		var working atomic.Int64
		r.Parallel(func(t *memsim.Thread) {
			pushBufs := make(map[int][]graph.Node)
			for {
				chunk := bucket.PopChunk()
				if chunk == nil {
					// Same-priority pushes may still be in
					// flight from other threads: spin until the
					// bucket is drained for real, so work never
					// serializes onto one thread.
					if working.Load() == 0 {
						break
					}
					runtime.Gosched()
					continue
				}
				working.Add(1)
				wlArr.ReadRange(t, 0, int64(len(chunk)))
				for _, v := range chunk {
					dv := dist[v].Load()
					if int(dv/delta) < p {
						continue // stale entry, already settled
					}
					nbrs := r.OutScan(t, v, true)
					ws := r.G.OutWeightsOf(v)
					distArr.RandomN(t, int64(len(nbrs)), true)
					t.Op(len(nbrs))
					for i, d := range nbrs {
						nd := dv + ws[i]
						if nd < dv { // overflow guard
							continue
						}
						if relaxMin(dist, d, nd) {
							pr := int(nd / delta)
							pushBufs[pr] = append(pushBufs[pr], d)
							if len(pushBufs[pr]) >= 64 {
								// Publish small chunks promptly so
								// idle threads can steal them.
								obim.Push(pr, pushBufs[pr])
								wlArr.WriteRange(t, 0, int64(len(pushBufs[pr])))
								pushBufs[pr] = nil
							}
						}
					}
				}
				working.Add(-1)
			}
			for pr, buf := range pushBufs {
				obim.Push(pr, buf)
				wlArr.WriteRange(t, 0, int64(len(buf)))
			}
		})
	}
	return w.finish(&Result{App: "sssp", Algorithm: "delta-step", Rounds: epochs, Dist: snapshot(dist)})
}

// SSSPBellmanFord is data-driven Bellman-Ford over the operator engine:
// bulk-synchronous rounds with snapshot semantics (distances written in
// round i are read in round i+1), so the round count is bounded by the hop
// length of the longest shortest path — the term that blows up on
// high-diameter graphs. cfg selects the frontier representation and
// direction policy; the pull form gathers tentative distances over
// in-edges (requiring in-weights) when the frontier is edge-heavy.
func SSSPBellmanFord(r *core.Runtime, cfg engine.Config, src graph.Node) *Result {
	if r.Weights == nil {
		panic("analytics: SSSPBellmanFord requires a weighted runtime")
	}
	w := startWindow(r.M)
	e := engine.New(r, cfg)
	n := r.G.NumNodes()
	cur := make([]uint32, n)
	next := make([]atomic.Uint32, n)
	distArr := r.NodeArray("sssp.dist", 4)
	nextArr := r.NodeArray("sssp.dist.next", 4)
	e.VertexMap(engine.VertexMapArgs{
		Fn: func(v graph.Node) {
			cur[v] = Infinity
			next[v].Store(Infinity)
		},
		SeqWrite: []*memsim.Array{distArr, nextArr},
	})

	cur[src] = 0
	next[src].Store(0)
	f := e.NewFrontier(src)
	rounds := 0
	for !f.Empty() {
		rounds++
		args := engine.EdgeMapArgs{
			Weighted: true,
			Push: func(u, d graph.Node, ei int64) bool {
				du := cur[u]
				if du == Infinity {
					return false
				}
				nd := du + r.G.OutWeights[ei]
				if nd < du { // overflow guard
					return false
				}
				return relaxMin(next, d, nd)
			},
			PerEdge: []engine.Access{{Arr: nextArr, Write: true}},
		}
		if e.CanPull() && r.InWeights != nil && r.G.InWeights != nil {
			cf := f
			args.Pull = func(v, u graph.Node, ei int64) (bool, bool) {
				if !cf.Has(u) {
					return false, false
				}
				du := cur[u]
				if du == Infinity {
					return false, false
				}
				nd := du + r.G.InWeights[ei]
				if nd < du {
					return false, false
				}
				return relaxMin(next, v, nd), false
			}
			args.PullSeqRead = []*memsim.Array{distArr}
			// Pull gathers the neighbor's tentative distance per edge
			// and relaxes into next.
			args.PullPerEdge = []engine.Access{{Arr: distArr, Write: false}, {Arr: nextArr, Write: true}}
		}
		f = e.EdgeMap(f, args)
		// Publish the round.
		e.VertexMap(engine.VertexMapArgs{
			Fn:       func(v graph.Node) { cur[v] = next[v].Load() },
			SeqRead:  []*memsim.Array{nextArr},
			SeqWrite: []*memsim.Array{distArr},
		})
	}
	return w.finish(&Result{
		App:       "sssp",
		Algorithm: engine.TraversalName(r, e.Config()),
		Rounds:    rounds,
		Dist:      append([]uint32(nil), cur...),
		Trace:     e.Trace(),
	})
}

// SSSPBellmanFordDense is the dense-worklist vertex-program Bellman-Ford:
// the only sssp expressible in frameworks without priority scheduling
// (GraphIt, §6.1).
func SSSPBellmanFordDense(r *core.Runtime, src graph.Node) *Result {
	return SSSPBellmanFord(r, engine.Config{Rep: engine.RepDense, Dir: engine.DirPush}, src)
}
