package analytics

import (
	"encoding/json"
	"fmt"
)

// MarshalResult serializes res into the stable wire format shared by the
// serving layer's result endpoints and its result cache. Stability here
// means canonical bytes, not merely valid JSON: encoding/json emits struct
// fields in declaration order and formats floats with the shortest
// round-trip representation, so for a fixed Result value the output is
// byte-identical across runs, GOMAXPROCS settings and platforms. Combined
// with the engine's deterministic execution (every kernel Result is a pure
// function of graph, configuration and machine), equal cache keys imply
// equal bytes — which is what lets a cache hit stand in for a re-execution
// provably, not heuristically.
func MarshalResult(res *Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("analytics: marshaling nil result")
	}
	data, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("analytics: marshaling result: %w", err)
	}
	return data, nil
}

// UnmarshalResult parses bytes produced by MarshalResult.
func UnmarshalResult(data []byte) (*Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("analytics: unmarshaling result: %w", err)
	}
	return &res, nil
}
