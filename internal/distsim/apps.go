package distsim

import (
	"math"
	"sync/atomic"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// This file implements the D-Galois benchmark set as bulk-synchronous
// vertex programs over the partitioned engine: bfs, sssp (data-driven
// Bellman-Ford), cc (label propagation), pr (topology-driven pull), kcore
// (round-based peeling) and bc (round-synchronous Brandes). These are the
// vertex-program formulations the paper's DM/DB/DS configurations run —
// deliberately NOT the more efficient asynchronous/non-vertex algorithms,
// which D-Galois cannot express (§6.3).

// hostRound runs one BSP round: each host processes its vertex shard on
// its own machine; fn returns the host's cross-partition update count.
// Returned slices feed Engine.endRound. Chunks are statically owned
// (chunk i -> thread i mod T, mirroring core.Runtime.ParallelItems) so the
// per-host compute time is a pure function of the shard, not of goroutine
// interleaving.
func (e *Engine) hostRound(fn func(h *host, t *memsim.Thread, lo, hi graph.Node) int64) {
	compute := make([]float64, len(e.hosts))
	send := make([]int64, len(e.hosts))
	for i, h := range e.hosts {
		lo, hi := e.hostLo[i], e.hostHi[i]
		var dirty atomic.Int64
		span := int64(hi - lo)
		// Clamp exactly like Machine.Parallel does, so the stride never
		// assigns chunks to thread IDs the machine won't spawn.
		threads := stats64(e.cfg.ThreadsPerHost)
		if max := h.m.Config().MaxThreads(); threads > max {
			threads = max
		}
		chunk := span / int64(threads*8)
		if chunk < 64 {
			chunk = (span + int64(threads) - 1) / int64(threads)
			if chunk > 64 {
				chunk = 64
			}
			if chunk < 1 {
				chunk = 1
			}
		}
		nChunks := (span + chunk - 1) / chunk
		stats := h.m.Parallel(threads, func(t *memsim.Thread) {
			local := int64(0)
			for c := int64(t.ID); c < nChunks; c += int64(threads) {
				clo := c * chunk
				chi := clo + chunk
				if chi > span {
					chi = span
				}
				local += fn(h, t, lo+graph.Node(clo), lo+graph.Node(chi))
			}
			dirty.Add(local)
		})
		compute[i] = stats.ElapsedNs
		send[i] = dirty.Load() * 8
	}
	e.endRound(compute, send)
}

func stats64(threads int) int {
	if threads < 1 {
		return 1
	}
	return threads
}

// shardScan charges the dense per-round scans every vertex program pays on
// its shard: frontier bits and offsets.
func (h *host) shardScan(t *memsim.Thread, lo, hi graph.Node, base graph.Node) {
	h.offsets.ReadRange(t, int64(lo-base), int64(hi-base)+1)
}

// edgeScan charges v's out-edge read on the host's local shard.
func (h *host) edgeScan(t *memsim.Thread, g *graph.Graph, base graph.Node, v graph.Node, weighted bool) {
	lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
	off := g.OutOffsets[base]
	h.edges.ReadRange(t, lo-off, hi-off)
	if weighted && h.weights != nil {
		h.weights.ReadRange(t, lo-off, hi-off)
	}
}

// BFS runs distributed breadth-first search from src.
func (e *Engine) BFS(src graph.Node) *analytics.Result {
	e.resetClock()
	g := e.g
	n := g.NumNodes()
	dist := make([]atomic.Uint32, n)
	for i := range dist {
		dist[i].Store(analytics.Infinity)
	}
	dist[src].Store(0)
	cur := newDenseSet(n)
	cur.set(src)
	level := uint32(0)
	for cur.count.Load() > 0 {
		level++
		next := newDenseSet(n)
		lvl := level
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			cross := int64(0)
			for v := lo; v < hi; v++ {
				if !cur.test(v) {
					continue
				}
				h.edgeScan(t, g, e.hostLo[h.id], v, false)
				nbrs := g.OutNeighbors(v)
				h.labels.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					if dist[d].CompareAndSwap(analytics.Infinity, lvl) {
						next.set(d)
						if e.Owner(d) != h.id {
							cross++
						}
					}
				}
			}
			return cross
		})
		cur = next
	}
	return &analytics.Result{App: "bfs", Algorithm: "dist-bsp", Rounds: e.Rounds(), Seconds: e.WallSeconds(), Dist: snapshotU32(dist)}
}

// SSSP runs distributed data-driven Bellman-Ford (the vertex-program sssp
// D-Galois uses) from src. The graph must be weighted.
func (e *Engine) SSSP(src graph.Node) *analytics.Result {
	e.resetClock()
	g := e.g
	n := g.NumNodes()
	dist := make([]atomic.Uint32, n)
	for i := range dist {
		dist[i].Store(analytics.Infinity)
	}
	dist[src].Store(0)
	cur := newDenseSet(n)
	cur.set(src)
	for cur.count.Load() > 0 {
		next := newDenseSet(n)
		// Relaxations are judged against the round-start snapshot (BSP
		// semantics), so the activated set and cross-partition traffic
		// never depend on intra-round timing; relaxMinU32 keeps the
		// final distances a commutative min.
		snap := snapshotU32(dist)
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			cross := int64(0)
			for v := lo; v < hi; v++ {
				if !cur.test(v) {
					continue
				}
				h.edgeScan(t, g, e.hostLo[h.id], v, true)
				dv := snap[v]
				nbrs := g.OutNeighbors(v)
				ws := g.OutWeightsOf(v)
				h.labels.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for i, d := range nbrs {
					nd := dv + ws[i]
					if nd < dv {
						continue
					}
					if nd < snap[d] {
						relaxMinU32(dist, d, nd)
						next.set(d)
						if e.Owner(d) != h.id {
							cross++
						}
					}
				}
			}
			return cross
		})
		cur = next
	}
	return &analytics.Result{App: "sssp", Algorithm: "dist-bsp", Rounds: e.Rounds(), Seconds: e.WallSeconds(), Dist: snapshotU32(dist)}
}

// CC runs distributed label propagation (plain vertex program). Labels
// must flow against edges too, so the engine uses the transpose.
func (e *Engine) CC() *analytics.Result {
	e.resetClock()
	g := e.g
	g.BuildIn()
	n := g.NumNodes()
	labels := make([]atomic.Uint32, n)
	for i := range labels {
		labels[i].Store(uint32(i))
	}
	cur := newDenseSet(n)
	for v := 0; v < n; v++ {
		cur.set(graph.Node(v))
	}
	for cur.count.Load() > 0 {
		next := newDenseSet(n)
		// Snapshot semantics, as in SSSP: claims judge the round-start
		// labels so activation and traffic are interleaving-independent.
		snap := snapshotU32(labels)
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			cross := int64(0)
			push := func(v graph.Node, lv uint32, d graph.Node) {
				if lv < snap[d] {
					relaxMinU32(labels, d, lv)
					next.set(d)
					if e.Owner(d) != h.id {
						cross++
					}
				}
			}
			for v := lo; v < hi; v++ {
				if !cur.test(v) {
					continue
				}
				lv := snap[v]
				h.edgeScan(t, g, e.hostLo[h.id], v, false)
				outs := g.OutNeighbors(v)
				ins := g.InNeighbors(v)
				h.labels.RandomN(t, int64(len(outs)+len(ins)), true)
				t.Op(len(outs) + len(ins))
				for _, d := range outs {
					push(v, lv, d)
				}
				for _, d := range ins {
					push(v, lv, d)
				}
			}
			return cross
		})
		cur = next
	}
	return &analytics.Result{App: "cc", Algorithm: "dist-bsp", Rounds: e.Rounds(), Seconds: e.WallSeconds(), Labels: snapshotU32(labels)}
}

// PR runs distributed topology-driven pull pagerank. Per round every host
// recomputes its masters and broadcasts their fresh contributions; this
// benefits from partitioned locality and aggregate memory bandwidth, which
// is why the paper finds DM beating the single Optane machine on pr.
func (e *Engine) PR(tol float64, maxRounds int) *analytics.Result {
	e.resetClock()
	g := e.g
	g.BuildIn()
	n := g.NumNodes()
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)     // round-start contributions (frozen)
	contribNext := make([]float64, n) // published for the next round
	for i := range rank {
		rank[i] = 1 / float64(n)
		if d := g.OutDegree(graph.Node(i)); d > 0 {
			contrib[i] = rank[i] / float64(d)
		}
	}
	base := (1 - 0.85) / float64(n)
	// Per-thread residual shards, folded in thread-index order after each
	// round so the float total is deterministic (threads are per host and
	// hosts run in sequence, so each slot accumulates deterministically).
	resid := make([]float64, stats64(e.cfg.ThreadsPerHost))
	rounds := 0
	for rounds < maxRounds {
		rounds++
		for i := range resid {
			resid[i] = 0
		}
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			h.labels.ReadRange(t, int64(lo), int64(hi))
			t.Op(int(hi - lo))
			// Gather from the frozen round-start contributions, then
			// publish this chunk's fresh contributions for the NEXT
			// round — no thread ever observes a half-updated mix.
			local := 0.0
			for v := lo; v < hi; v++ {
				ins := g.InNeighbors(v)
				h.labels.RandomN(t, int64(len(ins)), false)
				t.Op(len(ins) + 1)
				sum := 0.0
				for _, u := range ins {
					sum += contrib[u]
				}
				nv := base + 0.85*sum
				local += math.Abs(nv - rank[v])
				next[v] = nv
				if d := g.OutDegree(v); d > 0 {
					contribNext[v] = nv / float64(d)
				} else {
					contribNext[v] = 0
				}
			}
			resid[t.ID] += local
			// Dense app: every master's new value is broadcast.
			return int64(hi - lo)
		})
		rank, next = next, rank
		contrib, contribNext = contribNext, contrib
		residual := 0.0
		for _, x := range resid {
			residual += x
		}
		if residual < tol {
			break
		}
	}
	return &analytics.Result{App: "pr", Algorithm: "dist-bsp", Rounds: e.Rounds(), Seconds: e.WallSeconds(), Rank: append([]float64(nil), rank...)}
}

// KCore runs distributed round-based peeling with threshold k.
func (e *Engine) KCore(k int64) *analytics.Result {
	e.resetClock()
	g := e.g
	g.BuildIn()
	n := g.NumNodes()
	deg := make([]atomic.Int64, n)
	for v := 0; v < n; v++ {
		deg[v].Store(g.OutDegree(graph.Node(v)) + g.InDegree(graph.Node(v)))
	}
	removed := make([]atomic.Bool, n)
	snap := make([]int64, n)
	for {
		// Peel against the round-start degree snapshot: whether v peels
		// this round never depends on sibling decrements landing early.
		for v := range snap {
			snap[v] = deg[v].Load()
		}
		var peeled atomic.Int64
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			h.labels.ReadRange(t, int64(lo), int64(hi))
			cross := int64(0)
			for v := lo; v < hi; v++ {
				if removed[v].Load() || snap[v] >= k {
					continue
				}
				if removed[v].Swap(true) {
					continue
				}
				peeled.Add(1)
				h.edgeScan(t, g, e.hostLo[h.id], v, false)
				outs := g.OutNeighbors(v)
				ins := g.InNeighbors(v)
				h.labels.RandomN(t, int64(len(outs)+len(ins)), true)
				t.Op(len(outs) + len(ins))
				for _, d := range outs {
					deg[d].Add(-1)
					if e.Owner(d) != h.id {
						cross++
					}
				}
				for _, d := range ins {
					deg[d].Add(-1)
					if e.Owner(d) != h.id {
						cross++
					}
				}
			}
			return cross
		})
		if peeled.Load() == 0 {
			break
		}
	}
	in := make([]bool, n)
	for v := range in {
		in[v] = deg[v].Load() >= k
	}
	return &analytics.Result{App: "kcore", Algorithm: "dist-bsp", Rounds: e.Rounds(), Seconds: e.WallSeconds(), InCore: in}
}

// BC runs distributed round-synchronous Brandes betweenness centrality
// from src: a forward BFS phase and a backward dependency phase, both
// bulk-synchronous.
func (e *Engine) BC(src graph.Node) *analytics.Result {
	e.resetClock()
	g := e.g
	n := g.NumNodes()
	dist := make([]atomic.Uint32, n)
	sigma := make([]atomic.Uint64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i].Store(analytics.Infinity)
	}
	dist[src].Store(0)
	sigma[src].Store(1)

	cur := newDenseSet(n)
	cur.set(src)
	var levels []*denseSet
	levels = append(levels, cur)
	level := uint32(0)
	for cur.count.Load() > 0 {
		level++
		next := newDenseSet(n)
		lvl := level
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			cross := int64(0)
			for v := lo; v < hi; v++ {
				if !cur.test(v) {
					continue
				}
				h.edgeScan(t, g, e.hostLo[h.id], v, false)
				nbrs := g.OutNeighbors(v)
				h.labels.RandomN(t, 2*int64(len(nbrs)), true)
				t.Op(len(nbrs))
				sv := sigma[v].Load()
				for _, d := range nbrs {
					if dist[d].CompareAndSwap(analytics.Infinity, lvl) {
						next.set(d)
						if e.Owner(d) != h.id {
							cross++
						}
					}
					if dist[d].Load() == lvl {
						sigma[d].Add(sv)
					}
				}
			}
			return cross
		})
		if next.count.Load() > 0 {
			levels = append(levels, next)
		}
		cur = next
	}

	for l := len(levels) - 1; l >= 0; l-- {
		fr := levels[l]
		e.hostRound(func(h *host, t *memsim.Thread, lo, hi graph.Node) int64 {
			h.shardScan(t, lo, hi, e.hostLo[h.id])
			cross := int64(0)
			for v := lo; v < hi; v++ {
				if !fr.test(v) {
					continue
				}
				h.edgeScan(t, g, e.hostLo[h.id], v, false)
				nbrs := g.OutNeighbors(v)
				h.labels.RandomN(t, 3*int64(len(nbrs)), false)
				t.Op(len(nbrs))
				dv := dist[v].Load()
				sv := float64(sigma[v].Load())
				acc := 0.0
				for _, d := range nbrs {
					if dist[d].Load() == dv+1 {
						if sd := float64(sigma[d].Load()); sd > 0 {
							acc += sv / sd * (1 + delta[d])
							if e.Owner(d) != h.id {
								cross++
							}
						}
					}
				}
				delta[v] = acc
			}
			return cross
		})
	}
	return &analytics.Result{App: "bc", Algorithm: "dist-bsp", Rounds: e.Rounds(), Seconds: e.WallSeconds(), Dist: snapshotU32(dist), Centrality: append([]float64(nil), delta...)}
}

// --- small local helpers (duplicated from analytics to keep packages
// decoupled) ---

type denseSet struct {
	words []atomic.Uint64
	count atomic.Int64
}

func newDenseSet(n int) *denseSet {
	return &denseSet{words: make([]atomic.Uint64, (n+63)/64)}
}

func (d *denseSet) set(v graph.Node) {
	w := &d.words[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := w.Load()
		if old&mask != 0 {
			return
		}
		if w.CompareAndSwap(old, old|mask) {
			d.count.Add(1)
			return
		}
	}
}

func (d *denseSet) test(v graph.Node) bool {
	return d.words[v>>6].Load()&(1<<(v&63)) != 0
}

func relaxMinU32(a []atomic.Uint32, v graph.Node, x uint32) bool {
	for {
		old := a[v].Load()
		if old <= x {
			return false
		}
		if a[v].CompareAndSwap(old, x) {
			return true
		}
	}
}

func snapshotU32(a []atomic.Uint32) []uint32 {
	out := make([]uint32, len(a))
	for i := range a {
		out[i] = a[i].Load()
	}
	return out
}
