package distsim

import (
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

func testEngine(t *testing.T, g *graph.Graph, hosts int) *Engine {
	t.Helper()
	cfg := DefaultConfig(hosts, 32)
	cfg.ThreadsPerHost = 8
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// galoisResult runs the single-machine kernel for comparison.
func galoisRuntime(t *testing.T, g *graph.Graph, weighted, both bool) *core.Runtime {
	t.Helper()
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	opts := core.GaloisDefaults(8)
	opts.Weighted = weighted
	opts.BothDirections = both
	r, err := core.New(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestPartitionCoversAllVertices(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 1)
	e := testEngine(t, g, 5)
	seen := make([]bool, g.NumNodes())
	for h := 0; h < e.Hosts(); h++ {
		for v := e.hostLo[h]; v < e.hostHi[h]; v++ {
			if seen[v] {
				t.Fatalf("vertex %d assigned twice", v)
			}
			seen[v] = true
			if e.Owner(v) != h {
				t.Fatalf("owner(%d) = %d, want %d", v, e.Owner(v), h)
			}
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
}

func TestPartitionBalancesEdges(t *testing.T) {
	g := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 7, false)
	e := testEngine(t, g, 4)
	total := g.NumEdges()
	for h := 0; h < 4; h++ {
		lo, hi := e.hostLo[h], e.hostHi[h]
		local := g.OutOffsets[hi] - g.OutOffsets[lo]
		if local > total {
			t.Fatalf("host %d holds more edges than exist", h)
		}
		// Skewed graphs cannot balance perfectly; just require no
		// host holds more than 60% of edges.
		if float64(local) > 0.6*float64(total) {
			t.Errorf("host %d holds %d of %d edges (unbalanced)", h, local, total)
		}
	}
}

func TestMinHosts(t *testing.T) {
	host := memsim.Scaled(memsim.StampedeHost(), 32)
	perHost := host.DRAMPerSocket * int64(host.Sockets)
	if got := MinHosts(perHost/2, host); got != 1 {
		t.Errorf("half-host graph needs %d hosts, want 1", got)
	}
	if got := MinHosts(perHost*4, host); got < 5 {
		t.Errorf("4x-host graph needs %d hosts, want >= 5 (replication headroom)", got)
	}
	if got := MinHosts(0, host); got != 1 {
		t.Errorf("empty graph needs %d hosts", got)
	}
}

func TestEngineRejectsBadHosts(t *testing.T) {
	g := gen.Path(10)
	if _, err := NewEngine(g, DefaultConfig(0, 32)); err == nil {
		t.Error("zero hosts accepted")
	}
}

func TestDistBFSMatchesSingleMachine(t *testing.T) {
	for _, hosts := range []int{1, 3, 5} {
		g := gen.WebCrawl(3000, 6, 60, 9)
		src, _ := g.MaxOutDegreeNode()
		e := testEngine(t, g, hosts)
		res := e.BFS(src)
		want := analytics.BFSSparse(galoisRuntime(t, g, false, false), src)
		for v := range want.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("hosts=%d: dist[%d] = %d, want %d", hosts, v, res.Dist[v], want.Dist[v])
			}
		}
		if res.Seconds <= 0 {
			t.Errorf("hosts=%d: no simulated time", hosts)
		}
	}
}

func TestDistSSSPMatchesSingleMachine(t *testing.T) {
	g := gen.ErdosRenyi(800, 6000, 4)
	g.AddRandomWeights(32, 5)
	src, _ := g.MaxOutDegreeNode()
	e := testEngine(t, g, 4)
	res := e.SSSP(src)
	want := analytics.SSSPDeltaStep(galoisRuntime(t, g, true, false), src, 8)
	for v := range want.Dist {
		if res.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want.Dist[v])
		}
	}
}

func TestDistCCFindsComponents(t *testing.T) {
	// Two disjoint cycles.
	var edges []graph.Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node((i + 1) % 50)})
	}
	for i := 50; i < 100; i++ {
		next := i + 1
		if next == 100 {
			next = 50
		}
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node(next)})
	}
	g := graph.MustFromEdges(100, edges, false, false)
	e := testEngine(t, g, 3)
	res := e.CC()
	for v := 0; v < 50; v++ {
		if res.Labels[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, res.Labels[v])
		}
	}
	for v := 50; v < 100; v++ {
		if res.Labels[v] != 50 {
			t.Fatalf("label[%d] = %d, want 50", v, res.Labels[v])
		}
	}
}

func TestDistPRConverges(t *testing.T) {
	g := gen.ErdosRenyi(400, 3200, 13)
	e := testEngine(t, g, 4)
	res := e.PR(1e-8, 100)
	sum := 0.0
	for _, x := range res.Rank {
		sum += x
	}
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("rank mass = %v", sum)
	}
	if res.Rounds < 2 || res.Rounds > 100 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestDistKCore(t *testing.T) {
	g := gen.Star(30)
	e := testEngine(t, g, 2)
	res := e.KCore(3)
	// Star center has degree 58 undirected; spokes have 2 (<3): all
	// spokes peel, then the center loses all degree and peels too.
	for v, in := range res.InCore {
		if in {
			t.Errorf("node %d should not survive 3-core of a star", v)
		}
	}
}

func TestDistBCMatchesSingleMachine(t *testing.T) {
	g := gen.Grid(7, 8)
	src := graph.Node(0)
	e := testEngine(t, g, 3)
	res := e.BC(src)
	want := analytics.BC(galoisRuntime(t, g, false, false), src, analytics.BCOptions{})
	for v := range want.Centrality {
		if diff := res.Centrality[v] - want.Centrality[v]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("bc[%d] = %g, want %g", v, res.Centrality[v], want.Centrality[v])
		}
	}
}

func TestCommScalesWithHosts(t *testing.T) {
	g := gen.ErdosRenyi(2000, 16000, 21)
	one := testEngine(t, g, 1)
	one.BFS(0)
	many := testEngine(t, g, 8)
	many.BFS(0)
	if one.BytesSent() != 0 {
		t.Errorf("single host sent %d bytes, want 0", one.BytesSent())
	}
	if many.BytesSent() == 0 {
		t.Error("8 hosts sent no bytes")
	}
	if many.CommSeconds() <= one.CommSeconds() {
		t.Errorf("comm time should grow with hosts: 1 host %.6f vs 8 hosts %.6f", one.CommSeconds(), many.CommSeconds())
	}
}

func TestCVCCommFactorBelowOEC(t *testing.T) {
	g := gen.ErdosRenyi(1000, 8000, 2)
	cfgO := DefaultConfig(16, 32)
	cfgO.Partition = OEC
	cfgO.ThreadsPerHost = 4
	cfgC := cfgO
	cfgC.Partition = CVC
	eo, err := NewEngine(g, cfgO)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := NewEngine(g, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if of, cf := eo.commFactor(), ec.commFactor(); cf >= of {
		t.Errorf("CVC comm factor %v should be below OEC %v at 16 hosts", cf, of)
	}
}

func TestPartitionString(t *testing.T) {
	if OEC.String() != "oec" || CVC.String() != "cvc" {
		t.Error("partition strings")
	}
}
