// Package distsim simulates D-Galois, the distributed graph analytics
// system the paper compares against (§6.3), running on Stampede2-like
// hosts. D-Galois supports only bulk-synchronous vertex programs with
// dense worklists (communication simplicity), so every distributed app here
// is round-based.
//
// The simulation executes the real algorithm on the real (scaled) graph:
// vertices are partitioned across hosts, each host's per-round work is
// charged to its own memsim machine (DRAM-backed Stampede2 host), and
// inter-host synchronization is charged with an alpha-beta cost model over
// the per-round dirty-mirror communication volume:
//
//	t_round = max_h(compute_h) + alpha(hosts) + max_h(bytes_h)/netBW
//
// Partitioning policies follow the paper's §6.3 choices: Outgoing Edge Cut
// (OEC) for small host counts and Cartesian Vertex Cut (CVC) for 256
// hosts; CVC's 2D structure reduces per-host communication by ~2/sqrt(h),
// which the model applies as a volume factor (Boman et al., cited by the
// paper).
//
// Rounds are strictly bulk-synchronous and deterministic: every app reads
// the round-start snapshot of its label arrays and relaxes via commutative
// min/add-reductions, hostRound distributes vertices in statically owned
// chunks (mirroring core.ParallelItems), and pagerank double-buffers its
// contributions — so per-host compute charges, communication volumes, and
// therefore every simulated number are byte-identical at any GOMAXPROCS,
// the same contract the shared-memory engine upholds. Per-host compute is
// charged to each host's own memsim machine; network time is analytic
// (alpha-beta), not simulated.
package distsim

import (
	"fmt"

	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Partition selects the partitioning policy.
type Partition int

const (
	// OEC is an outgoing edge cut: hosts own contiguous vertex blocks
	// balanced by out-edge count and hold all out-edges of their
	// masters.
	OEC Partition = iota
	// CVC is the Cartesian (2D) vertex cut used for large host counts.
	CVC
)

// String implements fmt.Stringer.
func (p Partition) String() string {
	switch p {
	case OEC:
		return "oec"
	case CVC:
		return "cvc"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// Config describes the simulated cluster.
type Config struct {
	Hosts          int
	ThreadsPerHost int
	Partition      Partition
	// Host is the per-host machine configuration (a scaled Stampede2
	// node; see memsim.StampedeHost).
	Host memsim.MachineConfig
	// NetBytesPerNs is per-host network bandwidth (100 Gb/s Omni-Path
	// = 12.5 B/ns).
	NetBytesPerNs float64
	// AlphaNs is the per-round synchronization overhead for a 2-host
	// exchange (Gluon barrier, message startup, serialization); it grows
	// with log2(hosts). Calibrated against the paper's per-round D-Galois
	// costs (~10-20 ms per bfs round on clueweb12 at 5 hosts).
	AlphaNs float64
}

// DefaultConfig returns the Stampede2 cluster model at the given host
// count, with the paper's partition recommendation (OEC at small scale,
// CVC at 256 hosts) and the shared capacity scale divisor.
func DefaultConfig(hosts int, scaleDiv int64) Config {
	p := OEC
	if hosts >= 128 {
		p = CVC
	}
	return Config{
		Hosts:          hosts,
		ThreadsPerHost: 48,
		Partition:      p,
		Host:           memsim.Scaled(memsim.StampedeHost(), scaleDiv),
		NetBytesPerNs:  12.5,
		AlphaNs:        400_000,
	}
}

// MinHosts returns the minimum number of hosts needed to hold a graph
// whose replicated footprint is bytes, given per-host memory (the paper's
// DM configuration: 5 hosts for clueweb12/uk14, 20 for wdc12).
func MinHosts(replicatedBytes int64, host memsim.MachineConfig) int {
	perHost := host.DRAMPerSocket * int64(host.Sockets)
	// Leave ~25% headroom for runtime structures, as a real run would.
	usable := perHost * 3 / 4
	h := int((replicatedBytes + usable - 1) / usable)
	if h < 1 {
		h = 1
	}
	return h
}

// Engine holds a partitioned graph across simulated hosts.
type Engine struct {
	cfg Config
	g   *graph.Graph

	// owner[v] is the host owning v's master.
	owner []uint16
	// hostRange[h] = [lo, hi) vertex block of host h.
	hostLo, hostHi []graph.Node

	hosts []*host

	wallNs  float64
	commNs  float64
	sendTot int64
	rounds  int
}

type host struct {
	id int
	m  *memsim.Machine
	// Charged allocations: local CSR shard and the replicated label
	// array (masters + proxies, as D-Galois/Gluon replicates).
	offsets, edges, weights, labels *memsim.Array
}

// NewEngine partitions g across the configured hosts.
func NewEngine(g *graph.Graph, cfg Config) (*Engine, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("distsim: host count %d must be positive", cfg.Hosts)
	}
	n := g.NumNodes()
	if cfg.Hosts > n && n > 0 {
		cfg.Hosts = n
	}
	e := &Engine{
		cfg:    cfg,
		g:      g,
		owner:  make([]uint16, n),
		hostLo: make([]graph.Node, cfg.Hosts),
		hostHi: make([]graph.Node, cfg.Hosts),
	}

	// Contiguous blocks balanced by out-edges (both OEC and CVC assign
	// masters this way; they differ in edge/communication placement).
	perHost := g.NumEdges() / int64(cfg.Hosts)
	h := 0
	start := graph.Node(0)
	acc := int64(0)
	for v := 0; v < n; v++ {
		acc += g.OutDegree(graph.Node(v))
		e.owner[v] = uint16(h)
		if acc >= perHost*int64(h+1) && h < cfg.Hosts-1 {
			e.hostLo[h], e.hostHi[h] = start, graph.Node(v+1)
			start = graph.Node(v + 1)
			h++
		}
	}
	for ; h < cfg.Hosts; h++ {
		e.hostLo[h], e.hostHi[h] = start, graph.Node(n)
		start = graph.Node(n)
	}

	for i := 0; i < cfg.Hosts; i++ {
		m := memsim.NewMachine(cfg.Host)
		lo, hi := e.hostLo[i], e.hostHi[i]
		localEdges := int64(0)
		if hi > lo {
			localEdges = g.OutOffsets[hi] - g.OutOffsets[lo]
		}
		hst := &host{id: i, m: m}
		alloc := func(name string, length, elem int64) *memsim.Array {
			a := m.MustAlloc(name, max64(length, 1), elem, memsim.AllocOpts{
				Policy:   memsim.Interleaved,
				PageSize: memsim.PageHuge,
			})
			a.Warm()
			return a
		}
		hst.offsets = alloc("dist.offsets", int64(hi-lo)+1, 8)
		hst.edges = alloc("dist.edges", localEdges, 4)
		if g.HasWeights() {
			hst.weights = alloc("dist.weights", localEdges, 4)
		}
		// Replicated node data: masters plus proxies. OEC replicates
		// broadly (the reason min-host counts are what they are). CVC
		// restricts proxies to a 2D block row/column; the model keeps
		// the full-size array for charging simplicity and applies
		// CVC's benefit through the communication factor.
		hst.labels = alloc("dist.labels", int64(n), 8)
		e.hosts = append(e.hosts, hst)
	}
	return e, nil
}

// Owner returns the master host of v.
func (e *Engine) Owner(v graph.Node) int { return int(e.owner[v]) }

// Hosts returns the configured host count.
func (e *Engine) Hosts() int { return e.cfg.Hosts }

// WallSeconds returns the simulated distributed execution time.
func (e *Engine) WallSeconds() float64 { return e.wallNs / 1e9 }

// CommSeconds returns the portion of wall time spent in communication.
func (e *Engine) CommSeconds() float64 { return e.commNs / 1e9 }

// BytesSent returns total bytes exchanged.
func (e *Engine) BytesSent() int64 { return e.sendTot }

// Rounds returns the number of BSP rounds executed.
func (e *Engine) Rounds() int { return e.rounds }

// resetClock zeroes the engine's clock (between apps).
func (e *Engine) resetClock() {
	e.wallNs, e.commNs, e.sendTot, e.rounds = 0, 0, 0, 0
	for _, h := range e.hosts {
		h.m.ResetClock()
	}
}

// commFactor scales per-host communication volume by partition policy.
func (e *Engine) commFactor() float64 {
	if e.cfg.Partition == CVC && e.cfg.Hosts > 1 {
		return 2.0 / float64(isqrt(e.cfg.Hosts))
	}
	return 1.0
}

// endRound folds one BSP round into the wall clock: the slowest host's
// compute, plus synchronization alpha, plus the bottleneck host's
// communication volume.
func (e *Engine) endRound(computeNs []float64, sendBytes []int64) {
	e.rounds++
	maxCompute := 0.0
	for _, c := range computeNs {
		if c > maxCompute {
			maxCompute = c
		}
	}
	maxBytes := int64(0)
	for _, b := range sendBytes {
		e.sendTot += b
		if b > maxBytes {
			maxBytes = b
		}
	}
	alpha := e.cfg.AlphaNs * log2f(e.cfg.Hosts)
	// Reduce + broadcast: volume crosses the network twice.
	comm := alpha + 2*float64(maxBytes)*e.commFactor()/e.cfg.NetBytesPerNs
	e.commNs += comm
	e.wallNs += maxCompute + comm
}

func isqrt(n int) int {
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	if x < 1 {
		x = 1
	}
	return x
}

func log2f(n int) float64 {
	f := 1.0
	for n > 2 {
		n /= 2
		f++
	}
	return f
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
