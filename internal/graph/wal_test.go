package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

func crc32Castagnoli(b []byte) uint32 {
	return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
}

func walBatches() [][]EdgeUpdate {
	return [][]EdgeUpdate{
		{{Op: OpInsert, Src: 0, Dst: 1, Weight: 5}, {Op: OpDelete, Src: 2, Dst: 3}},
		{{Op: OpInsert, Src: 4, Dst: 4}},
		{{Op: OpDelete, Src: 1, Dst: 0}, {Op: OpInsert, Src: 7, Dst: 2, Weight: 63}, {Op: OpInsert, Src: 0, Dst: 0}},
	}
}

func encodeWAL(t *testing.T, batches [][]EdgeUpdate) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, b := range batches {
		if err := AppendLog(&buf, uint64(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestWALRoundTrip(t *testing.T) {
	want := walBatches()
	got, err := ReadLog(bytes.NewReader(encodeWAL(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestWALRejectsEmptyAndOversizedBatches(t *testing.T) {
	var buf bytes.Buffer
	if err := AppendLog(&buf, 1, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := AppendLog(&buf, 1, make([]EdgeUpdate, MaxWALBatch+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestWALTornTailEveryByte is the crash-recovery contract at byte
// granularity: a log truncated at EVERY byte boundary inside the final
// record replays to exactly the preceding complete batches, and a
// truncation inside an earlier record stops there.
func TestWALTornTailEveryByte(t *testing.T) {
	batches := walBatches()
	full := encodeWAL(t, batches)
	prefix := encodeWAL(t, batches[:2])
	for cut := len(prefix); cut < len(full); cut++ {
		got, err := ReadLog(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !reflect.DeepEqual(got, batches[:2]) {
			t.Fatalf("cut %d: replayed %d batches, want the 2 complete ones", cut, len(got))
		}
	}
	// Torn inside the SECOND record: only batch 1 survives.
	second := encodeWAL(t, batches[:1])
	got, err := ReadLog(bytes.NewReader(full[:len(second)+7]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batches[:1]) {
		t.Fatalf("mid-log tear replayed %d batches, want 1", len(got))
	}
}

func TestWALStopsAtCorruption(t *testing.T) {
	batches := walBatches()
	full := encodeWAL(t, batches)
	prefix := encodeWAL(t, batches[:2])

	cases := []struct {
		name   string
		mutate func(b []byte)
		want   int // complete batches surviving
	}{
		{"flipped body byte fails the checksum", func(b []byte) { b[len(prefix)+walHdrBytes] ^= 0xFF }, 2},
		{"flipped crc byte", func(b []byte) { b[len(full)-1] ^= 0x01 }, 2},
		{"wrong magic", func(b []byte) { b[len(prefix)] ^= 0xFF }, 2},
		{"sequence gap", func(b []byte) { binary.LittleEndian.PutUint64(b[len(prefix)+4:], 9) }, 2},
		{"zero count", func(b []byte) { binary.LittleEndian.PutUint32(b[len(prefix)+12:], 0) }, 2},
		{"hostile count", func(b []byte) { binary.LittleEndian.PutUint32(b[len(prefix)+12:], MaxWALBatch+1) }, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := append([]byte(nil), full...)
			c.mutate(b)
			got, err := ReadLog(bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != c.want {
				t.Fatalf("replayed %d batches, want %d", len(got), c.want)
			}
			if !reflect.DeepEqual(got, batches[:c.want]) {
				t.Fatal("surviving prefix differs from the appended batches")
			}
		})
	}
}

// TestWALStopsAtInvalidOp: a record that checksums correctly but carries
// an unknown op code is dropped (and stops replay) rather than decoded
// into an update the validator would have to reject later.
func TestWALStopsAtInvalidOp(t *testing.T) {
	batches := walBatches()
	prefix := encodeWAL(t, batches[:1])
	// Hand-build record 2 with op byte 7 and a CORRECT checksum, so only
	// op validation can reject it.
	rec := make([]byte, walHdrBytes+walEntryBytes+4)
	binary.LittleEndian.PutUint32(rec[0:], walMagic)
	binary.LittleEndian.PutUint64(rec[4:], 2)
	binary.LittleEndian.PutUint32(rec[12:], 1)
	rec[walHdrBytes] = 7 // op
	crc := crc32Castagnoli(rec[4 : walHdrBytes+walEntryBytes])
	binary.LittleEndian.PutUint32(rec[walHdrBytes+walEntryBytes:], crc)
	got, err := ReadLog(bytes.NewReader(append(append([]byte(nil), prefix...), rec...)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batches[:1]) {
		t.Fatalf("replayed %d batches, want 1", len(got))
	}
}

// TestWALHostileCountDoesNotCommitAllocation: a record whose count field
// claims the maximum batch size backed by no bytes must be dropped without
// the decoder committing memory proportional to the claim.
func TestWALHostileCountBackedByNothing(t *testing.T) {
	var buf bytes.Buffer
	if err := AppendLog(&buf, 1, walBatches()[0]); err != nil {
		t.Fatal(err)
	}
	hostile := make([]byte, walHdrBytes)
	binary.LittleEndian.PutUint32(hostile[0:], walMagic)
	binary.LittleEndian.PutUint64(hostile[4:], 2)
	binary.LittleEndian.PutUint32(hostile[12:], MaxWALBatch)
	buf.Write(hostile)
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d batches, want 1", len(got))
	}
}
