package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// header serializes a CSR header with arbitrary fields.
func header(magic, flags, nodes, edges uint64) []byte {
	var buf bytes.Buffer
	for _, v := range []uint64{magic, flags, nodes, edges} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	return buf.Bytes()
}

func TestReadCSRWeightedRoundTrip(t *testing.T) {
	g := smallGraph()
	g.AddRandomWeights(40, 7)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasWeights() {
		t.Fatal("weights lost in round trip")
	}
	for i := range g.OutWeights {
		if g.OutWeights[i] != h.OutWeights[i] {
			t.Fatalf("weight %d = %d, want %d", i, h.OutWeights[i], g.OutWeights[i])
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
}

func TestReadCSRRejectsAbsurdHeaders(t *testing.T) {
	cases := map[string][]byte{
		"huge-nodes": header(csrMagic, 0, 1<<60, 4),
		// Node count beyond uint32 IDs but within the byte cap.
		"wide-nodes":      header(csrMagic, 0, 1<<33, 4),
		"huge-edges":      header(csrMagic, 0, 4, 1<<61),
		"overflow-both":   header(csrMagic, flagWeighted, ^uint64(0), ^uint64(0)),
		"unknown-flags":   header(csrMagic, 0xFF00, 4, 4),
		"wrong-magic":     header(0xdeadbeef, 0, 4, 4),
		"truncated-magic": {0x50, 0x4d},
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSR(bytes.NewReader(raw)); err == nil {
				t.Error("hostile header accepted")
			}
		})
	}
}

func TestReadCSRTruncatedBodyErrorsWithoutCommittingClaimedSize(t *testing.T) {
	// A header claiming ~1 billion edges over an empty body must fail at
	// EOF, not OOM: deserialization grows with arriving data.
	raw := header(csrMagic, 0, 10, 1<<30)
	if _, err := ReadCSR(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated body accepted")
	} else if !strings.Contains(err.Error(), "offsets") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Valid offsets but missing edges.
	g := smallGraph()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, err := ReadCSR(bytes.NewReader(whole[:len(whole)-4])); err == nil {
		t.Fatal("truncated edges accepted")
	}
}

func TestReadCSRRejectsCorruptBody(t *testing.T) {
	g := smallGraph()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Point an edge beyond the node count: Validate must reject it.
	edgeStart := 4*8 + (g.NumNodes()+1)*8
	binary.LittleEndian.PutUint32(raw[edgeStart:], 999)
	if _, err := ReadCSR(bytes.NewReader(raw)); err == nil {
		t.Error("out-of-range edge target accepted")
	}
}

func TestValidateInDirectionInvariants(t *testing.T) {
	fresh := func() *Graph {
		g := smallGraph()
		g.BuildIn()
		return g
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("valid transpose rejected: %v", err)
	}
	t.Run("nonzero-first-offset", func(t *testing.T) {
		g := fresh()
		g.InOffsets[0] = 2
		if g.Validate() == nil {
			t.Error("InOffsets[0] != 0 accepted")
		}
	})
	t.Run("non-monotone", func(t *testing.T) {
		g := fresh()
		g.InOffsets[1] = g.InOffsets[2] + 1
		if g.Validate() == nil {
			t.Error("non-monotone InOffsets accepted")
		}
	})
	t.Run("count-mismatch", func(t *testing.T) {
		g := fresh()
		g.InEdges = g.InEdges[:len(g.InEdges)-1]
		if g.Validate() == nil {
			t.Error("in/out edge count mismatch accepted")
		}
	})
	t.Run("source-out-of-range", func(t *testing.T) {
		g := fresh()
		g.InEdges[0] = 77
		if g.Validate() == nil {
			t.Error("out-of-range in-edge source accepted")
		}
	})
	t.Run("short-offsets", func(t *testing.T) {
		g := fresh()
		g.InOffsets = g.InOffsets[:len(g.InOffsets)-1]
		if g.Validate() == nil {
			t.Error("short InOffsets accepted")
		}
	})
	t.Run("weights-length", func(t *testing.T) {
		g := smallGraph()
		g.AddRandomWeights(9, 1)
		g.BuildIn()
		g.InWeights = g.InWeights[:1]
		if g.Validate() == nil {
			t.Error("in-weights length mismatch accepted")
		}
	})
}
