// Package graph provides the immutable Compressed Sparse Row (CSR) graph
// representation shared by every system in this repository: the in-memory
// analytics engine, the framework emulations, the distributed-execution
// simulator, and the out-of-core simulator.
//
// Node IDs are uint32, matching the paper's observation that GAP, GraphIt
// and GridGraph store node IDs in 32 bits (and therefore cannot load graphs
// with more than 2^31-1 nodes); edge indices are int64 so edge counts are
// not similarly limited.
//
// This is the host-side storage layer: nothing here touches the memory
// simulator (graph construction, serialization and update application
// model loading, which the paper excludes from all reported numbers);
// charging happens when core.Runtime mirrors these arrays onto a
// simulated machine. Graphs are immutable once shared — the batched
// edge-update log (updates.go) validates a batch and produces a NEW graph
// via merge rebuild, never mutating the old one — and every builder,
// (de)serializer and generator is deterministic in its inputs.
package graph

import (
	"fmt"
	"sort"
)

// Node is a vertex identifier.
type Node = uint32

// Graph is an immutable directed graph in CSR form. The out-direction is
// always present; the in-direction (transpose) is built on demand and is
// required only by pull-style and direction-optimizing operators.
type Graph struct {
	// OutOffsets has length NumNodes()+1; the out-edges of node v are
	// OutEdges[OutOffsets[v]:OutOffsets[v+1]].
	OutOffsets []int64
	OutEdges   []Node
	// OutWeights parallels OutEdges; nil for unweighted graphs.
	OutWeights []uint32

	// In-direction (transpose); nil until BuildIn is called.
	InOffsets []int64
	InEdges   []Node
	InWeights []uint32

	// zcache holds the lazily-encoded compressed adjacency forms (see
	// compressed.go); mutating methods invalidate it.
	zcache
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.OutOffsets) - 1 }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int64 { return int64(len(g.OutEdges)) }

// HasWeights reports whether edge weights are present.
func (g *Graph) HasWeights() bool { return g.OutWeights != nil }

// HasIn reports whether the transpose has been built.
func (g *Graph) HasIn() bool { return g.InOffsets != nil }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v Node) int64 {
	return g.OutOffsets[v+1] - g.OutOffsets[v]
}

// InDegree returns the in-degree of v; BuildIn must have been called.
func (g *Graph) InDegree(v Node) int64 {
	return g.InOffsets[v+1] - g.InOffsets[v]
}

// OutNeighbors returns the out-adjacency slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) OutNeighbors(v Node) []Node {
	return g.OutEdges[g.OutOffsets[v]:g.OutOffsets[v+1]]
}

// OutWeightsOf returns the weight slice parallel to OutNeighbors(v).
func (g *Graph) OutWeightsOf(v Node) []uint32 {
	return g.OutWeights[g.OutOffsets[v]:g.OutOffsets[v+1]]
}

// InNeighbors returns the in-adjacency slice of v; BuildIn must have been
// called.
func (g *Graph) InNeighbors(v Node) []Node {
	return g.InEdges[g.InOffsets[v]:g.InOffsets[v+1]]
}

// InWeightsOf returns the weight slice parallel to InNeighbors(v).
func (g *Graph) InWeightsOf(v Node) []uint32 {
	return g.InWeights[g.InOffsets[v]:g.InOffsets[v+1]]
}

// Validate checks structural invariants; it is used by tests and by the
// binary deserializer.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if n < 0 {
		return fmt.Errorf("graph: negative node count")
	}
	if g.OutOffsets[0] != 0 {
		return fmt.Errorf("graph: OutOffsets[0] = %d, want 0", g.OutOffsets[0])
	}
	for v := 0; v < n; v++ {
		if g.OutOffsets[v+1] < g.OutOffsets[v] {
			return fmt.Errorf("graph: OutOffsets not monotone at node %d", v)
		}
	}
	if g.OutOffsets[n] != int64(len(g.OutEdges)) {
		return fmt.Errorf("graph: OutOffsets[n]=%d != |E|=%d", g.OutOffsets[n], len(g.OutEdges))
	}
	for i, d := range g.OutEdges {
		if int(d) >= n {
			return fmt.Errorf("graph: edge %d targets node %d >= n=%d", i, d, n)
		}
	}
	if g.OutWeights != nil && len(g.OutWeights) != len(g.OutEdges) {
		return fmt.Errorf("graph: weights length %d != edges length %d", len(g.OutWeights), len(g.OutEdges))
	}
	if g.HasIn() {
		if len(g.InOffsets) != n+1 {
			return fmt.Errorf("graph: InOffsets length %d, want %d", len(g.InOffsets), n+1)
		}
		if g.InOffsets[0] != 0 {
			return fmt.Errorf("graph: InOffsets[0] = %d, want 0", g.InOffsets[0])
		}
		for v := 0; v < n; v++ {
			if g.InOffsets[v+1] < g.InOffsets[v] {
				return fmt.Errorf("graph: InOffsets not monotone at node %d", v)
			}
		}
		if g.InOffsets[n] != int64(len(g.InEdges)) {
			return fmt.Errorf("graph: InOffsets[n]=%d != in-edge count %d", g.InOffsets[n], len(g.InEdges))
		}
		if int64(len(g.InEdges)) != g.NumEdges() {
			return fmt.Errorf("graph: in-edge count %d != out-edge count %d", len(g.InEdges), g.NumEdges())
		}
		for i, s := range g.InEdges {
			if int(s) >= n {
				return fmt.Errorf("graph: in-edge %d sources from node %d >= n=%d", i, s, n)
			}
		}
		if g.InWeights != nil && len(g.InWeights) != len(g.InEdges) {
			return fmt.Errorf("graph: in-weights length %d != in-edges length %d", len(g.InWeights), len(g.InEdges))
		}
	}
	return nil
}

// BuildIn constructs the transpose (in-edges) with counting sort. It is
// idempotent.
func (g *Graph) BuildIn() {
	if g.HasIn() {
		return
	}
	n := g.NumNodes()
	inOff := make([]int64, n+1)
	for _, d := range g.OutEdges {
		inOff[d+1]++
	}
	for v := 0; v < n; v++ {
		inOff[v+1] += inOff[v]
	}
	inEdges := make([]Node, len(g.OutEdges))
	var inWeights []uint32
	if g.OutWeights != nil {
		inWeights = make([]uint32, len(g.OutEdges))
	}
	cursor := make([]int64, n)
	copy(cursor, inOff[:n])
	for v := 0; v < n; v++ {
		lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
		for i := lo; i < hi; i++ {
			d := g.OutEdges[i]
			c := cursor[d]
			inEdges[c] = Node(v)
			if inWeights != nil {
				inWeights[c] = g.OutWeights[i]
			}
			cursor[d] = c + 1
		}
	}
	g.InOffsets = inOff
	g.InEdges = inEdges
	g.InWeights = inWeights
	g.dropCompressed(false, true)
}

// DropIn releases the transpose, e.g. after a direction-optimizing run, to
// mirror frameworks that free unneeded directions.
func (g *Graph) DropIn() {
	g.InOffsets, g.InEdges, g.InWeights = nil, nil, nil
	g.dropCompressed(false, true)
}

// Edge is one directed edge with an optional weight, used by builders and
// generators.
type Edge struct {
	Src, Dst Node
	Weight   uint32
}

// FromEdges builds a CSR graph with n nodes from an edge list. Edges are
// sorted per source; parallel edges and self-loops are kept unless dedupe
// is set (triangle counting requires deduplicated, loop-free input). Every
// endpoint must lie in [0, n) — Node's unsignedness already excludes
// negatives, and anything >= n is rejected here instead of corrupting (or
// panicking over) the offset arrays.
func FromEdges(n int, edges []Edge, weighted, dedupe bool) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	for i, e := range edges {
		if int64(e.Src) >= int64(n) || int64(e.Dst) >= int64(n) {
			return nil, fmt.Errorf("graph: edge %d (%d -> %d) endpoint out of range [0, %d)", i, e.Src, e.Dst, n)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	if dedupe {
		out := edges[:0]
		for _, e := range edges {
			if e.Src == e.Dst {
				continue
			}
			if len(out) > 0 && out[len(out)-1].Src == e.Src && out[len(out)-1].Dst == e.Dst {
				continue
			}
			out = append(out, e)
		}
		edges = out
	}
	g := &Graph{
		OutOffsets: make([]int64, n+1),
		OutEdges:   make([]Node, len(edges)),
	}
	if weighted {
		g.OutWeights = make([]uint32, len(edges))
	}
	for _, e := range edges {
		g.OutOffsets[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		g.OutOffsets[v+1] += g.OutOffsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.OutOffsets[:n])
	for _, e := range edges {
		c := cursor[e.Src]
		g.OutEdges[c] = e.Dst
		if weighted {
			g.OutWeights[c] = e.Weight
		}
		cursor[e.Src] = c + 1
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on invalid input, for builders
// (generators, tests) whose edge lists are in-range by construction.
func MustFromEdges(n int, edges []Edge, weighted, dedupe bool) *Graph {
	g, err := FromEdges(n, edges, weighted, dedupe)
	if err != nil {
		panic(err)
	}
	return g
}

// AddRandomWeights assigns pseudo-random weights in [1, maxWeight] to every
// edge, as the paper does for sssp on unweighted inputs ("all graphs are
// unweighted, so we generate random weights").
func (g *Graph) AddRandomWeights(maxWeight uint32, seed uint64) {
	if maxWeight == 0 {
		maxWeight = 1
	}
	w := make([]uint32, len(g.OutEdges))
	x := seed | 1
	for i := range w {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		w[i] = uint32((x*0x2545F4914F6CDD1D)%uint64(maxWeight)) + 1
	}
	g.OutWeights = w
	g.dropCompressed(true, true)
	if g.HasIn() {
		// Rebuild transpose weights to stay consistent.
		g.InOffsets = nil
		g.InEdges = nil
		g.InWeights = nil
		g.BuildIn()
	}
}

// CSRBytes returns the size of the graph's CSR representation in bytes
// (offsets + edges + weights for the directions present), mirroring the
// "Size (GB)" column of Table 3.
func (g *Graph) CSRBytes() int64 {
	n := int64(g.NumNodes())
	size := (n + 1) * 8
	size += g.NumEdges() * 4
	if g.OutWeights != nil {
		size += g.NumEdges() * 4
	}
	if g.HasIn() {
		size += (n+1)*8 + g.NumEdges()*4
		if g.InWeights != nil {
			size += g.NumEdges() * 4
		}
	}
	return size
}

// MaxOutDegreeNode returns the node with the maximum out-degree (the
// paper's source node for bc, bfs and sssp) and its degree.
func (g *Graph) MaxOutDegreeNode() (Node, int64) {
	var best Node
	bestDeg := int64(-1)
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(Node(v)); d > bestDeg {
			bestDeg = d
			best = Node(v)
		}
	}
	return best, bestDeg
}

// MaxInDegree returns the maximum in-degree, building the transpose counts
// without materializing it.
func (g *Graph) MaxInDegree() int64 {
	counts := make([]int64, g.NumNodes())
	for _, d := range g.OutEdges {
		counts[d]++
	}
	var best int64
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return best
}
