package graph

import (
	"encoding/json"
	"reflect"
	"testing"
)

func updateTestGraph(t *testing.T, weighted bool) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1, 10}, {0, 2, 20}, {1, 2, 30}, {2, 0, 40}, {2, 3, 50}, {3, 3, 60},
	}
	g, err := FromEdges(5, edges, weighted, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyUpdatesInsertDelete(t *testing.T) {
	g := updateTestGraph(t, true)
	ng, delta, err := ApplyUpdates(g, []EdgeUpdate{
		{Op: OpInsert, Src: 3, Dst: 4, Weight: 7},
		{Op: OpInsert, Src: 0, Dst: 1, Weight: 9}, // parallel copy
		{Op: OpDelete, Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := ng.NumEdges(), int64(7); got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("source graph mutated: %d edges", g.NumEdges())
	}
	if got := ng.OutNeighbors(0); !reflect.DeepEqual(got, []Node{1, 1, 2}) {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if got := ng.OutNeighbors(2); !reflect.DeepEqual(got, []Node{0}) {
		t.Fatalf("OutNeighbors(2) = %v (delete 2->3 not applied)", got)
	}
	if got := ng.OutNeighbors(3); !reflect.DeepEqual(got, []Node{3, 4}) {
		t.Fatalf("OutNeighbors(3) = %v", got)
	}
	// Weights follow their edges through the rebuild.
	if w := ng.OutWeightsOf(3); !reflect.DeepEqual(w, []uint32{60, 7}) {
		t.Fatalf("OutWeightsOf(3) = %v", w)
	}
	if delta.Inserts != 2 || delta.Deletes != 1 || !delta.HasDeletes {
		t.Fatalf("delta counts: %+v", delta)
	}
	if !reflect.DeepEqual(delta.Dsts, []Node{1, 3, 4}) {
		t.Fatalf("delta.Dsts = %v", delta.Dsts)
	}
	if !reflect.DeepEqual(delta.DegChanged, []Node{0, 2, 3}) {
		t.Fatalf("delta.DegChanged = %v", delta.DegChanged)
	}
}

func TestApplyUpdatesDeleteRemovesParallelCopies(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 0}, {0, 1, 0}, {1, 2, 0}}, false, false)
	ng, delta, err := ApplyUpdates(g, []EdgeUpdate{{Op: OpDelete, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ng.OutDegree(0) != 0 {
		t.Fatalf("parallel copies survived: OutNeighbors(0) = %v", ng.OutNeighbors(0))
	}
	// Net degree change counts both removed copies.
	if !reflect.DeepEqual(delta.DegChanged, []Node{0}) {
		t.Fatalf("delta.DegChanged = %v", delta.DegChanged)
	}
}

func TestApplyUpdatesBalancedSwapKeepsDegreeUnchanged(t *testing.T) {
	g := updateTestGraph(t, false)
	_, delta, err := ApplyUpdates(g, []EdgeUpdate{
		{Op: OpDelete, Src: 0, Dst: 2},
		{Op: OpInsert, Src: 0, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.DegChanged) != 0 {
		t.Fatalf("balanced swap changed no degree, got DegChanged = %v", delta.DegChanged)
	}
}

func TestApplyUpdatesValidation(t *testing.T) {
	g := updateTestGraph(t, false)
	cases := []struct {
		name string
		ups  []EdgeUpdate
	}{
		{"src out of range", []EdgeUpdate{{Op: OpInsert, Src: 5, Dst: 0}}},
		{"dst out of range", []EdgeUpdate{{Op: OpInsert, Src: 0, Dst: 99}}},
		{"delete nonexistent", []EdgeUpdate{{Op: OpDelete, Src: 1, Dst: 0}}},
		{"delete twice", []EdgeUpdate{{Op: OpDelete, Src: 0, Dst: 1}, {Op: OpDelete, Src: 0, Dst: 1}}},
		{"insert and delete same pair", []EdgeUpdate{{Op: OpInsert, Src: 0, Dst: 1}, {Op: OpDelete, Src: 0, Dst: 1}}},
		{"delete then insert same pair", []EdgeUpdate{{Op: OpDelete, Src: 0, Dst: 1}, {Op: OpInsert, Src: 0, Dst: 1}}},
		{"unknown op", []EdgeUpdate{{Op: 7, Src: 0, Dst: 1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := ApplyUpdates(g, c.ups); err == nil {
				t.Fatalf("ApplyUpdates accepted %v", c.ups)
			}
		})
	}
}

func TestApplyUpdatesUnweightedClampsNothing(t *testing.T) {
	g := updateTestGraph(t, true)
	// Weight 0 insert on a weighted graph is clamped to 1.
	ng, _, err := ApplyUpdates(g, []EdgeUpdate{{Op: OpInsert, Src: 4, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if w := ng.OutWeightsOf(4); !reflect.DeepEqual(w, []uint32{1}) {
		t.Fatalf("OutWeightsOf(4) = %v, want [1]", w)
	}
}

func TestEdgeUpdateJSONRoundTrip(t *testing.T) {
	in := []EdgeUpdate{
		{Op: OpInsert, Src: 1, Dst: 2, Weight: 5},
		{Op: OpDelete, Src: 3, Dst: 4},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"op":"insert","src":1,"dst":2,"weight":5},{"op":"delete","src":3,"dst":4}]`
	if string(data) != want {
		t.Fatalf("wire format drifted:\n got %s\nwant %s", data, want)
	}
	var out []EdgeUpdate
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`[{"op":"upsert","src":0,"dst":0}]`), &out); err == nil {
		t.Fatal("unknown op accepted")
	}
}
