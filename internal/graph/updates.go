package graph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the batched edge-update log: the mutable-graph seam of the
// streaming-update path (GraphBolt/Aspen-style batched deltas). Graphs stay
// immutable — ApplyUpdates validates a batch against the current graph and
// produces a NEW graph via a merge rebuild, which the serving layer seals
// as the next epoch. Update application models graph (re)construction and,
// like loading, is never charged to the simulated machine (the paper
// excludes construction time from all reported numbers).

// UpdateOp distinguishes edge insertion from edge deletion.
type UpdateOp uint8

const (
	// OpInsert adds one directed edge (a parallel copy if the pair
	// already exists).
	OpInsert UpdateOp = iota
	// OpDelete removes every copy of a directed edge pair; the pair must
	// exist in the graph the batch is applied to.
	OpDelete
)

// String implements fmt.Stringer ("insert" / "delete").
func (op UpdateOp) String() string {
	if op == OpDelete {
		return "delete"
	}
	return "insert"
}

// MarshalJSON emits the wire form ("insert" / "delete") shared by the
// serving layer's updates endpoint and graphgen's update-stream files.
func (op UpdateOp) MarshalJSON() ([]byte, error) {
	return json.Marshal(op.String())
}

// UnmarshalJSON parses the wire form.
func (op *UpdateOp) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "insert":
		*op = OpInsert
	case "delete":
		*op = OpDelete
	default:
		return fmt.Errorf("graph: unknown update op %q (want insert or delete)", s)
	}
	return nil
}

// EdgeUpdate is one entry of a batched edge-update log. The json tags
// define the wire format accepted by POST /v1/graphs/{name}/updates and
// emitted by graphgen -updates.
type EdgeUpdate struct {
	Op  UpdateOp `json:"op"`
	Src Node     `json:"src"`
	Dst Node     `json:"dst"`
	// Weight applies to inserts on weighted graphs (0 is clamped to 1,
	// the generators' minimum); ignored for deletes.
	Weight uint32 `json:"weight,omitempty"`
}

// Delta summarizes one applied batch for the incremental kernels: which
// vertices' adjacency changed, and in which roles. All slices are
// deduplicated and sorted by vertex ID, so consumers iterating them are
// deterministic by construction.
type Delta struct {
	// Inserts and Deletes count the batch's operations.
	Inserts, Deletes int
	// HasDeletes reports whether any edge was removed (label-propagation
	// seeds cannot survive deletions; incremental cc falls back).
	HasDeletes bool
	// Dsts are the destinations of every inserted or deleted edge (the
	// vertices whose in-neighborhood changed).
	Dsts []Node
	// DegChanged are the sources whose out-degree changed (net inserts
	// minus deletes nonzero, counting every removed parallel copy) — the
	// vertices whose pagerank contribution divisor moved.
	DegChanged []Node
	// Inserted lists the inserted edges sorted by (src, dst), the pairs
	// incremental connected components hooks with union-by-min.
	Inserted []Edge
}

// Edges returns the total number of operations in the batch.
func (d *Delta) Edges() int { return d.Inserts + d.Deletes }

// pairKey packs a directed edge for set membership.
func pairKey(s, d Node) uint64 { return uint64(s)<<32 | uint64(d) }

// sortedNodes deduplicates and sorts a node set.
func sortedNodes(set map[Node]struct{}) []Node {
	out := make([]Node, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValidateUpdates checks a batch against g without applying it: endpoints
// must lie in [0, n) (updates never grow the vertex set), a pair may not be
// both inserted and deleted in one batch (the net effect would be
// order-dependent), the same pair may not be deleted twice, and every
// deleted pair must exist in g. It reuses the FromEdges hardening posture:
// reject hostile input before any allocation proportional to it succeeds.
func ValidateUpdates(g *Graph, ups []EdgeUpdate) error {
	n := int64(g.NumNodes())
	deletes := make(map[uint64]struct{})
	inserts := make(map[uint64]struct{})
	for i, u := range ups {
		if int64(u.Src) >= n || int64(u.Dst) >= n {
			return fmt.Errorf("graph: update %d (%s %d -> %d) endpoint out of range [0, %d)", i, u.Op, u.Src, u.Dst, n)
		}
		key := pairKey(u.Src, u.Dst)
		switch u.Op {
		case OpInsert:
			if _, ok := deletes[key]; ok {
				return fmt.Errorf("graph: update %d inserts edge %d -> %d also deleted in this batch", i, u.Src, u.Dst)
			}
			inserts[key] = struct{}{}
		case OpDelete:
			if _, ok := inserts[key]; ok {
				return fmt.Errorf("graph: update %d deletes edge %d -> %d also inserted in this batch", i, u.Src, u.Dst)
			}
			if _, ok := deletes[key]; ok {
				return fmt.Errorf("graph: update %d deletes edge %d -> %d twice", i, u.Src, u.Dst)
			}
			deletes[key] = struct{}{}
		default:
			return fmt.Errorf("graph: update %d has unknown op %d", i, u.Op)
		}
	}
	if len(deletes) > 0 {
		// Deletions must name edges that exist; scan the CSR once rather
		// than materializing an O(E) pair set.
		found := make(map[uint64]struct{}, len(deletes))
		for v := 0; v < g.NumNodes(); v++ {
			lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
			for i := lo; i < hi; i++ {
				key := pairKey(Node(v), g.OutEdges[i])
				if _, ok := deletes[key]; ok {
					found[key] = struct{}{}
				}
			}
		}
		if len(found) != len(deletes) {
			for key := range deletes {
				if _, ok := found[key]; !ok {
					return fmt.Errorf("graph: delete of nonexistent edge %d -> %d", Node(key>>32), Node(key&0xFFFFFFFF))
				}
			}
		}
	}
	return nil
}

// ApplyUpdates validates the batch against g and returns a new graph with
// it applied, plus the Delta the incremental kernels consume. g itself is
// never mutated — in-flight readers of the old epoch stay valid. Deletions
// remove every parallel copy of the named pair; insertions append one edge
// (carrying a weight iff g is weighted, clamped to >= 1 so generated
// weight invariants hold). The rebuild goes through FromEdges, so the new
// graph carries the same per-source ordering and validation guarantees as
// a freshly built one; the transpose and compressed encodings are NOT
// built here (the caller seals the new epoch as it would a loaded graph).
func ApplyUpdates(g *Graph, ups []EdgeUpdate) (*Graph, Delta, error) {
	if err := ValidateUpdates(g, ups); err != nil {
		return nil, Delta{}, err
	}
	var delta Delta
	dsts := make(map[Node]struct{})
	degNet := make(map[Node]int64)
	deletes := make(map[uint64]struct{})
	weighted := g.HasWeights()
	n := g.NumNodes()

	inserted := make([]Edge, 0, len(ups))
	for _, u := range ups {
		dsts[u.Dst] = struct{}{}
		switch u.Op {
		case OpInsert:
			delta.Inserts++
			degNet[u.Src]++
			w := u.Weight
			if weighted && w == 0 {
				w = 1
			}
			inserted = append(inserted, Edge{Src: u.Src, Dst: u.Dst, Weight: w})
		case OpDelete:
			delta.Deletes++
			delta.HasDeletes = true
			deletes[pairKey(u.Src, u.Dst)] = struct{}{}
		}
	}

	edges := make([]Edge, 0, int64(len(g.OutEdges))+int64(len(inserted)))
	for v := 0; v < n; v++ {
		lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
		for i := lo; i < hi; i++ {
			d := g.OutEdges[i]
			if len(deletes) > 0 {
				if _, ok := deletes[pairKey(Node(v), d)]; ok {
					degNet[Node(v)]-- // every parallel copy removed counts
					continue
				}
			}
			e := Edge{Src: Node(v), Dst: d}
			if weighted {
				e.Weight = g.OutWeights[i]
			}
			edges = append(edges, e)
		}
	}
	edges = append(edges, inserted...)

	ng, err := FromEdges(n, edges, weighted, false)
	if err != nil {
		return nil, Delta{}, err // unreachable after validation; kept for defense
	}
	delta.Dsts = sortedNodes(dsts)
	changed := make(map[Node]struct{})
	for v, net := range degNet {
		if net != 0 {
			changed[v] = struct{}{}
		}
	}
	delta.DegChanged = sortedNodes(changed)
	delta.Inserted = append([]Edge(nil), inserted...)
	sort.Slice(delta.Inserted, func(i, j int) bool {
		if delta.Inserted[i].Src != delta.Inserted[j].Src {
			return delta.Inserted[i].Src < delta.Inserted[j].Src
		}
		return delta.Inserted[i].Dst < delta.Inserted[j].Dst
	})
	return ng, delta, nil
}
