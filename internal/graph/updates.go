package graph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the batched edge-update log: the mutable-graph seam of the
// streaming-update path (GraphBolt/Aspen-style batched deltas). Graphs stay
// immutable — ApplyUpdates validates a batch against the current graph and
// produces a NEW graph via a merge rebuild, which the serving layer seals
// as the next epoch. Update application models graph (re)construction and,
// like loading, is never charged to the simulated machine (the paper
// excludes construction time from all reported numbers).

// UpdateOp distinguishes edge insertion from edge deletion.
type UpdateOp uint8

const (
	// OpInsert adds one directed edge (a parallel copy if the pair
	// already exists).
	OpInsert UpdateOp = iota
	// OpDelete removes every copy of a directed edge pair; the pair must
	// exist in the graph the batch is applied to.
	OpDelete
)

// String implements fmt.Stringer ("insert" / "delete").
func (op UpdateOp) String() string {
	if op == OpDelete {
		return "delete"
	}
	return "insert"
}

// MarshalJSON emits the wire form ("insert" / "delete") shared by the
// serving layer's updates endpoint and graphgen's update-stream files.
func (op UpdateOp) MarshalJSON() ([]byte, error) {
	return json.Marshal(op.String())
}

// UnmarshalJSON parses the wire form.
func (op *UpdateOp) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "insert":
		*op = OpInsert
	case "delete":
		*op = OpDelete
	default:
		return fmt.Errorf("graph: unknown update op %q (want insert or delete)", s)
	}
	return nil
}

// EdgeUpdate is one entry of a batched edge-update log. The json tags
// define the wire format accepted by POST /v1/graphs/{name}/updates and
// emitted by graphgen -updates.
type EdgeUpdate struct {
	Op  UpdateOp `json:"op"`
	Src Node     `json:"src"`
	Dst Node     `json:"dst"`
	// Weight applies to inserts on weighted graphs (0 is clamped to 1,
	// the generators' minimum); ignored for deletes.
	Weight uint32 `json:"weight,omitempty"`
}

// Delta summarizes one applied batch for the incremental kernels: which
// vertices' adjacency changed, and in which roles. All slices are
// deduplicated and sorted by vertex ID, so consumers iterating them are
// deterministic by construction.
type Delta struct {
	// Inserts and Deletes count the batch's operations.
	Inserts, Deletes int
	// HasDeletes reports whether any edge was removed (label-propagation
	// seeds cannot survive deletions; incremental cc falls back).
	HasDeletes bool
	// Dsts are the destinations of every inserted or deleted edge (the
	// vertices whose in-neighborhood changed).
	Dsts []Node
	// DegChanged are the sources whose out-degree changed (net inserts
	// minus deletes nonzero, counting every removed parallel copy) — the
	// vertices whose pagerank contribution divisor moved.
	DegChanged []Node
	// Inserted lists the inserted edges sorted by (src, dst), the pairs
	// incremental connected components hooks with union-by-min.
	Inserted []Edge
}

// Edges returns the total number of operations in the batch.
func (d *Delta) Edges() int { return d.Inserts + d.Deletes }

// pairKey packs a directed edge for set membership.
func pairKey(s, d Node) uint64 { return uint64(s)<<32 | uint64(d) }

// sortedNodes deduplicates and sorts a node set.
func sortedNodes(set map[Node]struct{}) []Node {
	out := make([]Node, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// outCopies counts the parallel copies of the directed pair (s, d): two
// binary searches over s's sorted out-row (FromEdges and Materialize both
// guarantee per-source ordering), O(log d) per lookup.
func (g *Graph) outCopies(s, d Node) int64 {
	row := g.OutEdges[g.OutOffsets[s]:g.OutOffsets[s+1]]
	lo := sort.Search(len(row), func(i int) bool { return row[i] >= d })
	hi := sort.Search(len(row), func(i int) bool { return row[i] > d })
	return int64(hi - lo)
}

// ValidateUpdates checks a batch against g without applying it: endpoints
// must lie in [0, n) (updates never grow the vertex set), a pair may not be
// both inserted and deleted in one batch (the net effect would be
// order-dependent), the same pair may not be deleted twice, inserts may not
// smuggle a weight into an unweighted graph (it would be silently dropped),
// deletes may not carry a weight at all, and every deleted pair must exist
// in g. It reuses the FromEdges hardening posture: reject hostile input
// before any allocation proportional to it succeeds. Delete existence is a
// per-source binary search over the sorted out-row — O(batch·log d) total,
// never an O(E) CSR scan.
func ValidateUpdates(g *Graph, ups []EdgeUpdate) error {
	return validateUpdates(g.NumNodes(), g.HasWeights(), g.outCopies, ups)
}

// validateUpdates is the batch validator shared by ValidateUpdates (copies
// answered by the base CSR) and Overlay.Apply (copies answered by the
// merged base+delta view).
func validateUpdates(n int, weighted bool, copies func(s, d Node) int64, ups []EdgeUpdate) error {
	n64 := int64(n)
	deletes := make(map[uint64]struct{})
	inserts := make(map[uint64]struct{})
	for i, u := range ups {
		if int64(u.Src) >= n64 || int64(u.Dst) >= n64 {
			return fmt.Errorf("graph: update %d (%s %d -> %d) endpoint out of range [0, %d)", i, u.Op, u.Src, u.Dst, n64)
		}
		key := pairKey(u.Src, u.Dst)
		switch u.Op {
		case OpInsert:
			if u.Weight != 0 && !weighted {
				return fmt.Errorf("graph: update %d (insert %d -> %d) carries weight %d into an unweighted graph", i, u.Src, u.Dst, u.Weight)
			}
			if _, ok := deletes[key]; ok {
				return fmt.Errorf("graph: update %d inserts edge %d -> %d also deleted in this batch", i, u.Src, u.Dst)
			}
			inserts[key] = struct{}{}
		case OpDelete:
			if u.Weight != 0 {
				return fmt.Errorf("graph: update %d (delete %d -> %d) carries weight %d; deletes remove every copy and take no weight", i, u.Src, u.Dst, u.Weight)
			}
			if _, ok := inserts[key]; ok {
				return fmt.Errorf("graph: update %d deletes edge %d -> %d also inserted in this batch", i, u.Src, u.Dst)
			}
			if _, ok := deletes[key]; ok {
				return fmt.Errorf("graph: update %d deletes edge %d -> %d twice", i, u.Src, u.Dst)
			}
			deletes[key] = struct{}{}
			if copies(u.Src, u.Dst) == 0 {
				return fmt.Errorf("graph: update %d: delete of nonexistent edge %d -> %d", i, u.Src, u.Dst)
			}
		default:
			return fmt.Errorf("graph: update %d has unknown op %d", i, u.Op)
		}
	}
	return nil
}

// ApplyUpdates validates the batch against g and returns a new graph with
// it applied, plus the Delta the incremental kernels consume. g itself is
// never mutated — in-flight readers of the old epoch stay valid. Deletions
// remove every parallel copy of the named pair; insertions append one edge
// (carrying a weight iff g is weighted, clamped to >= 1 so generated
// weight invariants hold). The rebuild goes through the same deterministic
// per-source merge the delta-overlay form uses (base edges in base order,
// inserted copies of an equal (src, dst) pair after the surviving base
// copies, in batch order), so a merge-rebuilt epoch and an overlay epoch
// present byte-identical adjacency; the transpose and compressed encodings
// are NOT built here (the caller seals the new epoch as it would a loaded
// graph).
func ApplyUpdates(g *Graph, ups []EdgeUpdate) (*Graph, Delta, error) {
	ov, delta, err := ApplyOverlay(g, ups)
	if err != nil {
		return nil, Delta{}, err
	}
	return ov.Materialize(), delta, nil
}
