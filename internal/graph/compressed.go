package graph

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// This file implements the byte-compressed CSR storage backend: per-vertex
// neighbor blocks holding delta-encoded, varint-packed node IDs
// (GBBS/Ligra+ style). On the paper's machines analytics are bandwidth
// bound — kernels pay for every byte streamed from the slow tier — so a
// smaller adjacency representation trades cheap decode compute for scarce
// memory bandwidth. The engine charges memsim for the compressed bytes a
// traversal streams plus an explicit per-edge decode cost
// (memsim.CostParams.DecodePerEdge/DecodePerVertex), which keeps that
// trade-off honest.
//
// Block layout for vertex v (all varints are unsigned LEB128):
//
//	degree  uvarint
//	first   zigzag(neighbor[0] - v)
//	[weight uvarint]                    (weighted graphs interleave)
//	delta   zigzag(neighbor[i] - neighbor[i-1])   for i >= 1
//	[weight uvarint]
//
// Deltas are zigzag-signed so any neighbor order round-trips exactly;
// the sorted adjacency the generators produce compresses best. Weights
// are interleaved with the deltas (as in GBBS) so an early-exited scan
// consumes a contiguous prefix of the block.

// Adjacency is a read-only view over one direction of a graph's adjacency,
// implemented by both the raw CSR slices (RawAdjacency) and the compressed
// form (CompressedCSR). The operator engine traverses through this
// interface; per-edge iteration goes through the concrete Cursor type so
// the hot loop stays free of interface calls and allocations.
type Adjacency interface {
	NumNodes() int
	NumEdges() int64
	Degree(v Node) int64
	// Base returns the global index of v's first edge, shared by both
	// forms so operator edge indices (ei) are backend-independent. It
	// accepts v == NumNodes() (the one-past-the-end base).
	Base(v Node) int64
	// Extent returns v's block range in backing elements — edge indices
	// for the raw form, byte offsets for the compressed form — for
	// charging streamed reads of the block.
	Extent(v Node) (lo, hi int64)
	// ExtentRange is Extent over the contiguous vertex range [lo, hi).
	ExtentRange(lo, hi Node) (int64, int64)
	// Cursor returns a zero-allocation iterator over v's neighbors.
	Cursor(v Node) Cursor
	// Compressed reports whether backing elements are compressed bytes.
	Compressed() bool
}

// Cursor iterates one vertex's neighbors without allocating; it is
// returned by value and handles all three adjacency forms: raw slices,
// compressed blocks, and a delta overlay layered over either (the base
// stream with deleted pairs filtered, merged against the sorted insert
// list, base copies first on destination ties).
type Cursor struct {
	// Raw form: a window over the edge slice.
	nbrs []Node
	i    int

	// Compressed form: a varint decoder over the vertex's block.
	data     []byte
	pos      int
	prev     int64
	rem      int64
	weighted bool

	// Edge-index tracking: base is the vertex's first base edge index,
	// cnt the base edges yielded so far, ei the index of the last
	// neighbor returned (under the overlay ei contract inserts get
	// ovInsEI + their position instead).
	base, cnt, ei int64

	// Overlay form (ov true): sorted insert and deleted-pair lists for
	// the vertex, a one-slot base lookahead, and the insert ei base.
	ov         bool
	ovIns      []Node
	ovInsPos   int
	ovInsEI    int64
	ovDel      []Node
	ovDelPos   int
	ovPeek     Node
	ovPeekEI   int64
	ovHasPeek  bool
	ovBaseDone bool
}

// baseNext advances the underlying raw or compressed stream, maintaining
// the base edge index.
func (c *Cursor) baseNext() (Node, bool) {
	if c.data == nil {
		if c.i >= len(c.nbrs) {
			return 0, false
		}
		d := c.nbrs[c.i]
		c.ei = c.base + int64(c.i)
		c.i++
		return d, true
	}
	if c.rem <= 0 {
		return 0, false
	}
	u, n := binary.Uvarint(c.data[c.pos:])
	c.pos += n
	c.prev += unzigzag(u)
	if c.weighted {
		_, wn := binary.Uvarint(c.data[c.pos:])
		c.pos += wn
	}
	c.rem--
	c.ei = c.base + c.cnt
	c.cnt++
	return Node(c.prev), true
}

// Next returns the next neighbor, or ok=false at the end of the block.
func (c *Cursor) Next() (Node, bool) {
	if !c.ov {
		return c.baseNext()
	}
	// Refill the base lookahead, skipping every copy of deleted pairs.
	for !c.ovHasPeek && !c.ovBaseDone {
		d, ok := c.baseNext()
		if !ok {
			c.ovBaseDone = true
			break
		}
		for c.ovDelPos < len(c.ovDel) && c.ovDel[c.ovDelPos] < d {
			c.ovDelPos++
		}
		if c.ovDelPos < len(c.ovDel) && c.ovDel[c.ovDelPos] == d {
			continue // deleted copy: skip, keep delPos (parallel copies follow)
		}
		c.ovPeek, c.ovPeekEI, c.ovHasPeek = d, c.ei, true
	}
	// Merge: surviving base edge first on ties with an insert.
	if c.ovHasPeek && (c.ovInsPos >= len(c.ovIns) || c.ovPeek <= c.ovIns[c.ovInsPos]) {
		c.ovHasPeek = false
		c.ei = c.ovPeekEI
		return c.ovPeek, true
	}
	if c.ovInsPos < len(c.ovIns) {
		d := c.ovIns[c.ovInsPos]
		c.ei = c.ovInsEI + int64(c.ovInsPos)
		c.ovInsPos++
		return d, true
	}
	return 0, false
}

// EI returns the edge index of the last neighbor Next returned: the
// direction's edge-array index for base edges, |E_base| + insert position
// for overlay inserts. Operators receive it instead of Base(v)+k, which
// keeps edge indices correct across all three adjacency forms.
func (c *Cursor) EI() int64 { return c.ei }

// Consumed returns the base backing elements consumed so far — edges for
// the raw form, bytes for the compressed form — so early-exited scans can
// charge exactly the prefix they streamed. Overlay delta entries consumed
// are reported separately by DeltaConsumed.
func (c *Cursor) Consumed() int64 {
	if c.data == nil {
		return int64(c.i)
	}
	return int64(c.pos)
}

// DeltaConsumed returns the overlay delta entries (inserts yielded plus
// deleted pairs passed) consumed so far; zero for non-overlay cursors.
func (c *Cursor) DeltaConsumed() int64 {
	return int64(c.ovInsPos + c.ovDelPos)
}

// RawAdjacency adapts one direction's raw CSR slices to Adjacency.
type RawAdjacency struct {
	Offsets []int64
	Edges   []Node
}

// RawOut returns the out-direction raw adjacency view.
func (g *Graph) RawOut() RawAdjacency {
	return RawAdjacency{Offsets: g.OutOffsets, Edges: g.OutEdges}
}

// RawIn returns the in-direction raw adjacency view; BuildIn must have
// been called.
func (g *Graph) RawIn() RawAdjacency {
	return RawAdjacency{Offsets: g.InOffsets, Edges: g.InEdges}
}

func (a RawAdjacency) NumNodes() int       { return len(a.Offsets) - 1 }
func (a RawAdjacency) NumEdges() int64     { return int64(len(a.Edges)) }
func (a RawAdjacency) Degree(v Node) int64 { return a.Offsets[v+1] - a.Offsets[v] }
func (a RawAdjacency) Base(v Node) int64   { return a.Offsets[v] }
func (a RawAdjacency) Compressed() bool    { return false }
func (a RawAdjacency) Extent(v Node) (int64, int64) {
	return a.Offsets[v], a.Offsets[v+1]
}
func (a RawAdjacency) ExtentRange(lo, hi Node) (int64, int64) {
	return a.Offsets[lo], a.Offsets[hi]
}
func (a RawAdjacency) Cursor(v Node) Cursor {
	return Cursor{nbrs: a.Edges[a.Offsets[v]:a.Offsets[v+1]], base: a.Offsets[v]}
}

// CompressedCSR is one direction's adjacency in delta+varint block form.
// EdgeOffsets mirrors the raw offsets array (edge-index bases, host-side
// bookkeeping for backend-independent edge indices); the simulated storage
// the backend models is ByteOffsets plus Data — see Bytes.
type CompressedCSR struct {
	n        int
	edges    int64
	weighted bool

	// EdgeOffsets has length n+1; vertex v covers global edge indices
	// [EdgeOffsets[v], EdgeOffsets[v+1]).
	EdgeOffsets []int64
	// ByteOffsets has length n+1; vertex v's block is
	// Data[ByteOffsets[v]:ByteOffsets[v+1]].
	ByteOffsets []int64
	Data        []byte
}

func (z *CompressedCSR) NumNodes() int       { return z.n }
func (z *CompressedCSR) NumEdges() int64     { return z.edges }
func (z *CompressedCSR) Weighted() bool      { return z.weighted }
func (z *CompressedCSR) Compressed() bool    { return true }
func (z *CompressedCSR) Degree(v Node) int64 { return z.EdgeOffsets[v+1] - z.EdgeOffsets[v] }
func (z *CompressedCSR) Base(v Node) int64   { return z.EdgeOffsets[v] }
func (z *CompressedCSR) Extent(v Node) (int64, int64) {
	return z.ByteOffsets[v], z.ByteOffsets[v+1]
}
func (z *CompressedCSR) ExtentRange(lo, hi Node) (int64, int64) {
	return z.ByteOffsets[lo], z.ByteOffsets[hi]
}

// Bytes returns the simulated storage footprint of this direction: the
// byte-offset array plus the block data (degrees live in the blocks;
// weights, when present, are interleaved with the deltas).
func (z *CompressedCSR) Bytes() int64 {
	return int64(z.n+1)*8 + int64(len(z.Data))
}

// Cursor returns a decoder positioned after v's degree varint.
func (z *CompressedCSR) Cursor(v Node) Cursor {
	block := z.Data[z.ByteOffsets[v]:z.ByteOffsets[v+1]]
	c := Cursor{data: block, prev: int64(v), weighted: z.weighted, base: z.EdgeOffsets[v]}
	deg, n := binary.Uvarint(block)
	c.pos = n
	c.rem = int64(deg)
	return c
}

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// compressAdjacency encodes one direction. weights may be nil.
func compressAdjacency(n int, offsets []int64, edges []Node, weights []uint32) *CompressedCSR {
	// Typical blocks: 1 degree byte + ~1-2 bytes per sorted delta.
	buf := make([]byte, 0, int64(n)+2*int64(len(edges)))
	byteOffs := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		buf = binary.AppendUvarint(buf, uint64(hi-lo))
		prev := int64(v)
		for i := lo; i < hi; i++ {
			d := int64(edges[i])
			buf = binary.AppendUvarint(buf, zigzag(d-prev))
			prev = d
			if weights != nil {
				buf = binary.AppendUvarint(buf, uint64(weights[i]))
			}
		}
		byteOffs[v+1] = int64(len(buf))
	}
	return &CompressedCSR{
		n:           n,
		edges:       int64(len(edges)),
		weighted:    weights != nil,
		EdgeOffsets: offsets,
		ByteOffsets: byteOffs,
		Data:        buf,
	}
}

// CompressOut returns the out-direction's compressed form, encoding it on
// first use and caching it on the graph (invalidated by AddRandomWeights).
// Safe for concurrent callers over a sealed graph.
func (g *Graph) CompressOut() *CompressedCSR {
	g.zmu.Lock()
	defer g.zmu.Unlock()
	if g.zOut == nil {
		g.zOut = compressAdjacency(g.NumNodes(), g.OutOffsets, g.OutEdges, g.OutWeights)
	}
	return g.zOut
}

// CompressIn is CompressOut for the transpose; BuildIn must have been
// called.
func (g *Graph) CompressIn() *CompressedCSR {
	if !g.HasIn() {
		panic("graph: CompressIn requires the transpose (call BuildIn first)")
	}
	g.zmu.Lock()
	defer g.zmu.Unlock()
	if g.zIn == nil {
		g.zIn = compressAdjacency(g.NumNodes(), g.InOffsets, g.InEdges, g.InWeights)
	}
	return g.zIn
}

// dropCompressed invalidates the cached compressed forms after a mutation
// of the arrays they encode.
func (g *Graph) dropCompressed(out, in bool) {
	g.zmu.Lock()
	if out {
		g.zOut = nil
	}
	if in {
		g.zIn = nil
	}
	g.zmu.Unlock()
}

// zcache is the lazily-encoded compressed-form cache embedded in Graph.
type zcache struct {
	zmu  sync.Mutex
	zOut *CompressedCSR
	zIn  *CompressedCSR
}

// Decode materializes the raw graph the compressed stream encodes,
// validating the stream as it goes: every block must decode exactly its
// byte extent, degrees must sum to the advertised edge count, and decoded
// neighbors must be valid node IDs. The returned graph carries z as its
// cached out-direction compressed form.
func (z *CompressedCSR) Decode() (*Graph, error) {
	n := z.n
	if len(z.ByteOffsets) != n+1 {
		return nil, fmt.Errorf("graph: csrz offsets length %d, want %d", len(z.ByteOffsets), n+1)
	}
	if z.ByteOffsets[0] != 0 {
		return nil, fmt.Errorf("graph: csrz ByteOffsets[0] = %d, want 0", z.ByteOffsets[0])
	}
	if z.ByteOffsets[n] != int64(len(z.Data)) {
		return nil, fmt.Errorf("graph: csrz ByteOffsets[n]=%d != data length %d", z.ByteOffsets[n], len(z.Data))
	}
	g := &Graph{
		OutOffsets: make([]int64, n+1),
		OutEdges:   make([]Node, 0, z.edges),
	}
	if z.weighted {
		g.OutWeights = make([]uint32, 0, z.edges)
	}
	edgeOffs := make([]int64, n+1)
	for v := 0; v < n; v++ {
		blo, bhi := z.ByteOffsets[v], z.ByteOffsets[v+1]
		if bhi < blo || bhi > int64(len(z.Data)) {
			return nil, fmt.Errorf("graph: csrz block %d has invalid extent [%d, %d)", v, blo, bhi)
		}
		block := z.Data[blo:bhi]
		deg, pos := binary.Uvarint(block)
		if pos <= 0 {
			return nil, fmt.Errorf("graph: csrz block %d: bad degree varint", v)
		}
		if int64(deg) > z.edges-int64(len(g.OutEdges)) {
			return nil, fmt.Errorf("graph: csrz block %d: degree %d exceeds remaining edges", v, deg)
		}
		prev := int64(v)
		for i := uint64(0); i < deg; i++ {
			u, k := binary.Uvarint(block[pos:])
			if k <= 0 {
				return nil, fmt.Errorf("graph: csrz block %d: bad delta varint at edge %d", v, i)
			}
			pos += k
			prev += unzigzag(u)
			if prev < 0 || prev >= int64(n) {
				return nil, fmt.Errorf("graph: csrz block %d: neighbor %d out of range [0, %d)", v, prev, n)
			}
			g.OutEdges = append(g.OutEdges, Node(prev))
			if z.weighted {
				w, wk := binary.Uvarint(block[pos:])
				if wk <= 0 || w > uint64(^uint32(0)) {
					return nil, fmt.Errorf("graph: csrz block %d: bad weight varint at edge %d", v, i)
				}
				pos += wk
				g.OutWeights = append(g.OutWeights, uint32(w))
			}
		}
		if int64(pos) != bhi-blo {
			return nil, fmt.Errorf("graph: csrz block %d: decoded %d of %d bytes", v, pos, bhi-blo)
		}
		edgeOffs[v+1] = int64(len(g.OutEdges))
	}
	if int64(len(g.OutEdges)) != z.edges {
		return nil, fmt.Errorf("graph: csrz degrees sum to %d edges, header says %d", len(g.OutEdges), z.edges)
	}
	copy(g.OutOffsets, edgeOffs)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	z.EdgeOffsets = g.OutOffsets
	g.zOut = z
	return g, nil
}
