package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// walkCursor drains an OverlayAdj cursor, returning the merged neighbor
// list and the ei contract index of every yielded edge.
func walkCursor(a *OverlayAdj, v Node) ([]Node, []int64) {
	var nbrs []Node
	var eis []int64
	c := a.Cursor(v)
	for {
		d, ok := c.Next()
		if !ok {
			return nbrs, eis
		}
		nbrs = append(nbrs, d)
		eis = append(eis, c.EI())
	}
}

func TestNewOverlayIdentity(t *testing.T) {
	g := updateTestGraph(t, true)
	g.BuildIn()
	ov := NewOverlay(g)
	if err := ov.Validate(); err != nil {
		t.Fatal(err)
	}
	if ov.NumEdges() != g.NumEdges() || ov.Entries() != 0 {
		t.Fatalf("identity overlay: edges %d entries %d", ov.NumEdges(), ov.Entries())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if ov.OutDegree(Node(v)) != g.OutDegree(Node(v)) {
			t.Fatalf("OutDegree(%d) = %d, want %d", v, ov.OutDegree(Node(v)), g.OutDegree(Node(v)))
		}
		nbrs, eis := walkCursor(ov.OutAdj(false), Node(v))
		if want := g.OutNeighbors(Node(v)); len(nbrs) != len(want) || (len(want) > 0 && !reflect.DeepEqual(nbrs, want)) {
			t.Fatalf("cursor(%d) = %v, want %v", v, nbrs, want)
		}
		for i, ei := range eis {
			if ei != g.OutOffsets[v]+int64(i) {
				t.Fatalf("vertex %d edge %d: ei = %d, want base index %d", v, i, ei, g.OutOffsets[v]+int64(i))
			}
		}
	}
	m := ov.Materialize()
	if !reflect.DeepEqual(m.OutOffsets, g.OutOffsets) || !reflect.DeepEqual(m.OutEdges, g.OutEdges) ||
		!reflect.DeepEqual(m.OutWeights, g.OutWeights) {
		t.Fatal("identity Materialize differs from base")
	}
}

func TestOverlayCursorEIContract(t *testing.T) {
	g := updateTestGraph(t, true) // 0:{1,2} 1:{2} 2:{0,3} 3:{3}; 6 edges
	ov, _, err := ApplyOverlay(g, []EdgeUpdate{
		{Op: OpInsert, Src: 0, Dst: 4, Weight: 70},
		{Op: OpInsert, Src: 0, Dst: 0, Weight: 80},
		{Op: OpDelete, Src: 0, Dst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	nbrs, eis := walkCursor(ov.OutAdj(false), 0)
	// Inserts sort to [0, 4]; base row [1, 2] loses 2.
	if !reflect.DeepEqual(nbrs, []Node{0, 1, 4}) {
		t.Fatalf("merged row = %v, want [0 1 4]", nbrs)
	}
	// Insert 0 is the 0th sorted insert (ei 6+0), base edge 1 keeps base
	// index 0, insert 4 is the 1st sorted insert (ei 6+1). The deleted
	// base slot's index 1 is never re-yielded.
	if !reflect.DeepEqual(eis, []int64{6, 0, 7}) {
		t.Fatalf("ei = %v, want [6 0 7]", eis)
	}
	if w := []uint32{ov.OutWeight(eis[0]), ov.OutWeight(eis[1]), ov.OutWeight(eis[2])}; !reflect.DeepEqual(w, []uint32{80, 10, 70}) {
		t.Fatalf("weights by ei = %v, want [80 10 70]", w)
	}
}

func TestOverlayInsertAfterDeleteKeepsBaseCopiesDead(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1, 0}, {0, 1, 0}, {1, 2, 0}}, false, false)
	ov1, _, err := ApplyOverlay(g, []EdgeUpdate{{Op: OpDelete, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ov1.OutDegree(0) != 0 {
		t.Fatalf("delete left copies: degree %d", ov1.OutDegree(0))
	}
	ov2, _, err := ov1.Apply([]EdgeUpdate{{Op: OpInsert, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ov2.OutDegree(0) != 1 {
		t.Fatalf("insert-after-delete: degree %d, want 1 (base copies stay dead)", ov2.OutDegree(0))
	}
	if m := ov2.Materialize(); !reflect.DeepEqual(m.OutNeighbors(0), []Node{1}) {
		t.Fatalf("materialized row %v, want [1]", m.OutNeighbors(0))
	}
}

func TestOverlayDeleteOfInsertedStrips(t *testing.T) {
	g := MustFromEdges(3, []Edge{{1, 2, 0}}, false, false)
	ov, _, err := ApplyOverlay(g, []EdgeUpdate{{Op: OpInsert, Src: 0, Dst: 1}, {Op: OpInsert, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ov, _, err = ov.Apply([]EdgeUpdate{{Op: OpDelete, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ov.OutDegree(0) != 0 {
		t.Fatalf("delete of inserted pair left %d copies", ov.OutDegree(0))
	}
	// The pair had no base copies, so it must not be remembered as dead:
	// a fresh insert resurfaces it.
	ov, _, err = ov.Apply([]EdgeUpdate{{Op: OpInsert, Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ov.OutDegree(0) != 1 {
		t.Fatalf("re-insert after strip: degree %d, want 1", ov.OutDegree(0))
	}
	if err := ov.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOverlayChainMatchesRebuildChain is the core conformance property: a
// chain of batches folded into one overlay presents adjacency, degrees,
// weights, edge counts and the max-degree source byte-identically to the
// same batches applied as merge rebuilds, in both directions and over both
// base representations, and Materialize reproduces the rebuilt CSR
// exactly.
func TestOverlayChainMatchesRebuildChain(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		name := "unweighted"
		if weighted {
			name = "weighted"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE))
			const n = 40
			edges := make([]Edge, 0, 160)
			for i := 0; i < 160; i++ {
				e := Edge{Src: Node(rng.Intn(n)), Dst: Node(rng.Intn(n))}
				if weighted {
					e.Weight = uint32(1 + rng.Intn(63))
				}
				edges = append(edges, e)
			}
			base := MustFromEdges(n, edges, weighted, false)
			base.BuildIn()
			base.CompressOut()
			base.CompressIn()

			ov := NewOverlay(base)
			cur := base
			for batch := 0; batch < 6; batch++ {
				ups := randomBatch(rng, cur, 12, weighted)
				var err error
				var ovDelta, gDelta Delta
				ov, ovDelta, err = ov.Apply(ups)
				if err != nil {
					t.Fatalf("batch %d: overlay apply: %v", batch, err)
				}
				cur, gDelta, err = ApplyUpdates(cur, ups)
				if err != nil {
					t.Fatalf("batch %d: rebuild apply: %v", batch, err)
				}
				cur.BuildIn()
				if !reflect.DeepEqual(ovDelta, gDelta) {
					t.Fatalf("batch %d: deltas differ:\noverlay %+v\nrebuild %+v", batch, ovDelta, gDelta)
				}
				if err := ov.Validate(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				compareOverlay(t, ov, cur, weighted)
			}

			m := ov.Materialize()
			if !reflect.DeepEqual(m.OutOffsets, cur.OutOffsets) || !reflect.DeepEqual(m.OutEdges, cur.OutEdges) ||
				!reflect.DeepEqual(m.OutWeights, cur.OutWeights) {
				t.Fatal("Materialize of chained overlay differs from chained rebuild")
			}
		})
	}
}

// randomBatch builds a valid update batch against g: ~3/4 inserts (which
// may create parallel copies) and ~1/4 deletes of existing pairs, obeying
// the batch-conflict rules ValidateUpdates enforces.
func randomBatch(rng *rand.Rand, g *Graph, size int, weighted bool) []EdgeUpdate {
	used := make(map[uint64]UpdateOp, size)
	var ups []EdgeUpdate
	for len(ups) < size {
		s, d := Node(rng.Intn(g.NumNodes())), Node(rng.Intn(g.NumNodes()))
		k := pairKey(s, d)
		if rng.Intn(4) == 0 {
			if _, taken := used[k]; taken || g.outCopies(s, d) == 0 {
				continue
			}
			used[k] = OpDelete
			ups = append(ups, EdgeUpdate{Op: OpDelete, Src: s, Dst: d})
			continue
		}
		if op, taken := used[k]; taken && op == OpDelete {
			continue
		}
		used[k] = OpInsert
		u := EdgeUpdate{Op: OpInsert, Src: s, Dst: d}
		if weighted {
			u.Weight = uint32(1 + rng.Intn(63))
		}
		ups = append(ups, u)
	}
	return ups
}

// compareOverlay asserts ov presents want's adjacency exactly, walking
// every vertex in both directions over both base representations.
func compareOverlay(t *testing.T, ov *Overlay, want *Graph, weighted bool) {
	t.Helper()
	if ov.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", ov.NumEdges(), want.NumEdges())
	}
	os, od := ov.MaxOutDegreeNode()
	ws, wd := want.MaxOutDegreeNode()
	if os != ws || od != wd {
		t.Fatalf("MaxOutDegreeNode = (%d, %d), want (%d, %d)", os, od, ws, wd)
	}
	dirs := []struct {
		name    string
		adj     func(compressed bool) *OverlayAdj
		deg     func(v Node) int64
		wantDeg func(v Node) int64
		nbrs    func(v Node) []Node
		wantW   func(v Node) []uint32
		weight  func(ei int64) uint32
	}{
		{"out", ov.OutAdj, ov.OutDegree, want.OutDegree, want.OutNeighbors, want.OutWeightsOf, ov.OutWeight},
		{"in", ov.InAdj, ov.InDegree, want.InDegree, want.InNeighbors, want.InWeightsOf, ov.InWeight},
	}
	for _, dir := range dirs {
		for _, compressed := range []bool{false, true} {
			a := dir.adj(compressed)
			for v := 0; v < want.NumNodes(); v++ {
				node := Node(v)
				if got, w := dir.deg(node), dir.wantDeg(node); got != w {
					t.Fatalf("%s degree(%d) z=%v = %d, want %d", dir.name, v, compressed, got, w)
				}
				nbrs, eis := walkCursor(a, node)
				wantN := dir.nbrs(node)
				if int64(len(nbrs)) != a.Degree(node) {
					t.Fatalf("%s cursor(%d) z=%v yielded %d, Degree says %d", dir.name, v, compressed, len(nbrs), a.Degree(node))
				}
				if len(nbrs) != len(wantN) || (len(wantN) > 0 && !reflect.DeepEqual(nbrs, wantN)) {
					t.Fatalf("%s cursor(%d) z=%v = %v, want %v", dir.name, v, compressed, nbrs, wantN)
				}
				if weighted {
					wantW := dir.wantW(node)
					for i, ei := range eis {
						if got := dir.weight(ei); got != wantW[i] {
							t.Fatalf("%s weight(%d) edge %d z=%v = %d, want %d", dir.name, v, i, compressed, got, wantW[i])
						}
					}
				}
			}
		}
	}
}
