package graph

// Properties summarizes a graph the way the paper's Table 3 does.
type Properties struct {
	Nodes        int
	Edges        int64
	AvgDegree    float64
	MaxOutDegree int64
	MaxInDegree  int64
	EstDiameter  int
	CSRBytes     int64
}

// Props computes the Table 3 property row for g.
func (g *Graph) Props() Properties {
	_, maxOut := g.MaxOutDegreeNode()
	p := Properties{
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		MaxOutDegree: maxOut,
		MaxInDegree:  g.MaxInDegree(),
		EstDiameter:  g.EstimateDiameter(),
		CSRBytes:     g.CSRBytes(),
	}
	if p.Nodes > 0 {
		p.AvgDegree = float64(p.Edges) / float64(p.Nodes)
	}
	return p
}

// EstimateDiameter estimates the graph's effective diameter using the
// standard double-sweep heuristic: BFS from the max-degree node, then BFS
// again from the farthest node found, treating edges as undirected (the
// paper reports "estimated diameter" for its inputs the same way). Returns
// the largest eccentricity observed across the sweeps.
func (g *Graph) EstimateDiameter() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	g.BuildIn()
	start, _ := g.MaxOutDegreeNode()
	best := 0
	cur := start
	for sweep := 0; sweep < 3; sweep++ {
		dist, far := g.undirectedBFS(cur)
		if dist > best {
			best = dist
		}
		if far == cur {
			break
		}
		cur = far
	}
	return best
}

// undirectedBFS runs BFS over out- and in-edges together and returns the
// maximum finite distance and one node attaining it.
func (g *Graph) undirectedBFS(src Node) (int, Node) {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []Node{src}
	level := int32(0)
	far := src
	for len(frontier) > 0 {
		level++
		var next []Node
		for _, v := range frontier {
			for _, d := range g.OutNeighbors(v) {
				if dist[d] < 0 {
					dist[d] = level
					next = append(next, d)
					far = d
				}
			}
			for _, d := range g.InNeighbors(v) {
				if dist[d] < 0 {
					dist[d] = level
					next = append(next, d)
					far = d
				}
			}
		}
		frontier = next
	}
	return int(dist[far]), far
}
