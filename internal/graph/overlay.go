package graph

import (
	"fmt"
	"sort"
)

// This file implements the delta-overlay adjacency form: an immutable
// sealed base graph plus a small sorted per-source insert/delete delta
// (Aspen/GraphBolt-style). Applying an update batch builds a new Overlay
// in O(|delta| + batch·log) work — never an O(E) merge-rebuild — and the
// overlay satisfies the Adjacency seam, so every kernel runs over it
// unchanged. The serving layer compacts an overlay back into a plain CSR
// once the delta grows past a threshold; Materialize is that merge, and
// it is also how ApplyUpdates rebuilds, so overlay iteration order and
// rebuilt adjacency order are identical by construction.
//
// Edge-index (ei) contract: base edges keep their base CSR indices
// (deleted slots are skipped, never re-yielded), and the i-th inserted
// edge of a direction gets ei = |E_base| + i. Weight lookups by ei
// dispatch on that split (see Overlay.OutWeight), which keeps ei stable
// across batches without renumbering the base arrays.

// ovSide is one direction's delta: the touched vertices (sorted), and per
// touched vertex the sorted inserted neighbors, the deleted neighbor
// values (each pair once; a delete kills every parallel copy), and the
// count of base slots those deletions remove.
type ovSide struct {
	srcs []Node
	// insOff/delOff have len(srcs)+1; touched vertex i's inserts are
	// insDst[insOff[i]:insOff[i+1]] (sorted, stable within equal dst) with
	// parallel weights insW, and its deleted pair values are
	// delDst[delOff[i]:delOff[i+1]] (sorted, unique).
	insOff []int32
	insDst []Node
	insW   []uint32 // nil on unweighted bases
	delOff []int32
	delDst []Node
	// delSlots[i] is the number of base adjacency slots deleted from
	// touched vertex i (counting every parallel copy of each deleted pair).
	delSlots []int32
	// entOff has len(srcs)+1: prefix sum of per-vertex delta entries
	// (inserts + delete pairs), addressing the side's simulated delta
	// array for honest charging.
	entOff []int64
	// edges is the merged edge count of the side.
	edges int64
}

// find returns the index of v in srcs, or -1 if v is untouched.
func (s *ovSide) find(v Node) int {
	i := sort.Search(len(s.srcs), func(k int) bool { return s.srcs[k] >= v })
	if i < len(s.srcs) && s.srcs[i] == v {
		return i
	}
	return -1
}

// Entries returns the side's total delta entries (inserts + delete pairs).
func (s *ovSide) Entries() int64 {
	if len(s.entOff) == 0 {
		return 0
	}
	return s.entOff[len(s.entOff)-1]
}

// Overlay is a sealed base graph plus one applied delta. It is immutable:
// Apply folds a further batch into a NEW Overlay over the same base, so
// in-flight readers of prior epochs stay valid. The canonical delta state
// (dels, ins) is kept relative to the base so folding stays
// O(|delta| + batch·log) regardless of how many batches accumulated.
type Overlay struct {
	base     *Graph
	weighted bool

	// dels holds base pairs whose every copy is deleted (only pairs with
	// at least one base copy appear; inserted-then-deleted pairs are
	// erased from ins instead). ins holds inserted edges in arrival
	// order, weights already clamped.
	dels     map[uint64]struct{}
	ins      []Edge
	insCount map[uint64]int32 // parallel-copy count per inserted pair

	out ovSide
	in  ovSide // built iff base.HasIn()
}

// NewOverlay returns the empty overlay over base (the identity epoch:
// iteration, degrees and weights match base exactly).
func NewOverlay(base *Graph) *Overlay {
	ov := &Overlay{
		base:     base,
		weighted: base.HasWeights(),
		dels:     map[uint64]struct{}{},
		insCount: map[uint64]int32{},
	}
	ov.build()
	return ov
}

// ApplyOverlay validates ups against base and returns the overlay holding
// that one batch, plus the batch's Delta.
func ApplyOverlay(base *Graph, ups []EdgeUpdate) (*Overlay, Delta, error) {
	return NewOverlay(base).Apply(ups)
}

// Base returns the sealed base graph the overlay layers over.
func (ov *Overlay) Base() *Graph { return ov.base }

// Weighted reports whether edges carry weights (decided by the base).
func (ov *Overlay) Weighted() bool { return ov.weighted }

// NumNodes returns the vertex count (updates never grow the vertex set).
func (ov *Overlay) NumNodes() int { return ov.base.NumNodes() }

// NumEdges returns the merged edge count.
func (ov *Overlay) NumEdges() int64 { return ov.out.edges }

// Entries returns the out-side delta entries (inserts + delete pairs):
// the |overlay| the compaction threshold compares against |E|.
func (ov *Overlay) Entries() int64 { return ov.out.Entries() }

// HasIn reports whether the in-direction delta exists (it does iff the
// base's transpose was built when the overlay was created).
func (ov *Overlay) HasIn() bool { return ov.base.HasIn() }

// mergedOutCopies counts the copies of (s, d) visible through the overlay.
func (ov *Overlay) mergedOutCopies(s, d Node) int64 {
	k := pairKey(s, d)
	var n int64
	if _, dead := ov.dels[k]; !dead {
		n = ov.base.outCopies(s, d)
	}
	return n + int64(ov.insCount[k])
}

// OutDegree returns the merged out-degree of v.
func (ov *Overlay) OutDegree(v Node) int64 { return ov.out.degree(ov.base.OutDegree(v), v) }

// InDegree returns the merged in-degree of v; the in-side delta must exist.
func (ov *Overlay) InDegree(v Node) int64 { return ov.in.degree(ov.base.InDegree(v), v) }

func (s *ovSide) degree(base int64, v Node) int64 {
	i := s.find(v)
	if i < 0 {
		return base
	}
	return base + int64(s.insOff[i+1]-s.insOff[i]) - int64(s.delSlots[i])
}

// MaxOutDegreeNode returns the first vertex of maximum merged out-degree
// and its degree, matching the Graph method's tie rule exactly (kernel
// source selection must agree between an overlay epoch and its rebuild).
// O(V·log |delta|), used once per epoch for kernel parameter defaults.
func (ov *Overlay) MaxOutDegreeNode() (Node, int64) {
	var best Node
	bestDeg := int64(-1)
	for v := 0; v < ov.NumNodes(); v++ {
		if d := ov.OutDegree(Node(v)); d > bestDeg {
			bestDeg = d
			best = Node(v)
		}
	}
	return best, bestDeg
}

// OutWeight returns the weight of the out-direction edge with index ei
// under the overlay ei contract: base indices read the base weight array,
// insert indices the insert-weight array.
func (ov *Overlay) OutWeight(ei int64) uint32 {
	if base := ov.base.NumEdges(); ei >= base {
		return ov.out.insW[ei-base]
	}
	return ov.base.OutWeights[ei]
}

// InWeight is OutWeight for the in-direction (its own index space, like
// InWeights vs OutWeights on a plain graph).
func (ov *Overlay) InWeight(ei int64) uint32 {
	if base := int64(len(ov.base.InEdges)); ei >= base {
		return ov.in.insW[ei-base]
	}
	return ov.base.InWeights[ei]
}

// Apply validates ups against the merged view and folds it into a NEW
// overlay over the same base, plus the batch's Delta (relative to the
// pre-batch merged state, exactly what ApplyUpdates would report). Cost is
// O(|delta| + batch·(log d + log |delta|)); the base is never rescanned.
func (ov *Overlay) Apply(ups []EdgeUpdate) (*Overlay, Delta, error) {
	copies := func(s, d Node) int64 { return ov.mergedOutCopies(s, d) }
	if err := validateUpdates(ov.NumNodes(), ov.weighted, copies, ups); err != nil {
		return nil, Delta{}, err
	}

	var delta Delta
	dsts := make(map[Node]struct{})
	degNet := make(map[Node]int64)
	strip := make(map[uint64]struct{}) // inserted pairs killed by this batch

	nov := &Overlay{
		base:     ov.base,
		weighted: ov.weighted,
		dels:     make(map[uint64]struct{}, len(ov.dels)+len(ups)),
		insCount: make(map[uint64]int32, len(ov.insCount)+len(ups)),
	}
	for k := range ov.dels {
		nov.dels[k] = struct{}{}
	}
	for k, c := range ov.insCount {
		nov.insCount[k] = c
	}

	inserted := make([]Edge, 0, len(ups))
	for _, u := range ups {
		dsts[u.Dst] = struct{}{}
		k := pairKey(u.Src, u.Dst)
		switch u.Op {
		case OpInsert:
			delta.Inserts++
			degNet[u.Src]++
			w := u.Weight
			if ov.weighted && w == 0 {
				w = 1
			}
			inserted = append(inserted, Edge{Src: u.Src, Dst: u.Dst, Weight: w})
			nov.insCount[k]++
		case OpDelete:
			delta.Deletes++
			delta.HasDeletes = true
			degNet[u.Src] -= ov.mergedOutCopies(u.Src, u.Dst)
			if nov.insCount[k] > 0 {
				strip[k] = struct{}{}
				delete(nov.insCount, k)
			}
			if _, dead := nov.dels[k]; !dead && ov.base.outCopies(u.Src, u.Dst) > 0 {
				nov.dels[k] = struct{}{}
			}
		}
	}

	if len(strip) == 0 {
		nov.ins = append(append(make([]Edge, 0, len(ov.ins)+len(inserted)), ov.ins...), inserted...)
	} else {
		nov.ins = make([]Edge, 0, len(ov.ins)+len(inserted))
		for _, e := range ov.ins {
			if _, dead := strip[pairKey(e.Src, e.Dst)]; !dead {
				nov.ins = append(nov.ins, e)
			}
		}
		nov.ins = append(nov.ins, inserted...)
	}
	nov.build()

	delta.Dsts = sortedNodes(dsts)
	changed := make(map[Node]struct{})
	for v, net := range degNet {
		if net != 0 {
			changed[v] = struct{}{}
		}
	}
	delta.DegChanged = sortedNodes(changed)
	delta.Inserted = append([]Edge(nil), inserted...)
	sort.SliceStable(delta.Inserted, func(i, j int) bool {
		if delta.Inserted[i].Src != delta.Inserted[j].Src {
			return delta.Inserted[i].Src < delta.Inserted[j].Src
		}
		return delta.Inserted[i].Dst < delta.Inserted[j].Dst
	})
	return nov, delta, nil
}

// build materializes both directions' side structures from the canonical
// (dels, ins) state.
func (ov *Overlay) build() {
	type del struct{ s, d Node }
	dels := make([]del, 0, len(ov.dels))
	for k := range ov.dels {
		dels = append(dels, del{Node(k >> 32), Node(k & 0xFFFFFFFF)})
	}
	buildSide := func(side *ovSide, baseEdges int64, flip bool, baseCopies func(s, d Node) int64) {
		// Sort inserts by (src, dst) stably so parallel copies keep their
		// batch arrival order — the tie rule Materialize and the cursor
		// share.
		ins := append([]Edge(nil), ov.ins...)
		if flip {
			for i := range ins {
				ins[i].Src, ins[i].Dst = ins[i].Dst, ins[i].Src
			}
		}
		sort.SliceStable(ins, func(i, j int) bool {
			if ins[i].Src != ins[j].Src {
				return ins[i].Src < ins[j].Src
			}
			return ins[i].Dst < ins[j].Dst
		})
		ds := append([]del(nil), dels...)
		if flip {
			for i := range ds {
				ds[i].s, ds[i].d = ds[i].d, ds[i].s
			}
		}
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].s != ds[j].s {
				return ds[i].s < ds[j].s
			}
			return ds[i].d < ds[j].d
		})

		touched := make(map[Node]struct{}, len(ins)+len(ds))
		for _, e := range ins {
			touched[e.Src] = struct{}{}
		}
		for _, d := range ds {
			touched[d.s] = struct{}{}
		}
		side.srcs = sortedNodes(touched)
		k := len(side.srcs)
		side.insOff = make([]int32, k+1)
		side.delOff = make([]int32, k+1)
		side.delSlots = make([]int32, k)
		side.entOff = make([]int64, k+1)
		side.insDst = make([]Node, 0, len(ins))
		if ov.weighted {
			side.insW = make([]uint32, 0, len(ins))
		}
		side.delDst = make([]Node, 0, len(ds))
		ii, di := 0, 0
		var slots int64
		for idx, v := range side.srcs {
			for ii < len(ins) && ins[ii].Src == v {
				side.insDst = append(side.insDst, ins[ii].Dst)
				if ov.weighted {
					side.insW = append(side.insW, ins[ii].Weight)
				}
				ii++
			}
			for di < len(ds) && ds[di].s == v {
				side.delDst = append(side.delDst, ds[di].d)
				side.delSlots[idx] += int32(baseCopies(v, ds[di].d))
				di++
			}
			slots += int64(side.delSlots[idx])
			side.insOff[idx+1] = int32(len(side.insDst))
			side.delOff[idx+1] = int32(len(side.delDst))
			side.entOff[idx+1] = side.entOff[idx] +
				int64(side.insOff[idx+1]-side.insOff[idx]) +
				int64(side.delOff[idx+1]-side.delOff[idx])
		}
		side.edges = baseEdges + int64(len(ins)) - slots
	}
	buildSide(&ov.out, ov.base.NumEdges(), false, ov.base.outCopies)
	if ov.base.HasIn() {
		buildSide(&ov.in, int64(len(ov.base.InEdges)), true, ov.base.inCopies)
	}
}

// inCopies is outCopies over the transpose (in-rows are sorted by source:
// BuildIn's counting sort visits sources in ascending order).
func (g *Graph) inCopies(d, s Node) int64 {
	row := g.InEdges[g.InOffsets[d]:g.InOffsets[d+1]]
	lo := sort.Search(len(row), func(i int) bool { return row[i] >= s })
	hi := sort.Search(len(row), func(i int) bool { return row[i] > s })
	return int64(hi - lo)
}

// Materialize merges the overlay into a plain CSR graph: per source, base
// edges in base order minus deleted pairs, with inserted copies merged in
// by destination (after surviving base copies of an equal pair). This is
// the compaction/checkpoint path, and — because ApplyUpdates rebuilds
// through it — the ordering oracle overlay cursors are conformance-tested
// against. The transpose and compressed forms are not built (the caller
// seals). O(V + E + |delta|).
func (ov *Overlay) Materialize() *Graph {
	base := ov.base
	n := base.NumNodes()
	g := &Graph{
		OutOffsets: make([]int64, n+1),
		OutEdges:   make([]Node, 0, ov.out.edges),
	}
	if ov.weighted {
		g.OutWeights = make([]uint32, 0, ov.out.edges)
	}
	ti := 0 // next touched index
	for v := 0; v < n; v++ {
		lo, hi := base.OutOffsets[v], base.OutOffsets[v+1]
		if ti >= len(ov.out.srcs) || ov.out.srcs[ti] != Node(v) {
			g.OutEdges = append(g.OutEdges, base.OutEdges[lo:hi]...)
			if ov.weighted {
				g.OutWeights = append(g.OutWeights, base.OutWeights[lo:hi]...)
			}
			g.OutOffsets[v+1] = int64(len(g.OutEdges))
			continue
		}
		ins := ov.out.insDst[ov.out.insOff[ti]:ov.out.insOff[ti+1]]
		var insW []uint32
		if ov.weighted {
			insW = ov.out.insW[ov.out.insOff[ti]:ov.out.insOff[ti+1]]
		}
		dels := ov.out.delDst[ov.out.delOff[ti]:ov.out.delOff[ti+1]]
		ti++
		di, ii := 0, 0
		for i := lo; i < hi; i++ {
			d := base.OutEdges[i]
			for di < len(dels) && dels[di] < d {
				di++
			}
			if di < len(dels) && dels[di] == d {
				continue // deleted copy
			}
			for ii < len(ins) && ins[ii] < d {
				g.OutEdges = append(g.OutEdges, ins[ii])
				if ov.weighted {
					g.OutWeights = append(g.OutWeights, insW[ii])
				}
				ii++
			}
			g.OutEdges = append(g.OutEdges, d)
			if ov.weighted {
				g.OutWeights = append(g.OutWeights, base.OutWeights[i])
			}
		}
		g.OutEdges = append(g.OutEdges, ins[ii:]...)
		if ov.weighted {
			g.OutWeights = append(g.OutWeights, insW[ii:]...)
		}
		g.OutOffsets[v+1] = int64(len(g.OutEdges))
	}
	return g
}

// OverlayAdj adapts one direction of an Overlay to the Adjacency seam over
// a chosen base representation (raw slices or compressed blocks). Base
// metadata — Base, Extent, ExtentRange, Compressed — keeps BASE semantics,
// because that is what charging consumes (the base block must be streamed
// and decoded whole regardless of the delta); merged semantics live in
// Degree, NumEdges and the Cursor. Operator edge indices come from
// Cursor.EI, never Base(v)+k, under the overlay ei contract.
type OverlayAdj struct {
	ov        *Overlay
	side      *ovSide
	base      Adjacency
	baseEdges int64 // the side's base edge count: ei base for inserts
}

// OutAdj returns the out-direction Adjacency over the raw or compressed
// base representation.
func (ov *Overlay) OutAdj(compressed bool) *OverlayAdj {
	var base Adjacency = ov.base.RawOut()
	if compressed {
		base = ov.base.CompressOut()
	}
	return &OverlayAdj{ov: ov, side: &ov.out, base: base, baseEdges: ov.base.NumEdges()}
}

// InAdj is OutAdj for the transpose; the base must have it built.
func (ov *Overlay) InAdj(compressed bool) *OverlayAdj {
	if !ov.base.HasIn() {
		panic("graph: overlay InAdj requires the base transpose")
	}
	var base Adjacency = ov.base.RawIn()
	if compressed {
		base = ov.base.CompressIn()
	}
	return &OverlayAdj{ov: ov, side: &ov.in, base: base, baseEdges: int64(len(ov.base.InEdges))}
}

func (a *OverlayAdj) NumNodes() int   { return a.base.NumNodes() }
func (a *OverlayAdj) NumEdges() int64 { return a.side.edges }
func (a *OverlayAdj) Degree(v Node) int64 {
	return a.side.degree(a.base.Degree(v), v)
}
func (a *OverlayAdj) Base(v Node) int64            { return a.base.Base(v) }
func (a *OverlayAdj) Extent(v Node) (int64, int64) { return a.base.Extent(v) }
func (a *OverlayAdj) ExtentRange(lo, hi Node) (int64, int64) {
	return a.base.ExtentRange(lo, hi)
}
func (a *OverlayAdj) Compressed() bool { return a.base.Compressed() }

// BaseDegree returns v's degree in the base alone (the decode charge of a
// compressed base block).
func (a *OverlayAdj) BaseDegree(v Node) int64 { return a.base.Degree(v) }

// DeltaExtent returns v's entry range in the side's delta array (both
// zero for untouched vertices) — the honest-charging counterpart of
// Extent for the overlay's own storage.
func (a *OverlayAdj) DeltaExtent(v Node) (int64, int64) {
	i := a.side.find(v)
	if i < 0 {
		return 0, 0
	}
	return a.side.entOff[i], a.side.entOff[i+1]
}

// DeltaExtentRange is DeltaExtent over the vertex range [lo, hi).
func (a *OverlayAdj) DeltaExtentRange(lo, hi Node) (int64, int64) {
	s := a.side
	i := sort.Search(len(s.srcs), func(k int) bool { return s.srcs[k] >= lo })
	j := sort.Search(len(s.srcs), func(k int) bool { return s.srcs[k] >= hi })
	return s.entOff[i], s.entOff[j]
}

// DeltaEntries returns the side's total delta entries (the length of the
// simulated delta array a runtime allocates for it).
func (a *OverlayAdj) DeltaEntries() int64 { return a.side.Entries() }

// Cursor returns the merged iterator: the base stream (raw or compressed)
// with deleted pairs filtered, merged against the sorted insert list by
// destination, base copies first on ties. EI tracks the overlay ei
// contract edge index of the last yielded neighbor.
func (a *OverlayAdj) Cursor(v Node) Cursor {
	c := a.base.Cursor(v)
	i := a.side.find(v)
	if i < 0 {
		return c
	}
	c.ov = true
	c.ovIns = a.side.insDst[a.side.insOff[i]:a.side.insOff[i+1]]
	c.ovInsEI = a.baseEdges + int64(a.side.insOff[i])
	c.ovDel = a.side.delDst[a.side.delOff[i]:a.side.delOff[i+1]]
	return c
}

// Validate checks overlay structural invariants (sorted touched lists,
// consistent offsets, edge accounting); it is a test/debug aid, not a hot
// path.
func (ov *Overlay) Validate() error {
	check := func(name string, s *ovSide, baseEdges int64) error {
		k := len(s.srcs)
		if len(s.insOff) != k+1 || len(s.delOff) != k+1 || len(s.entOff) != k+1 || len(s.delSlots) != k {
			return fmt.Errorf("graph: overlay %s side: inconsistent offset lengths", name)
		}
		var slots int64
		for i := 0; i < k; i++ {
			if i > 0 && s.srcs[i] <= s.srcs[i-1] {
				return fmt.Errorf("graph: overlay %s side: touched vertices not strictly sorted", name)
			}
			slots += int64(s.delSlots[i])
		}
		if got := baseEdges + int64(len(s.insDst)) - slots; got != s.edges {
			return fmt.Errorf("graph: overlay %s side: edge accounting %d != %d", name, got, s.edges)
		}
		return nil
	}
	if err := check("out", &ov.out, ov.base.NumEdges()); err != nil {
		return err
	}
	if ov.base.HasIn() {
		if err := check("in", &ov.in, int64(len(ov.base.InEdges))); err != nil {
			return err
		}
		if ov.in.edges != ov.out.edges {
			return fmt.Errorf("graph: overlay direction edge counts differ: out %d, in %d", ov.out.edges, ov.in.edges)
		}
	}
	return nil
}
