package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR format, little-endian:
//
//	magic   uint64  'P','M','G','R','C','S','R','1'
//	flags   uint64  bit0: weighted
//	nodes   uint64
//	edges   uint64
//	offsets (nodes+1) * int64
//	edges   edges * uint32
//	weights edges * uint32   (if weighted)
//
// This mirrors the on-disk CSR binaries the paper's Table 3 sizes refer to.
const csrMagic = 0x3152534352474d50 // "PMGRCSR1" little-endian

const flagWeighted = 1 << 0

// WriteCSR serializes g's out-direction to w.
func WriteCSR(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := [4]uint64{csrMagic, 0, uint64(g.NumNodes()), uint64(g.NumEdges())}
	if g.HasWeights() {
		hdr[1] |= flagWeighted
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := writeSlice(bw, g.OutOffsets); err != nil {
		return fmt.Errorf("graph: write offsets: %w", err)
	}
	if err := writeSlice(bw, g.OutEdges); err != nil {
		return fmt.Errorf("graph: write edges: %w", err)
	}
	if g.HasWeights() {
		if err := writeSlice(bw, g.OutWeights); err != nil {
			return fmt.Errorf("graph: write weights: %w", err)
		}
	}
	return bw.Flush()
}

// MaxCSRBytes caps the implied in-memory size of a deserialized graph
// (offsets + edges + weights). Table 3's largest input (wdc12) is ~2 TB of
// CSR; headers implying more than twice that are treated as corrupt or
// hostile rather than honored with a fatal allocation.
const MaxCSRBytes = int64(4) << 40

// impliedCSRBytes returns the bytes a header's node/edge counts commit us
// to allocating, or -1 on overflow.
func impliedCSRBytes(nodes uint64, edges uint64, weighted bool) int64 {
	offBytes := (nodes + 1) * 8
	edgeBytes := edges * 4
	if weighted {
		edgeBytes *= 2
	}
	total := offBytes + edgeBytes
	if offBytes/8 != nodes+1 || (edges > 0 && edgeBytes/edges < 4) || total < offBytes {
		return -1
	}
	if total > uint64(MaxCSRBytes) {
		return -1
	}
	return int64(total)
}

// ReadCSR deserializes a graph written by WriteCSR and validates it. A
// header whose node or edge counts imply an absurd allocation (overflow,
// node IDs beyond uint32, or more than MaxCSRBytes of CSR) is rejected
// before any slice is allocated, so a corrupt or hostile file produces an
// error instead of an OOM.
func ReadCSR(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: read header: %w", err)
		}
	}
	if hdr[0] != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1]&^uint64(flagWeighted) != 0 {
		return nil, fmt.Errorf("graph: unknown header flags %#x", hdr[1])
	}
	if hdr[2] > uint64(^uint32(0)) {
		return nil, fmt.Errorf("graph: node count %d exceeds 32-bit node IDs", hdr[2])
	}
	if impliedCSRBytes(hdr[2], hdr[3], hdr[1]&flagWeighted != 0) < 0 {
		return nil, fmt.Errorf("graph: header implies absurd size (nodes=%d edges=%d)", hdr[2], hdr[3])
	}
	nodes, edges := int(hdr[2]), int64(hdr[3])
	g := &Graph{}
	var err error
	if g.OutOffsets, err = readSlice[int64](br, int64(nodes)+1); err != nil {
		return nil, fmt.Errorf("graph: read offsets: %w", err)
	}
	if g.OutEdges, err = readSlice[uint32](br, edges); err != nil {
		return nil, fmt.Errorf("graph: read edges: %w", err)
	}
	if hdr[1]&flagWeighted != 0 {
		if g.OutWeights, err = readSlice[uint32](br, edges); err != nil {
			return nil, fmt.Errorf("graph: read weights: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readChunk is the element granularity of incremental deserialization:
// slices grow as data actually arrives, so a truncated file whose header
// claims terabytes errors out at EOF instead of committing the full
// claimed allocation up front.
const readChunk = 1 << 20

func readSlice[T int64 | uint32 | uint8](r io.Reader, n int64) ([]T, error) {
	out := make([]T, 0, min(n, readChunk))
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), readChunk)
		out = append(out, make([]T, c)...)
		if err := binary.Read(r, binary.LittleEndian, out[int64(len(out))-c:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// writeSlice is readSlice's serializer twin: binary.Write stages a whole
// reflect-built copy of its argument, so passing a full CSR slice doubles
// peak memory on large graphs. Writing in readChunk-sized pieces bounds
// the staging copy at one chunk.
func writeSlice[T int64 | uint32 | uint8](w io.Writer, s []T) error {
	for len(s) > 0 {
		c := min(int64(len(s)), readChunk)
		if err := binary.Write(w, binary.LittleEndian, s[:c]); err != nil {
			return err
		}
		s = s[c:]
	}
	return nil
}

// --- compressed (.csrz) form ---

// Binary compressed-CSR format, little-endian:
//
//	magic   uint64  'P','M','G','R','C','S','Z','1'
//	flags   uint64  bit0: weighted
//	nodes   uint64
//	edges   uint64
//	bytes   uint64  length of the block data
//	offsets (nodes+1) * int64   byte offsets into the block data
//	data    bytes               delta+varint blocks (see compressed.go)
//
// Degrees are the leading varint of each block, so the file is
// self-contained without an edge-offset array.
const csrzMagic = 0x315A534352474D50 // "PMGRCSZ1" little-endian

// WriteCSRZ serializes g's out-direction in compressed block form,
// encoding it first if the graph has no cached compressed form.
func WriteCSRZ(w io.Writer, g *Graph) error {
	z := g.CompressOut()
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := [5]uint64{csrzMagic, 0, uint64(z.NumNodes()), uint64(z.NumEdges()), uint64(len(z.Data))}
	if z.Weighted() {
		hdr[1] |= flagWeighted
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("graph: write csrz header: %w", err)
		}
	}
	if err := writeSlice(bw, z.ByteOffsets); err != nil {
		return fmt.Errorf("graph: write csrz offsets: %w", err)
	}
	if err := writeSlice(bw, z.Data); err != nil {
		return fmt.Errorf("graph: write csrz data: %w", err)
	}
	return bw.Flush()
}

// ReadCSRZ deserializes a graph written by WriteCSRZ, with the same
// hostile-header hardening as ReadCSR: headers implying absurd
// allocations (for the file's own arrays or for the decoded raw CSR) are
// rejected before anything is allocated, slices grow only as data
// arrives, and the varint stream is fully validated during decode. The
// returned graph holds both the raw form (kernels index it) and the
// compressed blocks (the compressed storage backend charges them).
func ReadCSRZ(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: read csrz header: %w", err)
		}
	}
	if hdr[0] != csrzMagic {
		return nil, fmt.Errorf("graph: bad csrz magic %#x", hdr[0])
	}
	if hdr[1]&^uint64(flagWeighted) != 0 {
		return nil, fmt.Errorf("graph: unknown csrz header flags %#x", hdr[1])
	}
	if hdr[2] > uint64(^uint32(0)) {
		return nil, fmt.Errorf("graph: csrz node count %d exceeds 32-bit node IDs", hdr[2])
	}
	nodes, edges, dataBytes := hdr[2], hdr[3], hdr[4]
	weighted := hdr[1]&flagWeighted != 0
	// The decoded raw CSR must itself be plausible: decoding materializes
	// offsets, edges, and weights.
	if impliedCSRBytes(nodes, edges, weighted) < 0 {
		return nil, fmt.Errorf("graph: csrz header implies absurd size (nodes=%d edges=%d)", nodes, edges)
	}
	// The file's own arrays must fit the cap too...
	offBytes := (nodes + 1) * 8
	if offBytes/8 != nodes+1 || offBytes+dataBytes < offBytes || offBytes+dataBytes > uint64(MaxCSRBytes) {
		return nil, fmt.Errorf("graph: csrz header implies absurd size (nodes=%d data=%d)", nodes, dataBytes)
	}
	// ...and the data cannot be shorter than its minimal encoding: one
	// degree byte per vertex plus one delta byte (and one weight byte)
	// per edge. impliedCSRBytes bounded nodes and edges, so no overflow.
	minData := nodes + edges
	if weighted {
		minData += edges
	}
	if dataBytes < minData {
		return nil, fmt.Errorf("graph: csrz data %d bytes cannot hold %d nodes, %d edges", dataBytes, nodes, edges)
	}
	byteOffs, err := readSlice[int64](br, int64(nodes)+1)
	if err != nil {
		return nil, fmt.Errorf("graph: read csrz offsets: %w", err)
	}
	for v := uint64(0); v < nodes; v++ {
		if byteOffs[v+1] < byteOffs[v] {
			return nil, fmt.Errorf("graph: csrz ByteOffsets not monotone at node %d", v)
		}
	}
	data, err := readSlice[uint8](br, int64(dataBytes))
	if err != nil {
		return nil, fmt.Errorf("graph: read csrz data: %w", err)
	}
	z := &CompressedCSR{
		n:           int(nodes),
		edges:       int64(edges),
		weighted:    weighted,
		ByteOffsets: byteOffs,
		Data:        data,
	}
	return z.Decode()
}
