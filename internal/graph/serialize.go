package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR format, little-endian:
//
//	magic   uint64  'P','M','G','R','C','S','R','1'
//	flags   uint64  bit0: weighted
//	nodes   uint64
//	edges   uint64
//	offsets (nodes+1) * int64
//	edges   edges * uint32
//	weights edges * uint32   (if weighted)
//
// This mirrors the on-disk CSR binaries the paper's Table 3 sizes refer to.
const csrMagic = 0x3152534352474d50 // "PMGRCSR1" little-endian

const flagWeighted = 1 << 0

// WriteCSR serializes g's out-direction to w.
func WriteCSR(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := [4]uint64{csrMagic, 0, uint64(g.NumNodes()), uint64(g.NumEdges())}
	if g.HasWeights() {
		hdr[1] |= flagWeighted
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.OutOffsets); err != nil {
		return fmt.Errorf("graph: write offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.OutEdges); err != nil {
		return fmt.Errorf("graph: write edges: %w", err)
	}
	if g.HasWeights() {
		if err := binary.Write(bw, binary.LittleEndian, g.OutWeights); err != nil {
			return fmt.Errorf("graph: write weights: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSR deserializes a graph written by WriteCSR and validates it.
func ReadCSR(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: read header: %w", err)
		}
	}
	if hdr[0] != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	nodes, edges := int(hdr[2]), int64(hdr[3])
	if nodes < 0 || edges < 0 {
		return nil, fmt.Errorf("graph: bad shape nodes=%d edges=%d", nodes, edges)
	}
	g := &Graph{
		OutOffsets: make([]int64, nodes+1),
		OutEdges:   make([]Node, edges),
	}
	if err := binary.Read(br, binary.LittleEndian, g.OutOffsets); err != nil {
		return nil, fmt.Errorf("graph: read offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.OutEdges); err != nil {
		return nil, fmt.Errorf("graph: read edges: %w", err)
	}
	if hdr[1]&flagWeighted != 0 {
		g.OutWeights = make([]uint32, edges)
		if err := binary.Read(br, binary.LittleEndian, g.OutWeights); err != nil {
			return nil, fmt.Errorf("graph: read weights: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
