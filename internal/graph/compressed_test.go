package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// csrzHeader serializes a compressed-CSR header with arbitrary fields.
func csrzHeader(magic, flags, nodes, edges, dataBytes uint64) []byte {
	var buf bytes.Buffer
	for _, v := range []uint64{magic, flags, nodes, edges, dataBytes} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	return buf.Bytes()
}

func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	hub := []Edge{}
	for d := Node(1); d < 40; d++ {
		hub = append(hub, Edge{Src: 0, Dst: d}, Edge{Src: d, Dst: (d + 1) % 40})
	}
	weighted := MustFromEdges(6, []Edge{
		{Src: 0, Dst: 3}, {Src: 3, Dst: 5}, {Src: 5, Dst: 0}, {Src: 2, Dst: 2},
	}, false, false)
	weighted.AddRandomWeights(1000, 3)
	return map[string]*Graph{
		"small":     smallGraph(),
		"hub":       MustFromEdges(40, hub, false, true),
		"weighted":  weighted,
		"empty":     MustFromEdges(5, nil, false, false),
		"singleton": MustFromEdges(1, []Edge{{Src: 0, Dst: 0}}, false, false),
	}
}

// TestCompressRoundTrip: encoding a graph and decoding the blocks must
// reproduce the adjacency (order included) and weights exactly.
func TestCompressRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			z := g.CompressOut()
			if z.NumNodes() != g.NumNodes() || z.NumEdges() != g.NumEdges() {
				t.Fatalf("shape: %d/%d, want %d/%d", z.NumNodes(), z.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			got, err := z.Decode()
			if err != nil {
				t.Fatalf("decoding freshly-encoded graph: %v", err)
			}
			if !bytes.Equal(nodeBytes(got.OutEdges), nodeBytes(g.OutEdges)) {
				t.Fatal("edge order not preserved through compression")
			}
			for v := 0; v < g.NumNodes(); v++ {
				if got.OutOffsets[v+1] != g.OutOffsets[v+1] {
					t.Fatalf("offsets diverge at %d", v)
				}
			}
			if g.HasWeights() {
				for i := range g.OutWeights {
					if g.OutWeights[i] != got.OutWeights[i] {
						t.Fatalf("weight %d = %d, want %d", i, got.OutWeights[i], g.OutWeights[i])
					}
				}
			}
			if z.Bytes() <= 0 {
				t.Fatal("non-positive compressed footprint")
			}
		})
	}
}

func nodeBytes(ns []Node) []byte {
	out := make([]byte, 4*len(ns))
	for i, n := range ns {
		binary.LittleEndian.PutUint32(out[4*i:], n)
	}
	return out
}

// TestCompressedCursorMatchesRaw walks every vertex through both
// adjacency forms and the early-exit Consumed accounting.
func TestCompressedCursorMatchesRaw(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			z := g.CompressOut()
			raw := g.RawOut()
			for v := Node(0); int(v) < g.NumNodes(); v++ {
				if z.Degree(v) != raw.Degree(v) || z.Base(v) != raw.Base(v) {
					t.Fatalf("vertex %d: degree/base mismatch", v)
				}
				rc, zc := raw.Cursor(v), z.Cursor(v)
				for {
					rd, rok := rc.Next()
					zd, zok := zc.Next()
					if rok != zok {
						t.Fatalf("vertex %d: cursor lengths diverge", v)
					}
					if !rok {
						break
					}
					if rd != zd {
						t.Fatalf("vertex %d: neighbor %d != %d", v, zd, rd)
					}
				}
				blo, bhi := z.Extent(v)
				if zc.Consumed() != bhi-blo {
					t.Fatalf("vertex %d: full scan consumed %d of %d block bytes", v, zc.Consumed(), bhi-blo)
				}
			}
		})
	}
}

func TestWriteReadCSRZRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteCSRZ(&buf, g); err != nil {
				t.Fatal(err)
			}
			h, err := ReadCSRZ(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
				t.Fatalf("shape changed: %d/%d -> %d/%d", g.NumNodes(), g.NumEdges(), h.NumNodes(), h.NumEdges())
			}
			if !bytes.Equal(nodeBytes(h.OutEdges), nodeBytes(g.OutEdges)) {
				t.Fatal("edges changed in round trip")
			}
			if g.HasWeights() != h.HasWeights() {
				t.Fatal("weight presence changed in round trip")
			}
			if h.CompressOut() == nil || h.CompressOut().NumEdges() != g.NumEdges() {
				t.Fatal("round-tripped graph lost its cached compressed form")
			}
		})
	}
}

func TestReadCSRZRejectsAbsurdHeaders(t *testing.T) {
	cases := map[string][]byte{
		"wrong-magic":   csrzHeader(csrMagic, 0, 4, 4, 64),
		"unknown-flags": csrzHeader(csrzMagic, 0xF0, 4, 4, 64),
		"huge-nodes":    csrzHeader(csrzMagic, 0, 1<<60, 4, 64),
		"wide-nodes":    csrzHeader(csrzMagic, 0, 1<<33, 4, 64),
		"huge-edges":    csrzHeader(csrzMagic, 0, 4, 1<<61, 64),
		"huge-data":     csrzHeader(csrzMagic, 0, 4, 4, 1<<61),
		"overflow":      csrzHeader(csrzMagic, flagWeighted, ^uint64(0), ^uint64(0), ^uint64(0)),
		// Data shorter than its minimal encoding (4 degree bytes + 8
		// edge bytes > 5).
		"short-data":      csrzHeader(csrzMagic, 0, 4, 8, 5),
		"truncated-magic": {0x50, 0x4d, 0x47},
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSRZ(bytes.NewReader(raw)); err == nil {
				t.Error("hostile csrz header accepted")
			}
		})
	}
}

func TestReadCSRZTruncatedAndCorruptBodies(t *testing.T) {
	g := smallGraph()
	var buf bytes.Buffer
	if err := WriteCSRZ(&buf, g); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	t.Run("truncated-offsets", func(t *testing.T) {
		if _, err := ReadCSRZ(bytes.NewReader(whole[:44])); err == nil {
			t.Error("truncated offsets accepted")
		}
	})
	t.Run("truncated-data", func(t *testing.T) {
		if _, err := ReadCSRZ(bytes.NewReader(whole[:len(whole)-1])); err == nil {
			t.Error("truncated data accepted")
		}
	})
	t.Run("huge-claim-empty-body", func(t *testing.T) {
		// A header claiming a billion edges over no body must fail at
		// EOF without committing the claimed allocation.
		raw := csrzHeader(csrzMagic, 0, 10, 1<<30, 1<<30+10)
		if _, err := ReadCSRZ(bytes.NewReader(raw)); err == nil {
			t.Fatal("truncated body accepted")
		} else if !strings.Contains(err.Error(), "offsets") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
	t.Run("non-monotone-offsets", func(t *testing.T) {
		raw := append([]byte(nil), whole...)
		// ByteOffsets start at byte 40; make offset[1] enormous.
		binary.LittleEndian.PutUint64(raw[40+8:], 1<<40)
		if _, err := ReadCSRZ(bytes.NewReader(raw)); err == nil {
			t.Error("non-monotone byte offsets accepted")
		}
	})
	t.Run("corrupt-varint-stream", func(t *testing.T) {
		// Flipping high bits in the block data yields blocks that do
		// not decode to their advertised extent or point out of range;
		// every such corruption must be rejected, never panic.
		dataStart := 40 + (g.NumNodes()+1)*8
		for i := dataStart; i < len(whole); i++ {
			raw := append([]byte(nil), whole...)
			raw[i] ^= 0x80
			if got, err := ReadCSRZ(bytes.NewReader(raw)); err == nil {
				// A flip may still decode to a *valid* graph (e.g. a
				// different small delta); it must then re-encode
				// consistently.
				if err := got.Validate(); err != nil {
					t.Fatalf("byte %d: accepted invalid graph: %v", i, err)
				}
			}
		}
	})
}

func TestFromEdgesRejectsOutOfRangeEndpoints(t *testing.T) {
	cases := map[string][]Edge{
		"src-eq-n":  {{Src: 4, Dst: 0}},
		"dst-eq-n":  {{Src: 0, Dst: 4}},
		"src-big":   {{Src: ^Node(0), Dst: 1}},
		"dst-big":   {{Src: 1, Dst: 1 << 30}},
		"mixed-bad": {{Src: 0, Dst: 1}, {Src: 9, Dst: 9}},
	}
	for name, edges := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := FromEdges(4, edges, false, false); err == nil {
				t.Error("out-of-range endpoint accepted")
			}
		})
	}
	t.Run("zero-nodes", func(t *testing.T) {
		if _, err := FromEdges(0, []Edge{{Src: 0, Dst: 0}}, false, false); err == nil {
			t.Error("edge into an empty graph accepted")
		}
		if g, err := FromEdges(0, nil, false, false); err != nil || g.NumNodes() != 0 {
			t.Errorf("empty graph rejected: %v", err)
		}
	})
	t.Run("negative-n", func(t *testing.T) {
		if _, err := FromEdges(-1, nil, false, false); err == nil {
			t.Error("negative node count accepted")
		}
	})
}

// TestCompressCacheInvalidation: mutations that change the encoded arrays
// must drop the cached compressed forms.
func TestCompressCacheInvalidation(t *testing.T) {
	g := smallGraph()
	z1 := g.CompressOut()
	if z1.Weighted() {
		t.Fatal("unweighted graph encoded as weighted")
	}
	g.AddRandomWeights(16, 1)
	z2 := g.CompressOut()
	if z2 == z1 || !z2.Weighted() {
		t.Fatal("AddRandomWeights did not invalidate the compressed cache")
	}
	g.BuildIn()
	zin := g.CompressIn()
	if zin.NumEdges() != g.NumEdges() || !zin.Weighted() {
		t.Fatal("CompressIn mismatched transpose")
	}
	g.DropIn()
	g.BuildIn()
	if g.CompressIn() == zin {
		t.Fatal("DropIn did not invalidate the in-direction cache")
	}
}
