package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the durable update log (WAL) encoding: the append-only,
// per-graph record stream the serving layer writes each update batch to
// BEFORE sealing the batch's epoch, and replays at boot to reconstruct the
// latest epoch from the last checkpoint snapshot. One record is one batch:
//
//	magic  uint32  "WAL1" little-endian
//	seq    uint64  1-based batch sequence number (contiguous)
//	count  uint32  updates in the batch (1 .. MaxWALBatch)
//	body   count × 13 bytes: op(1) src(4) dst(4) weight(4), little-endian
//	crc    uint32  CRC-32C over seq, count and body
//
// Recovery semantics (the crash-consistency contract): ReadLog returns
// every complete, checksummed, contiguous record from the front of the
// stream and STOPS at the first torn, truncated or corrupt one — a crash
// mid-append loses at most the batch being appended, never an earlier one.
// A torn tail is not an error; the caller re-persists the valid prefix.

// walMagic marks each record ("WAL1" read as little-endian uint32).
const walMagic uint32 = 0x314C4157

// MaxWALBatch caps the per-record update count, bounding the allocation a
// hostile or corrupt count field can demand (the same posture as
// MaxCSRBytes for snapshots).
const MaxWALBatch = 1 << 22

const (
	walHdrBytes   = 4 + 8 + 4 // magic, seq, count
	walEntryBytes = 13        // op, src, dst, weight
)

// AppendLog encodes one batch as a WAL record on w. seq is the 1-based
// batch sequence number; ReadLog verifies contiguity, so callers must
// increment it per appended batch.
func AppendLog(w io.Writer, seq uint64, ups []EdgeUpdate) error {
	if len(ups) == 0 {
		return fmt.Errorf("graph: refusing to log an empty update batch")
	}
	if len(ups) > MaxWALBatch {
		return fmt.Errorf("graph: update batch of %d exceeds the WAL record cap %d", len(ups), MaxWALBatch)
	}
	buf := make([]byte, walHdrBytes+len(ups)*walEntryBytes+4)
	binary.LittleEndian.PutUint32(buf[0:], walMagic)
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(ups)))
	p := walHdrBytes
	for _, u := range ups {
		buf[p] = byte(u.Op)
		binary.LittleEndian.PutUint32(buf[p+1:], uint32(u.Src))
		binary.LittleEndian.PutUint32(buf[p+5:], uint32(u.Dst))
		binary.LittleEndian.PutUint32(buf[p+9:], u.Weight)
		p += walEntryBytes
	}
	crc := crc32.Checksum(buf[4:p], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(buf[p:], crc)
	_, err := w.Write(buf)
	return err
}

// ReadLog decodes the valid record prefix of a WAL stream: the batches of
// every complete, checksummed record with contiguous sequence numbers
// (1, 2, ...). Decoding stops — without error — at EOF, at a torn or
// truncated tail, and at the first record whose magic, count bound,
// checksum, op codes or sequence number are wrong; everything before the
// stop point is returned. Only a non-EOF transport error is reported.
func ReadLog(r io.Reader) ([][]EdgeUpdate, error) {
	first, batches, err := ReadLogSeq(r)
	if len(batches) > 0 && first != 1 {
		// A log not starting at sequence 1 has no valid prefix under this
		// reader's contract.
		return nil, err
	}
	return batches, err
}

// ReadLogSeq is ReadLog for logs whose first record carries any sequence
// number: checkpointing leaves a log whose surviving records start at the
// snapshot's successor sequence, not at 1. It returns the first record's
// sequence number alongside the batches (first is 0 when no record
// survives); contiguity from that first sequence is still enforced.
func ReadLogSeq(r io.Reader) (first uint64, _ [][]EdgeUpdate, _ error) {
	var batches [][]EdgeUpdate
	hdr := make([]byte, walHdrBytes)
	var body []byte
	table := crc32.MakeTable(crc32.Castagnoli)
	var seq uint64
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return first, batches, nil
			}
			return first, batches, fmt.Errorf("graph: reading WAL record header: %w", err)
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != walMagic {
			return first, batches, nil
		}
		if recSeq := binary.LittleEndian.Uint64(hdr[4:]); seq == 0 {
			if recSeq == 0 {
				return first, batches, nil
			}
			first, seq = recSeq, recSeq
		} else if recSeq != seq {
			return first, batches, nil
		}
		count := binary.LittleEndian.Uint32(hdr[12:])
		if count == 0 || count > MaxWALBatch {
			return first, batches, nil
		}
		// Read the body in 1 MiB steps so a hostile count field only costs
		// memory the stream actually backs with bytes.
		need := int(count)*walEntryBytes + 4
		body = body[:0]
		torn := false
		for len(body) < need {
			grow := need - len(body)
			if grow > 1<<20 {
				grow = 1 << 20
			}
			off := len(body)
			body = append(body, make([]byte, grow)...)
			if _, err := io.ReadFull(r, body[off:off+grow]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					torn = true
					break
				}
				return first, batches, fmt.Errorf("graph: reading WAL record body: %w", err)
			}
		}
		if torn {
			return first, batches, nil
		}
		crc := crc32.Checksum(hdr[4:], table)
		crc = crc32.Update(crc, table, body[:need-4])
		if crc != binary.LittleEndian.Uint32(body[need-4:]) {
			return first, batches, nil
		}
		ups := make([]EdgeUpdate, count)
		ok := true
		for i := range ups {
			p := i * walEntryBytes
			op := UpdateOp(body[p])
			if op != OpInsert && op != OpDelete {
				ok = false
				break
			}
			ups[i] = EdgeUpdate{
				Op:     op,
				Src:    Node(binary.LittleEndian.Uint32(body[p+1:])),
				Dst:    Node(binary.LittleEndian.Uint32(body[p+5:])),
				Weight: binary.LittleEndian.Uint32(body[p+9:]),
			}
		}
		if !ok {
			return first, batches, nil
		}
		batches = append(batches, ups)
		seq++
	}
}
