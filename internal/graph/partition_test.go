package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// randomGraph builds a reproducible random multigraph-free digraph with
// weights and a transpose, the sealed shape the server partitions.
func randomGraph(t *testing.T, n, e int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]Node]bool{}
	var edges []Edge
	for len(edges) < e {
		s, d := Node(rng.Intn(n)), Node(rng.Intn(n))
		if seen[[2]Node{s, d}] {
			continue
		}
		seen[[2]Node{s, d}] = true
		edges = append(edges, Edge{Src: s, Dst: d})
	}
	g := MustFromEdges(n, edges, false, false)
	g.AddRandomWeights(64, uint64(seed)|1)
	g.BuildIn()
	return g
}

func TestPartitionRangesTileVertexSpace(t *testing.T) {
	g := randomGraph(t, 500, 3000, 1)
	for _, shards := range []int{1, 2, 3, 8, 499, 700} {
		p, err := NewPartition(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		next := Node(0)
		for i := 0; i < p.Shards(); i++ {
			r := p.RangeOf(i)
			if r.Lo != next {
				t.Fatalf("shards=%d: range %d starts at %d, want %d", shards, i, r.Lo, next)
			}
			if r.Hi < r.Lo {
				t.Fatalf("shards=%d: inverted range %d", shards, i)
			}
			next = r.Hi
			for v := r.Lo; v < r.Hi; v++ {
				if p.Owner(v) != i {
					t.Fatalf("shards=%d: owner(%d) = %d, want %d", shards, v, p.Owner(v), i)
				}
			}
		}
		if int(next) != g.NumNodes() {
			t.Fatalf("shards=%d: ranges cover [0,%d), want [0,%d)", shards, next, g.NumNodes())
		}
	}
}

// TestPartitionEdgesLandExactlyOnce is the scatter-set property: summing
// per-shard local edge counts reaches |E|, and each local row reproduces
// the source row of its global vertex — so every edge is in exactly one
// shard's scatter set, attached to its owner.
func TestPartitionEdgesLandExactlyOnce(t *testing.T) {
	g := randomGraph(t, 400, 5000, 7)
	p, err := NewPartition(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < p.Shards(); i++ {
		local := p.Local(i)
		r := p.RangeOf(i)
		if local.NumNodes() != int(r.Hi-r.Lo) {
			t.Fatalf("shard %d: local |V| = %d, want %d", i, local.NumNodes(), r.Hi-r.Lo)
		}
		total += local.NumEdges()
		for v := r.Lo; v < r.Hi; v++ {
			want := g.OutNeighbors(v)
			got := local.OutNeighbors(v - r.Lo)
			if len(got) != len(want) {
				t.Fatalf("shard %d vertex %d: degree %d, want %d", i, v, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("shard %d vertex %d edge %d: %d, want %d (global IDs)", i, v, k, got[k], want[k])
				}
			}
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("local edges sum to %d, want %d", total, g.NumEdges())
	}
}

func TestPartitionGhostTables(t *testing.T) {
	g := randomGraph(t, 300, 2500, 3)
	p, err := NewPartition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Shards(); i++ {
		r := p.RangeOf(i)
		ghosts := p.Ghosts(i)
		inTable := map[Node]bool{}
		for k, d := range ghosts {
			if d >= r.Lo && d < r.Hi {
				t.Fatalf("shard %d ghost %d is owned locally", i, d)
			}
			if k > 0 && ghosts[k-1] >= d {
				t.Fatalf("shard %d ghost table not sorted-unique at %d", i, k)
			}
			inTable[d] = true
		}
		// Every remote scatter target appears in the table.
		for v := r.Lo; v < r.Hi; v++ {
			for _, d := range g.OutNeighbors(v) {
				if (d < r.Lo || d >= r.Hi) && !inTable[d] {
					t.Fatalf("shard %d reaches %d but its ghost table misses it", i, d)
				}
			}
		}
	}
}

// csrBytes serializes every CSR array so the round-trip comparison is
// literally byte-for-byte.
func csrBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, arr := range []any{g.OutOffsets, g.OutEdges, g.OutWeights, g.InOffsets, g.InEdges, g.InWeights} {
		if err := binary.Write(&buf, binary.LittleEndian, arr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestPartitionReassembleRoundTrip(t *testing.T) {
	g := randomGraph(t, 350, 4000, 11)
	for _, shards := range []int{1, 2, 6, 13} {
		p, err := NewPartition(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Reassemble()
		if !bytes.Equal(csrBytes(t, got), csrBytes(t, g)) {
			t.Fatalf("shards=%d: reassembled CSR differs from source", shards)
		}
	}
}

func TestPartitionRejectsBadShardCount(t *testing.T) {
	g := randomGraph(t, 20, 50, 2)
	if _, err := NewPartition(g, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewPartition(g, -3); err == nil {
		t.Error("negative shards accepted")
	}
	// More shards than vertices clamps rather than fails.
	p, err := NewPartition(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() > g.NumNodes() {
		t.Errorf("shards = %d exceeds |V| = %d", p.Shards(), g.NumNodes())
	}
}
