package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func smallGraph() *Graph {
	// 0 -> 1,2 ; 1 -> 2 ; 2 -> 0 ; 3 isolated
	return MustFromEdges(4, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	}, false, false)
}

func TestFromEdgesBasic(t *testing.T) {
	g := smallGraph()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("out(0) = %v", got)
	}
	if g.OutDegree(3) != 0 {
		t.Errorf("isolated node degree = %d", g.OutDegree(3))
	}
}

func TestFromEdgesDedupe(t *testing.T) {
	g := MustFromEdges(3, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 1}, {Src: 1, Dst: 2},
	}, false, true)
	if g.NumEdges() != 2 {
		t.Errorf("deduped edges = %d, want 2 (dup + self-loop removed)", g.NumEdges())
	}
}

func TestFromEdgesSortsNeighbors(t *testing.T) {
	g := MustFromEdges(4, []Edge{
		{Src: 0, Dst: 3}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2},
	}, false, false)
	nb := g.OutNeighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] > nb[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
}

func TestBuildIn(t *testing.T) {
	g := smallGraph()
	g.BuildIn()
	if !g.HasIn() {
		t.Fatal("transpose missing")
	}
	if got := g.InNeighbors(2); len(got) != 2 {
		t.Errorf("in(2) = %v, want {0,1}", got)
	}
	if g.InDegree(3) != 0 {
		t.Errorf("in-degree(3) = %d", g.InDegree(3))
	}
	// Idempotent.
	before := &g.InEdges[0]
	g.BuildIn()
	if before != &g.InEdges[0] {
		t.Error("BuildIn rebuilt an existing transpose")
	}
	g.DropIn()
	if g.HasIn() {
		t.Error("DropIn did not drop")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	// Property: transposing twice recovers the original edge multiset.
	check := func(seed uint32) bool {
		n := int(seed%20) + 2
		var edges []Edge
		x := uint64(seed)*2654435761 + 1
		m := int(x % 60)
		for i := 0; i < m; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			edges = append(edges, Edge{Src: Node(x % uint64(n)), Dst: Node((x >> 32) % uint64(n))})
		}
		g := MustFromEdges(n, edges, false, false)
		g.BuildIn()
		// Count edges per (src,dst) in both directions.
		fwd := map[[2]Node]int{}
		for v := 0; v < n; v++ {
			for _, d := range g.OutNeighbors(Node(v)) {
				fwd[[2]Node{Node(v), d}]++
			}
		}
		for v := 0; v < n; v++ {
			for _, s := range g.InNeighbors(Node(v)) {
				fwd[[2]Node{s, Node(v)}]--
			}
		}
		for _, c := range fwd {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddRandomWeights(t *testing.T) {
	g := smallGraph()
	g.AddRandomWeights(100, 42)
	if !g.HasWeights() {
		t.Fatal("weights missing")
	}
	for i, w := range g.OutWeights {
		if w < 1 || w > 100 {
			t.Errorf("weight[%d] = %d out of [1,100]", i, w)
		}
	}
	// Deterministic per seed.
	h := smallGraph()
	h.AddRandomWeights(100, 42)
	for i := range g.OutWeights {
		if g.OutWeights[i] != h.OutWeights[i] {
			t.Fatal("weights not deterministic")
		}
	}
}

func TestWeightsConsistentWithTranspose(t *testing.T) {
	g := smallGraph()
	g.BuildIn()
	g.AddRandomWeights(50, 9)
	// AddRandomWeights rebuilds the transpose; each in-edge weight must
	// equal the corresponding out-edge weight.
	for v := 0; v < g.NumNodes(); v++ {
		ins := g.InNeighbors(Node(v))
		ws := g.InWeightsOf(Node(v))
		for i, s := range ins {
			found := false
			outs := g.OutNeighbors(s)
			wso := g.OutWeightsOf(s)
			for j, d := range outs {
				if d == Node(v) && wso[j] == ws[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("in-edge (%d->%d, w=%d) has no matching out-edge", s, v, ws[i])
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := smallGraph()
	g.OutEdges[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	h := smallGraph()
	h.OutOffsets[1] = 100
	if err := h.Validate(); err == nil {
		t.Error("broken offsets accepted")
	}
}

func TestMaxDegreeHelpers(t *testing.T) {
	g := MustFromEdges(5, []Edge{
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2},
	}, false, false)
	node, deg := g.MaxOutDegreeNode()
	if node != 2 || deg != 3 {
		t.Errorf("max out = node %d deg %d", node, deg)
	}
	if g.MaxInDegree() != 2 {
		t.Errorf("max in = %d", g.MaxInDegree())
	}
}

func TestCSRBytes(t *testing.T) {
	g := smallGraph()
	base := g.CSRBytes() // 5*8 + 4*4 = 56
	if base != 56 {
		t.Errorf("CSR bytes = %d, want 56", base)
	}
	g.AddRandomWeights(10, 1)
	if g.CSRBytes() != 72 {
		t.Errorf("weighted CSR bytes = %d, want 72", g.CSRBytes())
	}
	g.BuildIn()
	if g.CSRBytes() != 72+56+16 {
		t.Errorf("bidirectional CSR bytes = %d", g.CSRBytes())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := smallGraph()
	g.AddRandomWeights(30, 3)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch after round trip")
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, b := g.OutNeighbors(Node(v)), h.OutNeighbors(Node(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] || g.OutWeightsOf(Node(v))[i] != h.OutWeightsOf(Node(v))[i] {
				t.Fatalf("node %d edge %d mismatch", v, i)
			}
		}
	}
}

func TestSerializePropertyRoundTrip(t *testing.T) {
	check := func(seed uint32, weighted bool) bool {
		n := int(seed%15) + 1
		var edges []Edge
		x := uint64(seed) + 1
		for i := 0; i < int(x%40); i++ {
			x = x*6364136223846793005 + 1
			edges = append(edges, Edge{Src: Node(x % uint64(n)), Dst: Node((x >> 20) % uint64(n)), Weight: uint32(x%100) + 1})
		}
		g := MustFromEdges(n, edges, weighted, false)
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g); err != nil {
			return false
		}
		h, err := ReadCSR(&buf)
		if err != nil {
			return false
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() || h.HasWeights() != g.HasWeights() {
			return false
		}
		for i := range g.OutEdges {
			if g.OutEdges[i] != h.OutEdges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadCSRRejectsGarbage(t *testing.T) {
	if _, err := ReadCSR(bytes.NewReader([]byte("not a graph file at all........"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCSR(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEstimateDiameterShapes(t *testing.T) {
	// Path graph of length 50: diameter ~49.
	var edges []Edge
	for i := 0; i < 49; i++ {
		edges = append(edges, Edge{Src: Node(i), Dst: Node(i + 1)})
	}
	p := MustFromEdges(50, edges, false, false)
	if d := p.EstimateDiameter(); d < 45 {
		t.Errorf("path diameter = %d, want ~49", d)
	}
	// Star: diameter 2.
	var star []Edge
	for i := 1; i < 30; i++ {
		star = append(star, Edge{Src: 0, Dst: Node(i)}, Edge{Src: Node(i), Dst: 0})
	}
	s := MustFromEdges(30, star, false, false)
	if d := s.EstimateDiameter(); d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}
}

func TestProps(t *testing.T) {
	g := smallGraph()
	p := g.Props()
	if p.Nodes != 4 || p.Edges != 4 {
		t.Errorf("props shape: %+v", p)
	}
	if p.AvgDegree != 1.0 {
		t.Errorf("avg degree = %v", p.AvgDegree)
	}
	if p.MaxOutDegree != 2 || p.MaxInDegree != 2 {
		t.Errorf("max degrees: %+v", p)
	}
}
