package graph

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzReadCSR drives the binary-CSR deserializer with arbitrary bytes. The
// invariants: ReadCSR never panics and never commits an absurd allocation,
// and anything it accepts is a valid graph that survives a write/read
// round-trip unchanged.
func FuzzReadCSR(f *testing.F) {
	// Seed 1: a small valid unweighted graph.
	g := MustFromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}, false, true)
	var valid bytes.Buffer
	if err := WriteCSR(&valid, g); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	// Seed 2: a valid weighted graph.
	wg := MustFromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false, true)
	wg.AddRandomWeights(16, 42)
	var weighted bytes.Buffer
	if err := WriteCSR(&weighted, wg); err != nil {
		f.Fatal(err)
	}
	f.Add(weighted.Bytes())

	// Seed 3: truncated mid-body (header promises more than the file has).
	f.Add(valid.Bytes()[:len(valid.Bytes())-9])

	// Seed 4: truncated mid-header.
	f.Add(valid.Bytes()[:12])

	// Seed 5: hostile header — valid magic, node/edge counts implying
	// terabytes. Must be rejected before any allocation.
	hostile := make([]byte, 32)
	binary.LittleEndian.PutUint64(hostile[0:], csrMagic)
	binary.LittleEndian.PutUint64(hostile[8:], 0)
	binary.LittleEndian.PutUint64(hostile[16:], 1<<40) // nodes
	binary.LittleEndian.PutUint64(hostile[24:], 1<<50) // edges
	f.Add(hostile)

	// Seed 6: overflow bait — counts chosen so naive size math wraps.
	wrap := make([]byte, 32)
	binary.LittleEndian.PutUint64(wrap[0:], csrMagic)
	binary.LittleEndian.PutUint64(wrap[8:], flagWeighted)
	binary.LittleEndian.PutUint64(wrap[16:], ^uint64(0)>>1)
	binary.LittleEndian.PutUint64(wrap[24:], ^uint64(0)>>1)
	f.Add(wrap)

	// Seed 7: unknown flag bits.
	badflags := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint64(badflags[8:], 0xFF)
	f.Add(badflags)

	// Seed 8: weighted file truncated inside the weights section (header
	// promises a full weight array; the file ends mid-way through it).
	f.Add(weighted.Bytes()[:len(weighted.Bytes())-3])

	// Seed 9: flag-corrupted weighted file — the weighted bit stripped,
	// so the weight section becomes trailing garbage the reader must
	// ignore without misparsing.
	stripped := append([]byte(nil), weighted.Bytes()...)
	binary.LittleEndian.PutUint64(stripped[8:], 0)
	f.Add(stripped)

	// Seed 10: flag-corrupted unweighted file — the weighted bit set on
	// a file with no weight section, so the reader hits EOF reading
	// weights the header invented.
	invented := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint64(invented[8:], flagWeighted)
	f.Add(invented)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		// Accepted inputs must be internally consistent...
		if err := got.Validate(); err != nil {
			t.Fatalf("ReadCSR accepted a graph failing Validate: %v", err)
		}
		// ...and round-trip byte-identically through the serializer.
		var out bytes.Buffer
		if err := WriteCSR(&out, got); err != nil {
			t.Fatalf("re-serializing accepted graph: %v", err)
		}
		again, err := ReadCSR(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-serialized graph: %v", err)
		}
		if got.NumNodes() != again.NumNodes() || got.NumEdges() != again.NumEdges() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d nodes/edges",
				got.NumNodes(), got.NumEdges(), again.NumNodes(), again.NumEdges())
		}
	})
}

// FuzzReadCSRZ drives the compressed-CSR deserializer with arbitrary
// bytes: it must never panic or commit an absurd allocation, and anything
// it accepts must be a valid graph whose compressed form round-trips
// byte-identically (deterministic encoder over a canonical decode).
func FuzzReadCSRZ(f *testing.F) {
	// Seed 1: small valid unweighted graph.
	g := MustFromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}, false, true)
	var valid bytes.Buffer
	if err := WriteCSRZ(&valid, g); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	// Seed 2: valid weighted graph (weights interleaved in the blocks).
	wg := MustFromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false, true)
	wg.AddRandomWeights(300, 42)
	var weighted bytes.Buffer
	if err := WriteCSRZ(&weighted, wg); err != nil {
		f.Fatal(err)
	}
	f.Add(weighted.Bytes())

	// Seed 3/4: truncations mid-data and mid-header.
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	f.Add(valid.Bytes()[:17])

	// Seed 5: hostile header claiming terabytes of block data.
	hostile := make([]byte, 40)
	binary.LittleEndian.PutUint64(hostile[0:], csrzMagic)
	binary.LittleEndian.PutUint64(hostile[16:], 1<<20) // nodes
	binary.LittleEndian.PutUint64(hostile[24:], 1<<40) // edges
	binary.LittleEndian.PutUint64(hostile[32:], 1<<50) // data bytes
	f.Add(hostile)

	// Seed 6: weighted truncated inside the weight varints.
	f.Add(weighted.Bytes()[:len(weighted.Bytes())-1])

	// Seed 7: flag-corrupted — weighted bit stripped so the interleaved
	// weight varints misparse as deltas (must reject or decode to a
	// still-valid graph, never panic).
	stripped := append([]byte(nil), weighted.Bytes()...)
	binary.LittleEndian.PutUint64(stripped[8:], 0)
	f.Add(stripped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSRZ(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("ReadCSRZ accepted a graph failing Validate: %v", err)
		}
		var out bytes.Buffer
		if err := WriteCSRZ(&out, got); err != nil {
			t.Fatalf("re-serializing accepted graph: %v", err)
		}
		again, err := ReadCSRZ(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-serialized graph: %v", err)
		}
		if got.NumNodes() != again.NumNodes() || got.NumEdges() != again.NumEdges() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d nodes/edges",
				got.NumNodes(), got.NumEdges(), again.NumNodes(), again.NumEdges())
		}
		// The raw and compressed serializations must describe the same
		// graph: cross-decode through the raw format too.
		var raw bytes.Buffer
		if err := WriteCSR(&raw, got); err != nil {
			t.Fatalf("writing raw form of accepted graph: %v", err)
		}
		viaRaw, err := ReadCSR(bytes.NewReader(raw.Bytes()))
		if err != nil {
			t.Fatalf("reading raw form of accepted graph: %v", err)
		}
		if viaRaw.NumEdges() != got.NumEdges() {
			t.Fatalf("raw cross-decode changed edge count: %d -> %d", got.NumEdges(), viaRaw.NumEdges())
		}
	})
}

// FuzzReadLog drives the WAL decoder with arbitrary bytes, mirroring
// FuzzReadCSR's hostile-header posture: ReadLog never panics, never
// reports an error on plain corruption (it returns the valid prefix), and
// whatever it accepts re-encodes into a log that replays identically — so
// crash recovery's rewrite-the-valid-prefix step is a fixed point.
func FuzzReadLog(f *testing.F) {
	mkLog := func(batches [][]EdgeUpdate) []byte {
		var buf bytes.Buffer
		for i, b := range batches {
			if err := AppendLog(&buf, uint64(i+1), b); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	// Seed 1: a valid multi-record log.
	valid := mkLog([][]EdgeUpdate{
		{{Op: OpInsert, Src: 0, Dst: 1, Weight: 3}, {Op: OpDelete, Src: 2, Dst: 0}},
		{{Op: OpInsert, Src: 5, Dst: 5}},
	})
	f.Add(valid)

	// Seed 2/3: truncations mid-body and mid-header.
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:7])

	// Seed 4: hostile count — valid magic and sequence, count claiming the
	// full record cap backed by no bytes. Must not commit the allocation.
	hostile := make([]byte, walHdrBytes)
	binary.LittleEndian.PutUint32(hostile[0:], walMagic)
	binary.LittleEndian.PutUint64(hostile[4:], 1)
	binary.LittleEndian.PutUint32(hostile[12:], MaxWALBatch)
	f.Add(hostile)

	// Seed 5: count past the cap (4 GiB of entries).
	capped := append([]byte(nil), hostile...)
	binary.LittleEndian.PutUint32(capped[12:], ^uint32(0))
	f.Add(capped)

	// Seed 6: sequence gap after a valid record.
	gap := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(gap[len(valid)-4-walEntryBytes-walHdrBytes+4:], 9)
	f.Add(gap)

	// Seed 7: corrupt checksum on the final record.
	flip := append([]byte(nil), valid...)
	flip[len(flip)-1] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		batches, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadLog errored on in-memory bytes (must return the valid prefix): %v", err)
		}
		if len(batches) == 0 {
			return
		}
		// Accepted batches must re-encode into a log that replays
		// identically (the recovery rewrite path).
		var out bytes.Buffer
		for i, b := range batches {
			if err := AppendLog(&out, uint64(i+1), b); err != nil {
				t.Fatalf("re-encoding accepted batch %d: %v", i, err)
			}
		}
		again, err := ReadLog(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-encoded log: %v", err)
		}
		if !reflect.DeepEqual(batches, again) {
			t.Fatal("re-encoded log replays differently")
		}
	})
}
