package graph

import (
	"fmt"
	"sort"
)

// Partition is an edge-cut decomposition of a sealed CSR into contiguous
// vertex ranges, one per shard. Each shard's local graph holds the rebased
// out- (and, if the source has a transpose, in-) offsets of its owned
// vertices over edge slices that alias the source arrays, so partitioning
// is O(|V|) and copies no topology. Destination (and transpose source) IDs
// stay GLOBAL: a shard kernel iterates local rows but scatters to global
// vertex IDs, which is what makes the superstep exchange protocol work.
//
// Invariants (locked by the property tests):
//   - the ranges tile [0, |V|): every vertex is owned by exactly one shard;
//   - every edge lands in exactly one shard's scatter set (its source
//     owner's local out-edges);
//   - Reassemble reproduces the source CSR byte-for-byte.
type Partition struct {
	src    *Graph
	ranges []Range
	locals []*Graph
	ghosts [][]Node
}

// Range is one shard's owned vertex block [Lo, Hi).
type Range struct{ Lo, Hi Node }

// NewPartition cuts g into `shards` contiguous vertex ranges balanced by
// out-edge count (the OEC master assignment, the one D-Galois-style
// systems use for small shard counts). g must be sealed
// enough to partition: weights and the transpose are sliced if present,
// so seal them before partitioning if kernels will need them — locals
// alias the source arrays and never trigger their own BuildIn.
func NewPartition(g *Graph, shards int) (*Partition, error) {
	n := g.NumNodes()
	if shards <= 0 {
		return nil, fmt.Errorf("graph: shard count %d must be positive", shards)
	}
	if shards > n && n > 0 {
		shards = n
	}
	p := &Partition{
		src:    g,
		ranges: make([]Range, shards),
		locals: make([]*Graph, shards),
		ghosts: make([][]Node, shards),
	}

	// Contiguous blocks balanced by out-edges.
	perShard := g.NumEdges() / int64(shards)
	s := 0
	start := Node(0)
	acc := int64(0)
	for v := 0; v < n; v++ {
		acc += g.OutDegree(Node(v))
		if acc >= perShard*int64(s+1) && s < shards-1 {
			p.ranges[s] = Range{start, Node(v + 1)}
			start = Node(v + 1)
			s++
		}
	}
	for ; s < shards; s++ {
		p.ranges[s] = Range{start, Node(n)}
		start = Node(n)
	}

	for i := range p.locals {
		p.locals[i] = p.extract(p.ranges[i])
		p.ghosts[i] = p.ghostsOf(i)
	}
	return p, nil
}

// extract builds one shard's local graph: rebased offsets over aliased
// edge slices, global neighbor IDs.
func (p *Partition) extract(r Range) *Graph {
	g := p.src
	local := &Graph{
		OutOffsets: rebase(g.OutOffsets, r),
		OutEdges:   g.OutEdges[g.OutOffsets[r.Lo]:g.OutOffsets[r.Hi]],
	}
	if g.HasWeights() {
		local.OutWeights = g.OutWeights[g.OutOffsets[r.Lo]:g.OutOffsets[r.Hi]]
	}
	if g.HasIn() {
		// Pre-supplied transpose slice (global source IDs): HasIn() holds
		// on the local graph, so a runtime's BuildIn is a no-op — it must
		// never run, because a counting sort over global IDs would index
		// past the local offset arrays.
		local.InOffsets = rebase(g.InOffsets, r)
		local.InEdges = g.InEdges[g.InOffsets[r.Lo]:g.InOffsets[r.Hi]]
		if g.InWeights != nil {
			local.InWeights = g.InWeights[g.InOffsets[r.Lo]:g.InOffsets[r.Hi]]
		}
	}
	return local
}

// rebase returns offsets[lo..hi] shifted to start at zero.
func rebase(offsets []int64, r Range) []int64 {
	out := make([]int64, int(r.Hi-r.Lo)+1)
	base := offsets[r.Lo]
	for i := range out {
		out[i] = offsets[int(r.Lo)+i] - base
	}
	return out
}

// ghostsOf returns shard i's ghost table: the sorted unique remote
// vertices its scatter set can reach (out-edge destinations owned by
// other shards). These are the mirrors a distributed runtime would
// allocate proxies for, and the superstep exchange's upper bound.
func (p *Partition) ghostsOf(i int) []Node {
	r := p.ranges[i]
	seen := map[Node]struct{}{}
	for _, d := range p.src.OutEdges[p.src.OutOffsets[r.Lo]:p.src.OutOffsets[r.Hi]] {
		if d < r.Lo || d >= r.Hi {
			seen[d] = struct{}{}
		}
	}
	out := make([]Node, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Shards returns the shard count.
func (p *Partition) Shards() int { return len(p.ranges) }

// Source returns the partitioned source graph.
func (p *Partition) Source() *Graph { return p.src }

// NumNodes returns the source |V|.
func (p *Partition) NumNodes() int { return p.src.NumNodes() }

// RangeOf returns shard i's owned vertex block.
func (p *Partition) RangeOf(i int) Range { return p.ranges[i] }

// Local returns shard i's local graph.
func (p *Partition) Local(i int) *Graph { return p.locals[i] }

// Ghosts returns shard i's ghost (mirror) table.
func (p *Partition) Ghosts(i int) []Node { return p.ghosts[i] }

// Owner returns the shard owning v's master, by binary search over the
// range table.
func (p *Partition) Owner(v Node) int {
	lo, hi := 0, len(p.ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= p.ranges[mid].Hi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Reassemble reconstructs a CSR from the shard-local graphs alone (fresh
// arrays, no aliasing of the source), so the property tests can prove the
// partition lost nothing: the result must equal the source byte-for-byte.
func (p *Partition) Reassemble() *Graph {
	n := p.src.NumNodes()
	out := &Graph{OutOffsets: make([]int64, 1, n+1)}
	hasIn := p.src.HasIn()
	if hasIn {
		out.InOffsets = make([]int64, 1, n+1)
	}
	for _, local := range p.locals {
		eBase := out.OutOffsets[len(out.OutOffsets)-1]
		for _, off := range local.OutOffsets[1:] {
			out.OutOffsets = append(out.OutOffsets, eBase+off)
		}
		out.OutEdges = append(out.OutEdges, local.OutEdges...)
		if local.OutWeights != nil {
			out.OutWeights = append(out.OutWeights, local.OutWeights...)
		}
		if hasIn {
			iBase := out.InOffsets[len(out.InOffsets)-1]
			for _, off := range local.InOffsets[1:] {
				out.InOffsets = append(out.InOffsets, iBase+off)
			}
			out.InEdges = append(out.InEdges, local.InEdges...)
			if local.InWeights != nil {
				out.InWeights = append(out.InWeights, local.InWeights...)
			}
		}
	}
	return out
}
