package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/loadgen"
	"pmemgraph/internal/server"
)

// runFigServe executes the quick figServe sweep once and returns its
// records (without the trailing wall-time record).
func runFigServe(t *testing.T, traceOut string) []Record {
	t.Helper()
	resetInputs()
	t.Cleanup(resetInputs)
	sink := &Sink{}
	var buf bytes.Buffer
	if err := Run("figServe", Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf, Sink: sink, TraceOut: traceOut}); err != nil {
		t.Fatal(err)
	}
	var rows []Record
	for _, r := range sink.Records() {
		if r.Mode != "" {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		t.Fatalf("no figServe records collected\n%s", buf.String())
	}
	return rows
}

// TestFigServePriorityBoundsInteractiveTailLatency is the admission-control
// acceptance assertion: replaying the identical open-loop trace at the
// overloaded sweep point, per-class priority scheduling with interactive
// deadlines must keep the interactive p99 strictly below single-queue FIFO,
// and must not serve less within-SLO interactive goodput. The margin is
// structural, not a timing accident — under FIFO an interactive arrival
// waits behind the whole mixed backlog (including ~10x-heavier batch
// jobs), while priority drains interactive 4:1 and sheds doomed work at
// its deadline, bounding the tail near the SLO.
func TestFigServePriorityBoundsInteractiveTailLatency(t *testing.T) {
	if raceEnabled {
		t.Skip("figServe paces wall-clock arrivals; the race detector's ~15x slowdown distorts the sweep")
	}
	if testing.Short() {
		t.Skip("serving replays are slow")
	}
	rows := runFigServe(t, "")

	// The overloaded sweep point is the highest offered rate.
	maxOffered := 0.0
	for _, r := range rows {
		if r.OfferedRPS > maxOffered {
			maxOffered = r.OfferedRPS
		}
	}
	byMode := map[string]Record{}
	for _, r := range rows {
		if r.OfferedRPS == maxOffered && r.Class == server.ClassInteractive {
			byMode[r.Mode] = r
		}
	}
	fifo, ok := byMode["fifo"]
	if !ok {
		t.Fatalf("no fifo interactive record at %.0f rps: %+v", maxOffered, rows)
	}
	prio, ok := byMode["priority"]
	if !ok {
		t.Fatalf("no priority interactive record at %.0f rps: %+v", maxOffered, rows)
	}
	if prio.P99Ms >= fifo.P99Ms {
		t.Errorf("at overload (%.0f rps) priority interactive p99 = %.1fms is not strictly below fifo %.1fms",
			maxOffered, prio.P99Ms, fifo.P99Ms)
	}
	if prio.GoodputRPS < fifo.GoodputRPS {
		t.Errorf("at overload (%.0f rps) priority interactive goodput = %.1f rps fell below fifo %.1f rps",
			maxOffered, prio.GoodputRPS, fifo.GoodputRPS)
	}
	// Every interactive arrival is accounted for in every row: completed,
	// rejected or shed.
	for mode, r := range byMode {
		if got := r.Completed + r.Rejected + r.Shed; got != uint64(r.Events) {
			t.Errorf("%s interactive outcomes %d != events %d", mode, got, r.Events)
		}
	}
}

// TestGoldenFigServeJSON locks the figServe record stream for
// BENCH_figures.json: schema, row order (mode x class per sweep point) and
// the trace-derived event counts. Unlike the simulated-time goldens, every
// latency/goodput number here is wall-clock — so all load- and
// host-dependent fields are zeroed and the golden pins the deterministic
// skeleton: which rows exist, in what order, over which arrivals.
func TestGoldenFigServeJSON(t *testing.T) {
	if raceEnabled {
		t.Skip("golden bytes are determinism assertions; the race detector adds nothing but ~15x runtime")
	}
	if testing.Short() {
		t.Skip("serving replays are slow")
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	rows := runFigServe(t, tracePath)

	normalized := &Sink{}
	for _, rec := range rows {
		rec.OfferedRPS = 0
		rec.Completed = 0
		rec.Rejected = 0
		rec.Shed = 0
		rec.DeadlineMissed = 0
		rec.P50Ms = 0
		rec.P99Ms = 0
		rec.P999Ms = 0
		rec.GoodputRPS = 0
		rec.WallSeconds = 0
		normalized.Add(rec)
	}
	path := filepath.Join(t.TempDir(), "figserve.json")
	if err := normalized.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figserve_small_json.golden", got)

	// The TraceOut side channel round-trips through the loadgen parser and
	// matches the spec figServe generates from.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := loadgen.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	want := figServeSpec(true)
	if trace.Spec.Seed != want.Seed || trace.Spec.Rate != want.Rate || len(trace.Events) == 0 {
		t.Errorf("dumped trace spec = %+v with %d events", trace.Spec, len(trace.Events))
	}
}
