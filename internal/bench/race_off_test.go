//go:build !race

package bench

// raceEnabled reports whether the race detector is active; the golden-file
// tests skip under -race (they assert byte determinism, which the race
// detector cannot influence, and the harness runs ~15x slower under it).
const raceEnabled = false
