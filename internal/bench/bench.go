package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Options configures a harness run.
type Options struct {
	// Scale selects input/machine scale (gen.ScaleFull for the paper
	// harness, gen.ScaleSmall for quick runs and `go test -bench`).
	Scale gen.Scale
	// Quick trims sweeps (fewer apps/thread counts) for CI-speed runs.
	Quick bool
	// Out receives the formatted experiment output.
	Out io.Writer
	// Sink, when non-nil, collects machine-readable Records alongside the
	// table output: one wall-time record per experiment from Run, plus one
	// simulated-time record per kernel execution from the figure runners.
	Sink *Sink
	// TraceOut, when non-empty, makes figServe write its generated workload
	// trace (the replay input, versioned loadgen JSON) to this path so the
	// exact run can be replayed or inspected.
	TraceOut string

	// current is the experiment name Run is executing, stamped onto
	// records emitted by runners.
	current string
}

// record forwards a row to the sink (if any), stamping the experiment name.
func (o Options) record(r Record) {
	if o.Sink == nil {
		return
	}
	r.Experiment = o.current
	o.Sink.Add(r)
}

// Record is one machine-readable harness result: an experiment's wall time,
// or one kernel execution's simulated time within a figure.
type Record struct {
	Experiment string `json:"experiment"`
	Graph      string `json:"graph,omitempty"`
	App        string `json:"app,omitempty"`
	Algorithm  string `json:"algorithm,omitempty"`
	Framework  string `json:"framework,omitempty"`
	// Machine names the simulated platform for experiments that sweep
	// machines (figCompress, figStream); Backend the CSR storage backend
	// (raw/compressed) and BytesRead the simulated bytes read from the
	// graph's adjacency arrays, the figCompress comparison metric; Batch
	// the update-batch size of a figStream row (the incremental and full
	// variants of one batch share it and differ in Algorithm).
	Machine     string  `json:"machine,omitempty"`
	Backend     string  `json:"backend,omitempty"`
	BytesRead   uint64  `json:"bytes_read,omitempty"`
	Batch       int     `json:"batch,omitempty"`
	Threads     int     `json:"threads,omitempty"`
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// figServe fields: one record per (scheduling mode, offered load,
	// class). Mode is the scheduler shape (fifo/priority), Class the
	// workload class the row aggregates, OfferedRPS the open-loop arrival
	// rate, Events the class's arrivals in the trace. Completed/Rejected/
	// Shed partition the class's outcomes; DeadlineMissed counts jobs that
	// blew their SLO (completed late, shed, or rejected). The latency
	// percentiles are wall milliseconds from intended arrival to terminal
	// state, and GoodputRPS is within-SLO completions per wall second.
	Mode           string  `json:"mode,omitempty"`
	Class          string  `json:"class,omitempty"`
	OfferedRPS     float64 `json:"offered_rps,omitempty"`
	Events         int     `json:"events,omitempty"`
	Completed      uint64  `json:"completed,omitempty"`
	Rejected       uint64  `json:"rejected,omitempty"`
	Shed           uint64  `json:"shed,omitempty"`
	DeadlineMissed uint64  `json:"deadline_missed,omitempty"`
	P50Ms          float64 `json:"p50_ms,omitempty"`
	P99Ms          float64 `json:"p99_ms,omitempty"`
	P999Ms         float64 `json:"p999_ms,omitempty"`
	GoodputRPS     float64 `json:"goodput_rps,omitempty"`
	// figShard fields: one record per (app, shard count). Shards is the
	// BSP fan-out width, CrossBytes the cross-shard frontier bytes shipped
	// over the whole run, CommSeconds the simulated exchange time folded
	// into SimSeconds, Speedup the sim-time ratio vs the same app at
	// shards=1, and PerShardSeconds each shard machine's own wall clock
	// (compute plus the barriers it waited in).
	Shards          int       `json:"shards,omitempty"`
	CrossBytes      int64     `json:"cross_shard_bytes,omitempty"`
	CommSeconds     float64   `json:"comm_seconds,omitempty"`
	Speedup         float64   `json:"speedup_vs_one_shard,omitempty"`
	PerShardSeconds []float64 `json:"per_shard_seconds,omitempty"`
}

// Sink is a concurrency-safe Record collector backing BENCH_figures.json.
type Sink struct {
	mu      sync.Mutex
	records []Record
}

// Add appends one record.
func (s *Sink) Add(r Record) {
	s.mu.Lock()
	s.records = append(s.records, r)
	s.mu.Unlock()
}

// Records returns a copy of everything collected so far.
func (s *Sink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.records...)
}

// WriteJSON writes the collected records to path as an indented JSON array
// (the BENCH_figures.json format tracking the perf trajectory per PR). The
// write is atomic — a temp file in the target directory renamed over path —
// so an interrupted or failed run never leaves a truncated results file for
// CI artifact upload or trend tooling to misread.
func (s *Sink) WriteJSON(path string) error {
	if path == "" {
		return fmt.Errorf("bench: empty results path")
	}
	data, err := json.MarshalIndent(s.Records(), "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling records: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-json-*")
	if err != nil {
		return fmt.Errorf("bench: creating temp results file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("bench: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("bench: setting results mode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("bench: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("bench: publishing results: %w", err)
	}
	return nil
}

// Runner executes one experiment.
type Runner func(Options) error

var registry = map[string]struct {
	title string
	run   Runner
}{
	"table1": {"Table 1: Optane PMM bandwidth (GB/s)", Table1},
	"table2": {"Table 2: Optane PMM latency (ns)", Table2},
	"table3": {"Table 3: inputs and their key properties", Table3},
	"fig4a":  {"Figure 4a: NUMA-local write microbenchmark", Figure4a},
	"fig4b":  {"Figure 4b: interleaved vs blocked, 320GB", Figure4b},
	"fig5":   {"Figure 5: page size x NUMA migration (bfs)", Figure5},
	"fig6":   {"Figure 6: kernel/user breakdown (bfs)", Figure6},
	"fig7":   {"Figure 7: data-driven algorithms on Optane PMM", Figure7},
	"fig8":   {"Figure 8: data-driven algorithms on Entropy (DRAM)", Figure8},
	"fig9":   {"Figure 9: frameworks on Optane PMM", Figure9},
	"fig10":  {"Figure 10: strong scaling, DRAM vs Optane PMM", Figure10},
	"table4": {"Table 4: Optane PMM vs Stampede cluster (DM)", Table4},
	"fig11":  {"Figure 11: cluster/Optane configurations", Figure11},
	"table5": {"Table 5: GridGraph app-direct vs Galois memory mode", Table5},
	"figCompress": {"Compressed vs raw CSR backend: traffic and time across tiers",
		FigCompress},
	"figStream": {"Streaming updates: incremental vs full recomputation by batch size",
		FigStream},
	"figSeal": {"Epoch sealing: delta-overlay apply vs full CSR rebuild by batch size",
		FigSeal},
	"figServe": {"Serving under load: per-class tail latency and goodput vs offered load",
		FigServe},
	"figShard": {"Sharded BSP execution: sim-time, cross-shard traffic and speedup vs shard count",
		FigShard},
}

// Experiments returns the registered experiment names in run order.
func Experiments() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return orderKey(names[i]) < orderKey(names[j]) })
	return names
}

func orderKey(name string) string {
	// tables and figures interleave in paper order
	order := map[string]int{
		"table1": 1, "table2": 2, "table3": 3, "fig4a": 4, "fig4b": 5,
		"fig5": 6, "fig6": 7, "fig7": 8, "fig8": 9, "fig9": 10,
		"fig10": 11, "table4": 12, "fig11": 13, "table5": 14,
		"figCompress": 15, "figStream": 16, "figSeal": 17, "figServe": 18,
		"figShard": 19,
	}
	return fmt.Sprintf("%02d", order[name])
}

// Run executes the named experiment.
func Run(name string, opt Options) error {
	entry, ok := registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	if opt.Scale == 0 {
		opt.Scale = gen.ScaleSmall
	}
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	opt.current = name
	fmt.Fprintf(opt.Out, "=== %s ===\n", entry.title)
	start := time.Now()
	err := entry.run(opt)
	if err == nil {
		opt.record(Record{WallSeconds: time.Since(start).Seconds()})
	}
	return err
}

// Title returns the human title of an experiment.
func Title(name string) string { return registry[name].title }

// --- shared input cache ---

var inputCache = &sync.Map{} // key string -> *graph.Graph

// resetInputs drops the process-wide input cache. Cached graphs gain
// weights and transposes lazily as experiments touch them, so a runner's
// numbers can depend on which experiments ran earlier in the process; the
// golden-file tests reset the cache to pin each experiment's fresh-state
// bytes.
func resetInputs() { inputCache = &sync.Map{} }

// input returns the scaled stand-in for a paper input, cached per process
// (the generators are deterministic, so sharing is safe; kernels never
// mutate topology). The returned graph may gain weights/transpose as
// kernels require them.
func input(name string, scale gen.Scale) (*graph.Graph, gen.PaperRow) {
	key := fmt.Sprintf("%s@%d", name, scale)
	if v, ok := inputCache.Load(key); ok {
		g := v.(*graph.Graph)
		row, _ := gen.PaperInput(name)
		return g, row
	}
	g, row := gen.MustInput(name, scale)
	inputCache.Store(key, g)
	return g, row
}

// machines for the current scale.
func optaneMachine(scale gen.Scale) memsim.MachineConfig {
	return memsim.Scaled(memsim.OptaneMachine(), scale.Div())
}

func dramMachine(scale gen.Scale) memsim.MachineConfig {
	return memsim.Scaled(memsim.DRAMMachine(), scale.Div())
}

func entropyMachine(scale gen.Scale) memsim.MachineConfig {
	return memsim.Scaled(memsim.EntropyMachine(), scale.Div())
}

// table returns a tabwriter over the experiment output.
func table(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}
