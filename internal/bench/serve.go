package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/loadgen"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/server"
	"pmemgraph/internal/stats"
)

// figServe per-class SLOs (wall milliseconds from intended arrival to
// completion). The interactive SLO doubles as the request deadline in
// priority mode, so the scheduler sheds interactive work the moment it is
// doomed instead of queueing it to a useless completion.
const (
	figServeInteractiveSLOMS = 200
	figServeBatchSLOMS       = 1500
)

// figServeSpec is the open-loop workload figServe replays: a Zipf-skewed
// interactive cohort of cheap per-user bfs queries over the small web graph
// (each user probes their own source vertex) and a batch cohort of heavy
// whole-graph pr/cc jobs, 3:1 by weight. The trace is generated once per
// run and re-paced for each offered rate, so every sweep point replays the
// identical arrival sequence.
func figServeSpec(quick bool) loadgen.Spec {
	rate, duration := 150.0, 1.5
	if quick {
		rate, duration = 100.0, 0.8
	}
	return loadgen.Spec{
		Seed:     0x5E12F00D,
		Arrival:  loadgen.ArrivalSteady,
		Rate:     rate,
		Duration: duration,
		Cohorts: []loadgen.Cohort{
			{
				Name: "browsers", Class: server.ClassInteractive, Weight: 3,
				Users: 64, Graphs: []string{"web"}, Apps: []string{"bfs"},
				Threads: 8, DeadlineMS: figServeInteractiveSLOMS,
			},
			{
				Name: "analysts", Class: server.ClassBatch, Weight: 1,
				Users: 8, Graphs: []string{"kron"}, Apps: []string{"pr", "cc"},
				Threads: 16,
			},
		},
	}
}

// figServeClassMetrics aggregates one class's outcomes over one replay.
type figServeClassMetrics struct {
	events    int
	completed uint64
	rejected  uint64
	shed      uint64
	failed    uint64
	missed    uint64 // completed late, shed, or rejected
	good      uint64 // completed within the class SLO
	latencies []float64
}

func figServeSLO(class string) float64 {
	if class == server.ClassBatch {
		return figServeBatchSLOMS / 1e3
	}
	return figServeInteractiveSLOMS / 1e3
}

// figServeReplay paces the trace's virtual arrivals into one in-process
// serving instance at the offered rate (virtual time compressed or
// stretched by offered/trace-rate) and waits every admitted job to a
// terminal state. mode selects the scheduler shape: "fifo" is one shared
// queue with no deadlines — the pre-admission-control server — and
// "priority" is the weighted interactive/batch configuration with the
// interactive deadline attached to every interactive request. Latencies
// are measured open-loop, from each event's intended arrival instant, so
// a backlogged server keeps being charged for the queueing it causes.
func figServeReplay(machine memsim.MachineConfig, graphs map[string]*graph.Graph, trace *loadgen.Trace, mode string, offered float64) (map[string]*figServeClassMetrics, float64, error) {
	cfg := server.Config{Machine: machine, Workers: 1}
	switch mode {
	case "fifo":
		cfg.Classes = []server.ClassConfig{{Name: "fifo", Weight: 1, QueueCap: 512}}
	case "priority":
		cfg.Classes = []server.ClassConfig{
			{Name: server.ClassInteractive, Weight: 4, QueueCap: 256},
			{Name: server.ClassBatch, Weight: 1, QueueCap: 256},
		}
	default:
		return nil, 0, fmt.Errorf("bench: unknown figServe mode %q", mode)
	}
	srv := server.New(cfg)
	defer srv.Close()
	for name, g := range graphs {
		if _, err := srv.Registry().Add(name, "direct", g); err != nil {
			return nil, 0, fmt.Errorf("bench: registering %s: %w", name, err)
		}
	}

	metrics := map[string]*figServeClassMetrics{
		server.ClassInteractive: {},
		server.ClassBatch:       {},
	}
	speed := offered / trace.Spec.Rate
	webNodes := int(graphs["web"].NumNodes())
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	start := time.Now()
	for _, ev := range trace.Events {
		arrival := start.Add(time.Duration(float64(ev.ArrivalUS) * 1e3 / speed))
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		m := metrics[ev.Class]
		m.events++
		req := server.JobRequest{
			Graph:   ev.Graph,
			App:     ev.App,
			Threads: ev.Threads,
			NoCache: true, // measure executions, not cache hits
		}
		if ev.App == "bfs" {
			// Per-user query: each user probes their own source vertex.
			src := graph.Node(ev.User % webNodes)
			req.Params = &server.ParamOverrides{Source: &src}
		}
		if mode == "priority" {
			req.Class = ev.Class
			req.DeadlineMS = ev.DeadlineMS
		}
		job, err := srv.Submit(req)
		if err != nil {
			// Queue full (or closed): the request was turned away at the
			// door. No latency sample — the client learned instantly.
			m.rejected++
			m.missed++
			continue
		}
		wg.Add(1)
		go func(m *figServeClassMetrics, arrival time.Time, slo float64) {
			defer wg.Done()
			<-job.Done()
			lat := time.Since(arrival).Seconds()
			st := job.Status()
			mu.Lock()
			defer mu.Unlock()
			m.latencies = append(m.latencies, lat)
			switch st.State {
			case server.JobShed:
				m.shed++
				m.missed++
			case server.JobFailed:
				m.failed++
				m.missed++
			default:
				m.completed++
				if lat <= slo {
					m.good++
				} else {
					m.missed++
				}
			}
		}(m, arrival, figServeSLO(ev.Class))
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for class, m := range metrics {
		if m.failed > 0 {
			return nil, 0, fmt.Errorf("bench: %d %s jobs failed during replay", m.failed, class)
		}
	}
	return metrics, wall, nil
}

// FigServe measures the serving layer under open-loop temporal load: the
// same deterministic trace (Zipf-skewed interactive point queries plus
// heavy whole-graph batch jobs) is replayed against one in-process
// pmemserved instance at increasing offered rates, once with a single
// shared FIFO queue and once with per-class weighted priority queues and
// interactive deadlines. Offered rates are set relative to the measured
// single-worker service capacity, so "overload" means the same thing on
// every host. The experiment reports per-class p50/p99/p999 latency from
// intended arrival and within-SLO goodput — the admission-control claim is
// that at overload, priority scheduling keeps the interactive tail bounded
// (near its deadline) while FIFO lets batch occupancy push it toward the
// full drain time.
func FigServe(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Mode\tOffered\tClass\tEvents\tDone\tRej\tShed\tp50 (ms)\tp99 (ms)\tp999 (ms)\tGoodput (rps)")

	machine := optaneMachine(opt.Scale)
	// The interactive graph is small (point queries stay cheap); the batch
	// graph is deliberately ~10x heavier so a batch job occupying the
	// worker visibly delays FIFO interactive arrivals — the contrast the
	// experiment exists to measure.
	graphs := map[string]*graph.Graph{
		"web":  gen.WebCrawl(1500, 5, 60, 17),
		"kron": gen.Kron(13, 16, 5),
	}
	spec := figServeSpec(opt.Quick)
	trace, err := spec.Generate()
	if err != nil {
		return fmt.Errorf("bench: generating figServe trace: %w", err)
	}
	if opt.TraceOut != "" {
		data, err := trace.Marshal()
		if err != nil {
			return fmt.Errorf("bench: marshaling figServe trace: %w", err)
		}
		if err := os.WriteFile(opt.TraceOut, data, 0o644); err != nil {
			return fmt.Errorf("bench: writing figServe trace: %w", err)
		}
	}

	// Calibrate the offered-load axis: measure each job shape once and
	// take the trace-weighted mean service time as the single-worker
	// capacity. Multipliers below/above 1 are then genuine under/overload
	// regardless of host speed.
	classEvents := map[string]int{}
	for _, ev := range trace.Events {
		classEvents[ev.Class]++
	}
	costs := map[string]float64{}
	for gname, apps := range map[string][]string{"web": {"bfs"}, "kron": {"pr", "cc"}} {
		g := graphs[gname]
		params := frameworks.DefaultParams(g)
		for _, app := range apps {
			t0 := time.Now()
			if _, err := frameworks.Galois.RunOn(memsim.NewMachine(machine), g, app, 8, params); err != nil {
				return fmt.Errorf("bench: calibrating %s/%s: %w", gname, app, err)
			}
			costs[app] = time.Since(t0).Seconds()
		}
	}
	n := float64(len(trace.Events))
	meanCost := float64(classEvents[server.ClassInteractive])/n*costs["bfs"] +
		float64(classEvents[server.ClassBatch])/n*(costs["pr"]+costs["cc"])/2
	capacity := 1 / meanCost

	multipliers := []float64{0.5, 1.2, 2.5}
	if opt.Quick {
		multipliers = []float64{0.7, 2.5}
	}
	for _, mult := range multipliers {
		offered := mult * capacity
		for _, mode := range []string{"fifo", "priority"} {
			metrics, wall, err := figServeReplay(machine, graphs, trace, mode, offered)
			if err != nil {
				return err
			}
			for _, class := range []string{server.ClassInteractive, server.ClassBatch} {
				m := metrics[class]
				p50 := stats.Quantile(m.latencies, 0.50) * 1e3
				p99 := stats.Quantile(m.latencies, 0.99) * 1e3
				p999 := stats.Quantile(m.latencies, 0.999) * 1e3
				goodput := float64(m.good) / wall
				fmt.Fprintf(w, "%s\t%.0f/s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
					mode, offered, class, m.events, m.completed, m.rejected, m.shed,
					p50, p99, p999, goodput)
				opt.record(Record{
					Mode: mode, Class: class,
					OfferedRPS: offered, Events: m.events,
					Completed: m.completed, Rejected: m.rejected, Shed: m.shed,
					DeadlineMissed: m.missed,
					P50Ms:          p50, P99Ms: p99, P999Ms: p999,
					GoodputRPS: goodput,
				})
			}
		}
	}
	fmt.Fprintln(w, "(latencies are wall milliseconds from intended open-loop arrival; offered rates are multiples of the calibrated single-worker capacity; goodput counts within-SLO completions)")
	return w.Flush()
}
