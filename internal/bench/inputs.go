package bench

import (
	"fmt"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/stats"
)

// Table3 regenerates the input-property table, printing the scaled
// stand-ins next to the paper's originals. The properties the paper's
// findings rest on — |E|/|V| ratio and diameter class — must match; raw
// counts are scaled by design.
func Table3(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Input\t|V|\t|E|\t|E|/|V|\tmax Dout\tmax Din\tEst. diam\tCSR size\t(paper |V|, |E|/|V|, diam)")
	for _, name := range gen.InputNames() {
		g, row := input(name, opt.Scale)
		p := g.Props()
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\t%d\t%d\t%s\t(%dM, %d, %d)\n",
			name, p.Nodes, p.Edges, p.AvgDegree, p.MaxOutDegree, p.MaxInDegree,
			p.EstDiameter, stats.HumanBytes(p.CSRBytes),
			row.Nodes/1e6, row.AvgDegree, row.EstDiameter)
	}
	return w.Flush()
}
