package bench

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"pmemgraph/internal/gen"
)

// The determinism contract of the parallel simulator: simulated times,
// counters and all table output are byte-identical at GOMAXPROCS=1 and
// GOMAXPROCS=NumCPU. These tests run the fig7 + fig9 harness under both
// settings and compare the raw output.

// runFigureHarness regenerates fig7 and fig9 (Quick, ScaleSmall) and
// returns the concatenated table output.
func runFigureHarness(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	for _, exp := range []string{"fig7", "fig9"} {
		if err := Run(exp, Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	return buf.String()
}

func TestFigureHarnessDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig7+fig9 harness four times")
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	// Warm-up run: harness graphs are cached per process and gain weights
	// and transposes on first use, so the comparison runs all start from
	// the same (settled) graph state — exactly like repeated pmembench
	// invocations.
	runtime.GOMAXPROCS(1)
	runFigureHarness(t)

	seq1 := runFigureHarness(t)
	seq2 := runFigureHarness(t)
	if seq1 != seq2 {
		t.Fatalf("fig7+fig9 output differs between two GOMAXPROCS=1 runs:\n--- run1 ---\n%s\n--- run2 ---\n%s", seq1, seq2)
	}

	runtime.GOMAXPROCS(runtime.NumCPU())
	par := runFigureHarness(t)
	if seq1 != par {
		t.Fatalf("fig7+fig9 output differs between GOMAXPROCS=1 and GOMAXPROCS=%d:\n--- sequential ---\n%s\n--- parallel ---\n%s", runtime.NumCPU(), seq1, par)
	}
}

// TestParallelWallClockSpeedup encodes the perf acceptance bar for the
// goroutine-backed simulator: with >= 4 cores, the fig7 harness must run at
// least 2x faster in wall-clock at GOMAXPROCS=NumCPU than at GOMAXPROCS=1
// (with byte-identical output, asserted above). Skipped on smaller
// machines, where there is no parallel hardware to win on.
func TestParallelWallClockSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig7 harness three times")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure parallel speedup, have %d", runtime.NumCPU())
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	run := func() time.Duration {
		start := time.Now()
		if err := Run("fig7", Options{Scale: gen.ScaleSmall, Quick: true}); err != nil {
			t.Fatalf("fig7: %v", err)
		}
		return time.Since(start)
	}
	runtime.GOMAXPROCS(runtime.NumCPU())
	run() // warm the input cache outside either measurement
	par := run()
	runtime.GOMAXPROCS(1)
	seq := run()

	if seq < 2*par {
		t.Errorf("fig7 wall-clock: sequential %v, parallel %v — want >= 2x speedup at %d CPUs",
			seq, par, runtime.NumCPU())
	}
}
