package bench

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/stats"
)

// fig5Run executes Galois bfs once under the given machine/page/migration
// configuration and returns the result.
func fig5Run(g *graph.Graph, base memsim.MachineConfig, pageSize int64, migration bool, scale gen.Scale) *analytics.Result {
	cfg := base
	cfg.PageSize = pageSize
	cfg.NUMAMigration = migration
	src, _ := g.MaxOutDegreeNode()
	// Mean of 3 runs, matching §3 ("we present the mean of 3 runs").
	var agg *analytics.Result
	const runs = 3
	for i := 0; i < runs; i++ {
		m := memsim.NewMachine(cfg)
		opts := core.GaloisDefaults(96)
		opts.PageSize = pageSize
		r := core.MustNew(m, g, opts)
		res := analytics.BFSSparse(r, src)
		r.Close()
		if agg == nil {
			agg = res
		} else {
			agg.Seconds += res.Seconds
			agg.Counters.Add(res.Counters)
		}
	}
	agg.Seconds /= runs
	return agg
}

// Figure5 regenerates the page-size x migration study: bfs in Galois with
// 4 KB and 2 MB pages, NUMA migration on and off, on Optane PMM for all
// four graphs and on DRAM for the two DRAM-fitting graphs.
func Figure5(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Machine\tGraph\tPages\tMigr ON (s)\tMigr OFF (s)\tOFF gain")
	graphs := []string{"kron30", "clueweb12", "uk14", "wdc12"}
	if opt.Quick {
		graphs = []string{"kron30", "clueweb12"}
	}
	run := func(machine memsim.MachineConfig, names []string) {
		for _, name := range names {
			g, _ := input(name, opt.Scale)
			for _, ps := range []int64{memsim.PageSmall, memsim.PageHuge} {
				on := fig5Run(g, machine, ps, true, opt.Scale)
				off := fig5Run(g, machine, ps, false, opt.Scale)
				fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%.4f\t%s\n",
					machine.Name, name, pageName(ps), on.Seconds, off.Seconds,
					stats.Pct(on.Seconds, off.Seconds))
			}
		}
	}
	run(optaneMachine(opt.Scale), graphs)
	dramGraphs := []string{"kron30", "clueweb12"}
	if opt.Quick {
		dramGraphs = dramGraphs[:1]
	}
	run(dramMachine(opt.Scale), dramGraphs)
	fmt.Fprintln(w, "(paper: turning migration off gains up to 53% on 4KB pages; 2MB pages gain less)")
	return w.Flush()
}

// Figure6 regenerates the kernel/user time breakdown for the Figure 5
// kron30 and clueweb12 runs.
func Figure6(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Machine\tGraph\tPages\tMigration\tKernel (s)\tUser (s)\tTLB miss rate")
	for _, machine := range []memsim.MachineConfig{optaneMachine(opt.Scale), dramMachine(opt.Scale)} {
		for _, name := range []string{"kron30", "clueweb12"} {
			g, _ := input(name, opt.Scale)
			for _, ps := range []int64{memsim.PageSmall, memsim.PageHuge} {
				for _, mig := range []bool{true, false} {
					res := fig5Run(g, machine, ps, mig, opt.Scale)
					c := res.Counters
					total := c.UserNs + c.KernelNs
					wall := res.Seconds
					var kernel, user float64
					if total > 0 {
						kernel = wall * c.KernelNs / total
						user = wall * c.UserNs / total
					}
					fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%.4f\t%.4f\t%.1f%%\n",
						machine.Name, name, pageName(ps), onOff(mig), kernel, user, 100*c.TLBMissRate())
				}
			}
		}
	}
	fmt.Fprintln(w, "(paper: migrations add kernel time, more on Optane than DRAM; user time unchanged)")
	return w.Flush()
}

func pageName(ps int64) string {
	if ps == memsim.PageHuge {
		return "2MB"
	}
	return "4KB"
}

func onOff(b bool) string {
	if b {
		return "ON"
	}
	return "OFF"
}
