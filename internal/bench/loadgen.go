package bench

import "pmemgraph/internal/loadgen"

// JobSpec re-exports loadgen.JobSpec: one request of a generated serving
// workload. The generator proper lives in internal/loadgen (a leaf package
// below the serving layer) so that this package can drive internal/server
// in-process — figServe — while the server's own conformance tests keep
// replaying Workload specs without an import cycle.
type JobSpec = loadgen.JobSpec

// Workload forwards to loadgen.Workload, preserving the historical bench
// API for the harness and external callers.
func Workload(graphs []string, seed uint64, n, threads int) ([]JobSpec, error) {
	return loadgen.Workload(graphs, seed, n, threads)
}
