package bench

import (
	"fmt"
	"math"
	"time"

	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// figSealCompactDiv mirrors the serving registry's default compaction
// threshold (server.DefaultCompactDiv): an overlay is merged into a fresh
// CSR once it holds more than |E|/20 entries, so the O(E) merge amortizes
// over |E|/(20*batch) applied batches.
const figSealCompactDiv = 20

// FigSeal measures the real (wall-clock, not simulated) cost of sealing
// one update batch into a servable epoch — the serving layer's
// ApplyUpdates hot path — under three strategies:
//
//	rebuild          the old O(E) path: graph.ApplyUpdates builds a full
//	                 new CSR, then seal (weights/in/compression)
//	overlay          the delta-overlay path: Overlay.Apply folds the batch
//	                 in O(|delta| + batch·log d)
//	overlay+compact  overlay apply plus the amortized share of the O(E)
//	                 materialize+seal the background compactor pays once
//	                 per |E|/(div·batch) batches
//
// Outputs are byte-identical across strategies (ApplyUpdates IS
// ApplyOverlay().Materialize(), locked by the overlay conformance suite);
// this experiment exists to show the apply-path asymptotics that justify
// the overlay form: per-batch cost independent of |E| for small batches.
func FigSeal(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Graph\tBatch\tStrategy\tSeal (ms)\tvs rebuild")
	graphs := []string{"clueweb12", "rmat32"}
	batches := []int{16, 256, 4096}
	if opt.Quick {
		graphs = graphs[:1]
		batches = []int{16, 1024}
	}
	const reps = 5
	for _, gname := range graphs {
		g0, _ := input(gname, opt.Scale)
		sealLike(g0) // the registry serves sealed bases; start from one
		for _, batch := range batches {
			stream, err := gen.UpdateStream(g0, 1, batch, uint64(0x5EA1<<8)+uint64(batch), false)
			if err != nil {
				return fmt.Errorf("bench: generating %s batch of %d: %w", gname, batch, err)
			}
			ups := stream[0]

			rebuild, err := minSecs(reps, func() error {
				g1, _, err := graph.ApplyUpdates(g0, ups)
				if err != nil {
					return err
				}
				sealLike(g1)
				return nil
			})
			if err != nil {
				return fmt.Errorf("bench: rebuild %s batch of %d: %w", gname, batch, err)
			}
			ov0 := graph.NewOverlay(g0)
			overlay, err := minSecs(reps, func() error {
				_, _, err := ov0.Apply(ups)
				return err
			})
			if err != nil {
				return fmt.Errorf("bench: overlay %s batch of %d: %w", gname, batch, err)
			}
			// The compactor's O(E) merge, amortized over the batches an
			// overlay absorbs before crossing the |E|/div threshold.
			ov1, _, err := ov0.Apply(ups)
			if err != nil {
				return err
			}
			merge, err := minSecs(2, func() error {
				sealLike(ov1.Materialize())
				return nil
			})
			if err != nil {
				return err
			}
			perCompact := g0.NumEdges() / figSealCompactDiv / int64(batch)
			if perCompact < 1 {
				perCompact = 1
			}
			amortized := overlay + merge/float64(perCompact)

			for _, row := range []struct {
				strategy string
				secs     float64
			}{
				{"rebuild", rebuild},
				{"overlay", overlay},
				{"overlay+compact", amortized},
			} {
				vs := "-"
				if row.strategy != "rebuild" && row.secs > 0 {
					vs = fmt.Sprintf("%.0fx", rebuild/row.secs)
				}
				fmt.Fprintf(w, "%s\t%d\t%s\t%.4f\t%s\n",
					gname, batch, row.strategy, row.secs*1e3, vs)
				opt.record(Record{
					Graph: gname, Algorithm: row.strategy, Batch: batch,
					WallSeconds: row.secs,
				})
			}
		}
	}
	fmt.Fprintln(w, "(wall-clock per-batch epoch-seal cost; all strategies produce byte-identical epochs — overlay decouples apply cost from |E|)")
	return w.Flush()
}

// sealLike seals g exactly the way the serving registry does before a
// graph becomes an epoch: weights, in-CSR, both compressed forms.
func sealLike(g *graph.Graph) {
	if !g.HasWeights() {
		g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
	}
	g.BuildIn()
	g.CompressOut()
	g.CompressIn()
}

// minSecs times f reps times and returns the fastest run — the standard
// wall-clock denoiser for sub-millisecond operations.
func minSecs(reps int, f func() error) (float64, error) {
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}
