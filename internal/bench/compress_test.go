package bench

import (
	"bytes"
	"strings"
	"testing"

	"pmemgraph/internal/gen"
)

// TestFigCompressReducesSlowTierReads pins the acceptance criterion of
// the compressed backend: on at least one Table 3 generator it must cut
// the simulated adjacency (slow-tier CSR) read bytes by >= 25% relative
// to the raw backend, and figCompress must surface that in its records.
func TestFigCompressReducesSlowTierReads(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	resetInputs()
	t.Cleanup(resetInputs)
	sink := &Sink{}
	var buf bytes.Buffer
	if err := Run("figCompress", Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Backend") {
		t.Fatalf("figCompress table missing backend column:\n%s", buf.String())
	}

	// Pair raw/compressed records by (machine, graph, app).
	type key struct{ machine, graph, app string }
	raw := map[key]uint64{}
	zread := map[key]uint64{}
	for _, r := range sink.Records() {
		if r.Experiment != "figCompress" || r.BytesRead == 0 {
			continue
		}
		k := key{r.Machine, r.Graph, r.App}
		switch r.Backend {
		case "raw":
			raw[k] = r.BytesRead
		case "compressed":
			zread[k] = r.BytesRead
		}
	}
	if len(raw) == 0 || len(raw) != len(zread) {
		t.Fatalf("unpaired figCompress records: %d raw vs %d compressed", len(raw), len(zread))
	}
	best := 0.0
	bestGraph := ""
	for k, rb := range raw {
		zb, ok := zread[k]
		if !ok {
			t.Fatalf("no compressed twin for %+v", k)
		}
		if reduction := 1 - float64(zb)/float64(rb); reduction > best {
			best = reduction
			bestGraph = k.graph
		}
	}
	if best < 0.25 {
		t.Fatalf("best adjacency-read reduction %.1f%% (on %s); want >= 25%% on at least one generator", 100*best, bestGraph)
	}
	t.Logf("best adjacency-read reduction: %.1f%% on %s", 100*best, bestGraph)
}
