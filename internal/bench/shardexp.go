package bench

import (
	"fmt"

	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/shard"
	"pmemgraph/internal/stats"
)

// FigShard measures the sharded BSP engine inside one serving machine:
// the same round-based kernels at shard counts 1/2/4/8 over kron30 (the
// low-diameter input, where frontiers are wide enough for partitioned
// compute to dominate the exchange cost). Per row it reports simulated
// time, the exchange share, cross-shard frontier traffic, and the speedup
// against the single-shard run — the scaling story JobRequest.Shards buys
// a serving deployment, and the counterpart of Figure 11's cluster
// numbers at intra-machine exchange costs.
func FigShard(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Graph\tApp\tShards\tSim (s)\tComm (s)\tCross-shard MB\tSpeedup vs 1")
	const gname = "kron30"
	const threads = 16
	g, _ := input(gname, opt.Scale)
	sealForCluster(g)
	params := frameworks.DefaultParams(g)
	apps := []string{"bfs", "cc", "pr"}
	counts := []int{1, 2, 4, 8}
	if opt.Quick {
		apps = []string{"bfs", "pr"}
		counts = []int{1, 8}
	}
	base := map[string]float64{}
	for _, shards := range counts {
		part, err := graph.NewPartition(g, shards)
		if err != nil {
			return fmt.Errorf("figShard: partitioning %s into %d: %w", gname, shards, err)
		}
		e, err := shard.New(part, shard.ServingConfig(optaneMachine(opt.Scale), threads, core.BackendRaw))
		if err != nil {
			return fmt.Errorf("figShard: %d shards: %w", shards, err)
		}
		for _, app := range apps {
			res, err := distRun(e, app, params)
			if err != nil {
				e.Close()
				return fmt.Errorf("figShard %s/%d: %w", app, shards, err)
			}
			if shards == counts[0] {
				base[app] = res.Seconds
			}
			sp := stats.Speedup(base[app], res.Seconds)
			fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\t%.4f\t%.2f\t%s\n",
				gname, app, shards, res.Seconds, e.CommSeconds(),
				float64(e.BytesSent())/(1<<20), stats.Ratio(sp))
			opt.record(Record{
				Graph:           gname,
				App:             app,
				Algorithm:       res.Algorithm,
				Threads:         threads,
				Shards:          shards,
				SimSeconds:      res.Seconds,
				CommSeconds:     e.CommSeconds(),
				CrossBytes:      e.BytesSent(),
				Speedup:         sp,
				PerShardSeconds: e.PerShardSeconds(),
			})
		}
		e.Close()
	}
	fmt.Fprintln(w, "(each shard owns a contiguous range on its own machine; exchange via shared-memory interconnect)")
	return w.Flush()
}
