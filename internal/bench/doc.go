// Package bench is the experiment harness: one runner per table and
// figure in the paper's evaluation, each regenerating the corresponding
// rows or series on the simulated machines (see DESIGN.md §4 for the
// index), plus the repo's own experiments beyond the paper (figCompress:
// storage backends; figStream: streaming updates) and the deterministic
// serving-workload generator (Workload) behind the server conformance
// suite. It sits above frameworks/analytics as a pure driver layer.
//
// # Charging contract
//
// The harness charges nothing itself: every number it prints or records
// is either a kernel's simulated time/counters (charged by the layers
// below on a fresh machine per run) or an explicitly labeled host
// wall-clock duration (Record.WallSeconds, the only nondeterministic
// field in the -json output). Runners materialize lazy graph projections
// (weights, transposes) up front so a row never depends on which
// experiments ran earlier in the process.
//
// # Determinism guarantees
//
// Experiment tables and Record streams are byte-identical across
// GOMAXPROCS and goroutine interleavings — golden files under testdata/
// pin the fig7/fig9 bytes and the -json schema, and
// TestFigureHarnessDeterministicAcrossGOMAXPROCS locks the invariant —
// which is what makes BENCH_figures.json comparable across PRs.
package bench
