package bench

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pmemgraph/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// The golden files pin the exact ScaleSmall/Quick bytes of the fig7/fig9
// tables and the -json records: every number in them is simulated (and the
// simulation is deterministic at any GOMAXPROCS), so any drift — charging
// changes, formatting changes, record-schema changes — fails loudly here
// instead of silently shifting BENCH_figures.json between PRs. Regenerate
// deliberately with:
//
//	go test ./internal/bench -run TestGolden -update
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden bytes (-want +got):\n%s", name, diffLines(want, got))
	}
}

// diffLines renders a small line diff for golden mismatches.
func diffLines(want, got []byte) string {
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	n := len(wantLines)
	if len(gotLines) > n {
		n = len(gotLines)
	}
	shown := 0
	for i := 0; i < n && shown < 20; i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			fmt.Fprintf(&out, "line %d:\n-%s\n+%s\n", i+1, w, g)
			shown++
		}
	}
	if shown == 0 {
		return "(lengths differ only)"
	}
	return out.String()
}

func runGoldenExperiment(t *testing.T, name string, sink *Sink) []byte {
	t.Helper()
	if raceEnabled {
		t.Skip("golden bytes are determinism assertions; the race detector adds nothing but ~15x runtime")
	}
	// Hermetic run: earlier experiments in this process may have added
	// weights or transposes to the cached inputs, which changes simulated
	// footprints; the goldens pin the fresh-state bytes.
	resetInputs()
	t.Cleanup(resetInputs)
	var buf bytes.Buffer
	if err := Run(name, Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf, Sink: sink}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.Bytes()
}

func TestGoldenFig7Table(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	checkGolden(t, "fig7_small.golden", runGoldenExperiment(t, "fig7", nil))
}

func TestGoldenFig9Table(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	checkGolden(t, "fig9_small.golden", runGoldenExperiment(t, "fig9", nil))
}

// TestGoldenFiguresJSON locks the -json record stream (schema, record
// order and simulated values) for the fig7+fig9 subset. Wall-clock fields
// are the single nondeterministic part of the format, so they are zeroed
// before comparison; everything else must match exactly.
func TestGoldenFiguresJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	sink := &Sink{}
	runGoldenExperiment(t, "fig7", sink)
	runGoldenExperiment(t, "fig9", sink)

	normalized := &Sink{}
	for _, rec := range sink.Records() {
		rec.WallSeconds = 0
		normalized.Add(rec)
	}
	path := filepath.Join(t.TempDir(), "figures.json")
	if err := normalized.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figures_small_json.golden", got)
}
