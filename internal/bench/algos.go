package bench

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// algoStudy runs the Figure 7/8 algorithm comparison on the given machine:
// bfs {dense-wl, dir-opt, sparse-wl}, cc {dense-wl, labelprop-sc}, and
// sssp {dense-wl, delta-step} on rmat32, clueweb12 and wdc12.
func algoStudy(opt Options, machine memsim.MachineConfig, threads int) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Graph\tApp\tAlgorithm\tTime (s)\tRounds")
	graphs := []string{"rmat32", "clueweb12", "wdc12"}
	if opt.Quick {
		graphs = []string{"rmat32", "clueweb12"}
	}
	newRT := func(g *graph.Graph, weighted, both bool) *core.Runtime {
		m := memsim.NewMachine(machine)
		o := core.GaloisDefaults(threads)
		o.Weighted = weighted
		o.BothDirections = both
		if weighted && !g.HasWeights() {
			g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
		}
		return core.MustNew(m, g, o)
	}
	for _, name := range graphs {
		g, _ := input(name, opt.Scale)
		src, _ := g.MaxOutDegreeNode()

		runs := []struct {
			app string
			fn  func() *analytics.Result
		}{
			{"bfs", func() *analytics.Result {
				r := newRT(g, false, false)
				defer r.Close()
				return analytics.BFSDense(r, src)
			}},
			{"bfs", func() *analytics.Result {
				r := newRT(g, false, true)
				defer r.Close()
				return analytics.BFSDirOpt(r, src)
			}},
			{"bfs", func() *analytics.Result {
				r := newRT(g, false, false)
				defer r.Close()
				return analytics.BFSSparse(r, src)
			}},
			{"cc", func() *analytics.Result {
				r := newRT(g, false, true)
				defer r.Close()
				return analytics.CCLabelPropDense(r)
			}},
			{"cc", func() *analytics.Result {
				r := newRT(g, false, true)
				defer r.Close()
				return analytics.CCLabelPropSC(r)
			}},
			{"sssp", func() *analytics.Result {
				r := newRT(g, true, false)
				defer r.Close()
				return analytics.SSSPBellmanFordDense(r, src)
			}},
			{"sssp", func() *analytics.Result {
				r := newRT(g, true, false)
				defer r.Close()
				return analytics.SSSPDeltaStep(r, src, 64)
			}},
		}
		for _, run := range runs {
			res := run.fn()
			fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%d\n", name, run.app, res.Algorithm, res.Seconds, res.Rounds)
			opt.record(Record{Graph: name, App: run.app, Algorithm: res.Algorithm, Threads: threads, SimSeconds: res.Seconds})
		}
	}
	fmt.Fprintln(w, "(paper: dense/dir-opt wins on rmat32; sparse-wl, labelprop-sc, delta-step win on web crawls)")
	return w.Flush()
}

// Figure7 runs the algorithm study on the Optane PMM machine (96 threads).
func Figure7(opt Options) error {
	return algoStudy(opt, optaneMachine(opt.Scale), 96)
}

// Figure8 runs the same study on Entropy, the paper's 4-socket DRAM
// control machine restricted to 56 threads, showing the findings are not
// Optane-specific.
func Figure8(opt Options) error {
	return algoStudy(opt, entropyMachine(opt.Scale), 56)
}
