package bench

import (
	"fmt"

	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/stats"
)

// Figure9 regenerates the framework comparison on Optane PMM: GraphIt,
// GAP, GBBS and Galois across the benchmarks and the four large inputs.
// Omissions mirror the paper: GAP and GraphIt skip wdc12 (the real graph
// exceeds their signed 32-bit node IDs), GraphIt has no bc, GAP and
// GraphIt have no kcore.
func Figure9(opt Options) error {
	w := table(opt.Out)
	graphs := []string{"clueweb12", "uk14", "iso_m100", "wdc12"}
	apps := []string{"bc", "bfs", "cc", "pr", "sssp", "tc"}
	if opt.Quick {
		graphs = []string{"clueweb12"}
		apps = []string{"bfs", "cc", "sssp"}
	}
	fmt.Fprintln(w, "Graph\tApp\tGraphIt\tGAP\tGBBS\tGalois\t(seconds; - = not supported)")
	galoisWins := 0
	cells := 0
	var speedups []float64
	for _, gname := range graphs {
		g, row := input(gname, opt.Scale)
		params := frameworks.DefaultParams(g)
		for _, app := range apps {
			times := make(map[string]float64)
			line := fmt.Sprintf("%s\t%s", gname, app)
			for _, p := range frameworks.All() {
				cell := "-"
				// The paper-scale graph gates 32-bit frameworks,
				// not our scaled stand-in.
				tooBig := p.Signed32NodeIDs && row.Nodes > (1<<31)-1
				if p.Supports(app) && !tooBig {
					m := memsim.NewMachine(optaneMachine(opt.Scale))
					res, err := p.RunOn(m, g, app, 96, params)
					if err == nil {
						times[p.Name] = res.Seconds
						cell = fmt.Sprintf("%.4f", res.Seconds)
						opt.record(Record{Graph: gname, App: app, Algorithm: res.Algorithm, Framework: p.Name, Threads: 96, SimSeconds: res.Seconds})
					} else {
						cell = "err"
					}
				}
				line += "\t" + cell
			}
			fmt.Fprintln(w, line)
			if gt, ok := times["Galois"]; ok {
				best := true
				for name, t := range times {
					if name != "Galois" && t < gt {
						best = false
					}
					if name != "Galois" && t > 0 {
						speedups = append(speedups, t/gt)
					}
				}
				cells++
				if best {
					galoisWins++
				}
			}
		}
	}
	fmt.Fprintf(w, "Galois fastest in %d/%d cells; geomean speedup of Galois over others: %s\n",
		galoisWins, cells, stats.Ratio(stats.Geomean(speedups)))
	fmt.Fprintln(w, "(paper: Galois on average 3.8x vs GraphIt, 1.9x vs GAP, 1.6x vs GBBS)")
	return w.Flush()
}
