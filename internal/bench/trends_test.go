package bench

import (
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/shard"
)

// Paper-trend conformance: the qualitative Figure 7/9 claims as plain
// `go test` assertions over ScaleSmall inputs, so the trends survive every
// future change to the simulator or kernels — not just when someone eyeballs
// a regenerated figure. Graphs are generated fresh per test (the shared
// harness cache mutates inputs with weights/transposes).

// TestDirOptBeatsPushOnLowDiameter encodes Figure 7a's low-diameter half:
// direction-optimizing bfs must beat the push-only dense vertex program on
// a low-diameter power-law input (rmat32's stand-in), where pull rounds
// skip most of the frontier's edges.
func TestDirOptBeatsPushOnLowDiameter(t *testing.T) {
	g, _, err := gen.Input("rmat32", gen.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.MaxOutDegreeNode()
	machine := optaneMachine(gen.ScaleSmall)

	newRT := func(both bool) *core.Runtime {
		o := core.GaloisDefaults(96)
		o.BothDirections = both
		r := core.MustNew(memsim.NewMachine(machine), g, o)
		t.Cleanup(r.Close)
		return r
	}
	g.BuildIn() // settle the shared graph before either run
	dirOpt := analytics.BFSDirOpt(newRT(true), src)
	push := analytics.BFSDense(newRT(true), src)
	if dirOpt.Seconds >= push.Seconds {
		t.Errorf("dir-opt bfs (%.4fs) should beat push-only dense bfs (%.4fs) on low-diameter rmat32",
			dirOpt.Seconds, push.Seconds)
	}
}

// TestGaloisBeatsGraphItOnHighDiameterBFS encodes the Figure 9 framework
// ordering on its high-diameter half: Galois (sparse worklists, explicit
// huge pages, needed directions) must finish simulated bfs no slower than
// GraphIt (dense-only worklists, THP, both directions) on the clueweb12
// stand-in.
func TestGaloisBeatsGraphItOnHighDiameterBFS(t *testing.T) {
	g, _, err := gen.Input("clueweb12", gen.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	g.BuildIn() // settle: GraphIt's profile builds the transpose anyway
	params := frameworks.DefaultParams(g)
	machine := optaneMachine(gen.ScaleSmall)

	galois, err := frameworks.Galois.RunOn(memsim.NewMachine(machine), g, "bfs", 96, params)
	if err != nil {
		t.Fatal(err)
	}
	graphit, err := frameworks.GraphIt.RunOn(memsim.NewMachine(machine), g, "bfs", 96, params)
	if err != nil {
		t.Fatal(err)
	}
	if galois.Seconds > graphit.Seconds {
		t.Errorf("Galois bfs (%.4fs) should be no slower than GraphIt (%.4fs) on high-diameter clueweb12",
			galois.Seconds, graphit.Seconds)
	}
}

// TestMemoryModeBeatsUncachedOptaneOnPR encodes the premise under Figures
// 7/8 and Table 5: Optane in memory mode (DRAM as a near-memory cache)
// must beat the same workload running directly against uncached Optane
// media (app-direct placement) — here on pagerank, the most bandwidth-
// bound kernel. The input is kron30, whose footprint (~1/3 of near-memory)
// the DRAM cache holds almost entirely; at clueweb12's ~95% footprint the
// direct-mapped cache degrades toward media speed, which is the paper's
// conflict-miss finding, not this test's claim.
func TestMemoryModeBeatsUncachedOptaneOnPR(t *testing.T) {
	g, _, err := gen.Input("kron30", gen.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	g.BuildIn()
	const rounds = 8

	mm := core.GaloisDefaults(96)
	mm.BothDirections = true
	rMM := core.MustNew(memsim.NewMachine(optaneMachine(gen.ScaleSmall)), g, mm)
	t.Cleanup(rMM.Close)
	cached := analytics.PageRank(rMM, 0, rounds)

	ad := core.GaloisDefaults(96)
	ad.BothDirections = true
	ad.AppDirect = true
	rAD := core.MustNew(memsim.NewMachine(memsim.Scaled(memsim.AppDirectMachine(), gen.ScaleSmall.Div())), g, ad)
	t.Cleanup(rAD.Close)
	uncached := analytics.PageRank(rAD, 0, rounds)

	if cached.Seconds >= uncached.Seconds {
		t.Errorf("memory-mode pr (%.4fs) should beat uncached app-direct Optane pr (%.4fs)",
			cached.Seconds, uncached.Seconds)
	}
}

// TestShardSpeedupTrend pins the figShard claim: on a low-diameter input
// (kron30, wide frontiers) sharded BSP bfs at 8 shards must finish in at
// most half the simulated time of the identical kernel at 1 shard — the
// partitioned compute has to dominate the exchange term, or the sharded
// execution path buys a serving deployment nothing.
func TestShardSpeedupTrend(t *testing.T) {
	g, _, err := gen.Input("kron30", gen.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.MaxOutDegreeNode()
	machine := optaneMachine(gen.ScaleSmall)

	run := func(shards int) float64 {
		part, err := graph.NewPartition(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		e, err := shard.New(part, shard.ServingConfig(machine, 16, core.BackendRaw))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return e.BFS(src).Seconds
	}

	one := run(1)
	eight := run(8)
	if eight*2 > one {
		t.Errorf("8-shard bfs (%.4fs) should be at least 2x faster than 1 shard (%.4fs) on kron30",
			eight, one)
	}
}
