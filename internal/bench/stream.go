package bench

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// figStream pagerank parameters: the conformance tolerance with the same
// round cap figCompress uses, so the full-recompute baseline is a bounded,
// comparable run.
const (
	figStreamPRTol    = 1e-9
	figStreamPRRounds = 20
)

// FigStream measures the streaming-update path: after a batched edge
// update, how much cheaper is incremental recomputation seeded from the
// prior epoch than recomputing from scratch? For each update-batch size x
// kernel x machine it applies one insert-only batch (insert-only keeps cc
// on its union-find fast path; deletions force its documented fallback) to
// a Table 3 generator, runs the full kernel and the incremental kernel on
// the post-update graph on fresh machines, and reports both simulated
// times and their ratio. Outputs are bitwise identical between the two
// variants (locked by the analytics conformance suite); only the charging
// differs. The incremental win shrinks as batches grow — the structurally
// tainted region approaches the whole graph — which is exactly the
// GraphBolt-style trade the experiment exists to show.
func FigStream(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Machine\tGraph\tApp\tBatch\tVariant\tAlgorithm\tTime (s)\tvs full\tRounds")
	graphs := []string{"clueweb12", "rmat32"}
	batches := []int{16, 256, 4096}
	if opt.Quick {
		graphs = graphs[:1]
		batches = []int{16, 1024}
	}
	machines := []struct {
		name string
		cfg  memsim.MachineConfig
	}{
		{"DRAM", dramMachine(opt.Scale)},
		{"MemoryMode", optaneMachine(opt.Scale)},
	}
	const threads = 96
	newRT := func(cfg memsim.MachineConfig, g *graph.Graph) *core.Runtime {
		o := core.GaloisDefaults(threads)
		o.BothDirections = true // cc propagates symmetrically, pr pulls
		return core.MustNew(memsim.NewMachine(cfg), g, o)
	}
	for _, mc := range machines {
		for _, gname := range graphs {
			g0, _ := input(gname, opt.Scale)
			// Weights are materialized up front (as the serving registry's
			// seal does) so rows do not depend on which experiments ran
			// earlier in the process.
			if !g0.HasWeights() {
				g0.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
			}
			g0.BuildIn()
			// Prior-epoch artifacts, recorded once per (machine, graph) by
			// full runs on the pre-update graph (the serving layer's
			// steady state: some earlier job produced them).
			rt := newRT(mc.cfg, g0)
			priorCC := analytics.CCLabelPropSC(rt).Labels
			rt.Close()
			rt = newRT(mc.cfg, g0)
			_, prSeed := analytics.PageRankRecord(rt, figStreamPRTol, figStreamPRRounds)
			rt.Close()
			for _, batch := range batches {
				stream, err := gen.UpdateStream(g0, 1, batch, uint64(0x57AB<<8)+uint64(batch), false)
				if err != nil {
					return fmt.Errorf("bench: generating %s batch of %d: %w", gname, batch, err)
				}
				g1, delta, err := graph.ApplyUpdates(g0, stream[0])
				if err != nil {
					return fmt.Errorf("bench: applying %s batch of %d: %w", gname, batch, err)
				}
				g1.BuildIn()
				for _, app := range []string{"cc", "pr"} {
					var full, inc *analytics.Result
					switch app {
					case "cc":
						rt := newRT(mc.cfg, g1)
						full = analytics.CCLabelPropSC(rt)
						rt.Close()
						rt = newRT(mc.cfg, g1)
						inc = analytics.CCIncremental(rt, priorCC, &delta)
						rt.Close()
					case "pr":
						rt := newRT(mc.cfg, g1)
						full = analytics.PageRank(rt, figStreamPRTol, figStreamPRRounds)
						rt.Close()
						rt = newRT(mc.cfg, g1)
						inc, _ = analytics.PageRankIncremental(rt, prSeed, &delta, figStreamPRTol, figStreamPRRounds)
						rt.Close()
					}
					ratio := inc.Seconds / full.Seconds
					for _, row := range []struct {
						variant string
						res     *analytics.Result
						vsFull  string
					}{
						{"full", full, "-"},
						{"incremental", inc, fmt.Sprintf("%.2fx", ratio)},
					} {
						fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\t%s\t%.4f\t%s\t%d\n",
							mc.name, gname, app, batch, row.variant, row.res.Algorithm,
							row.res.Seconds, row.vsFull, row.res.Rounds)
						opt.record(Record{
							Graph: gname, App: app, Algorithm: row.res.Algorithm,
							Machine: mc.name, Batch: batch, Threads: threads,
							SimSeconds: row.res.Seconds,
						})
					}
				}
			}
		}
	}
	fmt.Fprintln(w, "(both variants compute bitwise-identical outputs on the post-update graph; incremental is seeded from the pre-update epoch's result and wins on small batches)")
	return w.Flush()
}
