package bench

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/stats"
)

// FigCompress compares the raw and byte-compressed CSR storage backends
// across the three memory tiers (DRAM main memory, Optane memory mode,
// uncached app-direct) on the Table 3 generators. The paper's kernels are
// bandwidth bound on the slow tier, so shrinking the adjacency stream
// trades cheap decode compute for scarce bytes: the table reports each
// run's simulated time, the bytes read from the graph's adjacency arrays
// (the slow-tier CSR stream compression targets; per-vertex label gathers
// are backend-independent and reported in the total), the compressed
// run's adjacency-read reduction against its raw twin, and the resident
// CSR footprint of both forms. Kernel results are byte-identical between
// the backends (asserted by the analytics conformance suite); only
// traffic and time move.
func FigCompress(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Machine\tGraph\tApp\tAlgorithm\tBackend\tTime (s)\tAdj read\tvs raw\tTotal read\tCSR size")
	graphs := []string{"rmat32", "clueweb12", "uk14"}
	apps := []string{"bfs", "pr", "sssp"}
	if opt.Quick {
		graphs = graphs[:2]
		apps = apps[:2]
	}
	machines := []struct {
		name      string
		cfg       memsim.MachineConfig
		appDirect bool
	}{
		{"DRAM", dramMachine(opt.Scale), false},
		{"MemoryMode", optaneMachine(opt.Scale), false},
		{"AppDirect", memsim.Scaled(memsim.AppDirectMachine(), opt.Scale.Div()), true},
	}
	const threads = 96
	for _, mc := range machines {
		for _, gname := range graphs {
			g, _ := input(gname, opt.Scale)
			// Weights are materialized up front (as the serving layer's
			// seal does) so every row measures the same graph: adding
			// them mid-sweep would re-encode the compressed blocks and
			// make rows depend on app order.
			if !g.HasWeights() {
				g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
			}
			src, _ := g.MaxOutDegreeNode()
			for _, app := range apps {
				weighted := app == "sssp"
				var rawRead uint64
				for _, backend := range []core.Backend{core.BackendRaw, core.BackendCompressed} {
					m := memsim.NewMachine(mc.cfg)
					o := core.GaloisDefaults(threads)
					o.Weighted = weighted
					o.BothDirections = app != "sssp"
					o.AppDirect = mc.appDirect
					o.Backend = backend
					r := core.MustNew(m, g, o)
					var res *analytics.Result
					switch app {
					case "bfs":
						res = analytics.BFSDirOpt(r, src)
					case "pr":
						res = analytics.PageRank(r, analytics.PRDefaultTolerance, 20)
					case "sssp":
						res = analytics.SSSPDeltaStep(r, src, 64)
					}
					footprint := r.FootprintBytes()
					adjRead := r.TopologyReadBytes()
					r.Close()
					delta := "-"
					if backend == core.BackendRaw {
						rawRead = adjRead
					} else if rawRead > 0 {
						delta = fmt.Sprintf("%+.1f%%", 100*(float64(adjRead)/float64(rawRead)-1))
					}
					fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.4f\t%s\t%s\t%s\t%s\n",
						mc.name, gname, app, res.Algorithm, backend,
						res.Seconds, stats.HumanBytes(int64(adjRead)), delta,
						stats.HumanBytes(int64(res.Counters.BytesRead)),
						stats.HumanBytes(footprint))
					opt.record(Record{
						Graph: gname, App: app, Algorithm: res.Algorithm,
						Machine: mc.name, Backend: backend.String(),
						BytesRead: adjRead, Threads: threads, SimSeconds: res.Seconds,
					})
				}
			}
		}
	}
	fmt.Fprintln(w, "(adjacency reads are the slow-tier CSR stream; compression trades per-edge decode compute for that bandwidth, and results are byte-identical across backends)")
	return w.Flush()
}
