package bench

import (
	"fmt"

	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/memsim"
)

// Figure10 regenerates the strong-scaling study: every benchmark in Galois
// on kron30 and clueweb12, sweeping thread counts on both DDR4 DRAM and
// Optane PMM (memory mode).
func Figure10(opt Options) error {
	w := table(opt.Out)
	threadCounts := []int{6, 12, 24, 48, 96}
	apps := frameworks.Apps()
	if opt.Quick {
		threadCounts = []int{12, 48, 96}
		apps = []string{"bfs", "pr", "sssp"}
	}
	fmt.Fprintln(w, "Graph\tApp\tThreads\tOptane PMM (s)\tDDR4 DRAM (s)\tPMM/DRAM")
	for _, gname := range []string{"kron30", "clueweb12"} {
		g, _ := input(gname, opt.Scale)
		params := frameworks.DefaultParams(g)
		for _, app := range apps {
			for _, threads := range threadCounts {
				om := memsim.NewMachine(optaneMachine(opt.Scale))
				ores, err := frameworks.Galois.RunOn(om, g, app, threads, params)
				if err != nil {
					return fmt.Errorf("fig10 %s/%s optane: %w", gname, app, err)
				}
				dm := memsim.NewMachine(dramMachine(opt.Scale))
				dres, err := frameworks.Galois.RunOn(dm, g, app, threads, params)
				if err != nil {
					return fmt.Errorf("fig10 %s/%s dram: %w", gname, app, err)
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\t%.4f\t%.2fx\n",
					gname, app, threads, ores.Seconds, dres.Seconds, ores.Seconds/dres.Seconds)
				opt.record(Record{Graph: gname, App: app, Algorithm: "galois/optane", Threads: threads, SimSeconds: ores.Seconds})
				opt.record(Record{Graph: gname, App: app, Algorithm: "galois/dram", Threads: threads, SimSeconds: dres.Seconds})
			}
		}
	}
	fmt.Fprintln(w, "(paper: kron30 nearly identical on PMM and DRAM; clueweb12 averages +7.3% on PMM at 96 threads)")
	return w.Flush()
}
