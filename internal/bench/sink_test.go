package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSinkWriteJSONAtomic(t *testing.T) {
	sink := &Sink{}
	sink.Add(Record{Experiment: "fig7", Graph: "rmat32", App: "bfs", SimSeconds: 1.5})
	sink.Add(Record{Experiment: "fig7", WallSeconds: 0.25})

	dir := t.TempDir()
	path := filepath.Join(dir, "figures.json")
	if err := sink.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(records) != 2 || records[0].Graph != "rmat32" {
		t.Errorf("records = %+v", records)
	}
	if data[len(data)-1] != '\n' {
		t.Error("output missing trailing newline")
	}

	// Rewrite over the existing file (the partial-run snapshot path).
	sink.Add(Record{Experiment: "fig9"})
	if err := sink.WriteJSON(path); err != nil {
		t.Fatal(err)
	}

	// No temp files may survive either write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".bench-json-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want only figures.json", len(entries))
	}
}

func TestSinkWriteJSONEmptyPath(t *testing.T) {
	sink := &Sink{}
	if err := sink.WriteJSON(""); err == nil {
		t.Error("empty path accepted")
	}
}

func TestSinkWriteJSONUnwritableDir(t *testing.T) {
	sink := &Sink{}
	sink.Add(Record{Experiment: "fig7"})
	missing := filepath.Join(t.TempDir(), "does", "not", "exist", "figures.json")
	if err := sink.WriteJSON(missing); err == nil {
		t.Error("missing directory accepted")
	}

	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	if err := sink.WriteJSON(filepath.Join(dir, "figures.json")); err == nil {
		t.Error("read-only directory accepted")
	}
}

// TestSinkWriteJSONDoesNotTruncateOnFailure pins the atomicity property:
// when the write cannot complete, the previous results file survives
// intact instead of being truncated in place.
func TestSinkWriteJSONPreservesOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "figures.json")
	sink := &Sink{}
	sink.Add(Record{Experiment: "fig7"})
	if err := sink.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	sink.Add(Record{Experiment: "fig9"})
	if err := sink.WriteJSON(path); err == nil {
		t.Fatal("write into read-only dir succeeded")
	}
	os.Chmod(dir, 0o700)
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed write modified the existing results file")
	}
}
