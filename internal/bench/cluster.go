package bench

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/shard"
	"pmemgraph/internal/stats"
)

// clusterApps are the Table 4 / Figure 11 benchmarks (no tc: D-Galois'
// distributed triangle counting is a separate system, DistTC).
var clusterApps = []string{"bc", "bfs", "cc", "kcore", "pr", "sssp"}

// distRun dispatches one app on a cluster-preset shard engine.
func distRun(e *shard.Engine, app string, params frameworks.Params) (*analytics.Result, error) {
	switch app {
	case "bfs":
		return e.BFS(params.Source), nil
	case "sssp":
		return e.SSSP(params.Source), nil
	case "cc":
		return e.CC(), nil
	case "pr":
		return e.PR(params.Tol, params.Rounds), nil
	case "kcore":
		return e.KCore(params.K), nil
	case "bc":
		return e.BC(params.Source), nil
	default:
		return nil, fmt.Errorf("bench: no distributed %s", app)
	}
}

// clusterEngine partitions g into `hosts` ranges and builds the Stampede2
// cluster emulation over them (shard.ClusterConfig: 48 threads per host,
// Omni-Path interconnect, OEC below 128 hosts / CVC at or above). g must
// be sealed (weights + transpose) before the first call — partitions alias
// the source arrays.
func clusterEngine(g *graph.Graph, hosts int, scale gen.Scale) (*shard.Engine, error) {
	part, err := graph.NewPartition(g, hosts)
	if err != nil {
		return nil, err
	}
	return shard.New(part, shard.ClusterConfig(hosts, scale.Div()))
}

// vertexRun executes the best *vertex-program* variant on a single
// machine (the paper's OA/OS configurations: same algorithms as D-Galois,
// run on the Optane box).
func vertexRun(machine memsim.MachineConfig, g *graph.Graph, app string, threads int, params frameworks.Params) (*analytics.Result, error) {
	m := memsim.NewMachine(machine)
	opts := core.GaloisDefaults(threads)
	opts.Weighted = app == "sssp"
	opts.BothDirections = app == "cc" || app == "pr" || app == "kcore"
	if opts.Weighted && !g.HasWeights() {
		g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
	}
	r, err := core.New(m, g, opts)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	switch app {
	case "bfs":
		return analytics.BFSDense(r, params.Source), nil
	case "sssp":
		return analytics.SSSPBellmanFordDense(r, params.Source), nil
	case "cc":
		return analytics.CCLabelPropDense(r), nil
	case "pr":
		return analytics.PageRank(r, params.Tol, params.Rounds), nil
	case "kcore":
		return analytics.KCoreDense(r, params.K), nil
	case "bc":
		return analytics.BC(r, params.Source, analytics.BCOptions{DenseFrontier: true}), nil
	default:
		return nil, fmt.Errorf("bench: no vertex-program %s", app)
	}
}

// minHostsFor estimates the paper's DM host count for a graph: the
// replicated footprint (CSR plus mirrors, ~2.5x) over per-host usable
// memory.
func minHostsFor(g *graph.Graph, scale gen.Scale) int {
	host := memsim.Scaled(memsim.StampedeHost(), scale.Div())
	// Out-direction CSR only (the footprint the paper sizes hosts by),
	// independent of whatever weights/transposes earlier experiments
	// attached to the shared graph.
	csr := int64(g.NumNodes()+1)*8 + g.NumEdges()*4
	return shard.MinHosts(csr*5/2, host)
}

// table4Graphs lists the Table 4 inputs.
var table4Graphs = []string{"clueweb12", "uk14", "iso_m100", "wdc12"}

// sealForCluster readies a shared input for partitioning: the cluster
// kernels need weights (sssp) and the transpose (cc/pr/kcore), and both
// must exist before graph.NewPartition slices the arrays.
func sealForCluster(g *graph.Graph) {
	if !g.HasWeights() {
		g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
	}
	g.BuildIn()
}

// Table4 regenerates the Optane-vs-cluster comparison: Galois with the
// best (non-vertex, asynchronous) algorithms on the Optane machine (OB)
// against D-Galois vertex programs on the minimum host count (DM).
func Table4(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Graph\tApp\tStampede DM (s)\tOptane OB (s)\tSpeedup DM/OB")
	graphs := table4Graphs
	apps := clusterApps
	if opt.Quick {
		graphs = []string{"clueweb12"}
		apps = []string{"bfs", "cc", "sssp"}
	}
	var speedups []float64
	for _, gname := range graphs {
		g, _ := input(gname, opt.Scale)
		sealForCluster(g)
		params := frameworks.DefaultParams(g)
		hosts := minHostsFor(g, opt.Scale)
		e, err := clusterEngine(g, hosts, opt.Scale)
		if err != nil {
			return fmt.Errorf("table4 %s: %w", gname, err)
		}
		for _, app := range apps {
			dres, err := distRun(e, app, params)
			if err != nil {
				return fmt.Errorf("table4 %s/%s: %w", gname, app, err)
			}
			m := memsim.NewMachine(optaneMachine(opt.Scale))
			ores, err := frameworks.Galois.RunOn(m, g, app, 96, params)
			if err != nil {
				return fmt.Errorf("table4 %s/%s optane: %w", gname, app, err)
			}
			sp := stats.Speedup(dres.Seconds, ores.Seconds)
			speedups = append(speedups, sp)
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%s\n", gname, app, dres.Seconds, ores.Seconds, stats.Ratio(sp))
		}
		e.Close()
		fmt.Fprintf(w, "(%s: DM uses %d hosts)\n", gname, hosts)
	}
	fmt.Fprintf(w, "Geomean speedup of Optane PMM over Stampede DM: %s (paper: 1.7x)\n",
		stats.Ratio(stats.Geomean(speedups)))
	return w.Flush()
}

// Figure11 regenerates the six-configuration comparison: DB (256 hosts,
// CVC), DM (min hosts), DS (min hosts, 80 threads total), OS (vertex
// programs on Optane, 80 threads), OA (vertex programs, 96 threads), OB
// (best algorithms, 96 threads).
func Figure11(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Graph\tApp\tDB\tDM\tDS\tOS\tOA\tOB\t(seconds)")
	graphs := table4Graphs[:2]
	apps := clusterApps
	if opt.Quick {
		graphs = []string{"clueweb12"}
		apps = []string{"bfs", "sssp"}
	} else if opt.Scale == gen.ScaleFull {
		graphs = table4Graphs
	}
	for _, gname := range graphs {
		g, _ := input(gname, opt.Scale)
		sealForCluster(g)
		params := frameworks.DefaultParams(g)
		minHosts := minHostsFor(g, opt.Scale)

		db, err := clusterEngine(g, 256, opt.Scale)
		if err != nil {
			return err
		}
		dm, err := clusterEngine(g, minHosts, opt.Scale)
		if err != nil {
			return err
		}
		dsPart, err := graph.NewPartition(g, minHosts)
		if err != nil {
			return err
		}
		dsCfg := shard.ClusterConfig(minHosts, opt.Scale.Div())
		dsCfg.Threads = maxInt(1, 80/minHosts)
		ds, err := shard.New(dsPart, dsCfg)
		if err != nil {
			return err
		}

		for _, app := range apps {
			row := fmt.Sprintf("%s\t%s", gname, app)
			for _, e := range []*shard.Engine{db, dm, ds} {
				res, err := distRun(e, app, params)
				if err != nil {
					return err
				}
				row += fmt.Sprintf("\t%.4f", res.Seconds)
			}
			os_, err := vertexRun(optaneMachine(opt.Scale), g, app, 80, params)
			if err != nil {
				return err
			}
			oa, err := vertexRun(optaneMachine(opt.Scale), g, app, 96, params)
			if err != nil {
				return err
			}
			m := memsim.NewMachine(optaneMachine(opt.Scale))
			ob, err := frameworks.Galois.RunOn(m, g, app, 96, params)
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%.4f\t%.4f\t%.4f", os_.Seconds, oa.Seconds, ob.Seconds)
			fmt.Fprintln(w, row)
		}
		db.Close()
		dm.Close()
		ds.Close()
	}
	fmt.Fprintln(w, "(paper: OS similar or better than DS except pr; OB matches DB for bc/bfs/kcore/sssp)")
	return w.Flush()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
