package bench

import (
	"bytes"
	"strings"
	"testing"

	"pmemgraph/internal/gen"
)

func TestRegistryComplete(t *testing.T) {
	names := Experiments()
	if len(names) != 19 {
		t.Fatalf("experiments = %d, want 19 (every table and figure plus figCompress, figStream, figSeal, figServe and figShard)", len(names))
	}
	// Paper order, then the repo's own backend, streaming and serving studies.
	want := []string{"table1", "table2", "table3", "fig4a", "fig4b", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "table4", "fig11", "table5",
		"figCompress", "figStream", "figSeal", "figServe", "figShard"}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("experiment[%d] = %s, want %s", i, n, want[i])
		}
		if Title(n) == "" {
			t.Errorf("%s has no title", n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func runToBuffer(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(name, Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.String()
}

func TestMicroExperiments(t *testing.T) {
	out := runToBuffer(t, "table1")
	for _, want := range []string{"Memory", "App-direct", "Sequential", "Random"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
	out = runToBuffer(t, "table2")
	if !strings.Contains(out, "Local") || !strings.Contains(out, "Remote") {
		t.Errorf("table2 output malformed:\n%s", out)
	}
	out = runToBuffer(t, "fig4a")
	if !strings.Contains(out, "320") {
		t.Errorf("fig4a missing 320GB row:\n%s", out)
	}
	out = runToBuffer(t, "fig4b")
	if !strings.Contains(out, "Blocked") {
		t.Errorf("fig4b missing policy column:\n%s", out)
	}
}

func TestGraphExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	// One representative per family; the full set runs under -bench.
	out := runToBuffer(t, "fig7")
	for _, want := range []string{"sparse-wl", "dense-wl", "delta-step", "labelprop-sc"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing variant %q", want)
		}
	}
	out = runToBuffer(t, "table4")
	if !strings.Contains(out, "Geomean") || !strings.Contains(out, "hosts") {
		t.Errorf("table4 output malformed:\n%s", out)
	}
	out = runToBuffer(t, "table5")
	if !strings.Contains(out, "GridGraph") {
		t.Errorf("table5 output malformed:\n%s", out)
	}
}

func TestInputCacheReuses(t *testing.T) {
	g1, _ := input("kron30", gen.ScaleSmall)
	g2, _ := input("kron30", gen.ScaleSmall)
	if g1 != g2 {
		t.Error("input cache returned distinct graphs for same key")
	}
	g3, _ := input("kron30", gen.ScaleFull)
	if g1 == g3 {
		t.Error("different scales must not share a cache entry")
	}
}

func TestMachineConstructors(t *testing.T) {
	for _, cfg := range []struct {
		name string
		div  int64
	}{
		{optaneMachine(gen.ScaleSmall).Name, gen.ScaleSmall.Div()},
		{dramMachine(gen.ScaleSmall).Name, gen.ScaleSmall.Div()},
		{entropyMachine(gen.ScaleSmall).Name, gen.ScaleSmall.Div()},
	} {
		if cfg.name == "" {
			t.Error("unnamed machine config")
		}
	}
	o := optaneMachine(gen.ScaleFull)
	s := optaneMachine(gen.ScaleSmall)
	if o.DRAMPerSocket <= s.DRAMPerSocket {
		t.Error("full scale should have more near-memory than small scale")
	}
}
