package bench

import (
	"bytes"
	"testing"

	"pmemgraph/internal/gen"
)

// TestFigSealOverlayBeatsRebuild is the figSeal acceptance assertion
// (and the PR's perf criterion): for update batches no larger than
// |E|/100, sealing an epoch through the delta overlay must be at least
// 10x cheaper in wall-clock than the old full-CSR rebuild path.
func TestFigSealOverlayBeatsRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	resetInputs()
	t.Cleanup(resetInputs)
	sink := &Sink{}
	var buf bytes.Buffer
	if err := Run("figSeal", Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	type key struct {
		graph, strategy string
		batch           int
	}
	times := map[key]float64{}
	for _, r := range sink.Records() {
		if r.Batch == 0 {
			continue // the experiment's wall-time record
		}
		times[key{r.Graph, r.Algorithm, r.Batch}] = r.WallSeconds
	}
	if len(times) == 0 {
		t.Fatalf("no figSeal records collected\n%s", buf.String())
	}
	g, _ := input("clueweb12", gen.ScaleSmall)
	smallEnough := g.NumEdges() / 100
	checked := 0
	for k, rebuild := range times {
		if k.strategy != "rebuild" || int64(k.batch) > smallEnough {
			continue
		}
		overlay := times[key{k.graph, "overlay", k.batch}]
		if overlay == 0 {
			t.Fatalf("missing overlay record for %s batch %d\n%s", k.graph, k.batch, buf.String())
		}
		checked++
		if overlay*10 > rebuild {
			t.Errorf("%s batch=%d: overlay apply (%.6fs) is not >=10x cheaper than rebuild (%.6fs)",
				k.graph, k.batch, overlay, rebuild)
		}
	}
	if checked == 0 {
		t.Fatalf("no batches <= |E|/100 = %d were swept\n%s", smallEnough, buf.String())
	}
}
