package bench

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/oocsim"
	"pmemgraph/internal/stats"
)

// Table5 regenerates the out-of-core comparison: GridGraph on Optane
// app-direct (AD) vs Galois in memory mode (MM) for bfs and cc on
// clueweb12 and uk14, with the paper's 2-hour cap mapped into simulated
// time via the measured MM anchor (2h / 6.43s for clueweb12 bfs).
func Table5(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Graph\tApp\tGridGraph AD (s)\tGalois MM (s)\tAD/MM")

	// Anchor the simulated 2-hour budget to GridGraph's own scale: the
	// paper's GridGraph bfs on clueweb12 took 5722s of the 7200s budget,
	// so the simulated budget is the measured clueweb12 AD bfs time
	// scaled by 7200/5722.
	anchorG, _ := input("clueweb12", opt.Scale)
	src, _ := anchorG.MaxOutDegreeNode()
	acfg := oocsim.DefaultConfig(opt.Scale.Div())
	if opt.Quick {
		acfg.GridP = 64
	}
	ae, err := oocsim.NewEngine(anchorG, acfg)
	if err != nil {
		return err
	}
	timeout := ae.BFS(src).Seconds * 7200 / 5722

	gridP := 512
	if opt.Quick {
		gridP = 64
	}
	for _, gname := range []string{"clueweb12", "uk14"} {
		g, _ := input(gname, opt.Scale)
		cfg := oocsim.DefaultConfig(opt.Scale.Div())
		cfg.GridP = gridP
		cfg.TimeoutSeconds = timeout
		e, err := oocsim.NewEngine(g, cfg)
		if err != nil {
			return fmt.Errorf("table5 %s: %w", gname, err)
		}
		params := frameworks.DefaultParams(g)
		for _, app := range []string{"bfs", "cc"} {
			var ad *analytics.Result
			switch app {
			case "bfs":
				ad = e.BFS(params.Source)
			case "cc":
				ad = e.CC()
			}
			m := memsim.NewMachine(optaneMachine(opt.Scale))
			mm, err := frameworks.Galois.RunOn(m, g, app, 96, params)
			if err != nil {
				return fmt.Errorf("table5 %s/%s: %w", gname, app, err)
			}
			adCell := fmt.Sprintf("%.4f", ad.Seconds)
			ratio := stats.Ratio(ad.Seconds / mm.Seconds)
			if ad.TimedOut {
				adCell = "DNF(>" + fmt.Sprintf("%.2f", timeout) + ")"
				ratio = "n/a"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%s\n", gname, app, adCell, mm.Seconds, ratio)
		}
	}
	fmt.Fprintln(w, "(paper: MM is 268x-890x faster; GridGraph bfs on uk14 did not finish in 2h)")
	return w.Flush()
}
