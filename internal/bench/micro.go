package bench

import (
	"fmt"

	"pmemgraph/internal/memsim"
)

// Table1 regenerates the bandwidth matrix: mode x pattern x read/write x
// local/remote, printed next to the paper's measured values.
func Table1(opt Options) error {
	paper := map[string][4]float64{
		// mode/pattern -> {read local, read remote, write local, write remote}
		"memory/random":        {90.0, 34.0, 50.0, 29.5},
		"memory/sequential":    {106.0, 100.0, 54.0, 29.5},
		"appdirect/random":     {8.2, 5.5, 3.6, 2.3},
		"appdirect/sequential": {31.0, 21.0, 10.5, 7.5},
	}
	bytes := memsim.ScaledBytes(24)
	measure := func(cfg memsim.MachineConfig, pattern memsim.BandwidthPattern, local, ad bool) float64 {
		m := memsim.NewMachine(cfg)
		return m.BandwidthMicro(pattern, local, 48, bytes, ad).GBPerSec
	}
	w := table(opt.Out)
	fmt.Fprintln(w, "Mode\tPattern\tRd Local\tRd Remote\tWr Local\tWr Remote\t(paper: RdL RdR WrL WrR)")
	rows := []struct {
		label string
		cfg   memsim.MachineConfig
		seq   bool
		ad    bool
	}{
		{"Memory", memsim.Scaled(memsim.OptaneMachine(), 1), false, false},
		{"Memory", memsim.Scaled(memsim.OptaneMachine(), 1), true, false},
		{"App-direct", memsim.Scaled(memsim.AppDirectMachine(), 1), false, true},
		{"App-direct", memsim.Scaled(memsim.AppDirectMachine(), 1), true, true},
	}
	for _, r := range rows {
		rp, wp := memsim.RandRead, memsim.RandWrite
		pat := "Random"
		key := "memory/random"
		if r.seq {
			rp, wp = memsim.SeqRead, memsim.SeqWrite
			pat = "Sequential"
			key = "memory/sequential"
		}
		if r.ad {
			key = "appdirect/random"
			if r.seq {
				key = "appdirect/sequential"
			}
		}
		p := paper[key]
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t(%.1f %.1f %.1f %.1f)\n",
			r.label, pat,
			measure(r.cfg, rp, true, r.ad), measure(r.cfg, rp, false, r.ad),
			measure(r.cfg, wp, true, r.ad), measure(r.cfg, wp, false, r.ad),
			p[0], p[1], p[2], p[3])
	}
	return w.Flush()
}

// Table2 regenerates the latency matrix.
func Table2(opt Options) error {
	paper := map[string][2]float64{"Memory": {95, 150}, "App-direct": {164, 232}}
	bytes := memsim.ScaledBytes(64) // big enough to defeat on-chip caches, small enough to stay near-memory resident
	const accesses = 200000
	measure := func(cfg memsim.MachineConfig, local, ad bool) float64 {
		m := memsim.NewMachine(cfg)
		return m.LatencyMicro(local, accesses, bytes, ad).NsPerOp
	}
	w := table(opt.Out)
	fmt.Fprintln(w, "Mode\tLocal\tRemote\t(paper: Local Remote)")
	mm := memsim.Scaled(memsim.OptaneMachine(), 1)
	ad := memsim.Scaled(memsim.AppDirectMachine(), 1)
	fmt.Fprintf(w, "Memory\t%.0f\t%.0f\t(%.0f %.0f)\n",
		measure(mm, true, false), measure(mm, false, false), paper["Memory"][0], paper["Memory"][1])
	fmt.Fprintf(w, "App-direct\t%.0f\t%.0f\t(%.0f %.0f)\n",
		measure(ad, true, true), measure(ad, false, true), paper["App-direct"][0], paper["App-direct"][1])
	return w.Flush()
}

// Figure4a regenerates the NUMA-local write microbenchmark: 80/160/320
// (paper-GB) allocations on DRAM vs Optane PMM with 96 threads.
func Figure4a(opt Options) error {
	w := table(opt.Out)
	fmt.Fprintln(w, "Alloc (paper GB)\tDDR4 DRAM (s)\tOptane PMM (s)\tPMM/DRAM")
	for _, gb := range []float64{80, 160, 320} {
		bytes := memsim.ScaledBytes(gb)
		d := memsim.NewMachine(memsim.Scaled(memsim.DRAMMachine(), 1)).WriteMicro(bytes, memsim.Local, 96)
		o := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 1)).WriteMicro(bytes, memsim.Local, 96)
		fmt.Fprintf(w, "%.0f\t%.4f\t%.4f\t%.1fx\n", gb, d.ElapsedSec, o.ElapsedSec, o.ElapsedSec/d.ElapsedSec)
	}
	fmt.Fprintln(w, "(paper: 160->320 grows ~2x on DRAM, ~5.6x on Optane)")
	return w.Flush()
}

// Figure4b regenerates the interleaved-vs-blocked comparison at 320
// paper-GB with 24 and 48 threads.
func Figure4b(opt Options) error {
	w := table(opt.Out)
	bytes := memsim.ScaledBytes(320)
	fmt.Fprintln(w, "Machine\tThreads\tBlocked (s)\tInterleaved (s)\tBlk/Int")
	for _, cfg := range []memsim.MachineConfig{memsim.Scaled(memsim.DRAMMachine(), 1), memsim.Scaled(memsim.OptaneMachine(), 1)} {
		for _, threads := range []int{24, 48} {
			b := memsim.NewMachine(cfg).WriteMicro(bytes, memsim.Blocked, threads)
			i := memsim.NewMachine(cfg).WriteMicro(bytes, memsim.Interleaved, threads)
			fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.1fx\n", cfg.Name, threads, b.ElapsedSec, i.ElapsedSec, b.ElapsedSec/i.ElapsedSec)
		}
	}
	fmt.Fprintln(w, "(paper: Optane blocked@24 ~9x worse than interleaved; blocked wins at 48)")
	return w.Flush()
}
