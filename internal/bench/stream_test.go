package bench

import (
	"bytes"
	"testing"

	"pmemgraph/internal/gen"
)

// TestFigStreamIncrementalBeatsFullOnSmallBatches is the figStream
// acceptance assertion: for the smallest update batch, the incremental
// variant's simulated time must beat the full recompute for both kernels
// on every machine the experiment sweeps, and incremental cc (union-find
// over the prior labels, no traversal) must win by a wide margin.
func TestFigStreamIncrementalBeatsFullOnSmallBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("graph experiments are slow")
	}
	resetInputs()
	t.Cleanup(resetInputs)
	sink := &Sink{}
	var buf bytes.Buffer
	if err := Run("figStream", Options{Scale: gen.ScaleSmall, Quick: true, Out: &buf, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	// Index sim seconds by (machine, app, batch, algorithm-class).
	type key struct {
		machine, app string
		batch        int
		incremental  bool
	}
	times := map[key]float64{}
	minBatch := 0
	for _, r := range sink.Records() {
		if r.Batch == 0 {
			continue // the experiment's wall-time record
		}
		inc := r.Algorithm == "inc-unionfind" || r.Algorithm == "topo-pull-inc"
		times[key{r.Machine, r.App, r.Batch, inc}] = r.SimSeconds
		if minBatch == 0 || r.Batch < minBatch {
			minBatch = r.Batch
		}
	}
	if minBatch == 0 {
		t.Fatalf("no figStream records collected\n%s", buf.String())
	}
	for _, machine := range []string{"DRAM", "MemoryMode"} {
		for _, app := range []string{"cc", "pr"} {
			full := times[key{machine, app, minBatch, false}]
			inc := times[key{machine, app, minBatch, true}]
			if full == 0 || inc == 0 {
				t.Fatalf("missing %s/%s records at batch %d\n%s", machine, app, minBatch, buf.String())
			}
			if inc >= full {
				t.Errorf("%s %s batch=%d: incremental (%.4fs) did not beat full recompute (%.4fs)",
					machine, app, minBatch, inc, full)
			}
			if app == "cc" && inc > full/5 {
				t.Errorf("%s cc batch=%d: union-find incremental (%.4fs) should be >5x cheaper than full (%.4fs)",
					machine, minBatch, inc, full)
			}
		}
	}
}
