package core

import (
	"testing"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/memsim"
)

func newTestMachine() *memsim.Machine {
	return memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
}

func TestNewAllocatesNeededDirectionsOnly(t *testing.T) {
	g := gen.ErdosRenyi(1000, 8000, 1)
	r, err := New(newTestMachine(), g, GaloisDefaults(8))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.InOffsets != nil || r.InEdges != nil {
		t.Error("in-edges allocated without BothDirections")
	}
	if r.Weights != nil {
		t.Error("weights allocated without Weighted")
	}
	fwd := r.FootprintBytes()

	opts := GaloisDefaults(8)
	opts.BothDirections = true
	r2, err := New(newTestMachine(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.InOffsets == nil {
		t.Fatal("in-edges missing with BothDirections")
	}
	if r2.FootprintBytes() <= fwd {
		t.Errorf("both-directions footprint %d should exceed out-only %d (§6.1)", r2.FootprintBytes(), fwd)
	}
}

func TestWeightedNeedsGraphWeights(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 2)
	g.AddRandomWeights(10, 3)
	opts := GaloisDefaults(4)
	opts.Weighted = true
	r, err := New(newTestMachine(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Weights == nil {
		t.Error("weights array missing")
	}
}

func TestCloseReleasesFootprint(t *testing.T) {
	m := newTestMachine()
	g := gen.ErdosRenyi(2000, 16000, 5)
	r, err := New(m, g, GaloisDefaults(8))
	if err != nil {
		t.Fatal(err)
	}
	r.NodeArray("labels", 4)
	r.ScratchArray("wl", 100, 8)
	before := m.FootprintOnSocket(0) + m.FootprintOnSocket(1)
	if before == 0 {
		t.Fatal("no footprint registered")
	}
	r.Close()
	after := m.FootprintOnSocket(0) + m.FootprintOnSocket(1)
	if after != 0 {
		t.Errorf("footprint after close = %d, want 0", after)
	}
}

func TestParallelVertsCoversAll(t *testing.T) {
	g := gen.Path(101)
	r, err := New(newTestMachine(), g, GaloisDefaults(7))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seen := make([]bool, 101)
	var coverage [101]int32
	r.ParallelVerts(func(th *memsim.Thread, lo, hi uint32) {
		for v := lo; v < hi; v++ {
			coverage[v]++
		}
	})
	for v, c := range coverage {
		if c != 1 {
			t.Fatalf("vertex %d covered %d times", v, c)
		}
	}
	_ = seen
}

func TestParallelItemsEmptyRange(t *testing.T) {
	g := gen.Path(4)
	r, err := New(newTestMachine(), g, GaloisDefaults(8))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	calls := 0
	r.ParallelItems(0, func(th *memsim.Thread, lo, hi int64) { calls++ })
	if calls != 0 {
		t.Errorf("empty range invoked fn %d times", calls)
	}
}

func TestOutScanChargesAndReturnsNeighbors(t *testing.T) {
	g := gen.Star(10)
	m := newTestMachine()
	r, err := New(m, g, GaloisDefaults(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	before := m.Counters().Reads
	var n int
	r.Parallel(func(th *memsim.Thread) {
		n = len(r.OutScan(th, 0, false))
	})
	if n != 9 {
		t.Errorf("star center neighbors = %d, want 9", n)
	}
	if m.Counters().Reads <= before {
		t.Error("OutScan charged no reads")
	}
}

func TestInScanRequiresTranspose(t *testing.T) {
	g := gen.Star(6)
	opts := GaloisDefaults(1)
	opts.BothDirections = true
	r, err := New(newTestMachine(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var n int
	r.Parallel(func(th *memsim.Thread) {
		n = len(r.InScan(th, 0, false))
	})
	if n != 5 {
		t.Errorf("star center in-neighbors = %d, want 5", n)
	}
}

func TestScanPrefixChargesLess(t *testing.T) {
	g := gen.Star(1000)
	m := newTestMachine()
	r, err := New(m, g, GaloisDefaults(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Parallel(func(th *memsim.Thread) {
		full := r.OutScan(th, 0, false)
		if len(full) != 999 {
			t.Errorf("full scan = %d", len(full))
		}
	})
	fullBytes := m.Counters().BytesRead
	m.ResetClock()
	r.Parallel(func(th *memsim.Thread) {
		pre := r.OutScanPrefix(th, 0, 10)
		if len(pre) != 10 {
			t.Errorf("prefix scan = %d", len(pre))
		}
	})
	if m.Counters().BytesRead >= fullBytes {
		t.Error("prefix scan charged as much as full scan")
	}
}

func TestThreadsClamp(t *testing.T) {
	g := gen.Path(10)
	opts := GaloisDefaults(100000)
	r, err := New(newTestMachine(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stats := r.Parallel(func(th *memsim.Thread) {})
	if stats.Threads != 96 {
		t.Errorf("threads = %d, want clamp to 96", stats.Threads)
	}
}

func TestZeroThreadsDefaultsToMachine(t *testing.T) {
	g := gen.Path(10)
	r, err := New(newTestMachine(), g, Options{GraphPolicy: memsim.Interleaved, PageSize: memsim.PageHuge})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Threads() != 96 {
		t.Errorf("threads defaulted to %d, want 96", r.Threads())
	}
}
