// Package core implements the paper's primary contribution: a Galois-style
// shared-memory graph analytics runtime embodying the practices §4-§5
// recommend for Optane PMM and other large-memory machines:
//
//   - explicit application-level NUMA allocation (interleaved or blocked),
//     never OS-delegated local allocation, for graph-sized data (§4.1)
//   - explicit 2 MB huge pages rather than THP (§4.3), with migration
//     expected to be off (§4.2; migration is a machine-level setting)
//   - allocation of only the edge direction(s) an algorithm needs (§6.1)
//   - support for non-vertex operators and sparse worklists so
//     asynchronous data-driven algorithms are expressible (§5)
//
// A Runtime binds one graph to one simulated machine: it allocates the
// graph's CSR arrays on the machine (raw or compressed backend) and
// provides the parallel-execution and access-charging primitives the
// engine and kernels build on — the layer between them and
// graph/memsim. All adjacency charging funnels through the AdjView seam,
// so traversal code is backend-agnostic and only the charged shape (element
// ranges vs block bytes plus decode) differs. Parallel loops use static
// chunk ownership (chunk i -> thread i mod T), which is what makes charge
// attribution — and with it every simulated number — a pure function of
// (n, threads), independent of GOMAXPROCS and goroutine interleaving.
package core

import (
	"fmt"

	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Backend selects the simulated storage representation of the graph's
// adjacency arrays (see DESIGN.md "Storage backends").
type Backend int

const (
	// BackendRaw stores offsets as int64 and edges/weights as parallel
	// uint32 arrays (the paper's representation).
	BackendRaw Backend = iota
	// BackendCompressed stores per-vertex delta+varint byte blocks
	// (GBBS/Ligra+ style, graph.CompressedCSR): traversals stream fewer
	// slow-tier bytes but pay an explicit per-edge decode cost
	// (memsim.CostParams.DecodePerEdge). Kernel results are
	// byte-identical to the raw backend; only the charging differs.
	BackendCompressed
)

// String implements fmt.Stringer (backends appear in serving cache keys).
func (b Backend) String() string {
	switch b {
	case BackendCompressed:
		return "compressed"
	default:
		return "raw"
	}
}

// ParseBackend maps a backend's name (or "") to its value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "raw":
		return BackendRaw, nil
	case "compressed", "csrz":
		return BackendCompressed, nil
	default:
		return BackendRaw, fmt.Errorf("core: unknown storage backend %q (want raw or compressed)", s)
	}
}

// Options configures a Runtime. The zero value is not useful; call
// GaloisDefaults or a frameworks profile for a ready-made configuration.
type Options struct {
	// Threads is the number of virtual hardware threads parallel
	// sections use.
	Threads int
	// GraphPolicy places the CSR topology arrays; NodePolicy places
	// per-vertex label arrays.
	GraphPolicy memsim.Policy
	NodePolicy  memsim.Policy
	// PageSize backs every allocation (0 = machine default). Galois
	// passes memsim.PageHuge explicitly.
	PageSize int64
	// THP marks allocations as relying on transparent huge pages
	// (framework emulations that mmap 4 KB pages and let the OS
	// promote).
	THP bool
	// BothDirections allocates in-edges alongside out-edges regardless
	// of need (GAP/GBBS/GraphIt behaviour §6.1). When false, in-edge
	// arrays are allocated only if the graph's transpose is present.
	BothDirections bool
	// Weighted allocates the edge-weight array.
	Weighted bool
	// AppDirect places every allocation on the Optane media of an
	// app-direct machine: the uncached-Optane baseline the memory-mode
	// DRAM cache is compared against.
	AppDirect bool
	// Backend selects raw or byte-compressed CSR storage for the
	// adjacency arrays.
	Backend Backend
}

// GaloisDefaults returns the configuration the paper recommends: explicit
// huge pages, interleaved placement, needed directions only.
func GaloisDefaults(threads int) Options {
	return Options{
		Threads:     threads,
		GraphPolicy: memsim.Interleaved,
		NodePolicy:  memsim.Interleaved,
		PageSize:    memsim.PageHuge,
	}
}

// Runtime binds a graph to a simulated machine.
type Runtime struct {
	M *memsim.Machine
	G *graph.Graph

	// Simulated allocations mirroring the CSR arrays. Under
	// BackendCompressed, Offsets/InOffsets model the byte-offset arrays,
	// Edges/InEdges the byte-granular block data, and Weights/InWeights
	// are nil (weights ride inside the blocks).
	Offsets, Edges, Weights       *memsim.Array
	InOffsets, InEdges, InWeights *memsim.Array

	// ZOut/ZIn are the compressed adjacency forms backing Edges/InEdges
	// when Backend is BackendCompressed; nil otherwise.
	ZOut, ZIn *graph.CompressedCSR

	opts Options
	node []*memsim.Array // node arrays allocated through the runtime

	// outView/inView are built once at New: per-vertex scan helpers run
	// in kernel hot loops, and constructing a view there would box the
	// adjacency interface on every call.
	outView, inView AdjView
}

// New builds a Runtime: it allocates (and warms) the graph's topology
// arrays on m according to opts. Warm-up models the paper's exclusion of
// graph loading and construction time from all reported numbers.
func New(m *memsim.Machine, g *graph.Graph, opts Options) (*Runtime, error) {
	if opts.Threads <= 0 {
		opts.Threads = m.Config().MaxThreads()
	}
	if opts.BothDirections {
		g.BuildIn()
	}
	r := &Runtime{M: m, G: g, opts: opts}
	n := int64(g.NumNodes())
	e := g.NumEdges()

	alloc := func(name string, length, elem int64) (*memsim.Array, error) {
		a, err := m.Alloc(name, length, elem, memsim.AllocOpts{
			Policy:       opts.GraphPolicy,
			BlockThreads: opts.Threads,
			PageSize:     opts.PageSize,
			THP:          opts.THP,
			AppDirect:    opts.AppDirect,
		})
		if err != nil {
			return nil, fmt.Errorf("core: allocating %s: %w", name, err)
		}
		a.Warm()
		return a, nil
	}

	var err error
	if opts.Backend == BackendCompressed {
		// Compressed backend: one byte-offset array per direction plus
		// the byte-granular block data; degrees and weights live inside
		// the blocks, so no separate edge or weight arrays exist.
		r.ZOut = g.CompressOut()
		if r.Offsets, err = alloc("csrz.offsets", n+1, 8); err != nil {
			return nil, err
		}
		if r.Edges, err = alloc("csrz.edges", int64(len(r.ZOut.Data)), 1); err != nil {
			return nil, err
		}
		if opts.BothDirections || g.HasIn() {
			g.BuildIn()
			r.ZIn = g.CompressIn()
			if r.InOffsets, err = alloc("csrz.in.offsets", n+1, 8); err != nil {
				return nil, err
			}
			if r.InEdges, err = alloc("csrz.in.edges", int64(len(r.ZIn.Data)), 1); err != nil {
				return nil, err
			}
		}
		r.buildViews()
		return r, nil
	}
	if r.Offsets, err = alloc("csr.offsets", n+1, 8); err != nil {
		return nil, err
	}
	if r.Edges, err = alloc("csr.edges", e, 4); err != nil {
		return nil, err
	}
	if opts.Weighted {
		if r.Weights, err = alloc("csr.weights", e, 4); err != nil {
			return nil, err
		}
	}
	if opts.BothDirections || g.HasIn() {
		g.BuildIn()
		if r.InOffsets, err = alloc("csr.in.offsets", n+1, 8); err != nil {
			return nil, err
		}
		if r.InEdges, err = alloc("csr.in.edges", e, 4); err != nil {
			return nil, err
		}
		if opts.Weighted {
			if r.InWeights, err = alloc("csr.in.weights", e, 4); err != nil {
				return nil, err
			}
		}
	}
	r.buildViews()
	return r, nil
}

// MustNew is New that panics on error, for configurations the caller has
// already validated.
func MustNew(m *memsim.Machine, g *graph.Graph, opts Options) *Runtime {
	r, err := New(m, g, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// Opts returns the runtime's configuration.
func (r *Runtime) Opts() Options { return r.opts }

// Threads returns the configured thread count.
func (r *Runtime) Threads() int { return r.opts.Threads }

// Close frees every allocation made through the runtime, releasing its
// simulated footprint.
func (r *Runtime) Close() {
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights} {
		if a != nil {
			r.M.Free(a)
		}
	}
	for _, a := range r.node {
		r.M.Free(a)
	}
	r.node = nil
}

// NodeArray allocates a per-vertex array of elem-byte elements with the
// runtime's node placement policy. The array is tracked and freed by Close.
func (r *Runtime) NodeArray(name string, elem int64) *memsim.Array {
	a := r.M.MustAlloc(name, int64(r.G.NumNodes()), elem, memsim.AllocOpts{
		Policy:       r.opts.NodePolicy,
		BlockThreads: r.opts.Threads,
		PageSize:     r.opts.PageSize,
		THP:          r.opts.THP,
		AppDirect:    r.opts.AppDirect,
	})
	r.node = append(r.node, a)
	return a
}

// ScratchArray allocates an arbitrary-length tracked array (worklist
// storage, per-level queues).
func (r *Runtime) ScratchArray(name string, length, elem int64) *memsim.Array {
	a := r.M.MustAlloc(name, length, elem, memsim.AllocOpts{
		Policy:       r.opts.NodePolicy,
		BlockThreads: r.opts.Threads,
		PageSize:     r.opts.PageSize,
		THP:          r.opts.THP,
		AppDirect:    r.opts.AppDirect,
	})
	r.node = append(r.node, a)
	return a
}

// ParallelVerts distributes the vertex range across the runtime's threads
// in statically owned chunks (see ParallelItems), so degree-skewed inputs
// (web-crawl hubs) spread hub chunks across all threads.
func (r *Runtime) ParallelVerts(fn func(t *memsim.Thread, lo, hi graph.Node)) memsim.RegionStats {
	return r.ParallelItems(int64(r.G.NumNodes()), func(t *memsim.Thread, lo, hi int64) {
		fn(t, graph.Node(lo), graph.Node(hi))
	})
}

// ParallelItems distributes [0, n) across threads in fixed-size chunks with
// deterministic static ownership: chunk i belongs to thread i mod T, and
// each thread walks its chunks in ascending order. Unlike a dynamic shared
// cursor, charge attribution (which thread's simulated clock and counters a
// chunk lands on) is a pure function of (n, T) — never of goroutine
// interleaving — which is what keeps simulated results byte-identical at
// any GOMAXPROCS. Strided ownership still spreads degree-skewed chunk costs
// across threads the way Galois' dynamic scheduler does on average.
func (r *Runtime) ParallelItems(n int64, fn func(t *memsim.Thread, lo, hi int64)) memsim.RegionStats {
	threads := clampThreads(r)
	chunk := n / int64(threads*8)
	if chunk < 64 {
		// Small work lists still spread across every thread (one chunk
		// per thread) rather than serializing onto chunk 0: the
		// dynamic scheduler this replaces would have balanced a tiny
		// high-diameter frontier too.
		chunk = (n + int64(threads) - 1) / int64(threads)
		if chunk > 64 {
			chunk = 64
		}
		if chunk < 1 {
			chunk = 1
		}
	}
	nChunks := (n + chunk - 1) / chunk
	return r.M.Parallel(threads, func(t *memsim.Thread) {
		for c := int64(t.ID); c < nChunks; c += int64(threads) {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(t, lo, hi)
		}
	})
}

// Parallel runs fn on every configured thread with no pre-partitioned
// work; asynchronous kernels use it with a shared worklist.
func (r *Runtime) Parallel(fn func(t *memsim.Thread)) memsim.RegionStats {
	return r.M.Parallel(clampThreads(r), fn)
}

// RegionThreads returns the thread count parallel regions actually run with
// (the configured count clamped to the machine), which callers use to size
// per-thread shards indexed by Thread.ID.
func (r *Runtime) RegionThreads() int { return clampThreads(r) }

func clampThreads(r *Runtime) int {
	threads := r.opts.Threads
	if max := r.M.Config().MaxThreads(); threads > max {
		threads = max
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// AdjView bundles one direction's adjacency view (raw slices or
// compressed byte blocks) with the simulated arrays its traversal
// charges. The operator engine and the asynchronous kernels go through
// this seam, so traversal code is identical under both storage backends
// and only the charging (raw element ranges vs compressed byte ranges
// plus decode cost) differs.
type AdjView struct {
	Adj     graph.Adjacency
	Offsets *memsim.Array
	Edges   *memsim.Array // uint32 edge elements (raw) or block bytes (compressed)
	Weights *memsim.Array // raw weighted runtimes only; weights ride in compressed blocks
	Z       bool
}

// buildViews caches both directions' views once the arrays exist.
func (r *Runtime) buildViews() {
	if r.opts.Backend == BackendCompressed {
		r.outView = AdjView{Adj: r.ZOut, Offsets: r.Offsets, Edges: r.Edges, Z: true}
	} else {
		r.outView = AdjView{Adj: r.G.RawOut(), Offsets: r.Offsets, Edges: r.Edges, Weights: r.Weights}
	}
	if r.InOffsets == nil {
		r.inView = AdjView{}
	} else if r.opts.Backend == BackendCompressed {
		r.inView = AdjView{Adj: r.ZIn, Offsets: r.InOffsets, Edges: r.InEdges, Z: true}
	} else {
		r.inView = AdjView{Adj: r.G.RawIn(), Offsets: r.InOffsets, Edges: r.InEdges, Weights: r.InWeights}
	}
}

// OutView returns the out-direction view.
func (r *Runtime) OutView() AdjView { return r.outView }

// InView returns the in-direction view; Valid reports false when the
// runtime holds no transpose.
func (r *Runtime) InView() AdjView { return r.inView }

// Valid reports whether the view's direction is allocated.
func (av AdjView) Valid() bool { return av.Adj != nil }

// ChargeScan charges streaming v's whole adjacency block: the raw edge
// (and, if weighted, weight) elements, or the compressed bytes plus the
// per-edge decode cost. Offsets are charged by the caller (gathered per
// chunk or streamed per shard).
func (av AdjView) ChargeScan(t *memsim.Thread, v graph.Node, weighted bool) {
	lo, hi := av.Adj.Extent(v)
	av.Edges.ReadRange(t, lo, hi)
	if av.Z {
		t.Decode(1, av.Adj.Degree(v))
		return
	}
	if weighted && av.Weights != nil {
		av.Weights.ReadRange(t, lo, hi)
	}
}

// ChargePrefix charges an early-exited scan of v's block that consumed
// `consumed` backing elements (a Cursor's Consumed value) covering k
// edges.
func (av AdjView) ChargePrefix(t *memsim.Thread, v graph.Node, consumed, k int64) {
	lo, _ := av.Adj.Extent(v)
	av.Edges.ReadRange(t, lo, lo+consumed)
	if av.Z {
		t.Decode(1, k)
	}
}

// ChargeBlock charges one batched scan of the offsets plus every
// adjacency block of the contiguous vertex range [lo, hi): the chunked
// equivalent of ChargeScan per vertex, in two sequential range reads.
func (av AdjView) ChargeBlock(t *memsim.Thread, lo, hi graph.Node, weighted bool) {
	if hi <= lo {
		return
	}
	av.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
	elo, ehi := av.Adj.ExtentRange(lo, hi)
	av.Edges.ReadRange(t, elo, ehi)
	if av.Z {
		t.Decode(int64(hi-lo), av.Adj.Base(hi)-av.Adj.Base(lo))
		return
	}
	if weighted && av.Weights != nil {
		av.Weights.ReadRange(t, elo, ehi)
	}
}

// Weighted reports whether edge weights are available to kernels on this
// runtime (as a parallel array on the raw backend, interleaved in the
// blocks on the compressed one).
func (r *Runtime) Weighted() bool {
	if r.opts.Backend == BackendCompressed {
		return r.opts.Weighted && r.G.HasWeights()
	}
	return r.Weights != nil
}

// InWeighted is Weighted for the transpose direction.
func (r *Runtime) InWeighted() bool {
	if r.InOffsets == nil || r.G.InWeights == nil {
		return false
	}
	if r.opts.Backend == BackendCompressed {
		return r.opts.Weighted
	}
	return r.InWeights != nil
}

// OutScan charges the reads that visiting v's out-edges performs (offset
// pair, adjacency block, and weights if requested) and returns the
// neighbor slice (always the raw alias; under the compressed backend the
// charge covers block bytes plus decode).
func (r *Runtime) OutScan(t *memsim.Thread, v graph.Node, weights bool) []graph.Node {
	r.Offsets.ReadN(t, int64(v), 2)
	r.OutView().ChargeScan(t, v, weights)
	return r.G.OutEdges[r.G.OutOffsets[v]:r.G.OutOffsets[v+1]]
}

// InScan is OutScan for the in-direction; the transpose must be allocated.
func (r *Runtime) InScan(t *memsim.Thread, v graph.Node, weights bool) []graph.Node {
	r.InOffsets.ReadN(t, int64(v), 2)
	r.InView().ChargeScan(t, v, weights)
	return r.G.InEdges[r.G.InOffsets[v]:r.G.InOffsets[v+1]]
}

// scanPrefix charges reads for only the first k neighbors of v in av's
// direction. The compressed form charges the byte prefix those edges
// decode from (proportional, rounded up — prefix byte extents are not
// materialized) plus their decode cost.
func scanPrefix(av AdjView, t *memsim.Thread, v graph.Node, k int64) {
	deg := av.Adj.Degree(v)
	if k > deg {
		k = deg
	}
	lo, hi := av.Adj.Extent(v)
	if !av.Z {
		av.Edges.ReadRange(t, lo, lo+k)
		return
	}
	consumed := hi - lo
	if deg > 0 && k < deg {
		consumed = (consumed*k + deg - 1) / deg
	}
	av.Edges.ReadRange(t, lo, lo+consumed)
	t.Decode(1, k)
}

// OutScanPrefix charges reads for only the first k out-neighbors of v
// (early-exit scans, e.g. direction-optimizing pull).
func (r *Runtime) OutScanPrefix(t *memsim.Thread, v graph.Node, k int64) []graph.Node {
	r.Offsets.ReadN(t, int64(v), 2)
	scanPrefix(r.OutView(), t, v, k)
	lo, hi := r.G.OutOffsets[v], r.G.OutOffsets[v+1]
	if lo+k < hi {
		hi = lo + k
	}
	return r.G.OutEdges[lo:hi]
}

// InScanPrefix charges reads for only the first k in-neighbors of v.
func (r *Runtime) InScanPrefix(t *memsim.Thread, v graph.Node, k int64) []graph.Node {
	r.InOffsets.ReadN(t, int64(v), 2)
	scanPrefix(r.InView(), t, v, k)
	lo, hi := r.G.InOffsets[v], r.G.InOffsets[v+1]
	if lo+k < hi {
		hi = lo + k
	}
	return r.G.InEdges[lo:hi]
}

// ChargeOutBlock charges one batched scan of the offsets and out-edge
// (and optionally weight) arrays covering every vertex in the contiguous
// range [lo, hi): the chunked equivalent of calling OutScan once per
// vertex, in two sequential range reads instead of 2·(hi-lo) calls.
func (r *Runtime) ChargeOutBlock(t *memsim.Thread, lo, hi graph.Node, weights bool) {
	r.OutView().ChargeBlock(t, lo, hi, weights)
}

// ChargeInBlock is ChargeOutBlock for the in-direction; the transpose
// must be allocated.
func (r *Runtime) ChargeInBlock(t *memsim.Thread, lo, hi graph.Node, weights bool) {
	r.InView().ChargeBlock(t, lo, hi, weights)
}

// TopologyReadBytes returns the simulated bytes read so far from the
// graph's adjacency arrays (offsets, edges, weights, both directions) —
// the slow-tier CSR stream the compressed backend exists to shrink.
// Per-vertex label arrays are excluded: their gathers are the same under
// both backends.
func (r *Runtime) TopologyReadBytes() uint64 {
	var total uint64
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights} {
		if a != nil {
			read, _ := a.Traffic()
			total += read
		}
	}
	return total
}

// FootprintBytes reports the simulated bytes allocated for the graph's
// topology (the §6.1 both-directions-vs-needed-direction comparison).
func (r *Runtime) FootprintBytes() int64 {
	var total int64
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights} {
		if a != nil {
			total += a.Bytes()
		}
	}
	return total
}
