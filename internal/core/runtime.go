// Package core implements the paper's primary contribution: a Galois-style
// shared-memory graph analytics runtime embodying the practices §4-§5
// recommend for Optane PMM and other large-memory machines:
//
//   - explicit application-level NUMA allocation (interleaved or blocked),
//     never OS-delegated local allocation, for graph-sized data (§4.1)
//   - explicit 2 MB huge pages rather than THP (§4.3), with migration
//     expected to be off (§4.2; migration is a machine-level setting)
//   - allocation of only the edge direction(s) an algorithm needs (§6.1)
//   - support for non-vertex operators and sparse worklists so
//     asynchronous data-driven algorithms are expressible (§5)
//
// A Runtime binds one graph to one simulated machine: it allocates the
// graph's CSR arrays on the machine (raw or compressed backend) and
// provides the parallel-execution and access-charging primitives the
// engine and kernels build on — the layer between them and
// graph/memsim. All adjacency charging funnels through the AdjView seam,
// so traversal code is backend-agnostic and only the charged shape (element
// ranges vs block bytes plus decode) differs. Parallel loops use static
// chunk ownership (chunk i -> thread i mod T), which is what makes charge
// attribution — and with it every simulated number — a pure function of
// (n, threads), independent of GOMAXPROCS and goroutine interleaving.
package core

import (
	"fmt"

	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Backend selects the simulated storage representation of the graph's
// adjacency arrays (see DESIGN.md "Storage backends").
type Backend int

const (
	// BackendRaw stores offsets as int64 and edges/weights as parallel
	// uint32 arrays (the paper's representation).
	BackendRaw Backend = iota
	// BackendCompressed stores per-vertex delta+varint byte blocks
	// (GBBS/Ligra+ style, graph.CompressedCSR): traversals stream fewer
	// slow-tier bytes but pay an explicit per-edge decode cost
	// (memsim.CostParams.DecodePerEdge). Kernel results are
	// byte-identical to the raw backend; only the charging differs.
	BackendCompressed
)

// String implements fmt.Stringer (backends appear in serving cache keys).
func (b Backend) String() string {
	switch b {
	case BackendCompressed:
		return "compressed"
	default:
		return "raw"
	}
}

// ParseBackend maps a backend's name (or "") to its value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "raw":
		return BackendRaw, nil
	case "compressed", "csrz":
		return BackendCompressed, nil
	default:
		return BackendRaw, fmt.Errorf("core: unknown storage backend %q (want raw or compressed)", s)
	}
}

// Options configures a Runtime. The zero value is not useful; call
// GaloisDefaults or a frameworks profile for a ready-made configuration.
type Options struct {
	// Threads is the number of virtual hardware threads parallel
	// sections use.
	Threads int
	// GraphPolicy places the CSR topology arrays; NodePolicy places
	// per-vertex label arrays.
	GraphPolicy memsim.Policy
	NodePolicy  memsim.Policy
	// PageSize backs every allocation (0 = machine default). Galois
	// passes memsim.PageHuge explicitly.
	PageSize int64
	// THP marks allocations as relying on transparent huge pages
	// (framework emulations that mmap 4 KB pages and let the OS
	// promote).
	THP bool
	// BothDirections allocates in-edges alongside out-edges regardless
	// of need (GAP/GBBS/GraphIt behaviour §6.1). When false, in-edge
	// arrays are allocated only if the graph's transpose is present.
	BothDirections bool
	// Weighted allocates the edge-weight array.
	Weighted bool
	// AppDirect places every allocation on the Optane media of an
	// app-direct machine: the uncached-Optane baseline the memory-mode
	// DRAM cache is compared against.
	AppDirect bool
	// Backend selects raw or byte-compressed CSR storage for the
	// adjacency arrays.
	Backend Backend
}

// GaloisDefaults returns the configuration the paper recommends: explicit
// huge pages, interleaved placement, needed directions only.
func GaloisDefaults(threads int) Options {
	return Options{
		Threads:     threads,
		GraphPolicy: memsim.Interleaved,
		NodePolicy:  memsim.Interleaved,
		PageSize:    memsim.PageHuge,
	}
}

// Runtime binds a graph to a simulated machine.
type Runtime struct {
	M *memsim.Machine
	G *graph.Graph

	// Ov, when non-nil, layers a delta overlay over G (the sealed base of
	// an overlay epoch): adjacency views merge the delta, degree/edge
	// lookups dispatch through the overlay, and DeltaOut/DeltaIn model
	// its entries as separate small simulated arrays.
	Ov *graph.Overlay

	// Simulated allocations mirroring the CSR arrays. Under
	// BackendCompressed, Offsets/InOffsets model the byte-offset arrays,
	// Edges/InEdges the byte-granular block data, and Weights/InWeights
	// are nil (weights ride inside the blocks).
	Offsets, Edges, Weights       *memsim.Array
	InOffsets, InEdges, InWeights *memsim.Array

	// DeltaOut/DeltaIn model the overlay's per-direction delta entries
	// (8 bytes each: destination plus weight-or-delete marker); nil on
	// plain CSR runtimes.
	DeltaOut, DeltaIn *memsim.Array

	// ZOut/ZIn are the compressed adjacency forms backing Edges/InEdges
	// when Backend is BackendCompressed; nil otherwise.
	ZOut, ZIn *graph.CompressedCSR

	opts Options
	node []*memsim.Array // node arrays allocated through the runtime

	// outView/inView are built once at New: per-vertex scan helpers run
	// in kernel hot loops, and constructing a view there would box the
	// adjacency interface on every call.
	outView, inView AdjView

	// nbrBuf/inNbrBuf/wBuf are per-thread merge buffers (indexed by
	// Thread.ID) backing OutScan/InScan/OutScanW on overlay runtimes,
	// where no contiguous host slice of the merged adjacency exists.
	nbrBuf, inNbrBuf [][]graph.Node
	wBuf             [][]uint32
}

// New builds a Runtime: it allocates (and warms) the graph's topology
// arrays on m according to opts. Warm-up models the paper's exclusion of
// graph loading and construction time from all reported numbers.
func New(m *memsim.Machine, g *graph.Graph, opts Options) (*Runtime, error) {
	return newRuntime(m, g, nil, opts)
}

// NewOverlay builds a Runtime over an overlay epoch: the base graph's
// topology arrays are allocated exactly as New would (the base is what the
// slow tier stores), plus one small delta array per direction for the
// overlay's entries — the honest-charging split the delta-overlay form
// exists for. The overlay's base must be sealed (weights and transpose
// present) when opts request those directions.
func NewOverlay(m *memsim.Machine, ov *graph.Overlay, opts Options) (*Runtime, error) {
	return newRuntime(m, ov.Base(), ov, opts)
}

func newRuntime(m *memsim.Machine, g *graph.Graph, ov *graph.Overlay, opts Options) (*Runtime, error) {
	if opts.Threads <= 0 {
		opts.Threads = m.Config().MaxThreads()
	}
	if ov != nil {
		// The overlay's side structures are derived from the base AT
		// ApplyOverlay time; sealing the base afterwards (transpose,
		// weights) would desynchronize them silently.
		if opts.BothDirections && !ov.HasIn() {
			return nil, fmt.Errorf("core: overlay epoch needs a base sealed with its transpose (BuildIn before ApplyOverlay)")
		}
		if opts.Weighted && !ov.Weighted() {
			return nil, fmt.Errorf("core: overlay epoch needs a base sealed with weights (AddRandomWeights before ApplyOverlay)")
		}
	}
	if opts.BothDirections {
		g.BuildIn()
	}
	r := &Runtime{M: m, G: g, Ov: ov, opts: opts}
	n := int64(g.NumNodes())
	e := g.NumEdges()

	alloc := func(name string, length, elem int64) (*memsim.Array, error) {
		a, err := m.Alloc(name, length, elem, memsim.AllocOpts{
			Policy:       opts.GraphPolicy,
			BlockThreads: opts.Threads,
			PageSize:     opts.PageSize,
			THP:          opts.THP,
			AppDirect:    opts.AppDirect,
		})
		if err != nil {
			return nil, fmt.Errorf("core: allocating %s: %w", name, err)
		}
		a.Warm()
		return a, nil
	}

	var err error
	if opts.Backend == BackendCompressed {
		// Compressed backend: one byte-offset array per direction plus
		// the byte-granular block data; degrees and weights live inside
		// the blocks, so no separate edge or weight arrays exist.
		r.ZOut = g.CompressOut()
		if r.Offsets, err = alloc("csrz.offsets", n+1, 8); err != nil {
			return nil, err
		}
		if r.Edges, err = alloc("csrz.edges", int64(len(r.ZOut.Data)), 1); err != nil {
			return nil, err
		}
		if opts.BothDirections || g.HasIn() {
			g.BuildIn()
			r.ZIn = g.CompressIn()
			if r.InOffsets, err = alloc("csrz.in.offsets", n+1, 8); err != nil {
				return nil, err
			}
			if r.InEdges, err = alloc("csrz.in.edges", int64(len(r.ZIn.Data)), 1); err != nil {
				return nil, err
			}
		}
		if err := r.allocOverlay(alloc); err != nil {
			return nil, err
		}
		r.buildViews()
		return r, nil
	}
	if r.Offsets, err = alloc("csr.offsets", n+1, 8); err != nil {
		return nil, err
	}
	if r.Edges, err = alloc("csr.edges", e, 4); err != nil {
		return nil, err
	}
	if opts.Weighted {
		if r.Weights, err = alloc("csr.weights", e, 4); err != nil {
			return nil, err
		}
	}
	if opts.BothDirections || g.HasIn() {
		g.BuildIn()
		if r.InOffsets, err = alloc("csr.in.offsets", n+1, 8); err != nil {
			return nil, err
		}
		if r.InEdges, err = alloc("csr.in.edges", e, 4); err != nil {
			return nil, err
		}
		if opts.Weighted {
			if r.InWeights, err = alloc("csr.in.weights", e, 4); err != nil {
				return nil, err
			}
		}
	}
	if err := r.allocOverlay(alloc); err != nil {
		return nil, err
	}
	r.buildViews()
	return r, nil
}

// allocOverlay allocates the simulated delta arrays of an overlay runtime
// (no-op otherwise). A direction's array is sized by its delta entries —
// the small separate footprint overlay charging reads alongside the base
// blocks — with a 1-element floor (memsim arrays cannot be empty).
func (r *Runtime) allocOverlay(alloc func(name string, length, elem int64) (*memsim.Array, error)) error {
	if r.Ov == nil {
		return nil
	}
	length := func(n int64) int64 {
		if n < 1 {
			return 1
		}
		return n
	}
	var err error
	if r.DeltaOut, err = alloc("overlay.out.delta", length(r.Ov.OutAdj(false).DeltaEntries()), 8); err != nil {
		return err
	}
	if r.InOffsets != nil {
		if r.DeltaIn, err = alloc("overlay.in.delta", length(r.Ov.InAdj(false).DeltaEntries()), 8); err != nil {
			return err
		}
	}
	return nil
}

// MustNew is New that panics on error, for configurations the caller has
// already validated.
func MustNew(m *memsim.Machine, g *graph.Graph, opts Options) *Runtime {
	r, err := New(m, g, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// Opts returns the runtime's configuration.
func (r *Runtime) Opts() Options { return r.opts }

// Threads returns the configured thread count.
func (r *Runtime) Threads() int { return r.opts.Threads }

// Close frees every allocation made through the runtime, releasing its
// simulated footprint.
func (r *Runtime) Close() {
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights, r.DeltaOut, r.DeltaIn} {
		if a != nil {
			r.M.Free(a)
		}
	}
	for _, a := range r.node {
		r.M.Free(a)
	}
	r.node = nil
}

// NodeArray allocates a per-vertex array of elem-byte elements with the
// runtime's node placement policy. The array is tracked and freed by Close.
func (r *Runtime) NodeArray(name string, elem int64) *memsim.Array {
	a := r.M.MustAlloc(name, int64(r.G.NumNodes()), elem, memsim.AllocOpts{
		Policy:       r.opts.NodePolicy,
		BlockThreads: r.opts.Threads,
		PageSize:     r.opts.PageSize,
		THP:          r.opts.THP,
		AppDirect:    r.opts.AppDirect,
	})
	r.node = append(r.node, a)
	return a
}

// ScratchArray allocates an arbitrary-length tracked array (worklist
// storage, per-level queues).
func (r *Runtime) ScratchArray(name string, length, elem int64) *memsim.Array {
	a := r.M.MustAlloc(name, length, elem, memsim.AllocOpts{
		Policy:       r.opts.NodePolicy,
		BlockThreads: r.opts.Threads,
		PageSize:     r.opts.PageSize,
		THP:          r.opts.THP,
		AppDirect:    r.opts.AppDirect,
	})
	r.node = append(r.node, a)
	return a
}

// ParallelVerts distributes the vertex range across the runtime's threads
// in statically owned chunks (see ParallelItems), so degree-skewed inputs
// (web-crawl hubs) spread hub chunks across all threads.
func (r *Runtime) ParallelVerts(fn func(t *memsim.Thread, lo, hi graph.Node)) memsim.RegionStats {
	return r.ParallelItems(int64(r.G.NumNodes()), func(t *memsim.Thread, lo, hi int64) {
		fn(t, graph.Node(lo), graph.Node(hi))
	})
}

// ParallelItems distributes [0, n) across threads in fixed-size chunks with
// deterministic static ownership: chunk i belongs to thread i mod T, and
// each thread walks its chunks in ascending order. Unlike a dynamic shared
// cursor, charge attribution (which thread's simulated clock and counters a
// chunk lands on) is a pure function of (n, T) — never of goroutine
// interleaving — which is what keeps simulated results byte-identical at
// any GOMAXPROCS. Strided ownership still spreads degree-skewed chunk costs
// across threads the way Galois' dynamic scheduler does on average.
func (r *Runtime) ParallelItems(n int64, fn func(t *memsim.Thread, lo, hi int64)) memsim.RegionStats {
	threads := clampThreads(r)
	chunk := n / int64(threads*8)
	if chunk < 64 {
		// Small work lists still spread across every thread (one chunk
		// per thread) rather than serializing onto chunk 0: the
		// dynamic scheduler this replaces would have balanced a tiny
		// high-diameter frontier too.
		chunk = (n + int64(threads) - 1) / int64(threads)
		if chunk > 64 {
			chunk = 64
		}
		if chunk < 1 {
			chunk = 1
		}
	}
	nChunks := (n + chunk - 1) / chunk
	return r.M.Parallel(threads, func(t *memsim.Thread) {
		for c := int64(t.ID); c < nChunks; c += int64(threads) {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(t, lo, hi)
		}
	})
}

// Parallel runs fn on every configured thread with no pre-partitioned
// work; asynchronous kernels use it with a shared worklist.
func (r *Runtime) Parallel(fn func(t *memsim.Thread)) memsim.RegionStats {
	return r.M.Parallel(clampThreads(r), fn)
}

// RegionThreads returns the thread count parallel regions actually run with
// (the configured count clamped to the machine), which callers use to size
// per-thread shards indexed by Thread.ID.
func (r *Runtime) RegionThreads() int { return clampThreads(r) }

func clampThreads(r *Runtime) int {
	threads := r.opts.Threads
	if max := r.M.Config().MaxThreads(); threads > max {
		threads = max
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// AdjView bundles one direction's adjacency view (raw slices or
// compressed byte blocks) with the simulated arrays its traversal
// charges. The operator engine and the asynchronous kernels go through
// this seam, so traversal code is identical under both storage backends
// and only the charging (raw element ranges vs compressed byte ranges
// plus decode cost) differs.
type AdjView struct {
	Adj     graph.Adjacency
	Offsets *memsim.Array
	Edges   *memsim.Array // uint32 edge elements (raw) or block bytes (compressed)
	Weights *memsim.Array // raw weighted runtimes only; weights ride in compressed blocks
	Z       bool

	// Ov/Delta are set on overlay runtimes: Ov is Adj's concrete overlay
	// adapter (for base-vs-delta extent splits) and Delta the simulated
	// array its entries charge against. Base traversal charges are
	// identical to a plain runtime's; the delta entries are charged as a
	// separate small array — the honest-charging contract.
	Ov    *graph.OverlayAdj
	Delta *memsim.Array
}

// buildViews caches both directions' views once the arrays exist.
func (r *Runtime) buildViews() {
	z := r.opts.Backend == BackendCompressed
	if r.Ov != nil {
		oa := r.Ov.OutAdj(z)
		r.outView = AdjView{Adj: oa, Offsets: r.Offsets, Edges: r.Edges, Z: z, Ov: oa, Delta: r.DeltaOut}
		if !z {
			r.outView.Weights = r.Weights
		}
		if r.InOffsets == nil {
			r.inView = AdjView{}
		} else {
			ia := r.Ov.InAdj(z)
			r.inView = AdjView{Adj: ia, Offsets: r.InOffsets, Edges: r.InEdges, Z: z, Ov: ia, Delta: r.DeltaIn}
			if !z {
				r.inView.Weights = r.InWeights
			}
		}
		return
	}
	if z {
		r.outView = AdjView{Adj: r.ZOut, Offsets: r.Offsets, Edges: r.Edges, Z: true}
	} else {
		r.outView = AdjView{Adj: r.G.RawOut(), Offsets: r.Offsets, Edges: r.Edges, Weights: r.Weights}
	}
	if r.InOffsets == nil {
		r.inView = AdjView{}
	} else if z {
		r.inView = AdjView{Adj: r.ZIn, Offsets: r.InOffsets, Edges: r.InEdges, Z: true}
	} else {
		r.inView = AdjView{Adj: r.G.RawIn(), Offsets: r.InOffsets, Edges: r.InEdges, Weights: r.InWeights}
	}
}

// OutView returns the out-direction view.
func (r *Runtime) OutView() AdjView { return r.outView }

// InView returns the in-direction view; Valid reports false when the
// runtime holds no transpose.
func (r *Runtime) InView() AdjView { return r.inView }

// Valid reports whether the view's direction is allocated.
func (av AdjView) Valid() bool { return av.Adj != nil }

// ChargeScan charges streaming v's whole adjacency block: the raw edge
// (and, if weighted, weight) elements, or the compressed bytes plus the
// per-edge decode cost. Offsets are charged by the caller (gathered per
// chunk or streamed per shard).
func (av AdjView) ChargeScan(t *memsim.Thread, v graph.Node, weighted bool) {
	lo, hi := av.Adj.Extent(v)
	av.Edges.ReadRange(t, lo, hi)
	if av.Z {
		deg := av.Adj.Degree(v)
		if av.Ov != nil {
			deg = av.Ov.BaseDegree(v) // the base block decodes whole
		}
		t.Decode(1, deg)
	} else if weighted && av.Weights != nil {
		av.Weights.ReadRange(t, lo, hi)
	}
	av.chargeDelta(t, v)
}

// chargeDelta streams v's overlay delta entries (no-op off overlays and
// for untouched vertices).
func (av AdjView) chargeDelta(t *memsim.Thread, v graph.Node) {
	if av.Ov == nil {
		return
	}
	if dlo, dhi := av.Ov.DeltaExtent(v); dhi > dlo {
		av.Delta.ReadRange(t, dlo, dhi)
	}
}

// ChargePrefix charges an early-exited scan of v's block that consumed
// `consumed` base backing elements and `deltaConsumed` overlay delta
// entries (a Cursor's Consumed and DeltaConsumed values) covering k edges.
func (av AdjView) ChargePrefix(t *memsim.Thread, v graph.Node, consumed, deltaConsumed, k int64) {
	lo, _ := av.Adj.Extent(v)
	av.Edges.ReadRange(t, lo, lo+consumed)
	if av.Z {
		t.Decode(1, k)
	}
	if av.Ov != nil && deltaConsumed > 0 {
		dlo, _ := av.Ov.DeltaExtent(v)
		av.Delta.ReadRange(t, dlo, dlo+deltaConsumed)
	}
}

// ChargeBlock charges one batched scan of the offsets plus every
// adjacency block of the contiguous vertex range [lo, hi): the chunked
// equivalent of ChargeScan per vertex, in two sequential range reads.
func (av AdjView) ChargeBlock(t *memsim.Thread, lo, hi graph.Node, weighted bool) {
	if hi <= lo {
		return
	}
	av.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
	elo, ehi := av.Adj.ExtentRange(lo, hi)
	av.Edges.ReadRange(t, elo, ehi)
	if av.Z {
		// Base(v) keeps base semantics under overlays, so this is the
		// base edge count of the range — exactly what must be decoded.
		t.Decode(int64(hi-lo), av.Adj.Base(hi)-av.Adj.Base(lo))
	} else if weighted && av.Weights != nil {
		av.Weights.ReadRange(t, elo, ehi)
	}
	if av.Ov != nil {
		if dlo, dhi := av.Ov.DeltaExtentRange(lo, hi); dhi > dlo {
			av.Delta.ReadRange(t, dlo, dhi)
		}
	}
}

// Weighted reports whether edge weights are available to kernels on this
// runtime (as a parallel array on the raw backend, interleaved in the
// blocks on the compressed one).
func (r *Runtime) Weighted() bool {
	if r.opts.Backend == BackendCompressed {
		return r.opts.Weighted && r.G.HasWeights()
	}
	return r.Weights != nil
}

// InWeighted is Weighted for the transpose direction.
func (r *Runtime) InWeighted() bool {
	if r.InOffsets == nil || r.G.InWeights == nil {
		return false
	}
	if r.opts.Backend == BackendCompressed {
		return r.opts.Weighted
	}
	return r.InWeights != nil
}

// fillNbrs drains a cursor into buf (merged adjacency for overlay views,
// base order otherwise).
func fillNbrs(av AdjView, v graph.Node, buf []graph.Node) []graph.Node {
	c := av.Adj.Cursor(v)
	for {
		d, ok := c.Next()
		if !ok {
			return buf
		}
		buf = append(buf, d)
	}
}

// OutScan charges the reads that visiting v's out-edges performs (offset
// pair, adjacency block, and weights if requested) and returns the
// neighbor slice: the raw alias on plain runtimes, a per-thread merged
// buffer on overlay runtimes (valid until t's next OutScan).
func (r *Runtime) OutScan(t *memsim.Thread, v graph.Node, weights bool) []graph.Node {
	r.Offsets.ReadN(t, int64(v), 2)
	r.OutView().ChargeScan(t, v, weights)
	if r.Ov == nil {
		return r.G.OutEdges[r.G.OutOffsets[v]:r.G.OutOffsets[v+1]]
	}
	buf := fillNbrs(r.outView, v, r.nbrBufFor(t)[:0])
	r.nbrBuf[t.ID] = buf
	return buf
}

// OutScanW is OutScan plus the parallel weight slice (weighted runtimes
// only): aliases of the base arrays on plain runtimes, per-thread merged
// buffers on overlay runtimes.
func (r *Runtime) OutScanW(t *memsim.Thread, v graph.Node) ([]graph.Node, []uint32) {
	r.Offsets.ReadN(t, int64(v), 2)
	r.OutView().ChargeScan(t, v, true)
	if r.Ov == nil {
		lo, hi := r.G.OutOffsets[v], r.G.OutOffsets[v+1]
		return r.G.OutEdges[lo:hi], r.G.OutWeights[lo:hi]
	}
	nbrs := r.nbrBufFor(t)[:0]
	ws := r.wBuf[t.ID][:0]
	c := r.outView.Adj.Cursor(v)
	for {
		d, ok := c.Next()
		if !ok {
			break
		}
		nbrs = append(nbrs, d)
		ws = append(ws, r.Ov.OutWeight(c.EI()))
	}
	r.nbrBuf[t.ID], r.wBuf[t.ID] = nbrs, ws
	return nbrs, ws
}

// InScan is OutScan for the in-direction; the transpose must be allocated.
func (r *Runtime) InScan(t *memsim.Thread, v graph.Node, weights bool) []graph.Node {
	r.InOffsets.ReadN(t, int64(v), 2)
	r.InView().ChargeScan(t, v, weights)
	if r.Ov == nil {
		return r.G.InEdges[r.G.InOffsets[v]:r.G.InOffsets[v+1]]
	}
	if r.inNbrBuf == nil {
		r.inNbrBuf = make([][]graph.Node, r.RegionThreads())
	}
	buf := fillNbrs(r.inView, v, r.inNbrBuf[t.ID][:0])
	r.inNbrBuf[t.ID] = buf
	return buf
}

// nbrBufFor returns t's out-direction merge buffer, sizing the shard set
// lazily (overlay runtimes only).
func (r *Runtime) nbrBufFor(t *memsim.Thread) []graph.Node {
	if r.nbrBuf == nil {
		r.nbrBuf = make([][]graph.Node, r.RegionThreads())
		r.wBuf = make([][]uint32, r.RegionThreads())
	}
	return r.nbrBuf[t.ID]
}

// scanPrefix charges reads for only the first k neighbors of v in av's
// direction. The compressed form charges the byte prefix those edges
// decode from (proportional, rounded up — prefix byte extents are not
// materialized) plus their decode cost.
func scanPrefix(av AdjView, t *memsim.Thread, v graph.Node, k int64) {
	deg := av.Adj.Degree(v)
	if k > deg {
		k = deg
	}
	lo, hi := av.Adj.Extent(v)
	if !av.Z {
		av.Edges.ReadRange(t, lo, lo+k)
		return
	}
	consumed := hi - lo
	if deg > 0 && k < deg {
		consumed = (consumed*k + deg - 1) / deg
	}
	av.Edges.ReadRange(t, lo, lo+consumed)
	t.Decode(1, k)
}

// prefixOverlay walks the first k merged neighbors of v through a cursor
// and charges exactly the base elements and delta entries it consumed.
func (r *Runtime) prefixOverlay(av AdjView, t *memsim.Thread, v graph.Node, k int64, buf []graph.Node) []graph.Node {
	c := av.Adj.Cursor(v)
	for int64(len(buf)) < k {
		d, ok := c.Next()
		if !ok {
			break
		}
		buf = append(buf, d)
	}
	av.ChargePrefix(t, v, c.Consumed(), c.DeltaConsumed(), int64(len(buf)))
	return buf
}

// OutScanPrefix charges reads for only the first k out-neighbors of v
// (early-exit scans, e.g. direction-optimizing pull).
func (r *Runtime) OutScanPrefix(t *memsim.Thread, v graph.Node, k int64) []graph.Node {
	r.Offsets.ReadN(t, int64(v), 2)
	if r.Ov != nil {
		buf := r.prefixOverlay(r.outView, t, v, k, r.nbrBufFor(t)[:0])
		r.nbrBuf[t.ID] = buf
		return buf
	}
	scanPrefix(r.OutView(), t, v, k)
	lo, hi := r.G.OutOffsets[v], r.G.OutOffsets[v+1]
	if lo+k < hi {
		hi = lo + k
	}
	return r.G.OutEdges[lo:hi]
}

// InScanPrefix charges reads for only the first k in-neighbors of v.
func (r *Runtime) InScanPrefix(t *memsim.Thread, v graph.Node, k int64) []graph.Node {
	r.InOffsets.ReadN(t, int64(v), 2)
	if r.Ov != nil {
		if r.inNbrBuf == nil {
			r.inNbrBuf = make([][]graph.Node, r.RegionThreads())
		}
		buf := r.prefixOverlay(r.inView, t, v, k, r.inNbrBuf[t.ID][:0])
		r.inNbrBuf[t.ID] = buf
		return buf
	}
	scanPrefix(r.InView(), t, v, k)
	lo, hi := r.G.InOffsets[v], r.G.InOffsets[v+1]
	if lo+k < hi {
		hi = lo + k
	}
	return r.G.InEdges[lo:hi]
}

// NumNodes dispatches the vertex count (identical on every epoch form).
func (r *Runtime) NumNodes() int { return r.G.NumNodes() }

// NumEdges dispatches the edge count of the epoch the runtime serves: the
// merged base+delta count on overlay epochs, the CSR count otherwise.
// Kernels must use this (not r.G.NumEdges()) for |E|-derived thresholds so
// overlay and rebuilt epochs take identical push/pull decisions.
func (r *Runtime) NumEdges() int64 {
	if r.Ov != nil {
		return r.Ov.NumEdges()
	}
	return r.G.NumEdges()
}

// OutDegree dispatches the merged out-degree of v.
func (r *Runtime) OutDegree(v graph.Node) int64 {
	if r.Ov != nil {
		return r.Ov.OutDegree(v)
	}
	return r.G.OutDegree(v)
}

// InDegree dispatches the merged in-degree of v.
func (r *Runtime) InDegree(v graph.Node) int64 {
	if r.Ov != nil {
		return r.Ov.InDegree(v)
	}
	return r.G.InDegree(v)
}

// OutNeighbors returns v's merged out-adjacency without charging the
// simulated machine (callers charge via ChargeScan etc.): the CSR alias on
// plain runtimes, a freshly built slice on overlay runtimes.
func (r *Runtime) OutNeighbors(v graph.Node) []graph.Node {
	if r.Ov == nil {
		return r.G.OutNeighbors(v)
	}
	return fillNbrs(r.outView, v, make([]graph.Node, 0, r.Ov.OutDegree(v)))
}

// OutWeightAt dispatches the weight of out-edge index ei (a Cursor.EI
// value: base CSR index, or |E_base|+i for the i-th overlay insert).
func (r *Runtime) OutWeightAt(ei int64) uint32 {
	if r.Ov != nil {
		return r.Ov.OutWeight(ei)
	}
	return r.G.OutWeights[ei]
}

// InWeightAt is OutWeightAt for the transpose direction.
func (r *Runtime) InWeightAt(ei int64) uint32 {
	if r.Ov != nil {
		return r.Ov.InWeight(ei)
	}
	return r.G.InWeights[ei]
}

// ChargeOutBlock charges one batched scan of the offsets and out-edge
// (and optionally weight) arrays covering every vertex in the contiguous
// range [lo, hi): the chunked equivalent of calling OutScan once per
// vertex, in two sequential range reads instead of 2·(hi-lo) calls.
func (r *Runtime) ChargeOutBlock(t *memsim.Thread, lo, hi graph.Node, weights bool) {
	r.OutView().ChargeBlock(t, lo, hi, weights)
}

// ChargeInBlock is ChargeOutBlock for the in-direction; the transpose
// must be allocated.
func (r *Runtime) ChargeInBlock(t *memsim.Thread, lo, hi graph.Node, weights bool) {
	r.InView().ChargeBlock(t, lo, hi, weights)
}

// TopologyReadBytes returns the simulated bytes read so far from the
// graph's adjacency arrays (offsets, edges, weights, both directions) —
// the slow-tier CSR stream the compressed backend exists to shrink.
// Per-vertex label arrays are excluded: their gathers are the same under
// both backends.
func (r *Runtime) TopologyReadBytes() uint64 {
	var total uint64
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights, r.DeltaOut, r.DeltaIn} {
		if a != nil {
			read, _ := a.Traffic()
			total += read
		}
	}
	return total
}

// FootprintBytes reports the simulated bytes allocated for the graph's
// topology (the §6.1 both-directions-vs-needed-direction comparison).
func (r *Runtime) FootprintBytes() int64 {
	var total int64
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights, r.DeltaOut, r.DeltaIn} {
		if a != nil {
			total += a.Bytes()
		}
	}
	return total
}
