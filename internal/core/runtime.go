// Package core implements the paper's primary contribution: a Galois-style
// shared-memory graph analytics runtime embodying the practices §4-§5
// recommend for Optane PMM and other large-memory machines:
//
//   - explicit application-level NUMA allocation (interleaved or blocked),
//     never OS-delegated local allocation, for graph-sized data (§4.1)
//   - explicit 2 MB huge pages rather than THP (§4.3), with migration
//     expected to be off (§4.2; migration is a machine-level setting)
//   - allocation of only the edge direction(s) an algorithm needs (§6.1)
//   - support for non-vertex operators and sparse worklists so
//     asynchronous data-driven algorithms are expressible (§5)
//
// A Runtime binds one graph to one simulated machine: it allocates the
// graph's CSR arrays on the machine and provides the parallel-execution and
// access-charging primitives the kernels in internal/analytics build on.
package core

import (
	"fmt"

	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Options configures a Runtime. The zero value is not useful; call
// GaloisDefaults or a frameworks profile for a ready-made configuration.
type Options struct {
	// Threads is the number of virtual hardware threads parallel
	// sections use.
	Threads int
	// GraphPolicy places the CSR topology arrays; NodePolicy places
	// per-vertex label arrays.
	GraphPolicy memsim.Policy
	NodePolicy  memsim.Policy
	// PageSize backs every allocation (0 = machine default). Galois
	// passes memsim.PageHuge explicitly.
	PageSize int64
	// THP marks allocations as relying on transparent huge pages
	// (framework emulations that mmap 4 KB pages and let the OS
	// promote).
	THP bool
	// BothDirections allocates in-edges alongside out-edges regardless
	// of need (GAP/GBBS/GraphIt behaviour §6.1). When false, in-edge
	// arrays are allocated only if the graph's transpose is present.
	BothDirections bool
	// Weighted allocates the edge-weight array.
	Weighted bool
	// AppDirect places every allocation on the Optane media of an
	// app-direct machine: the uncached-Optane baseline the memory-mode
	// DRAM cache is compared against.
	AppDirect bool
}

// GaloisDefaults returns the configuration the paper recommends: explicit
// huge pages, interleaved placement, needed directions only.
func GaloisDefaults(threads int) Options {
	return Options{
		Threads:     threads,
		GraphPolicy: memsim.Interleaved,
		NodePolicy:  memsim.Interleaved,
		PageSize:    memsim.PageHuge,
	}
}

// Runtime binds a graph to a simulated machine.
type Runtime struct {
	M *memsim.Machine
	G *graph.Graph

	// Simulated allocations mirroring the CSR arrays.
	Offsets, Edges, Weights       *memsim.Array
	InOffsets, InEdges, InWeights *memsim.Array

	opts Options
	node []*memsim.Array // node arrays allocated through the runtime
}

// New builds a Runtime: it allocates (and warms) the graph's topology
// arrays on m according to opts. Warm-up models the paper's exclusion of
// graph loading and construction time from all reported numbers.
func New(m *memsim.Machine, g *graph.Graph, opts Options) (*Runtime, error) {
	if opts.Threads <= 0 {
		opts.Threads = m.Config().MaxThreads()
	}
	if opts.BothDirections {
		g.BuildIn()
	}
	r := &Runtime{M: m, G: g, opts: opts}
	n := int64(g.NumNodes())
	e := g.NumEdges()

	alloc := func(name string, length, elem int64) (*memsim.Array, error) {
		a, err := m.Alloc(name, length, elem, memsim.AllocOpts{
			Policy:       opts.GraphPolicy,
			BlockThreads: opts.Threads,
			PageSize:     opts.PageSize,
			THP:          opts.THP,
			AppDirect:    opts.AppDirect,
		})
		if err != nil {
			return nil, fmt.Errorf("core: allocating %s: %w", name, err)
		}
		a.Warm()
		return a, nil
	}

	var err error
	if r.Offsets, err = alloc("csr.offsets", n+1, 8); err != nil {
		return nil, err
	}
	if r.Edges, err = alloc("csr.edges", e, 4); err != nil {
		return nil, err
	}
	if opts.Weighted {
		if r.Weights, err = alloc("csr.weights", e, 4); err != nil {
			return nil, err
		}
	}
	if opts.BothDirections || g.HasIn() {
		g.BuildIn()
		if r.InOffsets, err = alloc("csr.in.offsets", n+1, 8); err != nil {
			return nil, err
		}
		if r.InEdges, err = alloc("csr.in.edges", e, 4); err != nil {
			return nil, err
		}
		if opts.Weighted {
			if r.InWeights, err = alloc("csr.in.weights", e, 4); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// MustNew is New that panics on error, for configurations the caller has
// already validated.
func MustNew(m *memsim.Machine, g *graph.Graph, opts Options) *Runtime {
	r, err := New(m, g, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// Opts returns the runtime's configuration.
func (r *Runtime) Opts() Options { return r.opts }

// Threads returns the configured thread count.
func (r *Runtime) Threads() int { return r.opts.Threads }

// Close frees every allocation made through the runtime, releasing its
// simulated footprint.
func (r *Runtime) Close() {
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights} {
		if a != nil {
			r.M.Free(a)
		}
	}
	for _, a := range r.node {
		r.M.Free(a)
	}
	r.node = nil
}

// NodeArray allocates a per-vertex array of elem-byte elements with the
// runtime's node placement policy. The array is tracked and freed by Close.
func (r *Runtime) NodeArray(name string, elem int64) *memsim.Array {
	a := r.M.MustAlloc(name, int64(r.G.NumNodes()), elem, memsim.AllocOpts{
		Policy:       r.opts.NodePolicy,
		BlockThreads: r.opts.Threads,
		PageSize:     r.opts.PageSize,
		THP:          r.opts.THP,
		AppDirect:    r.opts.AppDirect,
	})
	r.node = append(r.node, a)
	return a
}

// ScratchArray allocates an arbitrary-length tracked array (worklist
// storage, per-level queues).
func (r *Runtime) ScratchArray(name string, length, elem int64) *memsim.Array {
	a := r.M.MustAlloc(name, length, elem, memsim.AllocOpts{
		Policy:       r.opts.NodePolicy,
		BlockThreads: r.opts.Threads,
		PageSize:     r.opts.PageSize,
		THP:          r.opts.THP,
		AppDirect:    r.opts.AppDirect,
	})
	r.node = append(r.node, a)
	return a
}

// ParallelVerts distributes the vertex range across the runtime's threads
// in statically owned chunks (see ParallelItems), so degree-skewed inputs
// (web-crawl hubs) spread hub chunks across all threads.
func (r *Runtime) ParallelVerts(fn func(t *memsim.Thread, lo, hi graph.Node)) memsim.RegionStats {
	return r.ParallelItems(int64(r.G.NumNodes()), func(t *memsim.Thread, lo, hi int64) {
		fn(t, graph.Node(lo), graph.Node(hi))
	})
}

// ParallelItems distributes [0, n) across threads in fixed-size chunks with
// deterministic static ownership: chunk i belongs to thread i mod T, and
// each thread walks its chunks in ascending order. Unlike a dynamic shared
// cursor, charge attribution (which thread's simulated clock and counters a
// chunk lands on) is a pure function of (n, T) — never of goroutine
// interleaving — which is what keeps simulated results byte-identical at
// any GOMAXPROCS. Strided ownership still spreads degree-skewed chunk costs
// across threads the way Galois' dynamic scheduler does on average.
func (r *Runtime) ParallelItems(n int64, fn func(t *memsim.Thread, lo, hi int64)) memsim.RegionStats {
	threads := clampThreads(r)
	chunk := n / int64(threads*8)
	if chunk < 64 {
		// Small work lists still spread across every thread (one chunk
		// per thread) rather than serializing onto chunk 0: the
		// dynamic scheduler this replaces would have balanced a tiny
		// high-diameter frontier too.
		chunk = (n + int64(threads) - 1) / int64(threads)
		if chunk > 64 {
			chunk = 64
		}
		if chunk < 1 {
			chunk = 1
		}
	}
	nChunks := (n + chunk - 1) / chunk
	return r.M.Parallel(threads, func(t *memsim.Thread) {
		for c := int64(t.ID); c < nChunks; c += int64(threads) {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(t, lo, hi)
		}
	})
}

// Parallel runs fn on every configured thread with no pre-partitioned
// work; asynchronous kernels use it with a shared worklist.
func (r *Runtime) Parallel(fn func(t *memsim.Thread)) memsim.RegionStats {
	return r.M.Parallel(clampThreads(r), fn)
}

// RegionThreads returns the thread count parallel regions actually run with
// (the configured count clamped to the machine), which callers use to size
// per-thread shards indexed by Thread.ID.
func (r *Runtime) RegionThreads() int { return clampThreads(r) }

func clampThreads(r *Runtime) int {
	threads := r.opts.Threads
	if max := r.M.Config().MaxThreads(); threads > max {
		threads = max
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// OutScan charges the reads that visiting v's out-edges performs (offset
// pair, edge list, and weights if requested) and returns the neighbor
// slice.
func (r *Runtime) OutScan(t *memsim.Thread, v graph.Node, weights bool) []graph.Node {
	r.Offsets.ReadN(t, int64(v), 2)
	lo, hi := r.G.OutOffsets[v], r.G.OutOffsets[v+1]
	r.Edges.ReadRange(t, lo, hi)
	if weights && r.Weights != nil {
		r.Weights.ReadRange(t, lo, hi)
	}
	return r.G.OutEdges[lo:hi]
}

// InScan is OutScan for the in-direction; the transpose must be allocated.
func (r *Runtime) InScan(t *memsim.Thread, v graph.Node, weights bool) []graph.Node {
	r.InOffsets.ReadN(t, int64(v), 2)
	lo, hi := r.G.InOffsets[v], r.G.InOffsets[v+1]
	r.InEdges.ReadRange(t, lo, hi)
	if weights && r.InWeights != nil {
		r.InWeights.ReadRange(t, lo, hi)
	}
	return r.G.InEdges[lo:hi]
}

// OutScanPrefix charges reads for only the first k out-neighbors of v
// (early-exit scans, e.g. direction-optimizing pull).
func (r *Runtime) OutScanPrefix(t *memsim.Thread, v graph.Node, k int64) []graph.Node {
	r.Offsets.ReadN(t, int64(v), 2)
	lo, hi := r.G.OutOffsets[v], r.G.OutOffsets[v+1]
	if lo+k < hi {
		hi = lo + k
	}
	r.Edges.ReadRange(t, lo, hi)
	return r.G.OutEdges[lo:hi]
}

// InScanPrefix charges reads for only the first k in-neighbors of v.
func (r *Runtime) InScanPrefix(t *memsim.Thread, v graph.Node, k int64) []graph.Node {
	r.InOffsets.ReadN(t, int64(v), 2)
	lo, hi := r.G.InOffsets[v], r.G.InOffsets[v+1]
	if lo+k < hi {
		hi = lo + k
	}
	r.InEdges.ReadRange(t, lo, hi)
	return r.G.InEdges[lo:hi]
}

// ChargeOutBlock charges one batched scan of the offsets and out-edge
// (and optionally weight) arrays covering every vertex in the contiguous
// range [lo, hi): the chunked equivalent of calling OutScan once per
// vertex, in two sequential range reads instead of 2·(hi-lo) calls.
func (r *Runtime) ChargeOutBlock(t *memsim.Thread, lo, hi graph.Node, weights bool) {
	if hi <= lo {
		return
	}
	r.Offsets.ReadRange(t, int64(lo), int64(hi)+1)
	elo, ehi := r.G.OutOffsets[lo], r.G.OutOffsets[hi]
	r.Edges.ReadRange(t, elo, ehi)
	if weights && r.Weights != nil {
		r.Weights.ReadRange(t, elo, ehi)
	}
}

// ChargeInBlock is ChargeOutBlock for the in-direction; the transpose
// must be allocated.
func (r *Runtime) ChargeInBlock(t *memsim.Thread, lo, hi graph.Node, weights bool) {
	if hi <= lo {
		return
	}
	r.InOffsets.ReadRange(t, int64(lo), int64(hi)+1)
	elo, ehi := r.G.InOffsets[lo], r.G.InOffsets[hi]
	r.InEdges.ReadRange(t, elo, ehi)
	if weights && r.InWeights != nil {
		r.InWeights.ReadRange(t, elo, ehi)
	}
}

// FootprintBytes reports the simulated bytes allocated for the graph's
// topology (the §6.1 both-directions-vs-needed-direction comparison).
func (r *Runtime) FootprintBytes() int64 {
	var total int64
	for _, a := range []*memsim.Array{r.Offsets, r.Edges, r.Weights, r.InOffsets, r.InEdges, r.InWeights} {
		if a != nil {
			total += a.Bytes()
		}
	}
	return total
}
