// Package oocsim simulates GridGraph, the out-of-core graph analytics
// system the paper runs against Optane PMM's app-direct mode (§6.4,
// Table 5). The graph's edges live on the Optane media as a P x P grid of
// edge blocks (source stripe x destination stripe); vertex data lives in
// DRAM under an explicit memory budget.
//
// Execution is edge-centric and sweep-based: every iteration streams the
// entire edge grid from app-direct storage and applies a vertex-program
// edge function, with source-vertex values snapshotted at sweep start
// (bulk-synchronous semantics). Parallel threads own disjoint destination
// stripes (grid columns), so destination updates are race-free — the same
// discipline GridGraph's 2-level hierarchy provides. On high-diameter
// graphs this streaming is the behaviour the paper calls out: after a few
// bfs rounds very few vertices change, yet the blocks containing their
// edges must still be streamed from storage every round.
//
// GridGraph's documented limitations are reproduced: vertex programs
// only, signed 32-bit node IDs (no wdc12), and only a subset of the
// benchmark apps (bfs, cc; the paper observed pagerank failing with
// assertion errors, which PageRank reports).
//
// Edge-block streaming and vertex-data traffic are charged to the
// app-direct memsim machine; sweeps read per-sweep snapshots (forward
// sweeps store into owned stripes, reversed sweeps min-CAS against the
// snapshot), so simulated times and outputs are deterministic at any
// GOMAXPROCS, matching the engine's contract.
package oocsim

import (
	"fmt"
	"sync/atomic"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Config describes the simulated GridGraph deployment.
type Config struct {
	// GridP is the partition grid dimension (the paper uses 512 x 512).
	GridP int
	// Machine must be an app-direct-mode machine (DRAM main memory,
	// Optane as storage).
	Machine memsim.MachineConfig
	// MemoryBudget is the DRAM budget handed to GridGraph (the paper
	// gives it all 384 GB).
	MemoryBudget int64
	// TimeoutSeconds bounds simulated execution time, mirroring the
	// paper's 2-hour wall-clock cap; <= 0 means no timeout.
	TimeoutSeconds float64
}

// DefaultConfig returns the paper's GridGraph setup at the shared scale
// divisor.
func DefaultConfig(scaleDiv int64) Config {
	m := memsim.Scaled(memsim.AppDirectMachine(), scaleDiv)
	return Config{
		GridP:        512,
		Machine:      m,
		MemoryBudget: m.DRAMPerSocket * int64(m.Sockets),
	}
}

// Engine is a preprocessed GridGraph instance.
type Engine struct {
	cfg Config
	g   *graph.Graph
	m   *memsim.Machine

	p      int
	stripe int // vertices per stripe

	// Edges grouped column-major by block: colOff[j*p+i] indexes into
	// pairs for block (row i, column j), so one thread can stream a
	// whole column contiguously.
	pairs  []edgePair
	colOff []int64

	gridArr *memsim.Array // edge grid on Optane media
	vertArr *memsim.Array // vertex values in DRAM
}

type edgePair struct{ src, dst graph.Node }

// NewEngine preprocesses g into the grid layout (GridGraph's offline
// preprocessing; not charged to execution time, matching the paper's use
// of pre-partitioned inputs). It rejects graphs GridGraph cannot load.
func NewEngine(g *graph.Graph, cfg Config) (*Engine, error) {
	if int64(g.NumNodes()) > (1<<31)-1 {
		return nil, fmt.Errorf("oocsim: GridGraph stores node IDs in signed 32-bit ints; %d nodes exceed the limit", g.NumNodes())
	}
	if cfg.GridP <= 0 {
		return nil, fmt.Errorf("oocsim: grid dimension %d must be positive", cfg.GridP)
	}
	if cfg.Machine.Mode != memsim.AppDirect {
		return nil, fmt.Errorf("oocsim: machine %q must be in app-direct mode, not %v", cfg.Machine.Name, cfg.Machine.Mode)
	}
	n := g.NumNodes()
	p := cfg.GridP
	if p > n && n > 0 {
		p = n
	}
	if p < 1 {
		p = 1
	}
	stripe := (n + p - 1) / p
	if stripe == 0 {
		stripe = 1
	}

	e := &Engine{cfg: cfg, g: g, m: memsim.NewMachine(cfg.Machine), p: p, stripe: stripe}

	// Bucket edges column-major by (dst stripe, src stripe).
	counts := make([]int64, p*p+1)
	for v := 0; v < n; v++ {
		si := v / stripe
		for _, d := range g.OutNeighbors(graph.Node(v)) {
			counts[int(d)/stripe*p+si+1]++
		}
	}
	for i := 0; i < p*p; i++ {
		counts[i+1] += counts[i]
	}
	e.colOff = counts
	e.pairs = make([]edgePair, g.NumEdges())
	cursor := make([]int64, p*p)
	copy(cursor, counts[:p*p])
	for v := 0; v < n; v++ {
		si := v / stripe
		for _, d := range g.OutNeighbors(graph.Node(v)) {
			b := int(d)/stripe*p + si
			e.pairs[cursor[b]] = edgePair{graph.Node(v), d}
			cursor[b]++
		}
	}

	// GridGraph stores edges as (src, dst) pairs, 8 bytes each, on the
	// Optane media.
	e.gridArr = e.m.MustAlloc("grid.edges", maxI64(g.NumEdges(), 1), 8, memsim.AllocOpts{
		Policy:    memsim.Interleaved,
		AppDirect: true,
	})
	e.gridArr.Warm()
	e.vertArr = e.m.MustAlloc("grid.vertices", int64(n), 4, memsim.AllocOpts{
		Policy: memsim.Interleaved,
	})
	e.vertArr.Warm()
	return e, nil
}

// GridP returns the effective grid dimension.
func (e *Engine) GridP() int { return e.p }

// Machine exposes the underlying simulated machine (counters, wall clock).
func (e *Engine) Machine() *memsim.Machine { return e.m }

// EdgeBytesPerSweep returns the bytes streamed from storage per full-grid
// sweep.
func (e *Engine) EdgeBytesPerSweep() int64 { return e.gridArr.Bytes() }

// sweep streams every grid column once. For each edge, fn receives the
// source and destination and must only write destination state. In a
// forward sweep destinations fall in the calling thread's owned column
// stripes; in a reversed sweep (edge direction swapped, for undirected
// propagation) they fall in the block's row stripe, which any thread may
// be writing — reversed operators must use commutative atomic writes.
// Returns the number of edges for which fn reported an update.
func (e *Engine) sweep(reversed bool, fn func(src, dst graph.Node) bool) int64 {
	return e.sweepOwned(reversed, func(_, _ graph.Node) func(src, dst graph.Node) bool {
		return fn
	})
}

// sweepOwned is sweep for operators that need to know the calling thread's
// owned destination range [ownLo, ownHi): mk builds the per-thread edge
// function once per thread. Operators use it to read live state for owned
// vertices (their own ordered writes) and a frozen snapshot for foreign
// ones, which keeps sweeps deterministic under real parallelism.
func (e *Engine) sweepOwned(reversed bool, mk func(ownLo, ownHi graph.Node) func(src, dst graph.Node) bool) int64 {
	threads := e.cfg.Machine.MaxThreads()
	if threads > e.p {
		threads = e.p
	}
	var updates atomic.Int64
	e.m.Parallel(threads, func(t *memsim.Thread) {
		jlo := e.p * t.ID / threads
		jhi := e.p * (t.ID + 1) / threads
		nAll := int64(e.g.NumNodes())
		ownLo := graph.Node(minI64(int64(jlo)*int64(e.stripe), nAll))
		ownHi := graph.Node(minI64(int64(jhi)*int64(e.stripe), nAll))
		fn := mk(ownLo, ownHi)
		local := int64(0)
		n := int64(e.g.NumNodes())
		for j := jlo; j < jhi; j++ {
			blo, bhi := e.colOff[j*e.p], e.colOff[(j+1)*e.p]
			if blo == bhi {
				continue
			}
			// The destination chunk is loaded once per column and
			// written back once; each non-empty block additionally
			// streams its source chunk (GridGraph's vertex-chunk
			// re-read amplification).
			dlo := int64(j) * int64(e.stripe)
			dhi := minI64(dlo+int64(e.stripe), n)
			e.vertArr.ReadRange(t, dlo, dhi)
			for i := 0; i < e.p; i++ {
				b := j*e.p + i
				if e.colOff[b] == e.colOff[b+1] {
					continue
				}
				slo := int64(i) * int64(e.stripe)
				shi := minI64(slo+int64(e.stripe), n)
				e.vertArr.ReadRange(t, slo, shi)
			}
			e.vertArr.WriteRange(t, dlo, dhi)
			// Stream the column's edge blocks from app-direct storage.
			e.gridArr.ReadRange(t, blo, bhi)
			t.Op(int(bhi - blo))
			for _, pr := range e.pairs[blo:bhi] {
				s, d := pr.src, pr.dst
				if reversed {
					s, d = d, s
				}
				if fn(s, d) {
					local++
				}
			}
		}
		updates.Add(local)
	})
	return updates.Load()
}

// timedOut reports whether the engine exceeded its simulated budget.
func (e *Engine) timedOut() bool {
	return e.cfg.TimeoutSeconds > 0 && e.m.WallSeconds() > e.cfg.TimeoutSeconds
}

// BFS runs GridGraph breadth-first search from src.
func (e *Engine) BFS(src graph.Node) *analytics.Result {
	e.m.ResetClock()
	n := e.g.NumNodes()
	cur := make([]uint32, n)
	next := make([]uint32, n)
	for i := range cur {
		cur[i] = analytics.Infinity
	}
	cur[src] = 0
	rounds := 0
	for {
		rounds++
		copy(next, cur)
		prev := uint32(rounds - 1)
		level := uint32(rounds)
		updates := e.sweep(false, func(s, d graph.Node) bool {
			if cur[s] == prev && next[d] == analytics.Infinity {
				next[d] = level
				return true
			}
			return false
		})
		cur, next = next, cur
		if updates == 0 || e.timedOut() {
			break
		}
	}
	return &analytics.Result{
		App: "bfs", Algorithm: "gridgraph-ad", Rounds: rounds,
		Seconds: e.m.WallSeconds(), TimedOut: e.timedOut(),
		Counters: e.m.Counters(), Dist: append([]uint32(nil), cur...),
	}
}

// CC runs GridGraph connected components: min-label propagation over the
// undirected view, one forward and one reversed grid sweep per round.
// Unlike bfs (whose frontier is level-gated), label updates are applied to
// the in-memory vertex array immediately, so labels can travel many hops
// within one sweep — which is why GridGraph's cc converges in far fewer
// sweeps than the graph diameter (and why the paper's GridGraph cc on
// uk14 finished inside 2 hours while its bfs did not).
func (e *Engine) CC() *analytics.Result {
	e.m.ResetClock()
	n := e.g.NumNodes()
	labels := make([]atomic.Uint32, n)
	for i := range labels {
		labels[i].Store(uint32(i))
	}
	// snap freezes the labels at the start of each sweep so the update
	// count and label trajectory are deterministic under any interleaving.
	//
	// Forward sweeps write only the thread-owned destination (column)
	// stripes: owned sources read live — the in-sweep multi-hop hops that
	// make GridGraph cc converge fast — foreign ones from the snapshot,
	// and writes are plain ordered stores.
	//
	// Reversed sweeps invert the edges, so the written endpoint lies in
	// the block's row stripe, owned by no particular thread: there all
	// reads come from the snapshot, claims are judged against the
	// snapshot, and writes go through a min-CAS (commutative, so the
	// post-sweep labels are interleaving-independent too).
	snap := make([]uint32, n)
	refresh := func() {
		for i := range snap {
			snap[i] = labels[i].Load()
		}
	}
	fwd := func(ownLo, ownHi graph.Node) func(s, d graph.Node) bool {
		return func(s, d graph.Node) bool {
			var ls uint32
			if s >= ownLo && s < ownHi {
				ls = labels[s].Load()
			} else {
				ls = snap[s]
			}
			if ld := labels[d].Load(); ls < ld {
				labels[d].Store(ls) // d is owned: plain ordered write
				return true
			}
			return false
		}
	}
	rev := func(_, _ graph.Node) func(s, d graph.Node) bool {
		return func(s, d graph.Node) bool {
			if ls := snap[s]; ls < snap[d] {
				relaxMinLabel(labels, d, ls)
				return true
			}
			return false
		}
	}
	rounds := 0
	for {
		rounds++
		refresh()
		updates := e.sweepOwned(false, fwd)
		refresh()
		updates += e.sweepOwned(true, rev)
		if updates == 0 || e.timedOut() {
			break
		}
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = labels[i].Load()
	}
	return &analytics.Result{
		App: "cc", Algorithm: "gridgraph-ad", Rounds: rounds,
		Seconds: e.m.WallSeconds(), TimedOut: e.timedOut(),
		Counters: e.m.Counters(), Labels: out,
	}
}

// PageRank mirrors the paper's observation that the GridGraph build fails
// on pagerank with assertion errors (§6.4).
func (e *Engine) PageRank() (*analytics.Result, error) {
	return nil, fmt.Errorf("oocsim: GridGraph pagerank fails with assertion errors (reproduced from §6.4)")
}

// Apps returns the benchmarks GridGraph implements (§6.4: it has no bc,
// kcore or sssp).
func Apps() []string { return []string{"bfs", "cc", "pr"} }

// relaxMinLabel lowers a[v] to x with a CAS loop (commutative min).
func relaxMinLabel(a []atomic.Uint32, v graph.Node, x uint32) {
	for {
		old := a[v].Load()
		if old <= x {
			return
		}
		if a[v].CompareAndSwap(old, x) {
			return
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
