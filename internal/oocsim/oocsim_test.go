package oocsim

import (
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

func testConfig() Config {
	c := DefaultConfig(32)
	c.GridP = 16
	return c
}

func TestNewEngineValidation(t *testing.T) {
	g := gen.Path(10)
	bad := testConfig()
	bad.GridP = 0
	if _, err := NewEngine(g, bad); err == nil {
		t.Error("zero grid accepted")
	}
	wrongMode := testConfig()
	wrongMode.Machine = memsim.Scaled(memsim.OptaneMachine(), 32)
	if _, err := NewEngine(g, wrongMode); err == nil {
		t.Error("memory-mode machine accepted")
	}
}

func TestGridCoversAllEdges(t *testing.T) {
	g := gen.ErdosRenyi(300, 2400, 3)
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(e.pairs)) != g.NumEdges() {
		t.Fatalf("grid holds %d edges, want %d", len(e.pairs), g.NumEdges())
	}
	// Every pair must sit in the column of its destination stripe.
	for j := 0; j < e.p; j++ {
		lo, hi := e.colOff[j*e.p], e.colOff[(j+1)*e.p]
		for _, pr := range e.pairs[lo:hi] {
			if int(pr.dst)/e.stripe != j {
				t.Fatalf("edge (%d,%d) filed in column %d", pr.src, pr.dst, j)
			}
		}
	}
}

func TestGridPClampsToNodes(t *testing.T) {
	g := gen.Path(5)
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.GridP() > 5 {
		t.Errorf("grid dimension %d exceeds node count", e.GridP())
	}
}

func TestOOCBFSMatchesReference(t *testing.T) {
	g := gen.WebCrawl(1500, 5, 30, 3)
	src, _ := g.MaxOutDegreeNode()
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := e.BFS(src)
	// Reference BFS.
	want := make([]uint32, g.NumNodes())
	for i := range want {
		want[i] = analytics.Infinity
	}
	want[src] = 0
	queue := []graph.Node{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.OutNeighbors(v) {
			if want[d] == analytics.Infinity {
				want[d] = want[v] + 1
				queue = append(queue, d)
			}
		}
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
	if res.TimedOut {
		t.Error("unexpected timeout")
	}
	if res.Seconds <= 0 {
		t.Error("no simulated time")
	}
}

func TestOOCCCFindsWeakComponents(t *testing.T) {
	// A directed path is one weak component; label propagation must
	// flow against the edges via the reversed sweep.
	g := gen.Path(40)
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := e.CC()
	for v, l := range res.Labels {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, l)
		}
	}
}

func TestOOCTimeout(t *testing.T) {
	g := gen.WebCrawl(4000, 5, 200, 7)
	cfg := testConfig()
	cfg.TimeoutSeconds = 1e-9 // expire immediately
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.MaxOutDegreeNode()
	res := e.BFS(src)
	if !res.TimedOut {
		t.Error("run should have timed out")
	}
}

func TestOOCPageRankFails(t *testing.T) {
	g := gen.Path(10)
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PageRank(); err == nil {
		t.Error("pagerank should report the assertion failure the paper observed")
	}
}

func TestOOCStreamsFullGridPerRound(t *testing.T) {
	g := gen.WebCrawl(3000, 6, 80, 11)
	src, _ := g.MaxOutDegreeNode()
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := e.BFS(src)
	wantBytes := uint64(res.Rounds) * uint64(e.EdgeBytesPerSweep())
	if res.Counters.BytesRead < wantBytes {
		t.Errorf("bytes read %d below rounds x grid = %d (must stream the whole grid every round)", res.Counters.BytesRead, wantBytes)
	}
}

func TestOOCSlowerThanMemoryMode(t *testing.T) {
	// The Table 5 headline: app-direct out-of-core is orders of
	// magnitude slower than memory-mode shared memory on a
	// high-diameter graph.
	g := gen.WebCrawl(8000, 8, 150, 5)
	src, _ := g.MaxOutDegreeNode()
	e, err := NewEngine(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ooc := e.BFS(src)

	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	r, err := core.New(m, g, core.GaloisDefaults(8))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mm := analytics.BFSSparse(r, src)

	// At full scale (Table 5) the gap is far larger; at this tiny test
	// scale we only require a clear multiple.
	if ooc.Seconds < 5*mm.Seconds {
		t.Errorf("GridGraph AD (%.4fs) should be >= 5x Galois MM (%.4fs)", ooc.Seconds, mm.Seconds)
	}
}
