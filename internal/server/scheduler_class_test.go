package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stepExec is an exec whose completions the test releases one at a time,
// recording the class order in which jobs reached execution.
type stepExec struct {
	mu      sync.Mutex
	order   []string
	entered chan *Job
	release chan struct{}
}

func newStepExec() *stepExec {
	return &stepExec{entered: make(chan *Job, 1024), release: make(chan struct{}, 1024)}
}

func (e *stepExec) exec(j *Job) ([]byte, bool, error) {
	e.mu.Lock()
	e.order = append(e.order, j.Class)
	e.mu.Unlock()
	e.entered <- j
	<-e.release
	return []byte("{}"), false, nil
}

func (e *stepExec) classOrder() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.order...)
}

// TestSchedulerWeightedDrainBoundsStarvation floods the interactive class
// while batch jobs queue behind it, drains with a single worker, and
// checks the documented weight bound: with weights 4:1 and both classes
// backlogged, every window of 5 consecutive executions contains a batch
// job — a sustained interactive flood cannot starve batch.
func TestSchedulerWeightedDrainBoundsStarvation(t *testing.T) {
	e := newStepExec()
	sched := NewClassScheduler(1, []ClassConfig{
		{Name: ClassInteractive, Weight: 4, QueueCap: 256},
		{Name: ClassBatch, Weight: 1, QueueCap: 256},
	}, e.exec)
	defer sched.Close()

	// One interactive job occupies the worker so everything submitted
	// afterwards queues behind it with both classes backlogged.
	if _, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	first := <-e.entered

	const interactive, batch = 40, 6
	var batchJobs []*Job
	for i := 0; i < interactive; i++ {
		if _, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < batch; i++ {
		j, err := sched.Submit(JobRequest{App: "pr", Class: ClassBatch})
		if err != nil {
			t.Fatal(err)
		}
		batchJobs = append(batchJobs, j)
	}

	// Step the single worker through the backlog one execution at a time.
	e.release <- struct{}{} // release the occupying job
	total := interactive + batch
	for i := 0; i < total; i++ {
		select {
		case <-e.entered:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d executions started", i, total)
		}
		e.release <- struct{}{}
	}
	<-first.Done()
	for _, j := range batchJobs {
		select {
		case <-j.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("batch job starved")
		}
	}

	order := e.classOrder()[1:] // drop the occupying job
	// Weight bound: while batch stays backlogged, any 5 consecutive
	// executions include >=1 batch job.
	lastBatch := -1
	batchSeen := 0
	for i, class := range order {
		if class == ClassBatch {
			if batchSeen < batch && i-lastBatch > 5 {
				t.Errorf("batch waited %d consecutive interactive executions (positions %d..%d), bound is 4",
					i-lastBatch-1, lastBatch+1, i)
			}
			lastBatch = i
			batchSeen++
		}
	}
	if batchSeen != batch {
		t.Fatalf("executed %d batch jobs, want %d", batchSeen, batch)
	}

	st := sched.Stats()
	if st.Classes[0].Class != ClassInteractive || st.Classes[1].Class != ClassBatch {
		t.Fatalf("class order in stats: %+v", st.Classes)
	}
	if got := st.Classes[1].Completed; got != batch {
		t.Errorf("batch completed = %d, want %d", got, batch)
	}
	if st.Classes[0].Admitted != interactive+1 || st.Classes[1].Admitted != batch {
		t.Errorf("admitted = %d/%d", st.Classes[0].Admitted, st.Classes[1].Admitted)
	}
	if st.Classes[1].QueueWait.Count != batch || st.Classes[1].Service.Count != batch {
		t.Errorf("batch histograms: wait=%d service=%d, want %d", st.Classes[1].QueueWait.Count, st.Classes[1].Service.Count, batch)
	}
}

// TestSchedulerDeadlineShedNeverExecutes proves doomed work is dropped at
// dequeue: a job whose deadline expires while the worker is busy must land
// in the terminal shed state without ever entering exec, and the per-class
// deadline_shed counter must record it.
func TestSchedulerDeadlineShedNeverExecutes(t *testing.T) {
	var executed atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	sched := NewClassScheduler(1, []ClassConfig{{Name: ClassInteractive, Weight: 1, QueueCap: 16}}, func(j *Job) ([]byte, bool, error) {
		executed.Add(1)
		started <- struct{}{}
		<-release
		return []byte("{}"), false, nil
	})
	defer sched.Close()

	blocker, err := sched.Submit(JobRequest{App: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker now blocked inside the blocker job

	doomed, err := sched.Submit(JobRequest{App: "bfs", DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	alive, err := sched.Submit(JobRequest{App: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the doomed job's deadline pass while queued
	release <- struct{}{}             // unblock: worker dequeues doomed (sheds) then alive (runs)
	<-started
	release <- struct{}{}

	select {
	case <-doomed.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("shed job did not reach a terminal state")
	}
	<-blocker.Done()
	<-alive.Done()

	st := doomed.Status()
	if st.State != JobShed || st.ShedReason != ShedDeadline {
		t.Errorf("doomed job state = %s reason=%q, want shed/deadline", st.State, st.ShedReason)
	}
	if st.QueueSeconds <= 0 || st.RunSeconds != 0 {
		t.Errorf("shed job accounting: queue=%.4fs run=%.4fs, want queue>0 run=0", st.QueueSeconds, st.RunSeconds)
	}
	if _, _, errMsg, ok := doomed.Result(); !ok || errMsg == "" {
		t.Errorf("shed job result: ok=%v errMsg=%q, want terminal with message", ok, errMsg)
	}
	if n := executed.Load(); n != 2 {
		t.Errorf("exec ran %d times, want 2 (blocker + alive; never the doomed job)", n)
	}
	stats := sched.Stats()
	if stats.Classes[0].DeadlineShed != 1 || stats.Shed != 1 {
		t.Errorf("deadline shed counters: class=%d total=%d, want 1/1", stats.Classes[0].DeadlineShed, stats.Shed)
	}
	if stats.Completed != 2 {
		t.Errorf("completed = %d, want 2", stats.Completed)
	}
}

// TestSchedulerDeadlineOrderingWithinClass checks EDF within a class: with
// the worker busy, a later-submitted tighter-deadline job runs before an
// earlier loose one, and undeadlined jobs go last in submission order.
func TestSchedulerDeadlineOrderingWithinClass(t *testing.T) {
	e := newStepExec()
	sched := NewClassScheduler(1, []ClassConfig{{Name: ClassInteractive, Weight: 1, QueueCap: 16}}, e.exec)
	defer sched.Close()

	if _, err := sched.Submit(JobRequest{App: "blocker"}); err != nil {
		t.Fatal(err)
	}
	<-e.entered
	var jobs []*Job
	for _, req := range []JobRequest{
		{App: "noDeadlineFirst"},
		{App: "loose", DeadlineMS: 60_000},
		{App: "tight", DeadlineMS: 10_000},
		{App: "noDeadlineSecond"},
	} {
		j, err := sched.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	var got []string
	e.release <- struct{}{}
	for i := 0; i < len(jobs); i++ {
		j := <-e.entered
		got = append(got, j.Req.App)
		e.release <- struct{}{}
	}
	for _, j := range jobs {
		<-j.Done()
	}
	want := []string{"tight", "loose", "noDeadlineFirst", "noDeadlineSecond"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
}

// TestSchedulerCloseShedsQueuedJobs locks the close path: queued jobs land
// in the terminal shed state (releasing any ?wait=1 callers), the running
// job finishes normally, and the accounting — closed_shed counters,
// QueueSeconds without RunSeconds — holds up.
func TestSchedulerCloseShedsQueuedJobs(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	sched := NewClassScheduler(1, []ClassConfig{
		{Name: ClassInteractive, Weight: 4, QueueCap: 16},
		{Name: ClassBatch, Weight: 1, QueueCap: 16},
	}, func(j *Job) ([]byte, bool, error) {
		started <- struct{}{}
		<-release
		return []byte("{}"), false, nil
	})

	running, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedI, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	queuedB, err := sched.Submit(JobRequest{App: "pr", Class: ClassBatch})
	if err != nil {
		t.Fatal(err)
	}

	// A waiter on a queued job, exactly like an HTTP ?wait=1 handler.
	waiterDone := make(chan JobState, 1)
	go func() {
		<-queuedI.Done()
		waiterDone <- queuedI.Status().State
	}()

	closed := make(chan struct{})
	go func() {
		sched.Close()
		close(closed)
	}()
	// Close sheds the queued jobs immediately, before the running job
	// finishes; the waiter must be released now.
	select {
	case state := <-waiterDone:
		if state != JobShed {
			t.Errorf("waiter observed state %s, want shed", state)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("?wait=1-style waiter hung across Close")
	}
	release <- struct{}{}
	<-closed
	<-running.Done()

	if st := running.Status(); st.State != JobDone || st.RunSeconds <= 0 {
		t.Errorf("running job after close: %+v", st)
	}
	for _, j := range []*Job{queuedI, queuedB} {
		st := j.Status()
		if st.State != JobShed || st.ShedReason != ShedClosed {
			t.Errorf("queued job %s: state=%s reason=%q, want shed/closed", j.ID, st.State, st.ShedReason)
		}
		if st.QueueSeconds <= 0 || st.RunSeconds != 0 {
			t.Errorf("queued job %s accounting: queue=%.4f run=%.4f", j.ID, st.QueueSeconds, st.RunSeconds)
		}
	}

	st := sched.Stats()
	if st.Classes[0].ClosedShed != 1 || st.Classes[1].ClosedShed != 1 || st.Shed != 2 {
		t.Errorf("closed shed counters: %d/%d total %d, want 1/1/2", st.Classes[0].ClosedShed, st.Classes[1].ClosedShed, st.Shed)
	}
	if st.Completed != 1 || st.Queued != 0 {
		t.Errorf("completed=%d queued=%d, want 1/0", st.Completed, st.Queued)
	}
	if st.MaxRunning != 1 {
		t.Errorf("MaxRunning = %d, want 1 (shed jobs never run)", st.MaxRunning)
	}
	// Queue-wait histograms saw every admitted job (run or shed); service
	// only the one that ran.
	waits := st.Classes[0].QueueWait.Count + st.Classes[1].QueueWait.Count
	if waits != 3 {
		t.Errorf("queue-wait observations = %d, want 3", waits)
	}
	if svc := st.Classes[0].Service.Count + st.Classes[1].Service.Count; svc != 1 {
		t.Errorf("service observations = %d, want 1", svc)
	}
}

// TestSchedulerRacingSubmitAndClose hammers Submit from many goroutines
// while Close races them (run under -race in CI): every accepted job must
// reach a terminal state, and submissions after close must fail cleanly.
func TestSchedulerRacingSubmitAndClose(t *testing.T) {
	for round := 0; round < 8; round++ {
		sched := NewClassScheduler(2, []ClassConfig{
			{Name: ClassInteractive, Weight: 4, QueueCap: 64},
			{Name: ClassBatch, Weight: 1, QueueCap: 64},
		}, func(j *Job) ([]byte, bool, error) {
			return []byte("{}"), false, nil
		})

		const submitters = 4
		var wg sync.WaitGroup
		jobs := make(chan *Job, submitters*64)
		start := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				class := ClassInteractive
				if g%2 == 1 {
					class = ClassBatch
				}
				for i := 0; i < 50; i++ {
					j, err := sched.Submit(JobRequest{App: "bfs", Class: class, DeadlineMS: int64(i % 3 * 10)})
					if err != nil {
						if !errors.Is(err, errSchedulerClosed) && !errors.Is(err, ErrQueueFull) {
							t.Errorf("submit: %v", err)
						}
						continue
					}
					jobs <- j
				}
			}(g)
		}
		close(start)
		sched.Close() // races the submitters
		wg.Wait()
		close(jobs)

		for j := range jobs {
			select {
			case <-j.Done():
			case <-time.After(10 * time.Second):
				t.Fatalf("job %s never reached a terminal state", j.ID)
			}
			if st := j.Status(); st.State != JobDone && st.State != JobShed && st.State != JobFailed {
				t.Errorf("job %s terminal state = %s", j.ID, st.State)
			}
		}
		if _, err := sched.Submit(JobRequest{App: "bfs"}); !errors.Is(err, errSchedulerClosed) {
			t.Errorf("submit after close = %v", err)
		}
	}
}

// TestSchedulerUnknownClassRejected checks class admission validation.
func TestSchedulerUnknownClassRejected(t *testing.T) {
	sched := NewClassScheduler(1, nil, func(j *Job) ([]byte, bool, error) {
		return []byte("{}"), false, nil
	})
	defer sched.Close()
	if _, err := sched.Submit(JobRequest{App: "bfs", Class: "premium"}); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("unknown class error = %v", err)
	}
	if _, err := sched.Submit(JobRequest{App: "bfs", DeadlineMS: -1}); err == nil {
		t.Error("negative deadline accepted")
	}
	// Default classes: "" resolves to interactive.
	j, err := sched.Submit(JobRequest{App: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.Class != ClassInteractive {
		t.Errorf("default class = %q, want %q", j.Class, ClassInteractive)
	}
}

// TestSchedulerPerClassQueueCaps checks that one class filling up never
// blocks another class's admissions.
func TestSchedulerPerClassQueueCaps(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	sched := NewClassScheduler(1, []ClassConfig{
		{Name: ClassInteractive, Weight: 4, QueueCap: 1},
		{Name: ClassBatch, Weight: 1, QueueCap: 2},
	}, func(j *Job) ([]byte, bool, error) {
		started <- struct{}{}
		<-release
		return []byte("{}"), false, nil
	})
	defer func() {
		close(release)
		sched.Close()
	}()

	if _, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queues are now pure backlog
	if _, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	_, err := sched.Submit(JobRequest{App: "bfs", Class: ClassInteractive})
	var full *QueueFullError
	if !errors.As(err, &full) || full.Class != ClassInteractive {
		t.Fatalf("interactive overflow = %v", err)
	}
	// Batch still admits despite interactive being full.
	for i := 0; i < 2; i++ {
		if _, err := sched.Submit(JobRequest{App: "pr", Class: ClassBatch}); err != nil {
			t.Fatalf("batch submit %d: %v", i, err)
		}
	}
	if _, err := sched.Submit(JobRequest{App: "pr", Class: ClassBatch}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch overflow = %v", err)
	}
	st := sched.Stats()
	if st.Classes[0].Rejected != 1 || st.Classes[1].Rejected != 1 || st.Rejected != 2 {
		t.Errorf("rejected counters: %d/%d total %d", st.Classes[0].Rejected, st.Classes[1].Rejected, st.Rejected)
	}
}

// TestParseClasses covers the -classes flag grammar.
func TestParseClasses(t *testing.T) {
	got, err := ParseClasses("interactive:4:256, batch:1:512")
	if err != nil {
		t.Fatal(err)
	}
	want := []ClassConfig{
		{Name: "interactive", Weight: 4, QueueCap: 256},
		{Name: "batch", Weight: 1, QueueCap: 512},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ParseClasses = %+v", got)
	}
	if got, err := ParseClasses("solo"); err != nil || len(got) != 1 || got[0].Name != "solo" || got[0].Weight != 0 {
		t.Errorf("bare name = %+v, %v", got, err)
	}
	for _, bad := range []string{"", ",", "a:b", "a:0", "a:1:x", "a:1:0", ":4", "a:1:2:3", "dup,dup"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Errorf("ParseClasses(%q) accepted", bad)
		}
	}
}
