package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// regBatch generates one valid update batch against the registry's
// CURRENT state of name (materialized, so overlay epochs validate too).
func regBatch(t *testing.T, reg *Registry, name string, size int, seed uint64, withDeletes bool) []graph.EdgeUpdate {
	t.Helper()
	g, _, ok := reg.Snapshot(name)
	if !ok {
		t.Fatalf("graph %q not registered", name)
	}
	stream, err := gen.UpdateStream(g, 1, size, seed, withDeletes)
	if err != nil {
		t.Fatal(err)
	}
	return stream[0]
}

// TestRegistryPersistAndRecover round-trips the WAL: every applied batch
// must be reconstructable by a fresh registry over the same data
// directory, and the recovered registry must keep accepting (and
// persisting) further batches.
func TestRegistryPersistAndRecover(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistryAt(dir, -1) // compaction off: recovery must replay the log
	if _, err := reg.Add("g", "direct", gen.ErdosRenyi(500, 3000, 11)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := reg.ApplyUpdates("g", regBatch(t, reg, "g", 8, uint64(0xA0+i), true)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	want, wantInfo, _ := reg.Snapshot("g")

	reg2 := NewRegistryAt(dir, -1)
	infos, err := reg2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "g" || infos[0].Updates != 3 {
		t.Fatalf("recovered %+v, want g with 3 replayed batches", infos)
	}
	if infos[0].Form != formOverlay {
		t.Fatalf("recovered form %q, want overlay (log replayed, not compacted)", infos[0].Form)
	}
	got, gotInfo, ok := reg2.Snapshot("g")
	if !ok {
		t.Fatal("recovered graph not resident")
	}
	if gotInfo.Edges != wantInfo.Edges || gotInfo.Nodes != wantInfo.Nodes {
		t.Fatalf("recovered info %+v, want %+v", gotInfo, wantInfo)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered graph state differs from the state before the restart")
	}

	// The recovered registry keeps appending to the same log.
	if _, err := reg2.ApplyUpdates("g", regBatch(t, reg2, "g", 6, 0xB7, true)); err != nil {
		t.Fatal(err)
	}
	reg3 := NewRegistryAt(dir, -1)
	infos, err = reg3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Updates != 4 {
		t.Fatalf("second recovery %+v, want 4 replayed batches", infos)
	}
}

// TestRecoverDropsTornTail crash-tests the log: a record torn mid-write
// (simulated by truncating the file) must cost exactly the torn batch —
// the complete prefix replays, the log is rewritten clean, and appends
// continue from the surviving state.
func TestRecoverDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistryAt(dir, -1)
	if _, err := reg.Add("g", "direct", gen.ErdosRenyi(400, 2400, 5)); err != nil {
		t.Fatal(err)
	}
	var want2 *graph.Graph
	for i := 0; i < 3; i++ {
		if _, err := reg.ApplyUpdates("g", regBatch(t, reg, "g", 8, uint64(0xD0+i), true)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if i == 1 {
			want2, _, _ = reg.Snapshot("g")
		}
	}

	walPath := filepath.Join(dir, "g", walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistryAt(dir, -1)
	infos, err := reg2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Updates != 2 {
		t.Fatalf("recovered %+v, want exactly the 2 complete batches", infos)
	}
	got, _, _ := reg2.Snapshot("g")
	if !reflect.DeepEqual(got, want2) {
		t.Fatal("recovered state differs from the state after the surviving batches")
	}

	// Recovery rewrote the log to the surviving prefix: it parses cleanly
	// end to end with no torn tail.
	wf, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := graph.ReadLog(wf)
	wf.Close()
	if err != nil || len(clean) != 2 {
		t.Fatalf("rewritten log holds %d batches (err %v), want 2", len(clean), err)
	}

	// And the store still accepts batches on top of the recovered state.
	if _, err := reg2.ApplyUpdates("g", regBatch(t, reg2, "g", 4, 0xE1, false)); err != nil {
		t.Fatal(err)
	}
	reg3 := NewRegistryAt(dir, -1)
	if infos, err = reg3.Recover(); err != nil || infos[0].Updates != 3 {
		t.Fatalf("post-tear append not recovered: %+v, %v", infos, err)
	}
}

// TestCheckpointEndpointCompactsSameEpoch drives POST
// /v1/graphs/{name}/checkpoint: the epoch's form flips to csr WITHOUT an
// epoch bump, kernel outputs are unchanged, and the first post-checkpoint
// job is a cache miss (form-qualified key) rather than a stale overlay hit.
func TestCheckpointEndpointCompactsSameEpoch(t *testing.T) {
	srv := newTestServer(t, 2, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/graphs/web/updates", updateBody(nextBatch(t, srv, "web", 8, 0xC0)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	_, info1, _ := srv.Registry().Get("web")
	if info1.Form != formOverlay {
		t.Fatalf("post-update form %q, want overlay", info1.Form)
	}

	job := JobRequest{Graph: "web", App: "cc", Threads: 8}
	run := func() (*http.Response, []byte) { return postJSON(t, ts.URL+"/v1/jobs?wait=1", job) }
	respA, bytesA := run()
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("job: %d %s", respA.StatusCode, bytesA)
	}
	if resp, _ := run(); resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("overlay-form result did not cache")
	}

	resp, body = postJSON(t, ts.URL+"/v1/graphs/web/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Graph GraphInfo `json:"graph"`
	}
	mustUnmarshal(t, body, &out)
	if out.Graph.Form != formCSR || out.Graph.OverlayEntries != 0 {
		t.Fatalf("post-checkpoint info %+v, want csr form", out.Graph)
	}
	if out.Graph.Epoch != info1.Epoch {
		t.Fatalf("checkpoint bumped the epoch %d -> %d; compaction is a form change, not a data change",
			info1.Epoch, out.Graph.Epoch)
	}

	respB, bytesB := run()
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("post-checkpoint job: %d %s", respB.StatusCode, bytesB)
	}
	if respB.Header.Get("X-Cache") != "miss" {
		t.Fatalf("post-checkpoint lookup was %q; csr form must not alias the overlay entry",
			respB.Header.Get("X-Cache"))
	}
	resA, err := analytics.UnmarshalResult(bytesA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := analytics.UnmarshalResult(bytesB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA.Labels, resB.Labels) {
		t.Fatal("checkpoint changed kernel outputs")
	}

	resp, _ = postJSON(t, ts.URL+"/v1/graphs/nosuch/checkpoint", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph checkpoint: %d, want 404", resp.StatusCode)
	}
}

// TestAutoCompactionMergesAndTruncates forces the background compactor
// (threshold ~0) and verifies the full cycle: overlay merged into a csr
// epoch in place, the snapshot on disk subsumes the log, and recovery
// needs no replay.
func TestAutoCompactionMergesAndTruncates(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistryAt(dir, 1<<30) // |E|/div == 0: any overlay entry triggers
	if _, err := reg.Add("g", "direct", gen.ErdosRenyi(400, 2400, 3)); err != nil {
		t.Fatal(err)
	}
	info, err := reg.ApplyUpdates("g", regBatch(t, reg, "g", 8, 0xF00, true))
	if err != nil {
		t.Fatal(err)
	}
	reg.Quiesce()

	_, cur, _ := reg.Get("g")
	if cur.Form != formCSR || cur.OverlayEntries != 0 {
		t.Fatalf("compactor left %+v, want csr form", cur)
	}
	if cur.Epoch != info.Epoch {
		t.Fatalf("compaction bumped epoch %d -> %d", info.Epoch, cur.Epoch)
	}
	if _, err := os.Stat(basePath(filepath.Join(dir, "g"), 1)); err != nil {
		t.Fatalf("snapshot subsuming batch 1 missing: %v", err)
	}
	if st, err := os.Stat(filepath.Join(dir, "g", walFileName)); err != nil || st.Size() != 0 {
		t.Fatalf("WAL not truncated after compaction: %v (size %d)", err, st.Size())
	}

	want, _, _ := reg.Snapshot("g")
	reg2 := NewRegistryAt(dir, 1<<30)
	infos, err := reg2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Updates != 0 || infos[0].Form != formCSR {
		t.Fatalf("recovery after compaction %+v, want snapshot-only csr load", infos)
	}
	got, _, _ := reg2.Snapshot("g")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot-recovered graph differs from the compacted resident graph")
	}
}

// TestServerKillRestartRecoversEpochs is the durability acceptance test:
// kill a server after acknowledged update batches, restart over the same
// data directory, and every batch must be recovered — the restarted
// server serves byte-identical result bytes for the same job.
func TestServerKillRestartRecoversEpochs(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		return New(Config{Machine: testMachine(), Workers: 2, QueueCap: 64, DataDir: dir, CompactDiv: -1})
	}
	jobs := []JobRequest{
		{Graph: "web", App: "cc", Threads: 8},
		{Graph: "web", App: "pr", Threads: 4},
	}
	runAll := func(ts *httptest.Server) [][]byte {
		var out [][]byte
		for _, j := range jobs {
			resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", j)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %+v: %d %s", j, resp.StatusCode, body)
			}
			out = append(out, body)
		}
		return out
	}

	srv := mk()
	if _, err := srv.Registry().Add("web", "direct", gen.WebCrawl(800, 5, 40, 9)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/graphs/web/updates",
			updateBody(nextBatch(t, srv, "web", 8, uint64(0x51EE+i))))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, body)
		}
	}
	want := runAll(ts)
	_, info, _ := srv.Registry().Get("web")
	ts.Close()
	srv.Close() // "kill": nothing is flushed here that the WAL hasn't already made durable

	srv2 := mk()
	defer srv2.Close()
	infos, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Updates != 3 {
		t.Fatalf("restart recovered %+v, want web with all 3 acknowledged batches", infos)
	}
	_, info2, _ := srv2.Registry().Get("web")
	if info2.Edges != info.Edges || info2.Form != info.Form || info2.OverlayEntries != info.OverlayEntries {
		t.Fatalf("recovered epoch %+v differs from pre-kill epoch %+v", info2, info)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	got := runAll(ts2)
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("job %+v not byte-identical across kill-and-restart", jobs[i])
		}
	}
}
