package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/loadgen"
	"pmemgraph/internal/memsim"
)

func testMachine() memsim.MachineConfig {
	return memsim.Scaled(memsim.OptaneMachine(), 32)
}

// newTestServer builds a server over three small shared graphs.
func newTestServer(t *testing.T, workers, queueCap int) *Server {
	t.Helper()
	srv := New(Config{Machine: testMachine(), Workers: workers, QueueCap: queueCap})
	t.Cleanup(srv.Close)
	for name, g := range map[string]*graph.Graph{
		"web":   gen.WebCrawl(1200, 5, 60, 17),
		"erdos": gen.ErdosRenyi(900, 5400, 23),
		"kron":  gen.Kron(10, 8, 5),
	} {
		if _, err := srv.Registry().Add(name, "direct", g); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

// directResult runs spec outside the server — a fresh machine over the
// same sealed graph, exactly like a standalone harness — and returns the
// canonical result bytes the server must match byte-for-byte.
func directResult(t *testing.T, srv *Server, spec loadgen.JobSpec) []byte {
	t.Helper()
	p, ok := frameworks.ByName(spec.Framework)
	if !ok {
		t.Fatalf("unknown framework %q", spec.Framework)
	}
	g, _, ok := srv.Registry().Get(spec.Graph)
	if !ok {
		t.Fatalf("graph %q not registered", spec.Graph)
	}
	res, err := p.RunOn(memsim.NewMachine(srv.cfg.Machine), g, spec.App, spec.Threads, frameworks.DefaultParams(g))
	if err != nil {
		t.Fatalf("direct %+v: %v", spec, err)
	}
	data, err := analytics.MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

// TestConcurrentServingByteIdentical is the conformance acceptance test:
// 64 concurrent kernel queries over shared graphs — a deterministic
// mixed-kernel, mixed-framework workload from the bench load generator —
// must return byte-identical Results to direct analytics execution, first
// against a cold cache and then again fully warm, while the scheduler
// honors its concurrency bound. Run under -race this also proves the
// sealed shared graphs are never written concurrently.
func TestConcurrentServingByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("64-job conformance run is slow")
	}
	const (
		workers = 8
		jobs    = 64
	)
	srv := newTestServer(t, workers, 2*jobs)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, err := loadgen.Workload([]string{"web", "erdos", "kron"}, 42, jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != jobs {
		t.Fatalf("workload = %d specs, want %d", len(specs), jobs)
	}

	// Direct expected bytes per unique spec, computed without the server.
	expected := make(map[loadgen.JobSpec][]byte)
	for _, spec := range specs {
		if _, ok := expected[spec]; !ok {
			expected[spec] = directResult(t, srv, spec)
		}
	}
	t.Logf("%d jobs over %d unique (graph, app, framework) specs", jobs, len(expected))

	runBatch := func(phase string) (hits int) {
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			hitSeen int
		)
		for i, spec := range specs {
			wg.Add(1)
			go func(i int, spec loadgen.JobSpec) {
				defer wg.Done()
				req := JobRequest{Graph: spec.Graph, App: spec.App, Framework: spec.Framework, Threads: spec.Threads}
				resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s job %d (%+v): status %d: %s", phase, i, spec, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, expected[spec]) {
					t.Errorf("%s job %d (%+v): response bytes differ from direct execution", phase, i, spec)
				}
				if resp.Header.Get("X-Cache") == "hit" {
					mu.Lock()
					hitSeen++
					mu.Unlock()
				}
			}(i, spec)
		}
		wg.Wait()
		return hitSeen
	}

	coldHits := runBatch("cold")
	warmHits := runBatch("warm")
	if warmHits != jobs {
		t.Errorf("warm phase: %d/%d cache hits, want all (every result was cached cold)", warmHits, jobs)
	}
	t.Logf("cold hits (duplicate specs finishing early): %d; warm hits: %d", coldHits, warmHits)

	st := srv.Stats()
	if st.Scheduler.MaxRunning > workers {
		t.Errorf("scheduler exceeded its bound: max %d running with %d workers", st.Scheduler.MaxRunning, workers)
	}
	if st.Scheduler.MaxRunning < 2 {
		t.Errorf("no concurrency observed (max running = %d)", st.Scheduler.MaxRunning)
	}
	if st.Scheduler.Completed != 2*jobs {
		t.Errorf("completed = %d, want %d", st.Scheduler.Completed, 2*jobs)
	}
	if st.Cache.Hits < uint64(jobs) {
		t.Errorf("cache hits = %d, want >= %d (whole warm phase)", st.Cache.Hits, jobs)
	}
	if st.Cache.Misses == 0 || st.Cache.Entries != len(expected) {
		t.Errorf("cache stats %+v, want %d entries", st.Cache, len(expected))
	}
	// Coalescing + caching mean each unique spec ran its kernel exactly
	// once across both phases — duplicates either hit the cache or waited
	// on the in-flight execution.
	if st.KernelExecutions != uint64(len(expected)) {
		t.Errorf("kernel executions = %d, want exactly %d (one per unique spec)", st.KernelExecutions, len(expected))
	}
}

func TestHTTPGraphLifecycle(t *testing.T) {
	srv := New(Config{Machine: testMachine(), Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// Load a Table 3 input by generator name.
	resp, body := postJSON(t, ts.URL+"/v1/graphs", loadGraphRequest{Input: "kron30"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load input: %d: %s", resp.StatusCode, body)
	}
	var info GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "kron30" || info.Nodes == 0 {
		t.Errorf("info = %+v", info)
	}

	// Load a serialized CSR file.
	path := filepath.Join(t.TempDir(), "tiny.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSR(f, gen.Cycle(64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if resp, body := postJSON(t, ts.URL+"/v1/graphs", loadGraphRequest{Name: "tiny", Path: path}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("load file: %d: %s", resp.StatusCode, body)
	}

	var list []GraphInfo
	getJSON(t, ts.URL+"/v1/graphs", &list)
	if len(list) != 2 || list[0].Name != "kron30" || list[1].Name != "tiny" {
		t.Errorf("list = %+v", list)
	}

	// Bad loads.
	for _, bad := range []loadGraphRequest{
		{},                                     // neither input nor path
		{Input: "kron30", Path: path},          // both
		{Input: "kron30"},                      // duplicate name
		{Input: "nope"},                        // unknown input
		{Input: "kron30", Scale: "gigantic"},   // bad scale
		{Path: filepath.Join(path, "nowhere")}, // file load without a name
	} {
		if resp, _ := postJSON(t, ts.URL+"/v1/graphs", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("load %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Evict drops the graph and its cached results.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/tiny", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("evict: %d", dresp.StatusCode)
	}
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("double evict: %d, want 404", dresp.StatusCode)
	}
}

func TestHTTPJobLifecycleAndTraceStreaming(t *testing.T) {
	srv := newTestServer(t, 2, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Synchronous submit returns the result and the job id.
	req := JobRequest{Graph: "web", App: "bfs", Framework: "Galois", Threads: 8}
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: %d: %s", resp.StatusCode, body)
	}
	jobID := resp.Header.Get("X-Job-Id")
	if jobID == "" || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("headers: id=%q cache=%q", jobID, resp.Header.Get("X-Cache"))
	}
	res, err := analytics.UnmarshalResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "bfs" || len(res.Trace) == 0 {
		t.Fatalf("result app=%s trace=%d", res.App, len(res.Trace))
	}

	// Status and result retrieval for the finished job.
	var status JobStatus
	if r := getJSON(t, ts.URL+"/v1/jobs/"+jobID, &status); r.StatusCode != http.StatusOK || status.State != JobDone {
		t.Errorf("status = %d %+v", r.StatusCode, status)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !bytes.Equal(stored, body) {
		t.Error("result endpoint bytes differ from wait-submit bytes")
	}

	// Trace endpoint returns the rounds as one JSON array.
	var rounds []engine.RoundStat
	if r := getJSON(t, ts.URL+"/v1/jobs/"+jobID+"/trace", &rounds); r.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", r.StatusCode)
	}
	if !reflect.DeepEqual(rounds, res.Trace) {
		t.Error("trace endpoint disagrees with the result's trace")
	}

	// Streaming endpoint emits the same rounds as NDJSON.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var streamed []engine.RoundStat
	scanner := bufio.NewScanner(sresp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var rs engine.RoundStat
		if err := json.Unmarshal(scanner.Bytes(), &rs); err != nil {
			t.Fatalf("stream line %d: %v", len(streamed), err)
		}
		streamed = append(streamed, rs)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Trace) {
		t.Errorf("streamed %d rounds disagree with the result trace (%d rounds)", len(streamed), len(res.Trace))
	}

	// Async submit + job listing; explicit wait=0 must not block either.
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs?wait=0", JobRequest{Graph: "kron", App: "bfs", Threads: 4}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wait=0 submit: %d, want 202", resp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "kron", App: "cc", Threads: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d: %s", resp.StatusCode, body)
	}
	var accepted JobStatus
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	job, ok := srv.Job(accepted.ID)
	if !ok {
		t.Fatalf("job %s not tracked", accepted.ID)
	}
	<-job.Done()
	var all []JobStatus
	getJSON(t, ts.URL+"/v1/jobs", &all)
	if len(all) != 3 {
		t.Errorf("job list = %d entries, want 3", len(all))
	}

	// A cache hit surfaces on the second identical submit.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs?wait=1", req)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("second identical submit: X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
}

func TestHTTPValidationErrors(t *testing.T) {
	srv := newTestServer(t, 2, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name    string
		req     JobRequest
		wantMsg string
	}{
		{"unknown graph", JobRequest{Graph: "nope", App: "bfs"}, "not loaded"},
		{"unknown framework", JobRequest{Graph: "web", App: "bfs", Framework: "Ligra"}, "unknown framework"},
		{"unknown app", JobRequest{Graph: "web", App: "pagerankz"}, "unknown app"},
		{"capability gate", JobRequest{Graph: "web", App: "bc", Framework: "GraphIt"}, "does not implement"},
		{"source out of range", JobRequest{Graph: "web", App: "bfs", Params: &ParamOverrides{Source: ptr[graph.Node](1 << 30)}}, "out of range"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, tc.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, eb.Error, tc.wantMsg)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}

	// Unknown job endpoints.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/trace"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}
}

// TestHTTPBackpressureAndUnfinishedJobs swaps in a blocking scheduler to
// pin down the overload and not-finished paths deterministically: 429 when
// the queue is full, 409 for results of jobs still in flight.
func TestHTTPBackpressureAndUnfinishedJobs(t *testing.T) {
	srv := newTestServer(t, 2, 16)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.sched.Close()
	srv.sched = NewScheduler(1, 1, func(j *Job) ([]byte, bool, error) {
		started <- struct{}{}
		<-release
		return []byte("{}"), false, nil
	})
	defer func() {
		close(release)
		srv.sched.Close()
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Graph: "web", App: "bfs"}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", resp.StatusCode, body)
	}
	var running JobStatus
	if err := json.Unmarshal(body, &running); err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now blocked inside the job

	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit should queue: %d", resp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("third submit: %d, want 429: %s", resp.StatusCode, body)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + running.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("result of running job: %d, want 409", r.StatusCode)
	}
}

// TestEvictionInvalidatesCachedResults covers the registry/cache epoch
// interplay: after evicting and reloading a different graph under the same
// name, a repeated request must re-execute (and return the new graph's
// result), never the stale bytes.
func TestEvictionInvalidatesCachedResults(t *testing.T) {
	srv := New(Config{Machine: testMachine(), Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := srv.Registry().Add("g", "direct", gen.WebCrawl(800, 4, 40, 9)); err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Graph: "g", App: "bfs", Threads: 4}
	_, first := postJSON(t, ts.URL+"/v1/jobs?wait=1", req)

	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/g", nil)
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if _, err := srv.Registry().Add("g", "direct", gen.ErdosRenyi(500, 3000, 77)); err != nil {
		t.Fatal(err)
	}

	resp, second := postJSON(t, ts.URL+"/v1/jobs?wait=1", req)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("post-reload request hit the cache: X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	if bytes.Equal(first, second) {
		t.Error("reloaded graph returned the evicted graph's bytes")
	}
}

func ptr[T any](v T) *T { return &v }
