package server

import (
	"fmt"
	"strings"
	"sync"

	"pmemgraph/internal/frameworks"
)

// seedKey identifies the artifact a frameworks.Seed belongs to: just
// (graph, app). Unlike result bytes, seed CONTENT is a pure function of
// the graph epoch alone — cc labels are the canonical min-ID labeling
// every variant converges to, and a pr trajectory's round-k vector is
// determined by the graph (threads, machine, backend and profile change
// only charging; tolerance and round caps change only how many rounds get
// recorded, and a shorter trajectory is still bitwise-valid input) — all
// of which the incremental conformance suite asserts. Keying on anything
// epoch-derived (e.g. the resolved default Source, which can move when an
// update changes the max-degree vertex) would orphan seeds across epochs;
// keying on profile/machine/params would only duplicate identical
// artifacts. The key leads with "<graph>|" so eviction drops a graph's
// seeds by prefix.
func seedKey(info GraphInfo, app string) string {
	return fmt.Sprintf("%s|%s", info.Name, app)
}

// seedEntry is one retained prior-epoch artifact: the seed plus the epoch
// whose graph it was computed on. An incremental job may consume it only
// when that epoch is exactly one update batch behind the current graph
// (Registry.UpdateState), which is what keeps seeded executions honest —
// a seed can never silently skip an intervening batch.
type seedEntry struct {
	Epoch uint64
	Seed  *frameworks.Seed
}

// SeedStats reports seed-store occupancy.
type SeedStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// DefaultSeedBytes bounds the seed store when Config.SeedBytes is 0.
// PR seeds carry up to analytics.PRSeedMaxRounds rank vectors, so the
// bound is on bytes, not entries.
const DefaultSeedBytes = 256 << 20

// seedStore retains the newest seed per execution configuration, bounded
// by total bytes with FIFO eviction (mirroring the result cache: with
// deterministic values there is nothing fresher to prefer within a key,
// and FIFO keeps eviction independent of request interleaving).
type seedStore struct {
	mu       sync.Mutex
	entries  map[string]seedEntry
	order    []string
	bytes    int64
	maxBytes int64
}

func newSeedStore(maxBytes int64) *seedStore {
	if maxBytes <= 0 {
		maxBytes = DefaultSeedBytes
	}
	return &seedStore{entries: make(map[string]seedEntry), maxBytes: maxBytes}
}

// Get returns the retained entry for key.
func (s *seedStore) Get(key string) (seedEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Put retains e under key, keeping whichever of the existing and new entry
// has the higher epoch (a slow pre-update job finishing late must not
// clobber the seed a post-update job already recorded), then evicts the
// oldest keys past the byte bound. An entry that alone exceeds the bound
// is rejected outright: storing it would wipe every other configuration's
// seed only to be evicted by the next Put, never yielding a seeded run.
func (s *seedStore) Put(key string, e seedEntry) {
	if e.Seed.Bytes() > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		// Keep the newer epoch; on a tie keep the richer artifact (seed
		// keys ignore tol/rounds, so a short pr trajectory recorded by a
		// low-rounds job must not shadow a same-epoch full one).
		if old.Epoch > e.Epoch || (old.Epoch == e.Epoch && old.Seed.Bytes() >= e.Seed.Bytes()) {
			return
		}
		s.bytes += e.Seed.Bytes() - old.Seed.Bytes()
		s.entries[key] = e
		// Refresh the key's eviction position: a just-replaced seed is the
		// hottest configuration, not the first in line for eviction.
		for i, k := range s.order {
			if k == key {
				s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
				break
			}
		}
	} else {
		s.entries[key] = e
		s.order = append(s.order, key)
		s.bytes += e.Seed.Bytes()
	}
	for s.bytes > s.maxBytes && len(s.order) > 1 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.entries[oldest]; ok {
			s.bytes -= old.Seed.Bytes()
			delete(s.entries, oldest)
		}
	}
}

// InvalidateGraph drops every seed of the named graph; called on eviction
// (a reloaded graph under the same name must never inherit seeds, and the
// epoch check would reject them anyway — this frees the memory).
func (s *seedStore) InvalidateGraph(name string) int {
	prefix := graphKeyPrefix(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	kept := s.order[:0]
	for _, key := range s.order {
		if strings.HasPrefix(key, prefix) {
			if old, ok := s.entries[key]; ok {
				s.bytes -= old.Seed.Bytes()
				delete(s.entries, key)
				dropped++
			}
			continue
		}
		kept = append(kept, key)
	}
	s.order = kept
	return dropped
}

// Stats snapshots occupancy.
func (s *seedStore) Stats() SeedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SeedStats{Entries: len(s.entries), Bytes: s.bytes}
}
