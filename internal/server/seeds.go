package server

import (
	"fmt"
	"strings"
	"sync"

	"pmemgraph/internal/frameworks"
)

// seedKey identifies the artifact a frameworks.Seed belongs to: just
// (graph, app). Unlike result bytes, seed CONTENT is a pure function of
// the graph epoch alone — cc labels are the canonical min-ID labeling
// every variant converges to, and a pr trajectory's round-k vector is
// determined by the graph (threads, machine, backend and profile change
// only charging; tolerance and round caps change only how many rounds get
// recorded, and a shorter trajectory is still bitwise-valid input) — all
// of which the incremental conformance suite asserts. Keying on anything
// epoch-derived (e.g. the resolved default Source, which can move when an
// update changes the max-degree vertex) would orphan seeds across epochs;
// keying on profile/machine/params would only duplicate identical
// artifacts. The key leads with "<graph>|" so eviction drops a graph's
// seeds by prefix.
func seedKey(info GraphInfo, app string) string {
	return fmt.Sprintf("%s|%s", info.Name, app)
}

// seedEntry is one retained prior-epoch artifact: the seed plus the epoch
// whose graph it was computed on. An incremental job may consume it only
// when that epoch is exactly one update batch behind the current graph
// (Registry.UpdateState), which is what keeps seeded executions honest —
// a seed can never silently skip an intervening batch.
type seedEntry struct {
	Epoch uint64
	Seed  *frameworks.Seed
}

// SeedStats reports seed-store occupancy.
type SeedStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// DefaultSeedBytes bounds the seed store when Config.SeedBytes is 0.
// PR seeds carry up to analytics.PRSeedMaxRounds rank vectors, so the
// bound is on bytes, not entries.
const DefaultSeedBytes = 256 << 20

// seedStore retains the newest seed per execution configuration, bounded
// by total bytes with FIFO eviction (mirroring the result cache: with
// deterministic values there is nothing fresher to prefer within a key,
// and FIFO keeps eviction independent of request interleaving).
//
// The FIFO order is a queue with lazy deletion: each key carries a
// generation (gen), bumped when a replacement refreshes the key's
// eviction position, and the queue holds (key, gen) pairs of which only
// the one matching gen[key] is live. Refreshing is therefore O(1) — an
// append plus a map bump — instead of an O(n) rewrite of the queue.
type seedStore struct {
	mu       sync.Mutex
	entries  map[string]seedEntry
	order    []seedPos
	gen      map[string]uint64
	bytes    int64
	maxBytes int64
}

// seedPos is one FIFO queue slot; stale when gen no longer matches the
// store's current generation for key.
type seedPos struct {
	key string
	gen uint64
}

func newSeedStore(maxBytes int64) *seedStore {
	if maxBytes <= 0 {
		maxBytes = DefaultSeedBytes
	}
	return &seedStore{
		entries:  make(map[string]seedEntry),
		gen:      make(map[string]uint64),
		maxBytes: maxBytes,
	}
}

// Get returns the retained entry for key.
func (s *seedStore) Get(key string) (seedEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Put retains e under key, keeping whichever of the existing and new entry
// has the higher epoch (a slow pre-update job finishing late must not
// clobber the seed a post-update job already recorded), then evicts the
// oldest keys past the byte bound. An entry that alone exceeds the bound
// is rejected outright: storing it would wipe every other configuration's
// seed only to be evicted by the next Put, never yielding a seeded run.
func (s *seedStore) Put(key string, e seedEntry) {
	if e.Seed.Bytes() > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		// Keep the newer epoch; on a tie keep the richer artifact (seed
		// keys ignore tol/rounds, so a short pr trajectory recorded by a
		// low-rounds job must not shadow a same-epoch full one).
		if old.Epoch > e.Epoch || (old.Epoch == e.Epoch && old.Seed.Bytes() >= e.Seed.Bytes()) {
			return
		}
		s.bytes += e.Seed.Bytes() - old.Seed.Bytes()
		s.entries[key] = e
		// Refresh the key's eviction position: a just-replaced seed is the
		// hottest configuration, not the first in line for eviction. The
		// old queue slot goes stale; eviction skips it.
		s.gen[key]++
	} else {
		s.entries[key] = e
		s.bytes += e.Seed.Bytes()
	}
	s.order = append(s.order, seedPos{key, s.gen[key]})
	// Evict oldest-first down to the bound. The just-put entry (at the
	// back, and known to fit alone from the check above) is never evicted,
	// so a same-key replacement that grows the sole surviving entry still
	// drains every OTHER key rather than stopping early and leaving the
	// store permanently over budget.
	for s.bytes > s.maxBytes && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if oldest.key == key && oldest.gen == s.gen[key] {
			// The entry just put: put it back and stop (nothing older
			// remains — everything else has been evicted or is stale).
			s.order = append([]seedPos{oldest}, s.order...)
			break
		}
		if oldest.gen != s.gen[oldest.key] {
			continue // stale slot of a refreshed key
		}
		if old, ok := s.entries[oldest.key]; ok {
			s.bytes -= old.Seed.Bytes()
			delete(s.entries, oldest.key)
			// Bump (never reset) the generation so a later reinsertion of
			// this key cannot collide with stale slots still queued.
			s.gen[oldest.key]++
		}
	}
}

// InvalidateGraph drops every seed of the named graph; called on eviction
// (a reloaded graph under the same name must never inherit seeds, and the
// epoch check would reject them anyway — this frees the memory).
func (s *seedStore) InvalidateGraph(name string) int {
	prefix := graphKeyPrefix(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	kept := s.order[:0]
	for _, slot := range s.order {
		if strings.HasPrefix(slot.key, prefix) {
			if old, ok := s.entries[slot.key]; ok {
				s.bytes -= old.Seed.Bytes()
				delete(s.entries, slot.key)
				s.gen[slot.key]++
				dropped++
			}
			continue
		}
		kept = append(kept, slot)
	}
	s.order = kept
	return dropped
}

// Stats snapshots occupancy.
func (s *seedStore) Stats() SeedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SeedStats{Entries: len(s.entries), Bytes: s.bytes}
}
