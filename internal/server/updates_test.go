package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// updateBody wraps a batch in the updates-endpoint request shape.
func updateBody(ups []graph.EdgeUpdate) map[string]any {
	return map[string]any{"updates": ups}
}

// nextBatch generates a valid batch for the server's CURRENT state of
// name (the generator validates against a snapshot of the live epoch —
// which may be overlay-form, so the materialized copy is the reference).
func nextBatch(t *testing.T, srv *Server, name string, size int, seed uint64) []graph.EdgeUpdate {
	t.Helper()
	g, _, ok := srv.Registry().Snapshot(name)
	if !ok {
		t.Fatalf("graph %q not registered", name)
	}
	stream, err := gen.UpdateStream(g, 1, size, seed, false)
	if err != nil {
		t.Fatal(err)
	}
	return stream[0]
}

func TestUpdatesEndpoint(t *testing.T) {
	srv := newTestServer(t, 2, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, info0, _ := srv.Registry().Get("web")
	batch := nextBatch(t, srv, "web", 8, 0xFEED)
	resp, body := postJSON(t, ts.URL+"/v1/graphs/web/updates", updateBody(batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates returned %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Graph   GraphInfo `json:"graph"`
		Applied int       `json:"applied"`
	}
	mustUnmarshal(t, body, &out)
	if out.Applied != len(batch) {
		t.Fatalf("applied = %d, want %d", out.Applied, len(batch))
	}
	if out.Graph.Epoch <= info0.Epoch || out.Graph.Updates != 1 {
		t.Fatalf("epoch/updates not bumped: %+v (was epoch %d)", out.Graph, info0.Epoch)
	}
	g1, info1, _ := srv.Registry().Snapshot("web")
	if info1.Epoch != out.Graph.Epoch || g1.NumEdges() != out.Graph.Edges {
		t.Fatalf("registry state %+v does not match response %+v", info1, out.Graph)
	}
	// The swapped-in epoch materializes to a graph sealed like a loaded one.
	if !g1.HasWeights() || !g1.HasIn() {
		t.Fatal("updated graph was not sealed")
	}
	if info1.Form != formOverlay || info1.OverlayEntries == 0 {
		t.Fatalf("updated epoch is not overlay-form: %+v", info1)
	}

	// Error surfaces.
	resp, _ = postJSON(t, ts.URL+"/v1/graphs/nosuch/updates", updateBody(batch))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: got %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/graphs/web/updates", updateBody(nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: got %d, want 400", resp.StatusCode)
	}
	bad := []graph.EdgeUpdate{{Op: graph.OpDelete, Src: 0, Dst: 0}}
	if _, _, err := graph.ApplyUpdates(g1, bad); err == nil {
		t.Skip("0->0 happens to exist; pick of invalid delete failed")
	}
	resp, body = postJSON(t, ts.URL+"/v1/graphs/web/updates", updateBody(bad))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid delete: got %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestRegistryConcurrentUpdatesConflict hammers ApplyUpdates from many
// goroutines: exactly the successful batches must be reflected in the
// final epoch/updates counters, and every failure must be the documented
// conflict error — never a silent lost update.
func TestRegistryConcurrentUpdatesConflict(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Add("g", "direct", gen.ErdosRenyi(400, 2400, 7)); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	applied := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				g, _, _ := reg.Snapshot("g")
				stream, err := gen.UpdateStream(g, 1, 4, uint64(w*100+i), false)
				if err != nil {
					t.Error(err)
					return
				}
				_, err = reg.ApplyUpdates("g", stream[0])
				switch {
				case err == nil:
					applied[w]++
				case errorsIsConflictOrValidation(err):
					// Lost the race (conflict), or the batch was built
					// against a state that changed under it (validation).
				default:
					t.Errorf("unexpected update error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range applied {
		total += n
	}
	_, info, _ := reg.Get("g")
	if info.Updates != total {
		t.Fatalf("registry recorded %d batches, %d succeeded", info.Updates, total)
	}
}

func errorsIsConflictOrValidation(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "concurrently") || strings.Contains(err.Error(), "graph:"))
}

// TestJobsRacingUpdatesNeverObserveStaleResults is the cache-invalidation
// acceptance test (run under -race in CI's server conformance step): with
// jobs continuously racing update batches, any job submitted AFTER an
// update batch is acknowledged must return exactly the post-update bytes —
// a stale pre-update cache entry must be unservable, by epoch keying and
// the update-time invalidation.
func TestJobsRacingUpdatesNeverObserveStaleResults(t *testing.T) {
	srv := newTestServer(t, 4, 256)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job := JobRequest{Graph: "erdos", App: "cc", Framework: "Galois", Threads: 8}
	submit := func() []byte {
		resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", job)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("job returned %d: %s", resp.StatusCode, body)
		}
		return body
	}
	direct := func() []byte {
		// Run the SAME form the server would: post-update epochs are
		// overlay-form and their charging differs from a csr run, so the
		// byte comparison must go through the overlay path too.
		g, ov, _, ok := srv.Registry().View("erdos")
		if !ok {
			t.Fatal("erdos not registered")
		}
		p, _ := frameworks.ByName("Galois")
		m := memsim.NewMachine(srv.cfg.Machine)
		opts := p.Options("cc", 8)
		var res *analytics.Result
		var err error
		if ov != nil {
			res, err = p.RunOverlayOnOpts(m, ov, "cc", opts, frameworks.DefaultParamsOverlay(ov))
		} else {
			res, err = p.RunOnOpts(m, g, "cc", opts, frameworks.DefaultParams(g))
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := analytics.MarshalResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Warm the pre-update cache so a stale entry EXISTS to be served.
	pre := submit()
	if !reflect.DeepEqual(pre, direct()) {
		t.Fatal("pre-update serving result diverged from direct run")
	}
	for round := 0; round < 3; round++ {
		// Background duplicates race the update application.
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				submit() // value checked implicitly: post-round submission pins the final state
			}()
		}
		batch := nextBatch(t, srv, "erdos", 8, uint64(0xACE0+round))
		resp, body := postJSON(t, ts.URL+"/v1/graphs/erdos/updates", updateBody(batch))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update round %d: %d %s", round, resp.StatusCode, body)
		}
		// The update is acknowledged: from here on, served bytes must be
		// the post-update bytes, even though the pre-update result was
		// cached moments ago.
		want := direct()
		if got := submit(); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: job submitted after update served stale or wrong bytes", round)
		}
		wg.Wait()
	}
}

// TestUpdateInvalidatesOnlyThatGraph pins the targeted invalidation: an
// update batch drops the updated graph's cache entries and nobody else's.
func TestUpdateInvalidatesOnlyThatGraph(t *testing.T) {
	srv := newTestServer(t, 2, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cacheState := func(req JobRequest) string {
		resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job: %d %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Cache")
	}
	webJob := JobRequest{Graph: "web", App: "bfs", Threads: 8}
	kronJob := JobRequest{Graph: "kron", App: "bfs", Threads: 8}
	cacheState(webJob)
	cacheState(kronJob)
	if got := cacheState(kronJob); got != "hit" {
		t.Fatalf("kron warm lookup was %q, want hit", got)
	}

	resp, body := postJSON(t, ts.URL+"/v1/graphs/web/updates", updateBody(nextBatch(t, srv, "web", 4, 0xD00D)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Dropped int `json:"cache_entries_dropped"`
	}
	mustUnmarshal(t, body, &out)
	if out.Dropped == 0 {
		t.Fatal("update dropped no cache entries despite a cached web result")
	}
	if got := cacheState(kronJob); got != "hit" {
		t.Fatalf("kron entry lost to web's update: %q", got)
	}
	if got := cacheState(webJob); got != "miss" {
		t.Fatalf("web served %q after its update, want a fresh miss", got)
	}
}

// TestIncrementalJobServing drives the opt-in incremental path end to end:
// seedless fallback, then seeded incremental execution after each update
// batch, with outputs always byte-identical to a direct full recompute on
// the current epoch and cache hits byte-identical to the first serving.
func TestIncrementalJobServing(t *testing.T) {
	srv := newTestServer(t, 2, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	directFull := func(app string) *analytics.Result {
		// Only outputs are compared below, so a materialized snapshot run
		// (csr form) is a valid reference for the overlay-form serving.
		g, _, _ := srv.Registry().Snapshot("web")
		p, _ := frameworks.ByName("Galois")
		res, err := p.RunOn(memsim.NewMachine(srv.cfg.Machine), g, app, 8, frameworks.DefaultParams(g))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	runInc := func(app string) *analytics.Result {
		resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1",
			JobRequest{Graph: "web", App: app, Threads: 8, Incremental: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("incremental %s: %d %s", app, resp.StatusCode, body)
		}
		res, err := analytics.UnmarshalResult(body)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Epoch 0: no update has happened — both apps fall back to the full
	// algorithms and record seeds.
	if res := runInc("cc"); res.Algorithm == "inc-unionfind" {
		t.Fatal("cc ran incrementally without a prior epoch")
	}
	if res := runInc("pr"); res.Algorithm != "topo-pull" {
		t.Fatalf("seedless pr fallback ran %q", res.Algorithm)
	}
	if st := srv.Stats(); st.Seeds.Entries != 2 {
		t.Fatalf("seed store holds %d entries, want 2", st.Seeds.Entries)
	}

	for round := 0; round < 2; round++ {
		resp, body := postJSON(t, ts.URL+"/v1/graphs/web/updates", updateBody(nextBatch(t, srv, "web", 6, uint64(0xBEE0+round))))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update: %d %s", resp.StatusCode, body)
		}
		cc := runInc("cc")
		if cc.Algorithm != "inc-unionfind" {
			t.Fatalf("round %d: cc did not run incrementally (%q)", round, cc.Algorithm)
		}
		if want := directFull("cc"); !reflect.DeepEqual(cc.Labels, want.Labels) {
			t.Fatalf("round %d: incremental cc labels differ from full recompute", round)
		}
		pr := runInc("pr")
		if pr.Algorithm != "topo-pull-inc" {
			t.Fatalf("round %d: pr did not run incrementally (%q)", round, pr.Algorithm)
		}
		want := directFull("pr")
		if pr.Rounds != want.Rounds || !reflect.DeepEqual(pr.Rank, want.Rank) {
			t.Fatalf("round %d: incremental pr output differs from full recompute", round)
		}
	}

	// Warm lookups are byte-identical to the first incremental serving.
	resp, first := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		JobRequest{Graph: "web", App: "pr", Threads: 8, Incremental: true})
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("expected warm incremental lookup, got %q", resp.Header.Get("X-Cache"))
	}
	resp2, second := postJSON(t, ts.URL+"/v1/jobs?wait=1",
		JobRequest{Graph: "web", App: "pr", Threads: 8, Incremental: true})
	_ = resp2
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm incremental lookups not byte-identical")
	}
}

// TestErrorBodiesAreStructuredJSON pins the uniform error contract: every
// error response — handler-produced and mux-produced alike — is
// application/json with an {"error": "..."} body.
func TestErrorBodiesAreStructuredJSON(t *testing.T) {
	srv := newTestServer(t, 1, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, method, path, body string
		wantCode                 int
	}{
		{"unmatched path", "GET", "/v1/nope", "", http.StatusNotFound},
		{"method mismatch", "DELETE", "/v1/jobs", "", http.StatusMethodNotAllowed},
		{"unknown graph job", "POST", "/v1/jobs", `{"graph":"nosuch","app":"bfs"}`, http.StatusBadRequest},
		{"malformed body", "POST", "/v1/jobs", `{`, http.StatusBadRequest},
		{"unknown job", "GET", "/v1/jobs/job-999999", "", http.StatusNotFound},
		{"unknown graph updates", "POST", "/v1/graphs/nosuch/updates", `{"updates":[{"op":"insert","src":0,"dst":1}]}`, http.StatusNotFound},
		{"evict unknown", "DELETE", "/v1/graphs/nosuch", "", http.StatusNotFound},
		{"incremental bfs", "POST", "/v1/jobs", `{"graph":"web","app":"bfs","incremental":true}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, c.wantCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var body errorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("body is not an {\"error\": ...} object: %v", err)
			}
			if body.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// Seed-store unit behavior: epoch precedence and graph invalidation.
func TestSeedStoreEpochPrecedenceAndBounds(t *testing.T) {
	ss := newSeedStore(1 << 20)
	mk := func(n int) *frameworks.Seed { return &frameworks.Seed{CCLabels: make([]uint32, n)} }
	ss.Put("g|cc|k", seedEntry{Epoch: 5, Seed: mk(100)})
	ss.Put("g|cc|k", seedEntry{Epoch: 4, Seed: mk(200)}) // stale epoch must not clobber
	if e, _ := ss.Get("g|cc|k"); e.Epoch != 5 || len(e.Seed.CCLabels) != 100 {
		t.Fatalf("stale Put clobbered newer seed: %+v", e)
	}
	ss.Put("g|cc|k", seedEntry{Epoch: 5, Seed: mk(150)}) // same epoch, richer artifact wins
	if e, _ := ss.Get("g|cc|k"); len(e.Seed.CCLabels) != 150 {
		t.Fatalf("same-epoch richer seed discarded: %+v", e)
	}
	ss.Put("g|cc|k", seedEntry{Epoch: 5, Seed: mk(60)}) // same epoch, poorer artifact loses
	if e, _ := ss.Get("g|cc|k"); len(e.Seed.CCLabels) != 150 {
		t.Fatalf("same-epoch poorer seed clobbered richer one: %+v", e)
	}
	ss.Put("g|cc|k", seedEntry{Epoch: 6, Seed: mk(300)})
	if e, _ := ss.Get("g|cc|k"); e.Epoch != 6 {
		t.Fatalf("newer Put ignored: %+v", e)
	}
	ss.Put("h|cc|k", seedEntry{Epoch: 1, Seed: mk(10)})
	if dropped := ss.InvalidateGraph("g"); dropped != 1 {
		t.Fatalf("invalidated %d entries, want 1", dropped)
	}
	if _, ok := ss.Get("h|cc|k"); !ok {
		t.Fatal("invalidation of g dropped h's seed")
	}

	// Byte bound: a tiny store evicts FIFO.
	small := newSeedStore(4 * 100)
	small.Put("a|k", seedEntry{Epoch: 1, Seed: mk(50)})
	small.Put("b|k", seedEntry{Epoch: 1, Seed: mk(80)})
	if _, ok := small.Get("a|k"); ok {
		t.Fatal("byte bound not enforced")
	}
	if _, ok := small.Get("b|k"); !ok {
		t.Fatal("newest seed evicted instead of oldest")
	}
	if st := small.Stats(); st.Entries != 1 || st.Bytes != 4*80 {
		t.Fatalf("stats %+v", st)
	}

	// A seed that alone exceeds the bound is rejected, not allowed to
	// wipe every other configuration's seed on its way to being evicted.
	small.Put("c|k", seedEntry{Epoch: 1, Seed: mk(500)})
	if _, ok := small.Get("c|k"); ok {
		t.Fatal("oversized seed was stored")
	}
	if _, ok := small.Get("b|k"); !ok {
		t.Fatal("oversized Put evicted an unrelated seed")
	}

	// Replacing a key refreshes its eviction position: the just-updated
	// (hottest) seed must not be the one the byte bound evicts.
	refresh := newSeedStore(4 * 100)
	refresh.Put("x|k", seedEntry{Epoch: 1, Seed: mk(40)})
	refresh.Put("y|k", seedEntry{Epoch: 1, Seed: mk(40)})
	refresh.Put("x|k", seedEntry{Epoch: 2, Seed: mk(70)}) // 110 elems > 100: evict someone
	if _, ok := refresh.Get("x|k"); !ok {
		t.Fatal("replace evicted the seed it just refreshed")
	}
	if _, ok := refresh.Get("y|k"); ok {
		t.Fatal("replace kept the stale seed instead of evicting it")
	}

	// Regression: a same-key replacement that grows the sole surviving
	// entry past the bound must still drain the other keys instead of
	// stopping at len(order) == 1 and leaving the store permanently over
	// budget.
	grow := newSeedStore(4 * 100)
	grow.Put("p|k", seedEntry{Epoch: 1, Seed: mk(30)})
	grow.Put("q|k", seedEntry{Epoch: 1, Seed: mk(30)})
	grow.Put("q|k", seedEntry{Epoch: 2, Seed: mk(95)}) // 125 elems > 100
	if _, ok := grow.Get("q|k"); !ok {
		t.Fatal("growth replace evicted the entry it just stored")
	}
	if _, ok := grow.Get("p|k"); ok {
		t.Fatal("growth replace kept the older key while over budget")
	}
	if st := grow.Stats(); st.Bytes > grow.maxBytes {
		t.Fatalf("store left over budget: %d > %d", st.Bytes, grow.maxBytes)
	}
	// And when the grown entry IS the only one, it must survive (it fits
	// alone) with the store back under the bound.
	grow.Put("q|k", seedEntry{Epoch: 3, Seed: mk(99)})
	if st := grow.Stats(); st.Entries != 1 || st.Bytes != 4*99 {
		t.Fatalf("sole-entry growth stats %+v", st)
	}
}

// mustUnmarshal decodes JSON or fails the test.
func mustUnmarshal(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshaling %s: %v", data, err)
	}
}
