package server

import (
	"fmt"
	"strings"
	"sync"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/frameworks"
)

// cacheKey builds the exact-result cache key. It covers everything a kernel
// execution is a function of: the resident graph identity (name + epoch,
// so a reloaded or updated graph never aliases its predecessor), the
// kernel, the profile's engine parameters (engine.Config) and runtime
// options (core.Options), the resolved per-app parameters, the machine
// configuration name, and whether the job opted into incremental
// execution. Because the engine is deterministic and results serialize to
// canonical bytes (analytics.MarshalResult), equal keys imply
// byte-identical results — a hit is provably the value a re-run would
// compute. Incremental executions get their own namespace ("|inc"): their
// OUTPUTS are bitwise the full run's, but their charging metadata
// (seconds, counters, algorithm) reflects the incremental path, and
// additionally depends on whether a prior-epoch seed was retained when the
// first such job executed — so they must never alias the full entries,
// whose bytes ARE a pure function of the key. The epoch's adjacency form
// (info.Form: csr vs overlay) is in the key for the same reason: a
// compaction keeps the epoch and the outputs but changes the charging, so
// the two forms' bytes must never alias. Sharded executions are qualified
// by their shard count ("|s<N>") for the same reason again: outputs are
// bitwise identical across shard counts, but the timing and traffic
// metadata in the serialized Result are per-width. The key leads with
// "<graph>|<epoch>|" so per-graph invalidation is a prefix match.
func cacheKey(info GraphInfo, app string, p frameworks.Profile, threads int,
	cfg engine.Config, opts core.Options, params frameworks.Params, machine string, incremental bool, shards int) string {
	inc := ""
	if incremental {
		inc = "|inc"
	}
	if shards > 0 {
		inc += fmt.Sprintf("|s%d", shards)
	}
	return fmt.Sprintf("%s|%d|f=%s|%s|%s|t%d|cfg%+v|opt%+v|par%+v|m=%s%s",
		info.Name, info.Epoch, info.Form, app, p.Name, threads, cfg, opts, params, machine, inc)
}

// graphKeyPrefix returns the prefix shared by every cache key of a graph
// name (all epochs).
func graphKeyPrefix(name string) string { return name + "|" }

// CacheStats reports result-cache effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Evictions uint64 `json:"evictions"`
}

// Cache is a bounded, concurrency-safe result cache mapping cacheKeys to
// canonical Result bytes. Eviction is FIFO by insertion order: with
// deterministic values there is nothing fresher to prefer, and FIFO keeps
// eviction order independent of request interleaving.
type Cache struct {
	mu        sync.Mutex
	entries   map[string][]byte
	order     []string
	max       int
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// DefaultCacheEntries bounds the cache when the server config leaves it 0.
const DefaultCacheEntries = 1024

// NewCache returns a cache holding at most max entries (0 = default).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{entries: make(map[string][]byte), max: max}
}

// Get returns the cached bytes for key, counting a hit or miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	val, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return val, ok
}

// Put stores val under key, evicting the oldest entries past capacity.
// Storing an existing key overwrites in place (the bytes are identical by
// construction, so this only refreshes nothing — it keeps Put idempotent
// when concurrent misses race to fill the same key).
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.bytes += int64(len(val)) - int64(len(old))
		c.entries[key] = val
		return
	}
	c.entries[key] = val
	c.order = append(c.order, key)
	c.bytes += int64(len(val))
	for len(c.entries) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		if old, ok := c.entries[oldest]; ok {
			c.bytes -= int64(len(old))
			delete(c.entries, oldest)
			c.evictions++
		}
	}
}

// InvalidateGraph drops every entry of the named graph (any epoch); called
// on eviction so the cache never outlives the data it was computed from,
// even though epoch-qualified keys already make stale hits impossible.
func (c *Cache) InvalidateGraph(name string) int {
	prefix := graphKeyPrefix(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	kept := c.order[:0]
	for _, key := range c.order {
		if strings.HasPrefix(key, prefix) {
			if old, ok := c.entries[key]; ok {
				c.bytes -= int64(len(old))
				delete(c.entries, key)
				dropped++
			}
			continue
		}
		kept = append(kept, key)
	}
	c.order = kept
	return dropped
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Evictions: c.evictions,
	}
}
