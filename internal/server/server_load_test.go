package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPClassesAndDeadlines swaps in a blocking class scheduler to pin
// the admission-control HTTP surface deterministically: unknown classes and
// negative deadlines 400, per-class queue overflow 429 with the structured
// shed body, deadline-shed jobs 503 with shed_reason — and a ?wait=1
// caller whose job is shed gets that 503 instead of hanging.
func TestHTTPClassesAndDeadlines(t *testing.T) {
	srv := newTestServer(t, 2, 16)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.sched.Close()
	srv.sched = NewClassScheduler(1, []ClassConfig{
		{Name: ClassInteractive, Weight: 4, QueueCap: 1},
		{Name: ClassBatch, Weight: 1, QueueCap: 4},
	}, func(j *Job) ([]byte, bool, error) {
		started <- struct{}{}
		<-release
		return []byte("{}"), false, nil
	})
	defer func() {
		close(release)
		srv.sched.Close()
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Validation 400s for the new request fields.
	for _, tc := range []struct {
		name    string
		req     JobRequest
		wantMsg string
	}{
		{"unknown class", JobRequest{Graph: "web", App: "bfs", Class: "premium"}, "unknown class"},
		{"negative deadline", JobRequest{Graph: "web", App: "bfs", DeadlineMS: -5}, "negative deadline"},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, tc.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, eb.Error, tc.wantMsg)
		}
	}

	// Block the only worker, then submit a doomed batch job via ?wait=1:
	// its deadline expires while it queues, and the waiter must receive a
	// structured 503, not hang.
	if resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "web", App: "bfs", Class: ClassInteractive}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: %d: %s", resp.StatusCode, body)
	}
	<-started

	type waitResp struct {
		code int
		body []byte
		err  error
	}
	waited := make(chan waitResp, 1)
	go func() {
		payload, err := json.Marshal(JobRequest{Graph: "web", App: "pr", Class: ClassBatch, DeadlineMS: 20})
		if err != nil {
			waited <- waitResp{err: err}
			return
		}
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(payload))
		if err != nil {
			waited <- waitResp{err: err}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		waited <- waitResp{code: resp.StatusCode, body: b}
	}()
	time.Sleep(60 * time.Millisecond) // let the 20ms deadline pass while queued
	release <- struct{}{}             // finish the blocker; the worker sheds the doomed job next

	var wr waitResp
	select {
	case wr = <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("?wait=1 caller hung on a shed job")
	}
	if wr.err != nil {
		t.Fatal(wr.err)
	}
	if wr.code != http.StatusServiceUnavailable {
		t.Fatalf("shed wait response = %d, want 503: %s", wr.code, wr.body)
	}
	var sb shedBody
	if err := json.Unmarshal(wr.body, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Class != ClassBatch || sb.ShedReason != ShedDeadline || !strings.Contains(sb.Error, "shed") {
		t.Errorf("shed body = %+v", sb)
	}

	// The shed job's status and result endpoints agree.
	var statuses []JobStatus
	if r := getJSON(t, ts.URL+"/v1/jobs", &statuses); r.StatusCode != http.StatusOK {
		t.Fatalf("job list: %d", r.StatusCode)
	}
	var shedID string
	for _, st := range statuses {
		if st.State == JobShed {
			shedID = st.ID
			if st.ShedReason != ShedDeadline || st.Class != ClassBatch {
				t.Errorf("shed status = %+v", st)
			}
			if st.QueueSeconds <= 0 || st.RunSeconds != 0 {
				t.Errorf("shed accounting: queue=%.4f run=%.4f", st.QueueSeconds, st.RunSeconds)
			}
		}
	}
	if shedID == "" {
		t.Fatal("no shed job in the listing")
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + shedID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shed result endpoint = %d, want 503: %s", r.StatusCode, rb)
	}

	// Per-class overflow: block the worker again, fill interactive's
	// 1-deep queue, and check the structured 429 names the class — while
	// batch still admits.
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "web", App: "bfs", Class: ClassInteractive}); resp.StatusCode != http.StatusAccepted {
		t.Fatal("second blocker rejected")
	}
	<-started
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "web", App: "bfs", Class: ClassInteractive}); resp.StatusCode != http.StatusAccepted {
		t.Fatal("queueable interactive job rejected")
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "web", App: "bfs", Class: ClassInteractive})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("interactive overflow = %d, want 429: %s", resp.StatusCode, body)
	}
	sb = shedBody{}
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Class != ClassInteractive || sb.Queued != 1 || sb.QueueCap != 1 || sb.Error == "" {
		t.Errorf("429 body = %+v", sb)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "web", App: "pr", Class: ClassBatch}); resp.StatusCode != http.StatusAccepted {
		t.Error("batch submit rejected while interactive full")
	}

	// /v1/stats reports the per-class detail.
	var st Stats
	if r := getJSON(t, ts.URL+"/v1/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r.StatusCode)
	}
	if len(st.Scheduler.Classes) != 2 {
		t.Fatalf("stats classes = %+v", st.Scheduler.Classes)
	}
	ic, bc := st.Scheduler.Classes[0], st.Scheduler.Classes[1]
	if ic.Class != ClassInteractive || ic.Weight != 4 || ic.QueueCap != 1 || ic.Rejected != 1 {
		t.Errorf("interactive class stats = %+v", ic)
	}
	if bc.Class != ClassBatch || bc.DeadlineShed != 1 || bc.QueueWait.Count < 1 {
		t.Errorf("batch class stats = %+v", bc)
	}
	if st.Scheduler.Shed != 1 || st.Scheduler.Rejected != 1 {
		t.Errorf("aggregate shed=%d rejected=%d, want 1/1", st.Scheduler.Shed, st.Scheduler.Rejected)
	}
}

// TestHTTPClassServingEndToEnd runs real kernels through the default
// classes: the class rides the job status, batch and interactive both
// execute, and the per-class service histograms fill in.
func TestHTTPClassServingEndToEnd(t *testing.T) {
	srv := newTestServer(t, 2, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Default class is interactive; an explicit batch job lands in batch.
	resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", JobRequest{Graph: "web", App: "bfs", DeadlineMS: 60_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive job: %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs?wait=1", JobRequest{Graph: "web", App: "pr", Class: ClassBatch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch job: %d: %s", resp.StatusCode, body)
	}

	var statuses []JobStatus
	if r := getJSON(t, ts.URL+"/v1/jobs", &statuses); r.StatusCode != http.StatusOK || len(statuses) != 2 {
		t.Fatalf("job list: %d, %d jobs", r.StatusCode, len(statuses))
	}
	if statuses[0].Class != ClassInteractive || statuses[1].Class != ClassBatch {
		t.Errorf("job classes = %q, %q", statuses[0].Class, statuses[1].Class)
	}

	var st Stats
	if r := getJSON(t, ts.URL+"/v1/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r.StatusCode)
	}
	for i, want := range []struct {
		class     string
		completed uint64
	}{{ClassInteractive, 1}, {ClassBatch, 1}} {
		cs := st.Scheduler.Classes[i]
		if cs.Class != want.class || cs.Completed != want.completed {
			t.Errorf("class %d = %+v, want %s completed=%d", i, cs, want.class, want.completed)
		}
		if cs.QueueWait.Count != 1 || cs.Service.Count != 1 || cs.Service.MaxSeconds <= 0 {
			t.Errorf("class %s histograms: wait=%d service=%d max=%.6f",
				cs.Class, cs.QueueWait.Count, cs.Service.Count, cs.Service.MaxSeconds)
		}
	}
}
