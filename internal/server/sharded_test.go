package server

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/graph"
)

// TestShardedJobsMatchUnsharded locks the serving-layer end of the sharded
// determinism contract: for the apps with BSP kernels, output arrays from
// sharded jobs are identical to each other across shard counts, and the
// shard count is part of the cache key (differently-sharded submissions
// both execute; repeats of one width hit).
func TestShardedJobsMatchUnsharded(t *testing.T) {
	srv := newTestServer(t, 2, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	run := func(shards int) (analytics.Result, string) {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/jobs?wait=1", JobRequest{
			Graph: "web", App: "bfs", Shards: shards,
		})
		if resp.StatusCode != 200 {
			t.Fatalf("shards=%d: status %d: %s", shards, resp.StatusCode, data)
		}
		var res analytics.Result
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatal(err)
		}
		return res, resp.Header.Get("X-Cache")
	}

	one, miss1 := run(1)
	four, miss4 := run(4)
	if miss1 != "miss" || miss4 != "miss" {
		t.Fatalf("first submissions per width should miss (got %q, %q): widths must not alias", miss1, miss4)
	}
	if !reflect.DeepEqual(one.Dist, four.Dist) {
		t.Fatal("bfs distances differ between shards=1 and shards=4")
	}
	if one.Seconds == four.Seconds {
		t.Error("per-width timing identical; shard count seems uncharged")
	}
	if _, cache := run(4); cache != "hit" {
		t.Errorf("repeat of shards=4 should hit the cache, got %q", cache)
	}
	if four.Algorithm != "shard-bsp" {
		t.Errorf("sharded job ran %q, want shard-bsp", four.Algorithm)
	}
}

// TestShardedJobValidation walks the request-shape rejections.
func TestShardedJobValidation(t *testing.T) {
	srv := newTestServer(t, 1, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := []JobRequest{
		{Graph: "web", App: "bfs", Shards: -2},
		{Graph: "web", App: "bfs", Shards: DefaultMaxShards + 1},
		{Graph: "web", App: "tc", Shards: 2}, // no BSP kernel
		{Graph: "web", App: "pr", Shards: 2, Incremental: true},
	}
	for _, req := range bad {
		resp, data := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != 400 {
			t.Errorf("%+v accepted: status %d: %s", req, resp.StatusCode, data)
		}
	}

	// Overlay-form epochs cannot be partitioned; a checkpoint restores
	// sharded eligibility.
	if _, err := srv.Registry().ApplyUpdates("erdos", []graph.EdgeUpdate{
		{Op: graph.OpInsert, Src: 1, Dst: 2},
	}); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "erdos", App: "bfs", Shards: 2})
	if resp.StatusCode != 400 {
		t.Fatalf("overlay-form graph accepted a sharded job: status %d: %s", resp.StatusCode, data)
	}
	if _, err := srv.Registry().Checkpoint("erdos"); err != nil {
		t.Fatal(err)
	}
	resp, data = postJSON(t, ts.URL+"/v1/jobs?wait=1", JobRequest{Graph: "erdos", App: "bfs", Shards: 2})
	if resp.StatusCode != 200 {
		t.Fatalf("post-checkpoint sharded job failed: status %d: %s", resp.StatusCode, data)
	}
}
