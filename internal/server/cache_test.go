package server

import (
	"fmt"
	"testing"

	"pmemgraph/internal/frameworks"
)

func TestCacheGetPutStats(t *testing.T) {
	c := NewCache(8)
	if _, ok := c.Get("k"); ok {
		t.Error("empty cache hit")
	}
	c.Put("k", []byte("value"))
	got, ok := c.Get("k")
	if !ok || string(got) != "value" {
		t.Errorf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("stats = %+v", st)
	}
	// Racing misses that fill the same key must stay idempotent.
	c.Put("k", []byte("value"))
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("idempotent Put changed stats: %+v", st)
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("g%d|1|bfs", i), []byte{byte(i)})
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 entries / 2 evictions", st)
	}
	if _, ok := c.Get("g0|1|bfs"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Get("g4|1|bfs"); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCacheInvalidateGraphIsPrefixExact(t *testing.T) {
	c := NewCache(16)
	c.Put(graphKeyPrefix("web")+"1|bfs", []byte("a"))
	c.Put(graphKeyPrefix("web")+"2|cc", []byte("b"))
	c.Put(graphKeyPrefix("webby")+"1|bfs", []byte("c"))
	if dropped := c.InvalidateGraph("web"); dropped != 2 {
		t.Errorf("dropped %d entries, want 2", dropped)
	}
	if _, ok := c.Get(graphKeyPrefix("webby") + "1|bfs"); !ok {
		t.Error("invalidation of \"web\" removed \"webby\" entries")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestCacheKeyCoversExecutionInputs(t *testing.T) {
	info := GraphInfo{Name: "web", Epoch: 3}
	galois := frameworks.Galois
	params := frameworks.Params{Source: 5, Delta: 64, K: 10, Tol: 1e-4, Rounds: 50}
	base := cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", false, 0)

	if again := cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", false, 0); again != base {
		t.Error("identical inputs produced different keys")
	}
	variants := []string{
		cacheKey(GraphInfo{Name: "other", Epoch: 3}, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", false, 0),
		cacheKey(GraphInfo{Name: "web", Epoch: 4}, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", false, 0),
		cacheKey(info, "cc", galois, 8, galois.Engine(), galois.Options("cc", 8), params, "optane", false, 0),
		cacheKey(info, "bfs", galois, 16, galois.Engine(), galois.Options("bfs", 16), params, "optane", false, 0),
		cacheKey(info, "bfs", frameworks.GBBS, 8, frameworks.GBBS.Engine(), frameworks.GBBS.Options("bfs", 8), params, "optane", false, 0),
		cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), frameworks.Params{Source: 6, Delta: 64, K: 10, Tol: 1e-4, Rounds: 50}, "optane", false, 0),
		cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "dram", false, 0),
		cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", true, 0),
		cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", false, 1),
		cacheKey(info, "bfs", galois, 8, galois.Engine(), galois.Options("bfs", 8), params, "optane", false, 8),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collided with another key: %s", i, v)
		}
		seen[v] = true
	}
}
