package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pmemgraph/internal/graph"
)

// graphStore is one graph's durable state under the registry's data
// directory: dataDir/<name>/ holds
//
//	base-<k>.csrz   sealed snapshot subsuming the first k update batches
//	wal.log         WAL records for batches k+1, k+2, ... (graph.AppendLog)
//
// The crash-consistency protocol hangs on two facts. First, WAL records
// carry GLOBAL per-graph sequence numbers that are never renumbered, and
// the snapshot's filename records which sequences it subsumes — so replay
// is always "load the highest base-<k>, apply logged batches with seq > k"
// and a crash at ANY point between a snapshot commit and the log
// truncation that follows it merely leaves already-subsumed records in the
// log, which replay skips by sequence instead of applying twice. Second,
// every multi-byte commit is a single rename: snapshots are written to a
// temp file and renamed into place, so a torn snapshot write leaves the
// previous base-<k> (and the log records it needs) untouched.
type graphStore struct {
	dir string
	// wal is the open append handle; appends are serialized by the
	// registry's write lock.
	wal *os.File
	// baseSeq is k of the live base-<k>.csrz; nextSeq the sequence the
	// next appended batch gets.
	baseSeq uint64
	nextSeq uint64
}

const walFileName = "wal.log"

func basePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("base-%d.csrz", seq))
}

// openWAL (re)opens the append handle.
func (st *graphStore) openWAL() error {
	f, err := os.OpenFile(filepath.Join(st.dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening WAL: %w", err)
	}
	st.wal = f
	return nil
}

// createGraphStore initializes a fresh graph directory with g as the
// batch-zero snapshot and an empty log. A leftover directory from an
// evicted or half-created graph of the same name is removed first.
func createGraphStore(dataDir, name string, g *graph.Graph) (*graphStore, error) {
	dir := filepath.Join(dataDir, name)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("server: clearing graph dir: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating graph dir: %w", err)
	}
	st := &graphStore{dir: dir, baseSeq: 0, nextSeq: 1}
	tmp, err := st.writeSnapshot(g)
	if err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, basePath(dir, 0)); err != nil {
		return nil, fmt.Errorf("server: committing snapshot: %w", err)
	}
	if err := st.openWAL(); err != nil {
		return nil, err
	}
	return st, nil
}

// writeSnapshot serializes g to a temp file in the store's directory and
// returns its path; the caller commits it with a rename (or removes it).
// Fsync before rename makes the rename a real commit point.
func (st *graphStore) writeSnapshot(g *graph.Graph) (string, error) {
	f, err := os.CreateTemp(st.dir, ".base-*.tmp")
	if err != nil {
		return "", fmt.Errorf("server: creating snapshot temp: %w", err)
	}
	if err := graph.WriteCSRZ(f, g); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(f.Name())
		return "", fmt.Errorf("server: writing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", fmt.Errorf("server: closing snapshot: %w", err)
	}
	return f.Name(), nil
}

// AppendBatch logs one update batch durably; called under the registry
// write lock, after the epoch conflict check and before the epoch swap, so
// the log order is exactly the epoch order and no unlogged epoch is ever
// visible.
func (st *graphStore) AppendBatch(ups []graph.EdgeUpdate) error {
	if err := graph.AppendLog(st.wal, st.nextSeq, ups); err != nil {
		return err
	}
	if err := st.wal.Sync(); err != nil {
		return err
	}
	st.nextSeq++
	return nil
}

// CommitSnapshot promotes tmp (from writeSnapshot) to the live base
// subsuming every batch logged so far, then truncates the log. Called
// under the registry write lock after re-checking that no batch landed
// since the snapshot was rendered. A crash between the rename and the
// truncation is benign: the log still holds only records with seq <=
// baseSeq, which recovery skips.
func (st *graphStore) CommitSnapshot(tmp string) error {
	upTo := st.nextSeq - 1
	if err := os.Rename(tmp, basePath(st.dir, upTo)); err != nil {
		return fmt.Errorf("server: committing snapshot: %w", err)
	}
	if old := st.baseSeq; old != upTo {
		os.Remove(basePath(st.dir, old))
	}
	st.baseSeq = upTo
	st.wal.Close()
	if err := os.Remove(filepath.Join(st.dir, walFileName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: truncating WAL: %w", err)
	}
	return st.openWAL()
}

// Close releases the WAL handle.
func (st *graphStore) Close() {
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
}

// Remove deletes the graph's directory (eviction).
func (st *graphStore) Remove() {
	st.Close()
	os.RemoveAll(st.dir)
}

// openGraphStore recovers one graph directory: it loads the highest
// base-<k> snapshot, replays the logged batches with seq > k (skipping
// records a committed snapshot already subsumes, stopping at a torn or
// corrupt tail), rewrites the log to exactly the replayed records, and
// returns the sealed base plus the surviving batches in order. A directory
// with no committed snapshot yields (nil store) — there is nothing to
// serve from it.
func openGraphStore(dataDir, name string) (*graphStore, *graph.Graph, [][]graph.EdgeUpdate, error) {
	dir := filepath.Join(dataDir, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: reading graph dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, "base-") || !strings.HasSuffix(n, ".csrz") {
			continue
		}
		k, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "base-"), ".csrz"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, k)
	}
	if len(seqs) == 0 {
		return nil, nil, nil, nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	baseSeq := seqs[len(seqs)-1]
	f, err := os.Open(basePath(dir, baseSeq))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: opening snapshot: %w", err)
	}
	g, err := graph.ReadCSRZ(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: reading snapshot: %w", err)
	}
	// A superseded snapshot survives a crash between a commit rename and
	// the old file's removal; finish the job.
	for _, k := range seqs[:len(seqs)-1] {
		os.Remove(basePath(dir, k))
	}

	var batches [][]graph.EdgeUpdate
	first := uint64(0)
	if wf, err := os.Open(filepath.Join(dir, walFileName)); err == nil {
		first, batches, err = graph.ReadLogSeq(wf)
		wf.Close()
		if err != nil {
			return nil, nil, nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, nil, fmt.Errorf("server: opening WAL: %w", err)
	}
	// Keep only batches the snapshot does not subsume. A log that starts
	// BEYOND baseSeq+1 has a gap against the snapshot — nothing in it can
	// be trusted to follow the snapshot's state, so it is dropped whole.
	switch {
	case len(batches) == 0:
	case first > baseSeq+1:
		batches = nil
	case first+uint64(len(batches)) <= baseSeq+1:
		batches = nil
	default:
		batches = batches[baseSeq+1-first:]
	}

	// Rewrite the log to exactly the surviving records (dropping torn
	// tails, subsumed records and untrusted suffixes) so future appends
	// land on a clean, replayable stream. Same single-rename commit.
	tmp, err := os.CreateTemp(dir, ".wal-*.tmp")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: creating WAL temp: %w", err)
	}
	for i, b := range batches {
		if err == nil {
			err = graph.AppendLog(tmp, baseSeq+1+uint64(i), b)
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return nil, nil, nil, fmt.Errorf("server: rewriting WAL: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, walFileName)); err != nil {
		return nil, nil, nil, fmt.Errorf("server: rewriting WAL: %w", err)
	}

	st := &graphStore{dir: dir, baseSeq: baseSeq, nextSeq: baseSeq + 1 + uint64(len(batches))}
	if err := st.openWAL(); err != nil {
		return nil, nil, nil, err
	}
	return st, g, batches, nil
}
