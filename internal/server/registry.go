package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// graphNameRE restricts registry names so they can be embedded verbatim in
// cache keys (which use '|' separators) and URL paths.
var graphNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// GraphInfo describes one resident graph.
type GraphInfo struct {
	Name string `json:"name"`
	// Source records provenance: "gen:<input>@<scale>", "file:<path>" or
	// "direct" for graphs handed to Add in-process.
	Source string `json:"source"`
	Nodes  int    `json:"nodes"`
	Edges  int64  `json:"edges"`
	// CSRBytes is the resident CSR footprint (both directions + weights,
	// since registry graphs are sealed).
	CSRBytes int64 `json:"csr_bytes"`
	// Epoch increments on every load and on every applied update batch,
	// so cache keys from an evicted or pre-update graph can never satisfy
	// a lookup against its replacement even if the same name is reused.
	Epoch uint64 `json:"epoch"`
	// Updates counts the update batches applied since the graph was
	// loaded.
	Updates int `json:"updates,omitempty"`
	// Form is the epoch's resident adjacency form: "csr" (a sealed CSR
	// graph) or "overlay" (a delta overlay over the last sealed base).
	// Checkpointing/compaction flips overlay -> csr WITHOUT changing the
	// epoch — outputs are byte-identical across forms, only the charging
	// differs, which is why cache keys carry the form separately.
	Form string `json:"form"`
	// OverlayEntries counts the overlay's delta entries (overlay form
	// only); compaction triggers when it outgrows Edges/compactDiv.
	OverlayEntries int64 `json:"overlay_entries,omitempty"`
}

// Adjacency forms a resident epoch can be served from.
const (
	formCSR     = "csr"
	formOverlay = "overlay"
)

// Registry holds the graphs resident in the serving process. Graphs are
// sealed on load — transpose and edge weights fully materialized — so the
// many concurrent runtimes built over one graph only ever read it; none of
// the lazy mutation paths (core.New's BuildIn, RunOn's weight generation)
// can fire mid-flight.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*residentGraph
	epoch  uint64
	// dataDir, when set, roots the durable state: each graph persists a
	// sealed base-<k>.csrz snapshot plus a WAL of the batches applied
	// since (see store.go). Empty = purely in-memory serving.
	dataDir string
	// compactDiv sets the background-compaction threshold: an overlay
	// epoch whose delta exceeds Edges/compactDiv is merged into a fresh
	// CSR snapshot off the update path. <= 0 disables auto-compaction.
	compactDiv int64
	// compacting guards one background compactor per graph.
	compacting map[string]bool
	wg         sync.WaitGroup
}

type residentGraph struct {
	info GraphInfo
	// g is the sealed base CSR. For csr-form epochs it IS the epoch; for
	// overlay form it is the base ov overlays (ov.Base()).
	g *graph.Graph
	// ov is the delta-overlay epoch, non-nil exactly when info.Form is
	// "overlay". Prior epochs are pinned only by in-flight jobs holding
	// their references; once those return, the garbage collector reclaims
	// them — the registry itself never retains more than one epoch.
	ov *graph.Overlay
	// params are the deterministic per-graph kernel defaults
	// (frameworks.DefaultParams), computed once at registration: the
	// source lookup is an O(V) degree scan that cache-hit-heavy serving
	// must not repeat per request.
	params frameworks.Params
	// prevEpoch and delta record the last applied update batch (the
	// transition prevEpoch -> info.Epoch); delta is nil for graphs whose
	// current epoch came from a load. Incremental jobs use them to decide
	// whether a retained seed is exactly one batch old.
	prevEpoch uint64
	delta     *graph.Delta
	// store is the graph's durable state (nil without a data dir); it is
	// carried across epoch swaps and removed on eviction.
	store *graphStore
	// parts caches the epoch's partitioned forms by shard count, built on
	// first use (partitioning is O(V) but the per-shard ghost tables are
	// not free, and sharded serving is cache-hit-heavy). The cache lives
	// on the epoch entry, so an update batch or checkpoint — which swaps
	// the entry — naturally drops stale partitions.
	partMu sync.Mutex
	parts  map[int]*graph.Partition
}

// DefaultCompactDiv is the compaction threshold divisor when the config
// leaves it 0: an overlay is merged once its delta exceeds |E|/20.
const DefaultCompactDiv = 20

// NewRegistry returns an empty, in-memory registry with default
// compaction.
func NewRegistry() *Registry {
	return NewRegistryAt("", 0)
}

// NewRegistryAt returns a registry persisting under dataDir ("" for
// in-memory) with the given compaction divisor (0 = DefaultCompactDiv,
// negative = auto-compaction off). Call Recover to replay existing state.
func NewRegistryAt(dataDir string, compactDiv int64) *Registry {
	if compactDiv == 0 {
		compactDiv = DefaultCompactDiv
	}
	return &Registry{
		graphs:     make(map[string]*residentGraph),
		dataDir:    dataDir,
		compactDiv: compactDiv,
		compacting: make(map[string]bool),
	}
}

// seal materializes every lazily-built projection of g (edge weights with
// the frameworks defaults, the transpose so in-weights exist too, and both
// directions' compressed adjacency forms for jobs selecting the compressed
// backend). After sealing, HasWeights and HasIn both hold and the
// compressed encodings are cached, making every subsequent core.New /
// RunOn over the graph read-only. Order matters: weights invalidate cached
// compressed forms, so compression runs last.
func seal(g *graph.Graph) {
	if !g.HasWeights() {
		g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
	}
	g.BuildIn()
	g.CompressOut()
	g.CompressIn()
}

// Add registers g under name, sealing it first. It fails on invalid or
// duplicate names; the duplicate check runs before sealing so a rejected
// Add neither burns the O(E) materialization nor mutates the caller's
// graph (two racing Adds of one name may both seal, but only one
// registers).
func (r *Registry) Add(name, source string, g *graph.Graph) (GraphInfo, error) {
	// The all-dots check keeps names usable as directory names under the
	// data dir ("." and ".." would escape or collide with it).
	if !graphNameRE.MatchString(name) || strings.Trim(name, ".") == "" {
		return GraphInfo{}, fmt.Errorf("server: invalid graph name %q (want %s)", name, graphNameRE)
	}
	dup := func() error {
		if _, ok := r.graphs[name]; ok {
			return fmt.Errorf("server: graph %q already loaded (evict it first)", name)
		}
		return nil
	}
	r.mu.RLock()
	err := dup()
	r.mu.RUnlock()
	if err != nil {
		return GraphInfo{}, err
	}
	seal(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := dup(); err != nil {
		return GraphInfo{}, err
	}
	var store *graphStore
	if r.dataDir != "" {
		// The batch-zero snapshot is written under the registry lock: the
		// name is only reserved by the map insert below, so a racing Add
		// of the same name must not interleave directory writes.
		if store, err = createGraphStore(r.dataDir, name, g); err != nil {
			return GraphInfo{}, err
		}
	}
	r.epoch++
	info := GraphInfo{
		Name:     name,
		Source:   source,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		CSRBytes: g.CSRBytes(),
		Epoch:    r.epoch,
		Form:     formCSR,
	}
	r.graphs[name] = &residentGraph{info: info, g: g, params: frameworks.DefaultParams(g), store: store}
	return info, nil
}

// LoadInput generates one of the paper's Table 3 inputs (gen.Input) and
// registers it under name.
func (r *Registry) LoadInput(name, input string, scale gen.Scale) (GraphInfo, error) {
	g, _, err := gen.Input(input, scale)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: loading input %q: %w", input, err)
	}
	return r.Add(name, fmt.Sprintf("gen:%s@%d", input, scale), g)
}

// LoadCSRFile reads a serialized CSR binary and registers it under name.
// Files ending in ".csrz" are decoded as compressed CSR (graph.ReadCSRZ);
// anything else as raw (graph.ReadCSR). Both readers carry the same
// hostile-header hardening, and a .csrz load keeps its compressed blocks
// cached so compressed-backend jobs reuse them without re-encoding.
func (r *Registry) LoadCSRFile(name, path string) (GraphInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: opening CSR file: %w", err)
	}
	defer f.Close()
	var g *graph.Graph
	if strings.EqualFold(filepath.Ext(path), ".csrz") {
		g, err = graph.ReadCSRZ(f)
	} else {
		g, err = graph.ReadCSR(f)
	}
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: reading CSR file %s: %w", path, err)
	}
	return r.Add(name, "file:"+path, g)
}

// Get returns the sealed base CSR registered under name: the epoch itself
// for csr-form epochs, the overlay's base for overlay form (info.Form
// tells them apart; View returns the overlay too). The returned graph
// stays valid for the caller even if the name is evicted afterwards (jobs
// in flight keep their reference; eviction only unregisters).
func (r *Registry) Get(name string) (*graph.Graph, GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, ok := r.graphs[name]
	if !ok {
		return nil, GraphInfo{}, false
	}
	return rg.g, rg.info, true
}

// View returns the current epoch in its resident form: the sealed base
// CSR plus, for overlay-form epochs, the overlay over it (nil for csr
// form). This is the job resolver — executions run on exactly the
// returned form, and the cache key records which one it was.
func (r *Registry) View(name string) (*graph.Graph, *graph.Overlay, GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, ok := r.graphs[name]
	if !ok {
		return nil, nil, GraphInfo{}, false
	}
	return rg.g, rg.ov, rg.info, true
}

// Snapshot returns the current epoch as a standalone sealed CSR graph:
// the resident graph itself for csr form, a materialized + sealed copy
// for overlay form. The copy is O(E) — this is for conformance checks,
// export and update-batch generation, never the serving path.
func (r *Registry) Snapshot(name string) (*graph.Graph, GraphInfo, bool) {
	g, ov, info, ok := r.View(name)
	if !ok {
		return nil, GraphInfo{}, false
	}
	if ov != nil {
		g = ov.Materialize()
		seal(g)
	}
	return g, info, true
}

// PartitionView returns the named graph's partitioned form for the given
// shard count, building and retaining it on first use (per epoch — epoch
// swaps drop the cache with the entry). Only csr-form epochs can be
// partitioned: shard-local graphs alias the sealed CSR arrays, which an
// overlay epoch does not have in merged form. The returned info is the
// epoch the partition belongs to, so callers resolving the graph
// separately can detect a concurrent swap.
func (r *Registry) PartitionView(name string, shards int) (*graph.Partition, GraphInfo, error) {
	r.mu.RLock()
	rg, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
	}
	if rg.ov != nil {
		return nil, GraphInfo{}, fmt.Errorf("server: graph %q is overlay-form; checkpoint it before sharded jobs", name)
	}
	rg.partMu.Lock()
	defer rg.partMu.Unlock()
	if p, ok := rg.parts[shards]; ok {
		return p, rg.info, nil
	}
	p, err := graph.NewPartition(rg.g, shards)
	if err != nil {
		return nil, GraphInfo{}, fmt.Errorf("server: partitioning %q: %w", name, err)
	}
	if rg.parts == nil {
		rg.parts = make(map[int]*graph.Partition)
	}
	rg.parts[shards] = p
	return p, rg.info, nil
}

// Defaults returns the graph's precomputed kernel parameter defaults.
func (r *Registry) Defaults(name string) (frameworks.Params, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, ok := r.graphs[name]
	if !ok {
		return frameworks.Params{}, false
	}
	return rg.params, true
}

// ErrUpdateConflict is returned by ApplyUpdates when the named graph
// changed (another update batch, or an evict + reload) between the rebuild
// and the swap; the client should re-read the graph state and retry. The
// HTTP layer maps it to 409.
var ErrUpdateConflict = errors.New("server: graph changed concurrently, retry the update batch")

// ErrNotLoaded wraps "no such graph" failures so the HTTP layer can map
// them to 404.
var ErrNotLoaded = errors.New("not loaded")

// ApplyUpdates applies one batched edge-update log to the named graph as a
// new epoch in overlay form: the batch is validated against and folded
// into the current epoch's delta overlay (graph.Overlay.Apply — O(|delta|
// + batch·log d), never an O(E) rebuild; the resident epoch is immutable
// and in-flight jobs keep reading it), appended durably to the graph's WAL,
// and the registry entry is swapped under the next epoch. The fold runs
// outside the registry lock; if the entry changed meanwhile the swap fails
// with ErrUpdateConflict rather than silently dropping the concurrent
// change. The WAL append happens under the lock, after the conflict check
// and before the swap — an epoch is never visible before its batch is on
// disk, and a logged batch that fails to commit is at worst a subsumable
// duplicate-free prefix record. The applied Delta is retained (see
// UpdateState) for incremental jobs; an overlay that outgrows the
// compaction threshold is merged into a fresh CSR snapshot in the
// background (see Checkpoint).
func (r *Registry) ApplyUpdates(name string, ups []graph.EdgeUpdate) (GraphInfo, error) {
	r.mu.RLock()
	rg, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
	}
	oldInfo := rg.info
	base := rg.ov
	if base == nil {
		base = graph.NewOverlay(rg.g)
	}
	nov, delta, err := base.Apply(ups)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: updating %q: %w", name, err)
	}
	r.mu.Lock()
	cur, ok := r.graphs[name]
	if !ok {
		// Evicted while we folded: a retry is doomed, so report 404
		// rather than the retryable 409.
		r.mu.Unlock()
		return GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
	}
	if cur.info.Epoch != oldInfo.Epoch {
		r.mu.Unlock()
		return GraphInfo{}, ErrUpdateConflict
	}
	if cur.store != nil {
		if err := cur.store.AppendBatch(ups); err != nil {
			r.mu.Unlock()
			return GraphInfo{}, fmt.Errorf("server: logging update for %q: %w", name, err)
		}
	}
	r.epoch++
	info := GraphInfo{
		Name:           name,
		Source:         oldInfo.Source,
		Nodes:          nov.NumNodes(),
		Edges:          nov.NumEdges(),
		CSRBytes:       overlayBytes(nov),
		Epoch:          r.epoch,
		Updates:        oldInfo.Updates + 1,
		Form:           formOverlay,
		OverlayEntries: nov.Entries(),
	}
	r.graphs[name] = &residentGraph{
		info:      info,
		g:         nov.Base(),
		ov:        nov,
		params:    frameworks.DefaultParamsOverlay(nov),
		prevEpoch: oldInfo.Epoch,
		delta:     &delta,
		store:     cur.store,
	}
	compact := r.overThreshold(r.graphs[name])
	r.mu.Unlock()
	if compact {
		r.compactAsync(name)
	}
	return info, nil
}

// overlayBytes is the resident footprint an overlay epoch reports: the
// shared sealed base plus the two delta sides at 8 bytes per entry.
func overlayBytes(ov *graph.Overlay) int64 {
	return ov.Base().CSRBytes() + ov.Entries()*16
}

// overThreshold reports whether rg's overlay outgrew the compaction bound
// (delta entries > |E| / compactDiv). Callers hold r.mu.
func (r *Registry) overThreshold(rg *residentGraph) bool {
	return r.compactDiv > 0 && rg.ov != nil && rg.ov.Entries() > rg.ov.NumEdges()/r.compactDiv
}

// Checkpoint merges the named graph's current epoch into a standalone
// sealed CSR (overlay form is materialized — O(E), which is exactly the
// cost ApplyUpdates no longer pays per batch), persists it as the new
// base-<k>.csrz snapshot, truncates the WAL it subsumes, and swaps the
// registry entry to csr form WITHOUT changing the epoch: outputs are
// byte-identical across forms, so cached results stay valid under their
// form-qualified keys. The materialization and snapshot render run
// outside the registry lock; a batch that lands meanwhile fails the swap
// with ErrUpdateConflict (callers retry or reschedule).
func (r *Registry) Checkpoint(name string) (GraphInfo, error) {
	r.mu.RLock()
	rg, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
	}
	oldInfo := rg.info
	m := rg.g
	if rg.ov != nil {
		m = rg.ov.Materialize()
		seal(m)
	}
	tmp := ""
	if rg.store != nil {
		var err error
		if tmp, err = rg.store.writeSnapshot(m); err != nil {
			return GraphInfo{}, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.graphs[name]
	if !ok || cur.info.Epoch != oldInfo.Epoch {
		if tmp != "" {
			os.Remove(tmp)
		}
		if !ok {
			return GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
		}
		return GraphInfo{}, ErrUpdateConflict
	}
	if cur.store != nil {
		if err := cur.store.CommitSnapshot(tmp); err != nil {
			return GraphInfo{}, err
		}
	}
	info := cur.info
	info.Form, info.OverlayEntries, info.CSRBytes = formCSR, 0, m.CSRBytes()
	r.graphs[name] = &residentGraph{
		info:      info,
		g:         m,
		params:    cur.params,
		prevEpoch: cur.prevEpoch,
		delta:     cur.delta,
		store:     cur.store,
	}
	return info, nil
}

// compactAsync starts (at most) one background compactor for name. The
// compactor checkpoints and re-checks the threshold until the overlay is
// back under it — a batch that lands mid-materialization conflicts the
// swap, and the loop simply renders the newer epoch instead of leaking an
// ever-growing overlay.
func (r *Registry) compactAsync(name string) {
	r.mu.Lock()
	if r.compacting[name] {
		r.mu.Unlock()
		return
	}
	r.compacting[name] = true
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			_, err := r.Checkpoint(name)
			r.mu.Lock()
			rg, ok := r.graphs[name]
			retry := (err == nil || errors.Is(err, ErrUpdateConflict)) && ok && r.overThreshold(rg)
			if !retry {
				delete(r.compacting, name)
				r.mu.Unlock()
				return
			}
			r.mu.Unlock()
		}
	}()
}

// Quiesce blocks until background compactions launched so far finish
// (tests and orderly shutdown).
func (r *Registry) Quiesce() { r.wg.Wait() }

// Recover replays the data directory: for every graph with a committed
// snapshot it loads the highest base-<k>.csrz, seals it, folds the logged
// batches with seq > k into an overlay epoch (a torn or corrupt log tail
// is dropped and the log rewritten to the surviving prefix — a crash
// mid-append loses at most the batch being appended), and registers the
// result. Returns the recovered graphs' infos.
func (r *Registry) Recover() ([]GraphInfo, error) {
	if r.dataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(r.dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: reading data dir: %w", err)
	}
	var infos []GraphInfo
	for _, e := range entries {
		if !e.IsDir() || !graphNameRE.MatchString(e.Name()) {
			continue
		}
		info, err := r.recoverGraph(e.Name())
		if err != nil {
			return infos, fmt.Errorf("server: recovering %q: %w", e.Name(), err)
		}
		if info.Name != "" {
			infos = append(infos, info)
		}
	}
	return infos, nil
}

// recoverGraph restores one graph directory; a zero GraphInfo means the
// directory held no committed snapshot and was skipped.
func (r *Registry) recoverGraph(name string) (GraphInfo, error) {
	st, g, batches, err := openGraphStore(r.dataDir, name)
	if err != nil || st == nil {
		return GraphInfo{}, err
	}
	seal(g)
	ov := graph.NewOverlay(g)
	var delta *graph.Delta
	for i, b := range batches {
		nov, d, err := ov.Apply(b)
		if err != nil {
			// Every logged batch was validated before it was appended, so
			// a semantic rejection means snapshot and log diverged out of
			// band; refusing the graph beats serving a guessed state.
			st.Close()
			return GraphInfo{}, fmt.Errorf("replaying batch %d: %w", i+1, err)
		}
		ov, delta = nov, &d
	}
	r.mu.Lock()
	if _, ok := r.graphs[name]; ok {
		r.mu.Unlock()
		st.Close()
		return GraphInfo{}, fmt.Errorf("already loaded")
	}
	r.epoch += uint64(1 + len(batches)) // the load plus one epoch per batch
	info := GraphInfo{
		Name:     name,
		Source:   "wal:" + st.dir,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		CSRBytes: g.CSRBytes(),
		Epoch:    r.epoch,
		Updates:  len(batches),
		Form:     formCSR,
	}
	rg := &residentGraph{info: info, g: g, params: frameworks.DefaultParams(g), store: st}
	if len(batches) > 0 {
		info.Form = formOverlay
		info.Edges = ov.NumEdges()
		info.CSRBytes = overlayBytes(ov)
		info.OverlayEntries = ov.Entries()
		rg.info = info
		rg.ov = ov
		rg.params = frameworks.DefaultParamsOverlay(ov)
		rg.prevEpoch = r.epoch - 1
		rg.delta = delta
	}
	r.graphs[name] = rg
	compact := r.overThreshold(rg)
	r.mu.Unlock()
	if compact {
		r.compactAsync(name)
	}
	return info, nil
}

// UpdateState returns the graph's current epoch, the epoch it held before
// its most recent update batch, and that batch's Delta — i.e. the Delta
// describes exactly the prevEpoch -> epoch transition. ok is false when
// the graph is absent or its current epoch came from a load rather than
// an update. Consumers resolving a graph separately must check that THEIR
// resolved epoch equals the returned current epoch: a batch can commit
// between the two lookups, and applying the newer Delta to the older
// graph would be wrong.
func (r *Registry) UpdateState(name string) (epoch, prevEpoch uint64, delta *graph.Delta, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, present := r.graphs[name]
	if !present || rg.delta == nil {
		return 0, 0, nil, false
	}
	return rg.info.Epoch, rg.prevEpoch, rg.delta, true
}

// Evict unregisters name and deletes its durable state (an evicted graph
// must not resurrect at the next boot), reporting whether it was present.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[name]
	if ok && rg.store != nil {
		rg.store.Remove()
	}
	delete(r.graphs, name)
	return ok
}

// List returns the resident graphs sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos := make([]GraphInfo, 0, len(r.graphs))
	for _, rg := range r.graphs {
		infos = append(infos, rg.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ResidentBytes sums the CSR footprint of every resident graph.
func (r *Registry) ResidentBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, rg := range r.graphs {
		total += rg.info.CSRBytes
	}
	return total
}
