package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

// graphNameRE restricts registry names so they can be embedded verbatim in
// cache keys (which use '|' separators) and URL paths.
var graphNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// GraphInfo describes one resident graph.
type GraphInfo struct {
	Name string `json:"name"`
	// Source records provenance: "gen:<input>@<scale>", "file:<path>" or
	// "direct" for graphs handed to Add in-process.
	Source string `json:"source"`
	Nodes  int    `json:"nodes"`
	Edges  int64  `json:"edges"`
	// CSRBytes is the resident CSR footprint (both directions + weights,
	// since registry graphs are sealed).
	CSRBytes int64 `json:"csr_bytes"`
	// Epoch increments on every load and on every applied update batch,
	// so cache keys from an evicted or pre-update graph can never satisfy
	// a lookup against its replacement even if the same name is reused.
	Epoch uint64 `json:"epoch"`
	// Updates counts the update batches applied since the graph was
	// loaded.
	Updates int `json:"updates,omitempty"`
}

// Registry holds the graphs resident in the serving process. Graphs are
// sealed on load — transpose and edge weights fully materialized — so the
// many concurrent runtimes built over one graph only ever read it; none of
// the lazy mutation paths (core.New's BuildIn, RunOn's weight generation)
// can fire mid-flight.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*residentGraph
	epoch  uint64
}

type residentGraph struct {
	info GraphInfo
	g    *graph.Graph
	// params are the deterministic per-graph kernel defaults
	// (frameworks.DefaultParams), computed once at registration: the
	// source lookup is an O(V) degree scan that cache-hit-heavy serving
	// must not repeat per request.
	params frameworks.Params
	// prevEpoch and delta record the last applied update batch (the
	// transition prevEpoch -> info.Epoch); delta is nil for graphs whose
	// current epoch came from a load. Incremental jobs use them to decide
	// whether a retained seed is exactly one batch old.
	prevEpoch uint64
	delta     *graph.Delta
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*residentGraph)}
}

// seal materializes every lazily-built projection of g (edge weights with
// the frameworks defaults, the transpose so in-weights exist too, and both
// directions' compressed adjacency forms for jobs selecting the compressed
// backend). After sealing, HasWeights and HasIn both hold and the
// compressed encodings are cached, making every subsequent core.New /
// RunOn over the graph read-only. Order matters: weights invalidate cached
// compressed forms, so compression runs last.
func seal(g *graph.Graph) {
	if !g.HasWeights() {
		g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
	}
	g.BuildIn()
	g.CompressOut()
	g.CompressIn()
}

// Add registers g under name, sealing it first. It fails on invalid or
// duplicate names; the duplicate check runs before sealing so a rejected
// Add neither burns the O(E) materialization nor mutates the caller's
// graph (two racing Adds of one name may both seal, but only one
// registers).
func (r *Registry) Add(name, source string, g *graph.Graph) (GraphInfo, error) {
	if !graphNameRE.MatchString(name) {
		return GraphInfo{}, fmt.Errorf("server: invalid graph name %q (want %s)", name, graphNameRE)
	}
	dup := func() error {
		if _, ok := r.graphs[name]; ok {
			return fmt.Errorf("server: graph %q already loaded (evict it first)", name)
		}
		return nil
	}
	r.mu.RLock()
	err := dup()
	r.mu.RUnlock()
	if err != nil {
		return GraphInfo{}, err
	}
	seal(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := dup(); err != nil {
		return GraphInfo{}, err
	}
	r.epoch++
	info := GraphInfo{
		Name:     name,
		Source:   source,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		CSRBytes: g.CSRBytes(),
		Epoch:    r.epoch,
	}
	r.graphs[name] = &residentGraph{info: info, g: g, params: frameworks.DefaultParams(g)}
	return info, nil
}

// LoadInput generates one of the paper's Table 3 inputs (gen.Input) and
// registers it under name.
func (r *Registry) LoadInput(name, input string, scale gen.Scale) (GraphInfo, error) {
	g, _, err := gen.Input(input, scale)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: loading input %q: %w", input, err)
	}
	return r.Add(name, fmt.Sprintf("gen:%s@%d", input, scale), g)
}

// LoadCSRFile reads a serialized CSR binary and registers it under name.
// Files ending in ".csrz" are decoded as compressed CSR (graph.ReadCSRZ);
// anything else as raw (graph.ReadCSR). Both readers carry the same
// hostile-header hardening, and a .csrz load keeps its compressed blocks
// cached so compressed-backend jobs reuse them without re-encoding.
func (r *Registry) LoadCSRFile(name, path string) (GraphInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: opening CSR file: %w", err)
	}
	defer f.Close()
	var g *graph.Graph
	if strings.EqualFold(filepath.Ext(path), ".csrz") {
		g, err = graph.ReadCSRZ(f)
	} else {
		g, err = graph.ReadCSR(f)
	}
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: reading CSR file %s: %w", path, err)
	}
	return r.Add(name, "file:"+path, g)
}

// Get returns the sealed graph registered under name. The returned graph
// stays valid for the caller even if the name is evicted afterwards (jobs
// in flight keep their reference; eviction only unregisters).
func (r *Registry) Get(name string) (*graph.Graph, GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, ok := r.graphs[name]
	if !ok {
		return nil, GraphInfo{}, false
	}
	return rg.g, rg.info, true
}

// Defaults returns the graph's precomputed kernel parameter defaults.
func (r *Registry) Defaults(name string) (frameworks.Params, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, ok := r.graphs[name]
	if !ok {
		return frameworks.Params{}, false
	}
	return rg.params, true
}

// ErrUpdateConflict is returned by ApplyUpdates when the named graph
// changed (another update batch, or an evict + reload) between the rebuild
// and the swap; the client should re-read the graph state and retry. The
// HTTP layer maps it to 409.
var ErrUpdateConflict = errors.New("server: graph changed concurrently, retry the update batch")

// ErrNotLoaded wraps "no such graph" failures so the HTTP layer can map
// them to 404.
var ErrNotLoaded = errors.New("not loaded")

// ApplyUpdates applies one batched edge-update log to the named graph as a
// new sealed epoch: the batch is validated and merged into a NEW graph
// (graph.ApplyUpdates — the resident one is immutable and in-flight jobs
// keep reading it), the result is sealed like any load, and the registry
// entry is swapped under the next epoch. The rebuild runs outside the
// registry lock; if the entry changed meanwhile the swap fails with
// ErrUpdateConflict rather than silently dropping the concurrent change.
// The applied Delta is retained (see UpdateState) for incremental jobs.
func (r *Registry) ApplyUpdates(name string, ups []graph.EdgeUpdate) (GraphInfo, error) {
	r.mu.RLock()
	rg, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
	}
	oldInfo := rg.info
	ng, delta, err := graph.ApplyUpdates(rg.g, ups)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("server: updating %q: %w", name, err)
	}
	seal(ng)
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.graphs[name]
	if !ok {
		// Evicted while we rebuilt: a retry is doomed, so report 404
		// rather than the retryable 409.
		return GraphInfo{}, fmt.Errorf("server: graph %q %w", name, ErrNotLoaded)
	}
	if cur.info.Epoch != oldInfo.Epoch {
		return GraphInfo{}, ErrUpdateConflict
	}
	r.epoch++
	info := GraphInfo{
		Name:     name,
		Source:   oldInfo.Source,
		Nodes:    ng.NumNodes(),
		Edges:    ng.NumEdges(),
		CSRBytes: ng.CSRBytes(),
		Epoch:    r.epoch,
		Updates:  oldInfo.Updates + 1,
	}
	r.graphs[name] = &residentGraph{
		info:      info,
		g:         ng,
		params:    frameworks.DefaultParams(ng),
		prevEpoch: oldInfo.Epoch,
		delta:     &delta,
	}
	return info, nil
}

// UpdateState returns the graph's current epoch, the epoch it held before
// its most recent update batch, and that batch's Delta — i.e. the Delta
// describes exactly the prevEpoch -> epoch transition. ok is false when
// the graph is absent or its current epoch came from a load rather than
// an update. Consumers resolving a graph separately must check that THEIR
// resolved epoch equals the returned current epoch: a batch can commit
// between the two lookups, and applying the newer Delta to the older
// graph would be wrong.
func (r *Registry) UpdateState(name string) (epoch, prevEpoch uint64, delta *graph.Delta, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg, present := r.graphs[name]
	if !present || rg.delta == nil {
		return 0, 0, nil, false
	}
	return rg.info.Epoch, rg.prevEpoch, rg.delta, true
}

// Evict unregisters name, reporting whether it was present.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.graphs[name]
	delete(r.graphs, name)
	return ok
}

// List returns the resident graphs sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos := make([]GraphInfo, 0, len(r.graphs))
	for _, rg := range r.graphs {
		infos = append(infos, rg.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ResidentBytes sums the CSR footprint of every resident graph.
func (r *Registry) ResidentBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, rg := range r.graphs {
		total += rg.info.CSRBytes
	}
	return total
}
