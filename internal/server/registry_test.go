package server

import (
	"os"
	"path/filepath"
	"testing"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
)

func TestRegistryAddSealsGraphs(t *testing.T) {
	reg := NewRegistry()
	g := gen.WebCrawl(400, 4, 30, 3)
	if g.HasIn() || g.HasWeights() {
		t.Fatal("generator unexpectedly pre-sealed the graph")
	}
	info, err := reg.Add("web", "direct", g)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasIn() || !g.HasWeights() {
		t.Error("Add must seal the graph (transpose + weights) before sharing it")
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Errorf("info = %+v does not match graph", info)
	}
	if info.CSRBytes != g.CSRBytes() {
		t.Errorf("CSRBytes = %d, want %d", info.CSRBytes, g.CSRBytes())
	}
	got, gotInfo, ok := reg.Get("web")
	if !ok || got != g || gotInfo.Epoch != info.Epoch {
		t.Error("Get did not return the registered graph")
	}
}

func TestRegistryRejectsInvalidAndDuplicateNames(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "a|b", "a b", "a/b", "café"} {
		if _, err := reg.Add(bad, "direct", gen.Path(4)); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	if _, err := reg.Add("ok-name_1.2", "direct", gen.Path(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("ok-name_1.2", "direct", gen.Path(4)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRegistryEpochAdvancesAcrossReload(t *testing.T) {
	reg := NewRegistry()
	first, err := reg.Add("g", "direct", gen.Path(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Evict("g") {
		t.Fatal("evict failed")
	}
	if reg.Evict("g") {
		t.Error("second evict reported success")
	}
	second, err := reg.Add("g", "direct", gen.Cycle(6))
	if err != nil {
		t.Fatal(err)
	}
	if second.Epoch <= first.Epoch {
		t.Errorf("reload epoch %d not past %d: stale cache keys could alias", second.Epoch, first.Epoch)
	}
}

func TestRegistryLoadInput(t *testing.T) {
	reg := NewRegistry()
	info, err := reg.LoadInput("kron", "kron30", gen.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes == 0 || info.Source != "gen:kron30@32" {
		t.Errorf("unexpected info %+v", info)
	}
	if _, err := reg.LoadInput("x", "not-an-input", gen.ScaleSmall); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestRegistryLoadCSRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := gen.ErdosRenyi(300, 1800, 11)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSR(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := NewRegistry()
	info, err := reg.LoadCSRFile("disk", path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Errorf("loaded %d/%d, want %d/%d", info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
	}

	if _, err := reg.LoadCSRFile("missing", filepath.Join(dir, "nope.csr")); err == nil {
		t.Error("missing file accepted")
	}
	badPath := filepath.Join(dir, "bad.csr")
	if err := os.WriteFile(badPath, []byte("not a csr"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadCSRFile("bad", badPath); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestRegistryListAndResidentBytes(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := reg.Add(name, "direct", gen.Path(8)); err != nil {
			t.Fatal(err)
		}
	}
	list := reg.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[1].Name != "mid" || list[2].Name != "zeta" {
		t.Errorf("list not sorted by name: %+v", list)
	}
	var want int64
	for _, info := range list {
		want += info.CSRBytes
	}
	if got := reg.ResidentBytes(); got != want {
		t.Errorf("ResidentBytes = %d, want %d", got, want)
	}
}
