package server

import (
	"container/heap"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmemgraph/internal/stats"
)

// JobState is the lifecycle of one submitted kernel execution.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobShed is the terminal state of an admitted job that never ran: its
	// deadline expired while it queued, or the scheduler closed. Shed jobs
	// release their waiters exactly like done/failed ones — a ?wait=1
	// caller gets a structured 503, never a hang.
	JobShed JobState = "shed"
)

// Shed reasons recorded on JobStatus.ShedReason.
const (
	ShedDeadline = "deadline"
	ShedClosed   = "closed"
)

// Built-in job class names (any set of classes can be configured; these
// are the defaults the serving config and the load generator use).
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// ErrQueueFull is the sentinel Submit wraps in a QueueFullError when a
// class queue is at capacity; the HTTP layer maps it to 429 so overload
// sheds load instead of building an unbounded backlog.
var ErrQueueFull = errors.New("server: job queue full")

// QueueFullError is the structured form of ErrQueueFull: which class
// rejected the job and how full it was. errors.Is(err, ErrQueueFull)
// matches it.
type QueueFullError struct {
	Class    string
	Queued   int
	QueueCap int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("server: %s queue full (%d/%d)", e.Class, e.Queued, e.QueueCap)
}

func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// ErrUnknownClass is returned by Submit for a class name the scheduler was
// not configured with.
var ErrUnknownClass = errors.New("server: unknown job class")

// errSchedulerClosed is returned by Submit after Close.
var errSchedulerClosed = errors.New("server: scheduler closed")

// ClassConfig describes one admission class: its own bounded queue and its
// share of the drain.
type ClassConfig struct {
	Name string `json:"name"`
	// Weight is the class's drain share: while several classes are
	// backlogged, each gets Weight dequeues out of every sum-of-weights.
	// The starvation bound follows directly: a backlogged class waits at
	// most (sum of the other classes' weights) dequeues before its next
	// one (0 = 1).
	Weight int `json:"weight"`
	// QueueCap bounds this class's pending queue; submissions past it get
	// a QueueFullError (0 = DefaultQueueCap).
	QueueCap int `json:"queue_cap"`
}

// DefaultClasses is the serving default: interactive traffic drains 4x
// ahead of batch, batch gets the deeper queue.
func DefaultClasses() []ClassConfig {
	return []ClassConfig{
		{Name: ClassInteractive, Weight: 4, QueueCap: 256},
		{Name: ClassBatch, Weight: 1, QueueCap: 512},
	}
}

// ParseClasses parses a -classes flag value: comma-separated
// name[:weight[:queuecap]] entries, e.g. "interactive:4:256,batch:1:512".
func ParseClasses(spec string) ([]ClassConfig, error) {
	var classes []ClassConfig
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("server: malformed class %q (want name[:weight[:queuecap]])", entry)
		}
		if seen[parts[0]] {
			return nil, fmt.Errorf("server: duplicate class %q", parts[0])
		}
		seen[parts[0]] = true
		cc := ClassConfig{Name: parts[0]}
		if len(parts) > 1 {
			w, err := strconv.Atoi(parts[1])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("server: class %q: weight %q must be a positive integer", parts[0], parts[1])
			}
			cc.Weight = w
		}
		if len(parts) > 2 {
			c, err := strconv.Atoi(parts[2])
			if err != nil || c < 1 {
				return nil, fmt.Errorf("server: class %q: queue cap %q must be a positive integer", parts[0], parts[2])
			}
			cc.QueueCap = c
		}
		classes = append(classes, cc)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("server: no classes in %q", spec)
	}
	return classes, nil
}

// Job is one kernel execution moving through the scheduler. Result bytes
// are the canonical analytics.MarshalResult serialization; identical
// requests therefore produce identical Result bytes whether they ran or
// hit the cache.
type Job struct {
	ID    string     `json:"id"`
	Class string     `json:"class"`
	Req   JobRequest `json:"request"`

	// seq orders jobs within a class (FIFO among equal deadlines);
	// deadline is absolute (zero = none). Both are written once at Submit.
	seq      uint64
	deadline time.Time

	mu         sync.Mutex
	state      JobState
	cacheHit   bool
	errMsg     string
	shedReason string
	result     []byte
	submitted  time.Time
	started    time.Time
	finished   time.Time

	// done is closed once the job reaches JobDone, JobFailed or JobShed;
	// result and errMsg are written before the close, so waiters that
	// receive from done read them race-free.
	done chan struct{}
}

// JobStatus is the JSON view of a job's current state.
type JobStatus struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	Class    string     `json:"class"`
	Request  JobRequest `json:"request"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Error    string     `json:"error,omitempty"`
	// ShedReason says why a shed job never ran: "deadline" or "closed".
	ShedReason string `json:"shed_reason,omitempty"`
	// QueueSeconds and RunSeconds are host wall times (not simulated
	// time; the simulated duration lives inside the result). A shed job
	// reports its whole queued life as QueueSeconds and no RunSeconds.
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Class: j.Class, Request: j.Req,
		CacheHit: j.cacheHit, Error: j.errMsg, ShedReason: j.shedReason}
	if !j.started.IsZero() {
		st.QueueSeconds = j.started.Sub(j.submitted).Seconds()
		if !j.finished.IsZero() {
			st.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	} else if !j.finished.IsZero() {
		// Shed before running: the whole lifetime was queue wait.
		st.QueueSeconds = j.finished.Sub(j.submitted).Seconds()
	}
	return st
}

// Done returns the channel closed on completion.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the canonical result bytes, whether the job hit the
// cache, and the failure/shed message otherwise. ok is false until the job
// reaches a terminal state (done, failed or shed).
func (j *Job) Result() (data []byte, cacheHit bool, errMsg string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone && j.state != JobFailed && j.state != JobShed {
		return nil, false, "", false
	}
	return j.result, j.cacheHit, j.errMsg, true
}

// complete records the outcome and releases waiters.
func (j *Job) complete(result []byte, cacheHit bool, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = result
		j.cacheHit = cacheHit
	}
	j.mu.Unlock()
	close(j.done)
}

// shed marks an admitted-but-never-run job terminal and releases waiters.
func (j *Job) shed(reason, msg string) {
	j.mu.Lock()
	j.finished = time.Now()
	j.state = JobShed
	j.shedReason = reason
	j.errMsg = msg
	j.mu.Unlock()
	close(j.done)
}

// jobHeap orders a class queue: earliest absolute deadline first (no
// deadline sorts last), submission order among equals. The head is always
// the most urgent admitted job, which is what makes early shedding of
// already-doomed work possible — doomed jobs surface at the head instead
// of rotting mid-queue.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	di, dj := h[i].deadline, h[j].deadline
	switch {
	case di.IsZero() != dj.IsZero():
		return !di.IsZero() // deadlined jobs ahead of undeadlined ones
	case !di.IsZero() && !di.Equal(dj):
		return di.Before(dj)
	default:
		return h[i].seq < h[j].seq
	}
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// classQueue is one admission class's runtime state. All fields are
// guarded by the scheduler mutex.
type classQueue struct {
	cfg    ClassConfig
	credit int
	jobs   jobHeap

	admitted     uint64
	completed    uint64
	failed       uint64
	rejected     uint64 // queue-full at Submit
	deadlineShed uint64 // doomed at dequeue
	closedShed   uint64 // queued at Close
	queueWait    stats.Histogram
	service      stats.Histogram
}

// ClassStats is one class's slice of SchedulerStats.
type ClassStats struct {
	Class        string `json:"class"`
	Weight       int    `json:"weight"`
	QueueCap     int    `json:"queue_cap"`
	Queued       int    `json:"queued"`
	Admitted     uint64 `json:"admitted"`
	Completed    uint64 `json:"completed"`
	Failed       uint64 `json:"failed,omitempty"`
	Rejected     uint64 `json:"rejected,omitempty"`
	DeadlineShed uint64 `json:"deadline_shed,omitempty"`
	ClosedShed   uint64 `json:"closed_shed,omitempty"`
	// QueueWait and Service are host wall-time histograms: how long this
	// class's jobs sat admitted before a worker picked them, and how long
	// their kernel executions took.
	QueueWait stats.Summary `json:"queue_wait"`
	Service   stats.Summary `json:"service"`
}

// SchedulerStats reports scheduler load and the concurrency bound audit
// trail: MaxRunning can never exceed Workers because only the fixed worker
// goroutines execute jobs, and the conformance suite asserts it. The
// top-level counters aggregate across classes; Classes carries the
// per-class admission/shed/latency detail.
type SchedulerStats struct {
	Workers    int          `json:"workers"`
	QueueCap   int          `json:"queue_cap"` // sum of class caps
	Queued     int          `json:"queued"`
	Running    int64        `json:"running"`
	MaxRunning int64        `json:"max_running"`
	Completed  uint64       `json:"completed"`
	Failed     uint64       `json:"failed"`
	Rejected   uint64       `json:"rejected"`
	Shed       uint64       `json:"shed"`
	Classes    []ClassStats `json:"classes"`
}

// execFunc runs one job to completion, returning the canonical result
// bytes and whether they came from the cache.
type execFunc func(j *Job) (result []byte, cacheHit bool, err error)

// Scheduler bounds kernel concurrency with a fixed worker pool draining
// per-class bounded priority queues. The concurrency bound is structural —
// jobs only ever run on the worker goroutines — so no admission race can
// exceed it. Draining is weighted round-robin over backlogged classes
// (credits equal to each class's weight, replenished when no backlogged
// class has any left), deadline-first within a class, with already-doomed
// jobs shed at dequeue instead of executed.
type Scheduler struct {
	exec    execFunc
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	classes []*classQueue // configured order, the WRR scan order
	byName  map[string]*classQueue
	pending int
	closed  bool
	nextID  uint64
	nextSeq uint64

	wg      sync.WaitGroup
	running atomic.Int64
	maxRun  atomic.Int64
}

// Defaults applied when the config leaves them 0.
const (
	DefaultWorkers  = 4
	DefaultQueueCap = 256
)

// NewScheduler starts a single-class FIFO scheduler — the pre-class shape:
// one bounded queue named "default", no weights, no deadlines unless
// requests carry them. Production serving uses NewClassScheduler.
func NewScheduler(workers, queueCap int, exec execFunc) *Scheduler {
	return NewClassScheduler(workers, []ClassConfig{{Name: "default", Weight: 1, QueueCap: queueCap}}, exec)
}

// NewClassScheduler starts workers goroutines draining the configured
// classes (nil picks DefaultClasses). Class names must be unique; zero
// weights and caps pick 1 and DefaultQueueCap.
func NewClassScheduler(workers int, classes []ClassConfig, exec execFunc) *Scheduler {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	s := &Scheduler{exec: exec, workers: workers, byName: make(map[string]*classQueue)}
	s.cond = sync.NewCond(&s.mu)
	for _, cc := range classes {
		if cc.Weight <= 0 {
			cc.Weight = 1
		}
		if cc.QueueCap <= 0 {
			cc.QueueCap = DefaultQueueCap
		}
		if cc.Name == "" || s.byName[cc.Name] != nil {
			panic(fmt.Sprintf("server: duplicate or empty class name %q", cc.Name))
		}
		cq := &classQueue{cfg: cc, credit: cc.Weight}
		s.classes = append(s.classes, cq)
		s.byName[cc.Name] = cq
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// HasClass reports whether name is a configured class ("" always resolves
// to the first class).
func (s *Scheduler) HasClass(name string) bool {
	return name == "" || s.byName[name] != nil
}

// ClassNames returns the configured class names in drain-scan order.
func (s *Scheduler) ClassNames() []string {
	names := make([]string, len(s.classes))
	for i, cq := range s.classes {
		names[i] = cq.cfg.Name
	}
	return names
}

// dequeueLocked picks the next job by weighted round-robin: the first
// backlogged class (in configured order) holding credit wins; when no
// backlogged class has credit left, every class's credit resets to its
// weight. While a set of classes stays backlogged this yields each class
// exactly its weight out of every sum-of-weights dequeues, which is the
// documented starvation bound. Returns nil when nothing is pending.
func (s *Scheduler) dequeueLocked() (*Job, *classQueue) {
	for {
		var pick *classQueue
		backlogged := false
		for _, cq := range s.classes {
			if cq.jobs.Len() == 0 {
				continue
			}
			backlogged = true
			if cq.credit > 0 {
				pick = cq
				break
			}
		}
		if pick == nil {
			if !backlogged {
				return nil, nil
			}
			for _, cq := range s.classes {
				cq.credit = cq.cfg.Weight
			}
			continue
		}
		job := heap.Pop(&pick.jobs).(*Job)
		pick.credit -= jobWidth(job)
		return job, pick
	}
}

// jobWidth is the drain credit one dequeue costs its class: a sharded job
// fans out over N simulated shard workers inside its slot, so the weighted
// round-robin charges it N credits — a class burning wide jobs yields
// proportionally more turns to its peers before the next credit reset,
// keeping the starvation bound in units of simulated capacity rather than
// job count.
func jobWidth(j *Job) int {
	if j.Req.Shards > 1 {
		return j.Req.Shards
	}
	return 1
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.pending == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		job, cq := s.dequeueLocked()
		s.pending--
		now := time.Now()
		wait := now.Sub(job.submitted)
		cq.queueWait.Observe(wait.Seconds())
		if !job.deadline.IsZero() && now.After(job.deadline) {
			// Already doomed: the deadline passed while it queued. Shed it
			// without running — executing it would burn a worker slot on a
			// result its submitter already gave up on.
			cq.deadlineShed++
			s.mu.Unlock()
			job.shed(ShedDeadline, fmt.Sprintf("deadline exceeded before execution (queued %.3fs)", wait.Seconds()))
			continue
		}
		s.mu.Unlock()

		n := s.running.Add(1)
		for {
			max := s.maxRun.Load()
			if n <= max || s.maxRun.CompareAndSwap(max, n) {
				break
			}
		}
		start := time.Now()
		job.mu.Lock()
		job.state = JobRunning
		job.started = start
		job.mu.Unlock()

		result, cacheHit, err := s.exec(job)
		job.complete(result, cacheHit, err)
		s.running.Add(-1)

		s.mu.Lock()
		cq.service.Observe(time.Since(start).Seconds())
		if err != nil {
			cq.failed++
		} else {
			cq.completed++
		}
		s.mu.Unlock()
	}
}

// Submit enqueues req into its class queue and returns the tracking job,
// or an error without enqueueing: QueueFullError past the class cap,
// ErrUnknownClass for an unconfigured class, errSchedulerClosed after
// Close. A positive DeadlineMS stamps an absolute deadline; the class
// queue drains deadline-first and sheds jobs whose deadline expires before
// a worker reaches them.
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("server: negative deadline %dms", req.DeadlineMS)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSchedulerClosed
	}
	cq := s.classes[0]
	if req.Class != "" {
		var ok bool
		if cq, ok = s.byName[req.Class]; !ok {
			return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownClass, req.Class, strings.Join(s.ClassNames(), ", "))
		}
	}
	if cq.jobs.Len() >= cq.cfg.QueueCap {
		cq.rejected++
		return nil, &QueueFullError{Class: cq.cfg.Name, Queued: cq.jobs.Len(), QueueCap: cq.cfg.QueueCap}
	}
	s.nextID++
	s.nextSeq++
	now := time.Now()
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Class:     cq.cfg.Name,
		Req:       req,
		seq:       s.nextSeq,
		state:     JobQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
	if req.DeadlineMS > 0 {
		job.deadline = now.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	heap.Push(&cq.jobs, job)
	cq.admitted++
	s.pending++
	s.cond.Signal()
	return job, nil
}

// Close stops accepting jobs, sheds everything still queued (each shed job
// lands in the terminal JobShed state, so ?wait=1 callers are released
// with a structured error instead of hanging), and waits for the running
// jobs to finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var shed []*Job
	for _, cq := range s.classes {
		for cq.jobs.Len() > 0 {
			job := heap.Pop(&cq.jobs).(*Job)
			cq.closedShed++
			cq.queueWait.Observe(time.Since(job.submitted).Seconds())
			shed = append(shed, job)
		}
	}
	s.pending = 0
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, job := range shed {
		job.shed(ShedClosed, "scheduler closed before execution")
	}
	s.wg.Wait()
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedulerStats{
		Workers:    s.workers,
		Running:    s.running.Load(),
		MaxRunning: s.maxRun.Load(),
	}
	for _, cq := range s.classes {
		cs := ClassStats{
			Class:        cq.cfg.Name,
			Weight:       cq.cfg.Weight,
			QueueCap:     cq.cfg.QueueCap,
			Queued:       cq.jobs.Len(),
			Admitted:     cq.admitted,
			Completed:    cq.completed,
			Failed:       cq.failed,
			Rejected:     cq.rejected,
			DeadlineShed: cq.deadlineShed,
			ClosedShed:   cq.closedShed,
			QueueWait:    cq.queueWait.Summarize(),
			Service:      cq.service.Summarize(),
		}
		st.QueueCap += cs.QueueCap
		st.Queued += cs.Queued
		st.Completed += cs.Completed
		st.Failed += cs.Failed
		st.Rejected += cs.Rejected
		st.Shed += cs.DeadlineShed + cs.ClosedShed
		st.Classes = append(st.Classes, cs)
	}
	return st
}
