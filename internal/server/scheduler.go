package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle of one submitted kernel execution.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ErrQueueFull is returned by Submit when the scheduler's queue is at
// capacity; the HTTP layer maps it to 429 so overload sheds load instead
// of building an unbounded backlog.
var ErrQueueFull = errors.New("server: job queue full")

// errSchedulerClosed is returned by Submit after Close.
var errSchedulerClosed = errors.New("server: scheduler closed")

// Job is one kernel execution moving through the scheduler. Result bytes
// are the canonical analytics.MarshalResult serialization; identical
// requests therefore produce identical Result bytes whether they ran or
// hit the cache.
type Job struct {
	ID  string     `json:"id"`
	Req JobRequest `json:"request"`

	mu        sync.Mutex
	state     JobState
	cacheHit  bool
	errMsg    string
	result    []byte
	submitted time.Time
	started   time.Time
	finished  time.Time

	// done is closed once the job reaches JobDone or JobFailed; result
	// and errMsg are written before the close, so waiters that receive
	// from done read them race-free.
	done chan struct{}
}

// JobStatus is the JSON view of a job's current state.
type JobStatus struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	Request  JobRequest `json:"request"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Error    string     `json:"error,omitempty"`
	// QueueSeconds and RunSeconds are host wall times (not simulated
	// time; the simulated duration lives inside the result).
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Request: j.Req, CacheHit: j.cacheHit, Error: j.errMsg}
	if !j.started.IsZero() {
		st.QueueSeconds = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// Done returns the channel closed on completion.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the canonical result bytes, whether the job hit the
// cache, and the failure message if the job failed. ok is false until the
// job completes.
func (j *Job) Result() (data []byte, cacheHit bool, errMsg string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone && j.state != JobFailed {
		return nil, false, "", false
	}
	return j.result, j.cacheHit, j.errMsg, true
}

// complete records the outcome and releases waiters.
func (j *Job) complete(result []byte, cacheHit bool, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = result
		j.cacheHit = cacheHit
	}
	j.mu.Unlock()
	close(j.done)
}

// SchedulerStats reports scheduler load and the concurrency bound audit
// trail: MaxRunning can never exceed Workers because only the fixed worker
// goroutines execute jobs, and the conformance suite asserts it.
type SchedulerStats struct {
	Workers    int    `json:"workers"`
	QueueCap   int    `json:"queue_cap"`
	Queued     int    `json:"queued"`
	Running    int64  `json:"running"`
	MaxRunning int64  `json:"max_running"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Rejected   uint64 `json:"rejected"`
}

// execFunc runs one job to completion, returning the canonical result
// bytes and whether they came from the cache.
type execFunc func(j *Job) (result []byte, cacheHit bool, err error)

// Scheduler bounds kernel concurrency with a fixed worker pool over a
// bounded queue. The bound is structural — jobs only ever run on the
// worker goroutines — so no admission race can exceed it.
type Scheduler struct {
	exec     execFunc
	queue    chan *Job
	workers  int
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	nextID   uint64
	running  atomic.Int64
	maxRun   atomic.Int64
	complete atomic.Uint64
	failed   atomic.Uint64
	rejected atomic.Uint64
}

// Defaults applied by NewScheduler when the config leaves them 0.
const (
	DefaultWorkers  = 4
	DefaultQueueCap = 256
)

// NewScheduler starts workers goroutines draining a queue of queueCap
// pending jobs (0 picks the defaults).
func NewScheduler(workers, queueCap int, exec execFunc) *Scheduler {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	s := &Scheduler{exec: exec, queue: make(chan *Job, queueCap), workers: workers}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		n := s.running.Add(1)
		for {
			max := s.maxRun.Load()
			if n <= max || s.maxRun.CompareAndSwap(max, n) {
				break
			}
		}
		job.mu.Lock()
		job.state = JobRunning
		job.started = time.Now()
		job.mu.Unlock()

		result, cacheHit, err := s.exec(job)
		job.complete(result, cacheHit, err)
		if err != nil {
			s.failed.Add(1)
		} else {
			s.complete.Add(1)
		}
		s.running.Add(-1)
	}
}

// Submit enqueues req and returns the tracking job, or ErrQueueFull /
// errSchedulerClosed without enqueueing.
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSchedulerClosed
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Req:       req,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- job:
		return job, nil
	default:
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Close stops accepting jobs and waits for queued work to drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	return SchedulerStats{
		Workers:    s.workers,
		QueueCap:   cap(s.queue),
		Queued:     len(s.queue),
		Running:    s.running.Load(),
		MaxRunning: s.maxRun.Load(),
		Completed:  s.complete.Load(),
		Failed:     s.failed.Load(),
		Rejected:   s.rejected.Load(),
	}
}
