package server

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSchedulerEnforcesConcurrencyBound drives the scheduler with a
// blocking exec and proves the bound from both sides: all worker slots
// fill (the pool does not under-schedule) and the number of jobs inside
// exec never exceeds the worker count (it cannot over-schedule).
func TestSchedulerEnforcesConcurrencyBound(t *testing.T) {
	const workers = 3
	var (
		mu      sync.Mutex
		inExec  int
		maxSeen int
	)
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	sched := NewScheduler(workers, 64, func(j *Job) ([]byte, bool, error) {
		mu.Lock()
		inExec++
		if inExec > maxSeen {
			maxSeen = inExec
		}
		over := inExec > workers
		mu.Unlock()
		if over {
			t.Errorf("%s: %d jobs in exec, bound is %d", j.ID, inExec, workers)
		}
		entered <- struct{}{}
		<-release
		mu.Lock()
		inExec--
		mu.Unlock()
		return []byte("{}"), false, nil
	})

	const jobs = 12
	submitted := make([]*Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := sched.Submit(JobRequest{App: "bfs"})
		if err != nil {
			t.Fatal(err)
		}
		submitted = append(submitted, j)
	}
	// All worker slots fill while the rest stay queued.
	for i := 0; i < workers; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d workers started", i, workers)
		}
	}
	if st := sched.Stats(); st.Running != workers {
		t.Errorf("running = %d, want %d", st.Running, workers)
	}
	close(release)
	for _, j := range submitted {
		<-j.Done()
	}
	sched.Close()

	if maxSeen != workers {
		t.Errorf("max concurrent = %d, want exactly %d", maxSeen, workers)
	}
	st := sched.Stats()
	if st.MaxRunning != workers {
		t.Errorf("stats.MaxRunning = %d, want %d", st.MaxRunning, workers)
	}
	if st.Completed != jobs || st.Failed != 0 {
		t.Errorf("completed/failed = %d/%d, want %d/0", st.Completed, st.Failed, jobs)
	}
}

func TestSchedulerQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	sched := NewScheduler(1, 1, func(j *Job) ([]byte, bool, error) {
		once.Do(func() { close(started) })
		<-release
		return nil, false, nil
	})
	defer func() {
		close(release)
		sched.Close()
	}()

	first, err := sched.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // first job occupies the only worker
	if _, err := sched.Submit(JobRequest{}); err != nil {
		t.Fatalf("queue slot should hold the second job: %v", err)
	}
	if _, err := sched.Submit(JobRequest{}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("third submit = %v, want ErrQueueFull", err)
	}
	if st := sched.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	if _, _, _, ok := first.Result(); ok {
		t.Error("running job reported a result")
	}
}

func TestSchedulerFailureAndClose(t *testing.T) {
	sched := NewScheduler(2, 8, func(j *Job) ([]byte, bool, error) {
		if j.Req.App == "boom" {
			return nil, false, errors.New("kernel exploded")
		}
		return []byte(`{"ok":true}`), true, nil
	})
	bad, err := sched.Submit(JobRequest{App: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := sched.Submit(JobRequest{App: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	<-bad.Done()
	<-good.Done()

	if _, _, errMsg, ok := bad.Result(); !ok || errMsg != "kernel exploded" {
		t.Errorf("failed job result = %q, %v", errMsg, ok)
	}
	if st := bad.Status(); st.State != JobFailed {
		t.Errorf("state = %s, want failed", st.State)
	}
	data, cacheHit, errMsg, ok := good.Result()
	if !ok || errMsg != "" || !cacheHit || string(data) != `{"ok":true}` {
		t.Errorf("good job result = %q hit=%v err=%q ok=%v", data, cacheHit, errMsg, ok)
	}

	sched.Close()
	sched.Close() // idempotent
	if _, err := sched.Submit(JobRequest{}); err == nil {
		t.Error("submit after close accepted")
	}
	st := sched.Stats()
	if st.Completed != 1 || st.Failed != 1 {
		t.Errorf("completed/failed = %d/%d, want 1/1", st.Completed, st.Failed)
	}
}
