package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Config configures a serving instance.
type Config struct {
	// Machine is the simulated platform every job runs on. Each job gets
	// a fresh memsim.Machine from this config, so concurrent jobs never
	// share simulator state and each result is a pure function of
	// (graph, request, machine config).
	Machine memsim.MachineConfig
	// Workers bounds concurrent kernel executions (0 = DefaultWorkers).
	Workers int
	// QueueCap bounds queued jobs per class; submissions past it get 429
	// (0 = the class defaults).
	QueueCap int
	// Classes configures the admission classes (per-class bounded queues,
	// drain weights, deadline shedding); nil picks DefaultClasses. When
	// QueueCap is also set it overrides every class's queue cap.
	Classes []ClassConfig
	// CacheEntries bounds the result cache (0 = DefaultCacheEntries).
	CacheEntries int
	// MaxJobs bounds retained job records (0 = DefaultMaxJobs); the
	// oldest completed jobs are forgotten past it.
	MaxJobs int
	// MaxShards bounds JobRequest.Shards (0 = DefaultMaxShards). Each
	// shard worker is a full simulated machine plus a replicated label
	// array, so the ceiling is a resident-memory guard, not a correctness
	// one.
	MaxShards int
	// SeedBytes bounds the incremental seed store (0 = DefaultSeedBytes).
	SeedBytes int64
	// DataDir, when set, makes graphs durable: each registered graph
	// persists a sealed .csrz snapshot plus a WAL of applied update
	// batches, and Recover replays them at boot. Empty = in-memory only.
	DataDir string
	// CompactDiv sets the overlay compaction threshold divisor
	// (0 = DefaultCompactDiv, i.e. compact once the delta exceeds |E|/20;
	// negative disables background compaction — POST
	// /v1/graphs/{name}/checkpoint still compacts on demand).
	CompactDiv int64
}

// DefaultMaxJobs bounds the job history when Config.MaxJobs is 0.
const DefaultMaxJobs = 4096

// DefaultMaxShards bounds JobRequest.Shards when Config.MaxShards is 0.
const DefaultMaxShards = 16

// JobRequest is the submission body of POST /v1/jobs.
type JobRequest struct {
	Graph string `json:"graph"`
	App   string `json:"app"`
	// Framework selects the profile by name; empty means Galois (the
	// paper's recommended configuration).
	Framework string `json:"framework,omitempty"`
	// Threads is the virtual thread count (0 = the machine's maximum).
	Threads int `json:"threads,omitempty"`
	// Backend selects the simulated CSR storage backend: "raw" (default)
	// or "compressed" (delta+varint byte blocks; identical results,
	// different traffic and timing). The result-cache key incorporates
	// it, so the two backends never alias each other's entries.
	Backend string `json:"backend,omitempty"`
	// Params overrides individual kernel parameters; unset fields take
	// the deterministic per-graph defaults (frameworks.DefaultParams).
	Params *ParamOverrides `json:"params,omitempty"`
	// Class selects the admission class ("" = the first configured class,
	// interactive by default). Each class has its own bounded queue and
	// drain weight; the class never affects the kernel execution or its
	// cache key, only scheduling.
	Class string `json:"class,omitempty"`
	// DeadlineMS is a relative deadline in milliseconds from submission
	// (0 = none). The class queue drains deadline-first, and a job whose
	// deadline expires while it queues is shed (terminal "shed" state,
	// 503 on the result endpoints) instead of executed.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Shards, when positive, runs the job as scatter/gather BSP supersteps
	// over that many in-process shard workers (internal/shard), each with
	// its own simulated machine and backend over one contiguous vertex
	// range. Outputs are bitwise identical to shards=1 (the sharded
	// conformance suite locks it); only the charging differs. 0 = the
	// ordinary single-runtime execution. Sharded jobs require a csr-form
	// epoch (checkpoint overlay graphs first), an app with a BSP kernel
	// (everything but tc), and are incompatible with Incremental. The
	// cache key carries the shard count, so differently-sharded runs of
	// one request never alias each other's timing metadata.
	Shards int `json:"shards,omitempty"`
	// NoCache bypasses the result cache (the run still executes
	// deterministically; used to measure cold-path behavior).
	NoCache bool `json:"no_cache,omitempty"`
	// Incremental opts into incremental recomputation (cc and pr only):
	// the job is seeded from the retained prior-epoch artifact when the
	// graph is exactly one update batch ahead of it, and falls back to a
	// full recompute (recording a fresh seed) otherwise. Outputs are
	// byte-identical to a full run either way; only the charging differs.
	Incremental bool `json:"incremental,omitempty"`
}

// ParamOverrides carries optional per-app parameter overrides; nil fields
// keep the defaults.
type ParamOverrides struct {
	Source *graph.Node `json:"source,omitempty"` // bc, bfs, sssp
	Delta  *uint32     `json:"delta,omitempty"`  // sssp bucket width
	K      *int64      `json:"k,omitempty"`      // kcore threshold
	Tol    *float64    `json:"tol,omitempty"`    // pr tolerance
	Rounds *int        `json:"rounds,omitempty"` // pr max rounds
}

// apply folds the overrides into params.
func (o *ParamOverrides) apply(params *frameworks.Params) {
	if o == nil {
		return
	}
	if o.Source != nil {
		params.Source = *o.Source
	}
	if o.Delta != nil {
		params.Delta = *o.Delta
	}
	if o.K != nil {
		params.K = *o.K
	}
	if o.Tol != nil {
		params.Tol = *o.Tol
	}
	if o.Rounds != nil {
		params.Rounds = *o.Rounds
	}
}

// Server wires the registry, scheduler and cache behind an http.Handler.
type Server struct {
	cfg   Config
	reg   *Registry
	cache *Cache
	seeds *seedStore
	sched *Scheduler

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string

	// flights coalesces concurrent cache misses on the same key: the
	// first job runs the kernel, duplicates wait on its completion and
	// reuse the bytes. Determinism makes this lossless — the waiters
	// receive exactly what their own execution would have produced.
	flightMu sync.Mutex
	flights  map[string]*flight
	executed atomic.Uint64
}

// flight is one in-progress kernel execution duplicates can wait on.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// New builds a serving instance over cfg.
func New(cfg Config) *Server {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistryAt(cfg.DataDir, cfg.CompactDiv),
		cache:   NewCache(cfg.CacheEntries),
		seeds:   newSeedStore(cfg.SeedBytes),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
	}
	classes := append([]ClassConfig(nil), cfg.Classes...)
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	if cfg.QueueCap > 0 {
		for i := range classes {
			classes[i].QueueCap = cfg.QueueCap
		}
	}
	s.sched = NewClassScheduler(cfg.Workers, classes, s.runJob)
	return s
}

// Registry exposes the graph registry (in-process loaders, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Recover replays the data directory's persisted graphs (snapshot + WAL)
// into the registry; a no-op without a configured DataDir.
func (s *Server) Recover() ([]GraphInfo, error) { return s.reg.Recover() }

// Close drains the scheduler and waits out background compactions.
func (s *Server) Close() {
	s.sched.Close()
	s.reg.Quiesce()
}

// defaultThreads resolves a request's thread count.
func (s *Server) defaultThreads(threads int) int {
	if threads > 0 {
		return threads
	}
	return s.cfg.Machine.MaxThreads()
}

// jobPlan is a validated request resolved against the registry: the
// profile, graph, parameters, thread count, and storage backend one
// execution is a function of.
type jobPlan struct {
	profile frameworks.Profile
	g       *graph.Graph
	// ov is non-nil when the resolved epoch is overlay-form: the job runs
	// over the overlay (base charged as usual plus the small delta
	// arrays), and the cache key records the form so a compaction — which
	// keeps the epoch but changes the charging — never aliases entries.
	ov      *graph.Overlay
	info    GraphInfo
	params  frameworks.Params
	threads int
	// shards is the validated BSP fan-out width (0 = unsharded).
	shards int
	// opts is the exact runtime configuration the job executes with
	// (profile options + requested backend); the cache key formats this
	// same value, so key and execution cannot drift apart.
	opts core.Options
}

// validate resolves and checks a request against the registry and the
// profile capability gates, returning everything runJob needs.
func (s *Server) validate(req JobRequest) (jobPlan, error) {
	var plan jobPlan
	fw := req.Framework
	if fw == "" {
		fw = "Galois"
	}
	p, ok := frameworks.ByName(fw)
	if !ok {
		return plan, fmt.Errorf("unknown framework %q", fw)
	}
	plan.profile = p
	if !s.sched.HasClass(req.Class) {
		return plan, fmt.Errorf("unknown class %q (have %s)", req.Class, strings.Join(s.sched.ClassNames(), ", "))
	}
	if req.DeadlineMS < 0 {
		return plan, fmt.Errorf("negative deadline %dms", req.DeadlineMS)
	}
	backend, err := core.ParseBackend(req.Backend)
	if err != nil {
		return plan, err
	}
	g, ov, info, ok := s.reg.View(req.Graph)
	if !ok {
		return plan, fmt.Errorf("graph %q not loaded", req.Graph)
	}
	known := false
	for _, app := range frameworks.Apps() {
		if app == req.App {
			known = true
		}
	}
	if !known {
		return plan, fmt.Errorf("unknown app %q (have %s)", req.App, strings.Join(frameworks.Apps(), ", "))
	}
	if req.Incremental && !frameworks.IncrementalApp(req.App) {
		return plan, fmt.Errorf("%s has no incremental variant (cc and pr only)", req.App)
	}
	if req.Shards < 0 {
		return plan, fmt.Errorf("negative shard count %d", req.Shards)
	}
	maxShards := s.cfg.MaxShards
	if maxShards <= 0 {
		maxShards = DefaultMaxShards
	}
	if req.Shards > maxShards {
		return plan, fmt.Errorf("shard count %d exceeds the configured limit %d", req.Shards, maxShards)
	}
	if req.Shards > 0 {
		if req.Incremental {
			return plan, fmt.Errorf("sharded jobs cannot run incrementally")
		}
		if !frameworks.ShardedApp(req.App) {
			return plan, fmt.Errorf("%s has no sharded BSP kernel", req.App)
		}
		if ov != nil {
			return plan, fmt.Errorf("graph %q is overlay-form; checkpoint it before sharded jobs", req.Graph)
		}
	}
	if !p.Supports(req.App) {
		return plan, fmt.Errorf("%s does not implement %s", p.Name, req.App)
	}
	if !p.CanLoad(g) {
		return plan, fmt.Errorf("%s cannot load %d nodes (signed 32-bit node IDs)", p.Name, g.NumNodes())
	}
	// Defaults are precomputed at registration (an O(V) scan otherwise
	// paid per request); a miss here means the graph raced an eviction.
	params, ok := s.reg.Defaults(req.Graph)
	if !ok {
		return plan, fmt.Errorf("graph %q not loaded", req.Graph)
	}
	req.Params.apply(&params)
	if int64(params.Source) >= int64(g.NumNodes()) {
		return plan, fmt.Errorf("source %d out of range (graph has %d nodes)", params.Source, g.NumNodes())
	}
	plan.g, plan.ov, plan.info, plan.params, plan.threads = g, ov, info, params, s.defaultThreads(req.Threads)
	plan.shards = req.Shards
	plan.opts = p.Options(req.App, plan.threads)
	plan.opts.Backend = backend
	return plan, nil
}

// Submit validates req and enqueues it.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if _, err := s.validate(req); err != nil {
		return nil, err
	}
	job, err := s.sched.Submit(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	for len(s.jobOrder) > s.cfg.MaxJobs {
		drop := s.jobOrder[0]
		if j, ok := s.jobs[drop]; ok {
			select {
			case <-j.Done():
				delete(s.jobs, drop)
				s.jobOrder = s.jobOrder[1:]
				continue
			default:
			}
		} else {
			s.jobOrder = s.jobOrder[1:]
			continue
		}
		break // oldest job still in flight; retain until it completes
	}
	s.mu.Unlock()
	return job, nil
}

// Job returns the tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one scheduled job: resolve the graph (it may have been
// evicted since submit), consult the cache, and otherwise run the kernel
// on a fresh simulated machine and fill the cache with the canonical
// bytes. Determinism makes the cache exact: the key covers every input of
// the execution, so the cached bytes are the bytes a re-run would produce.
// Concurrent misses on one key coalesce — the first runs, the rest wait
// and reuse its bytes (reported as cache hits: they did not execute, and
// determinism guarantees the bytes are exactly what they would have
// computed). A worker waiting on a flight cannot deadlock: the flight's
// owner runs on another worker and kernels always terminate.
func (s *Server) runJob(job *Job) ([]byte, bool, error) {
	req := job.Req
	plan, err := s.validate(req)
	if err != nil {
		return nil, false, err
	}
	p, params, threads := plan.profile, plan.params, plan.threads
	// plan.opts carries the storage backend, so the cache key (which
	// formats the options) separates raw and compressed executions;
	// incremental jobs get their own key namespace. The epoch's adjacency
	// form is part of the key too: a compaction swaps overlay -> csr
	// under the SAME epoch with byte-identical outputs but different
	// charging, so the forms must not alias each other's bytes.
	key := cacheKey(plan.info, req.App, p, threads, p.Engine(), plan.opts, params, s.cfg.Machine.Name, req.Incremental, plan.shards)
	var fl *flight
	if !req.NoCache {
		if data, ok := s.cache.Get(key); ok {
			return data, true, nil
		}
		s.flightMu.Lock()
		if waitFor, ok := s.flights[key]; ok {
			s.flightMu.Unlock()
			<-waitFor.done
			if waitFor.err != nil {
				return nil, false, waitFor.err
			}
			return waitFor.data, true, nil
		}
		fl = &flight{done: make(chan struct{})}
		s.flights[key] = fl
		s.flightMu.Unlock()
		defer func() {
			s.flightMu.Lock()
			delete(s.flights, key)
			s.flightMu.Unlock()
			close(fl.done)
		}()
	}
	s.executed.Add(1)
	m := memsim.NewMachine(s.cfg.Machine)
	var res *analytics.Result
	if req.Incremental {
		// Seeded execution: usable only when the registry's retained Delta
		// describes exactly the transition onto THIS job's resolved epoch
		// (a batch may commit between plan resolution and this lookup —
		// applying the newer delta to the older graph would be wrong) and
		// the retained seed was computed on the transition's source epoch.
		// Anything else (no update yet, a missed batch, an evict + reload,
		// a racing batch) runs the full path, which records a fresh seed
		// for the next epoch.
		skey := seedKey(plan.info, req.App)
		var seed *frameworks.Seed
		var delta *graph.Delta
		if epoch, prevEpoch, d, ok := s.reg.UpdateState(req.Graph); ok && epoch == plan.info.Epoch {
			if ent, ok := s.seeds.Get(skey); ok && ent.Epoch == prevEpoch {
				seed, delta = ent.Seed, d
			}
		}
		var newSeed *frameworks.Seed
		if plan.ov != nil {
			res, newSeed, err = p.RunIncrementalOverlayOnOpts(m, plan.ov, req.App, plan.opts, params, seed, delta)
		} else {
			res, newSeed, err = p.RunIncrementalOnOpts(m, plan.g, req.App, plan.opts, params, seed, delta)
		}
		if err == nil {
			s.seeds.Put(skey, seedEntry{Epoch: plan.info.Epoch, Seed: newSeed})
		}
	} else if plan.shards > 0 {
		// Sharded BSP fan-out: the registry hands back (building on first
		// use) the epoch's partitioned form for this shard count. The
		// epoch check closes the validate -> partition race: an update
		// batch landing in between would otherwise run new data under the
		// old epoch's cache key.
		var part *graph.Partition
		var pinfo GraphInfo
		part, pinfo, err = s.reg.PartitionView(req.Graph, plan.shards)
		if err == nil && pinfo.Epoch != plan.info.Epoch {
			err = fmt.Errorf("graph %q changed while the job was scheduled; resubmit", req.Graph)
		}
		if err == nil {
			res, err = frameworks.RunShardedOnOpts(s.cfg.Machine, part, req.App, plan.opts, params)
		}
	} else if plan.ov != nil {
		res, err = p.RunOverlayOnOpts(m, plan.ov, req.App, plan.opts, params)
	} else {
		res, err = p.RunOnOpts(m, plan.g, req.App, plan.opts, params)
	}
	if err != nil {
		if fl != nil {
			fl.err = err
		}
		return nil, false, err
	}
	data, err := analytics.MarshalResult(res)
	if err != nil {
		if fl != nil {
			fl.err = err
		}
		return nil, false, err
	}
	if fl != nil {
		s.cache.Put(key, data)
		fl.data = data
	}
	return data, false, nil
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Graphs struct {
		Count         int   `json:"count"`
		ResidentBytes int64 `json:"resident_bytes"`
	} `json:"graphs"`
	Cache     CacheStats     `json:"cache"`
	Seeds     SeedStats      `json:"seeds"`
	Scheduler SchedulerStats `json:"scheduler"`
	// KernelExecutions counts actual kernel runs; completed jobs beyond
	// it were served by the cache or coalesced onto an in-flight run.
	KernelExecutions uint64 `json:"kernel_executions"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	var st Stats
	st.Graphs.Count = len(s.reg.List())
	st.Graphs.ResidentBytes = s.reg.ResidentBytes()
	st.Cache = s.cache.Stats()
	st.Seeds = s.seeds.Stats()
	st.Scheduler = s.sched.Stats()
	st.KernelExecutions = s.executed.Load()
	return st
}

// --- HTTP layer ---

type errorBody struct {
	Error string `json:"error"`
}

// shedBody is the structured load-shedding error: every shed response
// (429 queue-full, 503 deadline/close shed) keeps the uniform "error"
// field and adds the class-level detail clients need to back off.
type shedBody struct {
	Error      string `json:"error"`
	Class      string `json:"class,omitempty"`
	Queued     int    `json:"queued,omitempty"`
	QueueCap   int    `json:"queue_cap,omitempty"`
	ShedReason string `json:"shed_reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// loadGraphRequest is the POST /v1/graphs body: exactly one of Input
// (Table 3 generator name) or Path (serialized CSR file) must be set.
type loadGraphRequest struct {
	Name  string `json:"name"`
	Input string `json:"input,omitempty"`
	Scale string `json:"scale,omitempty"` // "small" (default) or "full"
	Path  string `json:"path,omitempty"`
}

// Handler returns the HTTP API (README.md carries the full endpoint
// reference with request/response shapes):
//
//	GET    /healthz                    liveness
//	GET    /v1/graphs                  resident graphs
//	POST   /v1/graphs                  load a Table 3 input or CSR file
//	POST   /v1/graphs/{name}/updates   apply an edge-update batch (new epoch)
//	POST   /v1/graphs/{name}/checkpoint  merge the overlay into a sealed
//	                                   CSR snapshot and truncate the WAL
//	DELETE /v1/graphs/{name}           evict (and invalidate cached results)
//	POST   /v1/jobs                    submit a kernel job (?wait=1 blocks)
//	GET    /v1/jobs                    job statuses
//	GET    /v1/jobs/{id}               one job's status
//	GET    /v1/jobs/{id}/result        canonical Result bytes
//	GET    /v1/jobs/{id}/trace         per-round trace as a JSON array
//	GET    /v1/jobs/{id}/trace/stream  per-round trace as NDJSON
//	GET    /v1/stats                   cache/seed/scheduler/registry counters
//
// Every error response from every endpoint — including the mux's own 404s
// and 405s, which jsonErrors rewrites — is a structured JSON body of the
// form {"error": "..."}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "machine": s.cfg.Machine.Name})
	})
	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.List())
	})
	mux.HandleFunc("POST /v1/graphs", s.handleLoadGraph)
	mux.HandleFunc("POST /v1/graphs/{name}/updates", s.handleGraphUpdates)
	mux.HandleFunc("POST /v1/graphs/{name}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !s.reg.Evict(name) {
			writeError(w, http.StatusNotFound, "graph %q not loaded", name)
			return
		}
		dropped := s.cache.InvalidateGraph(name)
		s.seeds.InvalidateGraph(name)
		writeJSON(w, http.StatusOK, map[string]any{"evicted": name, "cache_entries_dropped": dropped})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		statuses := make([]JobStatus, 0, len(s.jobOrder))
		for _, id := range s.jobOrder {
			if j, ok := s.jobs[id]; ok {
				statuses = append(statuses, j.Status())
			}
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, statuses)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/trace/stream", s.handleJobTraceStream)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return jsonErrors(mux)
}

// updateGraphRequest is the POST /v1/graphs/{name}/updates body.
type updateGraphRequest struct {
	Updates []graph.EdgeUpdate `json:"updates"`
}

// handleGraphUpdates applies one batched edge-update log: the registry
// swaps in the rebuilt, sealed graph under a new epoch, and the old
// epoch's cached results for this graph (and only this graph) are dropped.
// Jobs racing the update are safe regardless of ordering: a job that
// resolved the old graph runs on the immutable old epoch under the old
// epoch's cache key, and any job validated after the swap sees the new
// epoch — epoch-qualified keys make serving a pre-update result for a
// post-update submission impossible (locked under -race by
// TestJobsRacingUpdatesNeverObserveStaleResults).
func (s *Server) handleGraphUpdates(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req updateGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "empty update batch")
		return
	}
	info, err := s.reg.ApplyUpdates(name, req.Updates)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrNotLoaded):
			code = http.StatusNotFound
		case errors.Is(err, ErrUpdateConflict):
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	dropped := s.cache.InvalidateGraph(name)
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":                 info,
		"applied":               len(req.Updates),
		"cache_entries_dropped": dropped,
	})
}

// handleCheckpoint merges the named graph's overlay epoch into a fresh
// sealed CSR, persists it as the new snapshot (when a data dir is
// configured) and truncates the subsumed WAL. The epoch is unchanged —
// this is a form change, not a data change — so no cache invalidation
// happens; post-checkpoint jobs simply key under the csr form. A batch
// racing the checkpoint wins: the caller gets 409 and can retry.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, err := s.reg.Checkpoint(name)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotLoaded):
			code = http.StatusNotFound
		case errors.Is(err, ErrUpdateConflict):
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"graph": info})
}

// jsonErrors wraps the mux so its built-in plain-text error responses
// (404 on unmatched paths, 405 on method mismatches — emitted via
// http.Error) are rewritten into the same {"error": ...} JSON body every
// handler in this package produces, keeping the error contract uniform
// across the whole surface. Handler-produced responses set their own
// Content-Type before WriteHeader and pass through untouched.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

type jsonErrorWriter struct {
	http.ResponseWriter
	rewrite bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	// http.Error stamps text/plain before WriteHeader; handlers that
	// speak JSON (or NDJSON) already stamped their own type.
	if code >= 400 && strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		w.rewrite = true
		w.Header().Set("Content-Type", "application/json")
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(p []byte) (int, error) {
	if !w.rewrite {
		return w.ResponseWriter.Write(p)
	}
	body, err := json.Marshal(errorBody{Error: strings.TrimRight(string(p), "\n")})
	if err != nil {
		return w.ResponseWriter.Write(p)
	}
	if _, err := w.ResponseWriter.Write(append(body, '\n')); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Flush preserves the streaming trace endpoint's flushes through the
// wrapper.
func (w *jsonErrorWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req loadGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if (req.Input == "") == (req.Path == "") {
		writeError(w, http.StatusBadRequest, "exactly one of input or path must be set")
		return
	}
	var info GraphInfo
	var err error
	if req.Input != "" {
		scale := gen.ScaleSmall
		switch req.Scale {
		case "", "small":
		case "full":
			scale = gen.ScaleFull
		default:
			writeError(w, http.StatusBadRequest, "unknown scale %q (want small or full)", req.Scale)
			return
		}
		name := req.Name
		if name == "" {
			name = req.Input
		}
		info, err = s.reg.LoadInput(name, req.Input, scale)
	} else {
		if req.Name == "" {
			writeError(w, http.StatusBadRequest, "name is required when loading from a file")
			return
		}
		info, err = s.reg.LoadCSRFile(req.Name, req.Path)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var full *QueueFullError
		if errors.As(err, &full) {
			// Structured overload body: which class shed the job and how
			// full its queue was, so clients can back off per class.
			writeJSON(w, http.StatusTooManyRequests, shedBody{
				Error:    err.Error(),
				Class:    full.Class,
				Queued:   full.Queued,
				QueueCap: full.QueueCap,
			})
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := false
	if v := r.URL.Query().Get("wait"); v != "" {
		// ?wait=1 blocks; explicit false values (0, false) do not.
		b, err := strconv.ParseBool(v)
		wait = err != nil || b
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "client went away while waiting for %s", job.ID)
		return
	}
	s.writeResult(w, job)
}

// writeResult emits a completed job's canonical result bytes verbatim
// (they are the cache value and the determinism contract; re-encoding
// would forfeit byte-identity).
func (s *Server) writeResult(w http.ResponseWriter, job *Job) {
	data, cacheHit, errMsg, ok := job.Result()
	if !ok {
		writeError(w, http.StatusConflict, "job %s not finished", job.ID)
		return
	}
	if st := job.Status(); st.State == JobShed {
		// The job was admitted but never ran: deadline expired in the
		// queue, or the server shut down. 503 tells the caller the system
		// shed it under load, as opposed to a 500 execution failure.
		writeJSON(w, http.StatusServiceUnavailable, shedBody{
			Error:      fmt.Sprintf("job %s shed: %s", job.ID, errMsg),
			Class:      st.Class,
			ShedReason: st.ShedReason,
		})
		return
	}
	if errMsg != "" {
		writeError(w, http.StatusInternalServerError, "job %s failed: %s", job.ID, errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-Id", job.ID)
	if cacheHit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.writeResult(w, j)
}

// jobTrace decodes a finished job's trace, mapping the job states to the
// HTTP codes shared by both trace endpoints. Only the trace field is
// decoded — a stored Result is dominated by its |V|-sized output arrays
// (dist, rank, ...), which the trace endpoints never serve.
func (s *Server) jobTrace(w http.ResponseWriter, r *http.Request, wait bool) ([]engine.RoundStat, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return nil, false
	}
	if wait {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return nil, false
		}
	}
	data, _, errMsg, done := j.Result()
	if !done {
		writeError(w, http.StatusConflict, "job %s not finished", j.ID)
		return nil, false
	}
	if errMsg != "" {
		writeError(w, http.StatusInternalServerError, "job %s failed: %s", j.ID, errMsg)
		return nil, false
	}
	var res struct {
		Trace []engine.RoundStat `json:"trace"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		writeError(w, http.StatusInternalServerError, "decoding stored result: %v", err)
		return nil, false
	}
	return res.Trace, true
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	trace, ok := s.jobTrace(w, r, false)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, trace)
}

// handleJobTraceStream streams the per-round trace as NDJSON, one
// engine.RoundStat per line, flushing between rounds so clients can render
// round-by-round progressions incrementally. It waits for the job to
// finish first (kernels run to completion inside one scheduler slot).
func (s *Server) handleJobTraceStream(w http.ResponseWriter, r *http.Request) {
	trace, ok := s.jobTrace(w, r, true)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for i := range trace {
		line, err := json.Marshal(&trace[i])
		if err != nil {
			return
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
