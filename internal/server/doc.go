// Package server is the concurrent analytics serving layer: a long-lived
// HTTP/JSON service (cmd/pmemserved) that keeps graphs resident in a
// registry, runs any registered kernel under any frameworks.Profile
// through a bounded job scheduler, and caches results exactly. It is the
// topmost layer of the system — everything below it (frameworks,
// analytics, engine, core, memsim) is reached only through
// frameworks.Profile entry points. See DESIGN.md "Serving layer" and
// "Streaming updates & incremental kernels".
//
// # Charging contract
//
// The serving layer itself charges nothing: every job runs on a FRESH
// memsim.Machine built from the server's machine config, so concurrent
// jobs share no simulator state and each result is a pure function of
// (graph epoch, request, machine config). Registry operations — loading,
// sealing, applying update batches — model graph construction, which the
// paper excludes from all reported numbers, and are likewise uncharged.
//
// # Determinism guarantees
//
// Kernel execution is byte-identically deterministic (see internal/engine
// and DESIGN.md "Concurrency model"), and the result cache exploits that:
// its key covers every input of an execution — graph name AND epoch, app,
// the profile's engine/runtime configuration, resolved parameters, the
// machine, and the incremental opt-in — so equal keys imply byte-identical
// results, and a cache hit provably returns the bytes a re-run would
// produce. Graphs are sealed (weights, transpose, compressed encodings
// materialized) before becoming visible, making every concurrent runtime
// over them read-only; mutation happens only through batched edge updates
// (Registry.ApplyUpdates), each of which swaps in a NEW sealed graph under
// a new epoch and invalidates exactly that graph's cache entries — jobs
// racing an update either run on the immutable old epoch under the old
// key or see the new epoch, never a stale mix. Incremental jobs
// (JobRequest.Incremental) are seeded from retained prior-epoch artifacts
// (seedStore) and compute outputs bitwise identical to a full recompute;
// their charging metadata reflects the incremental path, which is why
// they live in their own cache-key namespace.
package server
