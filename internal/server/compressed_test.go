package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// TestServingCompressedBackendByteIdentical is the compressed-backend
// serving conformance: concurrent jobs selecting the compressed CSR
// backend over shared sealed graphs must return byte-identical results to
// direct RunOnBackend executions, raw and compressed jobs for the same
// spec must occupy distinct cache entries (the key incorporates the
// backend), and the kernel *outputs* of the two backends must agree.
// Run under -race this also proves the cached compressed encodings are
// shared across concurrent jobs without mutation.
func TestServingCompressedBackendByteIdentical(t *testing.T) {
	srv := newTestServer(t, 4, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []JobRequest{
		{Graph: "web", App: "bfs", Framework: "Galois", Threads: 8},
		{Graph: "erdos", App: "pr", Framework: "GBBS", Threads: 8},
		{Graph: "kron", App: "sssp", Framework: "Galois", Threads: 8},
		{Graph: "web", App: "cc", Framework: "GAP", Threads: 8},
	}

	// direct runs on worker goroutines too, so it must not t.Fatal (FailNow
	// only exits the calling goroutine); it reports and returns nil instead.
	direct := func(req JobRequest, backend core.Backend) []byte {
		p, _ := frameworks.ByName(req.Framework)
		g, _, ok := srv.Registry().Get(req.Graph)
		if !ok {
			t.Errorf("graph %q not registered", req.Graph)
			return nil
		}
		params, _ := srv.Registry().Defaults(req.Graph)
		res, err := p.RunOnBackend(memsim.NewMachine(srv.cfg.Machine), g, req.App, req.Threads, params, backend)
		if err != nil {
			t.Errorf("direct %+v: %v", req, err)
			return nil
		}
		data, err := analytics.MarshalResult(res)
		if err != nil {
			t.Error(err)
			return nil
		}
		return data
	}

	var wg sync.WaitGroup
	for _, spec := range specs {
		for _, backend := range []string{"raw", "compressed"} {
			wg.Add(1)
			go func(req JobRequest, backend string) {
				defer wg.Done()
				req.Backend = backend
				b, err := core.ParseBackend(backend)
				if err != nil {
					t.Error(err)
					return
				}
				want := direct(req, b)
				if want == nil {
					return
				}
				resp, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s %+v: status %d: %s", backend, req, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, want) {
					t.Errorf("%s %+v: served bytes differ from direct execution", backend, req)
				}
			}(spec, backend)
		}
	}
	wg.Wait()

	st := srv.Stats()
	// Raw and compressed must never alias: one execution and one cache
	// entry per (spec, backend) pair.
	if want := uint64(2 * len(specs)); st.KernelExecutions != want {
		t.Errorf("kernel executions = %d, want %d (backends must not share cache entries)", st.KernelExecutions, want)
	}
	if want := 2 * len(specs); st.Cache.Entries != want {
		t.Errorf("cache entries = %d, want %d", st.Cache.Entries, want)
	}

	// Same spec, both backends: identical kernel outputs (the charging
	// differs, the answers must not).
	for _, spec := range specs {
		rawBytes, zBytes := direct(spec, core.BackendRaw), direct(spec, core.BackendCompressed)
		if rawBytes == nil || zBytes == nil {
			t.Fatalf("%+v: direct execution failed", spec)
		}
		rawRes, err := analytics.UnmarshalResult(rawBytes)
		if err != nil {
			t.Fatal(err)
		}
		zRes, err := analytics.UnmarshalResult(zBytes)
		if err != nil {
			t.Fatal(err)
		}
		if rawRes.Rounds != zRes.Rounds ||
			!bytes.Equal(uint32Bytes(rawRes.Dist), uint32Bytes(zRes.Dist)) ||
			!bytes.Equal(uint32Bytes(rawRes.Labels), uint32Bytes(zRes.Labels)) ||
			len(rawRes.Rank) != len(zRes.Rank) {
			t.Errorf("%+v: kernel outputs differ between backends", spec)
		}
		for i := range rawRes.Rank {
			if rawRes.Rank[i] != zRes.Rank[i] {
				t.Errorf("%+v: rank[%d] differs between backends", spec, i)
				break
			}
		}
	}
}

func uint32Bytes(xs []uint32) []byte {
	out := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

// TestServingRejectsUnknownBackend: validation must 400 an unknown
// backend name before the job is queued.
func TestServingRejectsUnknownBackend(t *testing.T) {
	srv := newTestServer(t, 1, 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Graph: "web", App: "bfs", Backend: "zstd"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for unknown backend: %s", resp.StatusCode, body)
	}
}

// TestRegistryLoadCSRZFile: the registry must load .csrz files through
// the hardened compressed reader, seal them like any other graph, and
// serve both backends from the result.
func TestRegistryLoadCSRZFile(t *testing.T) {
	g := gen.WebCrawl(800, 5, 40, 31)
	dir := t.TempDir()
	path := filepath.Join(dir, "web.csrz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSRZ(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := NewRegistry()
	info, err := reg.LoadCSRFile("webz", path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("loaded shape %d/%d, want %d/%d", info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
	}
	loaded, _, ok := reg.Get("webz")
	if !ok {
		t.Fatal("graph not resident after load")
	}
	if !loaded.HasWeights() || !loaded.HasIn() {
		t.Fatal("csrz-loaded graph not sealed (weights/transpose missing)")
	}
	// Sealing must have re-encoded with weights so compressed-backend
	// sssp sees them in the blocks.
	if !loaded.CompressOut().Weighted() {
		t.Fatal("sealed graph's compressed form lacks interleaved weights")
	}

	// A corrupt .csrz must be rejected by the same load path.
	bad := filepath.Join(dir, "bad.csrz")
	if err := os.WriteFile(bad, []byte("PMGRCSZ1 but not really"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadCSRFile("badz", bad); err == nil {
		t.Fatal("corrupt csrz accepted")
	}
}
