package memsim

// CostParams holds every latency, bandwidth, and kernel-overhead constant the
// simulator uses. The Optane numbers come directly from Tables 1 and 2 of the
// paper; the DDR4 numbers (which the paper does not tabulate) use standard
// Cascade Lake figures; the Optane media-level constants follow Izraelevitz
// et al. (arXiv:1903.05714), which the paper cites for device behaviour.
//
// All latencies are in nanoseconds, all bandwidths in bytes per nanosecond
// (which is numerically identical to GB/s).
type CostParams struct {
	// DRAM load-to-use latency when DRAM is main memory (or the
	// near-memory hit latency contribution in memory mode).
	DRAMLatencyLocal  float64
	DRAMLatencyRemote float64

	// Memory-mode latency (near-memory hit): Table 2, "Memory" row.
	NearMemHitLocal  float64
	NearMemHitRemote float64

	// Memory-mode near-memory miss: the access must go to the Optane
	// media behind the DRAM cache and fill a 4 KB near-memory line.
	NearMemMissLocal  float64
	NearMemMissRemote float64

	// App-direct latency: Table 2, "App-direct" row.
	AppDirectLatencyLocal  float64
	AppDirectLatencyRemote float64

	// Bandwidths, Table 1 (memory mode). Bytes/ns == GB/s.
	MMSeqReadLocal    float64
	MMSeqReadRemote   float64
	MMRandReadLocal   float64
	MMRandReadRemote  float64
	MMSeqWriteLocal   float64
	MMSeqWriteRemote  float64
	MMRandWriteLocal  float64
	MMRandWriteRemote float64

	// Bandwidths, Table 1 (app-direct mode).
	ADSeqReadLocal    float64
	ADSeqReadRemote   float64
	ADRandReadLocal   float64
	ADRandReadRemote  float64
	ADSeqWriteLocal   float64
	ADSeqWriteRemote  float64
	ADRandWriteLocal  float64
	ADRandWriteRemote float64

	// DRAM bandwidths when DRAM is main memory (6-channel DDR4-2666 per
	// socket on Cascade Lake).
	DRAMSeqRead   float64
	DRAMSeqWrite  float64
	DRAMRandRead  float64
	DRAMRandWrite float64
	// Remote DRAM bandwidth is capped by the UPI links.
	DRAMRemoteCap float64

	// Optane media behaviour behind the near-memory cache. Spill
	// bandwidth is the sustained media write bandwidth that limits
	// streaming writes once the footprint exceeds near-memory.
	MediaReadLatency  float64
	MediaWriteLatency float64
	MediaSpillWriteBW float64
	MediaSpillReadBW  float64

	// On-chip cache model: probability-weighted short-circuit for arrays
	// that fit in the last-level cache.
	L3HitLatency float64

	// Page-walk cost on a TLB miss. Walks read page-table entries from
	// memory; in memory mode those reads themselves pay near-memory
	// costs, which is why the paper observes TLB misses hurting more on
	// Optane (§4.3).
	PageWalkDRAM   float64
	PageWalkOptane float64

	// Kernel overheads (§4.2). MinorFault is charged on first touch of a
	// page; MigrationBookkeeping per migrated page (access sampling,
	// unmapping, copying bookkeeping); ShootdownPerThread is the IPI +
	// invalidation cost charged to every running thread per TLB
	// shootdown batch; MigrationCopyPerByte the page copy itself.
	MinorFaultDRAM          float64
	MinorFaultOptane        float64
	MigrationBookkeepDRAM   float64
	MigrationBookkeepOptane float64
	ShootdownPerThread      float64
	MigrationCopyPerByte    float64

	// Fixed per-operator CPU cost charged by kernels (instruction
	// execution that overlaps no memory access), and the per-parallel-
	// region fork/join overhead.
	OpCost       float64
	ForkJoinCost float64

	// Compressed-CSR decode costs (the byte-compressed storage backend,
	// core.BackendCompressed): DecodePerEdge is the varint+delta decode
	// of one edge, DecodePerVertex the per-block cursor setup (degree
	// varint, offset pair arithmetic). These make the backend's
	// bandwidth-for-compute trade explicit: compression saves streamed
	// slow-tier bytes but every decoded edge pays CPU here.
	DecodePerEdge   float64
	DecodePerVertex float64
}

// DefaultCost returns the calibrated cost table. Values marked (T1)/(T2) are
// copied from the paper's Table 1/Table 2.
func DefaultCost() CostParams {
	return CostParams{
		DRAMLatencyLocal:  81,
		DRAMLatencyRemote: 138,

		NearMemHitLocal:  95,  // (T2)
		NearMemHitRemote: 150, // (T2)

		NearMemMissLocal:  400, // hit check + media read + line fill
		NearMemMissRemote: 500,

		AppDirectLatencyLocal:  164, // (T2)
		AppDirectLatencyRemote: 232, // (T2)

		MMSeqReadLocal:    106,  // (T1)
		MMSeqReadRemote:   100,  // (T1)
		MMRandReadLocal:   90,   // (T1)
		MMRandReadRemote:  34,   // (T1)
		MMSeqWriteLocal:   54,   // (T1)
		MMSeqWriteRemote:  29.5, // (T1)
		MMRandWriteLocal:  50,   // (T1)
		MMRandWriteRemote: 29.5, // (T1)

		ADSeqReadLocal:    31,   // (T1)
		ADSeqReadRemote:   21,   // (T1)
		ADRandReadLocal:   8.2,  // (T1)
		ADRandReadRemote:  5.5,  // (T1)
		ADSeqWriteLocal:   10.5, // (T1)
		ADSeqWriteRemote:  7.5,  // (T1)
		ADRandWriteLocal:  3.6,  // (T1)
		ADRandWriteRemote: 2.3,  // (T1)

		DRAMSeqRead:   107,
		DRAMSeqWrite:  80,
		DRAMRandRead:  95,
		DRAMRandWrite: 70,
		DRAMRemoteCap: 60,

		MediaReadLatency:  305,
		MediaWriteLatency: 94,
		MediaSpillWriteBW: 7.5,
		MediaSpillReadBW:  30,

		L3HitLatency: 20,

		PageWalkDRAM:   45,
		PageWalkOptane: 140,

		MinorFaultDRAM:          900,
		MinorFaultOptane:        1800,
		MigrationBookkeepDRAM:   2500,
		MigrationBookkeepOptane: 6000,
		ShootdownPerThread:      900,
		MigrationCopyPerByte:    0.02,

		OpCost:       2.2,
		ForkJoinCost: 12000,

		// ~4-6 decode instructions per short varint on a ~3 GHz core,
		// in line with the small decode overheads Ligra+/GBBS report.
		DecodePerEdge:   1.4,
		DecodePerVertex: 3.5,
	}
}
