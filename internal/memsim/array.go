package memsim

import (
	"fmt"
	"sync/atomic"
)

// Policy selects the NUMA allocation policy of an Array (§4.1, Figure 3).
type Policy int

const (
	// Local places all pages on a preferred socket, spilling to the next
	// socket only when the preferred socket's capacity is exhausted
	// (numa_alloc_onnode / default first-touch from one thread).
	Local Policy = iota
	// Interleaved round-robins pages across sockets (numactl
	// --interleave or numa_alloc_interleaved).
	Interleaved
	// Blocked divides the allocation into contiguous per-thread blocks
	// and places each block on the first-touching thread's socket (the
	// Galois first-touch blocked policy; blocks are per *thread*, not
	// per socket, which is why runs with <= 24 threads place everything
	// on socket 0).
	Blocked
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Local:
		return "local"
	case Interleaved:
		return "interleaved"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AllocOpts refines an allocation.
type AllocOpts struct {
	// Policy is the NUMA placement policy.
	Policy Policy
	// PreferredSocket is the target socket for Local placement.
	PreferredSocket int
	// BlockThreads is the thread count used to compute Blocked placement
	// boundaries; zero means the machine's full thread count.
	BlockThreads int
	// PageSize overrides the machine's default page size (0 = default).
	// The Galois engine passes PageHuge explicitly; framework emulations
	// pass PageSmall with THP set.
	PageSize int64
	// THP marks the allocation as relying on Transparent Huge Pages:
	// most of it is backed by 2 MB pages, but a fraction of translations
	// still go through 4 KB pages (defragmentation gaps), which is why
	// the paper finds explicit huge pages faster than THP (§6.1).
	THP bool
	// AppDirect places the allocation on the Optane media when the
	// machine is in app-direct mode (external storage for the
	// out-of-core experiments).
	AppDirect bool
}

// Array is a simulated allocation. Kernels operate on native Go slices for
// the actual data and mirror their access stream onto the Array, which
// charges simulated time and counters to the accessing thread.
type Array struct {
	m    *Machine
	name string

	elemSize int64
	length   int64
	bytes    int64

	pageSize int64
	numPages int64
	baseAddr uint64 // global virtual base address

	opts AllocOpts

	// segments describe Local placement spills: sorted by startPage.
	segments []placeSegment

	// touched tracks first-touch minor faults, one bit per page.
	touched []atomic.Uint64

	// l3Prob is the probability an access short-circuits in the on-chip
	// cache hierarchy, derived from the array's size relative to L3.
	l3Prob float64

	// readBytes/writeBytes accumulate the simulated traffic charged
	// against this allocation. Atomic adds commute, so the totals are
	// deterministic even though region threads race to update them.
	readBytes, writeBytes atomic.Uint64

	freed bool
}

// Traffic returns the simulated bytes read from and written to this
// allocation so far (valid after Free too; counters survive release).
func (a *Array) Traffic() (read, written uint64) {
	return a.readBytes.Load(), a.writeBytes.Load()
}

// addTraffic records charged bytes against the per-array totals.
func (a *Array) addTraffic(bytes int64, isWrite bool) {
	if isWrite {
		a.writeBytes.Add(uint64(bytes))
	} else {
		a.readBytes.Add(uint64(bytes))
	}
}

type placeSegment struct {
	startPage int64
	socket    int
}

// Name returns the allocation's diagnostic name.
func (a *Array) Name() string { return a.name }

// Len returns the number of elements.
func (a *Array) Len() int64 { return a.length }

// Bytes returns the allocation size in bytes.
func (a *Array) Bytes() int64 { return a.bytes }

// PageSize returns the page size backing the allocation.
func (a *Array) PageSize() int64 { return a.pageSize }

// pageOf returns the page index containing element i.
func (a *Array) pageOf(i int64) int64 {
	return i * a.elemSize / a.pageSize
}

// socketOf returns the socket that page p resides on.
func (a *Array) socketOf(p int64) int {
	switch a.opts.Policy {
	case Interleaved:
		return int(p % int64(a.m.cfg.Sockets))
	case Blocked:
		threads := a.opts.BlockThreads
		if threads <= 0 {
			threads = a.m.cfg.MaxThreads()
		}
		if a.numPages == 0 {
			return 0
		}
		owner := int(p * int64(threads) / a.numPages)
		if owner >= threads {
			owner = threads - 1
		}
		return threadSocket(&a.m.cfg, owner)
	default: // Local with capacity spill
		for i := len(a.segments) - 1; i >= 0; i-- {
			if p >= a.segments[i].startPage {
				return a.segments[i].socket
			}
		}
		return a.opts.PreferredSocket
	}
}

// firstTouch reports whether thread t is the first to touch page p, judged
// against the global touched bitmap frozen at region start plus t's own
// first-touch overlay. The global bitmap is never written mid-region; the
// machine merges every thread's overlay at the region barrier (two-phase
// first touch). Concurrent first touches of one page by distinct threads
// each charge a fault — deterministically, because the decision depends
// only on the thread's own access sequence.
func (a *Array) firstTouch(t *Thread, p int64) bool {
	w := p >> 6
	mask := uint64(1) << (uint(p) & 63)
	if a.touched[w].Load()&mask != 0 {
		return false
	}
	if t.touches == nil {
		t.touches = make(map[*Array][]uint64)
	}
	ov := t.touches[a]
	if ov == nil {
		ov = make([]uint64, len(a.touched))
		t.touches[a] = ov
	}
	if ov[w]&mask != 0 {
		return false
	}
	ov[w] |= mask
	return true
}

// effectivePageSize returns the page size used for this particular
// translation. THP allocations resolve a fraction of translations through
// 4 KB pages.
func (a *Array) effectivePageSize(t *Thread) int64 {
	if a.opts.THP && t.chance(a.m.thpSmallFraction) {
		return PageSmall
	}
	return a.pageSize
}

// Read charges a random read of element i.
func (a *Array) Read(t *Thread, i int64) {
	a.m.access(t, a, i, 1, false, false)
}

// Write charges a random write of element i.
func (a *Array) Write(t *Thread, i int64) {
	a.m.access(t, a, i, 1, true, false)
}

// ReadN charges a read of n consecutive elements starting at i, costed as a
// single random access plus line-sized sequential spill (a short gather,
// e.g. one vertex's edge offsets).
func (a *Array) ReadN(t *Thread, i, n int64) {
	if n <= 0 {
		return
	}
	a.m.access(t, a, i, n, false, n*a.elemSize > 256)
}

// ReadRange charges a sequential scan of elements [i, j).
func (a *Array) ReadRange(t *Thread, i, j int64) {
	if j <= i {
		return
	}
	a.m.access(t, a, i, j-i, false, true)
}

// WriteRange charges a sequential write of elements [i, j).
func (a *Array) WriteRange(t *Thread, i, j int64) {
	if j <= i {
		return
	}
	a.m.access(t, a, i, j-i, true, true)
}

// fracOnSocket returns the fraction of the allocation's bytes placed on
// socket s, used by the bandwidth-sharing model.
func (a *Array) fracOnSocket(s int) float64 {
	sockets := a.m.cfg.Sockets
	switch a.opts.Policy {
	case Interleaved:
		return 1 / float64(sockets)
	case Blocked:
		threads := a.opts.BlockThreads
		if threads <= 0 {
			threads = a.m.cfg.MaxThreads()
		}
		on := 0
		for t := 0; t < threads; t++ {
			if threadSocket(&a.m.cfg, t) == s {
				on++
			}
		}
		return float64(on) / float64(threads)
	default:
		var span int64
		for i, seg := range a.segments {
			if seg.socket != s {
				continue
			}
			endPage := a.numPages
			if i+1 < len(a.segments) {
				endPage = a.segments[i+1].startPage
			}
			span += (endPage - seg.startPage) * a.pageSize
		}
		if span > a.bytes {
			span = a.bytes
		}
		if a.bytes == 0 {
			return 1
		}
		return float64(span) / float64(a.bytes)
	}
}

// RandomBatch charges n independent random cache-line accesses, costed
// against the device's random-access bandwidth rather than dependent-load
// latency (the access pattern of a bandwidth microbenchmark with many
// outstanding misses per core).
func (a *Array) RandomBatch(t *Thread, n int64, isWrite bool) {
	a.m.randomBatch(t, a, n, isWrite)
}

// Warm marks every page of the allocation as already touched and installs
// nothing in any TLB. The harness warms graph topology arrays after loading
// because the paper excludes graph loading and construction time from all
// reported numbers.
func (a *Array) Warm() {
	for i := range a.touched {
		a.touched[i].Store(^uint64(0))
	}
}

// RandomN charges n independent latency-bound random accesses in
// expectation: instead of sampling each access, the expected TLB, near-
// memory, NUMA and migration costs are charged in one call. Kernels use it
// for per-vertex neighbor-label gathers, where issuing one simulator call
// per edge would dominate host time.
func (a *Array) RandomN(t *Thread, n int64, isWrite bool) {
	a.m.randomN(t, a, n, isWrite)
}
