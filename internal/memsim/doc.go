// Package memsim simulates the memory hierarchy of large-memory NUMA
// machines, in particular machines equipped with Intel Optane DC Persistent
// Memory (PMM) in either memory mode (DRAM acts as a direct-mapped
// "near-memory" cache in front of the Optane media) or app-direct mode
// (Optane is byte-addressable storage, DRAM is main memory).
//
// The simulator is deterministic and runs in virtual time: every virtual
// thread carries its own clock, and the elapsed time of a parallel region is
// the maximum over its threads. Graph kernels execute natively in Go for
// correctness while charging their memory accesses to the simulator through
// Array handles; the simulator translates the access stream into time using
// a cost model calibrated against the latency and bandwidth tables published
// in Gill et al., "Single Machine Graph Analytics on Massive Datasets Using
// Intel Optane DC Persistent Memory" (VLDB 2020).
//
// Modelled effects (paper section in parentheses):
//
//   - NUMA allocation policies: local, interleaved, blocked first-touch (§4.1)
//   - near-memory (DRAM cache) hit/miss behaviour including conflict misses
//     when a socket's footprint exceeds its DRAM (§4.1)
//   - NUMA page migration: bookkeeping kernel time, TLB shootdowns, and the
//     page-size dependence of migration counts (§4.2)
//   - page size selection: per-thread TLBs with separate 4 KB / 2 MB / 1 GB
//     entry budgets, page-walk cost, TLB reach (§4.3)
//   - bandwidth asymmetries between modes, patterns, and local/remote
//     accesses (Tables 1 and 2)
//
// The near-memory cache is modelled statistically (per-socket residency
// ratios give per-access hit probabilities, sampled with per-thread
// deterministic RNGs) while TLBs are simulated exactly per thread. See
// DESIGN.md §5.1 for the rationale.
package memsim
