package memsim

import "testing"

// TestFigure4aShape reproduces the qualitative behaviour of Figure 4a: with
// NUMA-local allocation and 96 threads, doubling the allocation from 80 to
// 160 (scaled) GB roughly doubles the time on both machines; going from 160
// to 320 roughly doubles again on DRAM (spill doubles bandwidth) but blows
// up on Optane (near-memory conflict misses).
func TestFigure4aShape(t *testing.T) {
	write := func(cfg MachineConfig, gb float64) float64 {
		m := NewMachine(cfg)
		return m.WriteMicro(ScaledBytes(gb), Local, 96).ElapsedSec
	}

	d80, d160, d320 := write(DRAMMachine(), 80), write(DRAMMachine(), 160), write(DRAMMachine(), 320)
	o80, o160, o320 := write(OptaneMachine(), 80), write(OptaneMachine(), 160), write(OptaneMachine(), 320)

	ratio := func(a, b float64) float64 { return b / a }

	// 80 -> 160: ~2x more work, ~2x more time everywhere.
	if r := ratio(d80, d160); r < 1.6 || r > 2.5 {
		t.Errorf("DRAM 80->160 ratio = %.2f, want ~2", r)
	}
	if r := ratio(o80, o160); r < 1.6 || r > 2.5 {
		t.Errorf("Optane 80->160 ratio = %.2f, want ~2", r)
	}
	// 160 -> 320 on DRAM: spill to socket 1 doubles bandwidth, so time
	// grows far less than the Optane case.
	dRatio := ratio(d160, d320)
	oRatio := ratio(o160, o320)
	if oRatio < 3.5 {
		t.Errorf("Optane 160->320 ratio = %.2f, want >= 3.5 (paper: 5.6)", oRatio)
	}
	if dRatio > oRatio/1.5 {
		t.Errorf("DRAM 160->320 ratio %.2f should be far below Optane's %.2f", dRatio, oRatio)
	}
}

// TestFigure4bShape: with a 320 (scaled) GB interleaved vs blocked
// allocation, blocked with 24 threads degrades badly on Optane (all pages on
// one socket, conflict misses) while interleaved stays moderate; at 48
// threads blocked beats interleaved (same residency, fewer remote accesses).
func TestFigure4bShape(t *testing.T) {
	run := func(cfg MachineConfig, policy Policy, threads int) float64 {
		m := NewMachine(cfg)
		return m.WriteMicro(ScaledBytes(320), policy, threads).ElapsedSec
	}

	oBlk24 := run(OptaneMachine(), Blocked, 24)
	oInt24 := run(OptaneMachine(), Interleaved, 24)
	oBlk48 := run(OptaneMachine(), Blocked, 48)
	oInt48 := run(OptaneMachine(), Interleaved, 48)

	if oBlk24 < 2*oInt24 {
		t.Errorf("Optane blocked@24 (%.3fs) should be >= 2x interleaved@24 (%.3fs); paper: 9x", oBlk24, oInt24)
	}
	if oBlk48 > oInt48 {
		t.Errorf("Optane blocked@48 (%.3fs) should beat interleaved@48 (%.3fs)", oBlk48, oInt48)
	}

	// On DRAM the two policies are close at both thread counts.
	dBlk48 := run(DRAMMachine(), Blocked, 48)
	dInt48 := run(DRAMMachine(), Interleaved, 48)
	if dBlk48 > 1.5*dInt48 || dInt48 > 1.5*dBlk48 {
		t.Errorf("DRAM blocked (%.3f) vs interleaved (%.3f) should be similar", dBlk48, dInt48)
	}
}

// TestTable2LatencyShape checks the latency matrix ordering: memory-mode
// local < memory-mode remote < app-direct remote, app-direct local between.
func TestTable2LatencyShape(t *testing.T) {
	const accesses = 20000
	lat := func(cfg MachineConfig, local, appDirect bool) float64 {
		m := NewMachine(cfg)
		return m.LatencyMicro(local, accesses, ScaledBytes(16), appDirect).NsPerOp
	}
	mmLocal := lat(OptaneMachine(), true, false)
	mmRemote := lat(OptaneMachine(), false, false)
	adLocal := lat(AppDirectMachine(), true, true)
	adRemote := lat(AppDirectMachine(), false, true)

	if !(mmLocal < mmRemote) {
		t.Errorf("MM local %.0f should be < MM remote %.0f", mmLocal, mmRemote)
	}
	if !(adLocal < adRemote) {
		t.Errorf("AD local %.0f should be < AD remote %.0f", adLocal, adRemote)
	}
	if !(mmLocal < adLocal) {
		t.Errorf("MM local %.0f should be < AD local %.0f", mmLocal, adLocal)
	}
	// Ballpark: paper reports 95/150/164/232 ns; allow generous margins
	// for the L3 and TLB residue in the micro.
	within := func(got, want float64) bool { return got > want*0.7 && got < want*1.6 }
	if !within(mmLocal, 95) {
		t.Errorf("MM local latency %.0f ns, want ~95", mmLocal)
	}
	if !within(adRemote, 232) {
		t.Errorf("AD remote latency %.0f ns, want ~232", adRemote)
	}
}

// TestTable1BandwidthShape checks the bandwidth matrix orderings that drive
// the paper's conclusions: memory mode beats app-direct everywhere,
// sequential beats random in app-direct, remote loses to local.
func TestTable1BandwidthShape(t *testing.T) {
	bw := func(cfg MachineConfig, p BandwidthPattern, local bool, ad bool) float64 {
		m := NewMachine(cfg)
		return m.BandwidthMicro(p, local, 48, ScaledBytes(32), ad).GBPerSec
	}
	mmSeqRead := bw(OptaneMachine(), SeqRead, true, false)
	mmRandReadRemote := bw(OptaneMachine(), RandRead, false, false)
	adSeqRead := bw(AppDirectMachine(), SeqRead, true, true)
	adRandWrite := bw(AppDirectMachine(), RandWrite, true, true)

	if !(mmSeqRead > adSeqRead) {
		t.Errorf("MM seq read %.1f should beat AD seq read %.1f", mmSeqRead, adSeqRead)
	}
	if !(adSeqRead > adRandWrite) {
		t.Errorf("AD seq read %.1f should beat AD rand write %.1f", adSeqRead, adRandWrite)
	}
	if !(mmSeqRead > mmRandReadRemote) {
		t.Errorf("MM seq read local %.1f should beat MM rand read remote %.1f", mmSeqRead, mmRandReadRemote)
	}
}

func TestBandwidthPatternString(t *testing.T) {
	for p, want := range map[BandwidthPattern]string{
		SeqRead: "seq-read", SeqWrite: "seq-write", RandRead: "rand-read", RandWrite: "rand-write",
	} {
		if p.String() != want {
			t.Errorf("pattern %d string = %q want %q", int(p), p.String(), want)
		}
	}
}

func TestWriteMicroCountsBytes(t *testing.T) {
	m := NewMachine(DRAMMachine())
	res := m.WriteMicro(ScaledBytes(8), Interleaved, 8)
	if res.Counters.BytesWritten != uint64(ScaledBytes(8)) {
		t.Errorf("bytes written = %d, want %d", res.Counters.BytesWritten, ScaledBytes(8))
	}
	if res.ElapsedSec <= 0 {
		t.Error("no elapsed time")
	}
}
