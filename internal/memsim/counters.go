package memsim

// Counters collects the simulated hardware events of one thread or of a
// whole run. They correspond to the VTune / Platform Profiler measurements
// the paper reports (TLB misses, page walks, near-memory hit rates, kernel
// vs user time).
// The json tags define the stable wire format of serialized results
// (analytics.MarshalResult); do not rename them without a version bump.
type Counters struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// BytesRead / BytesWritten include streaming (range) accesses.
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`

	TLBHits    uint64  `json:"tlb_hits"`
	TLBMisses  uint64  `json:"tlb_misses"`
	PageWalkNs float64 `json:"page_walk_ns"`

	NearMemHits    uint64 `json:"near_mem_hits"`
	NearMemMisses  uint64 `json:"near_mem_misses"`
	LocalAccesses  uint64 `json:"local_accesses"`
	RemoteAccesses uint64 `json:"remote_accesses"`

	MinorFaults uint64 `json:"minor_faults"`
	Migrations  uint64 `json:"migrations"`
	Shootdowns  uint64 `json:"shootdowns"`

	// UserNs is time attributable to the application (compute plus
	// memory stalls); KernelNs is time spent in simulated kernel code
	// (fault service, migration bookkeeping, shootdown IPIs).
	UserNs   float64 `json:"user_ns"`
	KernelNs float64 `json:"kernel_ns"`
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.BytesRead += other.BytesRead
	c.BytesWritten += other.BytesWritten
	c.TLBHits += other.TLBHits
	c.TLBMisses += other.TLBMisses
	c.PageWalkNs += other.PageWalkNs
	c.NearMemHits += other.NearMemHits
	c.NearMemMisses += other.NearMemMisses
	c.LocalAccesses += other.LocalAccesses
	c.RemoteAccesses += other.RemoteAccesses
	c.MinorFaults += other.MinorFaults
	c.Migrations += other.Migrations
	c.Shootdowns += other.Shootdowns
	c.UserNs += other.UserNs
	c.KernelNs += other.KernelNs
}

// TLBMissRate returns the fraction of address translations that missed.
func (c *Counters) TLBMissRate() float64 {
	total := c.TLBHits + c.TLBMisses
	if total == 0 {
		return 0
	}
	return float64(c.TLBMisses) / float64(total)
}

// NearMemHitRate returns the fraction of near-memory lookups that hit.
func (c *Counters) NearMemHitRate() float64 {
	total := c.NearMemHits + c.NearMemMisses
	if total == 0 {
		return 0
	}
	return float64(c.NearMemHits) / float64(total)
}

// LocalFraction returns the fraction of memory accesses served by the
// accessing core's own socket.
func (c *Counters) LocalFraction() float64 {
	total := c.LocalAccesses + c.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(c.LocalAccesses) / float64(total)
}

// Sub returns c - other, used to attribute counters to a window of
// execution between two snapshots.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Reads:          c.Reads - other.Reads,
		Writes:         c.Writes - other.Writes,
		BytesRead:      c.BytesRead - other.BytesRead,
		BytesWritten:   c.BytesWritten - other.BytesWritten,
		TLBHits:        c.TLBHits - other.TLBHits,
		TLBMisses:      c.TLBMisses - other.TLBMisses,
		PageWalkNs:     c.PageWalkNs - other.PageWalkNs,
		NearMemHits:    c.NearMemHits - other.NearMemHits,
		NearMemMisses:  c.NearMemMisses - other.NearMemMisses,
		LocalAccesses:  c.LocalAccesses - other.LocalAccesses,
		RemoteAccesses: c.RemoteAccesses - other.RemoteAccesses,
		MinorFaults:    c.MinorFaults - other.MinorFaults,
		Migrations:     c.Migrations - other.Migrations,
		Shootdowns:     c.Shootdowns - other.Shootdowns,
		UserNs:         c.UserNs - other.UserNs,
		KernelNs:       c.KernelNs - other.KernelNs,
	}
}
