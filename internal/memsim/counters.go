package memsim

// Counters collects the simulated hardware events of one thread or of a
// whole run. They correspond to the VTune / Platform Profiler measurements
// the paper reports (TLB misses, page walks, near-memory hit rates, kernel
// vs user time).
type Counters struct {
	Reads  uint64
	Writes uint64
	// BytesRead / BytesWritten include streaming (range) accesses.
	BytesRead    uint64
	BytesWritten uint64

	TLBHits    uint64
	TLBMisses  uint64
	PageWalkNs float64

	NearMemHits    uint64
	NearMemMisses  uint64
	LocalAccesses  uint64
	RemoteAccesses uint64

	MinorFaults uint64
	Migrations  uint64
	Shootdowns  uint64

	// UserNs is time attributable to the application (compute plus
	// memory stalls); KernelNs is time spent in simulated kernel code
	// (fault service, migration bookkeeping, shootdown IPIs).
	UserNs   float64
	KernelNs float64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.BytesRead += other.BytesRead
	c.BytesWritten += other.BytesWritten
	c.TLBHits += other.TLBHits
	c.TLBMisses += other.TLBMisses
	c.PageWalkNs += other.PageWalkNs
	c.NearMemHits += other.NearMemHits
	c.NearMemMisses += other.NearMemMisses
	c.LocalAccesses += other.LocalAccesses
	c.RemoteAccesses += other.RemoteAccesses
	c.MinorFaults += other.MinorFaults
	c.Migrations += other.Migrations
	c.Shootdowns += other.Shootdowns
	c.UserNs += other.UserNs
	c.KernelNs += other.KernelNs
}

// TLBMissRate returns the fraction of address translations that missed.
func (c *Counters) TLBMissRate() float64 {
	total := c.TLBHits + c.TLBMisses
	if total == 0 {
		return 0
	}
	return float64(c.TLBMisses) / float64(total)
}

// NearMemHitRate returns the fraction of near-memory lookups that hit.
func (c *Counters) NearMemHitRate() float64 {
	total := c.NearMemHits + c.NearMemMisses
	if total == 0 {
		return 0
	}
	return float64(c.NearMemHits) / float64(total)
}

// LocalFraction returns the fraction of memory accesses served by the
// accessing core's own socket.
func (c *Counters) LocalFraction() float64 {
	total := c.LocalAccesses + c.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(c.LocalAccesses) / float64(total)
}

// Sub returns c - other, used to attribute counters to a window of
// execution between two snapshots.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Reads:          c.Reads - other.Reads,
		Writes:         c.Writes - other.Writes,
		BytesRead:      c.BytesRead - other.BytesRead,
		BytesWritten:   c.BytesWritten - other.BytesWritten,
		TLBHits:        c.TLBHits - other.TLBHits,
		TLBMisses:      c.TLBMisses - other.TLBMisses,
		PageWalkNs:     c.PageWalkNs - other.PageWalkNs,
		NearMemHits:    c.NearMemHits - other.NearMemHits,
		NearMemMisses:  c.NearMemMisses - other.NearMemMisses,
		LocalAccesses:  c.LocalAccesses - other.LocalAccesses,
		RemoteAccesses: c.RemoteAccesses - other.RemoteAccesses,
		MinorFaults:    c.MinorFaults - other.MinorFaults,
		Migrations:     c.Migrations - other.Migrations,
		Shootdowns:     c.Shootdowns - other.Shootdowns,
		UserNs:         c.UserNs - other.UserNs,
		KernelNs:       c.KernelNs - other.KernelNs,
	}
}
