package memsim

import (
	"fmt"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := OptaneMachine()
	if err := good.Validate(); err != nil {
		t.Fatalf("OptaneMachine invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*MachineConfig)
	}{
		{"zero sockets", func(c *MachineConfig) { c.Sockets = 0 }},
		{"zero cores", func(c *MachineConfig) { c.CoresPerSocket = 0 }},
		{"zero smt", func(c *MachineConfig) { c.ThreadsPerCore = 0 }},
		{"zero dram", func(c *MachineConfig) { c.DRAMPerSocket = 0 }},
		{"memory mode without pmm", func(c *MachineConfig) { c.Mode = MemoryMode; c.PMMPerSocket = 0 }},
		{"bad page size", func(c *MachineConfig) { c.PageSize = 12345 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := OptaneMachine()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("expected validation error")
			}
		})
	}
}

func TestPredefinedMachines(t *testing.T) {
	for _, cfg := range []MachineConfig{OptaneMachine(), DRAMMachine(), AppDirectMachine(), EntropyMachine(), StampedeHost()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if got := OptaneMachine().MaxThreads(); got != 96 {
		t.Errorf("Optane machine threads = %d, want 96", got)
	}
	if got := EntropyMachine().MaxThreads(); got != 224 {
		t.Errorf("Entropy threads = %d, want 224", got)
	}
}

func TestModeString(t *testing.T) {
	if DRAMOnly.String() != "dram" || MemoryMode.String() != "memory-mode" || AppDirect.String() != "app-direct" {
		t.Error("mode strings wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still print")
	}
}

func TestThreadSocketCompactPinning(t *testing.T) {
	cfg := OptaneMachine()
	// 24 cores per socket: threads 0-23 on socket 0, 24-47 on socket 1,
	// SMT siblings 48-71 back on socket 0.
	for _, tc := range []struct{ id, want int }{
		{0, 0}, {23, 0}, {24, 1}, {47, 1}, {48, 0}, {72, 1}, {95, 1},
	} {
		if got := threadSocket(&cfg, tc.id); got != tc.want {
			t.Errorf("threadSocket(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

func TestAllocRejectsBadShapes(t *testing.T) {
	m := NewMachine(OptaneMachine())
	if _, err := m.Alloc("bad", -1, 8, AllocOpts{}); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := m.Alloc("bad", 10, 0, AllocOpts{}); err == nil {
		t.Error("zero element size accepted")
	}
	if _, err := m.Alloc("bad", 10, 8, AllocOpts{PageSize: 999}); err == nil {
		t.Error("bad page size accepted")
	}
}

func TestAppDirectPlacementRequiresMode(t *testing.T) {
	m := NewMachine(OptaneMachine()) // memory mode
	if _, err := m.Alloc("ad", 10, 8, AllocOpts{AppDirect: true}); err == nil {
		t.Error("app-direct alloc accepted in memory mode")
	}
	m2 := NewMachine(AppDirectMachine())
	if _, err := m2.Alloc("ad", 10, 8, AllocOpts{AppDirect: true}); err != nil {
		t.Errorf("app-direct alloc rejected in app-direct mode: %v", err)
	}
}

func TestInterleavedPlacementSplitsFootprint(t *testing.T) {
	m := NewMachine(OptaneMachine())
	a := m.MustAlloc("x", 1<<20, 8, AllocOpts{Policy: Interleaved})
	if f0, f1 := m.FootprintOnSocket(0), m.FootprintOnSocket(1); f0 != f1 {
		t.Errorf("interleaved footprint uneven: %d vs %d", f0, f1)
	}
	if got := a.fracOnSocket(0); got != 0.5 {
		t.Errorf("fracOnSocket = %v, want 0.5", got)
	}
	m.Free(a)
	if f0 := m.FootprintOnSocket(0); f0 != 0 {
		t.Errorf("footprint not released: %d", f0)
	}
}

func TestLocalPlacementSpills(t *testing.T) {
	// On the DRAM machine each socket holds 192 (scaled) GB; a 320 GB
	// local allocation must spill to socket 1 (Figure 4a discussion).
	m := NewMachine(DRAMMachine())
	a := m.MustAlloc("big", ScaledBytes(320)/8, 8, AllocOpts{Policy: Local})
	if m.FootprintOnSocket(1) == 0 {
		t.Fatal("320GB local allocation did not spill to socket 1 on DRAM machine")
	}
	f0 := a.fracOnSocket(0)
	if f0 < 0.55 || f0 > 0.65 {
		t.Errorf("socket-0 fraction = %v, want ~0.6 (192/320)", f0)
	}

	// On the Optane machine (3 TB per socket) the same allocation stays
	// entirely on socket 0.
	mo := NewMachine(OptaneMachine())
	b := mo.MustAlloc("big", ScaledBytes(320)/8, 8, AllocOpts{Policy: Local})
	if got := b.fracOnSocket(0); got != 1 {
		t.Errorf("Optane local fracOnSocket(0) = %v, want 1", got)
	}
	if mo.FootprintOnSocket(1) != 0 {
		t.Error("Optane local allocation spilled unexpectedly")
	}
}

func TestBlockedPlacementFollowsThreads(t *testing.T) {
	m := NewMachine(OptaneMachine())
	// 24 threads all sit on socket 0, so blocked placement puts all
	// pages there (the pathological case in Figure 4b).
	a := m.MustAlloc("blk", 1<<20, 8, AllocOpts{Policy: Blocked, BlockThreads: 24})
	if got := a.fracOnSocket(0); got != 1 {
		t.Errorf("blocked 24-thread fracOnSocket(0) = %v, want 1", got)
	}
	m.Free(a)
	// 48 threads straddle both sockets evenly.
	b := m.MustAlloc("blk48", 1<<20, 8, AllocOpts{Policy: Blocked, BlockThreads: 48})
	if got := b.fracOnSocket(0); got != 0.5 {
		t.Errorf("blocked 48-thread fracOnSocket(0) = %v, want 0.5", got)
	}
}

func TestNearMemHitProbShape(t *testing.T) {
	m := NewMachine(OptaneMachine())
	// Empty socket: perfect.
	if p := m.nearMemHitProb(0); p != 1 {
		t.Errorf("empty socket hit prob = %v", p)
	}
	// One third of near-memory: nearly perfect (kron30 behaves like DRAM).
	a := m.MustAlloc("third", ScaledBytes(64)/8, 8, AllocOpts{Policy: Local})
	if p := m.nearMemHitProb(0); p < 0.98 {
		t.Errorf("1/3-footprint hit prob = %v, want > 0.98", p)
	}
	m.Free(a)
	// ~95% of near-memory: ~26% conflict misses (clueweb12).
	b := m.MustAlloc("near", ScaledBytes(182)/8, 8, AllocOpts{Policy: Local})
	if p := m.nearMemHitProb(0); p < 0.65 || p > 0.80 {
		t.Errorf("95%%-footprint hit prob = %v, want ~0.72", p)
	}
	m.Free(b)
	// Double the near-memory: hit rate around 0.65*C/F = 0.32.
	c := m.MustAlloc("spill", ScaledBytes(384)/8, 8, AllocOpts{Policy: Local})
	if p := m.nearMemHitProb(0); p < 0.25 || p > 0.40 {
		t.Errorf("2x-footprint hit prob = %v, want ~0.33", p)
	}
	m.Free(c)
}

func TestParallelElapsedIsMaxOfThreads(t *testing.T) {
	m := NewMachine(DRAMMachine())
	stats := m.Parallel(4, func(th *Thread) {
		th.Advance(float64(th.ID+1) * 1000)
	})
	want := 4000 + m.cost.ForkJoinCost
	if stats.ElapsedNs != want {
		t.Errorf("elapsed = %v, want %v", stats.ElapsedNs, want)
	}
	if m.WallNs() != stats.ElapsedNs {
		t.Errorf("wall clock %v != region %v", m.WallNs(), stats.ElapsedNs)
	}
}

func TestParallelClampsThreads(t *testing.T) {
	m := NewMachine(DRAMMachine())
	stats := m.Parallel(10000, func(th *Thread) {})
	if stats.Threads != 96 {
		t.Errorf("threads = %d, want clamp to 96", stats.Threads)
	}
	stats = m.Parallel(-3, func(th *Thread) {})
	if stats.Threads != 1 {
		t.Errorf("threads = %d, want 1", stats.Threads)
	}
}

func TestSequentialRunsOneThread(t *testing.T) {
	m := NewMachine(DRAMMachine())
	ran := 0
	m.Sequential(func(th *Thread) {
		ran++
		if th.ID != 0 || th.Socket != 0 {
			t.Errorf("sequential thread id=%d socket=%d", th.ID, th.Socket)
		}
	})
	if ran != 1 {
		t.Errorf("sequential ran %d threads", ran)
	}
}

func TestCountersAccumulate(t *testing.T) {
	m := NewMachine(DRAMMachine())
	a := m.MustAlloc("arr", 1<<16, 8, AllocOpts{Policy: Interleaved})
	m.Parallel(2, func(th *Thread) {
		for i := int64(0); i < 100; i++ {
			a.Read(th, (i*7919)%a.Len())
			a.Write(th, (i*104729)%a.Len())
		}
	})
	c := m.Counters()
	if c.Reads != 200 || c.Writes != 200 {
		t.Errorf("reads=%d writes=%d, want 200 each", c.Reads, c.Writes)
	}
	if c.UserNs <= 0 {
		t.Error("no user time charged")
	}
	m.ResetClock()
	if m.WallNs() != 0 || m.Counters().Reads != 0 {
		t.Error("ResetClock did not reset")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m := NewMachine(OptaneMachine())
		a := m.MustAlloc("arr", 1<<18, 8, AllocOpts{Policy: Interleaved})
		a.Warm() // fault attribution races across threads; warm for exactness
		m.Parallel(8, func(th *Thread) {
			for i := int64(0); i < 5000; i++ {
				a.Read(th, (int64(th.ID)*100003+i*7919)%a.Len())
			}
		})
		return m.WallNs()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: wall %v != %v (nondeterministic simulation)", i, got, first)
		}
	}
}

func TestRemoteAccessesCostMore(t *testing.T) {
	m := NewMachine(DRAMMachine())
	a := m.MustAlloc("arr", 1<<22, 8, AllocOpts{Policy: Local, PreferredSocket: 0, PageSize: PageGiant})
	local := m.ParallelPinned(0, 1, func(th *Thread) {
		for i := int64(0); i < 20000; i++ {
			a.Read(th, (i*7919)%a.Len())
		}
	})
	remote := m.ParallelPinned(1, 1, func(th *Thread) {
		for i := int64(0); i < 20000; i++ {
			a.Read(th, (i*7919)%a.Len())
		}
	})
	if remote.ElapsedNs <= local.ElapsedNs {
		t.Errorf("remote (%v) should cost more than local (%v)", remote.ElapsedNs, local.ElapsedNs)
	}
	if remote.Counters.RemoteAccesses == 0 || local.Counters.LocalAccesses == 0 {
		t.Error("local/remote counters not recorded")
	}
}

func TestFirstTouchFaultsOnce(t *testing.T) {
	m := NewMachine(DRAMMachine())
	a := m.MustAlloc("arr", 1<<20, 8, AllocOpts{Policy: Local, PageSize: PageSmall})
	s1 := m.Sequential(func(th *Thread) { a.ReadRange(th, 0, a.Len()) })
	s2 := m.Sequential(func(th *Thread) { a.ReadRange(th, 0, a.Len()) })
	if s1.Counters.MinorFaults == 0 {
		t.Fatal("first sweep produced no minor faults")
	}
	if s2.Counters.MinorFaults != 0 {
		t.Errorf("second sweep faulted %d times", s2.Counters.MinorFaults)
	}
}

func TestHugePagesReduceTLBMisses(t *testing.T) {
	run := func(pageSize int64) Counters {
		m := NewMachine(NewMachineWithMode(MemoryMode, pageSize, false))
		a := m.MustAlloc("arr", ScaledBytes(64)/8, 8, AllocOpts{Policy: Interleaved, PageSize: pageSize})
		stats := m.Parallel(4, func(th *Thread) {
			r := uint64(th.ID + 1)
			for i := 0; i < 50000; i++ {
				r = r*6364136223846793005 + 1442695040888963407
				a.Read(th, int64(r%uint64(a.Len())))
			}
		})
		return stats.Counters
	}
	small := run(PageSmall)
	huge := run(PageHuge)
	if small.TLBMisses <= huge.TLBMisses {
		t.Errorf("4KB TLB misses (%d) should exceed 2MB (%d)", small.TLBMisses, huge.TLBMisses)
	}
	if small.PageWalkNs <= huge.PageWalkNs {
		t.Errorf("4KB walk time (%v) should exceed 2MB (%v)", small.PageWalkNs, huge.PageWalkNs)
	}
}

// NewMachineWithMode is a test helper building an Optane-geometry config.
func NewMachineWithMode(mode Mode, pageSize int64, migration bool) MachineConfig {
	cfg := OptaneMachine()
	cfg.Mode = mode
	cfg.PageSize = pageSize
	cfg.NUMAMigration = migration
	return cfg
}

func TestMigrationAddsKernelTime(t *testing.T) {
	run := func(migration bool) Counters {
		cfg := NewMachineWithMode(MemoryMode, PageSmall, migration)
		m := NewMachine(cfg)
		a := m.MustAlloc("arr", ScaledBytes(32)/8, 8, AllocOpts{Policy: Interleaved, PageSize: PageSmall})
		stats := m.Parallel(8, func(th *Thread) {
			r := uint64(th.ID + 1)
			for i := 0; i < 30000; i++ {
				r = r*6364136223846793005 + 1442695040888963407
				a.Read(th, int64(r%uint64(a.Len())))
			}
		})
		return stats.Counters
	}
	off := run(false)
	on := run(true)
	if on.Migrations == 0 {
		t.Fatal("migration on produced no migrations")
	}
	if off.Migrations != 0 {
		t.Fatalf("migration off produced %d migrations", off.Migrations)
	}
	if on.KernelNs <= off.KernelNs {
		t.Errorf("migration kernel time %v should exceed off %v", on.KernelNs, off.KernelNs)
	}
	if on.Shootdowns == 0 {
		t.Error("migrations produced no shootdowns")
	}
}

func TestMigrationScalesWithPageSize(t *testing.T) {
	run := func(pageSize int64) uint64 {
		cfg := NewMachineWithMode(MemoryMode, pageSize, true)
		m := NewMachine(cfg)
		a := m.MustAlloc("arr", ScaledBytes(32)/8, 8, AllocOpts{Policy: Interleaved, PageSize: pageSize})
		stats := m.Parallel(8, func(th *Thread) {
			r := uint64(th.ID + 1)
			for i := 0; i < 60000; i++ {
				r = r*6364136223846793005 + 1442695040888963407
				a.Read(th, int64(r%uint64(a.Len())))
			}
		})
		return stats.Counters.Migrations
	}
	small := run(PageSmall)
	huge := run(PageHuge)
	if small < huge*20 {
		t.Errorf("small-page migrations (%d) should dwarf huge-page migrations (%d)", small, huge)
	}
}

func TestCountersHelpers(t *testing.T) {
	c := Counters{TLBHits: 75, TLBMisses: 25, NearMemHits: 50, NearMemMisses: 50, LocalAccesses: 20, RemoteAccesses: 80}
	if got := c.TLBMissRate(); got != 0.25 {
		t.Errorf("TLBMissRate = %v", got)
	}
	if got := c.NearMemHitRate(); got != 0.5 {
		t.Errorf("NearMemHitRate = %v", got)
	}
	if got := c.LocalFraction(); got != 0.2 {
		t.Errorf("LocalFraction = %v", got)
	}
	var zero Counters
	if zero.TLBMissRate() != 0 || zero.NearMemHitRate() != 0 || zero.LocalFraction() != 0 {
		t.Error("zero counters should report zero rates")
	}
	var sum Counters
	sum.Add(c)
	sum.Add(c)
	if sum.TLBHits != 150 || sum.RemoteAccesses != 160 {
		t.Error("Add did not accumulate")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{Local: "local", Interleaved: "interleaved", Blocked: "blocked"} {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Policy(42).String() != fmt.Sprintf("Policy(%d)", 42) {
		t.Error("unknown policy string")
	}
}
