package memsim

// Interconnect is the analytic alpha-beta cost model for the data exchanged
// between machines at a superstep barrier: cross-shard frontier fragments
// in the sharded serving engine, dirty-mirror sync in the cluster
// emulation. Network time is not simulated event-by-event — the model
// charges each exchange
//
//	t = alpha * log2(parties) + 2 * maxBytes * volumeFactor / bytesPerNs
//
// (synchronization that grows with the participant tree, plus a reduce +
// broadcast in which the bottleneck participant's volume crosses the
// interconnect twice). The result is charged onto wall clocks with
// Machine.AdvanceWall, keeping the charging seam in this package alongside
// the memory model.
type Interconnect struct {
	// AlphaNs is the per-exchange synchronization overhead for a 2-party
	// exchange (barrier, message startup, serialization); it grows with
	// log2(parties).
	AlphaNs float64
	// BytesPerNs is per-party interconnect bandwidth.
	BytesPerNs float64
}

// ServingInterconnect models in-process shard workers exchanging frontier
// fragments through shared memory: a ~2us barrier and DRAM-class copy
// bandwidth.
func ServingInterconnect() Interconnect {
	return Interconnect{AlphaNs: 2_000, BytesPerNs: 50}
}

// StampedeInterconnect models the Stampede2 cluster fabric the paper's
// D-Galois numbers come from: 100 Gb/s Omni-Path (12.5 B/ns) with a
// per-round Gluon barrier calibrated against the paper's per-round costs
// (~10-20 ms per bfs round on clueweb12 at 5 hosts).
func StampedeInterconnect() Interconnect {
	return Interconnect{AlphaNs: 400_000, BytesPerNs: 12.5}
}

// ExchangeNs returns the simulated cost of one superstep exchange among
// `parties` machines whose bottleneck participant ships maxBytes.
// volumeFactor scales the shipped volume for partition policies that
// provably reduce it (e.g. a 2D vertex cut's 2/sqrt(parties)); pass 1 for
// plain edge cuts. A single party still pays alpha — the barrier is real
// even when nothing crosses the wire.
func (ic Interconnect) ExchangeNs(parties int, maxBytes int64, volumeFactor float64) float64 {
	if volumeFactor <= 0 {
		volumeFactor = 1
	}
	alpha := ic.AlphaNs * log2f(parties)
	if ic.BytesPerNs <= 0 {
		return alpha
	}
	return alpha + 2*float64(maxBytes)*volumeFactor/ic.BytesPerNs
}

// log2f is a coarse integer log2 (>= 1), matching the synchronization
// tree-depth growth the alpha term models.
func log2f(n int) float64 {
	f := 1.0
	for n > 2 {
		n /= 2
		f++
	}
	return f
}
