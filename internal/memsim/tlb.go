package memsim

// tlb models one hardware thread's data TLB. Each page-size class is a
// fully associative LRU array, implemented as a ring of (pageID, stamp)
// pairs. Entry counts are tiny (4-64), so linear scans beat any fancier
// structure and allocate nothing.
type tlb struct {
	small tlbClass
	huge  tlbClass
	giant tlbClass
}

type tlbClass struct {
	pages  []uint64
	stamps []uint64
	clock  uint64
}

func newTLB(cfg TLBConfig) *tlb {
	return &tlb{
		small: newTLBClass(cfg.SmallEntries),
		huge:  newTLBClass(cfg.HugeEntries),
		giant: newTLBClass(cfg.GiantEntries),
	}
}

func newTLBClass(entries int) tlbClass {
	if entries <= 0 {
		entries = 1
	}
	c := tlbClass{
		pages:  make([]uint64, entries),
		stamps: make([]uint64, entries),
	}
	for i := range c.pages {
		c.pages[i] = ^uint64(0) // invalid
	}
	return c
}

func (t *tlb) class(pageSize int64) *tlbClass {
	switch pageSize {
	case PageHuge:
		return &t.huge
	case PageGiant:
		return &t.giant
	default:
		return &t.small
	}
}

// lookup probes the TLB for pageID, installing it on a miss. It reports
// whether the probe hit.
func (c *tlbClass) lookup(pageID uint64) bool {
	c.clock++
	victim, oldest := 0, ^uint64(0)
	for i, p := range c.pages {
		if p == pageID {
			c.stamps[i] = c.clock
			return true
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	c.pages[victim] = pageID
	c.stamps[victim] = c.clock
	return false
}

// invalidate drops pageID if present (TLB shootdown of a migrated page).
func (c *tlbClass) invalidate(pageID uint64) {
	for i, p := range c.pages {
		if p == pageID {
			c.pages[i] = ^uint64(0)
			c.stamps[i] = 0
			return
		}
	}
}

// flushRandom invalidates the slot selected by r, used to model the
// shootdowns triggered by other threads' migrations without sharing state.
func (c *tlbClass) flushRandom(r uint64) {
	i := int(r % uint64(len(c.pages)))
	c.pages[i] = ^uint64(0)
	c.stamps[i] = 0
}

// flushAll empties the class.
func (c *tlbClass) flushAll() {
	for i := range c.pages {
		c.pages[i] = ^uint64(0)
		c.stamps[i] = 0
	}
}
