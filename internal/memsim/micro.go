package memsim

// This file implements the microbenchmarks the paper uses to characterize
// the platform: the Table 1 bandwidth matrix, the Table 2 latency matrix,
// and the §4.1 NUMA-allocation write microbenchmark behind Figure 4.

// MicroResult reports one microbenchmark run.
type MicroResult struct {
	ElapsedSec float64
	GBPerSec   float64
	NsPerOp    float64
	Counters   Counters
}

// microAlloc allocates the working buffer for a microbenchmark.
func (m *Machine) microAlloc(bytes int64, policy Policy, threads int, appDirect bool) *Array {
	return m.MustAlloc("micro", bytes/8, 8, AllocOpts{
		Policy:       policy,
		BlockThreads: threads,
		AppDirect:    appDirect,
	})
}

// WriteMicro reproduces the paper's §4.1 microbenchmark: allocate bytes with
// the given policy and write every location once with threads threads, each
// thread writing one contiguous block sequentially. It returns the simulated
// elapsed time.
func (m *Machine) WriteMicro(bytes int64, policy Policy, threads int) MicroResult {
	a := m.microAlloc(bytes, policy, threads, false)
	defer m.Free(a)
	n := a.Len()
	tc := int64(threadCount(m, threads))
	stats := m.Parallel(threads, func(t *Thread) {
		lo := n * int64(t.ID) / tc
		hi := n * int64(t.ID+1) / tc
		a.WriteRange(t, lo, hi)
	})
	return MicroResult{
		ElapsedSec: stats.ElapsedNs / 1e9,
		GBPerSec:   float64(bytes) / stats.ElapsedNs,
		Counters:   stats.Counters,
	}
}

// threadCount clamps a requested thread count the same way Parallel does, so
// work partitioning matches the region's real thread set.
func threadCount(m *Machine, threads int) int {
	if threads <= 0 {
		return 1
	}
	if max := m.cfg.MaxThreads(); threads > max {
		return max
	}
	return threads
}

// BandwidthPattern selects the Table 1 access pattern.
type BandwidthPattern int

// Bandwidth microbenchmark patterns.
const (
	SeqRead BandwidthPattern = iota
	SeqWrite
	RandRead
	RandWrite
)

// String implements fmt.Stringer.
func (p BandwidthPattern) String() string {
	switch p {
	case SeqRead:
		return "seq-read"
	case SeqWrite:
		return "seq-write"
	case RandRead:
		return "rand-read"
	case RandWrite:
		return "rand-write"
	default:
		return "unknown"
	}
}

// BandwidthMicro measures aggregate bandwidth for one Table 1 cell: data is
// placed on socket 0 and threads are pinned to socket 0 (local) or
// socket 1 (remote). appDirect selects the app-direct row (requires the
// machine to be in AppDirect mode).
func (m *Machine) BandwidthMicro(pattern BandwidthPattern, local bool, threads int, bytes int64, appDirect bool) MicroResult {
	a := m.MustAlloc("micro-bw", bytes/8, 8, AllocOpts{
		Policy:    Local,
		AppDirect: appDirect,
	})
	defer m.Free(a)
	socket := 0
	if !local {
		socket = 1
	}
	n := a.Len()
	tc := m.cfg.CoresPerSocket * m.cfg.ThreadsPerCore
	if threads < tc {
		tc = threads
	}
	stats := m.ParallelPinned(socket, threads, func(t *Thread) {
		lo := n * int64(t.ID) / int64(tc)
		hi := n * int64(t.ID+1) / int64(tc)
		switch pattern {
		case SeqRead:
			a.ReadRange(t, lo, hi)
		case SeqWrite:
			a.WriteRange(t, lo, hi)
		case RandRead:
			a.RandomBatch(t, hi-lo, false)
		case RandWrite:
			a.RandomBatch(t, hi-lo, true)
		}
	})
	// Sequential patterns move the buffer once; random patterns move a
	// full 64-byte line per access, which is what the device transfers
	// and what the paper's bandwidth micro reports.
	moved := float64(bytes)
	if pattern == RandRead || pattern == RandWrite {
		moved = float64(n * 64)
	}
	return MicroResult{
		ElapsedSec: stats.ElapsedNs / 1e9,
		GBPerSec:   moved / stats.ElapsedNs,
		Counters:   stats.Counters,
	}
}

// LatencyMicro measures dependent-load latency for one Table 2 cell: a
// single thread pointer-chases through a buffer placed on socket 0, pinned
// either to socket 0 (local) or socket 1 (remote).
func (m *Machine) LatencyMicro(local bool, accesses int64, bytes int64, appDirect bool) MicroResult {
	a := m.MustAlloc("micro-lat", bytes/8, 8, AllocOpts{
		Policy:    Local,
		PageSize:  PageGiant, // isolate device latency from TLB effects
		AppDirect: appDirect,
	})
	defer m.Free(a)
	socket := 0
	if !local {
		socket = 1
	}
	n := a.Len()
	stats := m.ParallelPinned(socket, 1, func(t *Thread) {
		idx := int64(12345)
		for i := int64(0); i < accesses; i++ {
			idx = (idx*2862933555777941757 + 3037000493) % n
			if idx < 0 {
				idx += n
			}
			a.Read(t, idx)
		}
	})
	return MicroResult{
		ElapsedSec: stats.ElapsedNs / 1e9,
		NsPerOp:    stats.ElapsedNs / float64(accesses),
		Counters:   stats.Counters,
	}
}
