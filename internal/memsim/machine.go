package memsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Machine is a simulated NUMA machine. It owns the global simulated wall
// clock, the allocation map, and the per-socket footprint accounting that
// drives the near-memory cache model.
//
// Machine is safe for use by the goroutines of a single Parallel region;
// distinct Parallel regions must not overlap.
type Machine struct {
	cfg  MachineConfig
	cost *CostParams

	wallNs   float64
	counters Counters

	// volatileBytes is the number of bytes placed on each socket in the
	// volatile pool (Optane media in memory mode, DRAM otherwise).
	// adBytes tracks app-direct placements.
	volatileBytes []int64
	adBytes       []int64

	nextAddr uint64
	allocs   map[string]*Array

	// Region state, valid while a Parallel region runs.
	regionThreads         int
	regionThreadsOnSocket []int32

	// thpSmallFraction is the fraction of translations on THP-backed
	// allocations that still resolve through 4 KB pages.
	thpSmallFraction float64
}

// NewMachine builds a Machine from cfg. It panics on invalid configuration
// (a programming error, not a runtime condition).
func NewMachine(cfg MachineConfig) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cost := cfg.Cost
	m := &Machine{
		cfg:                   cfg,
		cost:                  &cost,
		volatileBytes:         make([]int64, cfg.Sockets),
		adBytes:               make([]int64, cfg.Sockets),
		allocs:                make(map[string]*Array),
		regionThreadsOnSocket: make([]int32, cfg.Sockets),
		thpSmallFraction:      0.30,
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// WallNs returns accumulated simulated wall-clock nanoseconds.
func (m *Machine) WallNs() float64 { return m.wallNs }

// WallSeconds returns accumulated simulated wall-clock seconds.
func (m *Machine) WallSeconds() float64 { return m.wallNs / 1e9 }

// Counters returns the accumulated machine-wide counters.
func (m *Machine) Counters() Counters { return m.counters }

// ResetClock zeroes the wall clock and counters, keeping allocations.
func (m *Machine) ResetClock() {
	m.wallNs = 0
	m.counters = Counters{}
}

// AdvanceWall charges sequential (single-threaded, un-instrumented) time
// directly to the wall clock, e.g. for costed phases computed analytically.
func (m *Machine) AdvanceWall(ns float64) {
	m.wallNs += ns
	m.counters.UserNs += ns
}

// socketCapacity returns the volatile-pool capacity of one socket.
func (m *Machine) socketCapacity() int64 {
	if m.cfg.Mode == MemoryMode {
		return m.cfg.PMMPerSocket
	}
	return m.cfg.DRAMPerSocket
}

// Alloc creates a simulated allocation of n elements of elemSize bytes.
func (m *Machine) Alloc(name string, n int64, elemSize int64, opts AllocOpts) (*Array, error) {
	if n < 0 || elemSize <= 0 {
		return nil, fmt.Errorf("memsim: alloc %q: invalid shape n=%d elem=%d", name, n, elemSize)
	}
	pageSize := opts.PageSize
	if pageSize == 0 {
		pageSize = m.cfg.PageSize
	}
	switch pageSize {
	case PageSmall, PageHuge, PageGiant:
	default:
		return nil, fmt.Errorf("memsim: alloc %q: unsupported page size %d", name, pageSize)
	}
	if _, dup := m.allocs[name]; dup {
		// Uniquify: kernels routinely allocate short-lived arrays with
		// the same logical name across runs on one machine.
		for i := 2; ; i++ {
			candidate := fmt.Sprintf("%s#%d", name, i)
			if _, ok := m.allocs[candidate]; !ok {
				name = candidate
				break
			}
		}
	}
	bytes := n * elemSize
	numPages := (bytes + pageSize - 1) / pageSize
	if numPages == 0 {
		numPages = 1
	}
	a := &Array{
		m:        m,
		name:     name,
		elemSize: elemSize,
		length:   n,
		bytes:    bytes,
		pageSize: pageSize,
		numPages: numPages,
		baseAddr: m.nextAddr,
		opts:     opts,
		touched:  make([]atomic.Uint64, (numPages+63)/64),
	}
	// Advance the virtual address cursor, giant-page aligned so arrays
	// never share a translation page of any size class.
	m.nextAddr += (uint64(bytes)/PageGiant + 1) * PageGiant

	if err := m.place(a); err != nil {
		return nil, err
	}

	l3 := float64(m.cfg.L3PerSocket * int64(m.cfg.Sockets))
	if l3 > 0 {
		// Small arrays (frontier bitmaps, per-round scalars) live in
		// the on-chip caches most of the time.
		a.l3Prob = math.Min(0.95, l3/math.Max(l3, float64(bytes))*0.95)
		if float64(bytes) > 8*l3 {
			a.l3Prob = 0.95 * l3 / float64(bytes)
		}
	}

	m.allocs[a.name] = a
	return a, nil
}

// MustAlloc is Alloc that panics on error, for allocation shapes the caller
// has already validated.
func (m *Machine) MustAlloc(name string, n int64, elemSize int64, opts AllocOpts) *Array {
	a, err := m.Alloc(name, n, elemSize, opts)
	if err != nil {
		panic(err)
	}
	return a
}

// place computes page placement and updates footprint accounting.
func (m *Machine) place(a *Array) error {
	sockets := m.cfg.Sockets
	pool := m.volatileBytes
	if a.opts.AppDirect {
		if m.cfg.Mode != AppDirect {
			return fmt.Errorf("memsim: alloc %q: app-direct placement requires app-direct mode", a.name)
		}
		pool = m.adBytes
	}
	switch a.opts.Policy {
	case Interleaved:
		per := a.bytes / int64(sockets)
		for s := 0; s < sockets; s++ {
			pool[s] += per
		}
	case Blocked:
		threads := a.opts.BlockThreads
		if threads <= 0 {
			threads = m.cfg.MaxThreads()
		}
		perThread := a.bytes / int64(threads)
		for t := 0; t < threads; t++ {
			pool[threadSocket(&m.cfg, t)] += perThread
		}
	default: // Local with spill
		cap := m.socketCapacity()
		if a.opts.AppDirect {
			cap = m.cfg.PMMPerSocket
		}
		remaining := a.bytes
		s := a.opts.PreferredSocket % sockets
		page := int64(0)
		for remaining > 0 {
			free := cap - pool[s]
			if free <= 0 {
				s = (s + 1) % sockets
				if s == a.opts.PreferredSocket%sockets {
					// Every socket full: overcommit on the
					// preferred socket (the OS would OOM or
					// swap; the simulation charges the
					// conflict-miss cost instead).
					pool[s] += remaining
					break
				}
				continue
			}
			take := remaining
			if take > free {
				take = free
			}
			a.segments = append(a.segments, placeSegment{startPage: page, socket: s})
			pool[s] += take
			page += (take + a.pageSize - 1) / a.pageSize
			remaining -= take
			s = (s + 1) % sockets
		}
		if len(a.segments) == 0 {
			a.segments = append(a.segments, placeSegment{startPage: 0, socket: a.opts.PreferredSocket % sockets})
		}
	}
	return nil
}

// Free releases an allocation's footprint.
func (m *Machine) Free(a *Array) {
	if a == nil || a.freed {
		return
	}
	a.freed = true
	delete(m.allocs, a.name)
	sockets := m.cfg.Sockets
	pool := m.volatileBytes
	if a.opts.AppDirect {
		pool = m.adBytes
	}
	switch a.opts.Policy {
	case Interleaved:
		per := a.bytes / int64(sockets)
		for s := 0; s < sockets; s++ {
			pool[s] -= per
		}
	case Blocked:
		threads := a.opts.BlockThreads
		if threads <= 0 {
			threads = m.cfg.MaxThreads()
		}
		perThread := a.bytes / int64(threads)
		for t := 0; t < threads; t++ {
			pool[threadSocket(&m.cfg, t)] -= perThread
		}
	default:
		// Recompute per-segment byte spans.
		for i, seg := range a.segments {
			endPage := a.numPages
			if i+1 < len(a.segments) {
				endPage = a.segments[i+1].startPage
			}
			span := (endPage - seg.startPage) * a.pageSize
			if span > a.bytes {
				span = a.bytes
			}
			pool[seg.socket] -= span
		}
	}
}

// FootprintOnSocket returns the volatile bytes placed on socket s.
func (m *Machine) FootprintOnSocket(s int) int64 { return m.volatileBytes[s] }

// nearMemHitProb models the direct-mapped near-memory cache: the probability
// that a random access to data on socket s hits in that socket's DRAM.
// Calibration targets from the paper: a footprint of ~1/3 of near-memory
// behaves like DRAM; ~95% of near-memory sees ~26% conflict misses
// (clueweb12); beyond capacity the hit rate decays as C/F with a
// direct-mapped conflict penalty.
func (m *Machine) nearMemHitProb(s int) float64 {
	c := float64(m.cfg.DRAMPerSocket)
	f := float64(m.volatileBytes[s])
	if f <= 0 {
		return 1
	}
	if f <= c {
		x := f / c
		return 1 - 0.35*x*x*x*x
	}
	return 0.65 * c / f
}

// residentFrac is the streaming (single-sweep) variant: the fraction of a
// socket's footprint that can stay resident in near-memory.
func (m *Machine) residentFrac(s int) float64 {
	c := float64(m.cfg.DRAMPerSocket)
	f := float64(m.volatileBytes[s])
	if f <= c || f <= 0 {
		return 1
	}
	return c / f
}

// RegionStats summarizes one Parallel region. The json tags define the
// stable wire format of serialized kernel traces (analytics.MarshalResult).
type RegionStats struct {
	ElapsedNs float64  `json:"elapsed_ns"`
	Counters  Counters `json:"counters"`
	Threads   int      `json:"threads"`
}

// Parallel runs fn on threads virtual threads and advances the wall clock by
// the slowest thread's simulated time plus fork/join overhead. fn receives
// each thread's Thread handle and must partition work by t.ID.
func (m *Machine) Parallel(threads int, fn func(t *Thread)) RegionStats {
	return m.parallel(threads, -1, fn)
}

// ParallelPinned is Parallel with every virtual thread pinned to one socket
// (numactl --cpunodebind), used by the latency/bandwidth microbenchmarks to
// force all-local or all-remote access patterns.
func (m *Machine) ParallelPinned(socket, threads int, fn func(t *Thread)) RegionStats {
	return m.parallel(threads, socket%m.cfg.Sockets, fn)
}

func (m *Machine) parallel(threads, pinSocket int, fn func(t *Thread)) RegionStats {
	if threads <= 0 {
		threads = 1
	}
	if max := m.cfg.MaxThreads(); threads > max {
		threads = max
	}
	for s := range m.regionThreadsOnSocket {
		m.regionThreadsOnSocket[s] = 0
	}
	m.regionThreads = threads
	cores := m.cfg.Sockets * m.cfg.CoresPerSocket
	if pinSocket >= 0 {
		cores = m.cfg.CoresPerSocket
	}
	smtScale := 1.0
	if threads > cores {
		// SMT siblings share a core; each runs at ~74% of the core's
		// solo throughput, so two siblings deliver ~1.35x one core.
		smtScale = 1.48
	}
	ts := make([]*Thread, threads)
	for i := 0; i < threads; i++ {
		s := threadSocket(&m.cfg, i)
		if pinSocket >= 0 {
			s = pinSocket
		}
		m.regionThreadsOnSocket[s]++
		ts[i] = &Thread{
			m:        m,
			ID:       i,
			Socket:   s,
			tlb:      newTLB(m.cfg.TLB),
			rng:      0x9E3779B97F4A7C15 ^ (uint64(i+1) * 0xBF58476D1CE4E5B9),
			smtScale: smtScale,
		}
	}

	// Execute the virtual threads on real goroutines. Each Thread
	// accumulates its charges, counters and simulated time into private
	// state; shared machine state (page-table touch bits, shootdown
	// totals) is only read during the region and updated from recorded
	// intents at the barrier below, so the merged result is byte-identical
	// for every goroutine interleaving and GOMAXPROCS setting.
	var wg sync.WaitGroup
	wg.Add(threads)
	for i := 0; i < threads; i++ {
		go func(t *Thread) {
			defer wg.Done()
			fn(t)
		}(ts[i])
	}
	wg.Wait()

	// Barrier merge, in thread-index order.
	//
	// Phase 1: total the TLB-shootdown batches generated by migrations.
	var shoot float64
	for _, t := range ts {
		shoot += float64(t.shootdowns)
	}
	// Phase 2: apply first-touch intents to the arrays' (frozen) touched
	// bitmaps. OR-ing bits is commutative, so the merged bitmap is
	// deterministic regardless of map iteration order.
	for _, t := range ts {
		for a, ov := range t.touches {
			for w, bits := range ov {
				if bits != 0 {
					a.touched[w].Or(bits)
				}
			}
		}
		t.touches = nil
	}
	// Phase 3: charge shootdown IPIs (every running thread services every
	// batch) and fold per-thread clocks and counters into the region stats.
	var stats RegionStats
	stats.Threads = threads
	for _, t := range ts {
		if shoot > 0 {
			ipi := shoot * m.cost.ShootdownPerThread
			t.Clock += ipi
			t.C.KernelNs += ipi
			t.C.Shootdowns += uint64(shoot)
		}
		if t.Clock > stats.ElapsedNs {
			stats.ElapsedNs = t.Clock
		}
		stats.Counters.Add(t.C)
	}
	stats.ElapsedNs += m.cost.ForkJoinCost
	m.wallNs += stats.ElapsedNs
	m.counters.Add(stats.Counters)
	return stats
}

// Sequential runs fn on a single virtual thread pinned to socket 0.
func (m *Machine) Sequential(fn func(t *Thread)) RegionStats {
	return m.Parallel(1, fn)
}

// access is the core cost function: thread t touches n consecutive elements
// of a starting at index i. seq marks streaming accesses charged against
// bandwidth rather than latency.
func (m *Machine) access(t *Thread, a *Array, i, n int64, isWrite, seq bool) {
	bytes := n * a.elemSize
	a.addTraffic(bytes, isWrite)
	if isWrite {
		t.C.Writes++
		t.C.BytesWritten += uint64(bytes)
	} else {
		t.C.Reads++
		t.C.BytesRead += uint64(bytes)
	}

	// Same-line memo: back-to-back touches of one 64 B line are L1 hits.
	line := (i * a.elemSize) >> 6
	if !seq && a == t.lastArray && line == t.lastLine {
		t.Advance(1.0)
		return
	}
	t.lastArray = a
	t.lastLine = ((i + n - 1) * a.elemSize) >> 6

	firstPage := a.pageOf(i)
	lastPage := a.pageOf(i + n - 1)
	socket := a.socketOf(firstPage)

	// Address translation and fault service, per page touched.
	pageSize := a.effectivePageSize(t)
	walk := m.cost.PageWalkDRAM
	fault := m.cost.MinorFaultDRAM
	if m.cfg.Mode == MemoryMode {
		walk = m.cost.PageWalkOptane
		fault = m.cost.MinorFaultOptane
	}
	cls := t.tlb.class(pageSize)
	for p := firstPage; p <= lastPage; p++ {
		pid := (a.baseAddr + uint64(p)*uint64(a.pageSize)) / uint64(pageSize)
		if cls.lookup(pid) {
			t.C.TLBHits++
		} else {
			t.C.TLBMisses++
			t.C.PageWalkNs += walk
			t.Clock += walk
			t.C.UserNs += walk
		}
		if a.firstTouch(t, p) {
			t.C.MinorFaults++
			t.AdvanceKernel(fault)
		}
	}

	local := socket == t.Socket
	if local {
		t.C.LocalAccesses++
	} else {
		t.C.RemoteAccesses++
	}

	// NUMA migration daemon (§4.2): remote accesses to migratable pages
	// occasionally trigger a migration. Probability scales inversely
	// with page size: small pages migrate ~512x more often.
	if m.cfg.NUMAMigration && !local {
		prob := 1.0 / 400.0 * float64(PageSmall) / float64(a.pageSize)
		if t.chance(prob) {
			t.C.Migrations++
			book := m.cost.MigrationBookkeepDRAM
			if m.cfg.Mode == MemoryMode {
				book = m.cost.MigrationBookkeepOptane
			}
			t.AdvanceKernel(book + m.cost.MigrationCopyPerByte*float64(a.pageSize))
			t.shootdowns++
			// The migrating thread's own stale entry is dropped.
			t.tlb.class(pageSize).flushRandom(t.next())
		}
	}

	// On-chip cache short-circuit.
	if a.l3Prob > 0 && t.chance(a.l3Prob) {
		t.Advance(m.cost.L3HitLatency + float64(bytes)/512)
		return
	}

	// Memory device cost. Latency-bound accesses pay the SMT sibling
	// penalty (shared miss-handling resources); bandwidth-bound streams
	// do not (the memory system, not the core, is the bottleneck).
	var ns float64
	if seq {
		if a.opts.Policy == Interleaved && lastPage > firstPage {
			// A long scan of an interleaved array alternates
			// sockets page by page: charge each socket its share.
			per := bytes / int64(m.cfg.Sockets)
			for s := 0; s < m.cfg.Sockets; s++ {
				ns += m.streamCost(t, a, s, s == t.Socket, isWrite, per)
			}
		} else {
			ns = m.streamCost(t, a, socket, local, isWrite, bytes)
		}
	} else {
		ns = m.randomCost(t, a, socket, local, isWrite) * t.smtScale
		if n > 1 {
			// Short gather: remaining lines stream behind the
			// leading miss.
			ns += m.streamCost(t, a, socket, local, isWrite, bytes-64)
		}
	}
	t.Advance(ns)
}

// randomCost returns the latency of one random (latency-bound) access.
func (m *Machine) randomCost(t *Thread, a *Array, socket int, local, isWrite bool) float64 {
	c := m.cost
	switch {
	case m.cfg.Mode == MemoryMode:
		hit := t.chance(m.nearMemHitProb(socket))
		if hit {
			t.C.NearMemHits++
			if local {
				return c.NearMemHitLocal
			}
			return c.NearMemHitRemote
		}
		t.C.NearMemMisses++
		lat := c.NearMemMissLocal
		if !local {
			lat = c.NearMemMissRemote
		}
		if isWrite {
			// Write misses allocate: read-fill plus eventual
			// dirty writeback to the media.
			lat *= 1.3
		}
		return lat
	case m.cfg.Mode == AppDirect && a.opts.AppDirect:
		if local {
			return c.AppDirectLatencyLocal
		}
		return c.AppDirectLatencyRemote
	default: // DRAM main memory
		if local {
			return c.DRAMLatencyLocal
		}
		return c.DRAMLatencyRemote
	}
}

// streamCost returns the cost of streaming bytes sequentially, charged at
// the per-thread share of the serving socket's bandwidth.
func (m *Machine) streamCost(t *Thread, a *Array, socket int, local, isWrite bool, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	c := m.cost
	// Bandwidth sharing: the serving socket's bandwidth is divided among
	// the threads streaming against it, approximated as the region's
	// thread count weighted by the fraction of this array placed there.
	share := float64(m.regionThreads) * a.fracOnSocket(socket)
	if share < 1 {
		share = 1
	}
	var bw float64
	switch {
	case m.cfg.Mode == MemoryMode:
		if isWrite {
			bw = c.MMSeqWriteLocal
			if !local {
				bw = c.MMSeqWriteRemote
			}
			// Streaming writes beyond near-memory capacity spill
			// to the Optane media at its sustained write rate.
			rf := m.residentFrac(socket)
			if rf < 1 {
				bw = 1 / (rf/bw + (1-rf)/c.MediaSpillWriteBW)
			}
		} else {
			bw = c.MMSeqReadLocal
			if !local {
				bw = c.MMSeqReadRemote
			}
			rf := m.residentFrac(socket)
			if rf < 1 {
				bw = 1 / (rf/bw + (1-rf)/c.MediaSpillReadBW)
			}
		}
	case m.cfg.Mode == AppDirect && a.opts.AppDirect:
		if isWrite {
			bw = c.ADSeqWriteLocal
			if !local {
				bw = c.ADSeqWriteRemote
			}
		} else {
			bw = c.ADSeqReadLocal
			if !local {
				bw = c.ADSeqReadRemote
			}
		}
	default:
		if isWrite {
			bw = c.DRAMSeqWrite
		} else {
			bw = c.DRAMSeqRead
		}
		if !local && bw > c.DRAMRemoteCap {
			bw = c.DRAMRemoteCap
		}
	}
	return float64(bytes) / (bw / share)
}

// randomBatch charges n independent random line accesses at random-access
// bandwidth (Table 1's "Random" rows). Translation and fault costs are
// charged per distinct page estimated from the footprint.
func (m *Machine) randomBatch(t *Thread, a *Array, n int64, isWrite bool) {
	if n <= 0 {
		return
	}
	bytes := n * 64
	a.addTraffic(bytes, isWrite)
	if isWrite {
		t.C.Writes += uint64(n)
		t.C.BytesWritten += uint64(bytes)
	} else {
		t.C.Reads += uint64(n)
		t.C.BytesRead += uint64(bytes)
	}
	// With accesses scattered uniformly, nearly every access touches a
	// cold page w.r.t. the tiny TLB: charge a page walk per access for
	// 4 KB pages, and per reach-weighted fraction for larger pages.
	pageSize := a.effectivePageSize(t)
	cls := t.tlb.class(pageSize)
	reach := float64(len(cls.pages)) * float64(pageSize)
	missFrac := 1 - reach/float64(a.bytes)
	if missFrac < 0 {
		missFrac = 0
	}
	walk := m.cost.PageWalkDRAM
	if m.cfg.Mode == MemoryMode {
		walk = m.cost.PageWalkOptane
	}
	// With many independent accesses in flight, page walks overlap the
	// data fetches; only a fraction of the walk latency is exposed.
	const walkOverlap = 0.12
	walkNs := missFrac * float64(n) * walk * walkOverlap
	t.C.TLBMisses += uint64(missFrac * float64(n))
	t.C.TLBHits += uint64((1 - missFrac) * float64(n))
	t.C.PageWalkNs += walkNs
	t.Advance(walkNs)

	socket := a.socketOf(0)
	local := socket == t.Socket
	if local {
		t.C.LocalAccesses += uint64(n)
	} else {
		t.C.RemoteAccesses += uint64(n)
	}

	share := float64(m.regionThreads) * a.fracOnSocket(socket)
	if share < 1 {
		share = 1
	}
	c := m.cost
	var bw float64
	switch {
	case m.cfg.Mode == MemoryMode:
		if isWrite {
			bw = c.MMRandWriteLocal
			if !local {
				bw = c.MMRandWriteRemote
			}
		} else {
			bw = c.MMRandReadLocal
			if !local {
				bw = c.MMRandReadRemote
			}
		}
		// Mix in media-speed accesses for the non-resident share.
		hp := m.nearMemHitProb(socket)
		if hp < 1 {
			media := c.ADRandReadLocal
			if isWrite {
				media = c.ADRandWriteLocal
			}
			bw = 1 / (hp/bw + (1-hp)/media)
		}
		t.C.NearMemHits += uint64(hp * float64(n))
		t.C.NearMemMisses += uint64((1 - hp) * float64(n))
	case m.cfg.Mode == AppDirect && a.opts.AppDirect:
		if isWrite {
			bw = c.ADRandWriteLocal
			if !local {
				bw = c.ADRandWriteRemote
			}
		} else {
			bw = c.ADRandReadLocal
			if !local {
				bw = c.ADRandReadRemote
			}
		}
	default:
		if isWrite {
			bw = c.DRAMRandWrite
		} else {
			bw = c.DRAMRandRead
		}
		if !local && bw > c.DRAMRemoteCap {
			bw = c.DRAMRemoteCap
		}
	}
	t.Advance(float64(bytes) / (bw / share))
}

// randomN charges n latency-bound random accesses in expectation. See
// Array.RandomN.
func (m *Machine) randomN(t *Thread, a *Array, n int64, isWrite bool) {
	if n <= 0 {
		return
	}
	fn := float64(n)
	bytes := n * 64
	a.addTraffic(bytes, isWrite)
	if isWrite {
		t.C.Writes += uint64(n)
		t.C.BytesWritten += uint64(bytes)
	} else {
		t.C.Reads += uint64(n)
		t.C.BytesRead += uint64(bytes)
	}

	// Translation: expected miss fraction from TLB reach vs footprint.
	pageSize := a.pageSize
	if a.opts.THP {
		pageSize = PageHuge // THP small-page residue handled below
	}
	cls := t.tlb.class(pageSize)
	reach := float64(len(cls.pages)) * float64(pageSize)
	missFrac := 1 - reach/float64(a.bytes)
	if missFrac < 0 {
		missFrac = 0
	}
	if a.opts.THP {
		// The 4 KB-backed residue of a THP allocation misses almost
		// always under random access.
		missFrac = missFrac*(1-m.thpSmallFraction) + m.thpSmallFraction
	}
	walk := m.cost.PageWalkDRAM
	if m.cfg.Mode == MemoryMode {
		walk = m.cost.PageWalkOptane
	}
	walkNs := missFrac * fn * walk
	t.C.TLBMisses += uint64(missFrac * fn)
	t.C.TLBHits += uint64((1 - missFrac) * fn)
	t.C.PageWalkNs += walkNs

	// Locality: fraction of accesses landing on the thread's socket.
	fl := a.fracOnSocket(t.Socket)
	t.C.LocalAccesses += uint64(fl * fn)
	t.C.RemoteAccesses += uint64((1 - fl) * fn)

	// Expected device latency.
	c := m.cost
	var lat float64
	switch {
	case m.cfg.Mode == MemoryMode:
		// Footprint-weighted hit probability across sockets.
		var hp float64
		for s := 0; s < m.cfg.Sockets; s++ {
			frac := a.fracOnSocket(s)
			if frac > 0 {
				hp += frac * m.nearMemHitProb(s)
			}
		}
		hitLat := fl*c.NearMemHitLocal + (1-fl)*c.NearMemHitRemote
		missLat := fl*c.NearMemMissLocal + (1-fl)*c.NearMemMissRemote
		if isWrite {
			missLat *= 1.3
		}
		lat = hp*hitLat + (1-hp)*missLat
		t.C.NearMemHits += uint64(hp * fn)
		t.C.NearMemMisses += uint64((1 - hp) * fn)
	case m.cfg.Mode == AppDirect && a.opts.AppDirect:
		lat = fl*c.AppDirectLatencyLocal + (1-fl)*c.AppDirectLatencyRemote
	default:
		lat = fl*c.DRAMLatencyLocal + (1-fl)*c.DRAMLatencyRemote
	}

	// On-chip cache short-circuit for small arrays.
	if a.l3Prob > 0 {
		lat = a.l3Prob*c.L3HitLatency + (1-a.l3Prob)*lat
	}

	// Migration daemon in expectation.
	if m.cfg.NUMAMigration && fl < 1 {
		prob := 1.0 / 400.0 * float64(PageSmall) / float64(a.pageSize)
		expMig := (1 - fl) * fn * prob
		if expMig > 0 {
			book := c.MigrationBookkeepDRAM
			if m.cfg.Mode == MemoryMode {
				book = c.MigrationBookkeepOptane
			}
			t.AdvanceKernel(expMig * (book + c.MigrationCopyPerByte*float64(a.pageSize)))
			migs := uint64(expMig)
			if t.chance(expMig - float64(migs)) {
				migs++
			}
			if migs > 0 {
				t.C.Migrations += migs
				t.shootdowns += migs
			}
		}
	}

	t.Advance((lat + walkNs/fn) * fn * t.smtScale)
}
