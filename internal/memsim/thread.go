package memsim

// Thread is one virtual hardware thread inside a Parallel region. It carries
// its own simulated clock, TLB, RNG, and counters, so threads never share
// mutable simulator state and the simulation stays deterministic per thread
// regardless of goroutine interleaving.
type Thread struct {
	m *Machine
	// ID is the virtual thread index within the region, in [0, threads).
	ID int
	// Socket is the NUMA node this thread's core belongs to. Thread
	// pinning is compact: threads fill socket 0's cores, then socket 1's,
	// then wrap for SMT siblings — matching the paper's observation that
	// runs with <= 24 threads keep all threads on one socket.
	Socket int

	// Clock is the thread's simulated time in nanoseconds since the
	// start of the enclosing Parallel region.
	Clock float64
	// C collects this thread's simulated hardware events.
	C Counters

	tlb *tlb
	rng uint64

	// smtScale multiplies charged compute time when SMT siblings share a
	// core (two threads per core each run at ~74% of a full core).
	smtScale float64

	// shootdowns counts the TLB-shootdown batches this thread's migrations
	// generated during the region. The machine sums the per-thread counts
	// in thread-index order at the region barrier and charges the IPIs to
	// every thread, so the total is independent of goroutine interleaving.
	shootdowns uint64

	// touches is this thread's first-touch intent overlay: one lazily
	// allocated bitmap per array recording pages the thread touched first
	// during the current region. The arrays' global touched bitmaps are
	// frozen while a region runs; the machine merges the overlays at the
	// barrier (two-phase first touch), so fault charging depends only on
	// the thread's own access sequence, never on sibling timing.
	touches map[*Array][]uint64

	// Last-touched line memo: consecutive accesses to the same 64-byte
	// line of the same array hit in L1 and cost almost nothing.
	lastArray *Array
	lastLine  int64
}

// threadSocket maps virtual thread IDs to sockets using compact pinning.
func threadSocket(cfg *MachineConfig, id int) int {
	core := id % (cfg.Sockets * cfg.CoresPerSocket)
	return core / cfg.CoresPerSocket
}

// next returns the next value of the thread's xorshift64* RNG.
func (t *Thread) next() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// chance reports true with probability p, deterministically per thread.
func (t *Thread) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(t.next()>>11)/(1<<53) < p
}

// Advance charges ns of user time (compute or memory stall) to the thread.
func (t *Thread) Advance(ns float64) {
	t.Clock += ns
	t.C.UserNs += ns
}

// AdvanceKernel charges ns of simulated kernel time to the thread.
func (t *Thread) AdvanceKernel(ns float64) {
	t.Clock += ns
	t.C.KernelNs += ns
}

// Op charges the fixed per-operator compute cost n times. Kernels call this
// once per operator application so that computation is not free relative to
// memory accesses.
func (t *Thread) Op(n int) {
	t.Advance(t.m.cost.OpCost * float64(n) * t.smtScale)
}

// Decode charges the CPU cost of decompressing `edges` delta+varint edges
// across `blocks` compressed adjacency blocks (cursor setup per block plus
// per-edge decode; see CostParams.DecodePerEdge).
func (t *Thread) Decode(blocks, edges int64) {
	if blocks <= 0 && edges <= 0 {
		return
	}
	c := t.m.cost
	t.Advance((float64(blocks)*c.DecodePerVertex + float64(edges)*c.DecodePerEdge) * t.smtScale)
}
