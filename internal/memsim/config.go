package memsim

import "fmt"

// Mode selects how the machine's memory devices are used.
type Mode int

const (
	// DRAMOnly models a conventional machine: DRAM is main memory and
	// there is no Optane media in the volatile pool (the paper obtains
	// this configuration by putting all PMM modules in app-direct mode
	// and never touching them).
	DRAMOnly Mode = iota
	// MemoryMode models Optane PMM memory mode: Optane is the volatile
	// main memory and each socket's DRAM serves as a direct-mapped,
	// physically indexed near-memory cache with 4 KB lines.
	MemoryMode
	// AppDirect models Optane PMM app-direct mode: DRAM is main memory
	// and Optane is byte-addressable storage. Allocations placed with
	// PlaceAppDirect live on the Optane media; everything else is DRAM.
	AppDirect
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case DRAMOnly:
		return "dram"
	case MemoryMode:
		return "memory-mode"
	case AppDirect:
		return "app-direct"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Page sizes supported by the simulated TLB hierarchy.
const (
	PageSmall = 4 << 10 // 4 KB
	PageHuge  = 2 << 20 // 2 MB
	PageGiant = 1 << 30 // 1 GB
)

// TLBConfig describes the per-thread data TLB. The defaults mirror the
// paper's Cascade Lake test machine: a 4-way data TLB with 64 entries for
// 4 KB pages, 32 entries for 2 MB pages, and 4 entries for 1 GB pages. The
// simulator models each class as fully associative LRU, a standard
// simplification that preserves reach and capacity behaviour.
type TLBConfig struct {
	SmallEntries int
	HugeEntries  int
	GiantEntries int
}

// DefaultTLB returns the Cascade Lake TLB geometry used in the paper.
func DefaultTLB() TLBConfig {
	return TLBConfig{SmallEntries: 64, HugeEntries: 32, GiantEntries: 4}
}

// MachineConfig describes a simulated machine. Capacities follow the
// DESIGN.md scaling rule: the reproduction shrinks the paper machine's
// capacities by 2^10 (GB -> MB) so that scaled-down graphs keep the same
// footprint-to-near-memory ratios as the paper's full-size graphs.
type MachineConfig struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	// ThreadsPerCore is the SMT width; virtual threads beyond the core
	// count share cores and receive a throughput discount.
	ThreadsPerCore int

	// DRAMPerSocket is the DRAM capacity of each socket in bytes. In
	// MemoryMode this is the near-memory cache size.
	DRAMPerSocket int64
	// PMMPerSocket is the Optane capacity of each socket in bytes.
	PMMPerSocket int64

	Mode Mode

	// PageSize is the page size used for explicit allocations (the
	// Galois engine allocates 2 MB huge pages; the other frameworks use
	// 4 KB pages).
	PageSize int64
	// NUMAMigration enables the kernel's automatic NUMA page-migration
	// daemon (§4.2).
	NUMAMigration bool

	// L3PerSocket is the shared last-level cache per socket.
	L3PerSocket int64

	TLB  TLBConfig
	Cost CostParams
}

// Validate reports configuration errors.
func (c MachineConfig) Validate() error {
	if c.Sockets <= 0 {
		return fmt.Errorf("memsim: machine %q: sockets must be positive, got %d", c.Name, c.Sockets)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("memsim: machine %q: cores per socket must be positive, got %d", c.Name, c.CoresPerSocket)
	}
	if c.ThreadsPerCore <= 0 {
		return fmt.Errorf("memsim: machine %q: threads per core must be positive, got %d", c.Name, c.ThreadsPerCore)
	}
	if c.DRAMPerSocket <= 0 {
		return fmt.Errorf("memsim: machine %q: DRAM per socket must be positive, got %d", c.Name, c.DRAMPerSocket)
	}
	if c.Mode != DRAMOnly && c.PMMPerSocket <= 0 {
		return fmt.Errorf("memsim: machine %q: mode %v requires PMM capacity", c.Name, c.Mode)
	}
	switch c.PageSize {
	case PageSmall, PageHuge, PageGiant:
	default:
		return fmt.Errorf("memsim: machine %q: unsupported page size %d", c.Name, c.PageSize)
	}
	return nil
}

// MaxThreads returns the number of hardware threads on the machine.
func (c MachineConfig) MaxThreads() int {
	return c.Sockets * c.CoresPerSocket * c.ThreadsPerCore
}

// Capacity scaling: the paper's machine had 384 GB DRAM + 6 TB PMM; the
// simulation uses MB where the paper has GB.
const scaledGB = 1 << 20 // "1 GB" of the paper == 1 MB simulated

// ScaledBytes converts a capacity expressed in the paper's GB units into
// simulated bytes.
func ScaledBytes(paperGB float64) int64 { return int64(paperGB * scaledGB) }

// OptaneMachine returns the paper's main test machine (§3): 2-socket Cascade
// Lake, 48 cores / 96 threads, 384 GB DRAM, 6 TB Optane PMM, configured in
// memory mode with 2 MB pages and migration off (the recommended §4.4
// configuration) unless altered by the caller.
func OptaneMachine() MachineConfig {
	return MachineConfig{
		Name:           "optane-pmm",
		Sockets:        2,
		CoresPerSocket: 24,
		ThreadsPerCore: 2,
		DRAMPerSocket:  ScaledBytes(192),
		PMMPerSocket:   ScaledBytes(3072),
		Mode:           MemoryMode,
		PageSize:       PageHuge,
		NUMAMigration:  false,
		L3PerSocket:    33 << 15, // 33 MB scaled ~ 1 MB; keep ratio to DRAM
		TLB:            DefaultTLB(),
		Cost:           DefaultCost(),
	}
}

// DRAMMachine returns the same machine with the PMM modules parked in
// app-direct mode and unused, i.e. a 384 GB DRAM-main-memory machine, as the
// paper does for its DDR4 comparison runs.
func DRAMMachine() MachineConfig {
	c := OptaneMachine()
	c.Name = "ddr4-dram"
	c.Mode = DRAMOnly
	return c
}

// AppDirectMachine returns the machine configured for the out-of-core
// experiments (§6.4): DRAM is main memory and the PMM modules are
// app-direct storage.
func AppDirectMachine() MachineConfig {
	c := OptaneMachine()
	c.Name = "optane-app-direct"
	c.Mode = AppDirect
	return c
}

// EntropyMachine returns the paper's large-DRAM control machine (§3):
// 4-socket Skylake, 1.5 TB DRAM; the paper restricts runs to 2 sockets and
// 56 threads.
func EntropyMachine() MachineConfig {
	return MachineConfig{
		Name:           "entropy",
		Sockets:        4,
		CoresPerSocket: 28,
		ThreadsPerCore: 2,
		DRAMPerSocket:  ScaledBytes(384),
		Mode:           DRAMOnly,
		PageSize:       PageHuge,
		NUMAMigration:  false,
		L3PerSocket:    38 << 15,
		TLB:            DefaultTLB(),
		Cost:           DefaultCost(),
	}
}

// StampedeHost returns one Stampede2 SKX host (§3): 2-socket Skylake, 48
// cores, 192 GB DRAM. Used by the distributed simulator.
func StampedeHost() MachineConfig {
	return MachineConfig{
		Name:           "stampede2-skx",
		Sockets:        2,
		CoresPerSocket: 24,
		ThreadsPerCore: 2,
		DRAMPerSocket:  ScaledBytes(96),
		Mode:           DRAMOnly,
		PageSize:       PageHuge,
		NUMAMigration:  false,
		L3PerSocket:    33 << 15,
		TLB:            DefaultTLB(),
		Cost:           DefaultCost(),
	}
}

// Scaled returns cfg with its memory capacities divided by div, used by the
// graph experiments to pair a further-shrunk machine with further-shrunk
// inputs while preserving footprint-to-near-memory ratios (see
// gen.Scale).
func Scaled(cfg MachineConfig, div int64) MachineConfig {
	if div <= 0 {
		div = 1
	}
	cfg.DRAMPerSocket /= div
	if cfg.PMMPerSocket > 0 {
		cfg.PMMPerSocket /= div
	}
	cfg.L3PerSocket /= div
	if cfg.L3PerSocket < 1<<16 {
		cfg.L3PerSocket = 1 << 16
	}
	return cfg
}
