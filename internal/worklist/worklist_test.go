package worklist

import (
	"sync"
	"testing"
	"testing/quick"

	"pmemgraph/internal/graph"
)

func TestBagPushPop(t *testing.T) {
	b := NewBag()
	if !b.Empty() || b.Size() != 0 {
		t.Fatal("new bag not empty")
	}
	b.PushChunk([]graph.Node{1, 2, 3})
	b.PushChunk(nil) // ignored
	if b.Size() != 3 {
		t.Fatalf("size = %d", b.Size())
	}
	c := b.PopChunk()
	if len(c) != 3 {
		t.Fatalf("chunk len = %d", len(c))
	}
	if b.PopChunk() != nil {
		t.Fatal("pop from empty bag returned a chunk")
	}
}

func TestBagDrain(t *testing.T) {
	b := NewBag()
	b.PushChunk([]graph.Node{1, 2})
	b.PushChunk([]graph.Node{3})
	all := b.Drain()
	if len(all) != 3 {
		t.Fatalf("drained %d items", len(all))
	}
	if !b.Empty() {
		t.Fatal("bag not empty after drain")
	}
}

func TestBagConcurrent(t *testing.T) {
	b := NewBag()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := b.NewHandle()
			for i := 0; i < per; i++ {
				h.Push(graph.Node(w*per + i))
			}
			h.Flush()
		}(w)
	}
	wg.Wait()
	if b.Size() != workers*per {
		t.Fatalf("size = %d, want %d", b.Size(), workers*per)
	}
	seen := make(map[graph.Node]bool)
	for {
		c := b.PopChunk()
		if c == nil {
			break
		}
		for _, v := range c {
			if seen[v] {
				t.Fatalf("duplicate %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("drained %d unique items", len(seen))
	}
}

func TestHandleFlushOnChunkBoundary(t *testing.T) {
	b := NewBag()
	h := b.NewHandle()
	for i := 0; i < ChunkSize; i++ {
		h.Push(graph.Node(i))
	}
	// A full chunk must have been auto-published.
	if b.Size() != ChunkSize {
		t.Fatalf("size = %d, want %d after auto-flush", b.Size(), ChunkSize)
	}
	h.Flush() // no-op
	if b.Size() != ChunkSize {
		t.Fatal("empty flush changed size")
	}
}

func TestDenseSetTestClear(t *testing.T) {
	d := NewDense(200)
	if d.Len() != 200 {
		t.Fatalf("len = %d", d.Len())
	}
	if !d.Set(5) {
		t.Fatal("first set returned false")
	}
	if d.Set(5) {
		t.Fatal("second set returned true")
	}
	if !d.Test(5) || d.Test(6) {
		t.Fatal("test wrong")
	}
	if d.Count() != 1 {
		t.Fatalf("count = %d", d.Count())
	}
	d.Clear()
	if d.Count() != 0 || d.Test(5) {
		t.Fatal("clear failed")
	}
}

func TestDenseForEachInRange(t *testing.T) {
	d := NewDense(300)
	want := []graph.Node{0, 63, 64, 65, 127, 128, 255, 299}
	for _, v := range want {
		d.Set(v)
	}
	var got []graph.Node
	d.ForEachInRange(0, 300, func(v graph.Node) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Sub-range iteration respects bounds.
	var sub []graph.Node
	d.ForEachInRange(64, 128, func(v graph.Node) { sub = append(sub, v) })
	for _, v := range sub {
		if v < 64 || v >= 128 {
			t.Fatalf("out-of-range vertex %d", v)
		}
	}
	if len(sub) != 3 { // 64, 65, 127
		t.Fatalf("sub-range found %v", sub)
	}
}

func TestDensePropertySetImpliesTest(t *testing.T) {
	check := func(vals []uint16) bool {
		d := NewDense(1 << 16)
		for _, v := range vals {
			d.Set(graph.Node(v))
		}
		for _, v := range vals {
			if !d.Test(graph.Node(v)) {
				return false
			}
		}
		uniq := map[uint16]bool{}
		for _, v := range vals {
			uniq[v] = true
		}
		return d.Count() == len(uniq)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDoubleSwap(t *testing.T) {
	d := NewDouble(100)
	d.Next.Set(7)
	d.Swap()
	if !d.Cur.Test(7) {
		t.Fatal("swap lost next frontier")
	}
	if d.Next.Count() != 0 {
		t.Fatal("next not cleared after swap")
	}
}

func TestOBIMOrdering(t *testing.T) {
	o := NewOBIM()
	if !o.Empty() || o.CurrentPriority() != -1 {
		t.Fatal("new OBIM not empty")
	}
	o.Push(5, []graph.Node{50})
	o.Push(2, []graph.Node{20})
	o.Push(9, []graph.Node{90})
	if p := o.CurrentPriority(); p != 2 {
		t.Fatalf("current priority = %d, want 2", p)
	}
	o.Bucket(2).PopChunk()
	if p := o.CurrentPriority(); p != 5 {
		t.Fatalf("after draining 2, priority = %d, want 5", p)
	}
	// Pushing below the cursor re-opens earlier work.
	o.Push(1, []graph.Node{10})
	if p := o.CurrentPriority(); p != 1 {
		t.Fatalf("re-opened priority = %d, want 1", p)
	}
}

func TestOBIMEmptyChunkIgnored(t *testing.T) {
	o := NewOBIM()
	o.Push(3, nil)
	if !o.Empty() {
		t.Fatal("empty chunk created work")
	}
}

func TestFullActivatesEveryVertex(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		d := Full(n)
		if d.Count() != n {
			t.Errorf("Full(%d).Count() = %d", n, d.Count())
		}
		for v := 0; v < n; v++ {
			if !d.Test(graph.Node(v)) {
				t.Errorf("Full(%d): vertex %d inactive", n, v)
			}
		}
		// No phantom bits beyond n.
		got := 0
		d.ForEachInRange(0, graph.Node(n), func(graph.Node) { got++ })
		if got != n {
			t.Errorf("Full(%d) iterates %d vertices", n, got)
		}
	}
}

func TestDenseSparseConversionRoundTrip(t *testing.T) {
	vs := []graph.Node{0, 5, 63, 64, 99}
	d := FromVertices(100, vs)
	if d.Count() != len(vs) {
		t.Fatalf("count = %d", d.Count())
	}
	out := d.Vertices(nil)
	if len(out) != len(vs) {
		t.Fatalf("vertices = %v", out)
	}
	for i := range vs {
		if out[i] != vs[i] {
			t.Errorf("out[%d] = %d, want %d (ascending order)", i, out[i], vs[i])
		}
	}
}

func TestVerticesAppendsToBuffer(t *testing.T) {
	d := FromVertices(64, []graph.Node{7})
	buf := []graph.Node{1, 2}
	out := d.Vertices(buf)
	if len(out) != 3 || out[2] != 7 {
		t.Errorf("Vertices append = %v", out)
	}
}

func TestUnsetClearsOnlyTargetBit(t *testing.T) {
	d := FromVertices(128, []graph.Node{3, 64, 100})
	d.Unset(64)
	if d.Test(64) {
		t.Error("unset vertex still active")
	}
	if !d.Test(3) || !d.Test(100) {
		t.Error("Unset cleared unrelated bits")
	}
	if d.Count() != 2 {
		t.Errorf("count = %d, want 2", d.Count())
	}
}
