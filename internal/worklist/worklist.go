// Package worklist implements the worklist taxonomy of §5.1 of the paper:
//
//   - Dense: a bit-vector of size |V| marking active vertices (the only
//     frontier representation in Ligra/GBBS/GraphIt-style systems).
//   - Sparse (Bag): an explicit chunked list of active vertices, the
//     Galois-style structure that makes asynchronous data-driven
//     algorithms possible.
//   - Double-buffered pairs of either, for bulk-synchronous rounds.
//   - OBIM: an ordered sequence of sparse bags indexed by priority, the
//     scheduler behind delta-stepping sssp.
//
// All structures are safe for concurrent use by the virtual threads of one
// memsim parallel region. The structures are pure data structures; the
// simulated cost of reading and writing them is charged by the kernels
// through their memsim arrays.
package worklist

import (
	"sync"
	"sync/atomic"

	"pmemgraph/internal/graph"
)

// ChunkSize is the number of vertices per sparse-worklist chunk; Galois
// uses chunked FIFOs of similar granularity.
const ChunkSize = 512

// Bag is a concurrent bag of vertex chunks (a sparse worklist).
type Bag struct {
	mu     sync.Mutex
	chunks [][]graph.Node
	size   atomic.Int64
}

// NewBag returns an empty bag.
func NewBag() *Bag { return &Bag{} }

// PushChunk adds a chunk of vertices. Empty chunks are ignored.
func (b *Bag) PushChunk(chunk []graph.Node) {
	if len(chunk) == 0 {
		return
	}
	b.mu.Lock()
	b.chunks = append(b.chunks, chunk)
	b.mu.Unlock()
	b.size.Add(int64(len(chunk)))
}

// PopChunk removes and returns one chunk, or nil if the bag is empty.
func (b *Bag) PopChunk() []graph.Node {
	b.mu.Lock()
	n := len(b.chunks)
	if n == 0 {
		b.mu.Unlock()
		return nil
	}
	c := b.chunks[n-1]
	b.chunks = b.chunks[:n-1]
	b.mu.Unlock()
	b.size.Add(-int64(len(c)))
	return c
}

// Size returns the number of vertices currently in the bag.
func (b *Bag) Size() int64 { return b.size.Load() }

// Empty reports whether the bag holds no vertices.
func (b *Bag) Empty() bool { return b.size.Load() == 0 }

// Drain empties the bag and returns all vertices in one slice (used
// between bulk-synchronous rounds).
func (b *Bag) Drain() []graph.Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int
	for _, c := range b.chunks {
		total += len(c)
	}
	out := make([]graph.Node, 0, total)
	for _, c := range b.chunks {
		out = append(out, c...)
	}
	b.chunks = b.chunks[:0]
	b.size.Store(0)
	return out
}

// Handle is a per-thread push buffer over a Bag: pushes accumulate locally
// and publish in chunks, avoiding a lock per vertex.
type Handle struct {
	bag *Bag
	buf []graph.Node
}

// NewHandle returns a push handle bound to bag.
func (b *Bag) NewHandle() *Handle {
	return &Handle{bag: b, buf: make([]graph.Node, 0, ChunkSize)}
}

// Push adds one vertex to the handle's local chunk, publishing it when
// full.
func (h *Handle) Push(v graph.Node) {
	h.buf = append(h.buf, v)
	if len(h.buf) >= ChunkSize {
		h.Flush()
	}
}

// Flush publishes any locally buffered vertices.
func (h *Handle) Flush() {
	if len(h.buf) == 0 {
		return
	}
	chunk := make([]graph.Node, len(h.buf))
	copy(chunk, h.buf)
	h.bag.PushChunk(chunk)
	h.buf = h.buf[:0]
}

// Dense is a bit-vector worklist over |V| vertices with atomic activation.
type Dense struct {
	words []atomic.Uint64
	n     int
}

// NewDense returns an empty dense worklist for n vertices.
func NewDense(n int) *Dense {
	return &Dense{words: make([]atomic.Uint64, (n+63)/64), n: n}
}

// Full returns a dense worklist with every vertex active (the initial
// frontier of topology-driven rounds).
func Full(n int) *Dense {
	d := NewDense(n)
	for i := range d.words {
		d.words[i].Store(^uint64(0))
	}
	if rem := n & 63; rem != 0 && len(d.words) > 0 {
		d.words[len(d.words)-1].Store((uint64(1) << rem) - 1)
	}
	return d
}

// FromVertices returns a dense worklist with exactly vs active (the
// sparse-to-dense frontier conversion).
func FromVertices(n int, vs []graph.Node) *Dense {
	d := NewDense(n)
	for _, v := range vs {
		d.Set(v)
	}
	return d
}

// Vertices appends every active vertex in ascending ID order to buf and
// returns the extended slice (the dense-to-sparse frontier conversion).
func (d *Dense) Vertices(buf []graph.Node) []graph.Node {
	for w := range d.words {
		bits := d.words[w].Load()
		for bits != 0 {
			b := bits & (-bits)
			buf = append(buf, graph.Node(w)<<6+graph.Node(trailingZeros(bits)))
			bits ^= b
		}
	}
	return buf
}

// Len returns the vertex capacity |V|.
func (d *Dense) Len() int { return d.n }

// WordCount returns the number of 64-bit words backing the bit-vector
// (the unit kernels charge when scanning the frontier).
func (d *Dense) WordCount() int { return len(d.words) }

// Set activates v, reporting whether it was newly activated.
func (d *Dense) Set(v graph.Node) bool {
	w := &d.words[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// Test reports whether v is active.
func (d *Dense) Test(v graph.Node) bool {
	return d.words[v>>6].Load()&(1<<(v&63)) != 0
}

// Unset deactivates v (used to clear a reused dedup set in O(|cleared|)
// instead of O(|V|)).
func (d *Dense) Unset(v graph.Node) {
	d.words[v>>6].And(^(uint64(1) << (v & 63)))
}

// Clear deactivates all vertices.
func (d *Dense) Clear() {
	for i := range d.words {
		d.words[i].Store(0)
	}
}

// Count returns the number of active vertices.
func (d *Dense) Count() int {
	total := 0
	for i := range d.words {
		total += popcount(d.words[i].Load())
	}
	return total
}

// ForEachInRange calls fn for every active vertex in [lo, hi); used by
// kernels to iterate a thread's share of the frontier.
func (d *Dense) ForEachInRange(lo, hi graph.Node, fn func(v graph.Node)) {
	for w := lo >> 6; w <= (hi-1)>>6 && int(w) < len(d.words); w++ {
		bits := d.words[w].Load()
		for bits != 0 {
			b := bits & (-bits)
			v := w<<6 + graph.Node(trailingZeros(bits))
			bits ^= b
			if v >= lo && v < hi {
				fn(v)
			}
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Double is a pair of dense worklists for bulk-synchronous rounds.
type Double struct {
	Cur, Next *Dense
}

// NewDouble returns a double-buffered dense worklist for n vertices.
func NewDouble(n int) *Double {
	return &Double{Cur: NewDense(n), Next: NewDense(n)}
}

// Swap makes Next current and clears the new Next.
func (d *Double) Swap() {
	d.Cur, d.Next = d.Next, d.Cur
	d.Next.Clear()
}

// OBIM is an ordered-by-integer-metric scheduler: a sequence of sparse bags
// indexed by priority (delta-stepping buckets). Priorities are processed in
// ascending order; pushing below the cursor re-opens that priority.
type OBIM struct {
	mu      sync.Mutex
	buckets map[int]*Bag
	cursor  int
}

// NewOBIM returns an empty scheduler.
func NewOBIM() *OBIM {
	return &OBIM{buckets: make(map[int]*Bag)}
}

// Push adds v at priority p.
func (o *OBIM) Push(p int, chunk []graph.Node) {
	if len(chunk) == 0 {
		return
	}
	o.mu.Lock()
	b := o.buckets[p]
	if b == nil {
		b = NewBag()
		o.buckets[p] = b
	}
	if p < o.cursor {
		o.cursor = p
	}
	o.mu.Unlock()
	b.PushChunk(chunk)
}

// CurrentPriority returns the lowest priority holding work, or -1 if the
// scheduler is empty. It also advances the internal cursor past drained
// buckets.
func (o *OBIM) CurrentPriority() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	best := -1
	for p, b := range o.buckets {
		if b.Empty() {
			continue
		}
		if best == -1 || p < best {
			best = p
		}
	}
	if best >= 0 {
		o.cursor = best
	}
	return best
}

// Bucket returns the bag at priority p, or nil.
func (o *OBIM) Bucket(p int) *Bag {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.buckets[p]
}

// Empty reports whether no bucket holds work.
func (o *OBIM) Empty() bool {
	return o.CurrentPriority() == -1
}
