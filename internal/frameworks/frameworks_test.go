package frameworks

import (
	"fmt"
	"strings"
	"testing"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/memsim"
)

func testMachine() *memsim.Machine {
	return memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
}

func TestProfileInventoryMatchesPaper(t *testing.T) {
	// §6.1: kcore missing from GAP and GraphIt; bc missing from GraphIt.
	if GAP.Supports("kcore") || GraphIt.Supports("kcore") {
		t.Error("GAP/GraphIt should not implement kcore")
	}
	if GraphIt.Supports("bc") {
		t.Error("GraphIt should not implement bc")
	}
	for _, app := range Apps() {
		if !Galois.Supports(app) || !GBBS.Supports(app) {
			t.Errorf("Galois and GBBS should support %s", app)
		}
	}
	if len(All()) != 4 {
		t.Error("expected 4 frameworks")
	}
}

func TestOnlyGaloisUsesHugePagesAndSparseWorklists(t *testing.T) {
	for _, p := range All() {
		if p.Name == "Galois" {
			if !p.ExplicitHugePages || !p.SparseWorklists || !p.NonVertexPrograms || !p.AppNUMA {
				t.Error("Galois profile missing its §6.1 capabilities")
			}
			continue
		}
		if p.ExplicitHugePages || p.SparseWorklists || p.NonVertexPrograms || p.AppNUMA {
			t.Errorf("%s should not have Galois-only capabilities", p.Name)
		}
		if !p.BothDirections {
			t.Errorf("%s should allocate both directions", p.Name)
		}
	}
}

func TestOptionsPageSizes(t *testing.T) {
	g := Galois.Options("bfs", 8)
	if g.PageSize != memsim.PageHuge || g.THP {
		t.Error("Galois should use explicit huge pages")
	}
	o := GAP.Options("bfs", 8)
	if o.PageSize != memsim.PageSmall || !o.THP {
		t.Error("GAP should use 4KB pages with THP")
	}
}

func TestGaloisPerAppPolicies(t *testing.T) {
	bfs := Galois.Options("bfs", 8)
	if bfs.GraphPolicy != memsim.Interleaved {
		t.Error("Galois bfs should interleave")
	}
	pr := Galois.Options("pr", 8)
	if pr.GraphPolicy != memsim.Blocked {
		t.Error("Galois pr should use blocked placement")
	}
	bc := Galois.Options("bc", 8)
	if bc.GraphPolicy != memsim.Blocked {
		t.Error("Galois bc should use blocked placement")
	}
}

func TestDefaultParams(t *testing.T) {
	g := gen.Star(100)
	p := DefaultParams(g)
	if p.Source != 0 {
		t.Errorf("source = %d, want star center 0", p.Source)
	}
	if p.K < 2 {
		t.Errorf("k = %d", p.K)
	}
	if p.Tol <= 0 || p.Rounds <= 0 {
		t.Error("pr params unset")
	}
	dense := gen.Complete(60)
	if DefaultParams(dense).K <= DefaultParams(g).K {
		t.Error("denser graph should get larger k")
	}
}

func TestRunRejectsUnsupportedApp(t *testing.T) {
	g := gen.Path(10)
	if _, err := GraphIt.RunOn(testMachine(), g, "bc", 4, DefaultParams(g)); err == nil {
		t.Error("GraphIt bc should fail")
	}
	if _, err := GAP.RunOn(testMachine(), g, "kcore", 4, DefaultParams(g)); err == nil {
		t.Error("GAP kcore should fail")
	}
	if _, err := Galois.RunOn(testMachine(), g, "nonsense", 4, DefaultParams(g)); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAllFrameworksRunAllSupportedApps(t *testing.T) {
	g := gen.ErdosRenyi(400, 3200, 9)
	params := DefaultParams(g)
	for _, p := range All() {
		for _, app := range Apps() {
			if !p.Supports(app) {
				continue
			}
			res, err := p.RunOn(testMachine(), g, app, 8, params)
			if err != nil {
				t.Errorf("%s/%s: %v", p.Name, app, err)
				continue
			}
			if res.Seconds <= 0 {
				t.Errorf("%s/%s: no simulated time", p.Name, app)
			}
			if res.App != app {
				t.Errorf("%s/%s: result app = %q", p.Name, app, res.App)
			}
		}
	}
}

// TestCapabilityGateMatrix pins the full §6.1 profile × kernel matrix
// from an explicit table — not from the Supports bits themselves, so a
// regression in the profile definitions cannot silently re-shape the
// matrix. Every supported pair must execute; every unsupported pair must
// return the documented capability error.
func TestCapabilityGateMatrix(t *testing.T) {
	// true = the paper reports a number for this (framework, app) cell.
	expected := map[string]map[string]bool{
		"Galois":  {"bc": true, "bfs": true, "cc": true, "kcore": true, "pr": true, "sssp": true, "tc": true},
		"GAP":     {"bc": true, "bfs": true, "cc": true, "kcore": false, "pr": true, "sssp": true, "tc": true},
		"GBBS":    {"bc": true, "bfs": true, "cc": true, "kcore": true, "pr": true, "sssp": true, "tc": true},
		"GraphIt": {"bc": false, "bfs": true, "cc": true, "kcore": false, "pr": true, "sssp": true, "tc": true},
	}
	// The capability flags also select which algorithm each profile can
	// express for the variant-bearing apps (§6.1). Engine-based kernels
	// label themselves by traversal, so GraphIt's bulk-synchronous
	// Bellman-Ford and plain label propagation both read "dir-opt" — the
	// key assertion is that its missing bucketed worklists and non-vertex
	// operators keep delta-step and labelprop-sc out of reach.
	expectedAlgo := map[string]map[string]string{
		"Galois":  {"sssp": "delta-step", "cc": "labelprop-sc"},
		"GAP":     {"sssp": "delta-step", "cc": "pointer-jump"},
		"GBBS":    {"sssp": "delta-step", "cc": "pointer-jump"},
		"GraphIt": {"sssp": "dir-opt", "cc": "dir-opt"},
	}
	if len(All()) != len(expected) {
		t.Fatalf("profile count %d does not match expectation table", len(All()))
	}
	g := gen.ErdosRenyi(400, 3200, 9)
	params := DefaultParams(g)
	for _, p := range All() {
		row, ok := expected[p.Name]
		if !ok {
			t.Fatalf("no expectation row for profile %s", p.Name)
		}
		for _, app := range Apps() {
			res, err := p.RunOn(testMachine(), g, app, 8, params)
			if row[app] {
				if err != nil {
					t.Errorf("%s/%s: supported pair failed: %v", p.Name, app, err)
					continue
				}
				if res.App != app || res.Seconds <= 0 {
					t.Errorf("%s/%s: bad result app=%q seconds=%v", p.Name, app, res.App, res.Seconds)
				}
				if want := expectedAlgo[p.Name][app]; want != "" && res.Algorithm != want {
					t.Errorf("%s/%s: algorithm %q, want %q", p.Name, app, res.Algorithm, want)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s/%s: unsupported pair executed", p.Name, app)
				continue
			}
			want := fmt.Sprintf("%s does not implement %s", p.Name, app)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s/%s: error %q does not contain the documented capability message %q", p.Name, app, err, want)
			}
		}
	}
}

func TestFrameworksAgreeOnAnswers(t *testing.T) {
	g := gen.WebCrawl(2500, 6, 50, 31)
	params := DefaultParams(g)
	var bfsDists [][]uint32
	for _, p := range All() {
		res, err := p.RunOn(testMachine(), g, "bfs", 8, params)
		if err != nil {
			t.Fatalf("%s bfs: %v", p.Name, err)
		}
		bfsDists = append(bfsDists, res.Dist)
	}
	for i := 1; i < len(bfsDists); i++ {
		for v := range bfsDists[0] {
			if bfsDists[i][v] != bfsDists[0][v] {
				t.Fatalf("framework %d disagrees on dist[%d]", i, v)
			}
		}
	}
}

func TestGaloisFastestOnHighDiameterBFS(t *testing.T) {
	// Figure 9's qualitative claim: Galois beats the dense/vertex-only
	// frameworks on high-diameter inputs.
	g := gen.WebCrawl(15000, 8, 300, 41)
	params := DefaultParams(g)
	galois, err := Galois.RunOn(testMachine(), g, "bfs", 16, params)
	if err != nil {
		t.Fatal(err)
	}
	graphit, err := GraphIt.RunOn(testMachine(), g, "bfs", 16, params)
	if err != nil {
		t.Fatal(err)
	}
	if galois.Seconds >= graphit.Seconds {
		t.Errorf("Galois bfs (%.4fs) should beat GraphIt (%.4fs) on a high-diameter web crawl", galois.Seconds, graphit.Seconds)
	}
}
