// Package frameworks encodes the four shared-memory graph frameworks the
// paper evaluates — Galois, GAP, GBBS (Ligra) and GraphIt — as constraint
// profiles over the core runtime and the shared operator-engine kernels
// (§6.1). A profile is not a table of kernel variants: it is a set of
// capabilities translated into engine parameters (frontier representation,
// direction policy, conversion threshold) and runtime options (pages,
// NUMA, edge directions), under which the one kernel per app specializes
// into the behavior the paper measured:
//
//	               Galois      GAP         GBBS        GraphIt
//	pages          2MB expl.   4KB+THP     4KB+THP     4KB+THP
//	NUMA           app-chosen  numactl     numactl     numactl
//	directions     as needed   both        both        both
//	worklists      sparse+dense dense      dense       dense
//	programs       non-vertex  vertex      vertex      vertex only
//	buckets        OBIM        yes         Julienne    no
//	sssp           delta-step  delta-step  delta-step  Bellman-Ford
//	cc             LP-shortcut ptr-jump    ptr-jump    label prop
//	bc             sparse      dense       dense       (missing)
//	kcore          sparse peel (missing)   dense peel  (missing)
//
// GAP and GraphIt additionally store node IDs in signed 32-bit ints and
// cannot load graphs with more than 2^31-1 nodes (the paper omits wdc12
// for them); the profile records that limit so the harness can reproduce
// the omission.
//
// This is the dispatch layer between the serving layer / harness above
// and the kernels below: it charges nothing itself (runtimes built here
// charge through core/engine), and a profile execution inherits the
// engine's determinism — RunOn and friends are pure functions of
// (machine config, graph, app, options, params), including the
// incremental entry point RunIncrementalOnOpts, whose outputs are bitwise
// those of a full recompute whether it runs seeded or falls back.
package frameworks

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
	"pmemgraph/internal/shard"
)

// Profile describes one framework's constraints. A profile is executed by
// translating these capabilities into operator-engine parameters (frontier
// representation, direction policy, conversion threshold — see Engine)
// plus runtime options (pages, NUMA, directions — see Options); the
// kernels themselves are shared.
type Profile struct {
	Name string

	// ExplicitHugePages: Galois allocates 2 MB pages itself; the others
	// use 4 KB pages and rely on THP.
	ExplicitHugePages bool
	// AppNUMA: the framework chooses NUMA policy per allocation; false
	// means everything is numactl-interleaved.
	AppNUMA bool
	// BothDirections: allocates in- and out-edges regardless of need.
	BothDirections bool
	// SparseWorklists: supports Galois-style sparse worklists (and with
	// them asynchronous data-driven algorithms). Frameworks without them
	// run every frontier as a dense bit-vector.
	SparseWorklists bool
	// NonVertexPrograms: operators may touch arbitrary neighborhoods
	// (label-chain shortcutting, asynchronous scheduling).
	NonVertexPrograms bool
	// BucketedWorklists: ordered (priority-bucketed) scheduling is
	// expressible, enabling delta-stepping sssp. True for Galois (OBIM),
	// GAP and GBBS (Julienne-style buckets); GraphIt's DSL cannot
	// express it (§6.1).
	BucketedWorklists bool
	// ArbitraryOps: operators may perform per-vertex memory operations
	// beyond neighbor reductions (pointer jumping for cc). True for the
	// library frameworks; false for the GraphIt DSL.
	ArbitraryOps bool
	// Signed32NodeIDs caps loadable graphs at 2^31-1 nodes.
	Signed32NodeIDs bool
	// DenseFrac overrides the engine's frontier-conversion and
	// direction-switch threshold |E|/20 (0 = default).
	DenseFrac int64

	// Apps lists the supported benchmarks.
	Apps map[string]bool
}

// Engine translates the profile into operator-engine parameters: frontier
// representation (sparse-capable frameworks auto-convert, the rest are
// dense-only), direction-optimizing traversal (available everywhere; it
// degrades to push when the runtime holds no transpose), and the
// conversion threshold.
func (p Profile) Engine() engine.Config {
	cfg := engine.Config{Dir: engine.DirAuto, DenseFrac: p.DenseFrac, PullFrac: p.DenseFrac}
	if p.SparseWorklists {
		cfg.Rep = engine.RepAuto
	} else {
		cfg.Rep = engine.RepDense
	}
	return cfg
}

// The paper's four frameworks.
var (
	Galois = Profile{
		Name:              "Galois",
		ExplicitHugePages: true,
		AppNUMA:           true,
		SparseWorklists:   true,
		NonVertexPrograms: true,
		BucketedWorklists: true,
		ArbitraryOps:      true,
		Apps:              appSet("bc", "bfs", "cc", "kcore", "pr", "sssp", "tc"),
	}
	GAP = Profile{
		Name:              "GAP",
		BothDirections:    true,
		BucketedWorklists: true,
		ArbitraryOps:      true,
		Signed32NodeIDs:   true,
		Apps:              appSet("bc", "bfs", "cc", "pr", "sssp", "tc"),
	}
	GBBS = Profile{
		Name:              "GBBS",
		BothDirections:    true,
		BucketedWorklists: true,
		ArbitraryOps:      true,
		Apps:              appSet("bc", "bfs", "cc", "kcore", "pr", "sssp", "tc"),
	}
	GraphIt = Profile{
		Name:            "GraphIt",
		BothDirections:  true,
		Signed32NodeIDs: true,
		Apps:            appSet("bfs", "cc", "pr", "sssp", "tc"),
	}
)

// All returns the four profiles in the paper's presentation order.
func All() []Profile { return []Profile{GraphIt, GAP, GBBS, Galois} }

// ByName returns the profile with the given name (exact match against
// "Galois", "GAP", "GBBS", "GraphIt"), used by callers that address
// frameworks as strings (the serving layer, the facade's RunAs).
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

func appSet(apps ...string) map[string]bool {
	m := make(map[string]bool, len(apps))
	for _, a := range apps {
		m[a] = true
	}
	return m
}

// Supports reports whether the framework implements app.
func (p Profile) Supports(app string) bool { return p.Apps[app] }

// CanLoad reports whether the framework can load g (the 32-bit node ID
// limitation).
func (p Profile) CanLoad(g *graph.Graph) bool {
	return !p.Signed32NodeIDs || int64(g.NumNodes()) <= (1<<31)-1
}

// Options builds the core runtime options this framework uses for app.
// Galois picks per-app policies (§6.1: interleaved for bfs/cc/sssp,
// blocked for bc/pr, needed directions only); the others always use OS
// interleave, small pages with THP, and both directions.
func (p Profile) Options(app string, threads int) core.Options {
	opts := core.Options{
		Threads:        threads,
		GraphPolicy:    memsim.Interleaved,
		NodePolicy:     memsim.Interleaved,
		BothDirections: p.BothDirections,
		Weighted:       app == "sssp",
	}
	if p.ExplicitHugePages {
		opts.PageSize = memsim.PageHuge
	} else {
		opts.PageSize = memsim.PageSmall
		opts.THP = true
	}
	if p.AppNUMA {
		switch app {
		case "bc", "pr":
			opts.GraphPolicy = memsim.Blocked
			opts.NodePolicy = memsim.Blocked
		}
	}
	// Apps that structurally need the transpose regardless of framework.
	switch app {
	case "pr", "kcore":
		opts.BothDirections = true
	case "cc":
		if !p.SparseWorklists {
			// pointer-jump works on out-edges, but plain label
			// propagation (GraphIt) needs both.
			opts.BothDirections = true
		} else {
			opts.BothDirections = true // LP-shortcut propagates both ways
		}
	case "bfs":
		if !p.SparseWorklists {
			opts.BothDirections = true // direction-optimizing
		}
	}
	return opts
}

// DefaultWeightMax and DefaultWeightSeed are the parameters of the
// pseudo-random edge weights added to unweighted inputs for sssp (§3:
// "all graphs are unweighted, so we generate random weights"). They are
// exported so graph owners that pre-materialize weights (the serving
// layer's registry seals graphs before sharing them across concurrent
// jobs) produce exactly the weights RunOn would have added lazily.
const (
	DefaultWeightMax  = 64
	DefaultWeightSeed = 0xC0FFEE
)

// Params carries per-app parameters for Run.
type Params struct {
	Source graph.Node // bc, bfs, sssp
	Delta  uint32     // sssp delta-stepping bucket width
	K      int64      // kcore threshold
	Tol    float64    // pr tolerance
	Rounds int        // pr max rounds
}

// DefaultParams fills the paper's defaults (§3) adjusted for a given
// graph: source = max out-degree node, k scaled to the input's density.
func DefaultParams(g *graph.Graph) Params {
	src, _ := g.MaxOutDegreeNode()
	return defaultParams(src, g.NumNodes(), g.NumEdges())
}

// DefaultParamsOverlay is DefaultParams computed on an overlay epoch's
// merged view (same tie rule for the source pick, merged edge count for
// the density scaling), so a job on an overlay epoch and on the same
// epoch rebuilt from scratch default to identical parameters.
func DefaultParamsOverlay(ov *graph.Overlay) Params {
	src, _ := ov.MaxOutDegreeNode()
	return defaultParams(src, ov.NumNodes(), ov.NumEdges())
}

func defaultParams(src graph.Node, nodes int, edges int64) Params {
	avg := int64(1)
	if nodes > 0 {
		avg = edges / int64(nodes)
	}
	k := int64(analytics.KCoreDefaultK)
	// The paper's k=100 is ~2-6x the average degree of its inputs;
	// scaled inputs keep that ratio.
	if scaled := 3 * avg; scaled < k {
		k = scaled
	}
	if k < 2 {
		k = 2
	}
	return Params{
		Source: src,
		Delta:  64,
		K:      k,
		Tol:    analytics.PRDefaultTolerance,
		Rounds: analytics.PRDefaultMaxRounds,
	}
}

// Run executes app under this framework's constraints on the runtime r
// (which must have been built with p.Options(app, threads)). The profile
// reaches the shared kernels as engine parameters (p.Engine()) plus the
// capability flags that gate whole algorithm families — there is no
// per-framework kernel-variant table.
func (p Profile) Run(r *core.Runtime, app string, params Params) (*analytics.Result, error) {
	if !p.Supports(app) {
		return nil, fmt.Errorf("frameworks: %s does not implement %s", p.Name, app)
	}
	if !p.CanLoad(r.G) {
		return nil, fmt.Errorf("frameworks: %s cannot load %d nodes (signed 32-bit node IDs)", p.Name, r.G.NumNodes())
	}
	cfg := p.Engine()
	switch app {
	case "bfs":
		return analytics.BFS(r, cfg, params.Source), nil
	case "sssp":
		if p.BucketedWorklists {
			return analytics.SSSPDeltaStep(r, params.Source, params.Delta), nil
		}
		// Without priority buckets the only expressible sssp is
		// bulk-synchronous Bellman-Ford (§6.1).
		return analytics.SSSPBellmanFord(r, cfg, params.Source), nil
	case "cc":
		switch {
		case p.NonVertexPrograms:
			return analytics.CCLabelProp(r, cfg, true), nil
		case p.ArbitraryOps:
			return analytics.CCPointerJump(r), nil
		default:
			return analytics.CCLabelProp(r, cfg, false), nil
		}
	case "pr":
		return analytics.PageRank(r, params.Tol, params.Rounds), nil
	case "bc":
		return analytics.Brandes(r, cfg, params.Source), nil
	case "kcore":
		return analytics.KCore(r, cfg, params.K), nil
	case "tc":
		return analytics.TC(r), nil
	default:
		return nil, fmt.Errorf("frameworks: unknown app %q", app)
	}
}

// RunOn is the convenience wrapper used by the harness: build a runtime on
// m for (p, app), execute, and close it.
func (p Profile) RunOn(m *memsim.Machine, g *graph.Graph, app string, threads int, params Params) (*analytics.Result, error) {
	return p.RunOnBackend(m, g, app, threads, params, core.BackendRaw)
}

// RunOnBackend is RunOn with an explicit storage-backend selection for the
// CSR arrays (the serving layer chooses per job). Kernel results are
// byte-identical across backends; only simulated traffic and time differ.
func (p Profile) RunOnBackend(m *memsim.Machine, g *graph.Graph, app string, threads int, params Params, backend core.Backend) (*analytics.Result, error) {
	opts := p.Options(app, threads)
	opts.Backend = backend
	return p.RunOnOpts(m, g, app, opts, params)
}

// RunOnOpts executes app over explicit runtime options. Callers that also
// derive something else from the options (the serving layer's cache key)
// use this so the executed configuration and the derived one cannot
// drift; opts should come from p.Options plus deliberate overrides.
func (p Profile) RunOnOpts(m *memsim.Machine, g *graph.Graph, app string, opts core.Options, params Params) (*analytics.Result, error) {
	r, err := buildRuntime(m, g, nil, opts)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return p.Run(r, app, params)
}

// RunOverlayOnOpts is RunOnOpts over an overlay epoch: the runtime charges
// the sealed base exactly as a plain run would plus the overlay's delta
// entries as separate small arrays. Outputs are byte-identical to
// RunOnOpts over ov.Materialize() sealed the same way — the conformance
// bar the delta-overlay form is held to.
func (p Profile) RunOverlayOnOpts(m *memsim.Machine, ov *graph.Overlay, app string, opts core.Options, params Params) (*analytics.Result, error) {
	r, err := buildRuntime(m, ov.Base(), ov, opts)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return p.Run(r, app, params)
}

// buildRuntime constructs the plain or overlay runtime RunOnOpts-family
// helpers share. Plain bases are weight-sealed on demand; overlay bases
// must have been sealed BEFORE ApplyOverlay (the overlay's delta
// structures are derived from the base at that moment), so a weighted run
// over an unweighted overlay is refused by core.NewOverlay rather than
// silently reseeded here.
func buildRuntime(m *memsim.Machine, g *graph.Graph, ov *graph.Overlay, opts core.Options) (*core.Runtime, error) {
	if ov != nil {
		return core.NewOverlay(m, ov, opts)
	}
	if opts.Weighted && !g.HasWeights() {
		g.AddRandomWeights(DefaultWeightMax, DefaultWeightSeed)
	}
	return core.New(m, g, opts)
}

// Apps returns the paper's benchmark names in presentation order.
func Apps() []string { return []string{"bc", "bfs", "cc", "kcore", "pr", "sssp", "tc"} }

// ShardedApp reports whether app has a sharded BSP kernel. tc is the one
// benchmark without one: its intersection operator is not a scatter/gather
// vertex program.
func ShardedApp(app string) bool {
	switch app {
	case "bc", "bfs", "cc", "kcore", "pr", "sssp":
		return true
	}
	return false
}

// RunShardedOnOpts executes app over a partitioned graph as scatter/gather
// BSP supersteps: one shard worker per partition range, each with its own
// machine (built from the machine config) and backend, coordinated by
// internal/shard. This is framework-independent — BSP vertex programs are
// the common denominator every framework can express — so unlike RunOnOpts
// it is not a Profile method.
//
// Outputs are bitwise identical across shard counts, GOMAXPROCS, and
// backends (the shard conformance suite locks all three axes), and a
// 1-shard run matches the app's round-based single-machine kernel.
//
// The partition's source must be sealed for the app before partitioning:
// locals alias the source arrays, so weights (sssp) and the transpose
// (cc/pr/kcore) cannot be added after the fact — missing seals are refused
// here rather than repaired.
func RunShardedOnOpts(machine memsim.MachineConfig, part *graph.Partition, app string, opts core.Options, params Params) (*analytics.Result, error) {
	g := part.Source()
	switch app {
	case "sssp":
		if !g.HasWeights() {
			return nil, fmt.Errorf("frameworks: sharded sssp needs weights sealed before partitioning")
		}
	case "cc", "pr", "kcore":
		if !g.HasIn() {
			return nil, fmt.Errorf("frameworks: sharded %s needs the transpose sealed before partitioning", app)
		}
	case "bfs", "bc":
	default:
		return nil, fmt.Errorf("frameworks: app %q has no sharded BSP kernel", app)
	}
	e, err := shard.New(part, shard.ServingConfig(machine, opts.Threads, opts.Backend))
	if err != nil {
		return nil, err
	}
	defer e.Close()
	switch app {
	case "bfs":
		return e.BFS(params.Source), nil
	case "sssp":
		return e.SSSP(params.Source), nil
	case "cc":
		return e.CC(), nil
	case "pr":
		return e.PR(params.Tol, params.Rounds), nil
	case "kcore":
		return e.KCore(params.K), nil
	default: // bc
		return e.BC(params.Source), nil
	}
}

// --- Incremental execution (streaming updates) ---

// IncrementalMaxDeltaFrac declares an update batch "large" once its
// operation count exceeds |E|/IncrementalMaxDeltaFrac; large deltas fall
// back to full recomputation (the incremental machinery would touch most
// of the graph anyway).
const IncrementalMaxDeltaFrac = 10

// Seed carries the prior-epoch artifacts an incremental run resumes from:
// converged component labels for cc, the recorded rank trajectory for pr.
// Seeds are produced by every RunIncrementalOnOpts call (fallback runs
// record one too), so epochs chain: each run seeds the next.
type Seed struct {
	CCLabels []uint32
	PR       *analytics.PRSeed
}

// Bytes estimates the seed's resident footprint, the quantity the serving
// layer's bounded seed store evicts on.
func (s *Seed) Bytes() int64 {
	if s == nil {
		return 0
	}
	total := int64(4 * len(s.CCLabels))
	if s.PR != nil {
		for _, r := range s.PR.Ranks {
			total += int64(8 * len(r))
		}
	}
	return total
}

// IncrementalApp reports whether app has an incremental variant.
func IncrementalApp(app string) bool { return app == "cc" || app == "pr" }

// RunIncrementalOnOpts executes app over g with incremental recomputation
// when the seed and delta allow it, falling back to a full recompute
// otherwise — when there is no usable seed, the delta is large
// (IncrementalMaxDeltaFrac), cc faces deletions (splits are inexpressible
// over merged labels), or the profile lacks the capability (GraphIt's DSL
// has no arbitrary per-vertex operators, so its cc cannot chase root
// pointers; §6.1). Either way the outputs are byte-identical to a
// from-scratch run on g — the incremental kernels guarantee it, and the
// fallback IS a from-scratch run — and a new Seed for the next epoch is
// returned alongside the result.
func (p Profile) RunIncrementalOnOpts(m *memsim.Machine, g *graph.Graph, app string, opts core.Options, params Params, seed *Seed, delta *graph.Delta) (*analytics.Result, *Seed, error) {
	return p.runIncremental(m, g, nil, app, opts, params, seed, delta)
}

// RunIncrementalOverlayOnOpts is RunIncrementalOnOpts over an overlay
// epoch (seed and delta semantics are identical; only the runtime's
// storage form differs).
func (p Profile) RunIncrementalOverlayOnOpts(m *memsim.Machine, ov *graph.Overlay, app string, opts core.Options, params Params, seed *Seed, delta *graph.Delta) (*analytics.Result, *Seed, error) {
	return p.runIncremental(m, ov.Base(), ov, app, opts, params, seed, delta)
}

func (p Profile) runIncremental(m *memsim.Machine, g *graph.Graph, ov *graph.Overlay, app string, opts core.Options, params Params, seed *Seed, delta *graph.Delta) (*analytics.Result, *Seed, error) {
	if !IncrementalApp(app) {
		return nil, nil, fmt.Errorf("frameworks: %s has no incremental variant (cc and pr only)", app)
	}
	if !p.Supports(app) {
		return nil, nil, fmt.Errorf("frameworks: %s does not implement %s", p.Name, app)
	}
	if !p.CanLoad(g) {
		return nil, nil, fmt.Errorf("frameworks: %s cannot load %d nodes (signed 32-bit node IDs)", p.Name, g.NumNodes())
	}
	r, err := buildRuntime(m, g, ov, opts)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	largeDelta := delta == nil || int64(delta.Edges())*IncrementalMaxDeltaFrac > r.NumEdges()
	switch app {
	case "cc":
		if largeDelta || delta.HasDeletes || !p.ArbitraryOps ||
			seed == nil || len(seed.CCLabels) != g.NumNodes() {
			res, err := p.Run(r, "cc", params)
			if err != nil {
				return nil, nil, err
			}
			return res, &Seed{CCLabels: res.Labels}, nil
		}
		res := analytics.CCIncremental(r, seed.CCLabels, delta)
		return res, &Seed{CCLabels: res.Labels}, nil
	default: // pr
		if largeDelta || seed == nil || seed.PR == nil ||
			len(seed.PR.Ranks) == 0 || len(seed.PR.Ranks[0]) != g.NumNodes() {
			res, prSeed := analytics.PageRankRecord(r, params.Tol, params.Rounds)
			return res, &Seed{PR: prSeed}, nil
		}
		res, prSeed := analytics.PageRankIncremental(r, seed.PR, delta, params.Tol, params.Rounds)
		return res, &Seed{PR: prSeed}, nil
	}
}
