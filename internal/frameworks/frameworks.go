// Package frameworks encodes the four shared-memory graph frameworks the
// paper evaluates — Galois, GAP, GBBS (Ligra) and GraphIt — as constraint
// profiles over the core runtime and the analytics kernels (§6.1):
//
//	               Galois      GAP         GBBS        GraphIt
//	pages          2MB expl.   4KB+THP     4KB+THP     4KB+THP
//	NUMA           app-chosen  numactl     numactl     numactl
//	directions     as needed   both        both        both
//	worklists      sparse+dense dense      dense       dense
//	programs       non-vertex  vertex      vertex      vertex only
//	bfs            sparse push dir-opt     dir-opt     dir-opt
//	sssp           delta-step  delta-step  delta-step  Bellman-Ford
//	cc             LP-shortcut ptr-jump    ptr-jump    label prop
//	bc             sparse      dense       dense       (missing)
//	kcore          sparse peel (missing)   dense peel  (missing)
//
// GAP and GraphIt additionally store node IDs in signed 32-bit ints and
// cannot load graphs with more than 2^31-1 nodes (the paper omits wdc12
// for them); the profile records that limit so the harness can reproduce
// the omission.
package frameworks

import (
	"fmt"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Profile describes one framework's constraints.
type Profile struct {
	Name string

	// ExplicitHugePages: Galois allocates 2 MB pages itself; the others
	// use 4 KB pages and rely on THP.
	ExplicitHugePages bool
	// AppNUMA: the framework chooses NUMA policy per allocation; false
	// means everything is numactl-interleaved.
	AppNUMA bool
	// BothDirections: allocates in- and out-edges regardless of need.
	BothDirections bool
	// SparseWorklists: supports Galois-style sparse worklists (and with
	// them asynchronous data-driven algorithms).
	SparseWorklists bool
	// NonVertexPrograms: operators may touch arbitrary neighborhoods.
	NonVertexPrograms bool
	// Signed32NodeIDs caps loadable graphs at 2^31-1 nodes.
	Signed32NodeIDs bool

	// Apps lists the supported benchmarks.
	Apps map[string]bool
}

// The paper's four frameworks.
var (
	Galois = Profile{
		Name:              "Galois",
		ExplicitHugePages: true,
		AppNUMA:           true,
		SparseWorklists:   true,
		NonVertexPrograms: true,
		Apps:              appSet("bc", "bfs", "cc", "kcore", "pr", "sssp", "tc"),
	}
	GAP = Profile{
		Name:            "GAP",
		BothDirections:  true,
		Signed32NodeIDs: true,
		Apps:            appSet("bc", "bfs", "cc", "pr", "sssp", "tc"),
	}
	GBBS = Profile{
		Name:           "GBBS",
		BothDirections: true,
		Apps:           appSet("bc", "bfs", "cc", "kcore", "pr", "sssp", "tc"),
	}
	GraphIt = Profile{
		Name:            "GraphIt",
		BothDirections:  true,
		Signed32NodeIDs: true,
		Apps:            appSet("bfs", "cc", "pr", "sssp", "tc"),
	}
)

// All returns the four profiles in the paper's presentation order.
func All() []Profile { return []Profile{GraphIt, GAP, GBBS, Galois} }

func appSet(apps ...string) map[string]bool {
	m := make(map[string]bool, len(apps))
	for _, a := range apps {
		m[a] = true
	}
	return m
}

// Supports reports whether the framework implements app.
func (p Profile) Supports(app string) bool { return p.Apps[app] }

// CanLoad reports whether the framework can load g (the 32-bit node ID
// limitation).
func (p Profile) CanLoad(g *graph.Graph) bool {
	return !p.Signed32NodeIDs || int64(g.NumNodes()) <= (1<<31)-1
}

// Options builds the core runtime options this framework uses for app.
// Galois picks per-app policies (§6.1: interleaved for bfs/cc/sssp,
// blocked for bc/pr, needed directions only); the others always use OS
// interleave, small pages with THP, and both directions.
func (p Profile) Options(app string, threads int) core.Options {
	opts := core.Options{
		Threads:        threads,
		GraphPolicy:    memsim.Interleaved,
		NodePolicy:     memsim.Interleaved,
		BothDirections: p.BothDirections,
		Weighted:       app == "sssp",
	}
	if p.ExplicitHugePages {
		opts.PageSize = memsim.PageHuge
	} else {
		opts.PageSize = memsim.PageSmall
		opts.THP = true
	}
	if p.AppNUMA {
		switch app {
		case "bc", "pr":
			opts.GraphPolicy = memsim.Blocked
			opts.NodePolicy = memsim.Blocked
		}
	}
	// Apps that structurally need the transpose regardless of framework.
	switch app {
	case "pr", "kcore":
		opts.BothDirections = true
	case "cc":
		if !p.SparseWorklists {
			// pointer-jump works on out-edges, but plain label
			// propagation (GraphIt) needs both.
			opts.BothDirections = true
		} else {
			opts.BothDirections = true // LP-shortcut propagates both ways
		}
	case "bfs":
		if !p.SparseWorklists {
			opts.BothDirections = true // direction-optimizing
		}
	}
	return opts
}

// Params carries per-app parameters for Run.
type Params struct {
	Source graph.Node // bc, bfs, sssp
	Delta  uint32     // sssp delta-stepping bucket width
	K      int64      // kcore threshold
	Tol    float64    // pr tolerance
	Rounds int        // pr max rounds
}

// DefaultParams fills the paper's defaults (§3) adjusted for a given
// graph: source = max out-degree node, k scaled to the input's density.
func DefaultParams(g *graph.Graph) Params {
	src, _ := g.MaxOutDegreeNode()
	avg := int64(1)
	if g.NumNodes() > 0 {
		avg = g.NumEdges() / int64(g.NumNodes())
	}
	k := int64(analytics.KCoreDefaultK)
	// The paper's k=100 is ~2-6x the average degree of its inputs;
	// scaled inputs keep that ratio.
	if scaled := 3 * avg; scaled < k {
		k = scaled
	}
	if k < 2 {
		k = 2
	}
	return Params{
		Source: src,
		Delta:  64,
		K:      k,
		Tol:    analytics.PRDefaultTolerance,
		Rounds: analytics.PRDefaultMaxRounds,
	}
}

// Run executes app under this framework's constraints on the runtime r
// (which must have been built with p.Options(app, threads)).
func (p Profile) Run(r *core.Runtime, app string, params Params) (*analytics.Result, error) {
	if !p.Supports(app) {
		return nil, fmt.Errorf("frameworks: %s does not implement %s", p.Name, app)
	}
	if !p.CanLoad(r.G) {
		return nil, fmt.Errorf("frameworks: %s cannot load %d nodes (signed 32-bit node IDs)", p.Name, r.G.NumNodes())
	}
	switch app {
	case "bfs":
		if p.SparseWorklists {
			return analytics.BFSSparse(r, params.Source), nil
		}
		return analytics.BFSDirOpt(r, params.Source), nil
	case "sssp":
		switch p.Name {
		case GraphIt.Name:
			// GraphIt cannot express delta-stepping (§6.1).
			return analytics.SSSPBellmanFordDense(r, params.Source), nil
		default:
			return analytics.SSSPDeltaStep(r, params.Source, params.Delta), nil
		}
	case "cc":
		switch {
		case p.NonVertexPrograms:
			return analytics.CCLabelPropSC(r), nil
		case p.Name == GraphIt.Name:
			return analytics.CCLabelPropDense(r), nil
		default:
			return analytics.CCPointerJump(r), nil
		}
	case "pr":
		return analytics.PageRank(r, params.Tol, params.Rounds), nil
	case "bc":
		return analytics.BC(r, params.Source, analytics.BCOptions{DenseFrontier: !p.SparseWorklists}), nil
	case "kcore":
		if p.SparseWorklists {
			return analytics.KCoreSparse(r, params.K), nil
		}
		return analytics.KCoreDense(r, params.K), nil
	case "tc":
		return analytics.TC(r), nil
	default:
		return nil, fmt.Errorf("frameworks: unknown app %q", app)
	}
}

// RunOn is the convenience wrapper used by the harness: build a runtime on
// m for (p, app), execute, and close it.
func (p Profile) RunOn(m *memsim.Machine, g *graph.Graph, app string, threads int, params Params) (*analytics.Result, error) {
	opts := p.Options(app, threads)
	if opts.Weighted && !g.HasWeights() {
		g.AddRandomWeights(64, 0xC0FFEE)
	}
	r, err := core.New(m, g, opts)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return p.Run(r, app, params)
}

// Apps returns the paper's benchmark names in presentation order.
func Apps() []string { return []string{"bc", "bfs", "cc", "kcore", "pr", "sssp", "tc"} }
