package frameworks

import (
	"reflect"
	"testing"

	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

func incMachine() *memsim.Machine {
	return memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
}

func TestRunIncrementalMatchesFullAcrossProfiles(t *testing.T) {
	g := gen.WebCrawl(8000, 8, 80, 41)
	g.BuildIn()
	stream, err := gen.UpdateStream(g, 1, 24, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	ng, delta, err := graph.ApplyUpdates(g, stream[0])
	if err != nil {
		t.Fatal(err)
	}
	ng.BuildIn()
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) {
			for _, app := range []string{"cc", "pr"} {
				params := DefaultParams(ng)
				params.Rounds = 15
				// Epoch 0: no seed — must fall back to a full run whose
				// bytes match the plain execution path exactly.
				res0, seed0, err := p.RunIncrementalOnOpts(incMachine(), g, app, p.Options(app, 8), params, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				plain, err := p.RunOnOpts(incMachine(), g, app, p.Options(app, 8), params)
				if err != nil {
					t.Fatal(err)
				}
				if res0.Algorithm != plain.Algorithm || res0.Seconds != plain.Seconds {
					t.Fatalf("%s %s: seedless incremental run diverged from plain full run (%s/%.6f vs %s/%.6f)",
						p.Name, app, res0.Algorithm, res0.Seconds, plain.Algorithm, plain.Seconds)
				}
				// Epoch 1: seeded run on the post-update graph must match a
				// full recompute's outputs bitwise.
				res1, _, err := p.RunIncrementalOnOpts(incMachine(), ng, app, p.Options(app, 8), params, seed0, &delta)
				if err != nil {
					t.Fatal(err)
				}
				full, err := p.RunOnOpts(incMachine(), ng, app, p.Options(app, 8), params)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res1.Labels, full.Labels) || !reflect.DeepEqual(res1.Rank, full.Rank) {
					t.Fatalf("%s %s: incremental outputs differ from full recompute", p.Name, app)
				}
				switch {
				case app == "cc" && !p.ArbitraryOps:
					// GraphIt cannot chase root pointers; it must have
					// fallen back to its full variant.
					if res1.Algorithm == "inc-unionfind" {
						t.Fatalf("%s ran inc-unionfind without ArbitraryOps", p.Name)
					}
				case app == "cc":
					if res1.Algorithm != "inc-unionfind" {
						t.Fatalf("%s cc fell back unexpectedly: %s", p.Name, res1.Algorithm)
					}
				case app == "pr":
					if res1.Algorithm != "topo-pull-inc" {
						t.Fatalf("%s pr fell back unexpectedly: %s", p.Name, res1.Algorithm)
					}
				}
			}
		})
	}
}

func TestRunIncrementalFallsBackOnLargeDeltaAndDeletes(t *testing.T) {
	g := gen.WebCrawl(2000, 6, 40, 5)
	g.BuildIn()
	params := DefaultParams(g)
	params.Rounds = 10

	_, seed, err := Galois.RunIncrementalOnOpts(incMachine(), g, "cc", Galois.Options("cc", 8), params, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A delta above |E|/IncrementalMaxDeltaFrac (of the post-update edge
	// count — inserts grow |E| too) forces the full path.
	big, err := gen.UpdateStream(g, 1, int(g.NumEdges()/(IncrementalMaxDeltaFrac-1))+1, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	ng, delta, err := graph.ApplyUpdates(g, big[0])
	if err != nil {
		t.Fatal(err)
	}
	ng.BuildIn()
	res, _, err := Galois.RunIncrementalOnOpts(incMachine(), ng, "cc", Galois.Options("cc", 8), params, seed, &delta)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == "inc-unionfind" {
		t.Fatalf("large delta (%d ops over %d edges) did not fall back", delta.Edges(), g.NumEdges())
	}

	// Deletions force the full path for cc regardless of size.
	del, err := gen.UpdateStream(g, 1, 8, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	for !hasDelete(del[0]) {
		t.Skip("generated batch had no deletes; seed-dependent, skip rather than flake")
	}
	ngd, deltaD, err := graph.ApplyUpdates(g, del[0])
	if err != nil {
		t.Fatal(err)
	}
	ngd.BuildIn()
	resD, _, err := Galois.RunIncrementalOnOpts(incMachine(), ngd, "cc", Galois.Options("cc", 8), params, seed, &deltaD)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Algorithm == "inc-unionfind" {
		t.Fatal("delta with deletions did not fall back for cc")
	}

	if _, _, err := Galois.RunIncrementalOnOpts(incMachine(), g, "bfs", Galois.Options("bfs", 8), params, nil, nil); err == nil {
		t.Fatal("bfs accepted incremental execution")
	}
}

func hasDelete(ups []graph.EdgeUpdate) bool {
	for _, u := range ups {
		if u.Op == graph.OpDelete {
			return true
		}
	}
	return false
}
