package shard

import (
	"math"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// This file implements the round-based benchmark set (bfs, sssp as
// data-driven Bellman-Ford, cc as label propagation, pr as topology-driven
// pull, kcore as round-based peeling, bc as round-synchronous Brandes) as
// scatter/gather BSP vertex programs over the shard fleet. These are the
// vertex-program formulations the paper's DM/DB/DS cluster configurations
// run — deliberately NOT the more efficient asynchronous/non-vertex
// algorithms, which BSP systems cannot express (§6.3).
//
// Every kernel follows the same shape: workers scan their owned range
// against the round-start frontier, charge their own machines (adjacency
// through the runtime's backend views, label traffic through the
// replicated label array), and record claims; the coordinator merges the
// shipped fragments and applies them sequentially between supersteps.
// Shared label state is plain (non-atomic) memory that workers only read
// during a superstep — the apply step is the only writer, and the
// superstep barrier orders the two.

// BFS runs sharded breadth-first search from src.
func (e *Engine) BFS(src graph.Node) *analytics.Result {
	e.resetClock()
	n := e.part.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = analytics.Infinity
	}
	dist[src] = 0
	frontier := []graph.Node{src}
	cur := engine.DenseFromVertices(n, frontier)
	level := uint32(0)
	for len(frontier) > 0 {
		level++
		lvl := level
		frags := e.exchange(dedupMin, func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			for v := lo; v < hi; v++ {
				if !cur.Test(v) {
					continue
				}
				nbrs := w.rt.OutScan(t, v-w.lo, false)
				w.labels.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				for _, d := range nbrs {
					if dist[d] == analytics.Infinity {
						w.claim(t, d, uint64(lvl))
					}
				}
			}
		})
		frontier = fragmentDests(frags)
		for _, d := range frontier {
			dist[d] = lvl
		}
		cur = engine.DenseFromVertices(n, frontier)
	}
	return &analytics.Result{App: "bfs", Algorithm: "shard-bsp", Rounds: e.rounds, Seconds: e.WallSeconds(), Dist: dist}
}

// SSSP runs sharded data-driven Bellman-Ford from src. The partitioned
// graph must be weighted.
func (e *Engine) SSSP(src graph.Node) *analytics.Result {
	if !e.part.Source().HasWeights() {
		panic("shard: sssp requires weights; seal them before NewPartition")
	}
	e.resetClock()
	n := e.part.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = analytics.Infinity
	}
	dist[src] = 0
	frontier := []graph.Node{src}
	cur := engine.DenseFromVertices(n, frontier)
	for len(frontier) > 0 {
		frags := e.exchange(dedupMin, func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			for v := lo; v < hi; v++ {
				if !cur.Test(v) {
					continue
				}
				nbrs, ws := w.rt.OutScanW(t, v-w.lo)
				w.labels.RandomN(t, int64(len(nbrs)), true)
				t.Op(len(nbrs))
				dv := dist[v]
				for i, d := range nbrs {
					nd := dv + ws[i]
					if nd < dv {
						continue // overflow
					}
					if nd < dist[d] {
						w.claim(t, d, uint64(nd))
					}
				}
			}
		})
		frontier = frontier[:0]
		for _, c := range mergeClaims(frags, dedupMin) {
			if nd := uint32(c.val); nd < dist[c.d] {
				dist[c.d] = nd
				frontier = append(frontier, c.d)
			}
		}
		cur = engine.DenseFromVertices(n, frontier)
	}
	return &analytics.Result{App: "sssp", Algorithm: "shard-bsp", Rounds: e.rounds, Seconds: e.WallSeconds(), Dist: dist}
}

// CC runs sharded label propagation. Labels must flow against edges too,
// so the partition's source needs its transpose.
func (e *Engine) CC() *analytics.Result {
	e.requireIn("cc")
	e.resetClock()
	n := e.part.NumNodes()
	labels := make([]uint32, n)
	frontier := make([]graph.Node, n)
	for i := range labels {
		labels[i] = uint32(i)
		frontier[i] = graph.Node(i)
	}
	cur := engine.FullDense(n)
	for len(frontier) > 0 {
		frags := e.exchange(dedupMin, func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			for v := lo; v < hi; v++ {
				if !cur.Test(v) {
					continue
				}
				lv := labels[v]
				outs := w.rt.OutScan(t, v-w.lo, false)
				ins := w.rt.InScan(t, v-w.lo, false)
				w.labels.RandomN(t, int64(len(outs)+len(ins)), true)
				t.Op(len(outs) + len(ins))
				for _, d := range outs {
					if lv < labels[d] {
						w.claim(t, d, uint64(lv))
					}
				}
				for _, d := range ins {
					if lv < labels[d] {
						w.claim(t, d, uint64(lv))
					}
				}
			}
		})
		frontier = frontier[:0]
		for _, c := range mergeClaims(frags, dedupMin) {
			if lv := uint32(c.val); lv < labels[c.d] {
				labels[c.d] = lv
				frontier = append(frontier, c.d)
			}
		}
		cur = engine.DenseFromVertices(n, frontier)
	}
	return &analytics.Result{App: "cc", Algorithm: "shard-bsp", Rounds: e.rounds, Seconds: e.WallSeconds(), Labels: labels}
}

// PR runs sharded topology-driven pull pagerank. Per round every shard
// recomputes its masters (gathering the frozen round-start contributions
// of their in-neighbors) and broadcasts their fresh values; this benefits
// from partitioned locality and aggregate memory bandwidth, which is why
// the paper finds the cluster beating the single Optane machine on pr.
func (e *Engine) PR(tol float64, maxRounds int) *analytics.Result {
	e.requireIn("pr")
	e.resetClock()
	g := e.part.Source()
	n := e.part.NumNodes()
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)     // round-start contributions (frozen)
	contribNext := make([]float64, n) // published for the next round
	// Per-vertex residual shards (owner-only writes), summed sequentially
	// in vertex order after each round: the total is a pure function of
	// the round's values, independent of shard count and thread count —
	// so the stopping round is too.
	resid := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
		if d := g.OutDegree(graph.Node(i)); d > 0 {
			contrib[i] = rank[i] / float64(d)
		}
	}
	base := (1 - 0.85) / float64(n)
	rounds := 0
	for rounds < maxRounds {
		rounds++
		compute := e.superstep(func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			w.labels.ReadRange(t, int64(lo), int64(hi))
			t.Op(int(hi - lo))
			for v := lo; v < hi; v++ {
				ins := w.rt.InScan(t, v-w.lo, false)
				w.labels.RandomN(t, int64(len(ins)), false)
				t.Op(len(ins) + 1)
				sum := 0.0
				for _, u := range ins {
					sum += contrib[u]
				}
				nv := base + 0.85*sum
				resid[v] = math.Abs(nv - rank[v])
				next[v] = nv
				if d := w.rt.OutDegree(v - w.lo); d > 0 {
					contribNext[v] = nv / float64(d)
				} else {
					contribNext[v] = 0
				}
			}
		})
		// Dense app: every master's new value is broadcast — unless the
		// shard is alone, in which case nothing leaves the machine.
		send := make([]int64, e.Shards())
		if e.Shards() > 1 {
			for i, w := range e.workers {
				send[i] = int64(w.hi-w.lo) * 8
			}
		}
		e.endRound(compute, send)
		rank, next = next, rank
		contrib, contribNext = contribNext, contrib
		residual := 0.0
		for _, x := range resid {
			residual += x
		}
		if residual < tol {
			break
		}
	}
	return &analytics.Result{App: "pr", Algorithm: "shard-bsp", Rounds: e.rounds, Seconds: e.WallSeconds(), Rank: append([]float64(nil), rank...)}
}

// KCore runs sharded round-based peeling with threshold k.
func (e *Engine) KCore(k int64) *analytics.Result {
	e.requireIn("kcore")
	e.resetClock()
	g := e.part.Source()
	n := e.part.NumNodes()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.Node(v)) + g.InDegree(graph.Node(v))
	}
	removed := make([]bool, n)
	for {
		// Peeling is judged against the round-start degrees: decrements
		// only land at the barrier, so whether v peels this round never
		// depends on sibling decrements landing early.
		frags := e.exchange(dedupSum, func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			w.labels.ReadRange(t, int64(lo), int64(hi))
			for v := lo; v < hi; v++ {
				if removed[v] || deg[v] >= k {
					continue
				}
				removed[v] = true // owner-only write
				w.counts[t.ID]++
				outs := w.rt.OutScan(t, v-w.lo, false)
				ins := w.rt.InScan(t, v-w.lo, false)
				w.labels.RandomN(t, int64(len(outs)+len(ins)), true)
				t.Op(len(outs) + len(ins))
				for _, d := range outs {
					w.claim(t, d, 1)
				}
				for _, d := range ins {
					w.claim(t, d, 1)
				}
			}
		})
		peeled := int64(0)
		for _, w := range e.workers {
			peeled += w.total()
		}
		for _, c := range mergeClaims(frags, dedupSum) {
			deg[c.d] -= int64(c.val)
		}
		if peeled == 0 {
			break
		}
	}
	in := make([]bool, n)
	for v := range in {
		in[v] = deg[v] >= k
	}
	return &analytics.Result{App: "kcore", Algorithm: "shard-bsp", Rounds: e.rounds, Seconds: e.WallSeconds(), InCore: in}
}

// BC runs sharded round-synchronous Brandes betweenness centrality from
// src: a forward BFS phase accumulating shortest-path counts (sigma
// claims are commutative uint64 adds, collapsed per destination) and a
// backward dependency phase with owner-only delta writes.
func (e *Engine) BC(src graph.Node) *analytics.Result {
	e.resetClock()
	n := e.part.NumNodes()
	dist := make([]uint32, n)
	sigma := make([]uint64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = analytics.Infinity
	}
	dist[src] = 0
	sigma[src] = 1

	frontier := []graph.Node{src}
	cur := engine.DenseFromVertices(n, frontier)
	// levels holds copies: the frontier slice is recycled across rounds.
	levels := [][]graph.Node{append([]graph.Node(nil), frontier...)}
	level := uint32(0)
	for len(frontier) > 0 {
		level++
		lvl := level
		frags := e.exchange(dedupSum, func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			for v := lo; v < hi; v++ {
				if !cur.Test(v) {
					continue
				}
				nbrs := w.rt.OutScan(t, v-w.lo, false)
				w.labels.RandomN(t, 2*int64(len(nbrs)), true)
				t.Op(len(nbrs))
				sv := sigma[v]
				for _, d := range nbrs {
					// d joins level lvl this round iff it was unvisited
					// at round start; every path count flowing into it
					// ships as one summed claim.
					if dist[d] == analytics.Infinity {
						w.claim(t, d, sv)
					}
				}
			}
		})
		frontier = frontier[:0]
		for _, c := range mergeClaims(frags, dedupSum) {
			dist[c.d] = lvl
			sigma[c.d] += c.val
			frontier = append(frontier, c.d)
		}
		if len(frontier) > 0 {
			levels = append(levels, append([]graph.Node(nil), frontier...))
		}
		cur = engine.DenseFromVertices(n, frontier)
	}

	for l := len(levels) - 1; l >= 0; l-- {
		fr := engine.DenseFromVertices(n, levels[l])
		compute := e.superstep(func(w *worker, t *memsim.Thread, lo, hi graph.Node) {
			for v := lo; v < hi; v++ {
				if !fr.Test(v) {
					continue
				}
				nbrs := w.rt.OutScan(t, v-w.lo, false)
				w.labels.RandomN(t, 3*int64(len(nbrs)), false)
				t.Op(len(nbrs))
				dv := dist[v]
				sv := float64(sigma[v])
				acc := 0.0
				for _, d := range nbrs {
					if dist[d] == dv+1 {
						if sd := float64(sigma[d]); sd > 0 {
							acc += sv / sd * (1 + delta[d])
							if d < w.lo || d >= w.hi {
								w.counts[t.ID]++
							}
						}
					}
				}
				delta[v] = acc // owner-only write
			}
		})
		send := make([]int64, e.Shards())
		for i, w := range e.workers {
			send[i] = w.total() * 8
		}
		e.endRound(compute, send)
	}
	return &analytics.Result{App: "bc", Algorithm: "shard-bsp", Rounds: e.rounds, Seconds: e.WallSeconds(), Dist: dist, Centrality: append([]float64(nil), delta...)}
}

// requireIn panics when a kernel needing the transpose runs over a
// partition extracted before BuildIn — the local graphs cannot build
// their own (global IDs over local offsets), so sealing order is a hard
// precondition, not a lazy fix-up.
func (e *Engine) requireIn(app string) {
	if !e.part.Source().HasIn() {
		panic("shard: " + app + " requires the transpose; BuildIn before NewPartition")
	}
}
