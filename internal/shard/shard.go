// Package shard executes round-based kernels over a partitioned graph as
// scatter/gather BSP supersteps across N in-process shard workers. Each
// worker owns one contiguous vertex range of a graph.Partition, its own
// memsim.Machine, and its own core.Runtime (raw or compressed backend)
// over the shard-local CSR; a superstep coordinator runs the workers
// concurrently, exchanges their frontier fragments, and folds compute and
// communication into the simulated clocks.
//
// The package absorbs internal/distsim, which modeled the paper's §6.3
// D-Galois cluster as a closed benchmark: the same vertex programs run
// here, but on a runtime a server can actually fan a request out over
// (frameworks.RunShardedOnOpts, pmemserved's JobRequest.Shards), and the
// cluster emulation (Table 4 / Figure 11) is now just a Config preset —
// Stampede2 hosts, Omni-Path interconnect, OEC/CVC policies.
//
// # Determinism contract
//
// Sharded outputs are bitwise identical across shard counts, GOMAXPROCS,
// and backends (the conformance suite locks all three axes). The design
// makes this structural rather than incidental:
//
//   - workers only READ shared round-start state (label arrays, the
//     frontier bit-vector) and WRITE per-thread claim buffers or
//     owner-only slices of per-vertex arrays — there is not a single
//     cross-thread atomic in the kernels;
//   - claims are judged against round-start snapshots, so the claim SET is
//     a pure function of the round's input, not of interleaving;
//   - each worker drains its thread buffers in thread-index order into a
//     sorted, per-destination-collapsed fragment (min for shortest-path
//     reductions, sum for commutative adds), and the coordinator merges
//     fragments in shard-index order and applies them sequentially.
//
// # Charging model
//
// Per-superstep compute is each worker's ParallelItems region on its own
// machine (static chunk ownership, so the charge is a pure function of the
// shard). Cross-shard traffic is 8 bytes per fragment entry whose
// destination is owned by another shard — the dirty-mirror volume a
// Gluon-style runtime would sync. The round's wall cost is
//
//	max_s(compute_s) + Interconnect.ExchangeNs(shards, max_s(bytes_s), policyFactor)
//
// and the communication term is also advanced onto every worker's machine
// (memsim.Machine.AdvanceWall), so per-shard simulated time includes the
// barriers it waited in.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"pmemgraph/internal/core"
	"pmemgraph/internal/engine"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// Policy selects the partitioning policy of the cluster emulation.
type Policy int

const (
	// OEC is an outgoing edge cut: shards own contiguous vertex blocks
	// balanced by out-edge count and hold all out-edges of their masters
	// (what graph.NewPartition builds).
	OEC Policy = iota
	// CVC is the Cartesian (2D) vertex cut used for large host counts;
	// the model applies its ~2/sqrt(shards) communication reduction as a
	// volume factor.
	CVC
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case OEC:
		return "oec"
	case CVC:
		return "cvc"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes one shard fleet. The shard count itself comes from the
// graph.Partition an Engine is built over.
type Config struct {
	// Threads is the virtual thread count per shard worker.
	Threads int
	// Machine is the per-shard machine configuration.
	Machine memsim.MachineConfig
	// Backend selects each worker's CSR storage backend.
	Backend core.Backend
	// Policy selects the partition policy's communication factor.
	Policy Policy
	// Net is the alpha-beta cost model for superstep exchanges.
	Net memsim.Interconnect
}

// ServingConfig models in-process shard workers inside one serving
// machine: shared-memory exchange costs, caller-chosen backend.
func ServingConfig(machine memsim.MachineConfig, threads int, backend core.Backend) Config {
	return Config{
		Threads: threads,
		Machine: machine,
		Backend: backend,
		Net:     memsim.ServingInterconnect(),
	}
}

// ClusterConfig models the Stampede2 cluster of the paper's §6.3
// comparison at the given host count, with the paper's partition
// recommendation (OEC at small scale, CVC at 256 hosts) and the shared
// capacity scale divisor.
func ClusterConfig(hosts int, scaleDiv int64) Config {
	p := OEC
	if hosts >= 128 {
		p = CVC
	}
	return Config{
		Threads: 48,
		Machine: memsim.Scaled(memsim.StampedeHost(), scaleDiv),
		Policy:  p,
		Net:     memsim.StampedeInterconnect(),
	}
}

// MinHosts returns the minimum number of hosts needed to hold a graph
// whose replicated footprint is bytes, given per-host memory (the paper's
// DM configuration: 5 hosts for clueweb12/uk14, 20 for wdc12).
func MinHosts(replicatedBytes int64, host memsim.MachineConfig) int {
	perHost := host.DRAMPerSocket * int64(host.Sockets)
	// Leave ~25% headroom for runtime structures, as a real run would.
	usable := perHost * 3 / 4
	h := int((replicatedBytes + usable - 1) / usable)
	if h < 1 {
		h = 1
	}
	return h
}

// Engine coordinates BSP supersteps over one partition's shard workers.
type Engine struct {
	cfg     Config
	part    *graph.Partition
	workers []*worker

	wallNs  float64
	commNs  float64
	sendTot int64
	rounds  int
}

// worker is one shard: a vertex range, a machine, a runtime over the
// shard-local CSR, and the replicated label array (masters plus proxies,
// as D-Galois/Gluon replicates).
type worker struct {
	id     int
	lo, hi graph.Node
	m      *memsim.Machine
	rt     *core.Runtime
	labels *memsim.Array

	// Per-thread claim buffers and scratch counters, indexed by virtual
	// thread ID within one superstep region.
	claims [][]claim
	counts []int64
}

// claim is one scatter intent: destination and reduction operand.
type claim struct {
	d   graph.Node
	val uint64
}

// Fragment collapse modes.
const (
	dedupMin = iota // keep the minimum value per destination (min-reductions)
	dedupSum        // sum values per destination (commutative adds/decrements)
)

// New builds the shard fleet over a partition. The partition's source
// graph must already hold whatever the kernels will need (weights for
// sssp, the transpose for cc/pr/kcore): shard-local graphs alias the
// source arrays and never seal their own.
func New(part *graph.Partition, cfg Config) (*Engine, error) {
	if part == nil || part.Shards() == 0 {
		return nil, fmt.Errorf("shard: empty partition")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	e := &Engine{cfg: cfg, part: part}
	n := int64(part.NumNodes())
	for i := 0; i < part.Shards(); i++ {
		local := part.Local(i)
		opts := core.GaloisDefaults(cfg.Threads)
		opts.Weighted = local.HasWeights()
		opts.BothDirections = local.HasIn()
		opts.Backend = cfg.Backend
		m := memsim.NewMachine(cfg.Machine)
		rt, err := core.New(m, local, opts)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r := part.RangeOf(i)
		w := &worker{id: i, lo: r.Lo, hi: r.Hi, m: m, rt: rt}
		w.labels = rt.ScratchArray("shard.labels", max64(n, 1), 8)
		w.labels.Warm()
		threads := rt.RegionThreads()
		w.claims = make([][]claim, threads)
		w.counts = make([]int64, threads)
		e.workers = append(e.workers, w)
	}
	return e, nil
}

// Close releases every worker's runtime and arrays.
func (e *Engine) Close() {
	for _, w := range e.workers {
		if w.rt != nil {
			w.rt.Close()
		}
	}
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.workers) }

// Owner returns the shard owning v's master.
func (e *Engine) Owner(v graph.Node) int { return e.part.Owner(v) }

// WallSeconds returns the simulated sharded execution time.
func (e *Engine) WallSeconds() float64 { return e.wallNs / 1e9 }

// CommSeconds returns the portion of wall time spent in superstep
// exchanges.
func (e *Engine) CommSeconds() float64 { return e.commNs / 1e9 }

// BytesSent returns total cross-shard frontier bytes exchanged.
func (e *Engine) BytesSent() int64 { return e.sendTot }

// Rounds returns the number of BSP supersteps executed.
func (e *Engine) Rounds() int { return e.rounds }

// PerShardSeconds returns each worker machine's simulated wall time: its
// own compute plus the exchange time advanced onto it at every barrier.
func (e *Engine) PerShardSeconds() []float64 {
	out := make([]float64, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.m.WallSeconds()
	}
	return out
}

// resetClock zeroes the engine's clocks (between apps).
func (e *Engine) resetClock() {
	e.wallNs, e.commNs, e.sendTot, e.rounds = 0, 0, 0, 0
	for _, w := range e.workers {
		w.m.ResetClock()
	}
}

// commFactor scales per-shard communication volume by partition policy.
func (e *Engine) commFactor() float64 {
	if e.cfg.Policy == CVC && e.Shards() > 1 {
		return 2.0 / float64(isqrt(e.Shards()))
	}
	return 1.0
}

// superstep runs fn concurrently on every worker over its owned range
// (global vertex bounds, statically chunked by the worker's runtime) and
// returns per-shard compute nanoseconds. Workers share no mutable state
// during the region, so running them on real goroutines is race-free and
// the per-shard charges stay pure functions of each shard.
func (e *Engine) superstep(fn func(w *worker, t *memsim.Thread, lo, hi graph.Node)) []float64 {
	compute := make([]float64, len(e.workers))
	var wg sync.WaitGroup
	for i := range e.workers {
		w := e.workers[i]
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			stats := w.rt.ParallelItems(int64(w.hi-w.lo), func(t *memsim.Thread, lo, hi int64) {
				fn(w, t, w.lo+graph.Node(lo), w.lo+graph.Node(hi))
			})
			compute[i] = stats.ElapsedNs
		}(i, w)
	}
	wg.Wait()
	return compute
}

// endRound folds one superstep into the clocks: the slowest shard's
// compute plus the exchange cost of the bottleneck shard's volume. The
// exchange time is also advanced onto every worker's machine.
func (e *Engine) endRound(computeNs []float64, sendBytes []int64) {
	e.rounds++
	maxCompute := 0.0
	for _, c := range computeNs {
		if c > maxCompute {
			maxCompute = c
		}
	}
	maxBytes := int64(0)
	for _, b := range sendBytes {
		e.sendTot += b
		if b > maxBytes {
			maxBytes = b
		}
	}
	comm := e.cfg.Net.ExchangeNs(e.Shards(), maxBytes, e.commFactor())
	e.commNs += comm
	e.wallNs += maxCompute + comm
	for _, w := range e.workers {
		w.m.AdvanceWall(comm)
	}
}

// exchange runs one scatter superstep and ships the claims: fn records
// per-thread claims via worker.claim; afterwards each worker drains its
// buffers (thread-index order) into a sorted fragment collapsed per mode,
// cross-shard bytes are charged (8 bytes per entry owned elsewhere), and
// the round is folded into the clocks. The returned fragments are in
// shard-index order, ready for the coordinator's sequential apply.
func (e *Engine) exchange(mode int, fn func(w *worker, t *memsim.Thread, lo, hi graph.Node)) [][]claim {
	compute := e.superstep(fn)
	frags := make([][]claim, len(e.workers))
	send := make([]int64, len(e.workers))
	for i, w := range e.workers {
		frag := w.drain(mode)
		frags[i] = frag
		cross := int64(0)
		for _, c := range frag {
			if c.d < w.lo || c.d >= w.hi {
				cross++
			}
		}
		send[i] = cross * 8
	}
	e.endRound(compute, send)
	return frags
}

// claim records one scatter intent into t's private buffer.
func (w *worker) claim(t *memsim.Thread, d graph.Node, val uint64) {
	w.claims[t.ID] = append(w.claims[t.ID], claim{d: d, val: val})
}

// drain concatenates w's thread buffers in thread-index order, resets
// them, and returns the sorted fragment collapsed per mode.
func (w *worker) drain(mode int) []claim {
	var all []claim
	for i := range w.claims {
		all = append(all, w.claims[i]...)
		w.claims[i] = w.claims[i][:0]
	}
	return collapse(all, mode)
}

// total sums and resets w's per-thread counters in thread-index order.
func (w *worker) total() int64 {
	sum := int64(0)
	for i := range w.counts {
		sum += w.counts[i]
		w.counts[i] = 0
	}
	return sum
}

// collapse sorts claims by (destination, value) and collapses duplicates
// per mode: dedupMin keeps the first (minimum) value per destination,
// dedupSum sums values per destination. Both are order-free reductions,
// so the result is a pure function of the claim multiset.
func collapse(cs []claim, mode int) []claim {
	if len(cs) == 0 {
		return nil
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].d != cs[j].d {
			return cs[i].d < cs[j].d
		}
		return cs[i].val < cs[j].val
	})
	out := cs[:1]
	for _, c := range cs[1:] {
		last := &out[len(out)-1]
		if c.d != last.d {
			out = append(out, c)
			continue
		}
		if mode == dedupSum {
			last.val += c.val
		}
	}
	return out
}

// mergeClaims merges shard fragments (already collapsed per mode) into
// one coordinator-side claim list, reapplying the same reduction across
// shards.
func mergeClaims(frags [][]claim, mode int) []claim {
	var all []claim
	for _, f := range frags {
		all = append(all, f...)
	}
	return collapse(all, mode)
}

// fragmentDests projects fragments onto destination slices for
// engine.MergeFragments (the destination-only merge bfs-style claims
// need).
func fragmentDests(frags [][]claim) []graph.Node {
	dests := make([][]graph.Node, len(frags))
	for i, f := range frags {
		ds := make([]graph.Node, len(f))
		for k, c := range f {
			ds[k] = c.d
		}
		dests[i] = ds
	}
	return engine.MergeFragments(dests)
}

func isqrt(n int) int {
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	if x < 1 {
		x = 1
	}
	return x
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
