package shard

import (
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// testEngine partitions g and builds a cluster-preset fleet over it with a
// test-sized thread count. Partition-level properties (coverage, balance,
// round-trip) are locked in internal/graph's property tests; these tests
// cover the BSP runtime on top.
func testEngine(t *testing.T, g *graph.Graph, shards int) *Engine {
	t.Helper()
	p, err := graph.NewPartition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterConfig(shards, 32)
	cfg.Threads = 8
	e, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// galoisRuntime runs the single-machine kernel for comparison.
func galoisRuntime(t *testing.T, g *graph.Graph, weighted, both bool) *core.Runtime {
	t.Helper()
	m := memsim.NewMachine(memsim.Scaled(memsim.OptaneMachine(), 32))
	opts := core.GaloisDefaults(8)
	opts.Weighted = weighted
	opts.BothDirections = both
	r, err := core.New(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestMinHosts(t *testing.T) {
	host := memsim.Scaled(memsim.StampedeHost(), 32)
	perHost := host.DRAMPerSocket * int64(host.Sockets)
	if got := MinHosts(perHost/2, host); got != 1 {
		t.Errorf("half-host graph needs %d hosts, want 1", got)
	}
	if got := MinHosts(perHost*4, host); got < 5 {
		t.Errorf("4x-host graph needs %d hosts, want >= 5 (replication headroom)", got)
	}
	if got := MinHosts(0, host); got != 1 {
		t.Errorf("empty graph needs %d hosts", got)
	}
}

func TestEngineRejectsEmptyPartition(t *testing.T) {
	if _, err := New(nil, ClusterConfig(1, 32)); err == nil {
		t.Error("nil partition accepted")
	}
}

func TestShardBFSMatchesSingleMachine(t *testing.T) {
	for _, shards := range []int{1, 3, 5} {
		g := gen.WebCrawl(3000, 6, 60, 9)
		src, _ := g.MaxOutDegreeNode()
		e := testEngine(t, g, shards)
		res := e.BFS(src)
		want := analytics.BFSSparse(galoisRuntime(t, g, false, false), src)
		for v := range want.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("shards=%d: dist[%d] = %d, want %d", shards, v, res.Dist[v], want.Dist[v])
			}
		}
		if res.Seconds <= 0 {
			t.Errorf("shards=%d: no simulated time", shards)
		}
	}
}

func TestShardSSSPMatchesSingleMachine(t *testing.T) {
	g := gen.ErdosRenyi(800, 6000, 4)
	g.AddRandomWeights(32, 5)
	src, _ := g.MaxOutDegreeNode()
	e := testEngine(t, g, 4)
	res := e.SSSP(src)
	want := analytics.SSSPDeltaStep(galoisRuntime(t, g, true, false), src, 8)
	for v := range want.Dist {
		if res.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want.Dist[v])
		}
	}
}

func TestShardCCFindsComponents(t *testing.T) {
	// Two disjoint cycles.
	var edges []graph.Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node((i + 1) % 50)})
	}
	for i := 50; i < 100; i++ {
		next := i + 1
		if next == 100 {
			next = 50
		}
		edges = append(edges, graph.Edge{Src: graph.Node(i), Dst: graph.Node(next)})
	}
	g := graph.MustFromEdges(100, edges, false, false)
	g.BuildIn()
	e := testEngine(t, g, 3)
	res := e.CC()
	for v := 0; v < 50; v++ {
		if res.Labels[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, res.Labels[v])
		}
	}
	for v := 50; v < 100; v++ {
		if res.Labels[v] != 50 {
			t.Fatalf("label[%d] = %d, want 50", v, res.Labels[v])
		}
	}
}

func TestShardPRConverges(t *testing.T) {
	g := gen.ErdosRenyi(400, 3200, 13)
	g.BuildIn()
	e := testEngine(t, g, 4)
	res := e.PR(1e-8, 100)
	sum := 0.0
	for _, x := range res.Rank {
		sum += x
	}
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("rank mass = %v", sum)
	}
	if res.Rounds < 2 || res.Rounds > 100 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestShardKCore(t *testing.T) {
	g := gen.Star(30)
	g.BuildIn()
	e := testEngine(t, g, 2)
	res := e.KCore(3)
	// Star center has degree 58 undirected; spokes have 2 (<3): all
	// spokes peel, then the center loses all degree and peels too.
	for v, in := range res.InCore {
		if in {
			t.Errorf("node %d should not survive 3-core of a star", v)
		}
	}
}

func TestShardBCMatchesSingleMachine(t *testing.T) {
	g := gen.Grid(7, 8)
	src := graph.Node(0)
	e := testEngine(t, g, 3)
	res := e.BC(src)
	want := analytics.BC(galoisRuntime(t, g, false, false), src, analytics.BCOptions{})
	for v := range want.Centrality {
		if diff := res.Centrality[v] - want.Centrality[v]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("bc[%d] = %g, want %g", v, res.Centrality[v], want.Centrality[v])
		}
	}
}

func TestCommScalesWithShards(t *testing.T) {
	g := gen.ErdosRenyi(2000, 16000, 21)
	one := testEngine(t, g, 1)
	one.BFS(0)
	many := testEngine(t, g, 8)
	many.BFS(0)
	if one.BytesSent() != 0 {
		t.Errorf("single shard sent %d bytes, want 0", one.BytesSent())
	}
	if many.BytesSent() == 0 {
		t.Error("8 shards sent no bytes")
	}
	if many.CommSeconds() <= one.CommSeconds() {
		t.Errorf("comm time should grow with shards: 1 shard %.6f vs 8 shards %.6f", one.CommSeconds(), many.CommSeconds())
	}
}

func TestCVCCommFactorBelowOEC(t *testing.T) {
	g := gen.ErdosRenyi(1000, 8000, 2)
	p, err := graph.NewPartition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfgO := ClusterConfig(16, 32)
	cfgO.Threads = 4
	cfgO.Policy = OEC
	cfgC := cfgO
	cfgC.Policy = CVC
	eo, err := New(p, cfgO)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eo.Close)
	ec, err := New(p, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ec.Close)
	if of, cf := eo.commFactor(), ec.commFactor(); cf >= of {
		t.Errorf("CVC comm factor %v should be below OEC %v at 16 shards", cf, of)
	}
}

func TestPolicyString(t *testing.T) {
	if OEC.String() != "oec" || CVC.String() != "cvc" {
		t.Error("policy strings")
	}
}

func TestPerShardSecondsAdvance(t *testing.T) {
	g := gen.ErdosRenyi(1500, 12000, 6)
	e := testEngine(t, g, 4)
	e.BFS(0)
	per := e.PerShardSeconds()
	if len(per) != 4 {
		t.Fatalf("per-shard times: %d entries, want 4", len(per))
	}
	for i, s := range per {
		if s <= 0 {
			t.Errorf("shard %d: no simulated time", i)
		}
		if s > e.WallSeconds()+1e-12 {
			t.Errorf("shard %d: %.9fs exceeds engine wall %.9fs", i, s, e.WallSeconds())
		}
	}
}
