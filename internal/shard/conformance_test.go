package shard_test

// The sharded-determinism conformance suite: frameworks.RunShardedOnOpts
// must produce bitwise-identical outputs across shard counts, GOMAXPROCS,
// and storage backends. CI runs this under -race in the uncached step, so
// it doubles as the proof that concurrent shard workers share no unordered
// mutable state.

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"

	"pmemgraph/internal/analytics"
	"pmemgraph/internal/core"
	"pmemgraph/internal/frameworks"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/memsim"
)

// conformanceGraph is sealed for every sharded app: weights for sssp, the
// transpose for cc/pr/kcore — both BEFORE partitioning, since shard-local
// graphs alias the source arrays.
func conformanceGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.WebCrawl(1200, 5, 40, 17)
	g.AddRandomWeights(frameworks.DefaultWeightMax, frameworks.DefaultWeightSeed)
	g.BuildIn()
	return g
}

// resultBytes serializes every output array of a Result so "identical"
// means bitwise, not approximately: float64 ranks and centralities are
// compared at full bit width.
func resultBytes(t *testing.T, res *analytics.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, arr := range []any{res.Dist, res.Labels, res.Rank, res.InCore, res.Centrality} {
		if err := binary.Write(&buf, binary.LittleEndian, arr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestShardedConformance(t *testing.T) {
	g := conformanceGraph(t)
	params := frameworks.DefaultParams(g)
	apps := []string{"bfs", "cc", "pr", "sssp"}
	machine := memsim.Scaled(memsim.OptaneMachine(), 32)

	parts := map[int]*graph.Partition{}
	for _, shards := range []int{1, 2, 8} {
		p, err := graph.NewPartition(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		parts[shards] = p
	}

	run := func(t *testing.T, app string, shards int, backend core.Backend) []byte {
		t.Helper()
		opts := core.GaloisDefaults(4)
		opts.Backend = backend
		res, err := frameworks.RunShardedOnOpts(machine, parts[shards], app, opts, params)
		if err != nil {
			t.Fatal(err)
		}
		return resultBytes(t, res)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, app := range apps {
		app := app
		t.Run(app, func(t *testing.T) {
			runtime.GOMAXPROCS(runtime.NumCPU())
			want := run(t, app, 1, core.BackendRaw)
			for _, shards := range []int{1, 2, 8} {
				for _, procs := range []int{1, 3, 8} {
					for _, backend := range []core.Backend{core.BackendRaw, core.BackendCompressed} {
						runtime.GOMAXPROCS(procs)
						got := run(t, app, shards, backend)
						if !bytes.Equal(got, want) {
							t.Fatalf("%s: output differs at shards=%d GOMAXPROCS=%d backend=%v",
								app, shards, procs, backend)
						}
					}
				}
			}
		})
	}
}

// TestShardedMatchesRoundBasedSingleMachine pins the sharded kernels to
// their single-machine round-based counterparts on the values that are
// exactly comparable (bfs levels, sssp distances, cc labels).
func TestShardedMatchesRoundBasedSingleMachine(t *testing.T) {
	g := conformanceGraph(t)
	params := frameworks.DefaultParams(g)
	machine := memsim.Scaled(memsim.OptaneMachine(), 32)
	part, err := graph.NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.GaloisDefaults(4)
	for _, app := range []string{"bfs", "sssp", "cc"} {
		sharded, err := frameworks.RunShardedOnOpts(machine, part, app, opts, params)
		if err != nil {
			t.Fatal(err)
		}
		single, err := frameworks.Galois.RunOn(memsim.NewMachine(machine), g, app, 4, params)
		if err != nil {
			t.Fatal(err)
		}
		switch app {
		case "bfs", "sssp":
			for v := range single.Dist {
				if sharded.Dist[v] != single.Dist[v] {
					t.Fatalf("%s: dist[%d] = %d, want %d", app, v, sharded.Dist[v], single.Dist[v])
				}
			}
		case "cc":
			// Galois label-prop shortcuts to component minima too.
			for v := range single.Labels {
				if sharded.Labels[v] != single.Labels[v] {
					t.Fatalf("cc: label[%d] = %d, want %d", v, sharded.Labels[v], single.Labels[v])
				}
			}
		}
	}
}

// TestShardedRefusesUnsealedSources locks the sealing precondition into
// the API: partitions cut before weights/transpose exist cannot run the
// apps that need them.
func TestShardedRefusesUnsealedSources(t *testing.T) {
	g := gen.ErdosRenyi(200, 1000, 3) // no weights, no transpose
	part, err := graph.NewPartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	machine := memsim.Scaled(memsim.OptaneMachine(), 32)
	opts := core.GaloisDefaults(2)
	params := frameworks.DefaultParams(g)
	for _, app := range []string{"sssp", "cc", "pr", "kcore"} {
		if _, err := frameworks.RunShardedOnOpts(machine, part, app, opts, params); err == nil {
			t.Errorf("%s accepted an unsealed source", app)
		}
	}
	if _, err := frameworks.RunShardedOnOpts(machine, part, "tc", opts, params); err == nil {
		t.Error("tc has no sharded kernel but was accepted")
	}
	if !frameworks.ShardedApp("bfs") || frameworks.ShardedApp("tc") {
		t.Error("ShardedApp classification")
	}
}
