package loadgen

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"testing"
)

func testSpec(arrival ArrivalKind) Spec {
	s := Spec{
		Seed:     0xC0FFEE,
		Arrival:  arrival,
		Rate:     500,
		Duration: 10,
		Cohorts: []Cohort{
			{
				Name: "browsers", Class: "interactive", Weight: 3, Users: 64,
				Graphs: []string{"web", "social", "roads", "cite"}, GraphSkew: 1.1,
				Apps: []string{"bfs", "sssp"}, AppSkew: 0.8,
				Threads: 8, DeadlineMS: 250,
			},
			{
				Name: "analysts", Class: "batch", Weight: 1, Users: 8,
				Graphs: []string{"web", "social"}, GraphSkew: 0,
				Apps: []string{"pr", "cc"}, AppSkew: 0,
				Threads: 32,
			},
		},
	}
	switch arrival {
	case ArrivalDiurnal:
		s.Periods = []Period{{Seconds: 4, Amplitude: 0.8}, {Seconds: 1, Amplitude: 0.3}}
	case ArrivalBursty:
		s.OnSeconds, s.OffSeconds, s.BurstFactor = 0.5, 1.5, 4
	}
	return s
}

// TestTraceByteIdenticalAcrossGOMAXPROCS locks the determinism contract:
// the same spec marshals to the same bytes no matter how many Ps the
// runtime schedules over, for every arrival kind.
func TestTraceByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, kind := range []ArrivalKind{ArrivalSteady, ArrivalDiurnal, ArrivalBursty} {
		var want []byte
		for _, procs := range []int{1, 3, 8} {
			runtime.GOMAXPROCS(procs)
			tr, err := testSpec(kind).Generate()
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			data, err := tr.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = data
				if len(tr.Events) == 0 {
					t.Fatalf("%s: empty trace", kind)
				}
				continue
			}
			if !bytes.Equal(data, want) {
				t.Errorf("%s: trace bytes differ at GOMAXPROCS=%d", kind, procs)
			}
		}
	}
}

// TestTraceArrivalsStrictlyIncreasing checks arrival monotonicity and that
// stamps stay inside the virtual duration.
func TestTraceArrivalsStrictlyIncreasing(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalSteady, ArrivalDiurnal, ArrivalBursty} {
		tr, err := testSpec(kind).Generate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		prev := int64(-1)
		for _, ev := range tr.Events {
			if ev.ArrivalUS <= prev {
				t.Fatalf("%s: event %d arrival %dus <= previous %dus", kind, ev.Seq, ev.ArrivalUS, prev)
			}
			prev = ev.ArrivalUS
		}
		limit := int64(tr.Spec.Duration*1e6) + int64(len(tr.Events)) // +1us tie bumps
		if prev > limit {
			t.Errorf("%s: last arrival %dus beyond duration %dus", kind, prev, limit)
		}
		for i, ev := range tr.Events {
			if ev.Seq != i {
				t.Fatalf("%s: event %d has seq %d", kind, i, ev.Seq)
			}
		}
	}
}

// TestTraceMeanRateRoughlyMatchesSpec sanity-checks the thinning: a steady
// process must offer close to Rate events per virtual second.
func TestTraceMeanRateRoughlyMatchesSpec(t *testing.T) {
	spec := testSpec(ArrivalSteady)
	tr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(tr.Events)) / spec.Duration
	if got < spec.Rate*0.9 || got > spec.Rate*1.1 {
		t.Errorf("steady offered rate = %.1f/s, want within 10%% of %.1f/s", got, spec.Rate)
	}
}

// TestTraceCohortPopularitySkew checks the Zipf shaping within tolerance:
// cohort weights split the traffic, and within the skewed cohort the
// rank-0 graph dominates with observed shares close to the analytic Zipf
// distribution.
func TestTraceCohortPopularitySkew(t *testing.T) {
	spec := testSpec(ArrivalSteady)
	spec.Duration = 40 // ~20k events, enough for 5% tolerances
	tr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	graphs := map[string]int{}
	interactive := 0
	for _, ev := range tr.Events {
		classes[ev.Class]++
		if ev.Cohort == "browsers" {
			interactive++
			graphs[ev.Graph]++
		}
	}
	// Cohort weights 3:1.
	share := float64(classes["interactive"]) / float64(len(tr.Events))
	if share < 0.70 || share > 0.80 {
		t.Errorf("interactive share = %.3f, want ~0.75", share)
	}
	// Analytic Zipf shares for skew 1.1 over 4 ranks.
	skew := spec.Cohorts[0].GraphSkew
	total := 0.0
	expect := make([]float64, 4)
	for k := range expect {
		expect[k] = 1 / math.Pow(float64(k+1), skew)
		total += expect[k]
	}
	for rank, name := range spec.Cohorts[0].Graphs {
		want := expect[rank] / total
		got := float64(graphs[name]) / float64(interactive)
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("graph %q (rank %d): share %.3f, want %.3f +/- 0.05", name, rank, got, want)
		}
	}
	// Skew must actually order the ranks.
	if graphs[spec.Cohorts[0].Graphs[0]] <= graphs[spec.Cohorts[0].Graphs[3]] {
		t.Errorf("rank-0 graph (%d events) not more popular than rank-3 (%d)",
			graphs[spec.Cohorts[0].Graphs[0]], graphs[spec.Cohorts[0].Graphs[3]])
	}
}

// TestTraceRoundTrip locks serialize -> parse -> serialize byte identity.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := testSpec(ArrivalDiurnal).Generate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Error("parsed trace differs from generated trace")
	}
	again, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-marshaled trace bytes differ")
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"version": 99, "events": []}`)); err == nil {
		t.Error("unknown version accepted")
	}
}

// TestSpecValidation walks the rejection table.
func TestSpecValidation(t *testing.T) {
	ok := testSpec(ArrivalSteady)
	mutations := map[string]func(*Spec){
		"zero rate":          func(s *Spec) { s.Rate = 0 },
		"zero duration":      func(s *Spec) { s.Duration = 0 },
		"unknown arrival":    func(s *Spec) { s.Arrival = "sometimes" },
		"no cohorts":         func(s *Spec) { s.Cohorts = nil },
		"unnamed cohort":     func(s *Spec) { s.Cohorts[0].Name = "" },
		"classless cohort":   func(s *Spec) { s.Cohorts[0].Class = "" },
		"zero weight":        func(s *Spec) { s.Cohorts[0].Weight = 0 },
		"no users":           func(s *Spec) { s.Cohorts[0].Users = 0 },
		"no graphs":          func(s *Spec) { s.Cohorts[0].Graphs = nil },
		"no apps":            func(s *Spec) { s.Cohorts[0].Apps = nil },
		"negative skew":      func(s *Spec) { s.Cohorts[0].GraphSkew = -1 },
		"negative deadline":  func(s *Spec) { s.Cohorts[0].DeadlineMS = -5 },
		"diurnal, no period": func(s *Spec) { s.Arrival = ArrivalDiurnal },
		"bad period": func(s *Spec) {
			s.Arrival = ArrivalDiurnal
			s.Periods = []Period{{Seconds: -1, Amplitude: 0.5}}
		},
		"bursty, no phases": func(s *Spec) { s.Arrival = ArrivalBursty },
		"burst factor < 1": func(s *Spec) {
			s.Arrival = ArrivalBursty
			s.OnSeconds, s.OffSeconds, s.BurstFactor = 1, 1, 0.5
		},
	}
	for name, mutate := range mutations {
		spec := ok
		spec.Cohorts = append([]Cohort(nil), ok.Cohorts...)
		mutate(&spec)
		if _, err := spec.Generate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ok.Generate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestBurstyPhasesShapeArrivals checks that on-phases are denser than
// off-phases by roughly the configured factor squared.
func TestBurstyPhasesShapeArrivals(t *testing.T) {
	spec := testSpec(ArrivalBursty)
	tr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var on, off int
	cycle := spec.OnSeconds + spec.OffSeconds
	for _, ev := range tr.Events {
		if math.Mod(float64(ev.ArrivalUS)/1e6, cycle) < spec.OnSeconds {
			on++
		} else {
			off++
		}
	}
	// Total on/off wall shares over the whole duration (it spans whole
	// cycles: 10s over a 2s cycle).
	cycles := spec.Duration / cycle
	onRate := float64(on) / (cycles * spec.OnSeconds)
	offRate := float64(off) / (cycles * spec.OffSeconds)
	if onRate < offRate*4 {
		t.Errorf("on-phase rate %.1f/s not clearly denser than off-phase %.1f/s (factor %v)",
			onRate, offRate, spec.BurstFactor)
	}
}
