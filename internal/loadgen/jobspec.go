package loadgen

import (
	"fmt"

	"pmemgraph/internal/frameworks"
)

// JobSpec is one request of a generated serving workload: run App on Graph
// under Framework with Threads virtual threads. The serving layer's
// conformance suite and load tests replay these against cmd/pmemserved's
// HTTP API.
type JobSpec struct {
	Graph     string `json:"graph"`
	App       string `json:"app"`
	Framework string `json:"framework"`
	Threads   int    `json:"threads"`
}

// Workload deterministically generates n mixed-kernel job specs over the
// given resident graph names: the serving-side analogue of the harness's
// input builders. Graphs, apps and frameworks are cycled through a fixed
// xorshift stream seeded by seed, and only (framework, app) pairs the
// profile actually implements are emitted, so every spec is runnable.
// Identical (graphs, seed, n, threads) always yield the identical spec
// sequence — which is what lets a cache-warm replay assert byte-identical
// responses against its cold run.
func Workload(graphs []string, seed uint64, n, threads int) ([]JobSpec, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("loadgen: workload needs at least one graph")
	}
	if threads <= 0 {
		threads = 8
	}
	profiles := frameworks.All()
	apps := frameworks.Apps()
	x := seed*2862933555777941757 + 3037000493
	next := func(bound int) int {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return int((x * 0x2545F4914F6CDD1D) >> 33 % uint64(bound))
	}
	specs := make([]JobSpec, 0, n)
	for len(specs) < n {
		p := profiles[next(len(profiles))]
		app := apps[next(len(apps))]
		if !p.Supports(app) {
			continue
		}
		specs = append(specs, JobSpec{
			Graph:     graphs[next(len(graphs))],
			App:       app,
			Framework: p.Name,
			Threads:   threads,
		})
	}
	return specs, nil
}
